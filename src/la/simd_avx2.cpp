// AVX2 kernels (4 double lanes, cpuid-gated at dispatch time). CMake
// compiles exactly this TU with -mavx2 on x86 — the rest of the library
// stays baseline, so merely linking these kernels can never fault on a
// pre-AVX2 CPU; only a successful runtime probe routes calls here. FMA is
// deliberately NOT enabled: contraction rounds once where the scalar
// reference rounds twice and would break the bitwise-identity contract.
//
// lint:allow(simd-intrinsics: per-target kernel TU inside src/la/)
#include "la/simd_kernels.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace mimostat::la::detail {
namespace {

struct Avx2Lanes {
  using Vec = __m256d;
  static constexpr std::size_t kLanes = 4;
  static Vec zero() { return _mm256_setzero_pd(); }
  static Vec broadcast(double v) { return _mm256_set1_pd(v); }
  static Vec loadu(const double* p) { return _mm256_loadu_pd(p); }
  static void storeu(double* p, Vec v) { _mm256_storeu_pd(p, v); }
  // Separate mul and add (never an FMA): each lane rounds twice, exactly
  // like the scalar reference.
  static Vec mul(Vec a, Vec b) { return _mm256_mul_pd(a, b); }
  static Vec add(Vec a, Vec b) { return _mm256_add_pd(a, b); }
};

struct Avx2Row {
  // 4-term blocks: hardware gather + vector multiply, then the four lane
  // products added back in ascending-entry order — the accumulator sees
  // the exact scalar sequence, so vectorizing the loads/multiplies cannot
  // change the sum's bits.
  static double gather(const CsrView& m, const double* x, std::uint64_t begin,
                       std::uint64_t end) {
    double acc = 0.0;
    std::uint64_t e = begin;
    for (; e + 4 <= end; e += 4) {
      const __m128i idx =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(m.col + e));
      const __m256d xv = _mm256_i32gather_pd(x, idx, 8);
      alignas(32) double t[4];
      _mm256_store_pd(t, _mm256_mul_pd(_mm256_loadu_pd(m.val + e), xv));
      acc += t[0];
      acc += t[1];
      acc += t[2];
      acc += t[3];
    }
    for (; e < end; ++e) acc += m.val[e] * x[m.col[e]];
    return acc;
  }
};

}  // namespace

const KernelSet& avx2Kernels() {
  static constexpr KernelSet kSet{&panelGatherImpl<Avx2Lanes>,
                                  &rowGatherImpl<Avx2Row>,
                                  &maskedRowGatherImpl<Avx2Row>,
                                  /*lanes=*/4, /*compiled=*/true};
  return kSet;
}

}  // namespace mimostat::la::detail

#else  // !__AVX2__ (TU built without -mavx2, e.g. non-x86 hosts)

namespace mimostat::la::detail {
const KernelSet& avx2Kernels() { return scalarStandIn(); }
}  // namespace mimostat::la::detail

#endif
