#include "la/csr_matrix.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace mimostat::la {

CsrMatrix CsrMatrix::fromCsr(std::vector<std::uint64_t> rowPtr,
                             std::vector<std::uint32_t> col,
                             std::vector<double> val, std::uint32_t numCols,
                             bool withTranspose) {
  return fromCsr(std::move(rowPtr), std::move(col), std::move(val), numCols,
                 withTranspose ? KeepOrientation::kBoth
                               : KeepOrientation::kOriginalOnly);
}

CsrMatrix CsrMatrix::fromCsr(std::vector<std::uint64_t> rowPtr,
                             std::vector<std::uint32_t> col,
                             std::vector<double> val, std::uint32_t numCols,
                             KeepOrientation keep) {
  assert(!rowPtr.empty());
  assert(rowPtr.back() == col.size());
  assert(col.size() == val.size());
  CsrMatrix m;
  m.rowPtr_ = std::move(rowPtr);
  m.col_ = std::move(col);
  m.val_ = std::move(val);
  m.numCols_ = numCols;
  m.buildBlocks();
  if (keep != KeepOrientation::kOriginalOnly) {
    m.transpose_ = std::make_shared<const CsrMatrix>(m.buildTranspose());
  }
  if (keep == KeepOrientation::kTransposeOnly) {
    // rowPtr stays resident: it carries numRows and numNonZeros, and costs
    // 8 bytes/row against the ~12 bytes/nonzero col+val release.
    m.col_ = {};
    m.val_ = {};
    m.blockStart_ = {0, 0};
    m.hasOriginal_ = false;
  }
  return m;
}

void CsrMatrix::throwOriginalDropped() {
  throw std::logic_error(
      "la::CsrMatrix: original orientation was dropped at build time "
      "(KeepOrientation::kTransposeOnly); right products, value iteration "
      "and direct col()/val() access need KeepOrientation::kBoth or "
      "kOriginalOnly");
}

void CsrMatrix::requireOriginal(const char* who) const {
  if (hasOriginal_) return;
  throw std::logic_error(
      std::string(who) +
      ": matrix was built with KeepOrientation::kTransposeOnly; the "
      "original-orientation CSR arrays this kernel reads were dropped");
}

const CsrMatrix& CsrMatrix::transposed() const {
  if (transpose_ == nullptr) {
    throw std::logic_error(
        "la::CsrMatrix: built without a transpose "
        "(KeepOrientation::kOriginalOnly); left products and backward "
        "walks need KeepOrientation::kBoth or kTransposeOnly");
  }
  return *transpose_;
}

void CsrMatrix::buildBlocks() {
  const std::uint32_t n = numRows();
  blockStart_.assign(1, 0);
  std::uint64_t acc = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    acc += rowPtr_[r + 1] - rowPtr_[r];
    if (acc >= kBlockNnz && r + 1 < n) {
      blockStart_.push_back(r + 1);
      acc = 0;
    }
  }
  blockStart_.push_back(n);
}

CsrMatrix CsrMatrix::buildTranspose() const {
  const std::uint32_t n = numRows();
  CsrMatrix t;
  t.numCols_ = n;
  t.rowPtr_.assign(static_cast<std::size_t>(numCols_) + 1, 0);
  for (std::uint64_t k = 0; k < col_.size(); ++k) ++t.rowPtr_[col_[k] + 1];
  for (std::uint32_t c = 0; c < numCols_; ++c) t.rowPtr_[c + 1] += t.rowPtr_[c];
  t.col_.resize(col_.size());
  t.val_.resize(val_.size());
  // Stable counting sort: scanning (row, slot) ascending means every
  // transpose row ends up source-ordered exactly like the legacy scatter
  // loop's contribution order — the bit-identity contract of spmvLeft.
  std::vector<std::uint64_t> cursor(t.rowPtr_.begin(), t.rowPtr_.end() - 1);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::uint64_t k = rowPtr_[r]; k < rowPtr_[r + 1]; ++k) {
      const std::uint64_t slot = cursor[col_[k]]++;
      t.col_[slot] = r;
      t.val_[slot] = val_[k];
    }
  }
  t.buildBlocks();
  return t;
}

std::uint64_t CsrMatrix::approxBytes() const {
  std::uint64_t bytes = rowPtr_.size() * sizeof(std::uint64_t) +
                        col_.size() * sizeof(std::uint32_t) +
                        val_.size() * sizeof(double) +
                        blockStart_.size() * sizeof(std::uint32_t);
  if (transpose_) bytes += transpose_->approxBytes();
  return bytes;
}

}  // namespace mimostat::la
