// NEON kernels (aarch64 baseline, 2 double lanes). Advanced SIMD is
// mandatory on aarch64, so no extra ISA flags are needed; on other
// architectures this TU compiles to the scalar stand-in. vmulq + vaddq are
// kept as separate intrinsics (no vfmaq): contraction rounds once where
// the scalar reference rounds twice — and the build pins -ffp-contract=off
// so the scalar loops can't silently fuse into fmadd either.
//
// lint:allow(simd-intrinsics: per-target kernel TU inside src/la/)
#include "la/simd_kernels.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

namespace mimostat::la::detail {
namespace {

struct NeonLanes {
  using Vec = float64x2_t;
  static constexpr std::size_t kLanes = 2;
  static Vec zero() { return vdupq_n_f64(0.0); }
  static Vec broadcast(double v) { return vdupq_n_f64(v); }
  static Vec loadu(const double* p) { return vld1q_f64(p); }
  static void storeu(double* p, Vec v) { vst1q_f64(p, v); }
  // Separate mul and add (never an FMA): each lane rounds twice, exactly
  // like the scalar reference.
  static Vec mul(Vec a, Vec b) { return vmulq_f64(a, b); }
  static Vec add(Vec a, Vec b) { return vaddq_f64(a, b); }
};

struct NeonRow {
  // 2-term blocks: vector multiply, then the two lane products added back
  // in ascending-entry order — the accumulator sees the exact scalar
  // sequence, so the reduction order over the nonzeros is untouched.
  static double gather(const CsrView& m, const double* x, std::uint64_t begin,
                       std::uint64_t end) {
    double acc = 0.0;
    std::uint64_t e = begin;
    for (; e + 2 <= end; e += 2) {
      const double xs[2] = {x[m.col[e]], x[m.col[e + 1]]};
      double t[2];
      vst1q_f64(t, vmulq_f64(vld1q_f64(m.val + e), vld1q_f64(xs)));
      acc += t[0];
      acc += t[1];
    }
    for (; e < end; ++e) acc += m.val[e] * x[m.col[e]];
    return acc;
  }
};

}  // namespace

const KernelSet& neonKernels() {
  static constexpr KernelSet kSet{&panelGatherImpl<NeonLanes>,
                                  &rowGatherImpl<NeonRow>,
                                  &maskedRowGatherImpl<NeonRow>,
                                  /*lanes=*/2, /*compiled=*/true};
  return kSet;
}

}  // namespace mimostat::la::detail

#else  // !__aarch64__

namespace mimostat::la::detail {
const KernelSet& neonKernels() { return scalarStandIn(); }
}  // namespace mimostat::la::detail

#endif
