// Packed bitset over 64-bit words — the truth-mask representation of the
// whole exact stack (atom labels, reachability sets, prob0/prob1, bounded
// frozen masks, interned plan masks).
//
// One bit per state instead of the byte-per-state std::vector<std::uint8_t>
// it replaced: 8x less mask memory and word-parallel bulk ops (one AND/OR
// per 64 states). Layout is fixed — bit i lives in word i/64 at position
// i%64 — so kernels can read membership straight off words() without going
// through get(). Invariant: bits past size() in the last word are always
// zero, which makes operator==, count() and full() plain word scans.
//
// forEachSetBit visits set bits in ascending index order (countr_zero over
// each word), so BFS worklists seeded from a BitVector enqueue states in
// the same ascending order the legacy byte-vector scans produced —
// bit-for-bit identical traversals.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mimostat::la {

class BitVector {
 public:
  using Word = std::uint64_t;
  static constexpr std::size_t kWordBits = 64;

  BitVector() = default;
  explicit BitVector(std::size_t numBits, bool value = false);

  /// Number of bits (states), not words.
  [[nodiscard]] std::size_t size() const { return numBits_; }

  [[nodiscard]] bool get(std::size_t i) const {
    return ((words_[i >> 6] >> (i & 63)) & Word{1}) != 0;
  }

  void set(std::size_t i, bool value = true) {
    const Word bit = Word{1} << (i & 63);
    if (value) {
      words_[i >> 6] |= bit;
    } else {
      words_[i >> 6] &= ~bit;
    }
  }

  void setAll();
  void clearAll();

  /// Word-parallel intersection/union/difference; operands must match in
  /// size. operator-= is and-not: keep this set's bits not in `other`.
  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);
  BitVector& operator-=(const BitVector& other);
  [[nodiscard]] BitVector operator~() const;

  /// Equal iff same size and same bits (tail invariant makes this a plain
  /// word comparison).
  [[nodiscard]] bool operator==(const BitVector& other) const = default;

  /// Number of set bits (popcount per word).
  [[nodiscard]] std::size_t count() const;
  /// No bit set / every bit set. Both true only for size() == 0.
  [[nodiscard]] bool empty() const;
  [[nodiscard]] bool full() const;

  /// Visit set bits in ascending index order.
  template <typename Fn>
  void forEachSetBit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      Word bits = words_[w];
      while (bits != 0) {
        const auto b = static_cast<std::size_t>(std::countr_zero(bits));
        fn((w << 6) | b);
        bits &= bits - 1;
      }
    }
  }

  /// Raw word access for kernels: bit i of the set is
  /// (words()[i >> 6] >> (i & 63)) & 1. Bits past size() are zero.
  [[nodiscard]] const std::vector<Word>& words() const { return words_; }
  [[nodiscard]] std::size_t numWords() const { return words_.size(); }

  /// Heap footprint, for cache/plan accounting.
  [[nodiscard]] std::uint64_t approxBytes() const {
    return static_cast<std::uint64_t>(words_.size()) * sizeof(Word);
  }

  /// Bridges to the legacy byte-per-state representation (tests keep it as
  /// the bitwise-identity oracle; io keeps it at the file boundary).
  [[nodiscard]] static BitVector fromBytes(
      const std::vector<std::uint8_t>& bytes);
  [[nodiscard]] std::vector<std::uint8_t> toBytes() const;

 private:
  /// Re-establish the tail invariant after an op that may set bits past
  /// size() (setAll, operator~).
  void maskTail();

  std::size_t numBits_ = 0;
  std::vector<Word> words_;
};

}  // namespace mimostat::la
