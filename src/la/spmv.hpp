// Sparse matrix-vector and matrix-multivector products.
//
// All entry points are row-partitioned gathers over the matrix's fixed
// block table: each output row is produced by exactly one task with a fixed
// accumulation order, so results are bit-identical sequentially and at any
// thread count.
//
// Bit-compatibility with the legacy dtmc::ExplicitDtmc loops:
//   - spmv reproduces multiplyRight exactly (same per-row accumulation);
//   - spmvLeft gathers over the stable transpose, whose row order is
//     precisely the ascending-source order the legacy scatter multiplyLeft
//     accumulated in — so it reproduces the scatter bit for bit (including
//     across the scatter's zero-source skip; see the kernel note in
//     spmv.cpp for why the skipped +-0.0 terms are bitwise-neutral here).
//
// The SpMM variants push k right-hand sides through one matrix traversal per
// call — X and Y are row-major n x k (vector j of state s at X[s*k + j]) —
// and compute, per vector, the identical floating-point sequence as k
// separate SpMV calls.
//
// The masked SpMM variants additionally take k column masks, one packed
// la::BitVector of numRows bits per right-hand side: wherever column j's
// mask has bit s set, output (s, j) keeps X's value instead of the gathered
// product — per-column frozen/absorbing entries. This is exactly the update
// shape of bounded-until value iteration (x_{t+1}(s) = psi(s) ? 1 :
// (!phi(s) ? 0 : sum P(s,.) x_t), with psi/!phi states frozen at their
// initial 1/0), so k bounded-path formulas advance as k columns of ONE
// masked traversal per step, each column bit-identical to its own
// per-formula loop. The kernel tests membership by word-indexed bit reads
// inside the fixed block table; per-row additions stay sequential, so
// masking only *selects* between already-computed values and the outputs
// are bit-identical to the legacy n x k byte-mask path (kept in tests and
// benches as the oracle) at any thread count — while the masks themselves
// cost 8x less memory.
//
// Every kernel dispatches to a SIMD target (la/simd.hpp: scalar, SSE2,
// AVX2 or NEON — probed once, forceable via Exec::simd or MIMOSTAT_SIMD).
// Vector lanes run across the k RHS columns of a row, never across a row's
// nonzeros, and FMA stays off, so every target reproduces the scalar
// reference bit for bit. The SpMM variants additionally tile the k columns
// into lane-aligned panels (one CSR traversal per panel, L2-sized when
// that keeps a panel's X slice cache-resident) and, when parallel, fan out
// a row-block x column-panel task grid — the column-wise split that beats
// pure block-row parallelism on wide, short groups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "la/bit_vector.hpp"
#include "la/csr_matrix.hpp"
#include "la/exec.hpp"
#include "la/simd.hpp"

namespace mimostat::la {

/// y = A x (row gather). x.size() == numCols, y resized to numRows.
void spmv(const CsrMatrix& A, const std::vector<double>& x,
          std::vector<double>& y, const Exec& exec = {});

/// y = x^T A (left product via the transpose). x.size() == numRows, y
/// resized to numCols. Requires A.hasTranspose().
void spmvLeft(const CsrMatrix& A, const std::vector<double>& x,
              std::vector<double>& y, const Exec& exec = {});

/// Y = A X for k column vectors stored row-major (n x k).
/// X.size() == numCols * k, Y resized to numRows * k. `stats` (optional)
/// receives the call's panel/dispatch accounting (same for the variants
/// below); k == 0 is a valid empty tile.
void spmm(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
          std::vector<double>& Y, const Exec& exec = {},
          SpmmStats* stats = nullptr);

/// Y = X^T A for k row vectors stored row-major (n x k). Requires
/// A.hasTranspose(). X.size() == numRows * k, Y resized to numCols * k.
void spmmLeft(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
              std::vector<double>& Y, const Exec& exec = {},
              SpmmStats* stats = nullptr);

/// Y = A X with per-entry freezing: Y[s*k+j] = masks[j].get(s) ? X[s*k+j]
/// : (A X)[s*k+j]. Requires a square-shaped use (X rows must line up with
/// output rows, i.e. numRows == numCols), which the DTMC transition
/// matrices always satisfy. masks.size() == k, each of numRows bits (an
/// all-zero BitVector is an unmasked column).
void spmmMasked(const CsrMatrix& A, const std::vector<double>& X,
                std::size_t k, const std::vector<BitVector>& masks,
                std::vector<double>& Y, const Exec& exec = {},
                SpmmStats* stats = nullptr);

/// Y = X^T A with per-entry freezing over the output rows (same contract
/// as spmmMasked, via the stable transpose). Requires A.hasTranspose() and
/// numRows == numCols.
void spmmLeftMasked(const CsrMatrix& A, const std::vector<double>& X,
                    std::size_t k, const std::vector<BitVector>& masks,
                    std::vector<double>& Y, const Exec& exec = {},
                    SpmmStats* stats = nullptr);

}  // namespace mimostat::la
