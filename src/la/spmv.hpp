// Sparse matrix-vector and matrix-multivector products.
//
// All four entry points are row-partitioned gathers over the matrix's fixed
// block table: each output row is produced by exactly one task with a fixed
// accumulation order, so results are bit-identical sequentially and at any
// thread count.
//
// Bit-compatibility with the legacy dtmc::ExplicitDtmc loops:
//   - spmv reproduces multiplyRight exactly (same per-row accumulation);
//   - spmvLeft gathers over the stable transpose, whose row order is
//     precisely the ascending-source order the legacy scatter multiplyLeft
//     accumulated in — so it reproduces the scatter bit for bit (including
//     across the scatter's zero-source skip; see the kernel note in
//     spmv.cpp for why the skipped +-0.0 terms are bitwise-neutral here).
//
// The SpMM variants push k right-hand sides through one matrix traversal per
// call — X and Y are row-major n x k (vector j of state s at X[s*k + j]) —
// and compute, per vector, the identical floating-point sequence as k
// separate SpMV calls.
#pragma once

#include <cstddef>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/exec.hpp"

namespace mimostat::la {

/// y = A x (row gather). x.size() == numCols, y resized to numRows.
void spmv(const CsrMatrix& A, const std::vector<double>& x,
          std::vector<double>& y, const Exec& exec = {});

/// y = x^T A (left product via the transpose). x.size() == numRows, y
/// resized to numCols. Requires A.hasTranspose().
void spmvLeft(const CsrMatrix& A, const std::vector<double>& x,
              std::vector<double>& y, const Exec& exec = {});

/// Y = A X for k column vectors stored row-major (n x k).
/// X.size() == numCols * k, Y resized to numRows * k.
void spmm(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
          std::vector<double>& Y, const Exec& exec = {});

/// Y = X^T A for k row vectors stored row-major (n x k). Requires
/// A.hasTranspose(). X.size() == numRows * k, Y resized to numCols * k.
void spmmLeft(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
              std::vector<double>& Y, const Exec& exec = {});

}  // namespace mimostat::la
