// SSE2 kernels (x86-64 baseline, 2 double lanes). Built without extra ISA
// flags — __SSE2__ is implied by the x86-64 ABI, so this TU compiles to the
// scalar stand-in only on non-x86 hosts.
//
// lint:allow(simd-intrinsics: per-target kernel TU inside src/la/)
#include "la/simd_kernels.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace mimostat::la::detail {
namespace {

struct Sse2Lanes {
  using Vec = __m128d;
  static constexpr std::size_t kLanes = 2;
  static Vec zero() { return _mm_setzero_pd(); }
  static Vec broadcast(double v) { return _mm_set1_pd(v); }
  static Vec loadu(const double* p) { return _mm_loadu_pd(p); }
  static void storeu(double* p, Vec v) { _mm_storeu_pd(p, v); }
  // Separate mul and add (never an FMA): each lane rounds twice, exactly
  // like the scalar reference.
  static Vec mul(Vec a, Vec b) { return _mm_mul_pd(a, b); }
  static Vec add(Vec a, Vec b) { return _mm_add_pd(a, b); }
};

struct Sse2Row {
  // 2-term blocks: vector multiply, then the two lane products added back
  // in ascending-entry order — the accumulator sees the exact scalar
  // sequence, so the reduction order over the nonzeros is untouched.
  static double gather(const CsrView& m, const double* x, std::uint64_t begin,
                       std::uint64_t end) {
    double acc = 0.0;
    std::uint64_t e = begin;
    for (; e + 2 <= end; e += 2) {
      const __m128d xv = _mm_set_pd(x[m.col[e + 1]], x[m.col[e]]);
      alignas(16) double t[2];
      _mm_store_pd(t, _mm_mul_pd(_mm_loadu_pd(m.val + e), xv));
      acc += t[0];
      acc += t[1];
    }
    for (; e < end; ++e) acc += m.val[e] * x[m.col[e]];
    return acc;
  }
};

}  // namespace

const KernelSet& sse2Kernels() {
  static constexpr KernelSet kSet{&panelGatherImpl<Sse2Lanes>,
                                  &rowGatherImpl<Sse2Row>,
                                  &maskedRowGatherImpl<Sse2Row>,
                                  /*lanes=*/2, /*compiled=*/true};
  return kSet;
}

}  // namespace mimostat::la::detail

#else  // !__SSE2__

namespace mimostat::la::detail {
const KernelSet& sse2Kernels() { return scalarStandIn(); }
}  // namespace mimostat::la::detail

#endif
