#include "la/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

#include "la/spmv.hpp"
#include "obs/trace.hpp"

namespace mimostat::la {

const char* solverKindName(SolverKind kind) {
  switch (kind) {
    case SolverKind::kGaussSeidel:
      return "gauss-seidel";
    case SolverKind::kJacobi:
      return "jacobi";
    case SolverKind::kGaussSeidelRB:
      return "gauss-seidel-rb";
  }
  return "?";
}

namespace {

/// nnz-balanced partition of an active row list, the same shape as the
/// matrix's block table: boundaries depend only on the active rows and
/// their nonzero counts — never on thread count — so per-chunk deltas
/// (combined with exact max) and write-backs are bit-stable at any pool
/// size, and skewed rows cannot load-imbalance the pool. Returns the chunk
/// boundaries and reports the total active nonzeros through `activeNnz`.
std::vector<std::size_t> chunkActiveRows(
    const std::uint64_t* rowPtr, const std::vector<std::uint32_t>& active,
    std::uint64_t& activeNnz) {
  std::vector<std::size_t> chunkStart{0};
  activeNnz = 0;
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    const std::uint64_t rowNnz = rowPtr[active[i] + 1] - rowPtr[active[i]];
    activeNnz += rowNnz;
    acc += rowNnz;
    if (acc >= CsrMatrix::kBlockNnz && i + 1 < active.size()) {
      chunkStart.push_back(i + 1);
      acc = 0;
    }
  }
  chunkStart.push_back(active.size());
  return chunkStart;
}

}  // namespace

SolveStats GaussSeidel::solve(const CsrMatrix& P,
                              const std::vector<std::uint32_t>& active,
                              const double* b, std::vector<double>& x,
                              const SolverOptions& options,
                              const Exec& exec) const {
  (void)exec;  // in-place sweeps are order-dependent: sequential by design
  const obs::Span span("la.solve.gauss-seidel");
  P.requireOriginal("la::GaussSeidel");
  assert(x.size() == P.numRows());
  SolveStats stats;
  stats.solver = solverKindName(SolverKind::kGaussSeidel);
  if (active.empty()) {
    stats.converged = true;
    return stats;
  }
  const std::uint64_t* rowPtr = P.rowPtr().data();
  const std::uint32_t* col = P.col().data();
  const double* val = P.val().data();
  for (std::uint64_t iter = 0; iter < options.maxIterations; ++iter) {
    ++stats.iterations;
    double maxDelta = 0.0;
    for (const std::uint32_t s : active) {
      double acc = b != nullptr ? b[s] : 0.0;
      for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) {
        acc += val[k] * x[col[k]];
      }
      maxDelta = std::max(maxDelta, std::fabs(acc - x[s]));
      x[s] = acc;
    }
    stats.residual = maxDelta;
    if (maxDelta < options.epsilon) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

SolveStats Jacobi::solve(const CsrMatrix& P,
                         const std::vector<std::uint32_t>& active,
                         const double* b, std::vector<double>& x,
                         const SolverOptions& options, const Exec& exec) const {
  const obs::Span span("la.solve.jacobi");
  P.requireOriginal("la::Jacobi");
  assert(x.size() == P.numRows());
  SolveStats stats;
  stats.solver = solverKindName(SolverKind::kJacobi);
  if (active.empty()) {
    stats.converged = true;
    return stats;
  }
  const std::uint64_t* rowPtr = P.rowPtr().data();
  const std::uint32_t* col = P.col().data();
  const double* val = P.val().data();

  std::uint64_t activeNnz = 0;
  const std::vector<std::size_t> chunkStart =
      chunkActiveRows(rowPtr, active, activeNnz);
  const std::size_t chunks = chunkStart.size() - 1;
  std::vector<double> next(active.size());
  std::vector<double> chunkDelta(chunks);

  const auto sweepChunk = [&](std::size_t c) {
    double delta = 0.0;
    for (std::size_t i = chunkStart[c]; i < chunkStart[c + 1]; ++i) {
      const std::uint32_t s = active[i];
      double acc = b != nullptr ? b[s] : 0.0;
      for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) {
        acc += val[k] * x[col[k]];
      }
      delta = std::max(delta, std::fabs(acc - x[s]));
      next[i] = acc;
    }
    chunkDelta[c] = delta;
  };

  // Gate on the nonzeros the sweep actually touches: prob0/prob1 can
  // shrink the active set orders of magnitude below the full matrix, and
  // per-iteration pool dispatch must amortize against the real work.
  const bool parallel = exec.parallelFor(activeNnz) && chunks > 1;
  for (std::uint64_t iter = 0; iter < options.maxIterations; ++iter) {
    ++stats.iterations;
    if (parallel) {
      // The task batch is rebuilt per iteration (the runner consumes it);
      // a handful of closure allocations amortize against the O(grain)
      // row sweeps each chunk performs.
      std::vector<std::function<void()>> tasks;
      tasks.reserve(chunks);
      for (std::size_t c = 0; c < chunks; ++c) {
        tasks.push_back([&sweepChunk, c] { sweepChunk(c); });
      }
      exec.runner(std::move(tasks));
    } else {
      for (std::size_t c = 0; c < chunks; ++c) sweepChunk(c);
    }
    for (std::size_t i = 0; i < active.size(); ++i) x[active[i]] = next[i];
    double maxDelta = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
      maxDelta = std::max(maxDelta, chunkDelta[c]);
    }
    stats.residual = maxDelta;
    if (maxDelta < options.epsilon) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

SolveStats GaussSeidelRB::solve(const CsrMatrix& P,
                                const std::vector<std::uint32_t>& active,
                                const double* b, std::vector<double>& x,
                                const SolverOptions& options,
                                const Exec& exec) const {
  const obs::Span span("la.solve.gauss-seidel-rb");
  P.requireOriginal("la::GaussSeidelRB");
  assert(x.size() == P.numRows());
  SolveStats stats;
  stats.solver = solverKindName(SolverKind::kGaussSeidelRB);
  if (active.empty()) {
    stats.converged = true;
    return stats;
  }
  const std::uint64_t* rowPtr = P.rowPtr().data();
  const std::uint32_t* col = P.col().data();
  const double* val = P.val().data();

  std::uint64_t activeNnz = 0;
  const std::vector<std::size_t> chunkStart =
      chunkActiveRows(rowPtr, active, activeNnz);
  const std::size_t chunks = chunkStart.size() - 1;
  std::vector<double> next(active.size());
  std::vector<double> chunkDelta(chunks);

  const auto sweepChunk = [&](std::size_t c) {
    double delta = 0.0;
    for (std::size_t i = chunkStart[c]; i < chunkStart[c + 1]; ++i) {
      const std::uint32_t s = active[i];
      double acc = b != nullptr ? b[s] : 0.0;
      for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) {
        acc += val[k] * x[col[k]];
      }
      delta = std::max(delta, std::fabs(acc - x[s]));
      next[i] = acc;
    }
    chunkDelta[c] = delta;
  };

  // The per-phase write barrier is what makes the coloring deterministic:
  // chunks of one color compute into `next` reading only committed state,
  // then the phase commits before the other color starts — so the second
  // color always sees the first color's fresh values, at any pool size.
  const bool parallel = exec.parallelFor(activeNnz) && chunks > 2;
  const auto runPhase = [&](std::size_t color) {
    if (parallel) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve((chunks + 1) / 2);
      for (std::size_t c = color; c < chunks; c += 2) {
        tasks.push_back([&sweepChunk, c] { sweepChunk(c); });
      }
      exec.runner(std::move(tasks));
    } else {
      for (std::size_t c = color; c < chunks; c += 2) sweepChunk(c);
    }
    for (std::size_t c = color; c < chunks; c += 2) {
      for (std::size_t i = chunkStart[c]; i < chunkStart[c + 1]; ++i) {
        x[active[i]] = next[i];
      }
    }
  };

  for (std::uint64_t iter = 0; iter < options.maxIterations; ++iter) {
    ++stats.iterations;
    runPhase(0);
    if (chunks > 1) runPhase(1);
    double maxDelta = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) {
      maxDelta = std::max(maxDelta, chunkDelta[c]);
    }
    stats.residual = maxDelta;
    if (maxDelta < options.epsilon) {
      stats.converged = true;
      return stats;
    }
  }
  return stats;
}

std::unique_ptr<LinearSolver> makeLinearSolver(SolverKind kind) {
  switch (kind) {
    case SolverKind::kGaussSeidel:
      return std::make_unique<GaussSeidel>();
    case SolverKind::kJacobi:
      return std::make_unique<Jacobi>();
    case SolverKind::kGaussSeidelRB:
      return std::make_unique<GaussSeidelRB>();
  }
  return std::make_unique<GaussSeidel>();
}

PowerResult PowerIteration::run(const CsrMatrix& P,
                                std::vector<double> initial,
                                const PowerOptions& options,
                                const Exec& exec) const {
  const obs::Span span("la.solve.power");
  assert(initial.size() == P.numRows());
  PowerResult result;
  result.stats.solver = options.cesaroAveraging ? "power+cesaro" : "power";
  std::vector<double> pi = std::move(initial);
  std::vector<double> next(pi.size());
  std::vector<double> average;
  if (options.cesaroAveraging) average.assign(pi.size(), 0.0);

  for (std::uint64_t iter = 1; iter <= options.maxIterations; ++iter) {
    spmvLeft(P, pi, next, exec);
    // The L1 delta reduction stays a single ascending scan regardless of
    // how the multiply was partitioned — bit-identical at any pool size.
    double delta = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) {
      delta += std::fabs(next[s] - pi[s]);
    }
    pi.swap(next);
    result.stats.iterations = iter;
    result.stats.residual = delta;
    if (options.cesaroAveraging) {
      for (std::size_t s = 0; s < pi.size(); ++s) average[s] += pi[s];
    }
    if (!options.cesaroAveraging && delta < options.epsilon) {
      result.stats.converged = true;
      break;
    }
  }

  if (options.cesaroAveraging && result.stats.iterations > 0) {
    const double scale = 1.0 / static_cast<double>(result.stats.iterations);
    for (double& v : average) v *= scale;
    result.distribution = std::move(average);
    result.stats.converged = true;  // the Cesaro limit exists for finite chains
  } else {
    result.distribution = std::move(pi);
  }
  return result;
}

}  // namespace mimostat::la
