// la::CsrMatrix — the owned sparse-matrix type every numeric backend runs on.
//
// Compressed sparse row storage (rowPtr / colIdx / values) extracted out of
// dtmc::ExplicitDtmc so transient propagation, steady-state solving and the
// unbounded-until linear systems all share one matrix layer. Two layout
// features matter to the kernels in la/spmv.hpp and la/solver.hpp:
//
//   1. Block table: rows are partitioned into contiguous blocks of roughly
//      kBlockNnz nonzeros each. Blocks are the unit of parallel work — the
//      table depends only on the matrix (never on thread count), so a
//      row-partitioned kernel assigns every output row to exactly one task
//      and produces bit-identical results at any pool size.
//   2. Eager stable transpose: left products (x^T A, the transient hot path)
//      and backward graph walks (Prob0/Prob1) need column-major access. The
//      transpose is built once at construction with a stable counting sort,
//      so each transpose row lists its sources in ascending (row, slot)
//      order — exactly the accumulation order of the legacy scatter loop,
//      which is what makes the gather kernel bit-identical to it.
//
// Orientation residency: both orientations resident doubles matrix bytes.
// Workloads that only ever propagate forward (left products / transient
// sweeps read the transpose) or only backward (right products / value
// iteration read the original) can drop the unused orientation at build
// time via KeepOrientation; a dropped orientation's accessors throw
// std::logic_error instead of returning stale data, and approxBytes — the
// engine cache's accounting unit — reflects what is actually resident.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace mimostat::la {

/// Which CSR orientations a matrix keeps resident after construction.
enum class KeepOrientation {
  kBoth,          ///< original + eager stable transpose (the default)
  kOriginalOnly,  ///< no transpose: left products/backward walks unavailable
  kTransposeOnly, ///< original col/val dropped: right products unavailable
};

class CsrMatrix {
 public:
  /// Nonzeros per parallel block (fixed: block boundaries must not depend on
  /// thread count or results would not be bit-stable across pool sizes).
  static constexpr std::uint64_t kBlockNnz = 1ull << 14;

  CsrMatrix() = default;

  /// Take ownership of CSR arrays. rowPtr.size() == numRows + 1 and
  /// rowPtr.back() == col.size() == val.size() are asserted. When
  /// `withTranspose` the transpose (with its own block table) is built
  /// eagerly; spmvLeft/spmmLeft and transposed() require it.
  static CsrMatrix fromCsr(std::vector<std::uint64_t> rowPtr,
                           std::vector<std::uint32_t> col,
                           std::vector<double> val, std::uint32_t numCols,
                           bool withTranspose = true);

  /// As above with explicit orientation control. kTransposeOnly builds the
  /// stable transpose and then releases the original col/val arrays and
  /// block table (rowPtr stays: it carries the row count and nonzero
  /// count); kOriginalOnly never builds the transpose. The bool overload
  /// maps true -> kBoth, false -> kOriginalOnly.
  static CsrMatrix fromCsr(std::vector<std::uint64_t> rowPtr,
                           std::vector<std::uint32_t> col,
                           std::vector<double> val, std::uint32_t numCols,
                           KeepOrientation keep);

  [[nodiscard]] std::uint32_t numRows() const {
    return static_cast<std::uint32_t>(rowPtr_.size() - 1);
  }
  [[nodiscard]] std::uint32_t numCols() const { return numCols_; }
  [[nodiscard]] std::uint64_t numNonZeros() const { return rowPtr_.back(); }

  [[nodiscard]] const std::vector<std::uint64_t>& rowPtr() const {
    return rowPtr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col() const {
    if (!hasOriginal_) throwOriginalDropped();
    return col_;
  }
  [[nodiscard]] const std::vector<double>& val() const {
    if (!hasOriginal_) throwOriginalDropped();
    return val_;
  }

  /// The original orientation's col/val arrays are resident (false only
  /// after a kTransposeOnly build).
  [[nodiscard]] bool hasOriginal() const { return hasOriginal_; }
  /// Throws std::logic_error naming `who` when the original orientation was
  /// dropped — called once at kernel entry, not per element.
  void requireOriginal(const char* who) const;

  /// The transpose built at construction; null when it was not requested
  /// (and always null on the transpose itself — it is not recursive).
  [[nodiscard]] const CsrMatrix* transpose() const { return transpose_.get(); }
  [[nodiscard]] bool hasTranspose() const { return transpose_ != nullptr; }
  /// Accessor for kernels that require the transpose; throws
  /// std::logic_error when the matrix was built without one.
  [[nodiscard]] const CsrMatrix& transposed() const;

  // --- block table (parallel row partition; original orientation only) ---
  [[nodiscard]] std::size_t blockCount() const {
    return blockStart_.empty() ? 0 : blockStart_.size() - 1;
  }
  [[nodiscard]] std::uint32_t blockBegin(std::size_t b) const {
    return blockStart_[b];
  }
  [[nodiscard]] std::uint32_t blockEnd(std::size_t b) const {
    return blockStart_[b + 1];
  }

  /// Resident bytes of the CSR arrays, block table and (when present) the
  /// transpose — the unit the engine's model-cache byte accounting uses.
  /// Dropped orientations contribute nothing.
  [[nodiscard]] std::uint64_t approxBytes() const;

 private:
  [[noreturn]] static void throwOriginalDropped();

  void buildBlocks();
  [[nodiscard]] CsrMatrix buildTranspose() const;

  std::vector<std::uint64_t> rowPtr_{0};
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
  std::uint32_t numCols_ = 0;
  bool hasOriginal_ = true;
  std::vector<std::uint32_t> blockStart_{0, 0};
  /// Shared (immutable) so a copy reuses the transpose instead of doubling
  /// it — note a copy still deep-copies this matrix's own CSR arrays.
  std::shared_ptr<const CsrMatrix> transpose_;
};

}  // namespace mimostat::la
