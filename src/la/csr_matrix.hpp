// la::CsrMatrix — the owned sparse-matrix type every numeric backend runs on.
//
// Compressed sparse row storage (rowPtr / colIdx / values) extracted out of
// dtmc::ExplicitDtmc so transient propagation, steady-state solving and the
// unbounded-until linear systems all share one matrix layer. Two layout
// features matter to the kernels in la/spmv.hpp and la/solver.hpp:
//
//   1. Block table: rows are partitioned into contiguous blocks of roughly
//      kBlockNnz nonzeros each. Blocks are the unit of parallel work — the
//      table depends only on the matrix (never on thread count), so a
//      row-partitioned kernel assigns every output row to exactly one task
//      and produces bit-identical results at any pool size.
//   2. Eager stable transpose: left products (x^T A, the transient hot path)
//      and backward graph walks (Prob0/Prob1) need column-major access. The
//      transpose is built once at construction with a stable counting sort,
//      so each transpose row lists its sources in ascending (row, slot)
//      order — exactly the accumulation order of the legacy scatter loop,
//      which is what makes the gather kernel bit-identical to it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace mimostat::la {

class CsrMatrix {
 public:
  /// Nonzeros per parallel block (fixed: block boundaries must not depend on
  /// thread count or results would not be bit-stable across pool sizes).
  static constexpr std::uint64_t kBlockNnz = 1ull << 14;

  CsrMatrix() = default;

  /// Take ownership of CSR arrays. rowPtr.size() == numRows + 1 and
  /// rowPtr.back() == col.size() == val.size() are asserted. When
  /// `withTranspose` the transpose (with its own block table) is built
  /// eagerly; spmvLeft/spmmLeft and transposed() require it.
  static CsrMatrix fromCsr(std::vector<std::uint64_t> rowPtr,
                           std::vector<std::uint32_t> col,
                           std::vector<double> val, std::uint32_t numCols,
                           bool withTranspose = true);

  [[nodiscard]] std::uint32_t numRows() const {
    return static_cast<std::uint32_t>(rowPtr_.size() - 1);
  }
  [[nodiscard]] std::uint32_t numCols() const { return numCols_; }
  [[nodiscard]] std::uint64_t numNonZeros() const { return col_.size(); }

  [[nodiscard]] const std::vector<std::uint64_t>& rowPtr() const {
    return rowPtr_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col() const { return col_; }
  [[nodiscard]] const std::vector<double>& val() const { return val_; }

  /// The transpose built at construction; null when withTranspose was false
  /// (and always null on the transpose itself — it is not recursive).
  [[nodiscard]] const CsrMatrix* transpose() const { return transpose_.get(); }
  [[nodiscard]] bool hasTranspose() const { return transpose_ != nullptr; }
  /// Asserting accessor for kernels that require the transpose.
  [[nodiscard]] const CsrMatrix& transposed() const;

  // --- block table (parallel row partition) ---
  [[nodiscard]] std::size_t blockCount() const {
    return blockStart_.empty() ? 0 : blockStart_.size() - 1;
  }
  [[nodiscard]] std::uint32_t blockBegin(std::size_t b) const {
    return blockStart_[b];
  }
  [[nodiscard]] std::uint32_t blockEnd(std::size_t b) const {
    return blockStart_[b + 1];
  }

  /// Resident bytes of the CSR arrays, block table and (when present) the
  /// transpose — the unit the engine's model-cache byte accounting uses.
  [[nodiscard]] std::uint64_t approxBytes() const;

 private:
  void buildBlocks();
  [[nodiscard]] CsrMatrix buildTranspose() const;

  std::vector<std::uint64_t> rowPtr_{0};
  std::vector<std::uint32_t> col_;
  std::vector<double> val_;
  std::uint32_t numCols_ = 0;
  std::vector<std::uint32_t> blockStart_{0, 0};
  /// Shared (immutable) so a copy reuses the transpose instead of doubling
  /// it — note a copy still deep-copies this matrix's own CSR arrays.
  std::shared_ptr<const CsrMatrix> transpose_;
};

}  // namespace mimostat::la
