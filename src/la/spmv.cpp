#include "la/spmv.hpp"

#include <cassert>

namespace mimostat::la {

namespace {

// Bit-compatibility note: the legacy ExplicitDtmc::multiplyLeft scatter
// skipped whole zero-valued source rows. These kernels do NOT branch on
// zero and are still bit-identical to it: a skipped term is v * (+-0.0)
// which is +-0.0, and acc + (+-0.0) can only change acc's bits when acc is
// -0.0 and the term +0.0. An accumulator can become -0.0 only from
// negative-zero terms (exact cancellation of finite terms rounds to +0.0),
// i.e. only when the matrix carries negative values or x carries -0.0 —
// neither occurs for the engine's stochastic matrices, distributions and
// value vectors. Dropping the branch keeps the gather loop a pure
// multiply-add stream the compiler can pipeline (tests assert bitwise
// equality against the legacy scatter, zeros included).

/// y[r] = sum_k M.val[k] * x[M.col[k]] over rows [rowBegin, rowEnd).
void gatherRows(const CsrMatrix& M, const double* x, double* y,
                std::uint32_t rowBegin, std::uint32_t rowEnd) {
  const std::uint64_t* rowPtr = M.rowPtr().data();
  const std::uint32_t* col = M.col().data();
  const double* val = M.val().data();
  for (std::uint32_t r = rowBegin; r < rowEnd; ++r) {
    double acc = 0.0;
    for (std::uint64_t k = rowPtr[r]; k < rowPtr[r + 1]; ++k) {
      acc += val[k] * x[col[k]];
    }
    y[r] = acc;
  }
}

/// Multi-vector gather in strips of up to kStrip vectors: each strip
/// traverses the rows once with stack accumulators (one cache line of
/// doubles), so k <= kStrip right-hand sides cost a single pass. Per
/// vector the add sequence is identical to gatherRows, so SpMM output j is
/// bitwise equal to the j-th SpMV. `masks` (nullable, k packed column
/// BitVectors of numRows bits) freezes entries: a masked (r, j) keeps X's
/// value — the gathered accumulator is discarded, never observed, so
/// frozen columns cannot perturb live ones. Membership is a word-indexed
/// bit read off the column's word array; the per-row add sequence is
/// untouched, so outputs stay bit-identical to the byte-mask path this
/// replaced.
constexpr std::size_t kStrip = 8;

void gatherRowsMulti(const CsrMatrix& M, const double* X, std::size_t k,
                     const BitVector* masks, double* Y,
                     std::uint32_t rowBegin, std::uint32_t rowEnd) {
  const std::uint64_t* rowPtr = M.rowPtr().data();
  const std::uint32_t* col = M.col().data();
  const double* val = M.val().data();
  if (k == 1) {
    // Single-column fast path: the strip loop's per-entry width iteration
    // costs ~2x against the plain scalar gather on width-1 workloads
    // (per-formula bounded checks). Frozen rows skip their gather outright
    // — the accumulator would be discarded anyway — matching the legacy
    // bounded-until loop's work profile as well as its bits.
    const std::uint64_t* mw =
        masks != nullptr ? masks[0].words().data() : nullptr;
    for (std::uint32_t r = rowBegin; r < rowEnd; ++r) {
      if (mw != nullptr && ((mw[r >> 6] >> (r & 63)) & 1u) != 0) {
        Y[r] = X[r];
        continue;
      }
      double acc = 0.0;
      for (std::uint64_t e = rowPtr[r]; e < rowPtr[r + 1]; ++e) {
        acc += val[e] * X[col[e]];
      }
      Y[r] = acc;
    }
    return;
  }
  for (std::size_t j0 = 0; j0 < k; j0 += kStrip) {
    const std::size_t width = k - j0 < kStrip ? k - j0 : kStrip;
    const std::uint64_t* mw[kStrip] = {};
    if (masks != nullptr) {
      for (std::size_t j = 0; j < width; ++j) {
        mw[j] = masks[j0 + j].words().data();
      }
    }
    for (std::uint32_t r = rowBegin; r < rowEnd; ++r) {
      double acc[kStrip] = {0.0};
      for (std::uint64_t e = rowPtr[r]; e < rowPtr[r + 1]; ++e) {
        const double* xs = X + static_cast<std::size_t>(col[e]) * k + j0;
        const double v = val[e];
        for (std::size_t j = 0; j < width; ++j) acc[j] += v * xs[j];
      }
      const std::size_t base = static_cast<std::size_t>(r) * k + j0;
      double* out = Y + base;
      if (masks == nullptr) {
        for (std::size_t j = 0; j < width; ++j) out[j] = acc[j];
      } else {
        const double* xr = X + base;
        const std::size_t word = r >> 6;
        const unsigned bit = r & 63;
        for (std::size_t j = 0; j < width; ++j) {
          out[j] = ((mw[j][word] >> bit) & 1u) != 0 ? xr[j] : acc[j];
        }
      }
    }
  }
}

/// Run `body` over the matrix's block row-partition: sequentially, or one
/// task per block on exec's runner. Each output row belongs to exactly one
/// block, so the fan-out is race-free and scheduling-order independent.
template <typename Body>
void forEachBlock(const CsrMatrix& M, const Exec& exec, const Body& body) {
  if (!exec.parallelFor(M.numNonZeros()) || M.blockCount() <= 1) {
    body(0, M.numRows());
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(M.blockCount());
  for (std::size_t b = 0; b < M.blockCount(); ++b) {
    tasks.push_back(
        [&M, &body, b] { body(M.blockBegin(b), M.blockEnd(b)); });
  }
  exec.runner(std::move(tasks));
}

void spmmImpl(const CsrMatrix& M, const std::vector<double>& X, std::size_t k,
              const BitVector* masks, std::vector<double>& Y,
              const Exec& exec) {
  assert(k > 0);
  assert(X.size() == static_cast<std::size_t>(M.numCols()) * k);
  Y.resize(static_cast<std::size_t>(M.numRows()) * k);
  forEachBlock(M, exec, [&](std::uint32_t begin, std::uint32_t end) {
    gatherRowsMulti(M, X.data(), k, masks, Y.data(), begin, end);
  });
}

#ifndef NDEBUG
bool masksMatch(const std::vector<BitVector>& masks, std::size_t k,
                std::uint32_t numRows) {
  if (masks.size() != k) return false;
  for (const BitVector& m : masks) {
    if (m.size() != numRows) return false;
  }
  return true;
}
#endif

}  // namespace

void spmv(const CsrMatrix& A, const std::vector<double>& x,
          std::vector<double>& y, const Exec& exec) {
  A.requireOriginal("la::spmv");
  assert(x.size() == A.numCols());
  y.resize(A.numRows());
  forEachBlock(A, exec, [&](std::uint32_t begin, std::uint32_t end) {
    gatherRows(A, x.data(), y.data(), begin, end);
  });
}

void spmvLeft(const CsrMatrix& A, const std::vector<double>& x,
              std::vector<double>& y, const Exec& exec) {
  const CsrMatrix& T = A.transposed();
  assert(x.size() == T.numCols());

  // Near-point-mass x (a single initial state, the first transient steps):
  // the legacy source-major scatter costs only the support's nonzeros,
  // while the target-major gather always traverses every nonzero. Scatter
  // and gather are bitwise-equal (kernel note above), so picking by
  // sparsity is invisible to results. The support scan exits as soon as x
  // is provably dense, so dense steps pay O(cap), not O(n). The scatter
  // reads the original orientation, so a transpose-only matrix always
  // takes the (bitwise-identical) gather below.
  const std::uint32_t n = A.numRows();
  if (A.hasOriginal()) {
    const std::uint32_t sparseCap = n / 64 + 1;
    std::uint32_t support = 0;
    for (std::uint32_t s = 0; s < n && support <= sparseCap; ++s) {
      support += x[s] != 0.0 ? 1 : 0;
    }
    if (support <= sparseCap) {
      const std::uint64_t* rowPtr = A.rowPtr().data();
      const std::uint32_t* col = A.col().data();
      const double* val = A.val().data();
      y.assign(T.numRows(), 0.0);
      for (std::uint32_t s = 0; s < n; ++s) {
        const double xs = x[s];
        if (xs == 0.0) continue;
        for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) {
          y[col[k]] += xs * val[k];
        }
      }
      return;
    }
  }

  y.resize(T.numRows());
  forEachBlock(T, exec, [&](std::uint32_t begin, std::uint32_t end) {
    gatherRows(T, x.data(), y.data(), begin, end);
  });
}

void spmm(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
          std::vector<double>& Y, const Exec& exec) {
  A.requireOriginal("la::spmm");
  spmmImpl(A, X, k, nullptr, Y, exec);
}

void spmmLeft(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
              std::vector<double>& Y, const Exec& exec) {
  spmmImpl(A.transposed(), X, k, nullptr, Y, exec);
}

void spmmMasked(const CsrMatrix& A, const std::vector<double>& X,
                std::size_t k, const std::vector<BitVector>& masks,
                std::vector<double>& Y, const Exec& exec) {
  A.requireOriginal("la::spmmMasked");
  assert(A.numRows() == A.numCols());
  assert(masksMatch(masks, k, A.numRows()));
  spmmImpl(A, X, k, masks.data(), Y, exec);
}

void spmmLeftMasked(const CsrMatrix& A, const std::vector<double>& X,
                    std::size_t k, const std::vector<BitVector>& masks,
                    std::vector<double>& Y, const Exec& exec) {
  const CsrMatrix& T = A.transposed();
  assert(A.numRows() == A.numCols());
  assert(masksMatch(masks, k, A.numRows()));
  spmmImpl(T, X, k, masks.data(), Y, exec);
}

}  // namespace mimostat::la
