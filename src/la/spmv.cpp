#include "la/spmv.hpp"

#include <cassert>
#include <string>

#include "la/simd_kernels.hpp"
#include "obs/metrics.hpp"

namespace mimostat::la {

namespace {

// Bit-compatibility note: the legacy ExplicitDtmc::multiplyLeft scatter
// skipped whole zero-valued source rows. These kernels do NOT branch on
// zero and are still bit-identical to it: a skipped term is v * (+-0.0)
// which is +-0.0, and acc + (+-0.0) can only change acc's bits when acc is
// -0.0 and the term +0.0. An accumulator can become -0.0 only from
// negative-zero terms (exact cancellation of finite terms rounds to +0.0),
// i.e. only when the matrix carries negative values or x carries -0.0 —
// neither occurs for the engine's stochastic matrices, distributions and
// value vectors. Dropping the branch keeps the gather loop a pure
// multiply-add stream the compiler can pipeline (tests assert bitwise
// equality against the legacy scatter, zeros included).
//
// Since the SIMD dispatch layer (la/simd.hpp) the kernels themselves live
// in simd_kernels.hpp as per-target instantiations: lanes run across the k
// RHS columns of one row, never across a row's nonzeros, so every target
// reproduces the scalar reference bit for bit. This file owns the dispatch
// resolution, the column-panel decomposition and the block/panel fan-out.

/// Process-wide dispatch/panel counters. Handles are resolved once and
/// cached — MetricsRegistry::counter takes the registry mutex, the cached
/// Counter::add is a relaxed sharded atomic, cheap enough for kernel entry.
struct SimdMetrics {
  obs::Counter dispatch;
  obs::Counter byTarget[kSimdTargetCount];
  obs::Counter panels;
};

const SimdMetrics& simdMetrics() {
  static const SimdMetrics* const kMetrics = [] {
    auto* m = new SimdMetrics;
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    m->dispatch = reg.counter("la.simd.dispatch");
    for (std::size_t t = 0; t < kSimdTargetCount; ++t) {
      m->byTarget[t] = reg.counter(
          std::string("la.simd.dispatch.") +
          simdTargetName(static_cast<SimdTarget>(t)));
    }
    m->panels = reg.counter("la.spmm.panels");
    return m;
  }();
  return *kMetrics;
}

/// Resolve the call's dispatch target, bump the obs counters, return the
/// kernel set to run.
const detail::KernelSet& dispatchKernels(const Exec& exec,
                                         SimdTarget* resolved) {
  const SimdTarget target = resolveSimdTarget(exec.simd);
  const SimdMetrics& metrics = simdMetrics();
  metrics.dispatch.inc();
  metrics.byTarget[static_cast<std::size_t>(target)].inc();
  if (resolved != nullptr) *resolved = target;
  return detail::kernelsFor(target);
}

detail::CsrView viewOf(const CsrMatrix& M) {
  return {M.rowPtr().data(), M.col().data(), M.val().data()};
}

/// Run `body` over the matrix's block row-partition: sequentially, or one
/// task per block on exec's runner. Each output row belongs to exactly one
/// block, so the fan-out is race-free and scheduling-order independent.
template <typename Body>
void forEachBlock(const CsrMatrix& M, const Exec& exec, const Body& body) {
  if (!exec.parallelFor(M.numNonZeros()) || M.blockCount() <= 1) {
    body(0, M.numRows());
    return;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(M.blockCount());
  for (std::size_t b = 0; b < M.blockCount(); ++b) {
    tasks.push_back(
        [&M, &body, b] { body(M.blockBegin(b), M.blockEnd(b)); });
  }
  exec.runner(std::move(tasks));
}

std::size_t panelWidthFor(const CsrMatrix& M, std::size_t k,
                          std::size_t lanes, const Exec& exec) {
  if (exec.spmmPanelColumns) {
    std::size_t w = *exec.spmmPanelColumns;
    if (w < 1) w = 1;
    if (w > detail::kMaxPanelColumns) w = detail::kMaxPanelColumns;
    return w;
  }
  return spmmPanelWidth(M.numCols(), k, lanes);
}

void spmmImpl(const CsrMatrix& M, const std::vector<double>& X, std::size_t k,
              const BitVector* masks, std::vector<double>& Y,
              const Exec& exec, SpmmStats* stats) {
  assert(X.size() == static_cast<std::size_t>(M.numCols()) * k);
  SimdTarget target = SimdTarget::kScalar;
  const detail::KernelSet& ks = dispatchKernels(exec, &target);
  if (stats != nullptr) *stats = SpmmStats{0, 0, target};
  Y.resize(static_cast<std::size_t>(M.numRows()) * k);
  if (k == 0) return;  // empty tile: nothing to traverse
  const detail::CsrView view = viewOf(M);

  if (k == 1) {
    // Single-column fast path: the panel loop's per-entry width iteration
    // costs ~2x against the plain row gather on width-1 workloads
    // (per-formula bounded checks). Frozen rows skip their gather outright
    // — the accumulator would be discarded anyway — matching the legacy
    // bounded-until loop's work profile as well as its bits.
    const std::uint64_t* mw =
        masks != nullptr ? masks[0].words().data() : nullptr;
    forEachBlock(M, exec, [&](std::uint32_t begin, std::uint32_t end) {
      if (mw != nullptr) {
        ks.maskedRowGather(view, X.data(), mw, Y.data(), begin, end);
      } else {
        ks.rowGather(view, X.data(), Y.data(), begin, end);
      }
    });
    const SimdMetrics& metrics = simdMetrics();
    metrics.panels.inc();
    if (stats != nullptr) stats->panels = 1;
    return;
  }

  // Column-panel decomposition: tile the k RHS columns into lane-aligned
  // panels (L2-sized when that keeps a panel's X slice cache-resident — see
  // spmmPanelWidth) and reuse one CSR traversal per panel. Each panel's
  // packed-mask pointers are resolved once, outside the row loops.
  const std::size_t width = panelWidthFor(M, k, ks.lanes, exec);
  const std::size_t panels = (k + width - 1) / width;
  std::vector<std::vector<const std::uint64_t*>> panelMasks;
  if (masks != nullptr) {
    panelMasks.resize(panels);
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t j0 = p * width;
      const std::size_t w = k - j0 < width ? k - j0 : width;
      panelMasks[p].resize(w);
      for (std::size_t j = 0; j < w; ++j) {
        panelMasks[p][j] = masks[j0 + j].words().data();
      }
    }
  }

  std::uint64_t columnTasks = 0;
  if (!exec.parallelFor(M.numNonZeros()) ||
      (M.blockCount() <= 1 && panels <= 1)) {
    for (std::size_t p = 0; p < panels; ++p) {
      const std::size_t j0 = p * width;
      const std::size_t w = k - j0 < width ? k - j0 : width;
      ks.panelGather(view, X.data(), k, j0, w,
                     masks != nullptr ? panelMasks[p].data() : nullptr,
                     Y.data(), 0, M.numRows());
    }
  } else {
    // Column-wise split across the pool: the task grid is row blocks x
    // column panels, so a wide group parallelizes even when the matrix has
    // few row blocks (the "many small columns" shape). Every (row, column)
    // output cell belongs to exactly one (block, panel) task and each
    // column's accumulation order is fixed, so the fan-out stays race-free
    // and bit-identical at any thread count.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(M.blockCount() * panels);
    for (std::size_t b = 0; b < M.blockCount(); ++b) {
      for (std::size_t p = 0; p < panels; ++p) {
        tasks.push_back([&M, &X, k, width, p, b, &ks, view, &panelMasks,
                         masks, &Y] {
          const std::size_t j0 = p * width;
          const std::size_t w = k - j0 < width ? k - j0 : width;
          ks.panelGather(view, X.data(), k, j0, w,
                         masks != nullptr ? panelMasks[p].data() : nullptr,
                         Y.data(), M.blockBegin(b), M.blockEnd(b));
        });
      }
    }
    columnTasks = tasks.size();
    exec.runner(std::move(tasks));
  }

  const SimdMetrics& metrics = simdMetrics();
  metrics.panels.add(panels);
  if (stats != nullptr) {
    stats->panels = panels;
    stats->columnTasks = columnTasks;
  }
}

#ifndef NDEBUG
bool masksMatch(const std::vector<BitVector>& masks, std::size_t k,
                std::uint32_t numRows) {
  if (masks.size() != k) return false;
  for (const BitVector& m : masks) {
    if (m.size() != numRows) return false;
  }
  return true;
}
#endif

}  // namespace

void spmv(const CsrMatrix& A, const std::vector<double>& x,
          std::vector<double>& y, const Exec& exec) {
  A.requireOriginal("la::spmv");
  assert(x.size() == A.numCols());
  const detail::KernelSet& ks = dispatchKernels(exec, nullptr);
  const detail::CsrView view = viewOf(A);
  y.resize(A.numRows());
  forEachBlock(A, exec, [&](std::uint32_t begin, std::uint32_t end) {
    ks.rowGather(view, x.data(), y.data(), begin, end);
  });
}

void spmvLeft(const CsrMatrix& A, const std::vector<double>& x,
              std::vector<double>& y, const Exec& exec) {
  const CsrMatrix& T = A.transposed();
  assert(x.size() == T.numCols());

  // Near-point-mass x (a single initial state, the first transient steps):
  // the legacy source-major scatter costs only the support's nonzeros,
  // while the target-major gather always traverses every nonzero. Scatter
  // and gather are bitwise-equal (kernel note above), so picking by
  // sparsity is invisible to results. The support scan exits as soon as x
  // is provably dense, so dense steps pay O(cap), not O(n). The scatter
  // reads the original orientation, so a transpose-only matrix always
  // takes the (bitwise-identical) gather below. The scatter stays scalar —
  // it is support-bound, not lane-bound — so it skips SIMD dispatch.
  const std::uint32_t n = A.numRows();
  if (A.hasOriginal()) {
    const std::uint32_t sparseCap = n / 64 + 1;
    std::uint32_t support = 0;
    for (std::uint32_t s = 0; s < n && support <= sparseCap; ++s) {
      support += x[s] != 0.0 ? 1 : 0;
    }
    if (support <= sparseCap) {
      const std::uint64_t* rowPtr = A.rowPtr().data();
      const std::uint32_t* col = A.col().data();
      const double* val = A.val().data();
      y.assign(T.numRows(), 0.0);
      for (std::uint32_t s = 0; s < n; ++s) {
        const double xs = x[s];
        if (xs == 0.0) continue;
        for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) {
          y[col[k]] += xs * val[k];
        }
      }
      return;
    }
  }

  const detail::KernelSet& ks = dispatchKernels(exec, nullptr);
  const detail::CsrView view = viewOf(T);
  y.resize(T.numRows());
  forEachBlock(T, exec, [&](std::uint32_t begin, std::uint32_t end) {
    ks.rowGather(view, x.data(), y.data(), begin, end);
  });
}

void spmm(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
          std::vector<double>& Y, const Exec& exec, SpmmStats* stats) {
  A.requireOriginal("la::spmm");
  spmmImpl(A, X, k, nullptr, Y, exec, stats);
}

void spmmLeft(const CsrMatrix& A, const std::vector<double>& X, std::size_t k,
              std::vector<double>& Y, const Exec& exec, SpmmStats* stats) {
  spmmImpl(A.transposed(), X, k, nullptr, Y, exec, stats);
}

void spmmMasked(const CsrMatrix& A, const std::vector<double>& X,
                std::size_t k, const std::vector<BitVector>& masks,
                std::vector<double>& Y, const Exec& exec, SpmmStats* stats) {
  A.requireOriginal("la::spmmMasked");
  assert(A.numRows() == A.numCols());
  assert(masksMatch(masks, k, A.numRows()));
  spmmImpl(A, X, k, masks.data(), Y, exec, stats);
}

void spmmLeftMasked(const CsrMatrix& A, const std::vector<double>& X,
                    std::size_t k, const std::vector<BitVector>& masks,
                    std::vector<double>& Y, const Exec& exec,
                    SpmmStats* stats) {
  const CsrMatrix& T = A.transposed();
  assert(A.numRows() == A.numCols());
  assert(masksMatch(masks, k, A.numRows()));
  spmmImpl(T, X, k, masks.data(), Y, exec, stats);
}

}  // namespace mimostat::la
