// la::Exec — how a linear-algebra call runs: sequentially, or fanned out
// over a caller-supplied task runner (typically engine::ThreadPool::run).
//
// The runner only changes *where* block tasks execute, never *what* they
// compute: kernels partition work by the matrix's fixed block table and each
// output element is written by exactly one task, so results are bit-identical
// with no runner, a 1-thread pool, or an 8-thread pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "la/simd.hpp"

namespace mimostat::la {

/// Executes a batch of independent tasks and returns when all are done.
/// Same shape as smc::TaskRunner; bind engine::ThreadPool with
///   la::Exec exec{[&pool](auto tasks) { pool.run(std::move(tasks)); }};
using TaskRunner = std::function<void(std::vector<std::function<void()>>)>;

struct Exec {
  /// Threshold used when parallelThresholdNnz is unset.
  static constexpr std::uint64_t kDefaultParallelThresholdNnz = 1ull << 15;

  /// Empty = run sequentially on the calling thread.
  TaskRunner runner;
  /// Work with fewer nonzeros than this stays sequential even when a
  /// runner is present — below it, task dispatch costs more than the spin
  /// over the nonzeros. nullopt = kDefaultParallelThresholdNnz; optional so
  /// an injector (the engine) can distinguish "unset" from an explicitly
  /// chosen value, including one equal to the default.
  std::optional<std::uint64_t> parallelThresholdNnz;
  /// Force the SIMD dispatch target for this call. nullopt = the
  /// process-wide la::activeSimdTarget() (MIMOSTAT_SIMD env override, else
  /// the widest supported target). Outputs are bit-identical across
  /// targets by construction, so this is a performance/testing knob only —
  /// an unsupported forced target degrades to scalar.
  std::optional<SimdTarget> simd;
  /// Force the SpMM column-panel width (clamped to the kernels' register
  /// cap). nullopt = la::spmmPanelWidth's L2-budget choice. Exists so tests
  /// and benches can pin odd panel boundaries; results never depend on it.
  std::optional<std::size_t> spmmPanelColumns;

  /// Should a kernel over `nnz` nonzeros fan out?
  [[nodiscard]] bool parallelFor(std::uint64_t nnz) const {
    return runner != nullptr &&
           nnz >= parallelThresholdNnz.value_or(kDefaultParallelThresholdNnz);
  }
};

}  // namespace mimostat::la
