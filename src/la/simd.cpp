#include "la/simd.hpp"

#include <cstdlib>

#include "la/simd_kernels.hpp"
#include "util/log.hpp"

namespace mimostat::la {

namespace detail {
namespace {

// Scalar reference policies: exactly the loops the pre-dispatch kernels
// ran. Every vector target is asserted bitwise against these.
struct ScalarLanes {
  using Vec = double;
  static constexpr std::size_t kLanes = 1;
  static Vec zero() { return 0.0; }
  static Vec broadcast(double v) { return v; }
  static Vec loadu(const double* p) { return *p; }
  static void storeu(double* p, Vec v) { *p = v; }
  static Vec mul(Vec a, Vec b) { return a * b; }
  static Vec add(Vec a, Vec b) { return a + b; }
};

struct ScalarRow {
  static double gather(const CsrView& m, const double* x, std::uint64_t begin,
                       std::uint64_t end) {
    double acc = 0.0;
    for (std::uint64_t e = begin; e < end; ++e) {
      acc += m.val[e] * x[m.col[e]];
    }
    return acc;
  }
};

}  // namespace

const KernelSet& scalarKernels() {
  static constexpr KernelSet kSet{&panelGatherImpl<ScalarLanes>,
                                  &rowGatherImpl<ScalarRow>,
                                  &maskedRowGatherImpl<ScalarRow>,
                                  /*lanes=*/1, /*compiled=*/true};
  return kSet;
}

const KernelSet& scalarStandIn() {
  // Returned by a target TU whose ISA flags were absent at build time:
  // scalar code, flagged uncompiled so supported()/dispatch report honestly.
  static constexpr KernelSet kSet{&panelGatherImpl<ScalarLanes>,
                                  &rowGatherImpl<ScalarRow>,
                                  &maskedRowGatherImpl<ScalarRow>,
                                  /*lanes=*/1, /*compiled=*/false};
  return kSet;
}

const KernelSet& kernelsFor(SimdTarget target) {
  switch (target) {
    case SimdTarget::kSse2:
      return sse2Kernels();
    case SimdTarget::kAvx2:
      return avx2Kernels();
    case SimdTarget::kNeon:
      return neonKernels();
    case SimdTarget::kScalar:
      break;
  }
  return scalarKernels();
}

}  // namespace detail

const char* simdTargetName(SimdTarget target) {
  switch (target) {
    case SimdTarget::kScalar:
      return "scalar";
    case SimdTarget::kSse2:
      return "sse2";
    case SimdTarget::kAvx2:
      return "avx2";
    case SimdTarget::kNeon:
      return "neon";
  }
  return "scalar";
}

std::optional<SimdTarget> parseSimdTarget(std::string_view name) {
  if (name == "scalar") return SimdTarget::kScalar;
  if (name == "sse2") return SimdTarget::kSse2;
  if (name == "avx2") return SimdTarget::kAvx2;
  if (name == "neon") return SimdTarget::kNeon;
  return std::nullopt;
}

std::size_t simdLanes(SimdTarget target) {
  return detail::kernelsFor(target).lanes;
}

bool simdTargetCompiled(SimdTarget target) {
  return detail::kernelsFor(target).compiled;
}

bool simdTargetSupported(SimdTarget target) {
  if (target == SimdTarget::kScalar) return true;
  if (!simdTargetCompiled(target)) return false;
  switch (target) {
    case SimdTarget::kSse2:
    case SimdTarget::kNeon:
      // Architecture baselines: if the TU compiled, the CPU runs it.
      return true;
    case SimdTarget::kAvx2: {
#if defined(__x86_64__) || defined(__i386__)
      // cpuid-backed, probed once by the compiler runtime.
      static const bool kHasAvx2 = __builtin_cpu_supports("avx2") != 0;
      return kHasAvx2;
#else
      return false;
#endif
    }
    case SimdTarget::kScalar:
      break;
  }
  return true;
}

SimdTarget bestSimdTarget() {
  for (const SimdTarget t :
       {SimdTarget::kAvx2, SimdTarget::kNeon, SimdTarget::kSse2}) {
    if (simdTargetSupported(t)) return t;
  }
  return SimdTarget::kScalar;
}

SimdTarget resolveSimdEnvValue(const char* value, std::string* warning) {
  if (value == nullptr || *value == '\0') return bestSimdTarget();
  const std::optional<SimdTarget> parsed = parseSimdTarget(value);
  if (!parsed) {
    if (warning != nullptr) {
      *warning = std::string("unknown MIMOSTAT_SIMD value \"") + value +
                 "\" (expected scalar/sse2/avx2/neon) — using scalar";
    }
    return SimdTarget::kScalar;
  }
  if (!simdTargetSupported(*parsed)) {
    if (warning != nullptr) {
      *warning = std::string("MIMOSTAT_SIMD=") + value +
                 " is not supported on this host — using scalar";
    }
    return SimdTarget::kScalar;
  }
  return *parsed;
}

SimdTarget simdTargetFromEnv() {
  std::string warning;
  const SimdTarget target = resolveSimdEnvValue(
      std::getenv("MIMOSTAT_SIMD"),  // NOLINT(concurrency-mt-unsafe)
      &warning);
  if (!warning.empty()) MS_LOG_WARN("la::simd: %s", warning.c_str());
  return target;
}

SimdTarget activeSimdTarget() {
  static const SimdTarget kActive = simdTargetFromEnv();
  return kActive;
}

SimdTarget resolveSimdTarget(std::optional<SimdTarget> override_) {
  if (!override_) return activeSimdTarget();
  if (simdTargetSupported(*override_)) return *override_;
  // A forced-but-unsupported target degrades to scalar, never to a wider
  // set of instructions than the caller asked for.
  return SimdTarget::kScalar;
}

std::size_t spmmPanelWidth(std::uint32_t rhsRows, std::size_t k,
                           std::size_t lanes) {
  if (lanes == 0) lanes = 1;
  // Fixed L2 budget — a constant, never probed, so panel counts match on
  // every host (the bit-identity tests compare counters across targets).
  constexpr std::uint64_t kPanelTargetBytes = 256ull * 1024ull;
  std::size_t wide = detail::kMaxPanelColumns;
  if (k < wide) wide = k;
  if (wide > lanes) wide -= wide % lanes;  // keep whole vectors when we can
  if (wide == 0) wide = 1;
  const std::uint64_t rowBytes =
      static_cast<std::uint64_t>(rhsRows) * sizeof(double);
  if (rowBytes == 0) return wide;
  std::size_t fit = static_cast<std::size_t>(kPanelTargetBytes / rowBytes);
  if (fit < lanes) {
    // No lane-multiple panel keeps X cache-resident: narrowing would only
    // re-stream the CSR arrays without a hit-rate win, so go wide.
    return wide;
  }
  fit -= fit % lanes;
  return fit < wide ? fit : wide;
}

}  // namespace mimostat::la
