// Internal kernel plumbing for the SIMD dispatch layer — include only from
// src/la/ translation units (the simd-intrinsics lint rule bans intrinsics
// everywhere else, and this header's templates are instantiated inside the
// per-target TUs so each instantiation is compiled with that target's ISA
// flags).
//
// Layout: every target supplies a KernelSet of three function pointers —
// a column-panel gather (the SpMM workhorse), a plain row gather (SpMV /
// width-1) and a frozen-row-skipping masked row gather (the per-formula
// bounded-until shape). The panel gather is one shared template over a
// "lanes" policy (vector type + load/store/broadcast/mul/add); the row
// gathers share a template over a per-row reduction policy. Policies never
// expose an FMA: multiply and add round separately, exactly like the scalar
// reference, which is what keeps every target bit-identical (see
// simd.hpp's determinism note).
#pragma once

#include <cstddef>
#include <cstdint>

#include "la/simd.hpp"

namespace mimostat::la::detail {

/// Raw CSR views — plain pointers so the per-target TUs stay independent of
/// the container headers.
struct CsrView {
  const std::uint64_t* rowPtr;
  const std::uint32_t* col;
  const double* val;
};

/// Widest column panel any kernel processes in one CSR traversal. Bounded
/// by register pressure: AVX2 holds a 16-wide panel in 4 accumulator
/// registers, SSE2/NEON in 8 — wider panels spill and lose the point.
inline constexpr std::size_t kMaxPanelColumns = 16;

/// Gather rows [rowBegin, rowEnd) of the column panel [j0, j0 + width) of
/// the row-major (* x k) tile X into Y. `maskWords` is nullptr for an
/// unmasked call, else `width` non-null packed-word pointers (column j0+j's
/// BitVector words): a set bit keeps X's value — the gathered accumulator
/// is computed and discarded, so frozen columns never perturb live ones.
using PanelGatherFn = void (*)(const CsrView& m, const double* X,
                               std::size_t k, std::size_t j0,
                               std::size_t width,
                               const std::uint64_t* const* maskWords,
                               double* Y, std::uint32_t rowBegin,
                               std::uint32_t rowEnd);

/// y[r] = sum_e val[e] * x[col[e]] over rows [rowBegin, rowEnd).
using RowGatherFn = void (*)(const CsrView& m, const double* x, double* y,
                             std::uint32_t rowBegin, std::uint32_t rowEnd);

/// Width-1 masked gather: frozen rows (set bit in `maskWords`) copy x and
/// skip their gather outright — the per-formula bounded-until work profile.
using MaskedRowGatherFn = void (*)(const CsrView& m, const double* x,
                                   const std::uint64_t* maskWords, double* y,
                                   std::uint32_t rowBegin,
                                   std::uint32_t rowEnd);

struct KernelSet {
  PanelGatherFn panelGather;
  RowGatherFn rowGather;
  MaskedRowGatherFn maskedRowGather;
  std::size_t lanes;  ///< doubles per vector register
  bool compiled;      ///< false = scalar stand-in (TU built without the ISA)
};

/// Per-target sets. A target whose TU was compiled without its ISA returns
/// the scalar kernels with compiled = false, so dispatch can never execute
/// an instruction the binary wasn't built for.
[[nodiscard]] const KernelSet& scalarKernels();
[[nodiscard]] const KernelSet& sse2Kernels();
[[nodiscard]] const KernelSet& avx2Kernels();
[[nodiscard]] const KernelSet& neonKernels();

/// Scalar kernels flagged compiled = false — what an ISA-less target TU
/// returns so dispatch degrades safely.
[[nodiscard]] const KernelSet& scalarStandIn();

/// The set a resolved target runs (scalar for anything not compiled in).
[[nodiscard]] const KernelSet& kernelsFor(SimdTarget target);

// ---------------------------------------------------------------- templates

/// Panel gather over a lanes policy. Whole vectors cover the leading
/// lane-multiple of the panel; the remaining columns run in scalar tail
/// accumulators. Per column the accumulation is acc_j += val[e] * xs[j] in
/// ascending-entry order — identical to the scalar strip loop, vectorized
/// or not — and the masked writeback only SELECTS between already-computed
/// values, so outputs are bit-identical across every policy.
template <class Lanes>
void panelGatherImpl(const CsrView& m, const double* X, std::size_t k,
                     std::size_t j0, std::size_t width,
                     const std::uint64_t* const* maskWords, double* Y,
                     std::uint32_t rowBegin, std::uint32_t rowEnd) {
  constexpr std::size_t L = Lanes::kLanes;
  static_assert(kMaxPanelColumns % L == 0);
  const std::size_t nv = width / L;          // whole vectors
  const std::size_t tailBegin = nv * L;      // first scalar-tail column
  for (std::uint32_t r = rowBegin; r < rowEnd; ++r) {
    typename Lanes::Vec vacc[kMaxPanelColumns / L];
    for (std::size_t q = 0; q < nv; ++q) vacc[q] = Lanes::zero();
    double tacc[L > 1 ? L - 1 : 1] = {};
    for (std::uint64_t e = m.rowPtr[r]; e < m.rowPtr[r + 1]; ++e) {
      const double* xs = X + static_cast<std::size_t>(m.col[e]) * k + j0;
      const double v = m.val[e];
      const typename Lanes::Vec vv = Lanes::broadcast(v);
      for (std::size_t q = 0; q < nv; ++q) {
        vacc[q] = Lanes::add(vacc[q], Lanes::mul(vv, Lanes::loadu(xs + q * L)));
      }
      for (std::size_t j = tailBegin; j < width; ++j) {
        tacc[j - tailBegin] += v * xs[j];
      }
    }
    double acc[kMaxPanelColumns];
    for (std::size_t q = 0; q < nv; ++q) Lanes::storeu(acc + q * L, vacc[q]);
    for (std::size_t j = tailBegin; j < width; ++j) {
      acc[j] = tacc[j - tailBegin];
    }
    const std::size_t base = static_cast<std::size_t>(r) * k + j0;
    double* out = Y + base;
    if (maskWords == nullptr) {
      for (std::size_t j = 0; j < width; ++j) out[j] = acc[j];
    } else {
      const double* xr = X + base;
      const std::size_t word = r >> 6;
      const unsigned bit = r & 63u;
      for (std::size_t j = 0; j < width; ++j) {
        out[j] = ((maskWords[j][word] >> bit) & 1u) != 0 ? xr[j] : acc[j];
      }
    }
  }
}

/// Row gathers over a per-row reduction policy (Row::gather performs the
/// scalar-order accumulation of one row, possibly with vector multiplies
/// whose lane results are added back in ascending-entry order).
template <class Row>
void rowGatherImpl(const CsrView& m, const double* x, double* y,
                   std::uint32_t rowBegin, std::uint32_t rowEnd) {
  for (std::uint32_t r = rowBegin; r < rowEnd; ++r) {
    y[r] = Row::gather(m, x, m.rowPtr[r], m.rowPtr[r + 1]);
  }
}

template <class Row>
void maskedRowGatherImpl(const CsrView& m, const double* x,
                         const std::uint64_t* maskWords, double* y,
                         std::uint32_t rowBegin, std::uint32_t rowEnd) {
  for (std::uint32_t r = rowBegin; r < rowEnd; ++r) {
    if (((maskWords[r >> 6] >> (r & 63u)) & 1u) != 0) {
      y[r] = x[r];  // frozen: skip the gather, the result would be discarded
      continue;
    }
    y[r] = Row::gather(m, x, m.rowPtr[r], m.rowPtr[r + 1]);
  }
}

}  // namespace mimostat::la::detail
