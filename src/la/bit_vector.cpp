#include "la/bit_vector.hpp"

#include <cassert>

namespace mimostat::la {

BitVector::BitVector(std::size_t numBits, bool value)
    : numBits_(numBits),
      words_((numBits + kWordBits - 1) / kWordBits,
             value ? ~Word{0} : Word{0}) {
  if (value) maskTail();
}

void BitVector::maskTail() {
  const std::size_t tail = numBits_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (Word{1} << tail) - 1;
  }
}

void BitVector::setAll() {
  for (Word& w : words_) w = ~Word{0};
  maskTail();
}

void BitVector::clearAll() {
  for (Word& w : words_) w = 0;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  assert(numBits_ == other.numBits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  assert(numBits_ == other.numBits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

BitVector& BitVector::operator-=(const BitVector& other) {
  assert(numBits_ == other.numBits_);
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= ~other.words_[w];
  return *this;
}

BitVector BitVector::operator~() const {
  BitVector result(*this);
  for (Word& w : result.words_) w = ~w;
  result.maskTail();
  return result;
}

std::size_t BitVector::count() const {
  std::size_t total = 0;
  for (const Word w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVector::empty() const {
  for (const Word w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool BitVector::full() const { return count() == numBits_; }

BitVector BitVector::fromBytes(const std::vector<std::uint8_t>& bytes) {
  BitVector result(bytes.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (bytes[i] != 0) result.set(i);
  }
  return result;
}

std::vector<std::uint8_t> BitVector::toBytes() const {
  std::vector<std::uint8_t> bytes(numBits_, 0);
  forEachSetBit([&](std::size_t i) { bytes[i] = 1; });
  return bytes;
}

}  // namespace mimostat::la
