// la::Solver — iterative solvers for the engine's two linear-algebra
// problem shapes, each reporting iterations / residual / convergence.
//
//   1. Fixed-point linear systems  x = P x + b  restricted to an active row
//      set (unbounded-until probabilities, expected reachability rewards):
//      LinearSolver with GaussSeidel (in-place sweeps, the legacy default —
//      bit-identical to the pre-refactor value iteration), Jacobi
//      (two-buffer, deterministic parallel over the block table; different
//      iterates than Gauss-Seidel but the same fixed point) and
//      GaussSeidelRB (red-black block coloring: parallel like Jacobi,
//      GS-like coupling between the two colors).
//   2. Stationary distributions  pi = pi P  (steady-state rewards):
//      PowerIteration, absorbing the legacy mc::steady loop including its
//      Cesaro-averaging option for periodic chains.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "la/csr_matrix.hpp"
#include "la/exec.hpp"

namespace mimostat::la {

/// Which LinearSolver serves the unbounded-until linear systems.
enum class SolverKind {
  kGaussSeidel,
  kJacobi,
  kGaussSeidelRB,
};

[[nodiscard]] const char* solverKindName(SolverKind kind);

/// Convergence report every solver produces.
struct SolveStats {
  std::uint64_t iterations = 0;
  /// Termination metric at the last iteration: max-norm update delta for
  /// the linear solvers, L1 iterate delta for power iteration.
  double residual = 0.0;
  bool converged = false;
  /// Which solver produced this report ("gauss-seidel", "jacobi", "power",
  /// "power+cesaro") — stamped by the solver itself, so the name can never
  /// drift from the stats it describes.
  std::string solver;
};

struct SolverOptions {
  double epsilon = 1e-12;
  std::uint64_t maxIterations = 1'000'000;
};

/// Solves x = P x + b restricted to `active` rows; rows outside the set keep
/// their incoming x values (fixed boundary conditions, e.g. prob1 states at
/// 1.0). `b == nullptr` means b = 0.
class LinearSolver {
 public:
  virtual ~LinearSolver() = default;
  virtual SolveStats solve(const CsrMatrix& P,
                           const std::vector<std::uint32_t>& active,
                           const double* b, std::vector<double>& x,
                           const SolverOptions& options,
                           const Exec& exec = {}) const = 0;
};

/// In-place sweeps in ascending active order. Inherently sequential (each
/// update reads earlier updates of the same sweep); `exec` is ignored.
/// Bit-identical to the legacy mc::unbounded value iteration.
class GaussSeidel final : public LinearSolver {
 public:
  SolveStats solve(const CsrMatrix& P,
                   const std::vector<std::uint32_t>& active, const double* b,
                   std::vector<double>& x, const SolverOptions& options,
                   const Exec& exec = {}) const override;
};

/// Two-buffer sweeps reading only the previous iterate, so active rows
/// partition into parallel chunks; bit-identical at any thread count
/// (per-chunk max-deltas combine exactly). Typically needs more iterations
/// than Gauss-Seidel but each one fans out.
class Jacobi final : public LinearSolver {
 public:
  SolveStats solve(const CsrMatrix& P,
                   const std::vector<std::uint32_t>& active, const double* b,
                   std::vector<double>& x, const SolverOptions& options,
                   const Exec& exec = {}) const override;
};

/// Red-black (block-colored) Gauss-Seidel: the active rows are chunked by
/// the same fixed nnz balance as the block table and the chunks colored by
/// parity. A sweep runs two phases — all red chunks, commit, then all
/// black chunks — so black updates read the red values of the SAME sweep
/// (Gauss-Seidel coupling across colors) while chunks within a phase read
/// only pre-phase state (Jacobi within a color). Phases fan out over the
/// pool and, because nothing commits until a phase completes, results are
/// bit-identical at any thread count. Convergence sits between Jacobi and
/// sequential Gauss-Seidel; the fixed point is the same.
class GaussSeidelRB final : public LinearSolver {
 public:
  SolveStats solve(const CsrMatrix& P,
                   const std::vector<std::uint32_t>& active, const double* b,
                   std::vector<double>& x, const SolverOptions& options,
                   const Exec& exec = {}) const override;
};

[[nodiscard]] std::unique_ptr<LinearSolver> makeLinearSolver(SolverKind kind);

struct PowerOptions {
  double epsilon = 1e-13;  ///< L1 convergence threshold
  std::uint64_t maxIterations = 200'000;
  bool cesaroAveraging = false;  ///< average iterates (periodic chains)
};

struct PowerResult {
  std::vector<double> distribution;
  SolveStats stats;
};

/// pi_{t+1} = pi_t P from `initial` until the L1 delta drops below epsilon
/// (or, with Cesaro averaging, for maxIterations averaged iterates — the
/// Cesaro limit always exists for finite chains, so that mode always reports
/// converged). The multiply runs on the block table via `exec`; the delta
/// reduction stays sequential, keeping results bit-identical to the legacy
/// scalar loop at any thread count.
class PowerIteration {
 public:
  [[nodiscard]] PowerResult run(const CsrMatrix& P,
                                std::vector<double> initial,
                                const PowerOptions& options,
                                const Exec& exec = {}) const;
};

}  // namespace mimostat::la
