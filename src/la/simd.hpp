// la::SimdTarget — the runtime-dispatched vector backend for the spmv.cpp
// kernels.
//
// Targets are probed once per process (cpuid on x86, architecture baseline
// elsewhere) and can be forced per call (la::Exec::simd), per engine
// (engine::EngineOptions::simd) or process-wide (the MIMOSTAT_SIMD
// environment variable: "scalar", "sse2", "avx2" or "neon"; an invalid or
// unsupported value falls back to scalar with a warning). Forcing exists so
// one host can exercise every compiled path — the tests assert each target
// bitwise against the scalar reference.
//
// Determinism contract: every vectorized kernel places its lanes ACROSS the
// k right-hand-side columns of one row (the row-major X tile), never across
// the nonzeros of a row, so each column still accumulates its entries in
// exactly the scalar order. Lane-reordering therefore cannot change a sum,
// and FMA stays off everywhere (contraction rounds once where the scalar
// reference rounds twice): each lane performs the same multiply-then-add
// the scalar loop does. Switching targets is a pure performance knob —
// outputs are bit-identical across scalar/SSE2/AVX2/NEON at any thread
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace mimostat::la {

enum class SimdTarget : std::uint8_t {
  kScalar = 0,  ///< portable reference kernels (always available)
  kSse2 = 1,    ///< x86-64 baseline, 2 double lanes
  kAvx2 = 2,    ///< cpuid-gated, 4 double lanes (no FMA)
  kNeon = 3,    ///< aarch64 baseline, 2 double lanes
};

inline constexpr std::size_t kSimdTargetCount = 4;

/// Stable lowercase name ("scalar", "sse2", "avx2", "neon") — the same
/// spelling MIMOSTAT_SIMD parses and PlanStats/CSV diagnostics report.
[[nodiscard]] const char* simdTargetName(SimdTarget target);

/// Inverse of simdTargetName; nullopt for anything else.
[[nodiscard]] std::optional<SimdTarget> parseSimdTarget(std::string_view name);

/// Doubles per vector register (scalar = 1). Also the unit the panel
/// kernels pad their column strips to.
[[nodiscard]] std::size_t simdLanes(SimdTarget target);

/// True when this binary contains real kernels for the target (the
/// per-target translation unit was built with the matching ISA flags).
[[nodiscard]] bool simdTargetCompiled(SimdTarget target);

/// Compiled AND executable on this CPU (cpuid-probed once for AVX2;
/// SSE2/NEON are architecture baselines). kScalar is always supported.
[[nodiscard]] bool simdTargetSupported(SimdTarget target);

/// Widest supported target on this host.
[[nodiscard]] SimdTarget bestSimdTarget();

/// Resolve a MIMOSTAT_SIMD-style value: nullptr/empty = bestSimdTarget();
/// a known supported name = that target; anything else = kScalar with an
/// explanation in *warning (when non-null). Pure — no caching, no logging —
/// so tests can drive every branch.
[[nodiscard]] SimdTarget resolveSimdEnvValue(const char* value,
                                             std::string* warning = nullptr);

/// Re-reads MIMOSTAT_SIMD on every call (logs a warning for invalid or
/// unsupported values). activeSimdTarget() below caches the first read.
[[nodiscard]] SimdTarget simdTargetFromEnv();

/// The process-wide default target: the first simdTargetFromEnv() result,
/// cached. Per-call overrides (Exec::simd) take precedence over this.
[[nodiscard]] SimdTarget activeSimdTarget();

/// The target a kernel call actually runs: a supported override wins; an
/// unsupported override degrades to kScalar (never to a wider target — a
/// forced path must not silently execute different code); no override =
/// activeSimdTarget().
[[nodiscard]] SimdTarget resolveSimdTarget(std::optional<SimdTarget> override_);

/// Column-panel width the SpMM kernels pick for an rhsRows x k row-major
/// tile on a `lanes`-wide target: the widest register-friendly strip
/// (<= detail::kMaxPanelColumns) unless a narrower lane-multiple panel fits
/// the fixed L2 budget — then the panel is shrunk so one panel's X slice
/// stays cache-resident across the whole CSR traversal. Pure arithmetic on
/// fixed constants (the cache size is never probed), so the panel layout —
/// and every counter derived from it — is identical on every host.
[[nodiscard]] std::size_t spmmPanelWidth(std::uint32_t rhsRows, std::size_t k,
                                         std::size_t lanes);

/// Per-call traversal accounting the SpMM entry points can surface (the
/// bounded-group executor sums these into pctl::PlanStats).
struct SpmmStats {
  /// Column panels processed — CSR traversals per step (ceil(k / width)).
  std::uint64_t panels = 0;
  /// Tasks fanned out when the call went parallel (row blocks x panels —
  /// the column-wise split); 0 for sequential calls.
  std::uint64_t columnTasks = 0;
  /// The dispatch target the kernels ran on.
  SimdTarget target = SimdTarget::kScalar;
};

}  // namespace mimostat::la
