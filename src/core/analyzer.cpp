#include "core/analyzer.hpp"

#include "mc/transient.hpp"
#include "pctl/parser.hpp"

namespace mimostat::core {

PerformanceAnalyzer::PerformanceAnalyzer(const dtmc::Model& model,
                                         dtmc::BuildOptions buildOptions)
    : model_(model), build_(dtmc::buildExplicit(model, buildOptions)) {
  checker_ = std::make_unique<mc::Checker>(build_.dtmc, model_);
}

GuaranteeReport PerformanceAnalyzer::check(std::string_view property) const {
  const mc::CheckResult result = checker_->check(property);
  GuaranteeReport report;
  report.property = std::string(property);
  report.value = result.value;
  report.satisfied = result.satisfied;
  report.states = build_.dtmc.numStates();
  report.transitions = build_.dtmc.numTransitions();
  report.reachabilityIterations = build_.reachabilityIterations;
  report.buildSeconds = build_.buildSeconds;
  report.checkSeconds = result.checkSeconds;
  return report;
}

std::vector<GuaranteeReport> PerformanceAnalyzer::sweepInstantaneous(
    const std::vector<std::uint64_t>& horizons,
    const std::string& rewardName) const {
  std::vector<GuaranteeReport> reports;
  reports.reserve(horizons.size());
  for (const std::uint64_t horizon : horizons) {
    std::string property = "R=? [ I=" + std::to_string(horizon) + " ]";
    if (!rewardName.empty()) {
      property = "R{\"" + rewardName + "\"}=? [ I=" + std::to_string(horizon) +
                 " ]";
    }
    reports.push_back(check(property));
  }
  return reports;
}

mc::SteadyDetection PerformanceAnalyzer::detectSteadyState(
    double tolerance, std::uint64_t window, std::uint64_t maxSteps) const {
  const std::vector<double> reward = build_.dtmc.evalReward(model_, "");
  return mc::detectRewardSteadyState(build_.dtmc, reward, tolerance, window,
                                     maxSteps);
}

PerformanceAnalyzer::CrossCheck PerformanceAnalyzer::crossCheck(
    std::string_view property, const sim::ErrorSource& source,
    std::uint64_t steps) const {
  CrossCheck result;
  result.modelChecked = checker_->check(property).value;
  sim::BerRunOptions options;
  options.maxSteps = steps;
  result.simulation = sim::runBer(source, options);
  result.interval95 = result.simulation.errors.wilson(0.95);
  result.insideInterval = result.interval95.contains(result.modelChecked);
  return result;
}

}  // namespace mimostat::core
