#include "core/analyzer.hpp"

#include <stdexcept>

#include "mc/transient.hpp"

namespace mimostat::core {

PerformanceAnalyzer::PerformanceAnalyzer(const dtmc::Model& model,
                                         dtmc::BuildOptions buildOptions)
    : model_(model),
      buildOptions_(buildOptions),
      built_(engine::defaultEngine().ensureBuilt(model, buildOptions)) {}

GuaranteeReport PerformanceAnalyzer::toReport(
    const engine::AnalysisResult& result) const {
  if (!result.ok()) throw std::runtime_error(result.error);
  GuaranteeReport report;
  report.property = result.property;
  report.value = result.value;
  report.satisfied = result.satisfied;
  report.states = built_->dtmc.numStates();
  report.transitions = built_->dtmc.numTransitions();
  report.reachabilityIterations = built_->reachabilityIterations;
  report.buildSeconds = built_->buildSeconds;
  report.checkSeconds = result.checkSeconds;
  return report;
}

GuaranteeReport PerformanceAnalyzer::check(std::string_view property) const {
  return checkAll({std::string(property)}).front();
}

std::vector<GuaranteeReport> PerformanceAnalyzer::checkAll(
    const std::vector<std::string>& properties) const {
  engine::AnalysisRequest request;
  request.model = &model_;
  request.properties = properties;
  request.options.backend = engine::Backend::kExact;
  request.options.modelKey = built_->signature;
  request.options.build = buildOptions_;
  const engine::AnalysisResponse response =
      engine::defaultEngine().analyze(request);

  std::vector<GuaranteeReport> reports;
  reports.reserve(response.results.size());
  for (const engine::AnalysisResult& result : response.results) {
    reports.push_back(toReport(result));
  }
  return reports;
}

std::vector<GuaranteeReport> PerformanceAnalyzer::sweepInstantaneous(
    const std::vector<std::uint64_t>& horizons,
    const std::string& rewardName) const {
  std::vector<std::string> properties;
  properties.reserve(horizons.size());
  for (const std::uint64_t horizon : horizons) {
    std::string property = "R=? [ I=" + std::to_string(horizon) + " ]";
    if (!rewardName.empty()) {
      property = "R{\"" + rewardName + "\"}=? [ I=" + std::to_string(horizon) +
                 " ]";
    }
    properties.push_back(std::move(property));
  }
  return checkAll(properties);
}

mc::SteadyDetection PerformanceAnalyzer::detectSteadyState(
    double tolerance, std::uint64_t window, std::uint64_t maxSteps) const {
  const std::vector<double> reward = built_->dtmc.evalReward(model_, "");
  return mc::detectRewardSteadyState(built_->dtmc, reward, tolerance, window,
                                     maxSteps);
}

PerformanceAnalyzer::CrossCheck PerformanceAnalyzer::crossCheck(
    std::string_view property, const sim::ErrorSource& source,
    std::uint64_t steps) const {
  CrossCheck result;
  result.modelChecked = check(property).value;
  sim::BerRunOptions options;
  options.maxSteps = steps;
  result.simulation = sim::runBer(source, options);
  result.interval95 = result.simulation.errors.wilson(0.95);
  result.insideInterval = result.interval95.contains(result.modelChecked);
  return result;
}

}  // namespace mimostat::core
