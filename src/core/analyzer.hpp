// PerformanceAnalyzer — compatibility shim over engine::AnalysisEngine.
//
// The original facade API (one model, eager build, per-call property checks)
// is preserved, but every call now routes through the process-wide analysis
// engine: the DTMC build is cached under the model's structural signature,
// property parses are memoized, and sweepInstantaneous() submits one batched
// request whose horizons share a single transient sweep. New code should use
// engine::AnalysisEngine directly.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/report.hpp"
#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "sim/ber_simulator.hpp"

namespace mimostat::core {

class PerformanceAnalyzer {
 public:
  /// Builds the explicit DTMC eagerly (served from the engine's model cache
  /// when a structurally identical design was analyzed before). The model
  /// must outlive the analyzer.
  explicit PerformanceAnalyzer(const dtmc::Model& model,
                               dtmc::BuildOptions buildOptions = {});

  [[nodiscard]] const dtmc::ExplicitDtmc& dtmc() const { return built_->dtmc; }
  [[nodiscard]] std::uint32_t reachabilityIterations() const {
    return built_->reachabilityIterations;
  }
  [[nodiscard]] double buildSeconds() const { return built_->buildSeconds; }
  /// The engine cache key of the underlying model (RequestOptions::modelKey).
  [[nodiscard]] std::uint64_t modelKey() const { return built_->signature; }

  /// Check a property and package the paper-style report row.
  [[nodiscard]] GuaranteeReport check(std::string_view property) const;

  /// Check many properties as one engine request (horizon-bounded reward
  /// queries share a single sweep).
  [[nodiscard]] std::vector<GuaranteeReport> checkAll(
      const std::vector<std::string>& properties) const;

  /// R=?[I=T] for each requested horizon (Tables III/IV/V rows), batched
  /// into one transient sweep.
  [[nodiscard]] std::vector<GuaranteeReport> sweepInstantaneous(
      const std::vector<std::uint64_t>& horizons,
      const std::string& rewardName = {}) const;

  /// Detect steady state of the default reward (tolerance on a window).
  [[nodiscard]] mc::SteadyDetection detectSteadyState(
      double tolerance = 1e-9, std::uint64_t window = 16,
      std::uint64_t maxSteps = 100'000) const;

  struct CrossCheck {
    double modelChecked = 0.0;
    sim::BerRunResult simulation;
    stats::Interval interval95;
    bool insideInterval = false;
  };

  /// Compare a model-checked value against a Monte-Carlo error source.
  [[nodiscard]] CrossCheck crossCheck(std::string_view property,
                                      const sim::ErrorSource& source,
                                      std::uint64_t steps) const;

 private:
  [[nodiscard]] GuaranteeReport toReport(
      const engine::AnalysisResult& result) const;

  const dtmc::Model& model_;
  /// Kept so engine requests (and any post-eviction rebuild) use the same
  /// options the constructor built with.
  dtmc::BuildOptions buildOptions_;
  std::shared_ptr<const engine::BuiltModel> built_;
};

}  // namespace mimostat::core
