// PerformanceAnalyzer — the paper's methodology as a facade.
//
// Given any dtmc::Model it (1) builds the reachable DTMC once, (2) checks
// pCTL performance properties against it, (3) reports the model statistics
// the paper tabulates, (4) can sweep R=?[I=T] over T to exhibit steady
// state, and (5) can cross-check a model-checked value against a
// Monte-Carlo error source with confidence intervals.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/report.hpp"
#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "sim/ber_simulator.hpp"

namespace mimostat::core {

class PerformanceAnalyzer {
 public:
  /// Builds the explicit DTMC eagerly. The model must outlive the analyzer.
  explicit PerformanceAnalyzer(const dtmc::Model& model,
                               dtmc::BuildOptions buildOptions = {});

  [[nodiscard]] const dtmc::ExplicitDtmc& dtmc() const { return build_.dtmc; }
  [[nodiscard]] std::uint32_t reachabilityIterations() const {
    return build_.reachabilityIterations;
  }
  [[nodiscard]] double buildSeconds() const { return build_.buildSeconds; }

  /// Check a property and package the paper-style report row.
  [[nodiscard]] GuaranteeReport check(std::string_view property) const;

  /// R=?[I=T] for each requested horizon (Tables III/IV/V rows).
  [[nodiscard]] std::vector<GuaranteeReport> sweepInstantaneous(
      const std::vector<std::uint64_t>& horizons,
      const std::string& rewardName = {}) const;

  /// Detect steady state of the default reward (tolerance on a window).
  [[nodiscard]] mc::SteadyDetection detectSteadyState(
      double tolerance = 1e-9, std::uint64_t window = 16,
      std::uint64_t maxSteps = 100'000) const;

  struct CrossCheck {
    double modelChecked = 0.0;
    sim::BerRunResult simulation;
    stats::Interval interval95;
    bool insideInterval = false;
  };

  /// Compare a model-checked value against a Monte-Carlo error source.
  [[nodiscard]] CrossCheck crossCheck(std::string_view property,
                                      const sim::ErrorSource& source,
                                      std::uint64_t steps) const;

 private:
  const dtmc::Model& model_;
  dtmc::BuildResult build_;
  std::unique_ptr<mc::Checker> checker_;
};

}  // namespace mimostat::core
