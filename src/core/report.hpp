// Guarantee reports: the value of a checked metric together with the model
// statistics the paper's tables report (state counts, reachability
// iterations, construction + checking time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mimostat::core {

struct GuaranteeReport {
  std::string property;
  double value = 0.0;
  /// For bounded properties (P>=p [...], R<=r [...]): whether the bound
  /// holds from the initial distribution. Always true for =? queries.
  bool satisfied = true;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint32_t reachabilityIterations = 0;
  double buildSeconds = 0.0;
  double checkSeconds = 0.0;

  [[nodiscard]] double totalSeconds() const {
    return buildSeconds + checkSeconds;
  }
};

/// Format a table of reports in the paper's style. Column set is fixed:
/// property, states, time, result.
[[nodiscard]] std::string formatReportTable(
    const std::string& title, const std::vector<GuaranteeReport>& reports);

/// Format one scientific-notation value the way the paper prints results.
[[nodiscard]] std::string formatValue(double value);

/// Format a labelled grid of values in the paper's row-by-column table
/// style (used by sweep pivots): `corner` heads the row-label column,
/// cells[r][c] render through formatValue, NaN cells as "-".
[[nodiscard]] std::string formatValueGrid(
    const std::string& title, const std::string& corner,
    const std::vector<std::string>& rowLabels,
    const std::vector<std::string>& colLabels,
    const std::vector<std::vector<double>>& cells);

}  // namespace mimostat::core
