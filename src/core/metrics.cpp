#include "core/metrics.hpp"

namespace mimostat::core {

const char* metricName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kBestCase:
      return "P1 (best case)";
    case MetricKind::kAverageCase:
      return "P2 (average case)";
    case MetricKind::kWorstCase:
      return "P3 (worst case)";
    case MetricKind::kConvergence:
      return "C1 (convergence)";
  }
  return "?";
}

std::string metricProperty(MetricKind kind, std::uint64_t horizon,
                           int threshold) {
  switch (kind) {
    case MetricKind::kBestCase:
      return "P=? [ G<=" + std::to_string(horizon) + " !flag ]";
    case MetricKind::kAverageCase:
    case MetricKind::kConvergence:
      return "R=? [ I=" + std::to_string(horizon) + " ]";
    case MetricKind::kWorstCase:
      return "P=? [ F<=" + std::to_string(horizon) + " errs>" +
             std::to_string(threshold) + " ]";
  }
  return {};
}

}  // namespace mimostat::core
