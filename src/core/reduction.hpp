// Reduction registry and end-to-end reduction verification — the paper's
// §IV-A-3/4 packaged as an API.
//
// A ReductionCase pairs a full model with its hand-reduced counterpart and
// the properties the reduction must preserve. verifyReduction() builds both,
// checks every property on both, and additionally verifies that the
// partition induced by the abstraction (when provided) is lumpable —
// the numeric analogue of the paper's Strong Lumping Theorem argument.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "dtmc/model.hpp"
#include "lump/verify.hpp"

namespace mimostat::core {

/// Maps a full-model state to its reduced-model representative (F_abs).
using AbstractionFn = std::function<dtmc::State(const dtmc::State&)>;

struct ReductionVerdict {
  bool propertiesPreserved = true;
  bool partitionLumpable = true;  ///< only meaningful when F_abs provided
  double worstPropertyDiff = 0.0;
  double worstLumpMismatch = 0.0;
  std::uint64_t fullStates = 0;
  std::uint64_t reducedStates = 0;
  std::vector<lump::PropertyComparison> comparisons;

  [[nodiscard]] bool sound() const {
    return propertiesPreserved && partitionLumpable;
  }
  [[nodiscard]] double reductionFactor() const {
    return reducedStates == 0
               ? 0.0
               : static_cast<double>(fullStates) /
                     static_cast<double>(reducedStates);
  }
};

/// Build both models, compare the properties, and (when an abstraction is
/// given) verify lumpability of the induced partition on the full model.
[[nodiscard]] ReductionVerdict verifyReduction(
    const dtmc::Model& fullModel, const dtmc::Model& reducedModel,
    const std::vector<std::string>& properties,
    const AbstractionFn& abstraction = nullptr, double tolerance = 1e-9,
    const dtmc::BuildOptions& buildOptions = {});

}  // namespace mimostat::core
