#include "core/reduction.hpp"

#include <algorithm>
#include <unordered_map>

#include "util/hash.hpp"

namespace mimostat::core {

ReductionVerdict verifyReduction(const dtmc::Model& fullModel,
                                 const dtmc::Model& reducedModel,
                                 const std::vector<std::string>& properties,
                                 const AbstractionFn& abstraction,
                                 double tolerance,
                                 const dtmc::BuildOptions& buildOptions) {
  const dtmc::BuildResult full = dtmc::buildExplicit(fullModel, buildOptions);
  const dtmc::BuildResult reduced =
      dtmc::buildExplicit(reducedModel, buildOptions);

  ReductionVerdict verdict;
  verdict.fullStates = full.dtmc.numStates();
  verdict.reducedStates = reduced.dtmc.numStates();

  verdict.comparisons = lump::compareProperties(
      full.dtmc, fullModel, reduced.dtmc, reducedModel, properties);
  for (const auto& cmp : verdict.comparisons) {
    verdict.worstPropertyDiff =
        std::max(verdict.worstPropertyDiff, cmp.absDiff);
  }
  verdict.propertiesPreserved = verdict.worstPropertyDiff <= tolerance;

  if (abstraction) {
    // Partition of the full state space induced by F_abs.
    std::unordered_map<dtmc::State, std::uint32_t, util::VecI32Hash> blockIds;
    // lint:allow(reduction-boundary: builds the partition handed to lump::)
    std::vector<std::uint32_t> blockOf(full.dtmc.numStates());
    for (std::uint32_t s = 0; s < full.dtmc.numStates(); ++s) {
      const dtmc::State abstracted = abstraction(full.dtmc.state(s));
      auto [it, inserted] = blockIds.try_emplace(
          abstracted, static_cast<std::uint32_t>(blockIds.size()));
      // lint:allow(reduction-boundary: builds the partition handed to lump::)
      blockOf[s] = it->second;
    }
    // lint:allow(reduction-boundary: builds the partition handed to lump::)
    const lump::Partition partition = lump::partitionFromMap(blockOf);
    const lump::LumpabilityReport report =
        lump::verifyLumpable(full.dtmc, partition, tolerance);
    verdict.partitionLumpable = report.lumpable;
    verdict.worstLumpMismatch = report.worstMismatch;
  }
  return verdict;
}

}  // namespace mimostat::core
