// The paper's performance-metric catalogue (§IV-A-2): best, average and
// worst case error metrics plus the traceback-convergence metric, each
// expressible as a pCTL property string.
#pragma once

#include <cstdint>
#include <string>

namespace mimostat::core {

enum class MetricKind {
  kBestCase,     ///< P1: P=? [ G<=T !flag ]   — no error within T steps
  kAverageCase,  ///< P2: R=? [ I=T ]          — BER at steady state
  kWorstCase,    ///< P3: P=? [ F<=T errs>k ]  — more than k errors within T
  kConvergence,  ///< C1: R=? [ I=T ]          — non-convergence probability
};

[[nodiscard]] const char* metricName(MetricKind kind);

/// Build the pCTL property string for a metric.
/// @param horizon    the time bound T
/// @param threshold  worst-case error-count threshold k (kWorstCase only)
[[nodiscard]] std::string metricProperty(MetricKind kind, std::uint64_t horizon,
                                         int threshold = 1);

}  // namespace mimostat::core
