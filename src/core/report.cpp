#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mimostat::core {

std::string formatValue(double value) {
  char buffer[64];
  if (value != 0.0 && (std::fabs(value) < 1e-3 || std::fabs(value) >= 1e6)) {
    std::snprintf(buffer, sizeof(buffer), "%.3e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  }
  return buffer;
}

std::string formatValueGrid(const std::string& title,
                            const std::string& corner,
                            const std::vector<std::string>& rowLabels,
                            const std::vector<std::string>& colLabels,
                            const std::vector<std::vector<double>>& cells) {
  if (cells.size() != rowLabels.size()) {
    throw std::invalid_argument("formatValueGrid: cells/rowLabels mismatch");
  }
  for (const auto& row : cells) {
    if (row.size() != colLabels.size()) {
      throw std::invalid_argument(
          "formatValueGrid: ragged cells row vs colLabels");
    }
  }
  std::ostringstream os;
  os << title << '\n';
  char cell[64];
  std::snprintf(cell, sizeof(cell), "%-14s", corner.c_str());
  os << cell;
  for (const auto& label : colLabels) {
    std::snprintf(cell, sizeof(cell), " %12s", label.c_str());
    os << cell;
  }
  os << '\n';
  for (std::size_t r = 0; r < rowLabels.size(); ++r) {
    std::snprintf(cell, sizeof(cell), "%-14s", rowLabels[r].c_str());
    os << cell;
    for (std::size_t c = 0; c < colLabels.size(); ++c) {
      const double v = cells[r][c];
      std::snprintf(cell, sizeof(cell), " %12s",
                    std::isnan(v) ? "-" : formatValue(v).c_str());
      os << cell;
    }
    os << '\n';
  }
  return os.str();
}

std::string formatReportTable(const std::string& title,
                              const std::vector<GuaranteeReport>& reports) {
  std::ostringstream os;
  os << title << '\n';
  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %12s %14s %10s %12s\n", "Property",
                "States", "Transitions", "Time(s)", "Result");
  os << line;
  for (const auto& r : reports) {
    std::snprintf(line, sizeof(line), "%-34s %12llu %14llu %10.2f %12s\n",
                  r.property.c_str(), static_cast<unsigned long long>(r.states),
                  static_cast<unsigned long long>(r.transitions),
                  r.totalSeconds(), formatValue(r.value).c_str());
    os << line;
  }
  return os.str();
}

}  // namespace mimostat::core
