#include "core/report.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace mimostat::core {

std::string formatValue(double value) {
  char buffer[64];
  if (value != 0.0 && (std::fabs(value) < 1e-3 || std::fabs(value) >= 1e6)) {
    std::snprintf(buffer, sizeof(buffer), "%.3e", value);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
  }
  return buffer;
}

std::string formatReportTable(const std::string& title,
                              const std::vector<GuaranteeReport>& reports) {
  std::ostringstream os;
  os << title << '\n';
  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %12s %14s %10s %12s\n", "Property",
                "States", "Transitions", "Time(s)", "Result");
  os << line;
  for (const auto& r : reports) {
    std::snprintf(line, sizeof(line), "%-34s %12llu %14llu %10.2f %12s\n",
                  r.property.c_str(), static_cast<unsigned long long>(r.states),
                  static_cast<unsigned long long>(r.transitions),
                  r.totalSeconds(), formatValue(r.value).c_str());
    os << line;
  }
  return os.str();
}

}  // namespace mimostat::core
