// BDD-backed set of packed states — the symbolic alternative to the hash
// set used by the explicit builder, exercised by the state-storage ablation
// bench (hash set vs BDD: memory/time trade-off, mirroring PRISM's hybrid
// engine discussion).
#pragma once

#include <cstdint>

#include "bdd/manager.hpp"
#include "la/bit_vector.hpp"

namespace mimostat::bdd {

class BddStateSet {
 public:
  /// @param bits packed-state width; the set owns a manager with `bits` vars
  explicit BddStateSet(std::uint32_t bits);

  /// Insert; returns true when the state was new.
  bool insert(std::uint64_t packed);
  [[nodiscard]] bool contains(std::uint64_t packed) const;

  /// Exact number of states in the set.
  [[nodiscard]] double size();

  /// Structural BDD node count (the memory proxy).
  [[nodiscard]] std::size_t nodeCount() const;

  /// Explicit bridge: membership of packed states [0, numStates) as a
  /// packed la::BitVector — the explicit stack's truth-mask shape.
  [[nodiscard]] la::BitVector toBitVector(std::uint32_t numStates) const;

  [[nodiscard]] BddManager& manager() { return manager_; }
  [[nodiscard]] NodeRef root() const { return root_; }

 private:
  std::uint32_t bits_;
  BddManager manager_;
  NodeRef root_ = BddManager::kFalse;
};

}  // namespace mimostat::bdd
