#include "bdd/manager.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "util/hash.hpp"

namespace mimostat::bdd {

namespace {
// Operation tags for the computed cache (ite covers the Boolean ops; the
// quantifiers and shifts need distinct tags).
constexpr std::uint32_t kOpIte = 1;
constexpr std::uint32_t kOpExists = 2;
constexpr std::uint32_t kOpForall = 3;
constexpr std::uint32_t kOpAndExists = 4;
constexpr std::uint32_t kOpShiftBase = 1000;  // + encoded delta
}  // namespace

std::size_t BddManager::UniqueKeyHash::operator()(const UniqueKey& k) const {
  return static_cast<std::size_t>(util::mix64(
      (static_cast<std::uint64_t>(k.var) << 40) ^
      (static_cast<std::uint64_t>(k.low) << 20) ^ k.high));
}

std::size_t BddManager::CacheKeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = util::mix64((static_cast<std::uint64_t>(k.a) << 32) | k.b);
  h = util::hashCombine(h, util::mix64((static_cast<std::uint64_t>(k.c) << 32) |
                                       k.op));
  return static_cast<std::size_t>(h);
}

BddManager::BddManager(std::uint32_t numVars) : numVars_(numVars) {
  constexpr std::uint32_t kTermVar = ~0u;
  nodes_.push_back({kTermVar, kFalse, kFalse});  // 0 = false
  nodes_.push_back({kTermVar, kTrue, kTrue});    // 1 = true
}

NodeRef BddManager::mk(std::uint32_t var, NodeRef low, NodeRef high) {
  if (low == high) return low;
  const UniqueKey key{var, low, high};
  auto [it, inserted] =
      unique_.try_emplace(key, static_cast<NodeRef>(nodes_.size()));
  if (inserted) nodes_.push_back({var, low, high});
  return it->second;
}

NodeRef BddManager::var(std::uint32_t v) {
  assert(v < numVars_);
  return mk(v, kFalse, kTrue);
}

NodeRef BddManager::nvar(std::uint32_t v) {
  assert(v < numVars_);
  return mk(v, kTrue, kFalse);
}

NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const CacheKey key{f, g, h, kOpIte};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  // Top variable among the three.
  std::uint32_t top = ~0u;
  if (!isTerminal(f)) top = std::min(top, varOf(f));
  if (!isTerminal(g)) top = std::min(top, varOf(g));
  if (!isTerminal(h)) top = std::min(top, varOf(h));

  const auto cofactor = [&](NodeRef r, bool positive) -> NodeRef {
    if (isTerminal(r) || varOf(r) != top) return r;
    return positive ? nodes_[r].high : nodes_[r].low;
  };

  const NodeRef highPart =
      ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const NodeRef lowPart =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const NodeRef result = mk(top, lowPart, highPart);
  cache_.emplace(key, result);
  return result;
}

NodeRef BddManager::bddNot(NodeRef f) { return ite(f, kFalse, kTrue); }
NodeRef BddManager::bddAnd(NodeRef f, NodeRef g) { return ite(f, g, kFalse); }
NodeRef BddManager::bddOr(NodeRef f, NodeRef g) { return ite(f, kTrue, g); }
NodeRef BddManager::bddXor(NodeRef f, NodeRef g) {
  return ite(f, bddNot(g), g);
}
NodeRef BddManager::bddImplies(NodeRef f, NodeRef g) {
  return ite(f, g, kTrue);
}

NodeRef BddManager::restrict(NodeRef f, std::uint32_t v, bool value) {
  if (isTerminal(f)) return f;
  const std::uint32_t fv = varOf(f);
  if (fv > v) return f;
  if (fv == v) return value ? nodes_[f].high : nodes_[f].low;
  // fv < v: recurse on both branches. Use the cache keyed via ite-style op.
  const CacheKey key{f, v, value ? kTrue : kFalse, kOpShiftBase - 1};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  const NodeRef result = mk(fv, restrict(nodes_[f].low, v, value),
                            restrict(nodes_[f].high, v, value));
  cache_.emplace(key, result);
  return result;
}

NodeRef BddManager::exists(NodeRef f, NodeRef cubeRef) {
  if (isTerminal(f) || cubeRef == kTrue) return f;
  assert(cubeRef != kFalse);
  // Skip cube variables above f's top variable.
  while (!isTerminal(cubeRef) && varOf(cubeRef) < varOf(f)) {
    cubeRef = nodes_[cubeRef].high;
  }
  if (cubeRef == kTrue) return f;

  const CacheKey key{f, cubeRef, 0, kOpExists};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const std::uint32_t top = varOf(f);
  NodeRef result = kFalse;
  if (varOf(cubeRef) == top) {
    const NodeRef rest = nodes_[cubeRef].high;
    result = bddOr(exists(nodes_[f].low, rest), exists(nodes_[f].high, rest));
  } else {
    result = mk(top, exists(nodes_[f].low, cubeRef),
                exists(nodes_[f].high, cubeRef));
  }
  cache_.emplace(key, result);
  return result;
}

NodeRef BddManager::forall(NodeRef f, NodeRef cubeRef) {
  // forall v. f == !exists v. !f
  const CacheKey key{f, cubeRef, 0, kOpForall};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  const NodeRef result = bddNot(exists(bddNot(f), cubeRef));
  cache_.emplace(key, result);
  return result;
}

NodeRef BddManager::andExists(NodeRef f, NodeRef g, NodeRef cubeRef) {
  if (f == kFalse || g == kFalse) return kFalse;
  if (f == kTrue && g == kTrue) return kTrue;
  if (cubeRef == kTrue) return bddAnd(f, g);
  if (f == kTrue) return exists(g, cubeRef);
  if (g == kTrue) return exists(f, cubeRef);

  const CacheKey key{f, g, cubeRef, kOpAndExists};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const std::uint32_t top = std::min(varOf(f), varOf(g));
  while (!isTerminal(cubeRef) && varOf(cubeRef) < top) {
    cubeRef = nodes_[cubeRef].high;
  }

  const auto cofactor = [&](NodeRef r, bool positive) -> NodeRef {
    if (isTerminal(r) || varOf(r) != top) return r;
    return positive ? nodes_[r].high : nodes_[r].low;
  };

  NodeRef result = kFalse;
  if (!isTerminal(cubeRef) && varOf(cubeRef) == top) {
    const NodeRef rest = nodes_[cubeRef].high;
    const NodeRef lowPart =
        andExists(cofactor(f, false), cofactor(g, false), rest);
    const NodeRef highPart =
        andExists(cofactor(f, true), cofactor(g, true), rest);
    result = bddOr(lowPart, highPart);
  } else {
    const NodeRef lowPart =
        andExists(cofactor(f, false), cofactor(g, false), cubeRef);
    const NodeRef highPart =
        andExists(cofactor(f, true), cofactor(g, true), cubeRef);
    result = mk(top, lowPart, highPart);
  }
  cache_.emplace(key, result);
  return result;
}

NodeRef BddManager::cube(const std::vector<std::uint32_t>& vars) {
  NodeRef result = kTrue;
  // Build bottom-up (highest variable first) for linear construction.
  std::vector<std::uint32_t> sorted(vars);
  std::sort(sorted.begin(), sorted.end());
  for (auto it = sorted.rbegin(); it != sorted.rend(); ++it) {
    result = mk(*it, kFalse, result);
  }
  return result;
}

NodeRef BddManager::minterm(std::uint64_t assignment, std::uint32_t bits) {
  assert(bits <= numVars_);
  NodeRef result = kTrue;
  for (std::int32_t v = static_cast<std::int32_t>(bits) - 1; v >= 0; --v) {
    const bool bit = (assignment >> v) & 1;
    result = bit ? mk(static_cast<std::uint32_t>(v), kFalse, result)
                 : mk(static_cast<std::uint32_t>(v), result, kFalse);
  }
  return result;
}

double BddManager::satCountRec(NodeRef f,
                               std::unordered_map<NodeRef, double>& cache) {
  if (f == kFalse) return 0.0;
  if (f == kTrue) return 1.0;
  if (const auto it = cache.find(f); it != cache.end()) return it->second;
  const Node& node = nodes_[f];
  const auto weight = [&](NodeRef child) {
    const std::uint32_t childVar =
        isTerminal(child) ? numVars_ : nodes_[child].var;
    return std::ldexp(satCountRec(child, cache),
                      static_cast<int>(childVar - node.var - 1));
  };
  const double count = weight(node.low) + weight(node.high);
  cache.emplace(f, count);
  return count;
}

double BddManager::satCount(NodeRef f) {
  std::unordered_map<NodeRef, double> cache;
  const std::uint32_t topVar = isTerminal(f) ? numVars_ : nodes_[f].var;
  return std::ldexp(satCountRec(f, cache), static_cast<int>(topVar));
}

std::vector<std::uint32_t> BddManager::support(NodeRef f) {
  std::unordered_set<NodeRef> visited;
  std::unordered_set<std::uint32_t> vars;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (isTerminal(r) || !visited.insert(r).second) continue;
    vars.insert(nodes_[r].var);
    stack.push_back(nodes_[r].low);
    stack.push_back(nodes_[r].high);
  }
  // lint:allow(unordered-iteration: copied out and immediately sorted)
  std::vector<std::uint32_t> result(vars.begin(), vars.end());
  std::sort(result.begin(), result.end());
  return result;
}

bool BddManager::evaluate(NodeRef f, std::uint64_t assignment) const {
  while (!isTerminal(f)) {
    const Node& node = nodes_[f];
    f = ((assignment >> node.var) & 1) ? node.high : node.low;
  }
  return f == kTrue;
}

std::size_t BddManager::functionSize(NodeRef f) const {
  std::unordered_set<NodeRef> visited;
  std::vector<NodeRef> stack{f};
  while (!stack.empty()) {
    const NodeRef r = stack.back();
    stack.pop_back();
    if (isTerminal(r) || !visited.insert(r).second) continue;
    stack.push_back(nodes_[r].low);
    stack.push_back(nodes_[r].high);
  }
  return visited.size() + (f <= 1 ? 1 : 2);  // count terminals conventionally
}

NodeRef BddManager::shiftVars(NodeRef f, std::int32_t delta) {
  if (isTerminal(f) || delta == 0) return f;
  const CacheKey key{f, static_cast<NodeRef>(delta + (1 << 20)), 0,
                     kOpShiftBase};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  const Node node = nodes_[f];
  const auto newVar = static_cast<std::int64_t>(node.var) + delta;
  assert(newVar >= 0 && newVar < static_cast<std::int64_t>(numVars_));
  const NodeRef result =
      mk(static_cast<std::uint32_t>(newVar), shiftVars(node.low, delta),
         shiftVars(node.high, delta));
  cache_.emplace(key, result);
  return result;
}

}  // namespace mimostat::bdd
