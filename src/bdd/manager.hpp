// Reduced Ordered Binary Decision Diagram (ROBDD) package.
//
// PRISM — the engine the paper runs on — is a symbolic model checker built
// on BDDs/MTBDDs. This is our from-scratch equivalent: hash-consed nodes,
// ITE with a computed cache, Boolean connectives, cofactors, existential /
// universal quantification, conjunctive quantification fused with AND
// (andExists, the relational-product kernel), satisfying-assignment
// counting, and support computation.
//
// Node indices are stable handles owned by the manager (no reference
// counting; the manager is an arena freed as a whole — appropriate for the
// bounded workloads in this library).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mimostat::bdd {

using NodeRef = std::uint32_t;

class BddManager {
 public:
  explicit BddManager(std::uint32_t numVars);

  static constexpr NodeRef kFalse = 0;
  static constexpr NodeRef kTrue = 1;

  [[nodiscard]] std::uint32_t numVars() const { return numVars_; }
  [[nodiscard]] std::size_t numNodes() const { return nodes_.size(); }

  /// The projection function for variable `var`.
  [[nodiscard]] NodeRef var(std::uint32_t var);
  /// Negated projection.
  [[nodiscard]] NodeRef nvar(std::uint32_t var);

  [[nodiscard]] NodeRef ite(NodeRef f, NodeRef g, NodeRef h);
  [[nodiscard]] NodeRef bddNot(NodeRef f);
  [[nodiscard]] NodeRef bddAnd(NodeRef f, NodeRef g);
  [[nodiscard]] NodeRef bddOr(NodeRef f, NodeRef g);
  [[nodiscard]] NodeRef bddXor(NodeRef f, NodeRef g);
  [[nodiscard]] NodeRef bddImplies(NodeRef f, NodeRef g);

  /// Positive/negative cofactor w.r.t. a variable.
  [[nodiscard]] NodeRef restrict(NodeRef f, std::uint32_t var, bool value);

  /// Existential quantification over the variables of a positive cube.
  [[nodiscard]] NodeRef exists(NodeRef f, NodeRef cube);
  /// Universal quantification over the variables of a positive cube.
  [[nodiscard]] NodeRef forall(NodeRef f, NodeRef cube);
  /// exists cube. (f AND g) — the relational-product kernel.
  [[nodiscard]] NodeRef andExists(NodeRef f, NodeRef g, NodeRef cube);

  /// Positive cube over the given variables.
  [[nodiscard]] NodeRef cube(const std::vector<std::uint32_t>& vars);

  /// Minterm of a full assignment over variables [0, bits): bit i of
  /// `assignment` gives the value of variable i.
  [[nodiscard]] NodeRef minterm(std::uint64_t assignment, std::uint32_t bits);

  /// Number of satisfying assignments over all numVars() variables.
  [[nodiscard]] double satCount(NodeRef f);

  /// Variables appearing in f.
  [[nodiscard]] std::vector<std::uint32_t> support(NodeRef f);

  /// Evaluate under a full assignment (bit i of `assignment` = variable i).
  [[nodiscard]] bool evaluate(NodeRef f, std::uint64_t assignment) const;

  /// Structural node count of the function (distinct reachable nodes).
  [[nodiscard]] std::size_t functionSize(NodeRef f) const;

  /// Rename every variable v in f to v + delta (delta may be negative).
  /// Precondition: the shift preserves the variable order (true for uniform
  /// shifts) and stays within [0, numVars).
  [[nodiscard]] NodeRef shiftVars(NodeRef f, std::int32_t delta);

 private:
  struct Node {
    std::uint32_t var;
    NodeRef low;
    NodeRef high;
  };

  struct UniqueKey {
    std::uint32_t var;
    NodeRef low;
    NodeRef high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const;
  };

  struct CacheKey {
    NodeRef a, b, c;
    std::uint32_t op;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };

  [[nodiscard]] NodeRef mk(std::uint32_t var, NodeRef low, NodeRef high);
  [[nodiscard]] std::uint32_t varOf(NodeRef f) const { return nodes_[f].var; }
  [[nodiscard]] bool isTerminal(NodeRef f) const { return f <= 1; }

  double satCountRec(NodeRef f, std::unordered_map<NodeRef, double>& cache);

  std::uint32_t numVars_;
  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, NodeRef, UniqueKeyHash> unique_;
  std::unordered_map<CacheKey, NodeRef, CacheKeyHash> cache_;
};

}  // namespace mimostat::bdd
