#include "bdd/mtbdd.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/hash.hpp"

namespace mimostat::bdd {

std::size_t MtbddManager::UniqueKeyHash::operator()(const UniqueKey& k) const {
  return static_cast<std::size_t>(util::mix64(
      (static_cast<std::uint64_t>(k.var) << 40) ^
      (static_cast<std::uint64_t>(k.low) << 20) ^ k.high));
}

std::size_t MtbddManager::CacheKeyHash::operator()(const CacheKey& k) const {
  return static_cast<std::size_t>(util::hashCombine(
      util::mix64((static_cast<std::uint64_t>(k.a) << 32) | k.b),
      util::mix64(k.op)));
}

MtbddManager::MtbddManager(std::uint32_t numVars) : numVars_(numVars) {}

MtRef MtbddManager::constant(double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  auto [it, inserted] =
      terminals_.try_emplace(bits, static_cast<MtRef>(nodes_.size()));
  if (inserted) nodes_.push_back({kTermVar, 0, 0, value});
  return it->second;
}

double MtbddManager::terminalValue(MtRef f) const {
  assert(isTerminal(f));
  return nodes_[f].value;
}

MtRef MtbddManager::mk(std::uint32_t var, MtRef low, MtRef high) {
  if (low == high) return low;
  const UniqueKey key{var, low, high};
  auto [it, inserted] =
      unique_.try_emplace(key, static_cast<MtRef>(nodes_.size()));
  if (inserted) nodes_.push_back({var, low, high, 0.0});
  return it->second;
}

MtRef MtbddManager::varNode(std::uint32_t var, MtRef low, MtRef high) {
  assert(var < numVars_);
  return mk(var, low, high);
}

double MtbddManager::applyOp(MtOp op, double a, double b) {
  switch (op) {
    case MtOp::kAdd:
      return a + b;
    case MtOp::kSub:
      return a - b;
    case MtOp::kMul:
      return a * b;
    case MtOp::kMin:
      return std::min(a, b);
    case MtOp::kMax:
      return std::max(a, b);
  }
  return 0.0;
}

MtRef MtbddManager::apply(MtOp op, MtRef f, MtRef g) {
  if (isTerminal(f) && isTerminal(g)) {
    return constant(applyOp(op, nodes_[f].value, nodes_[g].value));
  }
  const CacheKey key{f, g, static_cast<std::uint64_t>(op)};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;

  const std::uint32_t fVar = nodes_[f].var;
  const std::uint32_t gVar = nodes_[g].var;
  const std::uint32_t top = std::min(fVar, gVar);
  const MtRef fLow = (fVar == top) ? nodes_[f].low : f;
  const MtRef fHigh = (fVar == top) ? nodes_[f].high : f;
  const MtRef gLow = (gVar == top) ? nodes_[g].low : g;
  const MtRef gHigh = (gVar == top) ? nodes_[g].high : g;
  const MtRef result =
      mk(top, apply(op, fLow, gLow), apply(op, fHigh, gHigh));
  cache_.emplace(key, result);
  return result;
}

MtRef MtbddManager::greaterThan(MtRef f, double threshold) {
  if (isTerminal(f)) {
    return constant(nodes_[f].value > threshold ? 1.0 : 0.0);
  }
  const CacheKey key{f, constant(threshold), 100};
  if (const auto it = cache_.find(key); it != cache_.end()) return it->second;
  const MtRef result = mk(nodes_[f].var, greaterThan(nodes_[f].low, threshold),
                          greaterThan(nodes_[f].high, threshold));
  cache_.emplace(key, result);
  return result;
}

double MtbddManager::evaluate(MtRef f, std::uint64_t assignment) const {
  while (!isTerminal(f)) {
    const Node& node = nodes_[f];
    f = ((assignment >> node.var) & 1) ? node.high : node.low;
  }
  return nodes_[f].value;
}

MtRef MtbddManager::sumOver(MtRef f, const std::vector<std::uint32_t>& vars) {
  MtRef result = f;
  // Quantify variables one at a time (descending keeps recursions shallow).
  std::vector<std::uint32_t> sorted(vars);
  std::sort(sorted.rbegin(), sorted.rend());
  for (const std::uint32_t v : sorted) {
    // sum_v f = f|v=0 + f|v=1, implemented as a pointwise apply of the two
    // cofactors. Cofactor via a dedicated recursion:
    struct Cofactor {
      MtbddManager& mgr;
      std::uint32_t var;
      bool value;
      std::unordered_map<MtRef, MtRef> memo;
      MtRef run(MtRef r) {
        if (mgr.isTerminal(r) || mgr.nodes_[r].var > var) return r;
        if (const auto it = memo.find(r); it != memo.end()) return it->second;
        MtRef out;
        if (mgr.nodes_[r].var == var) {
          out = value ? mgr.nodes_[r].high : mgr.nodes_[r].low;
        } else {
          out = mgr.mk(mgr.nodes_[r].var, run(mgr.nodes_[r].low),
                       run(mgr.nodes_[r].high));
        }
        memo.emplace(r, out);
        return out;
      }
    };
    Cofactor low{*this, v, false, {}};
    Cofactor high{*this, v, true, {}};
    result = apply(MtOp::kAdd, low.run(result), high.run(result));
  }
  return result;
}

double MtbddManager::maxValue(MtRef f) const {
  if (isTerminal(f)) return nodes_[f].value;
  return std::max(maxValue(nodes_[f].low), maxValue(nodes_[f].high));
}

}  // namespace mimostat::bdd
