#include "bdd/stateset.hpp"

namespace mimostat::bdd {

BddStateSet::BddStateSet(std::uint32_t bits) : bits_(bits), manager_(bits) {}

bool BddStateSet::insert(std::uint64_t packed) {
  if (contains(packed)) return false;
  root_ = manager_.bddOr(root_, manager_.minterm(packed, bits_));
  return true;
}

bool BddStateSet::contains(std::uint64_t packed) const {
  return manager_.evaluate(root_, packed);
}

double BddStateSet::size() { return manager_.satCount(root_); }

std::size_t BddStateSet::nodeCount() const {
  return manager_.functionSize(root_);
}

la::BitVector BddStateSet::toBitVector(std::uint32_t numStates) const {
  la::BitVector result(numStates);
  for (std::uint32_t s = 0; s < numStates; ++s) {
    if (contains(s)) result.set(s);
  }
  return result;
}

}  // namespace mimostat::bdd
