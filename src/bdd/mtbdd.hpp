// Multi-Terminal BDDs over real terminals — the data structure PRISM uses
// to store transition-probability matrices and value vectors symbolically.
// Hash-consed like the Boolean manager; terminals are hash-consed by their
// exact bit pattern.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace mimostat::bdd {

using MtRef = std::uint32_t;

enum class MtOp : std::uint32_t {
  kAdd,
  kSub,
  kMul,
  kMin,
  kMax,
};

class MtbddManager {
 public:
  explicit MtbddManager(std::uint32_t numVars);

  [[nodiscard]] std::uint32_t numVars() const { return numVars_; }

  /// Terminal with the given value (hash-consed).
  [[nodiscard]] MtRef constant(double value);
  [[nodiscard]] bool isTerminal(MtRef f) const {
    return nodes_[f].var == kTermVar;
  }
  [[nodiscard]] double terminalValue(MtRef f) const;

  /// if-then-else on a variable: var=1 ? high : low.
  [[nodiscard]] MtRef varNode(std::uint32_t var, MtRef low, MtRef high);

  /// Pointwise arithmetic.
  [[nodiscard]] MtRef apply(MtOp op, MtRef f, MtRef g);

  /// 0/1-valued MTBDD: 1 where f > threshold.
  [[nodiscard]] MtRef greaterThan(MtRef f, double threshold);

  /// Evaluate under a full assignment (bit i = variable i).
  [[nodiscard]] double evaluate(MtRef f, std::uint64_t assignment) const;

  /// Sum of f over all assignments of the variables in `vars` (ascending).
  [[nodiscard]] MtRef sumOver(MtRef f, const std::vector<std::uint32_t>& vars);

  /// Max terminal value reachable in f.
  [[nodiscard]] double maxValue(MtRef f) const;

  [[nodiscard]] std::size_t numNodes() const { return nodes_.size(); }

 private:
  static constexpr std::uint32_t kTermVar = ~0u;

  struct Node {
    std::uint32_t var;
    MtRef low;
    MtRef high;
    double value;  // terminals only
  };

  struct UniqueKey {
    std::uint32_t var;
    MtRef low;
    MtRef high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::size_t operator()(const UniqueKey& k) const;
  };
  struct CacheKey {
    MtRef a, b;
    std::uint64_t op;
    bool operator==(const CacheKey&) const = default;
  };
  struct CacheKeyHash {
    std::size_t operator()(const CacheKey& k) const;
  };

  [[nodiscard]] MtRef mk(std::uint32_t var, MtRef low, MtRef high);
  static double applyOp(MtOp op, double a, double b);

  std::uint32_t numVars_;
  std::vector<Node> nodes_;
  std::unordered_map<std::uint64_t, MtRef> terminals_;  // by bit pattern
  std::unordered_map<UniqueKey, MtRef, UniqueKeyHash> unique_;
  std::unordered_map<CacheKey, MtRef, CacheKeyHash> cache_;
};

}  // namespace mimostat::bdd
