// Symbolic reachability via relational products — the PRISM-style symbolic
// counterpart of the explicit builder's BFS.
//
// Encoding: a model state packs into `bits` Boolean variables. The manager
// holds 2*bits variables in interleaved order: variable 2i is bit i of the
// current state ("row"), variable 2i+1 is bit i of the next state
// ("column"). Interleaving keeps the transition relation small and makes
// the prime/unprime renaming a uniform +-1 shift, which preserves variable
// order.
#pragma once

#include <cstdint>
#include <vector>

#include "bdd/manager.hpp"
#include "dtmc/model.hpp"

namespace mimostat::bdd {

class SymbolicSpace {
 public:
  /// @param bits number of state bits (manager gets 2*bits variables)
  explicit SymbolicSpace(std::uint32_t bits);

  [[nodiscard]] BddManager& manager() { return manager_; }
  [[nodiscard]] std::uint32_t bits() const { return bits_; }

  /// BDD of a single packed current-state ("row") assignment.
  [[nodiscard]] NodeRef rowMinterm(std::uint64_t packed);
  /// BDD of one transition edge (src -> dst) over row+column variables.
  [[nodiscard]] NodeRef edge(std::uint64_t src, std::uint64_t dst);

  /// Image of a row set under the relation: rename(exists rows. R AND S).
  [[nodiscard]] NodeRef image(NodeRef rowSet, NodeRef relation);

  /// Least fixpoint of init under the relation; `iterations` (if non-null)
  /// receives the number of frontier expansions (the paper's RI).
  [[nodiscard]] NodeRef reachable(NodeRef init, NodeRef relation,
                                  std::uint32_t* iterations = nullptr);

  /// Number of packed states in a row set.
  [[nodiscard]] double countStates(NodeRef rowSet);

 private:
  std::uint32_t bits_;
  BddManager manager_;
  NodeRef rowCube_;  // cube of all row variables
};

struct SymbolicBuildResult {
  NodeRef relation = BddManager::kFalse;
  NodeRef init = BddManager::kFalse;
  NodeRef reachable = BddManager::kFalse;
  std::uint32_t iterations = 0;
  double stateCount = 0.0;
};

/// Enumerate a model's transitions explicitly and build its symbolic
/// transition relation + reachable set. Intended for cross-checking the
/// explicit builder and for state-set ablations (not for models whose
/// explicit enumeration is itself infeasible).
[[nodiscard]] SymbolicBuildResult buildSymbolic(const dtmc::Model& model,
                                                SymbolicSpace& space,
                                                std::uint64_t maxStates);

}  // namespace mimostat::bdd
