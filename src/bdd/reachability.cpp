#include "bdd/reachability.hpp"

#include <cassert>
#include <cmath>
#include <deque>
#include <stdexcept>

#include "util/hash.hpp"

namespace mimostat::bdd {

SymbolicSpace::SymbolicSpace(std::uint32_t bits)
    : bits_(bits), manager_(2 * bits) {
  assert(bits >= 1 && bits <= 32);
  std::vector<std::uint32_t> rowVars;
  rowVars.reserve(bits_);
  for (std::uint32_t i = 0; i < bits_; ++i) rowVars.push_back(2 * i);
  rowCube_ = manager_.cube(rowVars);
}

NodeRef SymbolicSpace::rowMinterm(std::uint64_t packed) {
  NodeRef result = BddManager::kTrue;
  for (std::int32_t i = static_cast<std::int32_t>(bits_) - 1; i >= 0; --i) {
    const auto v = static_cast<std::uint32_t>(2 * i);
    const bool bit = (packed >> i) & 1;
    result = bit ? manager_.bddAnd(manager_.var(v), result)
                 : manager_.bddAnd(manager_.nvar(v), result);
  }
  return result;
}

NodeRef SymbolicSpace::edge(std::uint64_t src, std::uint64_t dst) {
  NodeRef result = BddManager::kTrue;
  for (std::int32_t i = static_cast<std::int32_t>(bits_) - 1; i >= 0; --i) {
    const auto rowVar = static_cast<std::uint32_t>(2 * i);
    const auto colVar = rowVar + 1;
    const bool srcBit = (src >> i) & 1;
    const bool dstBit = (dst >> i) & 1;
    result = manager_.bddAnd(
        srcBit ? manager_.var(rowVar) : manager_.nvar(rowVar),
        manager_.bddAnd(
            dstBit ? manager_.var(colVar) : manager_.nvar(colVar), result));
  }
  return result;
}

NodeRef SymbolicSpace::image(NodeRef rowSet, NodeRef relation) {
  // exists rows. (R AND S) leaves a function over column variables; shifting
  // every column variable 2i+1 down to 2i renames it to the row space.
  const NodeRef columns = manager_.andExists(relation, rowSet, rowCube_);
  return manager_.shiftVars(columns, -1);
}

NodeRef SymbolicSpace::reachable(NodeRef init, NodeRef relation,
                                 std::uint32_t* iterations) {
  NodeRef reached = init;
  NodeRef frontier = init;
  std::uint32_t iters = 0;
  while (frontier != BddManager::kFalse) {
    ++iters;
    const NodeRef next = image(frontier, relation);
    const NodeRef fresh = manager_.bddAnd(next, manager_.bddNot(reached));
    reached = manager_.bddOr(reached, fresh);
    frontier = fresh;
  }
  if (iterations != nullptr) *iterations = iters;
  return reached;
}

double SymbolicSpace::countStates(NodeRef rowSet) {
  // rowSet depends only on the `bits_` row variables out of 2*bits_ total;
  // divide out the free column variables.
  return manager_.satCount(rowSet) / std::ldexp(1.0, static_cast<int>(bits_));
}

SymbolicBuildResult buildSymbolic(const dtmc::Model& model,
                                  SymbolicSpace& space,
                                  std::uint64_t maxStates) {
  const dtmc::VarLayout layout = model.layout();
  if (!layout.fitsInU64() ||
      static_cast<std::uint32_t>(layout.totalBits()) > space.bits()) {
    throw std::runtime_error("buildSymbolic: state does not fit the space");
  }

  SymbolicBuildResult result;
  util::PackedStateSet seen(1 << 12);
  std::deque<std::uint64_t> queue;

  result.init = BddManager::kFalse;
  for (const auto& s : model.initialStates()) {
    const std::uint64_t packed = layout.pack(s);
    if (seen.insert(packed)) queue.push_back(packed);
    result.init =
        space.manager().bddOr(result.init, space.rowMinterm(packed));
  }

  result.relation = BddManager::kFalse;
  std::vector<dtmc::Transition> scratch;
  while (!queue.empty()) {
    const std::uint64_t packed = queue.front();
    queue.pop_front();
    scratch.clear();
    model.transitions(layout.unpack(packed), scratch);
    dtmc::normalizeTransitions(scratch, 0.0);
    for (const auto& t : scratch) {
      const std::uint64_t next = layout.pack(t.target);
      result.relation = space.manager().bddOr(result.relation,
                                              space.edge(packed, next));
      if (seen.insert(next)) {
        if (seen.size() > maxStates) {
          throw std::runtime_error("buildSymbolic: maxStates exceeded");
        }
        queue.push_back(next);
      }
    }
  }

  result.reachable =
      space.reachable(result.init, result.relation, &result.iterations);
  result.stateCount = space.countStates(result.reachable);
  return result;
}

}  // namespace mimostat::bdd
