#include "pctl/parser.hpp"

#include <cmath>
#include <optional>
#include <vector>

#include "pctl/lexer.hpp"

namespace mimostat::pctl {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : tokens_(tokenize(input)) {}

  Property parseProperty() {
    Property prop;
    const Token& head = expect(TokenKind::kIdent, "expected P or R");
    if (head.text == "P") {
      prop.kind = Property::Kind::kProb;
      prop.prob = parseProbQuery();
    } else if (head.text == "R") {
      prop.kind = Property::Kind::kReward;
      prop.reward = parseRewardQuery();
    } else {
      throw ParseError("expected P or R, got '" + head.text + "'", head.pos);
    }
    expect(TokenKind::kEnd, "trailing input after property");
    return prop;
  }

  StateFormulaPtr parseBareStateFormula() {
    StateFormulaPtr f = parseOr();
    expect(TokenKind::kEnd, "trailing input after state formula");
    return f;
  }

 private:
  // --- token helpers ---
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(TokenKind kind, const char* what) {
    if (!check(kind)) throw ParseError(what, peek().pos);
    return advance();
  }

  std::optional<CmpOp> matchCmpOp() {
    switch (peek().kind) {
      case TokenKind::kEq:
        ++pos_;
        return CmpOp::kEq;
      case TokenKind::kNe:
        ++pos_;
        return CmpOp::kNe;
      case TokenKind::kLt:
        ++pos_;
        return CmpOp::kLt;
      case TokenKind::kLe:
        ++pos_;
        return CmpOp::kLe;
      case TokenKind::kGt:
        ++pos_;
        return CmpOp::kGt;
      case TokenKind::kGe:
        ++pos_;
        return CmpOp::kGe;
      default:
        return std::nullopt;
    }
  }

  std::uint64_t expectIntBound() {
    const Token& t = expect(TokenKind::kNumber, "expected integer bound");
    if (t.number < 0 || t.number != std::floor(t.number)) {
      throw ParseError("bound must be a non-negative integer", t.pos);
    }
    return static_cast<std::uint64_t>(t.number);
  }

  // --- properties ---
  ProbQuery parseProbQuery() {
    ProbQuery q;
    if (match(TokenKind::kEqQ)) {
      q.isQuery = true;
    } else if (auto op = matchCmpOp()) {
      q.isQuery = false;
      q.boundOp = *op;
      const Token& t = expect(TokenKind::kNumber, "expected probability bound");
      q.boundValue = t.number;
    } else {
      throw ParseError("expected =? or comparison after P", peek().pos);
    }
    expect(TokenKind::kLBracket, "expected [");
    q.path = parsePathFormula();
    expect(TokenKind::kRBracket, "expected ]");
    return q;
  }

  RewardQuery parseRewardQuery() {
    RewardQuery q;
    if (match(TokenKind::kLBrace)) {
      const Token& name = expect(TokenKind::kAtom, "expected quoted reward name");
      q.rewardName = name.text;
      expect(TokenKind::kRBrace, "expected }");
    }
    if (match(TokenKind::kEqQ)) {
      q.isQuery = true;
    } else if (auto op = matchCmpOp()) {
      q.isQuery = false;
      q.boundOp = *op;
      const Token& t = expect(TokenKind::kNumber, "expected reward bound");
      q.boundValue = t.number;
    } else {
      throw ParseError("expected =? or comparison after R", peek().pos);
    }
    expect(TokenKind::kLBracket, "expected [");
    const Token& body = expect(TokenKind::kIdent, "expected I, C or S");
    if (body.text == "I") {
      q.kind = RewardQuery::Kind::kInstantaneous;
      expect(TokenKind::kEq, "expected = after I");
      q.bound = expectIntBound();
    } else if (body.text == "C") {
      q.kind = RewardQuery::Kind::kCumulative;
      expect(TokenKind::kLe, "expected <= after C");
      q.bound = expectIntBound();
    } else if (body.text == "S") {
      q.kind = RewardQuery::Kind::kSteadyState;
    } else if (body.text == "F") {
      q.kind = RewardQuery::Kind::kReachability;
      q.target = parseOr();
    } else {
      throw ParseError("expected I, C, S or F in reward body", body.pos);
    }
    expect(TokenKind::kRBracket, "expected ]");
    return q;
  }

  // --- path formulas ---
  PathFormula parsePathFormula() {
    PathFormula path;
    if (check(TokenKind::kIdent)) {
      const std::string& kw = peek().text;
      if (kw == "X") {
        advance();
        path.kind = PathFormula::Kind::kNext;
        path.lhs = parseOr();
        return path;
      }
      // F/G only act as temporal operators when not immediately followed by
      // a comparison (so a variable named F still works: "F>=1 U ..." is
      // unusual but unambiguous in practice; we keep it simple and treat a
      // leading F/G identifier as the operator, matching PRISM).
      if (kw == "F" || kw == "G") {
        const bool isFinally = kw == "F";
        advance();
        path.kind = isFinally ? PathFormula::Kind::kFinally
                              : PathFormula::Kind::kGlobally;
        if (match(TokenKind::kLe)) path.bound = expectIntBound();
        path.lhs = parseOr();
        return path;
      }
    }
    // left U[<=k] right
    path.lhs = parseOr();
    const Token& u = expect(TokenKind::kIdent, "expected U in path formula");
    if (u.text != "U") throw ParseError("expected U in path formula", u.pos);
    path.kind = PathFormula::Kind::kUntil;
    if (match(TokenKind::kLe)) path.bound = expectIntBound();
    path.rhs = parseOr();
    return path;
  }

  // --- state formulas ---
  StateFormulaPtr parseOr() {
    StateFormulaPtr f = parseAnd();
    while (match(TokenKind::kOr)) {
      f = StateFormula::makeOr(std::move(f), parseAnd());
    }
    return f;
  }

  StateFormulaPtr parseAnd() {
    StateFormulaPtr f = parseNot();
    while (match(TokenKind::kAnd)) {
      f = StateFormula::makeAnd(std::move(f), parseNot());
    }
    return f;
  }

  StateFormulaPtr parseNot() {
    if (match(TokenKind::kNot)) return StateFormula::makeNot(parseNot());
    return parsePrimary();
  }

  StateFormulaPtr parsePrimary() {
    if (match(TokenKind::kLParen)) {
      StateFormulaPtr f = parseOr();
      expect(TokenKind::kRParen, "expected )");
      return f;
    }
    if (check(TokenKind::kAtom)) {
      return StateFormula::makeAtom(advance().text);
    }
    const Token& t = expect(TokenKind::kIdent, "expected state formula");
    if (t.text == "true") return StateFormula::makeTrue();
    if (t.text == "false") return StateFormula::makeFalse();
    if (auto op = matchCmpOp()) {
      const Token& num = expect(TokenKind::kNumber, "expected comparison value");
      if (num.number != std::floor(num.number)) {
        throw ParseError("variable comparisons take integer values", num.pos);
      }
      return StateFormula::makeVarCmp(t.text, *op,
                                      static_cast<std::int64_t>(num.number));
    }
    // Bare identifier: resolved at check time (variable != 0, else label).
    return StateFormula::makeAtom(t.text);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Property parseProperty(std::string_view input) {
  return Parser(input).parseProperty();
}

StateFormulaPtr parseStateFormula(std::string_view input) {
  return Parser(input).parseBareStateFormula();
}

}  // namespace mimostat::pctl
