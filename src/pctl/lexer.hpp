// Tokenizer for the pCTL property syntax.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mimostat::pctl {

enum class TokenKind {
  kIdent,     // flag, count, true, false, P, R, F, G, U, X, I, S, C
  kAtom,      // "error" (quoted label)
  kNumber,    // integer or real literal
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kLBrace,    // {
  kRBrace,    // }
  kNot,       // !
  kAnd,       // &
  kOr,        // |
  kEq,        // =
  kEqQ,       // =?
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // identifier/atom text
  double number = 0;  // for kNumber
  std::size_t pos = 0;
};

/// Tokenize; throws ParseError (see parser.hpp) on malformed input.
[[nodiscard]] std::vector<Token> tokenize(std::string_view input);

}  // namespace mimostat::pctl
