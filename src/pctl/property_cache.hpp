// Shared memoized property parsing.
//
// Every consumer of parsed pCTL — the AnalysisEngine, each mc::Checker, the
// sweep runner — used to keep its own private text -> Property map, so one
// property string was re-parsed once per checker instance. A PropertyCache
// is the single shared map: get() parses on miss and returns a copy of the
// memoized AST (Property is cheap to copy — its formula nodes are shared
// immutable pointers). global() is the process-wide instance that every
// component uses by default.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "pctl/ast.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mimostat::pctl {

class PropertyCache {
 public:
  /// `maxEntries` bounds the map: when an insert would exceed it, the whole
  /// map is flushed first. Wholesale flushing (instead of LRU) keeps get()
  /// a single hash lookup — parsing is cheap, so the cap only has to stop
  /// unbounded growth in long-running processes whose sweeps mint distinct
  /// property strings per point, not preserve a working set exactly.
  explicit PropertyCache(std::size_t maxEntries = 4096)
      : maxEntries_(maxEntries > 0 ? maxEntries : 1) {}
  PropertyCache(const PropertyCache&) = delete;
  PropertyCache& operator=(const PropertyCache&) = delete;

  /// Memoized parse. Throws ParseError on invalid input (failures are not
  /// cached; a later identical call re-parses and re-throws).
  [[nodiscard]] Property get(std::string_view text);

  [[nodiscard]] std::size_t size() const;
  /// get() calls served from the map / that had to parse.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  void clear();

  /// The process-wide cache shared by the engine and every checker that is
  /// not given an explicit cache.
  [[nodiscard]] static PropertyCache& global();

 private:
  const std::size_t maxEntries_;
  mutable util::Mutex mutex_;
  std::unordered_map<std::string, Property> cache_ MIMOSTAT_GUARDED_BY(mutex_);
  std::uint64_t hits_ MIMOSTAT_GUARDED_BY(mutex_) = 0;
  std::uint64_t misses_ MIMOSTAT_GUARDED_BY(mutex_) = 0;
};

}  // namespace mimostat::pctl
