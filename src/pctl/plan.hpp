// pctl::EvalPlan — a request's property set compiled into a deduplicated
// DAG of evaluation tasks, before any model-dependent work runs.
//
// Planning is purely syntactic (it sees only parsed ASTs), so it lives in
// pctl::; execution belongs to the layer that owns a model (mc::Checker
// compiles and runs plans, the AnalysisEngine plans across every property
// of a request). A plan decomposes properties into:
//
//   - masks: deduplicated state subformulas (atom masks). Two properties
//     mentioning the same phi/psi — by structure, not text — share one
//     evaluation. Normalization folds double negation, so "G<=T !flag" and
//     "F<=T flag" resolve to the same mask.
//   - columns: bounded-path traversal columns. Every bounded
//     until/finally/globally/next formula becomes a readout of one column
//     of a shared masked SpMM traversal (la::spmmMasked); columns with the
//     same (phi, psi, masked) key are deduplicated, so the same "U<=T" body
//     at two thresholds advances ONCE and is sampled at both bounds.
//   - transients: R=?[I=T] / R=?[C<=T] entries sharing one forward sweep
//     (the horizon batching mc::TransientSweep proved out), with reward
//     structures deduplicated by name.
//   - singles: everything else (unbounded operators, steady state,
//     reachability rewards) — independent tasks; structurally identical
//     singles run once, repeats copy the representative's result. Their
//     state subformulas go through the SAME mask table as the bounded
//     columns, so a bounded and an unbounded query over the same target
//     set evaluate that set once (the mask hit counts into tasksDeduped).
//
// PlanStats quantifies the win: tasksPlanned counts distinct tasks that
// will execute, tasksDeduped counts requests satisfied by an existing
// identical task, traversalsSaved counts the per-step matrix traversals
// batching avoids versus per-formula evaluation (sum of bounds minus the
// shared maximum, per group).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pctl/ast.hpp"

namespace mimostat::pctl {

struct PlanOptions {
  /// Group bounded path formulas (U<=k / F<=k / G<=k / X) into one masked
  /// SpMM traversal; off = each becomes an independent single task.
  bool batchBounded = true;
  /// Group R=?[I=T] / R=?[C<=T] into one transient sweep; off = singles.
  bool batchTransients = true;
};

struct PlanStats {
  /// Distinct tasks the plan will execute: masks + traversal columns +
  /// reward vectors + one task per non-empty group + singles.
  std::uint64_t tasksPlanned = 0;
  /// Task requests satisfied by an already-planned identical task (shared
  /// masks, shared traversal columns, shared reward vectors).
  std::uint64_t tasksDeduped = 0;
  /// Per-step matrix traversals avoided versus per-formula evaluation:
  /// sum over group members of their individual step counts, minus the
  /// steps the shared traversal actually takes.
  std::uint64_t traversalsSaved = 0;
  /// Bytes held by the plan's evaluated mask table — packed la::BitVector
  /// words vs what the legacy byte-per-state representation would have
  /// held (the ~8x memory win). Filled by the executor
  /// (mc::Checker::checkAll) once masks are evaluated; zero until then.
  std::uint64_t maskBytesPacked = 0;
  std::uint64_t maskBytesByte = 0;
  /// Seconds spent compiling the plan and evaluating its mask table (the
  /// "pctl.plan" span). Filled by the executor (mc::Checker::checkAll);
  /// diagnostics only — never feeds exported values or ordering.
  double planSeconds = 0.0;
  /// Column panels the bounded group's masked traversal processed, summed
  /// over its steps (one CSR traversal per panel per step — la::SpmmStats).
  /// Filled by the executor; zero when no bounded group ran.
  std::uint64_t spmmPanels = 0;
  /// SIMD dispatch target the la:: kernels resolved for this request
  /// ("scalar"/"sse2"/"avx2"/"neon" — la::simdTargetName). Filled by the
  /// executor; purely diagnostic, values are bit-identical across targets.
  std::string simdTarget;
};

struct EvalPlan {
  /// Mask slot meaning "no constraint" (phi = true).
  static constexpr std::size_t kNoMask = static_cast<std::size_t>(-1);

  /// Deduplicated state subformulas, each evaluated once per plan run.
  std::vector<StateFormulaPtr> masks;

  /// One column of the shared bounded traversal.
  struct Column {
    std::size_t phiMask = kNoMask;  ///< kNoMask = unconstrained (finally)
    std::size_t psiMask = 0;
    /// true: frozen/absorbing per-state masks apply (until semantics);
    /// false: pure propagation (the X operator's single step).
    bool masked = true;
    /// Furthest readout on this column (the traversal advances to the max
    /// over all columns).
    std::uint64_t steps = 0;
  };
  std::vector<Column> columns;

  /// One bounded/next property's answer: column `column` sampled at step
  /// `bound`, optionally complemented (G<=k phi = 1 - F<=k !phi).
  struct BoundedReadout {
    std::size_t property = 0;  ///< index into the planned property list
    std::size_t column = 0;
    std::uint64_t bound = 0;
    bool complement = false;
  };
  std::vector<BoundedReadout> bounded;

  /// Deduplicated reward structure names for the transient group.
  std::vector<std::string> rewardNames;
  struct TransientEntry {
    std::size_t property = 0;
    std::size_t reward = 0;  ///< index into rewardNames
    bool cumulative = false;
    std::uint64_t bound = 0;
  };
  std::vector<TransientEntry> transients;

  /// Properties executed as independent tasks (one representative per
  /// structurally distinct property). Their state subformulas are interned
  /// into `masks` like the bounded columns': phiMask is the until
  /// left-hand side (kNoMask when trivially true or the operator has
  /// none), psiMask the target set — next/finally operand, the *negated*
  /// globally operand (the executor complements), the until right-hand
  /// side, or a reachability reward's target. Steady-state and transient
  /// reward singles carry no masks.
  struct Single {
    std::size_t property = 0;
    std::size_t phiMask = kNoMask;
    std::size_t psiMask = kNoMask;
  };
  std::vector<Single> singles;
  /// Structurally identical repeats of singles, as (property,
  /// representative) pairs — the representative (a property listed in
  /// `singles`) runs once and its result is copied. Exact evaluation is
  /// deterministic, so the copy equals a recompute bit for bit.
  std::vector<std::pair<std::size_t, std::size_t>> singleDuplicates;

  PlanStats stats;

  /// Steps the shared bounded traversal advances (max column readout).
  [[nodiscard]] std::uint64_t boundedSteps() const;
  /// Steps the shared transient sweep advances (max horizon; cumulative
  /// horizons sample through step bound-1).
  [[nodiscard]] std::uint64_t transientSteps() const;
};

/// Compile a property list into a deduplicated evaluation plan. Purely
/// syntactic — never touches a model, never throws on semantic problems
/// (unknown atoms surface when the plan is executed).
[[nodiscard]] EvalPlan buildPlan(const std::vector<Property>& properties,
                                 const PlanOptions& options = {});

}  // namespace mimostat::pctl
