#include "pctl/lexer.hpp"

#include <cctype>

#include "pctl/parser.hpp"

namespace mimostat::pctl {

std::vector<Token> tokenize(std::string_view input) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = input.size();

  const auto push = [&](TokenKind kind, std::size_t pos, std::string text = {}) {
    tokens.push_back({kind, std::move(text), 0.0, pos});
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      push(TokenKind::kIdent, start, std::string(input.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.' || input[j] == 'e' || input[j] == 'E' ||
                       ((input[j] == '+' || input[j] == '-') && j > i &&
                        (input[j - 1] == 'e' || input[j - 1] == 'E')))) {
        ++j;
      }
      Token t{TokenKind::kNumber, std::string(input.substr(i, j - i)), 0.0,
              start};
      try {
        t.number = std::stod(t.text);
      } catch (const std::exception&) {
        throw ParseError("bad number literal", start);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '"': {
        std::size_t j = i + 1;
        while (j < n && input[j] != '"') ++j;
        if (j >= n) throw ParseError("unterminated quoted atom", start);
        push(TokenKind::kAtom, start, std::string(input.substr(i + 1, j - i - 1)));
        i = j + 1;
        break;
      }
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        break;
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        break;
      case '{':
        push(TokenKind::kLBrace, start);
        ++i;
        break;
      case '}':
        push(TokenKind::kRBrace, start);
        ++i;
        break;
      case '&':
        push(TokenKind::kAnd, start);
        ++i;
        break;
      case '|':
        push(TokenKind::kOr, start);
        ++i;
        break;
      case '!':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
        } else {
          push(TokenKind::kNot, start);
          ++i;
        }
        break;
      case '=':
        if (i + 1 < n && input[i + 1] == '?') {
          push(TokenKind::kEqQ, start);
          i += 2;
        } else {
          push(TokenKind::kEq, start);
          ++i;
        }
        break;
      case '<':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
        } else {
          push(TokenKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && input[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
        } else {
          push(TokenKind::kGt, start);
          ++i;
        }
        break;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", start);
    }
  }
  push(TokenKind::kEnd, n);
  return tokens;
}

}  // namespace mimostat::pctl
