#include "pctl/ast.hpp"

#include <cassert>
#include <sstream>

namespace mimostat::pctl {

const char* cmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool evalCmp(CmpOp op, double lhs, double rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

bool evalCmp(CmpOp op, std::int64_t lhs, std::int64_t rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return lhs != rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

StateFormulaPtr StateFormula::makeTrue() {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kTrue;
  return f;
}

StateFormulaPtr StateFormula::makeFalse() {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kFalse;
  return f;
}

StateFormulaPtr StateFormula::makeAtom(std::string name) {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kAtom;
  f->name = std::move(name);
  return f;
}

StateFormulaPtr StateFormula::makeVarCmp(std::string var, CmpOp op,
                                         std::int64_t v) {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kVarCmp;
  f->name = std::move(var);
  f->op = op;
  f->value = v;
  return f;
}

StateFormulaPtr StateFormula::makeNot(StateFormulaPtr inner) {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kNot;
  f->lhs = std::move(inner);
  return f;
}

StateFormulaPtr StateFormula::makeAnd(StateFormulaPtr a, StateFormulaPtr b) {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kAnd;
  f->lhs = std::move(a);
  f->rhs = std::move(b);
  return f;
}

StateFormulaPtr StateFormula::makeOr(StateFormulaPtr a, StateFormulaPtr b) {
  auto f = std::make_shared<StateFormula>();
  f->kind = Kind::kOr;
  f->lhs = std::move(a);
  f->rhs = std::move(b);
  return f;
}

namespace {

int precedence(StateFormula::Kind kind) {
  switch (kind) {
    case StateFormula::Kind::kOr:
      return 1;
    case StateFormula::Kind::kAnd:
      return 2;
    case StateFormula::Kind::kNot:
      return 3;
    default:
      return 4;
  }
}

void printFormula(const StateFormula& f, std::ostream& os, int parentPrec) {
  const int prec = precedence(f.kind);
  const bool parens = prec < parentPrec;
  if (parens) os << '(';
  switch (f.kind) {
    case StateFormula::Kind::kTrue:
      os << "true";
      break;
    case StateFormula::Kind::kFalse:
      os << "false";
      break;
    case StateFormula::Kind::kAtom:
      os << '"' << f.name << '"';
      break;
    case StateFormula::Kind::kVarCmp:
      os << f.name << cmpOpName(f.op) << f.value;
      break;
    case StateFormula::Kind::kNot:
      os << '!';
      printFormula(*f.lhs, os, prec + 1);
      break;
    case StateFormula::Kind::kAnd:
      printFormula(*f.lhs, os, prec);
      os << " & ";
      printFormula(*f.rhs, os, prec + 1);
      break;
    case StateFormula::Kind::kOr:
      printFormula(*f.lhs, os, prec);
      os << " | ";
      printFormula(*f.rhs, os, prec + 1);
      break;
  }
  if (parens) os << ')';
}

void printBound(const std::optional<std::uint64_t>& bound, std::ostream& os) {
  if (bound) os << "<=" << *bound;
}

}  // namespace

std::string toString(const StateFormula& f) {
  std::ostringstream os;
  printFormula(f, os, 0);
  return os.str();
}

bool isTimeBounded(const PathFormula& f) {
  return f.kind == PathFormula::Kind::kNext || f.bound.has_value();
}

std::string toString(const PathFormula& f) {
  std::ostringstream os;
  switch (f.kind) {
    case PathFormula::Kind::kNext:
      os << "X " << toString(*f.lhs);
      break;
    case PathFormula::Kind::kUntil:
      os << toString(*f.lhs) << " U";
      printBound(f.bound, os);
      os << ' ' << toString(*f.rhs);
      break;
    case PathFormula::Kind::kFinally:
      os << 'F';
      printBound(f.bound, os);
      os << ' ' << toString(*f.lhs);
      break;
    case PathFormula::Kind::kGlobally:
      os << 'G';
      printBound(f.bound, os);
      os << ' ' << toString(*f.lhs);
      break;
  }
  return os.str();
}

std::string toString(const Property& p) {
  std::ostringstream os;
  if (p.kind == Property::Kind::kProb) {
    os << 'P';
    if (p.prob.isQuery) {
      os << "=?";
    } else {
      os << cmpOpName(p.prob.boundOp) << p.prob.boundValue;
    }
    os << " [ " << toString(p.prob.path) << " ]";
  } else {
    os << 'R';
    if (!p.reward.rewardName.empty()) os << "{\"" << p.reward.rewardName << "\"}";
    if (p.reward.isQuery) {
      os << "=?";
    } else {
      os << cmpOpName(p.reward.boundOp) << p.reward.boundValue;
    }
    os << " [ ";
    switch (p.reward.kind) {
      case RewardQuery::Kind::kInstantaneous:
        os << "I=" << p.reward.bound;
        break;
      case RewardQuery::Kind::kCumulative:
        os << "C<=" << p.reward.bound;
        break;
      case RewardQuery::Kind::kSteadyState:
        os << 'S';
        break;
      case RewardQuery::Kind::kReachability:
        os << "F " << toString(*p.reward.target);
        break;
    }
    os << " ]";
  }
  return os.str();
}

}  // namespace mimostat::pctl
