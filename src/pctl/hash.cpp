#include "pctl/hash.hpp"

#include "util/hash.hpp"

namespace mimostat::pctl {

namespace {

std::uint64_t hashName(std::uint64_t seed, const std::string& name) {
  return util::fnv1a(name.data(), name.size(), seed);
}

std::uint64_t tag(std::uint64_t seed, std::uint64_t value) {
  return util::hashCombine(seed, util::mix64(value));
}

}  // namespace

std::uint64_t structuralHash(const StateFormula& f) {
  std::uint64_t h = tag(0x5157A7EF0A91ULL, static_cast<std::uint64_t>(f.kind));
  switch (f.kind) {
    case StateFormula::Kind::kTrue:
    case StateFormula::Kind::kFalse:
      return h;
    case StateFormula::Kind::kAtom:
      return hashName(h, f.name);
    case StateFormula::Kind::kVarCmp:
      h = hashName(h, f.name);
      h = tag(h, static_cast<std::uint64_t>(f.op));
      return tag(h, static_cast<std::uint64_t>(f.value));
    case StateFormula::Kind::kNot:
      return tag(h, structuralHash(*f.lhs));
    case StateFormula::Kind::kAnd:
    case StateFormula::Kind::kOr:
      h = tag(h, structuralHash(*f.lhs));
      return tag(h, structuralHash(*f.rhs));
  }
  return h;
}

std::uint64_t structuralHash(const PathFormula& f) {
  std::uint64_t h = tag(0x9A7EF0B2C4D6ULL, static_cast<std::uint64_t>(f.kind));
  h = tag(h, f.bound ? *f.bound + 1 : 0);
  if (f.lhs) h = tag(h, structuralHash(*f.lhs));
  if (f.rhs) h = tag(h, structuralHash(*f.rhs));
  return h;
}

std::uint64_t structuralHash(const Property& p) {
  std::uint64_t h = tag(0xC3D5E7F90B1DULL, static_cast<std::uint64_t>(p.kind));
  if (p.kind == Property::Kind::kProb) {
    h = tag(h, p.prob.isQuery ? 1 : 0);
    if (!p.prob.isQuery) {
      h = tag(h, static_cast<std::uint64_t>(p.prob.boundOp));
      std::uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(p.prob.boundValue));
      __builtin_memcpy(&bits, &p.prob.boundValue, sizeof(bits));
      h = tag(h, bits);
    }
    return tag(h, structuralHash(p.prob.path));
  }
  const RewardQuery& rq = p.reward;
  h = tag(h, static_cast<std::uint64_t>(rq.kind));
  h = tag(h, rq.bound);
  h = hashName(h, rq.rewardName);
  h = tag(h, rq.isQuery ? 1 : 0);
  if (!rq.isQuery) {
    h = tag(h, static_cast<std::uint64_t>(rq.boundOp));
    std::uint64_t bits = 0;
    __builtin_memcpy(&bits, &rq.boundValue, sizeof(bits));
    h = tag(h, bits);
  }
  if (rq.target) h = tag(h, structuralHash(*rq.target));
  return h;
}

bool structuralEqual(const StateFormula& a, const StateFormula& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case StateFormula::Kind::kTrue:
    case StateFormula::Kind::kFalse:
      return true;
    case StateFormula::Kind::kAtom:
      return a.name == b.name;
    case StateFormula::Kind::kVarCmp:
      return a.name == b.name && a.op == b.op && a.value == b.value;
    case StateFormula::Kind::kNot:
      return structuralEqual(*a.lhs, *b.lhs);
    case StateFormula::Kind::kAnd:
    case StateFormula::Kind::kOr:
      return structuralEqual(*a.lhs, *b.lhs) && structuralEqual(*a.rhs, *b.rhs);
  }
  return false;
}

bool structuralEqual(const PathFormula& a, const PathFormula& b) {
  if (a.kind != b.kind || a.bound != b.bound) return false;
  if ((a.lhs == nullptr) != (b.lhs == nullptr)) return false;
  if ((a.rhs == nullptr) != (b.rhs == nullptr)) return false;
  if (a.lhs && !structuralEqual(*a.lhs, *b.lhs)) return false;
  if (a.rhs && !structuralEqual(*a.rhs, *b.rhs)) return false;
  return true;
}

bool structuralEqual(const Property& a, const Property& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Property::Kind::kProb) {
    if (a.prob.isQuery != b.prob.isQuery) return false;
    if (!a.prob.isQuery &&
        (a.prob.boundOp != b.prob.boundOp ||
         a.prob.boundValue != b.prob.boundValue)) {
      return false;
    }
    return structuralEqual(a.prob.path, b.prob.path);
  }
  const RewardQuery& x = a.reward;
  const RewardQuery& y = b.reward;
  if (x.kind != y.kind || x.bound != y.bound || x.rewardName != y.rewardName ||
      x.isQuery != y.isQuery) {
    return false;
  }
  if (!x.isQuery && (x.boundOp != y.boundOp || x.boundValue != y.boundValue)) {
    return false;
  }
  if ((x.target == nullptr) != (y.target == nullptr)) return false;
  return x.target == nullptr || structuralEqual(*x.target, *y.target);
}

bool isTriviallyTrue(const StateFormula& f) {
  if (f.kind == StateFormula::Kind::kTrue) return true;
  if (f.kind == StateFormula::Kind::kNot) {
    const StateFormula& inner = *f.lhs;
    if (inner.kind == StateFormula::Kind::kFalse) return true;
    if (inner.kind == StateFormula::Kind::kNot) {
      return isTriviallyTrue(*inner.lhs);
    }
  }
  return false;
}

StateFormulaPtr negated(const StateFormulaPtr& f) {
  switch (f->kind) {
    case StateFormula::Kind::kNot:
      return f->lhs;
    case StateFormula::Kind::kTrue:
      return StateFormula::makeFalse();
    case StateFormula::Kind::kFalse:
      return StateFormula::makeTrue();
    default:
      return StateFormula::makeNot(f);
  }
}

}  // namespace mimostat::pctl
