// Structural hashing, equality and normalization helpers for pCTL ASTs.
//
// The evaluation planner (pctl/plan.hpp) deduplicates subformulas by
// structure, not by pointer or source text: "F<=5 target" parsed twice, or
// the psi of "a U<=3 b" appearing again inside "F<=9 b", must land on the
// same evaluation task. structuralHash/structuralEqual provide the (hash,
// verify) pair for that; negated() performs the one normalization the
// planner relies on (double-negation elimination, so "G<=T !flag" and
// "F<=T flag" share one traversal column).
#pragma once

#include <cstdint>

#include "pctl/ast.hpp"

namespace mimostat::pctl {

/// Order-sensitive structural hash (a & b and b & a hash differently — the
/// planner only needs "same structure implies same hash").
[[nodiscard]] std::uint64_t structuralHash(const StateFormula& f);
[[nodiscard]] std::uint64_t structuralHash(const PathFormula& f);
[[nodiscard]] std::uint64_t structuralHash(const Property& p);

/// Exact structural equality — the collision check behind structuralHash.
[[nodiscard]] bool structuralEqual(const StateFormula& a,
                                   const StateFormula& b);
[[nodiscard]] bool structuralEqual(const PathFormula& a, const PathFormula& b);
[[nodiscard]] bool structuralEqual(const Property& a, const Property& b);

/// Syntactic tautology check used by the planner to turn "true U<=k psi"
/// into the phi-less finally form (kTrue, or any !-chain bottoming out in
/// the matching constant).
[[nodiscard]] bool isTriviallyTrue(const StateFormula& f);

/// Structural negation with double-negation elimination: !(!f) = f, !true =
/// false, !false = true. Shares the original nodes (never deep-copies).
[[nodiscard]] StateFormulaPtr negated(const StateFormulaPtr& f);

}  // namespace mimostat::pctl
