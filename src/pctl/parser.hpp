// Recursive-descent parser for pCTL properties and state formulas.
//
// Grammar (PRISM-flavoured):
//   property   := 'P' probSpec '[' pathFormula ']'
//               | 'R' rewardRef? probSpec '[' rewardBody ']'
//   probSpec   := '=?' | cmpOp NUMBER
//   rewardRef  := '{' ATOM '}'
//   rewardBody := 'I' '=' NUMBER | 'C' '<=' NUMBER | 'S'
//   pathFormula:= 'X' stateF | 'F' bound? stateF | 'G' bound? stateF
//               | stateF 'U' bound? stateF
//   bound      := '<=' NUMBER
//   stateF     := orF;  orF := andF ('|' andF)*;  andF := notF ('&' notF)*
//   notF       := '!' notF | primary
//   primary    := 'true' | 'false' | ATOM | IDENT cmpOp NUMBER | IDENT
//               | '(' stateF ')'
// A bare IDENT is sugar for IDENT != 0 when it names a variable, or an
// unquoted atom otherwise (resolution happens at check time).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "pctl/ast.hpp"

namespace mimostat::pctl {

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t pos)
      : std::runtime_error(message + " (at offset " + std::to_string(pos) + ")"),
        pos_(pos) {}

  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  std::size_t pos_;
};

/// Parse a full property ("P=? [ G<=300 !flag ]", "R=? [ I=300 ]", ...).
[[nodiscard]] Property parseProperty(std::string_view input);

/// Parse a bare state formula ("!flag & count<=6").
[[nodiscard]] StateFormulaPtr parseStateFormula(std::string_view input);

}  // namespace mimostat::pctl
