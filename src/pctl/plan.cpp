#include "pctl/plan.hpp"

#include <algorithm>

#include "pctl/hash.hpp"

namespace mimostat::pctl {

namespace {

/// Hash-then-verify interning of state subformulas into plan.masks.
struct MaskInterner {
  EvalPlan& plan;
  std::vector<std::uint64_t> hashes;

  std::size_t intern(const StateFormulaPtr& f) {
    const std::uint64_t h = structuralHash(*f);
    for (std::size_t m = 0; m < plan.masks.size(); ++m) {
      if (hashes[m] == h && structuralEqual(*plan.masks[m], *f)) {
        ++plan.stats.tasksDeduped;
        return m;
      }
    }
    plan.masks.push_back(f);
    hashes.push_back(h);
    return plan.masks.size() - 1;
  }
};

}  // namespace

std::uint64_t EvalPlan::boundedSteps() const {
  std::uint64_t steps = 0;
  for (const Column& c : columns) steps = std::max(steps, c.steps);
  return steps;
}

std::uint64_t EvalPlan::transientSteps() const {
  std::uint64_t steps = 0;
  for (const TransientEntry& e : transients) {
    if (!e.cumulative) {
      steps = std::max(steps, e.bound);
    } else if (e.bound > 0) {
      steps = std::max(steps, e.bound - 1);
    }
  }
  return steps;
}

EvalPlan buildPlan(const std::vector<Property>& properties,
                   const PlanOptions& options) {
  EvalPlan plan;
  MaskInterner masks{plan, {}};
  std::vector<std::uint64_t> singleHashes;

  // Structurally identical single tasks run once; repeats copy the
  // representative's (deterministic) result. The duplicate check runs
  // BEFORE mask interning so a repeat counts one dedup, not two. A
  // representative's state subformulas intern into the shared mask table
  // (phiMask/psiMask per Single's contract), so singles dedup their set
  // evaluations against the bounded columns and against each other.
  const auto addSingle = [&](std::size_t i) {
    const std::uint64_t h = structuralHash(properties[i]);
    for (std::size_t j = 0; j < plan.singles.size(); ++j) {
      if (singleHashes[j] == h &&
          structuralEqual(properties[plan.singles[j].property],
                          properties[i])) {
        ++plan.stats.tasksDeduped;
        plan.singleDuplicates.emplace_back(i, plan.singles[j].property);
        return;
      }
    }
    EvalPlan::Single single;
    single.property = i;
    const Property& p = properties[i];
    if (p.kind == Property::Kind::kProb) {
      const PathFormula& path = p.prob.path;
      switch (path.kind) {
        case PathFormula::Kind::kNext:
        case PathFormula::Kind::kFinally:
          single.psiMask = masks.intern(path.lhs);
          break;
        case PathFormula::Kind::kGlobally:
          // G phi answers as 1 - reach(!phi); interning the negated operand
          // lets it share a mask with F !phi / U..!phi queries.
          single.psiMask = masks.intern(negated(path.lhs));
          break;
        case PathFormula::Kind::kUntil:
          if (!isTriviallyTrue(*path.lhs)) {
            single.phiMask = masks.intern(path.lhs);
          }
          single.psiMask = masks.intern(path.rhs);
          break;
      }
    } else if (p.reward.kind == RewardQuery::Kind::kReachability) {
      single.psiMask = masks.intern(p.reward.target);
    }
    plan.singles.push_back(single);
    singleHashes.push_back(h);
  };

  const auto internColumn = [&](std::size_t phiMask, std::size_t psiMask,
                                bool masked,
                                std::uint64_t steps) -> std::size_t {
    for (std::size_t c = 0; c < plan.columns.size(); ++c) {
      EvalPlan::Column& col = plan.columns[c];
      if (col.phiMask == phiMask && col.psiMask == psiMask &&
          col.masked == masked) {
        ++plan.stats.tasksDeduped;
        col.steps = std::max(col.steps, steps);
        return c;
      }
    }
    plan.columns.push_back({phiMask, psiMask, masked, steps});
    return plan.columns.size() - 1;
  };

  for (std::size_t i = 0; i < properties.size(); ++i) {
    const Property& p = properties[i];

    if (p.kind == Property::Kind::kProb) {
      const PathFormula& path = p.prob.path;
      if (options.batchBounded && isTimeBounded(path)) {
        EvalPlan::BoundedReadout readout;
        readout.property = i;
        switch (path.kind) {
          case PathFormula::Kind::kNext:
            // X psi: one unmasked propagation step of the psi indicator.
            readout.bound = 1;
            readout.column = internColumn(EvalPlan::kNoMask,
                                          masks.intern(path.lhs),
                                          /*masked=*/false, readout.bound);
            break;
          case PathFormula::Kind::kFinally:
            readout.bound = *path.bound;
            readout.column = internColumn(EvalPlan::kNoMask,
                                          masks.intern(path.lhs),
                                          /*masked=*/true, readout.bound);
            break;
          case PathFormula::Kind::kGlobally:
            // G<=k phi = 1 - F<=k !phi; negated() folds double negation so
            // "G<=k !flag" and "F<=k flag" share one column.
            readout.bound = *path.bound;
            readout.complement = true;
            readout.column = internColumn(EvalPlan::kNoMask,
                                          masks.intern(negated(path.lhs)),
                                          /*masked=*/true, readout.bound);
            break;
          case PathFormula::Kind::kUntil: {
            readout.bound = *path.bound;
            // true U<=k psi is F<=k psi — same column key.
            const std::size_t phiMask = isTriviallyTrue(*path.lhs)
                                            ? EvalPlan::kNoMask
                                            : masks.intern(path.lhs);
            readout.column = internColumn(phiMask, masks.intern(path.rhs),
                                          /*masked=*/true, readout.bound);
            break;
          }
        }
        plan.bounded.push_back(readout);
        continue;
      }
      addSingle(i);
      continue;
    }

    const RewardQuery& rq = p.reward;
    const bool horizonBatchable =
        rq.kind == RewardQuery::Kind::kInstantaneous ||
        rq.kind == RewardQuery::Kind::kCumulative;
    if (options.batchTransients && horizonBatchable) {
      EvalPlan::TransientEntry entry;
      entry.property = i;
      entry.cumulative = rq.kind == RewardQuery::Kind::kCumulative;
      entry.bound = rq.bound;
      const auto found = std::find(plan.rewardNames.begin(),
                                   plan.rewardNames.end(), rq.rewardName);
      if (found == plan.rewardNames.end()) {
        plan.rewardNames.push_back(rq.rewardName);
        entry.reward = plan.rewardNames.size() - 1;
      } else {
        ++plan.stats.tasksDeduped;
        entry.reward =
            static_cast<std::size_t>(found - plan.rewardNames.begin());
      }
      plan.transients.push_back(entry);
      continue;
    }
    addSingle(i);
  }

  plan.stats.tasksPlanned = plan.masks.size() + plan.columns.size() +
                            plan.rewardNames.size() +
                            (plan.bounded.empty() ? 0 : 1) +
                            (plan.transients.empty() ? 0 : 1) +
                            plan.singles.size();

  // Per-step traversals avoided vs per-formula evaluation: each group
  // member alone would advance its own traversal `bound` (readouts) or
  // `horizon` (transients) steps; the shared traversal advances to the
  // group maximum once.
  if (!plan.bounded.empty()) {
    std::uint64_t perFormula = 0;
    for (const EvalPlan::BoundedReadout& r : plan.bounded) {
      perFormula += r.bound;
    }
    plan.stats.traversalsSaved += perFormula - plan.boundedSteps();
  }
  if (!plan.transients.empty()) {
    std::uint64_t perFormula = 0;
    for (const EvalPlan::TransientEntry& e : plan.transients) {
      if (!e.cumulative) {
        perFormula += e.bound;
      } else if (e.bound > 0) {
        perFormula += e.bound - 1;
      }
    }
    plan.stats.traversalsSaved += perFormula - plan.transientSteps();
  }
  return plan;
}

}  // namespace mimostat::pctl
