// pCTL abstract syntax (Hansson & Jonsson logic, PRISM property syntax).
//
// The paper uses:
//   P1: P=? [ G<=T !flag ]          (best case)
//   P2: R=? [ I=T ]                 (average case / BER at steady state)
//   P3: P=? [ F<=T errs>1 ]         (worst case)
//   C1: R=? [ I=T ]                 (convergence, over a different reward)
// plus bounded-probability forms like P>=0.99 [...] for assertions.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <cstdint>

namespace mimostat::pctl {

// ---------------------------------------------------------------- state formulas

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

[[nodiscard]] const char* cmpOpName(CmpOp op);
[[nodiscard]] bool evalCmp(CmpOp op, std::int64_t lhs, std::int64_t rhs);
[[nodiscard]] bool evalCmp(CmpOp op, double lhs, double rhs);

struct StateFormula;
using StateFormulaPtr = std::shared_ptr<const StateFormula>;

struct StateFormula {
  enum class Kind { kTrue, kFalse, kAtom, kVarCmp, kNot, kAnd, kOr };

  Kind kind;
  std::string name;            // kAtom: label name; kVarCmp: variable name
  CmpOp op = CmpOp::kEq;       // kVarCmp
  std::int64_t value = 0;      // kVarCmp
  StateFormulaPtr lhs;         // kNot/kAnd/kOr
  StateFormulaPtr rhs;         // kAnd/kOr

  static StateFormulaPtr makeTrue();
  static StateFormulaPtr makeFalse();
  static StateFormulaPtr makeAtom(std::string name);
  static StateFormulaPtr makeVarCmp(std::string var, CmpOp op, std::int64_t v);
  static StateFormulaPtr makeNot(StateFormulaPtr f);
  static StateFormulaPtr makeAnd(StateFormulaPtr a, StateFormulaPtr b);
  static StateFormulaPtr makeOr(StateFormulaPtr a, StateFormulaPtr b);
};

// ---------------------------------------------------------------- path formulas

struct PathFormula {
  enum class Kind { kNext, kUntil, kFinally, kGlobally };

  Kind kind;
  StateFormulaPtr lhs;               // kUntil left; others: the operand
  StateFormulaPtr rhs;               // kUntil right
  std::optional<std::uint64_t> bound;  // step bound (<=k); nullopt = unbounded
};

/// A path formula is time-bounded when every sampled path decides it after a
/// fixed number of steps: X always, F/G/U only with an explicit step bound.
/// This is exactly the class a statistical backend can estimate from finite
/// paths.
[[nodiscard]] bool isTimeBounded(const PathFormula& f);

// ---------------------------------------------------------------- properties

/// P-operator query: either a value query (P=?) or a bound (P >= 0.99 etc.).
struct ProbQuery {
  bool isQuery = true;          // P=?
  CmpOp boundOp = CmpOp::kGe;   // when !isQuery
  double boundValue = 0.0;      // when !isQuery
  PathFormula path;
};

/// R-operator query over a named reward structure.
struct RewardQuery {
  enum class Kind {
    kInstantaneous,  // R=? [ I=k ]
    kCumulative,     // R=? [ C<=k ]
    kSteadyState,    // R=? [ S ]
    kReachability,   // R=? [ F phi ] — expected reward accumulated until phi
  };
  Kind kind = Kind::kInstantaneous;
  std::uint64_t bound = 0;      // k for I=/C<=
  StateFormulaPtr target;       // phi for F
  std::string rewardName;       // empty = default reward
  bool isQuery = true;          // R=?
  CmpOp boundOp = CmpOp::kGe;
  double boundValue = 0.0;
};

struct Property {
  enum class Kind { kProb, kReward };
  Kind kind = Kind::kProb;
  ProbQuery prob;
  RewardQuery reward;
};

/// Pretty-print back to PRISM-ish concrete syntax (tested for round trips).
[[nodiscard]] std::string toString(const StateFormula& f);
[[nodiscard]] std::string toString(const PathFormula& f);
[[nodiscard]] std::string toString(const Property& p);

}  // namespace mimostat::pctl
