#include "pctl/property_cache.hpp"

#include "pctl/parser.hpp"

namespace mimostat::pctl {

Property PropertyCache::get(std::string_view text) {
  std::string key(text);
  {
    const util::MutexLock lock(mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Parse outside the lock: parsing is pure, and a duplicate concurrent
  // parse of the same text is cheaper than serializing every parser call.
  Property property = parseProperty(text);
  const util::MutexLock lock(mutex_);
  ++misses_;
  if (cache_.size() >= maxEntries_) cache_.clear();
  return cache_.emplace(std::move(key), std::move(property)).first->second;
}

std::size_t PropertyCache::size() const {
  const util::MutexLock lock(mutex_);
  return cache_.size();
}

std::uint64_t PropertyCache::hits() const {
  const util::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t PropertyCache::misses() const {
  const util::MutexLock lock(mutex_);
  return misses_;
}

void PropertyCache::clear() {
  const util::MutexLock lock(mutex_);
  cache_.clear();
}

PropertyCache& PropertyCache::global() {
  static PropertyCache cache;
  return cache;
}

}  // namespace mimostat::pctl
