#include "dtmc/signature.hpp"

#include <cstring>
#include <deque>
#include <unordered_set>

#include "dtmc/state.hpp"
#include "util/hash.hpp"

namespace mimostat::dtmc {

namespace {

std::uint64_t hashBits(std::uint64_t h, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return util::hashCombine(h, util::mix64(bits));
}

std::uint64_t hashState(std::uint64_t h, const State& s) {
  return util::hashCombine(
      h, util::fnv1a(s.data(), s.size() * sizeof(std::int32_t)));
}

/// Transition-less states are absorbing by convention (buildExplicit and
/// PathSampler materialize the self-loop); hash it the same way so a model
/// emitting nothing and one emitting an explicit {1.0, s} self-loop share a
/// cache key, and sig.transitions matches the built transition count.
std::uint64_t hashSelfLoop(std::uint64_t h, const State& s,
                           std::uint64_t& transitions) {
  h = hashBits(h, 1.0);
  h = hashState(h, s);
  ++transitions;
  return h;
}

/// BFS probe storing visited states as packed u64 keys (PackedStateSet +
/// u64 frontier) — ~5x leaner than the vector-state set, same as
/// countReachable. The hash stream is computed over the unpacked states, so
/// packed and vector probes of the same model produce the same signature.
ModelSignature packedProbe(const Model& model, const VarLayout& layout,
                           const SignatureOptions& options, std::uint64_t h,
                           ModelSignature sig) {
  util::PackedStateSet visited(1 << 16);
  std::deque<std::uint64_t> frontier;
  for (const State& init : model.initialStates()) {
    h = hashState(h, init);
    const std::uint64_t packed = layout.pack(init);
    if (visited.insert(packed)) frontier.push_back(packed);
  }

  std::vector<Transition> out;
  while (!frontier.empty()) {
    const State current = layout.unpack(frontier.front());
    frontier.pop_front();
    out.clear();
    model.transitions(current, out);
    if (out.empty()) {
      h = hashSelfLoop(h, current, sig.transitions);
      continue;
    }
    for (const Transition& t : out) {
      h = hashBits(h, t.prob);
      h = hashState(h, t.target);
      ++sig.transitions;
      const std::uint64_t packed = layout.pack(t.target);
      if (visited.insert(packed)) {
        if (visited.size() > options.maxStates) {
          sig.states = visited.size();
          sig.hash = util::hashCombine(h, util::mix64(~options.maxStates));
          return sig;
        }
        frontier.push_back(packed);
      }
    }
  }

  sig.exact = true;
  sig.states = visited.size();
  sig.hash = h;
  return sig;
}

}  // namespace

ModelSignature modelSignature(const Model& model,
                              const SignatureOptions& options) {
  ModelSignature sig;
  std::uint64_t h = 0xA11A5E5ULL;

  const VarLayout layout = model.layout();
  for (const VarSpec& var : layout.vars()) {
    h = util::hashCombine(h, util::fnv1a(var.name.data(), var.name.size()));
    h = util::hashCombine(h, util::mix64(static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(var.lo)) |
                             (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(var.hi))
                              << 32)));
  }

  // Both probes BFS in discovery order; the hash stream is a function of the
  // model alone (no pointers, no container iteration order), so the
  // signature is stable across runs and processes. Layouts that pack into
  // 64 bits take the memory-lean packed path.
  if (layout.fitsInU64()) {
    return packedProbe(model, layout, options, h, sig);
  }

  std::unordered_set<State, util::VecI32Hash> visited;
  std::deque<State> frontier;
  for (const State& init : model.initialStates()) {
    h = hashState(h, init);
    if (visited.insert(init).second) frontier.push_back(init);
  }

  std::vector<Transition> out;
  while (!frontier.empty()) {
    const State current = std::move(frontier.front());
    frontier.pop_front();
    out.clear();
    model.transitions(current, out);
    if (out.empty()) {
      h = hashSelfLoop(h, current, sig.transitions);
      continue;
    }
    for (const Transition& t : out) {
      h = hashBits(h, t.prob);
      h = hashState(h, t.target);
      ++sig.transitions;
      if (visited.insert(t.target).second) {
        if (visited.size() > options.maxStates) {
          // Truncated probe: fold the visit cap in so a truncated signature
          // can never alias an exact one with the same prefix.
          sig.states = visited.size();
          sig.hash = util::hashCombine(h, util::mix64(~options.maxStates));
          return sig;
        }
        frontier.push_back(t.target);
      }
    }
  }

  sig.exact = true;
  sig.states = visited.size();
  sig.hash = h;
  return sig;
}

void LabelRewardDigest::addMask(std::uint64_t formulaHash,
                                const la::BitVector& mask) {
  // Content hash covers the packed words AND the bit length: a 64-state
  // all-zero mask must not collide with a 128-state one.
  std::uint64_t content = util::fnv1a(
      mask.words().data(), mask.words().size() * sizeof(la::BitVector::Word));
  content = util::hashCombine(content, util::mix64(mask.size()));
  hash_ ^= util::mix64(util::hashCombine(util::mix64(formulaHash), content));
  ++entries_;
}

void LabelRewardDigest::addReward(std::string_view name,
                                  const std::vector<double>& values) {
  const std::uint64_t id = util::fnv1a(name.data(), name.size());
  std::uint64_t content =
      util::fnv1a(values.data(), values.size() * sizeof(double));
  content = util::hashCombine(content, util::mix64(values.size()));
  hash_ ^= util::mix64(util::hashCombine(util::mix64(id), content));
  ++entries_;
}

}  // namespace mimostat::dtmc
