#include "dtmc/signature.hpp"

#include <cstring>
#include <deque>
#include <unordered_set>

#include "dtmc/state.hpp"
#include "util/hash.hpp"

namespace mimostat::dtmc {

namespace {

std::uint64_t hashBits(std::uint64_t h, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return util::hashCombine(h, util::mix64(bits));
}

std::uint64_t hashState(std::uint64_t h, const State& s) {
  return util::hashCombine(
      h, util::fnv1a(s.data(), s.size() * sizeof(std::int32_t)));
}

}  // namespace

ModelSignature modelSignature(const Model& model,
                              const SignatureOptions& options) {
  ModelSignature sig;
  std::uint64_t h = 0xA11A5E5ULL;

  const VarLayout layout = model.layout();
  for (const VarSpec& var : layout.vars()) {
    h = util::hashCombine(h, util::fnv1a(var.name.data(), var.name.size()));
    h = util::hashCombine(h, util::mix64(static_cast<std::uint64_t>(
                                 static_cast<std::uint32_t>(var.lo)) |
                             (static_cast<std::uint64_t>(
                                  static_cast<std::uint32_t>(var.hi))
                              << 32)));
  }

  // BFS in discovery order; the hash stream is a function of the model
  // alone (no pointers, no container iteration order), so the signature is
  // stable across runs and processes.
  std::unordered_set<State, util::VecI32Hash> visited;
  std::deque<State> frontier;
  for (const State& init : model.initialStates()) {
    h = hashState(h, init);
    if (visited.insert(init).second) frontier.push_back(init);
  }

  std::vector<Transition> out;
  while (!frontier.empty()) {
    const State current = std::move(frontier.front());
    frontier.pop_front();
    out.clear();
    model.transitions(current, out);
    for (const Transition& t : out) {
      h = hashBits(h, t.prob);
      h = hashState(h, t.target);
      ++sig.transitions;
      if (visited.insert(t.target).second) {
        if (visited.size() > options.maxStates) {
          // Truncated probe: fold the visit cap in so a truncated signature
          // can never alias an exact one with the same prefix.
          sig.states = visited.size();
          sig.hash = util::hashCombine(h, util::mix64(~options.maxStates));
          return sig;
        }
        frontier.push_back(t.target);
      }
    }
  }

  sig.exact = true;
  sig.states = visited.size();
  sig.hash = h;
  return sig;
}

}  // namespace mimostat::dtmc
