#include "dtmc/io.hpp"

#include <algorithm>
#include <cassert>
#include <fstream>
#include <istream>
#include <ostream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace mimostat::dtmc {

void writeTra(const ExplicitDtmc& dtmc, std::ostream& os) {
  // Full round-trip precision: probabilities must survive write/read.
  os.precision(std::numeric_limits<double>::max_digits10);
  os << dtmc.numStates() << ' ' << dtmc.numTransitions() << '\n';
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      os << s << ' ' << dtmc.col()[k] << ' ' << dtmc.val()[k] << '\n';
    }
  }
}

void writeSta(const ExplicitDtmc& dtmc, std::ostream& os) {
  os << '(';
  const auto& vars = dtmc.varLayout().vars();
  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (i != 0) os << ',';
    os << vars[i].name;
  }
  os << ")\n";
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    os << s << ":(";
    const State& st = dtmc.state(s);
    for (std::size_t i = 0; i < st.size(); ++i) {
      if (i != 0) os << ',';
      os << st[i];
    }
    os << ")\n";
  }
}

void writeDot(const ExplicitDtmc& dtmc, std::ostream& os) {
  os << "digraph dtmc {\n  rankdir=LR;\n";
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    os << "  s" << s << " [label=\"" << s << "\"";
    if (dtmc.initialDistribution()[s] > 0.0) os << ", shape=doublecircle";
    os << "];\n";
  }
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      os << "  s" << s << " -> s" << dtmc.col()[k] << " [label=\""
         << dtmc.val()[k] << "\"];\n";
    }
  }
  os << "}\n";
}

void writeLab(const ExplicitDtmc& dtmc, const Model& model,
              const std::vector<std::string>& labels, std::ostream& os) {
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) os << ' ';
    os << i << "=\"" << labels[i] << '"';
  }
  os << '\n';
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    bool any = false;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (model.atom(dtmc.state(s), labels[i])) {
        if (!any) {
          os << s << ':';
          any = true;
        }
        os << ' ' << i;
      }
    }
    if (any) os << '\n';
  }
}

void writeSrew(const ExplicitDtmc& dtmc, const Model& model,
               std::string_view rewardName, std::ostream& os) {
  std::vector<std::pair<std::uint32_t, double>> nonzero;
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) {
    const double r = model.stateReward(dtmc.state(s), rewardName);
    if (r != 0.0) nonzero.emplace_back(s, r);
  }
  os.precision(std::numeric_limits<double>::max_digits10);
  os << dtmc.numStates() << ' ' << nonzero.size() << '\n';
  for (const auto& [s, r] : nonzero) os << s << ' ' << r << '\n';
}

ExplicitDtmc readTra(std::istream& tra, std::istream* sta,
                     std::uint32_t initialState) {
  std::uint32_t numStates = 0;
  std::uint64_t numTransitions = 0;
  if (!(tra >> numStates >> numTransitions)) {
    throw std::runtime_error("readTra: malformed header");
  }
  struct Entry {
    std::uint32_t src;
    std::uint32_t dst;
    double prob;
  };
  std::vector<Entry> entries;
  entries.reserve(numTransitions);
  for (std::uint64_t i = 0; i < numTransitions; ++i) {
    Entry e{};
    if (!(tra >> e.src >> e.dst >> e.prob)) {
      throw std::runtime_error("readTra: truncated transition list");
    }
    if (e.src >= numStates || e.dst >= numStates) {
      throw std::runtime_error("readTra: state index out of range");
    }
    entries.push_back(e);
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) { return a.src < b.src; });

  ExplicitDtmc::Raw raw;
  raw.rowPtr.assign(1, 0);
  std::uint32_t row = 0;
  for (const Entry& e : entries) {
    while (row < e.src) {
      raw.rowPtr.push_back(raw.col.size());
      ++row;
    }
    raw.col.push_back(e.dst);
    raw.val.push_back(e.prob);
  }
  while (row < numStates) {
    raw.rowPtr.push_back(raw.col.size());
    ++row;
  }

  if (initialState >= numStates) {
    throw std::runtime_error("readTra: initial state out of range");
  }
  raw.initial.assign(numStates, 0.0);
  raw.initial[initialState] = 1.0;

  if (sta != nullptr) {
    std::string header;
    if (!std::getline(*sta, header)) {
      throw std::runtime_error("readTra: empty .sta stream");
    }
    // header: (v1,v2,...)
    std::vector<std::string> names;
    std::string current;
    for (const char c : header) {
      if (c == '(' || std::isspace(static_cast<unsigned char>(c))) continue;
      if (c == ',' || c == ')') {
        if (!current.empty()) names.push_back(std::exchange(current, {}));
      } else {
        current.push_back(c);
      }
    }
    raw.states.assign(numStates, State(names.size(), 0));
    std::vector<VarSpec> specs;
    for (const auto& name : names) {
      specs.push_back({name, std::numeric_limits<std::int32_t>::max(),
                       std::numeric_limits<std::int32_t>::min()});
    }
    std::string line;
    while (std::getline(*sta, line)) {
      if (line.empty()) continue;
      const auto colon = line.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("readTra: malformed .sta line");
      }
      const auto idx =
          static_cast<std::uint32_t>(std::stoul(line.substr(0, colon)));
      if (idx >= numStates) {
        throw std::runtime_error("readTra: .sta state index out of range");
      }
      State& state = raw.states[idx];
      std::size_t var = 0;
      std::string token;
      for (std::size_t i = colon + 1; i < line.size(); ++i) {
        const char c = line[i];
        if (c == '(' || std::isspace(static_cast<unsigned char>(c))) continue;
        if (c == ',' || c == ')') {
          if (!token.empty()) {
            if (var >= names.size()) {
              throw std::runtime_error("readTra: too many values in .sta");
            }
            state[var] = static_cast<std::int32_t>(
                std::stol(std::exchange(token, {})));
            ++var;
          }
        } else {
          token.push_back(c);
        }
      }
      if (var != names.size()) {
        throw std::runtime_error("readTra: wrong arity in .sta line");
      }
    }
    for (std::uint32_t s = 0; s < numStates; ++s) {
      for (std::size_t v = 0; v < specs.size(); ++v) {
        specs[v].lo = std::min(specs[v].lo, raw.states[s][v]);
        specs[v].hi = std::max(specs[v].hi, raw.states[s][v]);
      }
    }
    raw.layout = VarLayout(specs);
  } else {
    // No state file: identity state table over one index variable.
    raw.layout = VarLayout(
        {{"s", 0, static_cast<std::int32_t>(numStates) - 1}});
    raw.states.reserve(numStates);
    for (std::uint32_t s = 0; s < numStates; ++s) {
      raw.states.push_back({static_cast<std::int32_t>(s)});
    }
  }
  return ExplicitDtmc::fromRaw(std::move(raw));
}

std::vector<std::pair<std::string, la::BitVector>> readLab(
    std::istream& lab, std::uint32_t numStates) {
  std::string header;
  if (!std::getline(lab, header)) {
    throw std::runtime_error("readLab: empty stream");
  }
  // header: 0="init" 1="error" ...
  std::vector<std::pair<std::string, la::BitVector>> labels;
  {
    std::istringstream hs(header);
    std::string item;
    while (hs >> item) {
      const auto eq = item.find('=');
      if (eq == std::string::npos || item.size() < eq + 3) {
        throw std::runtime_error("readLab: malformed header item");
      }
      const auto id = std::stoul(item.substr(0, eq));
      std::string name = item.substr(eq + 1);
      if (name.front() != '"' || name.back() != '"') {
        throw std::runtime_error("readLab: label name not quoted");
      }
      name = name.substr(1, name.size() - 2);
      if (id != labels.size()) {
        throw std::runtime_error("readLab: non-sequential label ids");
      }
      labels.emplace_back(std::move(name), la::BitVector(numStates));
    }
  }
  std::string line;
  while (std::getline(lab, line)) {
    if (line.empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("readLab: malformed state line");
    }
    const auto state =
        static_cast<std::uint32_t>(std::stoul(line.substr(0, colon)));
    if (state >= numStates) {
      throw std::runtime_error("readLab: state index out of range");
    }
    std::istringstream ls(line.substr(colon + 1));
    std::size_t id = 0;
    while (ls >> id) {
      if (id >= labels.size()) {
        throw std::runtime_error("readLab: label id out of range");
      }
      labels[id].second.set(state);
    }
  }
  return labels;
}

std::vector<double> readSrew(std::istream& srew, std::uint32_t numStates) {
  std::uint32_t headerStates = 0;
  std::uint64_t nonzero = 0;
  if (!(srew >> headerStates >> nonzero)) {
    throw std::runtime_error("readSrew: malformed header");
  }
  if (headerStates != numStates) {
    throw std::runtime_error("readSrew: state count mismatch");
  }
  std::vector<double> rewards(numStates, 0.0);
  for (std::uint64_t i = 0; i < nonzero; ++i) {
    std::uint32_t state = 0;
    double value = 0.0;
    if (!(srew >> state >> value)) {
      throw std::runtime_error("readSrew: truncated reward list");
    }
    if (state >= numStates) {
      throw std::runtime_error("readSrew: state index out of range");
    }
    rewards[state] = value;
  }
  return rewards;
}

ImportedModel::ImportedModel(ImportedExplicit imported)
    : imported_(std::move(imported)) {}

std::vector<VarSpec> ImportedModel::variables() const {
  return {{"s", 0,
           static_cast<std::int32_t>(imported_.dtmc.numStates()) - 1}};
}

std::vector<State> ImportedModel::initialStates() const {
  std::vector<State> initial;
  const auto& dist = imported_.dtmc.initialDistribution();
  for (std::uint32_t s = 0; s < imported_.dtmc.numStates(); ++s) {
    if (dist[s] > 0.0) initial.push_back({static_cast<std::int32_t>(s)});
  }
  return initial;
}

void ImportedModel::transitions(const State& s,
                                std::vector<Transition>& out) const {
  const std::uint32_t idx = indexOf(s);
  const auto& d = imported_.dtmc;
  for (std::uint64_t k = d.rowPtr()[idx]; k < d.rowPtr()[idx + 1]; ++k) {
    out.push_back({d.val()[k], {static_cast<std::int32_t>(d.col()[k])}});
  }
  if (d.rowPtr()[idx] == d.rowPtr()[idx + 1]) {
    out.push_back({1.0, s});  // missing row: absorbing
  }
}

bool ImportedModel::atom(const State& s, std::string_view name) const {
  for (const auto& [labelName, truth] : imported_.labels) {
    if (labelName == name) return truth.get(indexOf(s));
  }
  return false;
}

double ImportedModel::stateReward(const State& s,
                                  std::string_view name) const {
  const std::string_view effective =
      (name == "default") ? std::string_view{} : name;
  for (const auto& [rewardName, values] : imported_.rewards) {
    if (rewardName == effective) return values[indexOf(s)];
  }
  return 0.0;
}

namespace {
std::ofstream openOrThrow(const std::string& path) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  return file;
}
}  // namespace

void writeTraFile(const ExplicitDtmc& dtmc, const std::string& path) {
  auto file = openOrThrow(path);
  writeTra(dtmc, file);
}

void writeStaFile(const ExplicitDtmc& dtmc, const std::string& path) {
  auto file = openOrThrow(path);
  writeSta(dtmc, file);
}

void writeDotFile(const ExplicitDtmc& dtmc, const std::string& path) {
  auto file = openOrThrow(path);
  writeDot(dtmc, file);
}

}  // namespace mimostat::dtmc
