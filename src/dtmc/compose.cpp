#include "dtmc/compose.hpp"

#include <cassert>
#include <charconv>
#include <string>

namespace mimostat::dtmc {

SynchronousProduct::SynchronousProduct(std::vector<const Model*> components)
    : components_(std::move(components)) {
  assert(!components_.empty());
  std::size_t offset = 0;
  for (const Model* component : components_) {
    const std::size_t width = component->variables().size();
    offsets_.push_back(offset);
    widths_.push_back(width);
    offset += width;
  }
}

std::vector<VarSpec> SynchronousProduct::variables() const {
  std::vector<VarSpec> vars;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    for (VarSpec v : components_[i]->variables()) {
      v.name = "m" + std::to_string(i) + "_" + v.name;
      vars.push_back(std::move(v));
    }
  }
  return vars;
}

State SynchronousProduct::componentState(const State& s, std::size_t idx) const {
  return State(s.begin() + static_cast<std::ptrdiff_t>(offsets_[idx]),
               s.begin() + static_cast<std::ptrdiff_t>(offsets_[idx] +
                                                       widths_[idx]));
}

std::vector<State> SynchronousProduct::initialStates() const {
  std::vector<State> product{{}};
  for (const Model* component : components_) {
    const std::vector<State> componentInitial = component->initialStates();
    std::vector<State> next;
    next.reserve(product.size() * componentInitial.size());
    for (const State& prefix : product) {
      for (const State& suffix : componentInitial) {
        State combined = prefix;
        combined.insert(combined.end(), suffix.begin(), suffix.end());
        next.push_back(std::move(combined));
      }
    }
    product = std::move(next);
  }
  return product;
}

void SynchronousProduct::transitions(const State& s,
                                     std::vector<Transition>& out) const {
  // Product distribution, built component by component.
  std::vector<Transition> partial{{1.0, {}}};
  std::vector<Transition> componentSucc;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    componentSucc.clear();
    components_[i]->transitions(componentState(s, i), componentSucc);
    std::vector<Transition> next;
    next.reserve(partial.size() * componentSucc.size());
    for (const Transition& prefix : partial) {
      for (const Transition& suffix : componentSucc) {
        Transition combined;
        combined.prob = prefix.prob * suffix.prob;
        combined.target = prefix.target;
        combined.target.insert(combined.target.end(), suffix.target.begin(),
                               suffix.target.end());
        next.push_back(std::move(combined));
      }
    }
    partial = std::move(next);
  }
  for (Transition& t : partial) out.push_back(std::move(t));
}

bool SynchronousProduct::atom(const State& s, std::string_view name) const {
  // Qualified form m<i>_<atom>: dispatch to one component.
  if (name.size() > 2 && name[0] == 'm') {
    std::size_t idx = 0;
    const char* begin = name.data() + 1;
    const char* end = name.data() + name.size();
    const auto [ptr, ec] = std::from_chars(begin, end, idx);
    if (ec == std::errc{} && ptr < end && *ptr == '_' &&
        idx < components_.size()) {
      const std::string_view local(ptr + 1,
                                   static_cast<std::size_t>(end - ptr - 1));
      return components_[idx]->atom(componentState(s, idx), local);
    }
  }
  for (std::size_t i = 0; i < components_.size(); ++i) {
    if (components_[i]->atom(componentState(s, i), name)) return true;
  }
  return false;
}

double SynchronousProduct::stateReward(const State& s,
                                       std::string_view name) const {
  double total = 0.0;
  for (std::size_t i = 0; i < components_.size(); ++i) {
    total += components_[i]->stateReward(componentState(s, i), name);
  }
  return total;
}

}  // namespace mimostat::dtmc
