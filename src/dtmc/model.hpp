// Abstract DTMC model interface — the library's analogue of a PRISM module.
//
// A model declares its state variables, its initial states, and a transition
// function mapping each state to a probability distribution over successor
// states (paper Eq. 2-5 define such a function for the Viterbi decoder).
// Labels (atomic propositions) and reward structures are exposed by name so
// pCTL properties can refer to them.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "dtmc/state.hpp"

namespace mimostat::dtmc {

/// One probabilistic successor: (probability, target state).
struct Transition {
  double prob = 0.0;
  State target;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Ordered list of state variables; defines the State vector layout.
  [[nodiscard]] virtual std::vector<VarSpec> variables() const = 0;

  /// Initial states (taken as a uniform distribution when more than one).
  [[nodiscard]] virtual std::vector<State> initialStates() const = 0;

  /// Append the successor distribution of `s` to `out`. Implementations may
  /// emit duplicate targets; the builder merges them. Probabilities must sum
  /// to 1 within 1e-9. Emitting nothing declares `s` absorbing: the builder
  /// and the path sampler both materialize a self-loop, so every consumer
  /// sees the same chain.
  virtual void transitions(const State& s, std::vector<Transition>& out) const = 0;

  /// Truth of the named atomic proposition in state `s`.
  /// Default: no atoms (returns false for every name).
  [[nodiscard]] virtual bool atom(const State& s, std::string_view name) const;

  /// Value of the named reward structure in state `s`.
  /// Default reward (empty name or "default") is 0.
  [[nodiscard]] virtual double stateReward(const State& s,
                                           std::string_view name) const;

  /// Convenience: layout built from variables().
  [[nodiscard]] VarLayout layout() const { return VarLayout(variables()); }
};

/// Merge duplicate targets in a transition list (sums probabilities) and
/// optionally drop entries below `floor`, renormalizing the remainder.
/// Returns the total probability mass before normalization (should be ~1).
double normalizeTransitions(std::vector<Transition>& transitions, double floor);

}  // namespace mimostat::dtmc
