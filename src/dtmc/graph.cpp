#include "dtmc/graph.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace mimostat::dtmc {

namespace {

/// Transposed adjacency (CSR of the reversed digraph), probabilities ignored.
struct Transpose {
  std::vector<std::uint64_t> rowPtr;
  std::vector<std::uint32_t> col;
};

Transpose transposeOf(const ExplicitDtmc& dtmc) {
  const std::uint32_t n = dtmc.numStates();
  Transpose t;
  t.rowPtr.assign(n + 1, 0);
  for (std::uint64_t k = 0; k < dtmc.numTransitions(); ++k) {
    ++t.rowPtr[dtmc.col()[k] + 1];
  }
  for (std::uint32_t i = 0; i < n; ++i) t.rowPtr[i + 1] += t.rowPtr[i];
  t.col.resize(dtmc.numTransitions());
  std::vector<std::uint64_t> cursor(t.rowPtr.begin(), t.rowPtr.end() - 1);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      t.col[cursor[dtmc.col()[k]]++] = s;
    }
  }
  return t;
}

}  // namespace

SccDecomposition computeSccs(const ExplicitDtmc& dtmc) {
  // Iterative Tarjan (explicit stack; models can have millions of states).
  const std::uint32_t n = dtmc.numStates();
  constexpr std::uint32_t kUndef = ~0u;

  SccDecomposition result;
  result.componentOf.assign(n, kUndef);

  std::vector<std::uint32_t> indexOf(n, kUndef);
  std::vector<std::uint32_t> lowlink(n, 0);
  la::BitVector onStack(n);
  std::vector<std::uint32_t> tarjanStack;
  std::uint32_t nextIndex = 0;

  struct Frame {
    std::uint32_t state;
    std::uint64_t edge;  // next CSR position to visit
  };
  std::vector<Frame> callStack;

  for (std::uint32_t root = 0; root < n; ++root) {
    if (indexOf[root] != kUndef) continue;
    callStack.push_back({root, dtmc.rowPtr()[root]});
    indexOf[root] = lowlink[root] = nextIndex++;
    tarjanStack.push_back(root);
    onStack.set(root);

    while (!callStack.empty()) {
      Frame& frame = callStack.back();
      const std::uint32_t v = frame.state;
      if (frame.edge < dtmc.rowPtr()[v + 1]) {
        const std::uint32_t w = dtmc.col()[frame.edge++];
        if (indexOf[w] == kUndef) {
          indexOf[w] = lowlink[w] = nextIndex++;
          tarjanStack.push_back(w);
          onStack.set(w);
          callStack.push_back({w, dtmc.rowPtr()[w]});
        } else if (onStack.get(w)) {
          lowlink[v] = std::min(lowlink[v], indexOf[w]);
        }
      } else {
        if (lowlink[v] == indexOf[v]) {
          const std::uint32_t comp = result.numComponents++;
          while (true) {
            const std::uint32_t w = tarjanStack.back();
            tarjanStack.pop_back();
            onStack.set(w, false);
            result.componentOf[w] = comp;
            if (w == v) break;
          }
        }
        callStack.pop_back();
        if (!callStack.empty()) {
          const std::uint32_t parent = callStack.back().state;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }

  // Bottom components: no edge leaving the component.
  la::BitVector hasExit(result.numComponents);
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      if (result.componentOf[dtmc.col()[k]] != result.componentOf[s]) {
        hasExit.set(result.componentOf[s]);
      }
    }
  }
  for (std::uint32_t c = 0; c < result.numComponents; ++c) {
    if (!hasExit.get(c)) result.bottomComponents.push_back(c);
  }
  return result;
}

bool isIrreducible(const ExplicitDtmc& dtmc) {
  return computeSccs(dtmc).numComponents == 1;
}

std::uint32_t chainPeriod(const ExplicitDtmc& dtmc) {
  const std::uint32_t n = dtmc.numStates();
  assert(n > 0);
  // BFS layering from state 0; the period is the gcd of level[u]+1-level[v]
  // over all edges (u,v) (classic result for strongly connected digraphs).
  constexpr std::int64_t kUnset = -1;
  std::vector<std::int64_t> level(n, kUnset);
  std::vector<std::uint32_t> queue;
  queue.reserve(n);
  queue.push_back(0);
  level[0] = 0;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    for (std::uint64_t k = dtmc.rowPtr()[u]; k < dtmc.rowPtr()[u + 1]; ++k) {
      const std::uint32_t v = dtmc.col()[k];
      if (level[v] == kUnset) {
        level[v] = level[u] + 1;
        queue.push_back(v);
      }
    }
  }
  std::uint64_t g = 0;
  for (std::uint32_t u = 0; u < n; ++u) {
    assert(level[u] != kUnset && "chainPeriod requires an irreducible chain");
    for (std::uint64_t k = dtmc.rowPtr()[u]; k < dtmc.rowPtr()[u + 1]; ++k) {
      const std::uint32_t v = dtmc.col()[k];
      const std::int64_t diff = level[u] + 1 - level[v];
      g = std::gcd(g, static_cast<std::uint64_t>(std::llabs(diff)));
    }
  }
  return g == 0 ? 1 : static_cast<std::uint32_t>(g);
}

la::BitVector backwardReachable(const ExplicitDtmc& dtmc,
                                const la::BitVector& target) {
  const Transpose t = transposeOf(dtmc);
  la::BitVector reach(target);
  std::vector<std::uint32_t> queue;
  // forEachSetBit is ascending, matching the legacy byte-vector seed scan.
  reach.forEachSetBit(
      [&](std::size_t s) { queue.push_back(static_cast<std::uint32_t>(s)); });
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t v = queue[head];
    for (std::uint64_t k = t.rowPtr[v]; k < t.rowPtr[v + 1]; ++k) {
      const std::uint32_t u = t.col[k];
      if (!reach.get(u)) {
        reach.set(u);
        queue.push_back(u);
      }
    }
  }
  return reach;
}

la::BitVector forwardReachable(const ExplicitDtmc& dtmc,
                               const la::BitVector& from) {
  la::BitVector reach(from);
  std::vector<std::uint32_t> queue;
  reach.forEachSetBit(
      [&](std::size_t s) { queue.push_back(static_cast<std::uint32_t>(s)); });
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t u = queue[head];
    for (std::uint64_t k = dtmc.rowPtr()[u]; k < dtmc.rowPtr()[u + 1]; ++k) {
      const std::uint32_t v = dtmc.col()[k];
      if (!reach.get(v)) {
        reach.set(v);
        queue.push_back(v);
      }
    }
  }
  return reach;
}

}  // namespace mimostat::dtmc
