// Explicit-state DTMC: the transition matrix as an owned la::CsrMatrix
// (blocked layout + stable transpose) plus the decoded state table, initial
// distribution, and the model-facing atom/reward evaluation hooks.
//
// All numeric access goes through the la:: layer: multiplyLeft/multiplyRight
// are thin forwarders to la::spmvLeft/la::spmv and accept an optional
// la::Exec to fan the product out over a thread pool (bit-identical results
// at any pool size — see la/spmv.hpp for the determinism contract).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "dtmc/model.hpp"
#include "dtmc/state.hpp"
#include "la/bit_vector.hpp"
#include "la/csr_matrix.hpp"
#include "la/exec.hpp"

namespace mimostat::dtmc {

class ExplicitDtmc {
 public:
  /// Number of states.
  [[nodiscard]] std::uint32_t numStates() const { return matrix_.numRows(); }
  /// Number of nonzero transitions.
  [[nodiscard]] std::uint64_t numTransitions() const {
    return matrix_.numNonZeros();
  }

  /// The transition matrix (CSR with block table and stable transpose).
  [[nodiscard]] const la::CsrMatrix& matrix() const { return matrix_; }

  /// CSR accessors (forwarders into matrix()).
  [[nodiscard]] const std::vector<std::uint64_t>& rowPtr() const {
    return matrix_.rowPtr();
  }
  [[nodiscard]] const std::vector<std::uint32_t>& col() const {
    return matrix_.col();
  }
  [[nodiscard]] const std::vector<double>& val() const {
    return matrix_.val();
  }

  /// Initial distribution over states (sums to 1).
  [[nodiscard]] const std::vector<double>& initialDistribution() const {
    return initial_;
  }

  /// Variable layout of the source model.
  [[nodiscard]] const VarLayout& varLayout() const { return layout_; }

  /// Decoded state table (index -> variable assignment).
  [[nodiscard]] const std::vector<State>& states() const { return states_; }
  [[nodiscard]] const State& state(std::uint32_t idx) const {
    return states_[idx];
  }

  /// Value of variable `varIdx` in state `stateIdx`.
  [[nodiscard]] std::int32_t varValue(std::uint32_t stateIdx,
                                      std::size_t varIdx) const {
    return states_[stateIdx][varIdx];
  }

  /// Per-state truth set of an atomic proposition (packed, one bit per
  /// state), evaluated through the source model's atom() hook.
  [[nodiscard]] la::BitVector evalAtom(const Model& model,
                                       std::string_view name) const;

  /// Per-state reward vector from the source model.
  [[nodiscard]] std::vector<double> evalReward(const Model& model,
                                               std::string_view name) const;

  /// Verify every row sums to 1 within `tol`; returns the worst deviation.
  [[nodiscard]] double maxRowDeviation() const;

  /// y = x * P (row vector times matrix). x.size()==numStates. Results are
  /// bit-identical with or without an exec runner.
  void multiplyLeft(const std::vector<double>& x, std::vector<double>& y,
                    const la::Exec& exec = {}) const;

  /// y = P * x (matrix times column vector) — used by bounded-until backward
  /// iterations.
  void multiplyRight(const std::vector<double>& x, std::vector<double>& y,
                     const la::Exec& exec = {}) const;

  // --- construction (used by Builder) ---
  struct Raw {
    std::vector<std::uint64_t> rowPtr;
    std::vector<std::uint32_t> col;
    std::vector<double> val;
    std::vector<double> initial;
    std::vector<State> states;
    VarLayout layout;
  };
  /// `keep` controls which CSR orientations stay resident (see
  /// la::KeepOrientation); a dropped orientation's accessors throw, and
  /// checkers that need it refuse with a clear error instead of rebuilding.
  static ExplicitDtmc fromRaw(Raw raw,
                              la::KeepOrientation keep =
                                  la::KeepOrientation::kBoth);

 private:
  la::CsrMatrix matrix_;
  std::vector<double> initial_;
  std::vector<State> states_;
  VarLayout layout_;
};

}  // namespace mimostat::dtmc
