#include "dtmc/state.hpp"

#include <bit>
#include <sstream>

namespace mimostat::dtmc {

namespace {
int bitsFor(std::int64_t rangeSize) {
  // Number of bits needed to represent values 0 .. rangeSize-1.
  if (rangeSize <= 1) return 0;
  return 64 - std::countl_zero(static_cast<std::uint64_t>(rangeSize - 1));
}
}  // namespace

VarLayout::VarLayout(const std::vector<VarSpec>& vars) : vars_(vars) {
  bitWidth_.reserve(vars_.size());
  bitOffset_.reserve(vars_.size());
  int offset = 0;
  for (const auto& v : vars_) {
    assert(v.hi >= v.lo);
    const int width = bitsFor(v.rangeSize());
    bitWidth_.push_back(width);
    bitOffset_.push_back(offset);
    offset += width;
  }
  totalBits_ = offset;
}

std::size_t VarLayout::indexOf(const std::string& name) const {
  const std::size_t idx = tryIndexOf(name);
  assert(idx != npos && "unknown state variable");
  return idx;
}

std::size_t VarLayout::tryIndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return i;
  }
  return npos;
}

std::uint64_t VarLayout::pack(const State& s) const {
  assert(fitsInU64());
  assert(s.size() == vars_.size());
  std::uint64_t packed = 0;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    assert(s[i] >= vars_[i].lo && s[i] <= vars_[i].hi);
    const auto rel = static_cast<std::uint64_t>(s[i] - vars_[i].lo);
    packed |= rel << bitOffset_[i];
  }
  return packed;
}

State VarLayout::unpack(std::uint64_t packed) const {
  assert(fitsInU64());
  State s(vars_.size());
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const std::uint64_t mask =
        bitWidth_[i] == 64 ? ~0ULL : ((1ULL << bitWidth_[i]) - 1);
    const auto rel = (packed >> bitOffset_[i]) & mask;
    s[i] = vars_[i].lo + static_cast<std::int32_t>(rel);
  }
  return s;
}

double VarLayout::potentialStateCount() const {
  double product = 1.0;
  for (const auto& v : vars_) {
    product *= static_cast<double>(v.rangeSize());
    if (product > 1e18) return 1e18;
  }
  return product;
}

std::string formatState(const VarLayout& layout, const State& s) {
  std::ostringstream os;
  for (std::size_t i = 0; i < layout.numVars(); ++i) {
    if (i != 0) os << ", ";
    os << layout.vars()[i].name << '=' << s[i];
  }
  return os.str();
}

}  // namespace mimostat::dtmc
