// Synchronous parallel composition of DTMC models — the "compositional
// approach for larger MIMO systems" the paper names as future work.
//
// Components step simultaneously and independently each clock (the RTL
// picture: separate per-antenna datapaths clocked together). The product's
// transition distribution is the product of the component distributions;
// rewards add across components; atoms are dispatched per component and
// OR-ed (an "error" anywhere is an error of the composition). Component
// variables are exposed under the prefix "m<i>_" so pCTL properties can
// address them individually (e.g. "m0_flag & m1_flag").
#pragma once

#include <memory>
#include <vector>

#include "dtmc/model.hpp"

namespace mimostat::dtmc {

class SynchronousProduct : public Model {
 public:
  /// Components must outlive the product.
  explicit SynchronousProduct(std::vector<const Model*> components);

  [[nodiscard]] std::vector<VarSpec> variables() const override;
  [[nodiscard]] std::vector<State> initialStates() const override;
  void transitions(const State& s, std::vector<Transition>& out) const override;
  /// OR of the component atoms; names of the form "m<i>_<atom>" address a
  /// single component.
  [[nodiscard]] bool atom(const State& s, std::string_view name) const override;
  /// Sum of the component rewards (same name passed through).
  [[nodiscard]] double stateReward(const State& s,
                                   std::string_view name) const override;

  [[nodiscard]] std::size_t numComponents() const { return components_.size(); }

  /// Slice of the product state belonging to component `idx`.
  [[nodiscard]] State componentState(const State& s, std::size_t idx) const;

 private:
  std::vector<const Model*> components_;
  std::vector<std::size_t> offsets_;  // variable offset per component
  std::vector<std::size_t> widths_;   // variable count per component
};

}  // namespace mimostat::dtmc
