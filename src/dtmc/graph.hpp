// Graph-theoretic analysis of a DTMC's underlying digraph:
// strongly connected components (iterative Tarjan), irreducibility,
// periodicity, and bottom SCCs. These back the paper's §III claim that the
// models are finite, irreducible and aperiodic and therefore reach steady
// state.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/bit_vector.hpp"

namespace mimostat::dtmc {

struct SccDecomposition {
  /// Component id per state (components are numbered in reverse topological
  /// order: an edge between components always goes from a higher id to a
  /// lower id).
  std::vector<std::uint32_t> componentOf;
  std::uint32_t numComponents = 0;
  /// Component ids with no outgoing edges to other components (closed /
  /// recurrent classes).
  std::vector<std::uint32_t> bottomComponents;
};

[[nodiscard]] SccDecomposition computeSccs(const ExplicitDtmc& dtmc);

/// True when the chain's digraph is a single SCC.
[[nodiscard]] bool isIrreducible(const ExplicitDtmc& dtmc);

/// Period of an irreducible chain: gcd over all edges (u,v) of
/// level[u] + 1 - level[v] where level is any BFS layering. Returns 1 for
/// aperiodic chains. Precondition: chain is irreducible.
[[nodiscard]] std::uint32_t chainPeriod(const ExplicitDtmc& dtmc);

/// States from which the given target set is reachable (backward closure).
[[nodiscard]] la::BitVector backwardReachable(const ExplicitDtmc& dtmc,
                                              const la::BitVector& target);

/// States reachable from the given set along forward edges.
[[nodiscard]] la::BitVector forwardReachable(const ExplicitDtmc& dtmc,
                                             const la::BitVector& from);

}  // namespace mimostat::dtmc
