// DTMC state representation.
//
// A state is a full assignment of values to the model's state variables
// (paper §IV-A-1). We store it as a flat int32 vector; a VarLayout can pack
// a state into a single uint64 for memory-lean reachability counting of the
// paper's huge "original" models.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace mimostat::dtmc {

using State = std::vector<std::int32_t>;

/// Declaration of one state variable: name plus inclusive integer range.
struct VarSpec {
  std::string name;
  std::int32_t lo = 0;
  std::int32_t hi = 1;

  [[nodiscard]] std::int64_t rangeSize() const {
    return static_cast<std::int64_t>(hi) - lo + 1;
  }
};

/// Bit-packing layout derived from a variable list. Supports packing states
/// whose total width fits in 64 bits; wider models must use the vector form.
class VarLayout {
 public:
  VarLayout() = default;
  explicit VarLayout(const std::vector<VarSpec>& vars);

  [[nodiscard]] bool fitsInU64() const { return totalBits_ <= 64; }
  [[nodiscard]] int totalBits() const { return totalBits_; }
  [[nodiscard]] std::size_t numVars() const { return vars_.size(); }
  [[nodiscard]] const std::vector<VarSpec>& vars() const { return vars_; }

  /// Index of a variable by name; asserts on unknown names.
  [[nodiscard]] std::size_t indexOf(const std::string& name) const;
  /// Index of a variable by name, or npos when absent.
  [[nodiscard]] std::size_t tryIndexOf(const std::string& name) const;
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  [[nodiscard]] std::uint64_t pack(const State& s) const;
  [[nodiscard]] State unpack(std::uint64_t packed) const;

  /// Log2-style upper bound on the number of syntactically possible states
  /// (product of variable ranges), saturating at ~1e18.
  [[nodiscard]] double potentialStateCount() const;

 private:
  std::vector<VarSpec> vars_;
  std::vector<int> bitWidth_;
  std::vector<int> bitOffset_;
  int totalBits_ = 0;
};

/// Render a state as "var=value, ..." for diagnostics.
[[nodiscard]] std::string formatState(const VarLayout& layout, const State& s);

}  // namespace mimostat::dtmc
