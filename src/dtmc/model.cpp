#include "dtmc/model.hpp"

#include <algorithm>
#include <cassert>

namespace mimostat::dtmc {

bool Model::atom(const State& /*s*/, std::string_view /*name*/) const {
  return false;
}

double Model::stateReward(const State& /*s*/, std::string_view /*name*/) const {
  return 0.0;
}

double normalizeTransitions(std::vector<Transition>& transitions, double floor) {
  if (transitions.empty()) return 0.0;
  std::sort(transitions.begin(), transitions.end(),
            [](const Transition& a, const Transition& b) {
              return a.target < b.target;
            });
  // Merge duplicates in place.
  std::size_t out = 0;
  for (std::size_t i = 1; i < transitions.size(); ++i) {
    if (transitions[i].target == transitions[out].target) {
      transitions[out].prob += transitions[i].prob;
    } else {
      ++out;
      if (out != i) transitions[out] = std::move(transitions[i]);
    }
  }
  transitions.resize(out + 1);

  double mass = 0.0;
  for (const auto& t : transitions) mass += t.prob;

  if (floor > 0.0) {
    std::erase_if(transitions, [floor](const Transition& t) {
      return t.prob < floor;
    });
    assert(!transitions.empty() && "probability floor removed all transitions");
    double kept = 0.0;
    for (const auto& t : transitions) kept += t.prob;
    if (kept > 0.0 && kept != mass) {
      const double scale = mass / kept;
      for (auto& t : transitions) t.prob *= scale;
    }
  }
  return mass;
}

}  // namespace mimostat::dtmc
