#include "dtmc/explicit_dtmc.hpp"

#include <cassert>
#include <cmath>

#include "la/spmv.hpp"

namespace mimostat::dtmc {

ExplicitDtmc ExplicitDtmc::fromRaw(Raw raw, la::KeepOrientation keep) {
  ExplicitDtmc d;
  assert(!raw.rowPtr.empty());
  assert(raw.initial.size() == raw.rowPtr.size() - 1);
  const auto numStates = static_cast<std::uint32_t>(raw.rowPtr.size() - 1);
  d.matrix_ = la::CsrMatrix::fromCsr(std::move(raw.rowPtr), std::move(raw.col),
                                     std::move(raw.val), numStates, keep);
  d.initial_ = std::move(raw.initial);
  d.states_ = std::move(raw.states);
  d.layout_ = std::move(raw.layout);
  return d;
}

la::BitVector ExplicitDtmc::evalAtom(const Model& model,
                                     std::string_view name) const {
  la::BitVector truth(numStates());
  for (std::uint32_t i = 0; i < numStates(); ++i) {
    if (model.atom(states_[i], name)) truth.set(i);
  }
  return truth;
}

std::vector<double> ExplicitDtmc::evalReward(const Model& model,
                                             std::string_view name) const {
  std::vector<double> reward(numStates());
  for (std::uint32_t i = 0; i < numStates(); ++i) {
    reward[i] = model.stateReward(states_[i], name);
  }
  return reward;
}

double ExplicitDtmc::maxRowDeviation() const {
  const auto& rowPtr = matrix_.rowPtr();
  const auto& val = matrix_.val();
  double worst = 0.0;
  for (std::uint32_t s = 0; s < numStates(); ++s) {
    double sum = 0.0;
    for (std::uint64_t k = rowPtr[s]; k < rowPtr[s + 1]; ++k) sum += val[k];
    worst = std::max(worst, std::fabs(sum - 1.0));
  }
  return worst;
}

void ExplicitDtmc::multiplyLeft(const std::vector<double>& x,
                                std::vector<double>& y,
                                const la::Exec& exec) const {
  assert(x.size() == numStates());
  la::spmvLeft(matrix_, x, y, exec);
}

void ExplicitDtmc::multiplyRight(const std::vector<double>& x,
                                 std::vector<double>& y,
                                 const la::Exec& exec) const {
  assert(x.size() == numStates());
  la::spmv(matrix_, x, y, exec);
}

}  // namespace mimostat::dtmc
