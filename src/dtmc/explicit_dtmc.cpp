#include "dtmc/explicit_dtmc.hpp"

#include <cassert>
#include <cmath>

namespace mimostat::dtmc {

ExplicitDtmc ExplicitDtmc::fromRaw(Raw raw) {
  ExplicitDtmc d;
  d.rowPtr_ = std::move(raw.rowPtr);
  d.col_ = std::move(raw.col);
  d.val_ = std::move(raw.val);
  d.initial_ = std::move(raw.initial);
  d.states_ = std::move(raw.states);
  d.layout_ = std::move(raw.layout);
  assert(!d.rowPtr_.empty());
  assert(d.rowPtr_.back() == d.col_.size());
  assert(d.col_.size() == d.val_.size());
  assert(d.initial_.size() == d.rowPtr_.size() - 1);
  return d;
}

std::vector<std::uint8_t> ExplicitDtmc::evalAtom(const Model& model,
                                                 std::string_view name) const {
  std::vector<std::uint8_t> truth(numStates());
  for (std::uint32_t i = 0; i < numStates(); ++i) {
    truth[i] = model.atom(states_[i], name) ? 1 : 0;
  }
  return truth;
}

std::vector<double> ExplicitDtmc::evalReward(const Model& model,
                                             std::string_view name) const {
  std::vector<double> reward(numStates());
  for (std::uint32_t i = 0; i < numStates(); ++i) {
    reward[i] = model.stateReward(states_[i], name);
  }
  return reward;
}

double ExplicitDtmc::maxRowDeviation() const {
  double worst = 0.0;
  for (std::uint32_t s = 0; s < numStates(); ++s) {
    double sum = 0.0;
    for (std::uint64_t k = rowPtr_[s]; k < rowPtr_[s + 1]; ++k) sum += val_[k];
    worst = std::max(worst, std::fabs(sum - 1.0));
  }
  return worst;
}

void ExplicitDtmc::multiplyLeft(const std::vector<double>& x,
                                std::vector<double>& y) const {
  assert(x.size() == numStates());
  y.assign(numStates(), 0.0);
  for (std::uint32_t s = 0; s < numStates(); ++s) {
    const double xs = x[s];
    if (xs == 0.0) continue;
    for (std::uint64_t k = rowPtr_[s]; k < rowPtr_[s + 1]; ++k) {
      y[col_[k]] += xs * val_[k];
    }
  }
}

void ExplicitDtmc::multiplyRight(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  assert(x.size() == numStates());
  y.assign(numStates(), 0.0);
  for (std::uint32_t s = 0; s < numStates(); ++s) {
    double acc = 0.0;
    for (std::uint64_t k = rowPtr_[s]; k < rowPtr_[s + 1]; ++k) {
      acc += val_[k] * x[col_[k]];
    }
    y[s] = acc;
  }
}

}  // namespace mimostat::dtmc
