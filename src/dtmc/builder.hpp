// Explicit-state reachability builder.
//
// Breadth-first exploration from the initial states; the BFS depth at which
// no new states appear is PRISM's "reachability iterations" (RI) reported in
// the paper's Tables III-V. Also provides a memory-lean packed-u64 variant
// that only counts reachable states (for the paper's original-model columns
// where the full matrix would not fit in memory).
#pragma once

#include <cstdint>
#include <optional>

#include "dtmc/explicit_dtmc.hpp"
#include "dtmc/model.hpp"
#include "la/csr_matrix.hpp"

namespace mimostat::dtmc {

struct BuildOptions {
  /// Abort when the reachable set exceeds this size.
  std::uint64_t maxStates = 20'000'000;
  /// Drop transitions with probability below this and renormalize
  /// (PRISM-style 1e-15 discard when set; 0 disables).
  double probFloor = 0.0;
  /// Warn when a row's probability mass deviates from 1 by more than this.
  double massTolerance = 1e-9;
  /// Which CSR orientations the built matrix keeps resident (kBoth, the
  /// default, doubles matrix bytes over a single orientation). Forward-only
  /// sweeps (transient R=?[I=T]/R=?[C<=T], steady state) read the transpose
  /// and can build kTransposeOnly to halve the model-cache footprint;
  /// bounded path formulas and unbounded value iteration advance through
  /// the original rows and *refuse* (clear per-property error, no silent
  /// rebuild) on a transpose-only model. The engine folds this into its
  /// cache key, so differently-oriented builds never share an entry.
  la::KeepOrientation orientation = la::KeepOrientation::kBoth;
};

struct BuildResult {
  ExplicitDtmc dtmc;
  /// BFS depth at which the reachable set stopped growing (PRISM's RI).
  std::uint32_t reachabilityIterations = 0;
  /// Wall-clock seconds spent building.
  double buildSeconds = 0.0;
};

/// Build the reachable explicit DTMC for a model.
/// Throws std::runtime_error when maxStates is exceeded.
[[nodiscard]] BuildResult buildExplicit(const Model& model,
                                        const BuildOptions& options = {});

struct CountResult {
  std::uint64_t numStates = 0;
  std::uint64_t numTransitions = 0;
  std::uint32_t reachabilityIterations = 0;
  double buildSeconds = 0.0;
};

/// Count reachable states without materializing the matrix. Requires the
/// model's packed state width to fit in 64 bits.
/// Throws std::runtime_error when maxStates is exceeded.
[[nodiscard]] CountResult countReachable(const Model& model,
                                         std::uint64_t maxStates = 200'000'000);

}  // namespace mimostat::dtmc
