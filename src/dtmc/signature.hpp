// Structural model signatures for build caching.
//
// A signature identifies a dtmc::Model's *transition structure* (variable
// layout, initial states, reachable transition relation) by a deterministic
// BFS probe, so an engine can reuse an already-built ExplicitDtmc for a
// structurally identical model. Atoms and rewards are deliberately NOT part
// of the signature: the explicit DTMC stores only structure, and label /
// reward vectors are always re-evaluated through the requesting model.
//
// The probe doubles as a capped reachable-state count (the paper's
// "original model" columns count states the same way): when `exact` is
// true the probe visited the whole reachable set and `states` is its size.
// When the variable layout packs into 64 bits the probe stores visited
// states as packed keys (util::PackedStateSet, as countReachable does),
// cutting probe memory ~5x on large models; wider layouts fall back to the
// vector-state set. Both paths hash the same stream, so they agree.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "dtmc/model.hpp"
#include "la/bit_vector.hpp"

namespace mimostat::dtmc {

struct SignatureOptions {
  /// Abort the probe (exact=false) past this many visited states.
  std::uint64_t maxStates = 1'000'000;
};

struct ModelSignature {
  /// Hash over layout + initial states + probed transition relation.
  std::uint64_t hash = 0;
  /// The probe covered the entire reachable set.
  bool exact = false;
  /// States visited (the reachable count when exact).
  std::uint64_t states = 0;
  /// Transitions hashed during the probe.
  std::uint64_t transitions = 0;
};

/// Deterministic structural signature of a model. Never throws on large
/// models — the probe truncates and reports exact=false instead.
[[nodiscard]] ModelSignature modelSignature(const Model& model,
                                            const SignatureOptions& options = {});

/// Order-independent digest over the label masks and reward vectors an
/// evaluation plan needs — the optional second half of a cache key for
/// plan-aware reduction artifacts (the engine's quotient cache). Entries
/// combine an identity hash (the mask's structural formula hash / the reward
/// structure's name) with a content hash (the evaluated bits / values), then
/// XOR into the accumulator, so insertion order never matters; two plans
/// needing the same atoms and rewards digest equal no matter how their
/// properties were listed. An empty digest hashes to 0 (plan needs nothing —
/// every state may merge).
class LabelRewardDigest {
 public:
  /// Mask entry: `formulaHash` identifies the state formula (use
  /// pctl::structuralHash), the BitVector is its evaluated truth set.
  void addMask(std::uint64_t formulaHash, const la::BitVector& mask);
  /// Reward entry: the reward structure's name plus its evaluated vector.
  void addReward(std::string_view name, const std::vector<double>& values);

  [[nodiscard]] std::uint64_t hash() const { return hash_; }
  [[nodiscard]] std::uint32_t entries() const { return entries_; }

 private:
  std::uint64_t hash_ = 0;
  std::uint32_t entries_ = 0;
};

}  // namespace mimostat::dtmc
