// Structural model signatures for build caching.
//
// A signature identifies a dtmc::Model's *transition structure* (variable
// layout, initial states, reachable transition relation) by a deterministic
// BFS probe, so an engine can reuse an already-built ExplicitDtmc for a
// structurally identical model. Atoms and rewards are deliberately NOT part
// of the signature: the explicit DTMC stores only structure, and label /
// reward vectors are always re-evaluated through the requesting model.
//
// The probe doubles as a capped reachable-state count (the paper's
// "original model" columns count states the same way): when `exact` is
// true the probe visited the whole reachable set and `states` is its size.
// When the variable layout packs into 64 bits the probe stores visited
// states as packed keys (util::PackedStateSet, as countReachable does),
// cutting probe memory ~5x on large models; wider layouts fall back to the
// vector-state set. Both paths hash the same stream, so they agree.
#pragma once

#include <cstdint>

#include "dtmc/model.hpp"

namespace mimostat::dtmc {

struct SignatureOptions {
  /// Abort the probe (exact=false) past this many visited states.
  std::uint64_t maxStates = 1'000'000;
};

struct ModelSignature {
  /// Hash over layout + initial states + probed transition relation.
  std::uint64_t hash = 0;
  /// The probe covered the entire reachable set.
  bool exact = false;
  /// States visited (the reachable count when exact).
  std::uint64_t states = 0;
  /// Transitions hashed during the probe.
  std::uint64_t transitions = 0;
};

/// Deterministic structural signature of a model. Never throws on large
/// models — the probe truncates and reports exact=false instead.
[[nodiscard]] ModelSignature modelSignature(const Model& model,
                                            const SignatureOptions& options = {});

}  // namespace mimostat::dtmc
