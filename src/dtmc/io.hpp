// PRISM-compatible export of explicit models (.tra transition list and
// .sta state table) plus Graphviz dot output for small models.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"

namespace mimostat::dtmc {

/// PRISM explicit transition format: first line "numStates numTransitions",
/// then "src dst prob" per transition.
void writeTra(const ExplicitDtmc& dtmc, std::ostream& os);

/// PRISM state file: header "(v1,v2,...)" then "idx:(x1,x2,...)".
void writeSta(const ExplicitDtmc& dtmc, std::ostream& os);

/// Graphviz digraph (intended for models with < ~200 states).
void writeDot(const ExplicitDtmc& dtmc, std::ostream& os);

/// PRISM label file: "0=\"init\" 1=\"error\"" header, then "state: ids".
void writeLab(const ExplicitDtmc& dtmc, const Model& model,
              const std::vector<std::string>& labels, std::ostream& os);

/// PRISM state-rewards file: header "numStates numNonzero", then
/// "state reward" lines.
void writeSrew(const ExplicitDtmc& dtmc, const Model& model,
               std::string_view rewardName, std::ostream& os);

/// Convenience wrappers writing to files. Throw std::runtime_error on I/O
/// failure.
void writeTraFile(const ExplicitDtmc& dtmc, const std::string& path);
void writeStaFile(const ExplicitDtmc& dtmc, const std::string& path);
void writeDotFile(const ExplicitDtmc& dtmc, const std::string& path);

// ---------------------------------------------------------------- import

/// Contents of a parsed PRISM-format model (any part may be absent).
struct ImportedExplicit {
  ExplicitDtmc dtmc;
  /// label name -> per-state truth set (packed, from a .lab stream).
  std::vector<std::pair<std::string, la::BitVector>> labels;
  /// reward name -> per-state value (from .srew streams).
  std::vector<std::pair<std::string, std::vector<double>>> rewards;
};

/// Parse a .tra stream (+ optional .sta for the variable layout). The
/// initial distribution is a point mass on `initialState`.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] ExplicitDtmc readTra(std::istream& tra, std::istream* sta,
                                   std::uint32_t initialState = 0);

/// Parse a .lab stream into (name, truth-set) pairs.
[[nodiscard]] std::vector<std::pair<std::string, la::BitVector>> readLab(
    std::istream& lab, std::uint32_t numStates);

/// Parse a .srew stream into a per-state reward vector.
[[nodiscard]] std::vector<double> readSrew(std::istream& srew,
                                           std::uint32_t numStates);

/// Adapts an ImportedExplicit to the Model interface so imported models
/// flow through mc::Checker like native ones. The transition function
/// replays the stored matrix rows.
class ImportedModel : public Model {
 public:
  explicit ImportedModel(ImportedExplicit imported);

  [[nodiscard]] std::vector<VarSpec> variables() const override;
  [[nodiscard]] std::vector<State> initialStates() const override;
  void transitions(const State& s, std::vector<Transition>& out) const override;
  [[nodiscard]] bool atom(const State& s, std::string_view name) const override;
  [[nodiscard]] double stateReward(const State& s,
                                   std::string_view name) const override;

  [[nodiscard]] const ExplicitDtmc& dtmc() const { return imported_.dtmc; }

 private:
  /// States are identified by their index variable (single var "s").
  [[nodiscard]] std::uint32_t indexOf(const State& s) const {
    return static_cast<std::uint32_t>(s[0]);
  }

  ImportedExplicit imported_;
};

}  // namespace mimostat::dtmc
