#include "dtmc/builder.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace mimostat::dtmc {

namespace {

using StateIndexMap =
    std::unordered_map<State, std::uint32_t, util::VecI32Hash>;

}  // namespace

BuildResult buildExplicit(const Model& model, const BuildOptions& options) {
  // Auto-parents to "engine.build" when the engine drives the build.
  obs::Span span("dtmc.build");

  const VarLayout layout = model.layout();
  StateIndexMap index;
  std::vector<State> states;
  std::vector<std::vector<Transition>> rows;

  const auto internState = [&](const State& s) -> std::uint32_t {
    auto [it, inserted] =
        index.try_emplace(s, static_cast<std::uint32_t>(states.size()));
    if (inserted) {
      if (states.size() >= options.maxStates) {
        throw std::runtime_error(
            "buildExplicit: reachable state space exceeds maxStates");
      }
      states.push_back(s);
    }
    return it->second;
  };

  const std::vector<State> initial = model.initialStates();
  if (initial.empty()) {
    throw std::runtime_error("buildExplicit: model has no initial states");
  }
  std::vector<std::uint32_t> initialIdx;
  initialIdx.reserve(initial.size());
  for (const auto& s : initial) initialIdx.push_back(internState(s));

  // BFS by levels so we can report the reachability-iteration count.
  std::uint32_t frontierBegin = 0;
  std::uint32_t reachabilityIterations = 0;
  std::vector<Transition> scratch;
  double worstMass = 0.0;

  while (frontierBegin < states.size()) {
    const auto frontierEnd = static_cast<std::uint32_t>(states.size());
    ++reachabilityIterations;
    for (std::uint32_t s = frontierBegin; s < frontierEnd; ++s) {
      scratch.clear();
      model.transitions(states[s], scratch);
      if (scratch.empty()) {
        // Transition-less states are absorbing (self-loop) — one convention
        // shared with smc::PathSampler, so the exact and sampling backends
        // answer the same chain for models with dead-end states.
        scratch.push_back({1.0, states[s]});
      }
      const double mass = normalizeTransitions(scratch, options.probFloor);
      worstMass = std::max(worstMass, std::fabs(mass - 1.0));
      std::vector<Transition> row;
      row.reserve(scratch.size());
      for (auto& t : scratch) {
        internState(t.target);
        row.push_back(std::move(t));
      }
      rows.resize(states.size());
      rows[s] = std::move(row);
    }
    frontierBegin = frontierEnd;
  }
  rows.resize(states.size());

  if (worstMass > options.massTolerance) {
    MS_LOG_WARN("buildExplicit: worst transition-mass deviation %.3e",
                worstMass);
  }

  // Assemble CSR.
  ExplicitDtmc::Raw raw;
  raw.layout = layout;
  raw.states = std::move(states);
  raw.rowPtr.reserve(raw.states.size() + 1);
  raw.rowPtr.push_back(0);
  std::uint64_t nnz = 0;
  for (const auto& row : rows) nnz += row.size();
  raw.col.reserve(nnz);
  raw.val.reserve(nnz);
  for (auto& row : rows) {
    for (const auto& t : row) {
      raw.col.push_back(index.at(t.target));
      raw.val.push_back(t.prob);
    }
    raw.rowPtr.push_back(raw.col.size());
    row.clear();
    row.shrink_to_fit();
  }

  raw.initial.assign(raw.states.size(), 0.0);
  const double w = 1.0 / static_cast<double>(initialIdx.size());
  for (const auto idx : initialIdx) raw.initial[idx] += w;

  BuildResult result{ExplicitDtmc::fromRaw(std::move(raw), options.orientation),
                     reachabilityIterations, span.stopSeconds()};
  MS_LOG_INFO("buildExplicit: %u states, %llu transitions, RI=%u, %.2fs",
              result.dtmc.numStates(),
              static_cast<unsigned long long>(result.dtmc.numTransitions()),
              result.reachabilityIterations, result.buildSeconds);
  return result;
}

CountResult countReachable(const Model& model, std::uint64_t maxStates) {
  obs::Span span("dtmc.countReachable");
  const VarLayout layout = model.layout();
  if (!layout.fitsInU64()) {
    throw std::runtime_error(
        "countReachable: model state does not pack into 64 bits");
  }

  util::PackedStateSet seen(1 << 20);
  std::deque<std::uint64_t> frontier;

  for (const auto& s : model.initialStates()) {
    const std::uint64_t packed = layout.pack(s);
    if (seen.insert(packed)) frontier.push_back(packed);
  }

  CountResult result;
  std::vector<Transition> scratch;
  while (!frontier.empty()) {
    ++result.reachabilityIterations;
    const std::size_t levelSize = frontier.size();
    for (std::size_t i = 0; i < levelSize; ++i) {
      const std::uint64_t packed = frontier.front();
      frontier.pop_front();
      scratch.clear();
      model.transitions(layout.unpack(packed), scratch);
      if (scratch.empty()) {
        ++result.numTransitions;  // implicit absorbing self-loop
        continue;
      }
      normalizeTransitions(scratch, 0.0);
      result.numTransitions += scratch.size();
      for (const auto& t : scratch) {
        const std::uint64_t next = layout.pack(t.target);
        if (seen.insert(next)) {
          if (seen.size() > maxStates) {
            throw std::runtime_error(
                "countReachable: reachable state space exceeds maxStates");
          }
          frontier.push_back(next);
        }
      }
    }
  }
  result.numStates = seen.size();
  result.buildSeconds = span.stopSeconds();
  return result;
}

}  // namespace mimostat::dtmc
