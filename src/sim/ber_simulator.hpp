// Generic Monte-Carlo BER estimation harness — the paper's comparison
// baseline packaged as a reusable component: feed it any Bernoulli error
// source and it tracks the estimate, confidence intervals, and (optionally)
// stops early once a target relative precision is met.
#pragma once

#include <cstdint>
#include <functional>

#include "stats/estimator.hpp"

namespace mimostat::sim {

/// One step of a system under test: returns whether a bit error occurred.
using ErrorSource = std::function<bool(std::uint64_t step)>;

struct BerRunOptions {
  std::uint64_t maxSteps = 1'000'000;
  double confidence = 0.95;
  /// Stop early when the Wilson interval half-width falls below
  /// relPrecision * estimate (0 disables early stopping).
  double relPrecision = 0.0;
  /// Check the stopping rule every `checkInterval` steps.
  std::uint64_t checkInterval = 10'000;
};

struct BerRunResult {
  stats::BernoulliEstimator errors;
  std::uint64_t stepsRun = 0;
  bool stoppedEarly = false;
  double seconds = 0.0;

  [[nodiscard]] double estimate() const { return errors.estimate(); }
};

/// Drive the error source until maxSteps or the precision target.
[[nodiscard]] BerRunResult runBer(const ErrorSource& source,
                                  const BerRunOptions& options);

/// How many Monte-Carlo steps are expected to be needed to observe at least
/// `minErrors` errors at bit error rate `ber` (the paper's "simulation is
/// infeasible below BER 1e-7" argument).
[[nodiscard]] std::uint64_t expectedStepsForErrors(double ber,
                                                   std::uint64_t minErrors);

}  // namespace mimostat::sim
