#include "sim/ber_simulator.hpp"

#include <cmath>

#include "obs/trace.hpp"

namespace mimostat::sim {

BerRunResult runBer(const ErrorSource& source, const BerRunOptions& options) {
  obs::Span span("sim.ber");
  BerRunResult result;
  for (std::uint64_t step = 0; step < options.maxSteps; ++step) {
    result.errors.add(source(step));
    ++result.stepsRun;
    if (options.relPrecision > 0.0 && result.stepsRun > 0 &&
        result.stepsRun % options.checkInterval == 0) {
      const double estimate = result.errors.estimate();
      if (estimate > 0.0) {
        const auto interval = result.errors.wilson(options.confidence);
        if (interval.width() / 2.0 <= options.relPrecision * estimate) {
          result.stoppedEarly = true;
          break;
        }
      }
    }
  }
  result.seconds = span.stopSeconds();
  return result;
}

std::uint64_t expectedStepsForErrors(double ber, std::uint64_t minErrors) {
  if (ber <= 0.0) return ~0ULL;
  return static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(minErrors) / ber));
}

}  // namespace mimostat::sim
