#include "pml/model.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "pml/parser.hpp"

namespace mimostat::pml {

PmlModel PmlModel::fromFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot open PML file: " + path);
  std::ostringstream content;
  content << file.rdbuf();
  return PmlModel(content.str());
}

PmlModel::PmlModel(std::string_view source) : decl_(parseModel(source)) {
  elaborate();
}

PmlModel::PmlModel(ModelDecl decl) : decl_(std::move(decl)) { elaborate(); }

void PmlModel::elaborate() {
  // Constants in declaration order; later constants may use earlier ones.
  for (const ConstDecl& c : decl_.constants) {
    const double value = c.isInt
                             ? static_cast<double>(evaluateInt(*c.value, constants_))
                             : evaluate(*c.value, constants_);
    if (!constants_.emplace(c.name, value).second) {
      throw EvalError("duplicate constant '" + c.name + "'");
    }
  }
  // Variable ranges and initial values.
  for (const VarDecl& v : decl_.module.variables) {
    dtmc::VarSpec spec;
    spec.name = v.name;
    spec.lo = static_cast<std::int32_t>(evaluateInt(*v.low, constants_));
    spec.hi = static_cast<std::int32_t>(evaluateInt(*v.high, constants_));
    if (spec.lo > spec.hi) {
      throw EvalError("empty range for variable '" + v.name + "'");
    }
    const auto init =
        static_cast<std::int32_t>(evaluateInt(*v.init, constants_));
    if (init < spec.lo || init > spec.hi) {
      throw EvalError("init value out of range for variable '" + v.name + "'");
    }
    varSpecs_.push_back(std::move(spec));
    initial_.push_back(init);
    if (constants_.count(v.name) != 0) {
      throw EvalError("variable '" + v.name + "' shadows a constant");
    }
  }
}

std::vector<dtmc::VarSpec> PmlModel::variables() const { return varSpecs_; }

std::vector<dtmc::State> PmlModel::initialStates() const { return {initial_}; }

Environment PmlModel::environmentFor(const dtmc::State& s) const {
  Environment env = constants_;
  for (std::size_t i = 0; i < varSpecs_.size(); ++i) {
    env[varSpecs_[i].name] = static_cast<double>(s[i]);
  }
  return env;
}

void PmlModel::transitions(const dtmc::State& s,
                           std::vector<dtmc::Transition>& out) const {
  const Environment env = environmentFor(s);
  const std::size_t begin = out.size();

  for (const Command& command : decl_.module.commands) {
    if (!isTruthy(evaluate(*command.guard, env))) continue;
    for (const Update& update : command.updates) {
      const double prob =
          update.probability ? evaluate(*update.probability, env) : 1.0;
      if (prob < 0.0) {
        throw EvalError("negative update probability in module '" +
                        decl_.module.name + "'");
      }
      if (prob == 0.0) continue;
      dtmc::State target(s);
      for (const Assignment& assignment : update.assignments) {
        bool assigned = false;
        for (std::size_t i = 0; i < varSpecs_.size(); ++i) {
          if (varSpecs_[i].name == assignment.var) {
            const auto value = static_cast<std::int32_t>(
                evaluateInt(*assignment.value, env));
            if (value < varSpecs_[i].lo || value > varSpecs_[i].hi) {
              throw EvalError("assignment out of range for variable '" +
                              assignment.var + "'");
            }
            target[i] = value;
            assigned = true;
            break;
          }
        }
        if (!assigned) {
          throw EvalError("assignment to unknown variable '" +
                          assignment.var + "'");
        }
      }
      out.push_back({prob, std::move(target)});
    }
  }

  if (out.size() == begin) {
    // No enabled command: absorbing self-loop (PRISM's convention).
    out.push_back({1.0, s});
  }
}

bool PmlModel::atom(const dtmc::State& s, std::string_view name) const {
  for (const LabelDecl& label : decl_.labels) {
    if (label.name == name) {
      return isTruthy(evaluate(*label.condition, environmentFor(s)));
    }
  }
  return false;
}

double PmlModel::stateReward(const dtmc::State& s,
                             std::string_view name) const {
  const std::string_view effective =
      (name == "default") ? std::string_view{} : name;
  for (const RewardsDecl& rewards : decl_.rewards) {
    if (rewards.name != effective) continue;
    const Environment env = environmentFor(s);
    double total = 0.0;
    for (const RewardItem& item : rewards.items) {
      if (isTruthy(evaluate(*item.guard, env))) {
        total += evaluate(*item.value, env);
      }
    }
    return total;
  }
  return 0.0;
}

}  // namespace mimostat::pml
