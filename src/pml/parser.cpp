#include "pml/parser.hpp"

#include <cctype>
#include <optional>
#include <vector>

namespace mimostat::pml {

namespace {

enum class Tok {
  kIdent,
  kNumber,
  kString,
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kSemicolon,
  kColon,
  kComma,
  kPrime,      // '
  kDotDot,     // ..
  kArrow,      // ->
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kAmp,
  kPipe,
  kBang,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  double number = 0.0;
  std::size_t line = 1;
};

std::vector<Token> lex(std::string_view src) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  std::size_t line = 1;
  const std::size_t n = src.size();
  const auto push = [&](Tok kind, std::string text = {}) {
    tokens.push_back({kind, std::move(text), 0.0, line});
  };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(src[j])) ||
                       src[j] == '_')) {
        ++j;
      }
      push(Tok::kIdent, std::string(src.substr(i, j - i)));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && src[i + 1] != '.' &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      std::size_t j = i;
      while (j < n && (std::isdigit(static_cast<unsigned char>(src[j])) ||
                       src[j] == 'e' || src[j] == 'E' ||
                       (src[j] == '.' && !(j + 1 < n && src[j + 1] == '.')) ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        ++j;
      }
      Token t{Tok::kNumber, std::string(src.substr(i, j - i)), 0.0, line};
      try {
        t.number = std::stod(t.text);
      } catch (const std::exception&) {
        throw PmlParseError("bad number literal '" + t.text + "'", line);
      }
      tokens.push_back(std::move(t));
      i = j;
      continue;
    }
    switch (c) {
      case '"': {
        std::size_t j = i + 1;
        while (j < n && src[j] != '"') ++j;
        if (j >= n) throw PmlParseError("unterminated string", line);
        push(Tok::kString, std::string(src.substr(i + 1, j - i - 1)));
        i = j + 1;
        break;
      }
      case '[':
        push(Tok::kLBracket);
        ++i;
        break;
      case ']':
        push(Tok::kRBracket);
        ++i;
        break;
      case '(':
        push(Tok::kLParen);
        ++i;
        break;
      case ')':
        push(Tok::kRParen);
        ++i;
        break;
      case ';':
        push(Tok::kSemicolon);
        ++i;
        break;
      case ':':
        push(Tok::kColon);
        ++i;
        break;
      case ',':
        push(Tok::kComma);
        ++i;
        break;
      case '\'':
        push(Tok::kPrime);
        ++i;
        break;
      case '.':
        if (i + 1 < n && src[i + 1] == '.') {
          push(Tok::kDotDot);
          i += 2;
        } else {
          throw PmlParseError("stray '.'", line);
        }
        break;
      case '-':
        if (i + 1 < n && src[i + 1] == '>') {
          push(Tok::kArrow);
          i += 2;
        } else {
          push(Tok::kMinus);
          ++i;
        }
        break;
      case '+':
        push(Tok::kPlus);
        ++i;
        break;
      case '*':
        push(Tok::kStar);
        ++i;
        break;
      case '/':
        push(Tok::kSlash);
        ++i;
        break;
      case '&':
        push(Tok::kAmp);
        ++i;
        break;
      case '|':
        push(Tok::kPipe);
        ++i;
        break;
      case '!':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::kNe);
          i += 2;
        } else {
          push(Tok::kBang);
          ++i;
        }
        break;
      case '=':
        push(Tok::kEq);
        ++i;
        break;
      case '<':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::kLe);
          i += 2;
        } else {
          push(Tok::kLt);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < n && src[i + 1] == '=') {
          push(Tok::kGe);
          i += 2;
        } else {
          push(Tok::kGt);
          ++i;
        }
        break;
      default:
        throw PmlParseError(std::string("unexpected character '") + c + "'",
                            line);
    }
  }
  push(Tok::kEnd);
  return tokens;
}

class Parser {
 public:
  explicit Parser(std::string_view src) : tokens_(lex(src)) {}

  ModelDecl parseModel() {
    expectKeyword("dtmc");
    ModelDecl model;
    bool haveModule = false;
    while (!check(Tok::kEnd)) {
      const Token& head = peek();
      if (head.kind != Tok::kIdent) {
        throw PmlParseError("expected a declaration", head.line);
      }
      if (head.text == "const") {
        model.constants.push_back(parseConst());
      } else if (head.text == "module") {
        if (haveModule) {
          throw PmlParseError(
              "multiple modules are not supported; compose with "
              "dtmc::SynchronousProduct",
              head.line);
        }
        model.module = parseModule();
        haveModule = true;
      } else if (head.text == "rewards") {
        model.rewards.push_back(parseRewards());
      } else if (head.text == "label") {
        model.labels.push_back(parseLabel());
      } else {
        throw PmlParseError("unknown declaration '" + head.text + "'",
                            head.line);
      }
    }
    if (!haveModule) {
      throw PmlParseError("model has no module", peek().line);
    }
    return model;
  }

  ExprPtr parseBareExpression() {
    ExprPtr e = parseExpr();
    expect(Tok::kEnd, "trailing input after expression");
    return e;
  }

 private:
  const Token& peek() const { return tokens_[pos_]; }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind) {
    if (check(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }
  const Token& expect(Tok kind, const char* what) {
    if (!check(kind)) throw PmlParseError(what, peek().line);
    return advance();
  }
  bool checkKeyword(const char* kw) const {
    return peek().kind == Tok::kIdent && peek().text == kw;
  }
  void expectKeyword(const char* kw) {
    if (!checkKeyword(kw)) {
      throw PmlParseError(std::string("expected '") + kw + "'", peek().line);
    }
    ++pos_;
  }

  ConstDecl parseConst() {
    expectKeyword("const");
    ConstDecl decl;
    const Token& type = expect(Tok::kIdent, "expected const type");
    if (type.text == "int") {
      decl.isInt = true;
    } else if (type.text == "double") {
      decl.isInt = false;
    } else {
      throw PmlParseError("expected 'int' or 'double'", type.line);
    }
    decl.name = expect(Tok::kIdent, "expected constant name").text;
    expect(Tok::kEq, "expected = in const declaration");
    decl.value = parseExpr();
    expect(Tok::kSemicolon, "expected ; after const declaration");
    return decl;
  }

  ModuleDecl parseModule() {
    expectKeyword("module");
    ModuleDecl module;
    module.name = expect(Tok::kIdent, "expected module name").text;
    while (!checkKeyword("endmodule")) {
      if (check(Tok::kLBracket)) {
        module.commands.push_back(parseCommand());
      } else {
        module.variables.push_back(parseVarDecl());
      }
    }
    expectKeyword("endmodule");
    return module;
  }

  VarDecl parseVarDecl() {
    VarDecl decl;
    decl.name = expect(Tok::kIdent, "expected variable name").text;
    expect(Tok::kColon, "expected : in variable declaration");
    expect(Tok::kLBracket, "expected [ in variable range");
    decl.low = parseExpr();
    expect(Tok::kDotDot, "expected .. in variable range");
    decl.high = parseExpr();
    expect(Tok::kRBracket, "expected ] in variable range");
    expectKeyword("init");
    decl.init = parseExpr();
    expect(Tok::kSemicolon, "expected ; after variable declaration");
    return decl;
  }

  Command parseCommand() {
    expect(Tok::kLBracket, "expected [ to start command");
    expect(Tok::kRBracket, "expected ] (labeled commands not supported)");
    Command command;
    command.guard = parseExpr();
    expect(Tok::kArrow, "expected -> after guard");
    command.updates.push_back(parseUpdate());
    while (match(Tok::kPlus)) {
      command.updates.push_back(parseUpdate());
    }
    expect(Tok::kSemicolon, "expected ; after command");
    return command;
  }

  Update parseUpdate() {
    Update update;
    // Lookahead: an update is either "expr : assignments" or bare
    // assignments (probability 1). Assignments always start with '(' IDENT
    // '\''; "true" denotes the empty assignment.
    if (checkKeyword("true")) {
      advance();
      return update;  // no-op self loop with probability 1
    }
    const std::size_t save = pos_;
    if (check(Tok::kLParen)) {
      // Could be a parenthesised probability or an assignment. Peek for
      // IDENT '\'' after the paren.
      if (tokens_[pos_ + 1].kind == Tok::kIdent &&
          tokens_[pos_ + 2].kind == Tok::kPrime) {
        update.assignments = parseAssignments();
        return update;
      }
    }
    // Parse a probability expression followed by ':'.
    update.probability = parseExpr();
    if (match(Tok::kColon)) {
      if (checkKeyword("true")) {
        advance();
        return update;
      }
      update.assignments = parseAssignments();
      return update;
    }
    // No ':': what we parsed must have been an assignment list start — but
    // assignments are parenthesised, so this is an error.
    pos_ = save;
    throw PmlParseError("expected 'prob : updates' or '(var'=expr)'",
                        peek().line);
  }

  std::vector<Assignment> parseAssignments() {
    std::vector<Assignment> assignments;
    assignments.push_back(parseAssignment());
    while (match(Tok::kAmp)) {
      assignments.push_back(parseAssignment());
    }
    return assignments;
  }

  Assignment parseAssignment() {
    expect(Tok::kLParen, "expected ( in assignment");
    Assignment assignment;
    assignment.var = expect(Tok::kIdent, "expected variable in assignment").text;
    expect(Tok::kPrime, "expected ' in assignment");
    expect(Tok::kEq, "expected = in assignment");
    assignment.value = parseExpr();
    expect(Tok::kRParen, "expected ) after assignment");
    return assignment;
  }

  RewardsDecl parseRewards() {
    expectKeyword("rewards");
    RewardsDecl decl;
    if (check(Tok::kString)) decl.name = advance().text;
    while (!checkKeyword("endrewards")) {
      RewardItem item;
      item.guard = parseExpr();
      expect(Tok::kColon, "expected : in reward item");
      item.value = parseExpr();
      expect(Tok::kSemicolon, "expected ; after reward item");
      decl.items.push_back(std::move(item));
    }
    expectKeyword("endrewards");
    return decl;
  }

  LabelDecl parseLabel() {
    expectKeyword("label");
    LabelDecl decl;
    decl.name = expect(Tok::kString, "expected label name string").text;
    expect(Tok::kEq, "expected = in label declaration");
    decl.condition = parseExpr();
    expect(Tok::kSemicolon, "expected ; after label");
    return decl;
  }

  // --- expressions (precedence climbing) ---
  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr e = parseAnd();
    while (match(Tok::kPipe)) {
      e = Expr::makeBinary(Op::kOr, std::move(e), parseAnd());
    }
    return e;
  }

  ExprPtr parseAnd() {
    ExprPtr e = parseNot();
    while (match(Tok::kAmp)) {
      e = Expr::makeBinary(Op::kAnd, std::move(e), parseNot());
    }
    return e;
  }

  ExprPtr parseNot() {
    if (match(Tok::kBang)) return Expr::makeUnary(Op::kNot, parseNot());
    return parseComparison();
  }

  ExprPtr parseComparison() {
    ExprPtr e = parseAdditive();
    const auto cmpOp = [&]() -> std::optional<Op> {
      switch (peek().kind) {
        case Tok::kEq:
          return Op::kEq;
        case Tok::kNe:
          return Op::kNe;
        case Tok::kLt:
          return Op::kLt;
        case Tok::kLe:
          return Op::kLe;
        case Tok::kGt:
          return Op::kGt;
        case Tok::kGe:
          return Op::kGe;
        default:
          return std::nullopt;
      }
    }();
    if (cmpOp) {
      ++pos_;
      e = Expr::makeBinary(*cmpOp, std::move(e), parseAdditive());
    }
    return e;
  }

  ExprPtr parseAdditive() {
    ExprPtr e = parseMultiplicative();
    while (true) {
      if (match(Tok::kPlus)) {
        e = Expr::makeBinary(Op::kAdd, std::move(e), parseMultiplicative());
      } else if (match(Tok::kMinus)) {
        e = Expr::makeBinary(Op::kSub, std::move(e), parseMultiplicative());
      } else {
        return e;
      }
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr e = parseUnary();
    while (true) {
      if (match(Tok::kStar)) {
        e = Expr::makeBinary(Op::kMul, std::move(e), parseUnary());
      } else if (match(Tok::kSlash)) {
        e = Expr::makeBinary(Op::kDiv, std::move(e), parseUnary());
      } else {
        return e;
      }
    }
  }

  ExprPtr parseUnary() {
    if (match(Tok::kMinus)) return Expr::makeUnary(Op::kNeg, parseUnary());
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    if (match(Tok::kLParen)) {
      ExprPtr e = parseExpr();
      expect(Tok::kRParen, "expected )");
      return e;
    }
    if (check(Tok::kNumber)) return Expr::makeNumber(advance().number);
    const Token& t = expect(Tok::kIdent, "expected expression");
    if (t.text == "true") return Expr::makeBool(true);
    if (t.text == "false") return Expr::makeBool(false);
    if (t.text == "min" || t.text == "max" || t.text == "mod" ||
        t.text == "floor" || t.text == "ceil") {
      const Op op = t.text == "min"     ? Op::kMin
                    : t.text == "max"   ? Op::kMax
                    : t.text == "mod"   ? Op::kMod
                    : t.text == "floor" ? Op::kFloor
                                        : Op::kCeil;
      expect(Tok::kLParen, "expected ( after function name");
      std::vector<ExprPtr> args;
      args.push_back(parseExpr());
      while (match(Tok::kComma)) args.push_back(parseExpr());
      expect(Tok::kRParen, "expected ) after function arguments");
      const std::size_t expected =
          (op == Op::kFloor || op == Op::kCeil) ? 1 : 2;
      if (args.size() != expected) {
        throw PmlParseError("wrong argument count for " + t.text, t.line);
      }
      if (expected == 1) return Expr::makeUnary(op, std::move(args[0]));
      return Expr::makeCall(op, std::move(args));
    }
    return Expr::makeIdent(t.text);
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

ModelDecl parseModel(std::string_view source) {
  return Parser(source).parseModel();
}

ExprPtr parseExpression(std::string_view source) {
  return Parser(source).parseBareExpression();
}

}  // namespace mimostat::pml
