// AST of the PML modeling language — a PRISM-flavoured guarded-command
// language for DTMCs, so models can be written as text instead of C++:
//
//   dtmc
//   const double p = 0.3;
//   module chain
//     s : [0..7] init 0;
//     [] s<7 -> p : (s'=s+1) + 1-p : (s'=0);
//     [] s=7 -> (s'=7);
//   endmodule
//   rewards "steps"  s>0 : 1;  endrewards
//   label "done" = s=7;
//
// Subset notes (documented deliberately): one module per model (use
// dtmc::SynchronousProduct to compose several), unlabeled commands only,
// constants are scalars, and all arithmetic is double-valued with
// integrality enforced at variable assignment.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace mimostat::pml {

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

enum class Op {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kNeg,
  kAnd,
  kOr,
  kNot,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kMin,
  kMax,
  kMod,
  kFloor,
  kCeil,
};

struct Expr {
  enum class Kind { kNumber, kIdent, kBool, kUnary, kBinary, kCall };

  Kind kind = Kind::kNumber;
  double number = 0.0;       // kNumber / kBool (0 or 1)
  std::string name;          // kIdent
  Op op = Op::kAdd;          // kUnary/kBinary/kCall
  std::vector<ExprPtr> args; // operands

  static ExprPtr makeNumber(double v);
  static ExprPtr makeBool(bool v);
  static ExprPtr makeIdent(std::string name);
  static ExprPtr makeUnary(Op op, ExprPtr a);
  static ExprPtr makeBinary(Op op, ExprPtr a, ExprPtr b);
  static ExprPtr makeCall(Op op, std::vector<ExprPtr> args);
};

struct ConstDecl {
  std::string name;
  bool isInt = false;
  ExprPtr value;
};

struct VarDecl {
  std::string name;
  ExprPtr low;
  ExprPtr high;
  ExprPtr init;
};

struct Assignment {
  std::string var;   // assigned as var' = expr
  ExprPtr value;
};

struct Update {
  ExprPtr probability;  // null = probability 1
  std::vector<Assignment> assignments;
};

struct Command {
  ExprPtr guard;
  std::vector<Update> updates;
};

struct ModuleDecl {
  std::string name;
  std::vector<VarDecl> variables;
  std::vector<Command> commands;
};

struct RewardItem {
  ExprPtr guard;
  ExprPtr value;
};

struct RewardsDecl {
  std::string name;  // empty = default structure
  std::vector<RewardItem> items;
};

struct LabelDecl {
  std::string name;
  ExprPtr condition;
};

struct ModelDecl {
  std::vector<ConstDecl> constants;
  ModuleDecl module;
  std::vector<RewardsDecl> rewards;
  std::vector<LabelDecl> labels;
};

}  // namespace mimostat::pml
