#include "pml/eval.hpp"

#include <cmath>

namespace mimostat::pml {

double evaluate(const Expr& expr, const Environment& env) {
  switch (expr.kind) {
    case Expr::Kind::kNumber:
    case Expr::Kind::kBool:
      return expr.number;
    case Expr::Kind::kIdent: {
      const auto it = env.find(expr.name);
      if (it == env.end()) {
        throw EvalError("unknown identifier '" + expr.name + "'");
      }
      return it->second;
    }
    case Expr::Kind::kUnary: {
      const double a = evaluate(*expr.args[0], env);
      switch (expr.op) {
        case Op::kNeg:
          return -a;
        case Op::kNot:
          return isTruthy(a) ? 0.0 : 1.0;
        case Op::kFloor:
          return std::floor(a);
        case Op::kCeil:
          return std::ceil(a);
        default:
          throw EvalError("bad unary operator");
      }
    }
    case Expr::Kind::kBinary:
    case Expr::Kind::kCall: {
      const double a = evaluate(*expr.args[0], env);
      // Short-circuit the boolean connectives.
      if (expr.op == Op::kAnd) {
        return isTruthy(a) && isTruthy(evaluate(*expr.args[1], env)) ? 1.0
                                                                     : 0.0;
      }
      if (expr.op == Op::kOr) {
        return isTruthy(a) || isTruthy(evaluate(*expr.args[1], env)) ? 1.0
                                                                     : 0.0;
      }
      const double b = evaluate(*expr.args[1], env);
      switch (expr.op) {
        case Op::kAdd:
          return a + b;
        case Op::kSub:
          return a - b;
        case Op::kMul:
          return a * b;
        case Op::kDiv:
          if (b == 0.0) throw EvalError("division by zero");
          return a / b;
        case Op::kEq:
          return a == b ? 1.0 : 0.0;
        case Op::kNe:
          return a != b ? 1.0 : 0.0;
        case Op::kLt:
          return a < b ? 1.0 : 0.0;
        case Op::kLe:
          return a <= b ? 1.0 : 0.0;
        case Op::kGt:
          return a > b ? 1.0 : 0.0;
        case Op::kGe:
          return a >= b ? 1.0 : 0.0;
        case Op::kMin:
          return std::min(a, b);
        case Op::kMax:
          return std::max(a, b);
        case Op::kMod: {
          const double ra = std::round(a);
          const double rb = std::round(b);
          if (ra != a || rb != b) throw EvalError("mod of non-integers");
          if (rb == 0.0) throw EvalError("mod by zero");
          return std::fmod(ra, rb);
        }
        default:
          throw EvalError("bad binary operator");
      }
    }
  }
  throw EvalError("unreachable expression kind");
}

long long evaluateInt(const Expr& expr, const Environment& env) {
  const double v = evaluate(expr, env);
  const double rounded = std::round(v);
  if (std::fabs(v - rounded) > 1e-9) {
    throw EvalError("expected an integer value, got " + std::to_string(v));
  }
  return static_cast<long long>(rounded);
}

}  // namespace mimostat::pml
