// Expression evaluation for the PML language.
//
// All values are doubles; booleans are 0/1 and guards test truthiness.
// Identifier lookup goes through an Environment mapping names (constants
// and state variables) to values. Evaluation throws EvalError on unknown
// identifiers or malformed arithmetic (e.g. division by zero), making
// model bugs loud at build time rather than silently probabilistic.
#pragma once

#include <stdexcept>
#include <string>
#include <unordered_map>

#include "pml/ast.hpp"

namespace mimostat::pml {

class EvalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

using Environment = std::unordered_map<std::string, double>;

[[nodiscard]] double evaluate(const Expr& expr, const Environment& env);

[[nodiscard]] inline bool isTruthy(double v) { return v != 0.0; }

/// Evaluate and require an integral result (for variable bounds/updates).
[[nodiscard]] long long evaluateInt(const Expr& expr, const Environment& env);

}  // namespace mimostat::pml
