// PmlModel: adapts a parsed PML program to the dtmc::Model interface, so
// text-defined designs flow through the same builder, reductions, checker
// and analyzer as the built-in C++ models.
//
// Semantics (documented subset of PRISM DTMCs):
//  - exactly one module; per state, the distributions of all enabled
//    commands are summed and must total 1 (disjoint guards are the normal
//    style); a state with no enabled command self-loops (absorbing);
//  - update assignments read the *pre*-state; unassigned variables keep
//    their value; out-of-range assignments throw at exploration time;
//  - the unnamed rewards block is the default reward structure; labels
//    back quoted atoms in pCTL properties.
#pragma once

#include <string>
#include <string_view>

#include "dtmc/model.hpp"
#include "pml/ast.hpp"
#include "pml/eval.hpp"

namespace mimostat::pml {

class PmlModel : public dtmc::Model {
 public:
  /// Parses and elaborates the program; throws PmlParseError / EvalError
  /// on malformed input.
  explicit PmlModel(std::string_view source);
  /// Wrap an already-parsed program.
  explicit PmlModel(ModelDecl decl);

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override;
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override;
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override;
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override;
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view name) const override;

  /// Load a model from a .pml file. Throws std::runtime_error on I/O
  /// failure, PmlParseError / EvalError on malformed content.
  [[nodiscard]] static PmlModel fromFile(const std::string& path);

  [[nodiscard]] const ModelDecl& decl() const { return decl_; }
  /// Constant environment after elaboration (constants may reference
  /// previously declared constants).
  [[nodiscard]] const Environment& constants() const { return constants_; }

 private:
  void elaborate();
  [[nodiscard]] Environment environmentFor(const dtmc::State& s) const;

  ModelDecl decl_;
  Environment constants_;
  std::vector<dtmc::VarSpec> varSpecs_;
  dtmc::State initial_;
};

}  // namespace mimostat::pml
