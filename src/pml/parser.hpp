// Parser for the PML guarded-command language (see ast.hpp for the
// grammar subset). Line comments start with //.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "pml/ast.hpp"

namespace mimostat::pml {

class PmlParseError : public std::runtime_error {
 public:
  PmlParseError(const std::string& message, std::size_t line)
      : std::runtime_error(message + " (line " + std::to_string(line) + ")"),
        line_(line) {}

  [[nodiscard]] std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

[[nodiscard]] ModelDecl parseModel(std::string_view source);

/// Parse a bare expression (exposed for tests).
[[nodiscard]] ExprPtr parseExpression(std::string_view source);

}  // namespace mimostat::pml
