#include "pml/ast.hpp"

namespace mimostat::pml {

ExprPtr Expr::makeNumber(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kNumber;
  e->number = v;
  return e;
}

ExprPtr Expr::makeBool(bool v) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBool;
  e->number = v ? 1.0 : 0.0;
  return e;
}

ExprPtr Expr::makeIdent(std::string name) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kIdent;
  e->name = std::move(name);
  return e;
}

ExprPtr Expr::makeUnary(Op op, ExprPtr a) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kUnary;
  e->op = op;
  e->args = {std::move(a)};
  return e;
}

ExprPtr Expr::makeBinary(Op op, ExprPtr a, ExprPtr b) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kBinary;
  e->op = op;
  e->args = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::makeCall(Op op, std::vector<ExprPtr> args) {
  auto e = std::make_shared<Expr>();
  e->kind = Kind::kCall;
  e->op = op;
  e->args = std::move(args);
  return e;
}

}  // namespace mimostat::pml
