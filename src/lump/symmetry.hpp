// Generic symmetry reduction (paper §IV-B, citing Kwiatkowska/Norman/Parker
// CAV'06): when a model contains k interchangeable blocks of variables —
// identically distributed and entering labels/rewards/guards only through
// symmetric functions — the block-permutation group partitions the state
// space into orbits. Picking the lexicographically sorted representative of
// each orbit yields the quotient.
//
// SymmetryReducedModel wraps any dtmc::Model with a block structure and
// canonicalises initial states and transition targets on the fly, so the
// explicit builder directly explores the quotient.
#pragma once

#include <memory>
#include <vector>

#include "dtmc/model.hpp"

namespace mimostat::lump {

/// Block structure: blocks[b] lists the variable indices of block b. All
/// blocks must have the same arity; variables not listed are asymmetric
/// (global) variables and are left untouched.
using BlockStructure = std::vector<std::vector<std::size_t>>;

class SymmetryReducedModel : public dtmc::Model {
 public:
  /// @param inner  the full model (must outlive this wrapper)
  /// @param blocks interchangeable variable blocks
  SymmetryReducedModel(const dtmc::Model& inner, BlockStructure blocks);

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override;
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override;
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override;
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override;
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view name) const override;

  /// Canonical (sorted-block) representative of a state's orbit.
  [[nodiscard]] dtmc::State canonicalize(const dtmc::State& s) const;

  /// Spot-check that the inner model is actually symmetric: for `samples`
  /// random reachable-ish states, every block permutation must preserve the
  /// default reward, the given atoms, and the successor distribution up to
  /// canonicalisation. Returns false on the first violation.
  [[nodiscard]] bool verifySymmetry(const std::vector<std::string>& atoms,
                                    int samples, std::uint64_t seed) const;

 private:
  const dtmc::Model& inner_;
  BlockStructure blocks_;
};

}  // namespace mimostat::lump
