#include "lump/bisim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>

#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace mimostat::lump {

namespace {

/// Hash of a state's signature: sorted (target block, bucketed prob) pairs,
/// merged per block.
std::uint64_t signatureHash(const dtmc::ExplicitDtmc& dtmc, std::uint32_t s,
                            const std::vector<std::uint32_t>& blockOf,
                            double resolution,
                            std::vector<std::pair<std::uint32_t, double>>& scratch) {
  scratch.clear();
  for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
    scratch.emplace_back(blockOf[dtmc.col()[k]], dtmc.val()[k]);
  }
  std::sort(scratch.begin(), scratch.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::uint64_t hash = 0x9E3779B97F4A7C15ULL;
  std::size_t i = 0;
  while (i < scratch.size()) {
    const std::uint32_t block = scratch[i].first;
    double prob = 0.0;
    while (i < scratch.size() && scratch[i].first == block) {
      prob += scratch[i].second;
      ++i;
    }
    const auto bucket =
        static_cast<std::int64_t>(std::llround(prob / resolution));
    hash = util::hashCombine(hash, util::mix64(block));
    hash = util::hashCombine(hash, util::mix64(static_cast<std::uint64_t>(bucket)));
  }
  return hash;
}

}  // namespace

InitialKeys keysFromRewardAndLabels(
    const std::vector<double>& reward,
    const std::vector<la::BitVector>& labels,
    double rewardResolution) {
  InitialKeys keys(reward.size());
  for (std::size_t s = 0; s < reward.size(); ++s) {
    const auto bucket =
        static_cast<std::int64_t>(std::llround(reward[s] / rewardResolution));
    std::uint64_t key = util::mix64(static_cast<std::uint64_t>(bucket));
    for (std::size_t l = 0; l < labels.size(); ++l) {
      assert(labels[l].size() == reward.size());
      key = util::hashCombine(key, labels[l].get(s) ? l + 1 : 0);
    }
    keys[s] = key;
  }
  return keys;
}

InitialKeys keysFromMasksAndRewards(
    std::size_t numStates, const std::vector<const la::BitVector*>& masks,
    const std::vector<const std::vector<double>*>& rewards,
    double rewardResolution) {
  InitialKeys keys(numStates, 0x9E3779B97F4A7C15ULL);
  for (std::size_t m = 0; m < masks.size(); ++m) {
    assert(masks[m] != nullptr && masks[m]->size() == numStates);
    for (std::size_t s = 0; s < numStates; ++s) {
      keys[s] = util::hashCombine(keys[s], masks[m]->get(s) ? m + 1 : 0);
    }
  }
  for (const std::vector<double>* reward : rewards) {
    assert(reward != nullptr && reward->size() == numStates);
    for (std::size_t s = 0; s < numStates; ++s) {
      const auto bucket = static_cast<std::int64_t>(
          std::llround((*reward)[s] / rewardResolution));
      keys[s] = util::hashCombine(
          keys[s], util::mix64(static_cast<std::uint64_t>(bucket)));
    }
  }
  return keys;
}

LumpResult lump(const dtmc::ExplicitDtmc& dtmc, const InitialKeys& initialKeys,
                const LumpOptions& options) {
  obs::Span span("lump.bisim");
  const std::uint32_t n = dtmc.numStates();
  assert(initialKeys.size() == n);

  LumpResult result;
  std::vector<std::uint32_t>& blockOf = result.partition.blockOf;
  blockOf.assign(n, 0);

  // Initial partition from the keys.
  {
    std::unordered_map<std::uint64_t, std::uint32_t> blockIds;
    for (std::uint32_t s = 0; s < n; ++s) {
      auto [it, inserted] = blockIds.try_emplace(
          initialKeys[s], static_cast<std::uint32_t>(blockIds.size()));
      blockOf[s] = it->second;
    }
    result.partition.numBlocks = static_cast<std::uint32_t>(blockIds.size());
  }

  // Signature refinement to fixpoint.
  std::vector<std::pair<std::uint32_t, double>> scratch;
  std::vector<std::uint32_t> newBlockOf(n);
  for (std::uint32_t round = 0; round < options.maxRefinementRounds; ++round) {
    ++result.refinementRounds;
    std::unordered_map<std::uint64_t, std::uint32_t> blockIds;
    blockIds.reserve(result.partition.numBlocks * 2);
    for (std::uint32_t s = 0; s < n; ++s) {
      const std::uint64_t sig =
          signatureHash(dtmc, s, blockOf, options.probResolution, scratch);
      const std::uint64_t key =
          util::hashCombine(util::mix64(blockOf[s]), sig);
      auto [it, inserted] =
          blockIds.try_emplace(key, static_cast<std::uint32_t>(blockIds.size()));
      newBlockOf[s] = it->second;
    }
    const auto newCount = static_cast<std::uint32_t>(blockIds.size());
    blockOf.swap(newBlockOf);
    if (newCount == result.partition.numBlocks) break;
    result.partition.numBlocks = newCount;
  }

  // Representatives: first state of each block.
  result.representative.assign(result.partition.numBlocks, ~0u);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (result.representative[blockOf[s]] == ~0u) {
      result.representative[blockOf[s]] = s;
    }
  }

  // Quotient matrix: aggregate each representative's row per target block.
  dtmc::ExplicitDtmc::Raw raw;
  raw.layout = dtmc.varLayout();
  raw.rowPtr.reserve(result.partition.numBlocks + 1);
  raw.rowPtr.push_back(0);
  std::vector<double> rowAccum(result.partition.numBlocks, 0.0);
  std::vector<std::uint32_t> touched;
  for (std::uint32_t b = 0; b < result.partition.numBlocks; ++b) {
    const std::uint32_t rep = result.representative[b];
    touched.clear();
    for (std::uint64_t k = dtmc.rowPtr()[rep]; k < dtmc.rowPtr()[rep + 1]; ++k) {
      const std::uint32_t tb = blockOf[dtmc.col()[k]];
      if (rowAccum[tb] == 0.0) touched.push_back(tb);
      rowAccum[tb] += dtmc.val()[k];
    }
    std::sort(touched.begin(), touched.end());
    for (const std::uint32_t tb : touched) {
      raw.col.push_back(tb);
      raw.val.push_back(rowAccum[tb]);
      rowAccum[tb] = 0.0;
    }
    raw.rowPtr.push_back(raw.col.size());
  }

  // Initial distribution: block mass = sum of member masses.
  raw.initial.assign(result.partition.numBlocks, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    raw.initial[blockOf[s]] += dtmc.initialDistribution()[s];
  }

  // Quotient state table: representatives (keeps VarCmp properties usable).
  raw.states.reserve(result.partition.numBlocks);
  for (std::uint32_t b = 0; b < result.partition.numBlocks; ++b) {
    raw.states.push_back(dtmc.state(result.representative[b]));
  }

  result.quotient = dtmc::ExplicitDtmc::fromRaw(std::move(raw));
  result.seconds = span.stopSeconds();
  return result;
}

}  // namespace mimostat::lump
