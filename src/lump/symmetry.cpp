#include "lump/symmetry.hpp"

#include <algorithm>
#include <cassert>

#include "util/rng.hpp"

namespace mimostat::lump {

SymmetryReducedModel::SymmetryReducedModel(const dtmc::Model& inner,
                                           BlockStructure blocks)
    : inner_(inner), blocks_(std::move(blocks)) {
  assert(!blocks_.empty());
  [[maybe_unused]] const std::size_t arity = blocks_.front().size();
  for ([[maybe_unused]] const auto& block : blocks_) {
    assert(block.size() == arity && "all symmetry blocks must have equal arity");
  }
}

dtmc::State SymmetryReducedModel::canonicalize(const dtmc::State& s) const {
  // Extract block tuples, sort lexicographically, write back.
  const std::size_t arity = blocks_.front().size();
  std::vector<std::vector<std::int32_t>> tuples(blocks_.size());
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    tuples[b].resize(arity);
    for (std::size_t i = 0; i < arity; ++i) {
      tuples[b][i] = s[blocks_[b][i]];
    }
  }
  std::sort(tuples.begin(), tuples.end());
  dtmc::State canonical(s);
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    for (std::size_t i = 0; i < arity; ++i) {
      canonical[blocks_[b][i]] = tuples[b][i];
    }
  }
  return canonical;
}

std::vector<dtmc::VarSpec> SymmetryReducedModel::variables() const {
  return inner_.variables();
}

std::vector<dtmc::State> SymmetryReducedModel::initialStates() const {
  std::vector<dtmc::State> initial = inner_.initialStates();
  for (auto& s : initial) s = canonicalize(s);
  // Canonicalisation may merge initial states.
  std::sort(initial.begin(), initial.end());
  initial.erase(std::unique(initial.begin(), initial.end()), initial.end());
  return initial;
}

void SymmetryReducedModel::transitions(const dtmc::State& s,
                                       std::vector<dtmc::Transition>& out) const {
  // `s` is already canonical (a valid state of the inner model); duplicates
  // after canonicalising the successors are merged by the builder.
  const std::size_t begin = out.size();
  inner_.transitions(s, out);
  for (std::size_t i = begin; i < out.size(); ++i) {
    out[i].target = canonicalize(out[i].target);
  }
}

bool SymmetryReducedModel::atom(const dtmc::State& s,
                                std::string_view name) const {
  return inner_.atom(s, name);
}

double SymmetryReducedModel::stateReward(const dtmc::State& s,
                                         std::string_view name) const {
  return inner_.stateReward(s, name);
}

bool SymmetryReducedModel::verifySymmetry(const std::vector<std::string>& atoms,
                                          int samples,
                                          std::uint64_t seed) const {
  util::Xoshiro256 rng(seed);
  const std::vector<dtmc::VarSpec> vars = inner_.variables();

  // Random walk from an initial state; at each visited state check that one
  // random adjacent-block swap preserves rewards/atoms and the canonical
  // successor distribution.
  std::vector<dtmc::State> initial = inner_.initialStates();
  if (initial.empty()) return false;
  dtmc::State current = initial[rng.nextBounded(initial.size())];

  std::vector<dtmc::Transition> succ;
  std::vector<dtmc::Transition> succSwapped;
  for (int iter = 0; iter < samples; ++iter) {
    // Pick a random pair of blocks to swap.
    const std::size_t b1 = rng.nextBounded(blocks_.size());
    std::size_t b2 = rng.nextBounded(blocks_.size() - 1);
    if (b2 >= b1) ++b2;
    dtmc::State swapped(current);
    for (std::size_t i = 0; i < blocks_[b1].size(); ++i) {
      std::swap(swapped[blocks_[b1][i]], swapped[blocks_[b2][i]]);
    }

    if (inner_.stateReward(current, "") != inner_.stateReward(swapped, "")) {
      return false;
    }
    for (const auto& atomName : atoms) {
      if (inner_.atom(current, atomName) != inner_.atom(swapped, atomName)) {
        return false;
      }
    }

    succ.clear();
    succSwapped.clear();
    inner_.transitions(current, succ);
    inner_.transitions(swapped, succSwapped);
    for (auto& t : succ) t.target = canonicalize(t.target);
    for (auto& t : succSwapped) t.target = canonicalize(t.target);
    dtmc::normalizeTransitions(succ, 0.0);
    dtmc::normalizeTransitions(succSwapped, 0.0);
    if (succ.size() != succSwapped.size()) return false;
    for (std::size_t i = 0; i < succ.size(); ++i) {
      if (succ[i].target != succSwapped[i].target) return false;
      if (std::abs(succ[i].prob - succSwapped[i].prob) > 1e-12) return false;
    }

    // Walk one random step.
    if (!succ.empty()) {
      current = succ[rng.nextBounded(succ.size())].target;
    }
  }
  return true;
}

}  // namespace mimostat::lump
