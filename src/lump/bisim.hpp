// Probabilistic bisimulation minimisation by signature refinement.
//
// Implements the partition-refinement view of the Strong Lumping Theorem
// (Derisavi, Hermanns & Sanders; cited as [17] in the paper): start from an
// initial partition that separates states with different labels/rewards,
// then repeatedly split blocks whose states have different probability
// signatures (block -> summed probability maps) until a fixpoint. The final
// partition is the coarsest lumpable refinement of the initial one, and the
// quotient DTMC is a probabilistic bisimulation of the original with
// respect to every property definable over the initial partition's keys.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/bit_vector.hpp"

namespace mimostat::lump {

struct Partition {
  /// Block id per state.
  std::vector<std::uint32_t> blockOf;
  std::uint32_t numBlocks = 0;
};

struct LumpOptions {
  /// Probabilities are bucketed to this resolution when hashing signatures
  /// (guards against floating-point noise splitting equal blocks).
  double probResolution = 1e-12;
  std::uint32_t maxRefinementRounds = 1'000'000;
};

struct LumpResult {
  Partition partition;
  dtmc::ExplicitDtmc quotient;
  /// stateOf[block] = representative original state index.
  std::vector<std::uint32_t> representative;
  std::uint32_t refinementRounds = 0;
  double seconds = 0.0;
};

/// Initial-partition keys: states with different keys may never share a
/// block. Typical key: (reward value, relevant label bits).
using InitialKeys = std::vector<std::uint64_t>;

/// Coarsest lumping quotient respecting the initial keys.
/// The quotient's states() table stores the representative original states,
/// and its VarLayout is inherited — so pCTL variable comparisons keep
/// working on the quotient as long as the compared variables are constant
/// within blocks (true whenever they are part of the initial keys).
[[nodiscard]] LumpResult lump(const dtmc::ExplicitDtmc& dtmc,
                              const InitialKeys& initialKeys,
                              const LumpOptions& options = {});

/// Initial keys from a reward vector (bucketed) and optional packed label
/// sets (one la::BitVector per label, one bit per state).
[[nodiscard]] InitialKeys keysFromRewardAndLabels(
    const std::vector<double>& reward,
    const std::vector<la::BitVector>& labels,
    double rewardResolution = 1e-12);

/// Initial keys from an evaluation plan's needs: any number of packed masks
/// (one bit per state each) and any number of reward vectors (bucketed to
/// `rewardResolution`). States agreeing on every mask bit and every bucketed
/// reward share a key; masks/rewards the plan does not need are simply not
/// passed and never block merging (the reduce:: plan-aware partition).
[[nodiscard]] InitialKeys keysFromMasksAndRewards(
    std::size_t numStates, const std::vector<const la::BitVector*>& masks,
    const std::vector<const std::vector<double>*>& rewards,
    double rewardResolution = 1e-12);

}  // namespace mimostat::lump
