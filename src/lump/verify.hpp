// Verification helpers for reductions.
//
// verifyLumpable discharges the paper's "Part B" proof obligation
// numerically: a partition is (strongly/ordinarily) lumpable iff every state
// in a block has the same aggregated probability into every target block
// (Eq. 12). compareProperties cross-checks property values between a full
// model and a hand-reduced model — the end-to-end soundness check used by
// the test suite on small instances.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "dtmc/model.hpp"
#include "lump/bisim.hpp"

namespace mimostat::lump {

struct LumpabilityReport {
  bool lumpable = true;
  /// Worst block-to-block probability mismatch found.
  double worstMismatch = 0.0;
  /// A witness state pair when not lumpable.
  std::uint32_t witnessA = 0;
  std::uint32_t witnessB = 0;
};

/// Check that `partition` is lumpable on `dtmc` within tolerance `tol`.
[[nodiscard]] LumpabilityReport verifyLumpable(const dtmc::ExplicitDtmc& dtmc,
                                               const Partition& partition,
                                               double tol = 1e-9);

/// Build a Partition from an explicit state -> block map.
[[nodiscard]] Partition partitionFromMap(
    const std::vector<std::uint32_t>& blockOf);

struct PropertyComparison {
  std::string property;
  double fullValue = 0.0;
  double reducedValue = 0.0;
  double absDiff = 0.0;
};

/// Check the same pCTL property strings on two (model, dtmc) pairs and
/// report the differences. Used to validate that a reduction preserves the
/// properties of interest.
[[nodiscard]] std::vector<PropertyComparison> compareProperties(
    const dtmc::ExplicitDtmc& fullDtmc, const dtmc::Model& fullModel,
    const dtmc::ExplicitDtmc& reducedDtmc, const dtmc::Model& reducedModel,
    const std::vector<std::string>& properties);

}  // namespace mimostat::lump
