#include "lump/verify.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "mc/checker.hpp"

namespace mimostat::lump {

Partition partitionFromMap(const std::vector<std::uint32_t>& blockOf) {
  Partition p;
  p.blockOf = blockOf;
  std::uint32_t maxBlock = 0;
  for (const auto b : blockOf) maxBlock = std::max(maxBlock, b);
  p.numBlocks = blockOf.empty() ? 0 : maxBlock + 1;
  return p;
}

LumpabilityReport verifyLumpable(const dtmc::ExplicitDtmc& dtmc,
                                 const Partition& partition, double tol) {
  LumpabilityReport report;
  const std::uint32_t n = dtmc.numStates();

  // Aggregated row signature per state (target block -> prob).
  const auto signatureOf = [&](std::uint32_t s) {
    std::unordered_map<std::uint32_t, double> sig;
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      sig[partition.blockOf[dtmc.col()[k]]] += dtmc.val()[k];
    }
    return sig;
  };

  // Compare every state's signature against its block's first member.
  std::vector<std::uint32_t> firstOfBlock(partition.numBlocks, ~0u);
  std::vector<std::unordered_map<std::uint32_t, double>> refSig(
      partition.numBlocks);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t b = partition.blockOf[s];
    if (firstOfBlock[b] == ~0u) {
      firstOfBlock[b] = s;
      refSig[b] = signatureOf(s);
      continue;
    }
    const auto sig = signatureOf(s);
    double mismatch = 0.0;
    // lint:allow(unordered-iteration: max-reduction, order-independent)
    for (const auto& [block, prob] : sig) {
      const auto it = refSig[b].find(block);
      const double refProb = it == refSig[b].end() ? 0.0 : it->second;
      mismatch = std::max(mismatch, std::fabs(prob - refProb));
    }
    // lint:allow(unordered-iteration: max-reduction, order-independent)
    for (const auto& [block, prob] : refSig[b]) {
      if (sig.find(block) == sig.end()) {
        mismatch = std::max(mismatch, std::fabs(prob));
      }
    }
    if (mismatch > report.worstMismatch) {
      report.worstMismatch = mismatch;
      report.witnessA = firstOfBlock[b];
      report.witnessB = s;
    }
  }
  report.lumpable = report.worstMismatch <= tol;
  return report;
}

std::vector<PropertyComparison> compareProperties(
    const dtmc::ExplicitDtmc& fullDtmc, const dtmc::Model& fullModel,
    const dtmc::ExplicitDtmc& reducedDtmc, const dtmc::Model& reducedModel,
    const std::vector<std::string>& properties) {
  const mc::Checker fullChecker(fullDtmc, fullModel);
  const mc::Checker reducedChecker(reducedDtmc, reducedModel);
  std::vector<PropertyComparison> results;
  results.reserve(properties.size());
  for (const auto& prop : properties) {
    PropertyComparison cmp;
    cmp.property = prop;
    cmp.fullValue = fullChecker.check(prop).value;
    cmp.reducedValue = reducedChecker.check(prop).value;
    cmp.absDiff = std::fabs(cmp.fullValue - cmp.reducedValue);
    results.push_back(std::move(cmp));
  }
  return results;
}

}  // namespace mimostat::lump
