// Convergence DTMC model of the Viterbi decoder (paper §IV-C).
//
// A trellis stage is *convergent* when prev0 == prev1: all traceback paths
// through it merge. The property C1 asks for the steady-state probability
// that a decoded bit has non-converging traceback paths, i.e. that the last
// L stages were all non-convergent.
//
// Only (pm0, pm1, x0) drive the probabilistic kernel, and convergence of the
// new stage is a function of the ACS outputs alone — so the model keeps just
// those three variables plus a saturating run-length counter `count` of
// consecutive non-convergent stages (the paper's refinement function F_ref).
//
// Rewards: the default reward is (count > L) for the configured L; the
// named rewards "nc<k>" give (count > k) for any k <= maxCount-1, which lets
// one model sweep C1 over many traceback lengths (Figure 2) in a single
// transient pass.
#pragma once

#include "dtmc/model.hpp"
#include "viterbi/code.hpp"

namespace mimostat::viterbi {

class ConvergenceViterbiModel : public dtmc::Model {
 public:
  /// @param params    trellis parameters; params.tracebackLength is the L
  ///                  used by the default reward
  /// @param maxCount  saturation value of the run-length counter; must be
  ///                  > every L queried through "nc<k>" rewards
  ConvergenceViterbiModel(const ViterbiParams& params, int maxCount);

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override;
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override;
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override;
  /// Atom "nonconv" = (count > L).
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override;
  /// Default reward = (count > L); "nc<k>" = (count > k).
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view name) const override;

  [[nodiscard]] const ViterbiParams& params() const { return kernel_.params(); }
  [[nodiscard]] int maxCount() const { return maxCount_; }

  [[nodiscard]] std::size_t idxPm0() const { return 0; }
  [[nodiscard]] std::size_t idxPm1() const { return 1; }
  [[nodiscard]] std::size_t idxX0() const { return 2; }
  [[nodiscard]] std::size_t idxCount() const { return 3; }

 private:
  TrellisKernel kernel_;
  int maxCount_;
};

}  // namespace mimostat::viterbi
