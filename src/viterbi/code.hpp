// Shared definition of the paper's Viterbi case study (memory m=1, channel
// s[n] = a[n] + a[n-1]) and the RTL trellis kernel: quantized branch
// metrics, add-compare-select with min-normalisation and saturation, and
// traceback-start selection. The bit-accurate decoder (Monte-Carlo baseline)
// and the DTMC models all call into this kernel, so the DTMC is a faithful
// model of the simulated RTL by construction.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/channel.hpp"
#include "comm/quantizer.hpp"

namespace mimostat::viterbi {

/// Parameters of the Viterbi case study. Defaults reproduce the paper's
/// setup (L=6 i.e. 5m < L, SNR 5 dB) with documented quantizer widths.
struct ViterbiParams {
  int tracebackLength = 6;   ///< L; decoding latency is L-1
  double snrDb = 5.0;        ///< channel SNR
  int quantLevels = 4;       ///< receiver ADC levels (2-bit)
  double quantRange = 3.0;   ///< ADC full-scale range
  int pmCap = 6;             ///< path-metric saturation (RTL register width)
  int bmCap = 6;             ///< branch-metric saturation
  /// |q - expected| -> integer scaling. The default of 2 keeps the four
  /// branch metrics of every quantizer cell distinct where it matters:
  /// with scale 1 the reconstruction value 0.75 is equidistant (rounded)
  /// from the 0 and +2 signal levels, which makes noiseless sequences
  /// undecodable — an RTL bug the model would faithfully reproduce.
  double bmScale = 2.0;
  bool withErrorCounter = false;  ///< add the saturating errs counter (P3)
  int errorThreshold = 1;    ///< P3: "number of errors > errorThreshold"
};

/// One add-compare-select outcome.
struct AcsResult {
  std::int32_t pm0 = 0;   ///< normalized new path metric of internal state 0
  std::int32_t pm1 = 0;   ///< normalized new path metric of internal state 1
  int prev0 = 0;          ///< most-probable predecessor of internal state 0
  int prev1 = 0;          ///< most-probable predecessor of internal state 1
  int tracebackStart = 0; ///< internal state with the least path metric
};

/// Precomputed quantized branch metrics and the ACS step.
class TrellisKernel {
 public:
  explicit TrellisKernel(const ViterbiParams& params);

  [[nodiscard]] const ViterbiParams& params() const { return params_; }
  [[nodiscard]] const comm::DiscreteIsiChannel& channel() const {
    return channel_;
  }

  /// Branch metric of the trellis transition (previous state u -> current
  /// state v) given the quantized sample cell q.
  [[nodiscard]] std::int32_t branchMetric(int q, int u, int v) const {
    return bm_[static_cast<std::size_t>(q)][u][v];
  }

  /// Add-compare-select from the current path metrics and sample cell.
  /// Ties prefer predecessor 0 and traceback start 0 (documented RTL
  /// convention; the paper leaves this implementation-defined).
  [[nodiscard]] AcsResult acs(std::int32_t pm0, std::int32_t pm1, int q) const;

  /// P(q = cell | current bit, previous bit) — DTMC transition labels.
  [[nodiscard]] double cellProb(int current, int previous, int cell) const {
    return channel_.cellProb(current, previous, cell);
  }

 private:
  ViterbiParams params_;
  comm::IsiChannel isi_;
  comm::DiscreteIsiChannel channel_;
  std::vector<std::array<std::array<std::int32_t, 2>, 2>> bm_;
};

/// Traceback over explicit prev-pointer stages: start at `start`, hop
/// through stages 0..hops-1 (stage i maps the state at depth i to depth
/// i+1). Returns the internal state at depth `hops` = the decoded bit.
[[nodiscard]] int traceback(int start, const std::vector<int>& prev0Stages,
                            const std::vector<int>& prev1Stages, int hops);

}  // namespace mimostat::viterbi
