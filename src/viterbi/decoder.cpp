#include "viterbi/decoder.hpp"

#include <cassert>

namespace mimostat::viterbi {

Decoder::Decoder(const TrellisKernel& kernel) : kernel_(kernel) { reset(); }

void Decoder::reset() {
  const int traceLength = kernel_.params().tracebackLength;
  pm0_ = 0;
  pm1_ = kernel_.params().pmCap;
  prev0_.assign(static_cast<std::size_t>(traceLength), 0);
  prev1_.assign(static_cast<std::size_t>(traceLength), 0);
  lastConvergent_ = false;
}

int Decoder::step(int q) {
  const AcsResult acs = kernel_.acs(pm0_, pm1_, q);
  pm0_ = acs.pm0;
  pm1_ = acs.pm1;
  lastConvergent_ = acs.prev0 == acs.prev1;

  // Writeback: advance the trellis by one stage.
  prev0_.pop_back();
  prev0_.insert(prev0_.begin(), acs.prev0);
  prev1_.pop_back();
  prev1_.insert(prev1_.begin(), acs.prev1);

  // Traceback of L-1 hops from the best internal state.
  const int hops = kernel_.params().tracebackLength - 1;
  return traceback(acs.tracebackStart, prev0_, prev1_, hops);
}

}  // namespace mimostat::viterbi
