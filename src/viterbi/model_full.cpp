#include "viterbi/model_full.hpp"

#include <algorithm>
#include <cassert>

namespace mimostat::viterbi {

FullViterbiModel::FullViterbiModel(const ViterbiParams& params)
    : kernel_(params) {}

std::vector<dtmc::VarSpec> FullViterbiModel::variables() const {
  const ViterbiParams& p = kernel_.params();
  const int L = p.tracebackLength;
  std::vector<dtmc::VarSpec> vars;
  vars.push_back({"pm0", 0, p.pmCap});
  vars.push_back({"pm1", 0, p.pmCap});
  for (int i = 0; i < L; ++i) {
    vars.push_back({"x" + std::to_string(i), 0, 1});
  }
  for (int i = 0; i < L; ++i) {
    vars.push_back({"prev0_" + std::to_string(i), 0, 1});
  }
  for (int i = 0; i < L; ++i) {
    vars.push_back({"prev1_" + std::to_string(i), 0, 1});
  }
  vars.push_back({"flag", 0, 1});
  if (p.withErrorCounter) {
    vars.push_back({"errs", 0, p.errorThreshold + 1});
  }
  return vars;
}

std::vector<dtmc::State> FullViterbiModel::initialStates() const {
  const ViterbiParams& p = kernel_.params();
  dtmc::State s(variables().size(), 0);
  s[idxPm1()] = p.pmCap;  // transmitter starts in internal state 0
  return {s};
}

void FullViterbiModel::transitions(const dtmc::State& s,
                                   std::vector<dtmc::Transition>& out) const {
  const ViterbiParams& p = kernel_.params();
  const int L = p.tracebackLength;
  const std::int32_t pm0 = s[idxPm0()];
  const std::int32_t pm1 = s[idxPm1()];
  const int xPrev = s[idxX(0)];

  for (int xNew = 0; xNew < 2; ++xNew) {
    for (int q = 0; q < p.quantLevels; ++q) {
      const double prob = 0.5 * kernel_.cellProb(xNew, xPrev, q);
      if (prob <= 0.0) continue;

      const AcsResult acs = kernel_.acs(pm0, pm1, q);
      dtmc::State next(s);
      next[idxPm0()] = acs.pm0;
      next[idxPm1()] = acs.pm1;
      // Writeback: advance the trellis by one stage.
      for (int i = L - 1; i >= 1; --i) {
        next[idxX(i)] = s[idxX(i - 1)];
        next[idxPrev0(i)] = s[idxPrev0(i - 1)];
        next[idxPrev1(i)] = s[idxPrev1(i - 1)];
      }
      next[idxX(0)] = xNew;
      next[idxPrev0(0)] = acs.prev0;
      next[idxPrev1(0)] = acs.prev1;

      // Traceback: L-1 hops through the *new* stages.
      int state = acs.tracebackStart;
      for (int i = 0; i < L - 1; ++i) {
        state = (state == 0) ? next[idxPrev0(i)] : next[idxPrev1(i)];
      }
      const int decoded = state;
      const int flag = (decoded != next[idxX(L - 1)]) ? 1 : 0;
      next[idxFlag()] = flag;
      if (p.withErrorCounter) {
        next[idxErrs()] =
            std::min<std::int32_t>(s[idxErrs()] + flag, p.errorThreshold + 1);
      }
      out.push_back({prob, std::move(next)});
    }
  }
}

bool FullViterbiModel::atom(const dtmc::State& s, std::string_view name) const {
  if (name == "error") return s[idxFlag()] == 1;
  return false;
}

double FullViterbiModel::stateReward(const dtmc::State& s,
                                     std::string_view name) const {
  if (name.empty() || name == "default" || name == "flag") {
    return static_cast<double>(s[idxFlag()]);
  }
  return 0.0;
}

}  // namespace mimostat::viterbi
