#include "viterbi/sim.hpp"

#include <deque>

#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "viterbi/decoder.hpp"

namespace mimostat::viterbi {

SimulationResult simulate(const ViterbiParams& params, std::uint64_t steps,
                          std::uint64_t seed) {
  obs::Span span("viterbi.sim");
  util::Xoshiro256 rng(seed);
  const TrellisKernel kernel(params);
  Decoder decoder(kernel);

  const int L = params.tracebackLength;
  // Delay line of the actual transmitted bits; bits before time 0 are 0,
  // matching the models' all-zero initial trellis.
  std::deque<int> history(static_cast<std::size_t>(L), 0);

  SimulationResult result;
  int nonConvergentRun = 0;

  int prevBit = 0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    const int bit = rng.nextBit() ? 1 : 0;
    const int q = kernel.channel().sample(bit, prevBit, rng);
    const int decoded = decoder.step(q);

    history.push_front(bit);
    // After the push, history[i] is the bit from i steps ago; the decoder's
    // decision latency is L-1.
    const int actual = history[static_cast<std::size_t>(L - 1)];
    history.pop_back();

    result.bitErrors.add(decoded != actual);

    if (decoder.lastStageConvergent()) {
      nonConvergentRun = 0;
    } else if (nonConvergentRun <= L) {
      ++nonConvergentRun;
    }
    result.nonConvergent.add(nonConvergentRun > L);

    prevBit = bit;
  }
  result.seconds = span.stopSeconds();
  return result;
}

}  // namespace mimostat::viterbi
