// Bit-accurate RTL-style Viterbi decoder, used as the Monte-Carlo baseline.
//
// The decoder starts "warm" with an all-zero trellis history (matching the
// DTMC models' initial state) and emits one decoded bit per step with a
// decoding latency of L-1: the bit returned at step n is the decision for
// the data bit transmitted at step n-(L-1) (bits before time 0 are 0).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "viterbi/code.hpp"

namespace mimostat::viterbi {

class Decoder {
 public:
  explicit Decoder(const TrellisKernel& kernel);

  /// Process one quantized sample cell; returns the decoded (delayed) bit.
  int step(int q);

  /// Reset to the initial (all-zero history, pm0=0, pm1=pmCap) state.
  void reset();

  [[nodiscard]] std::int32_t pm0() const { return pm0_; }
  [[nodiscard]] std::int32_t pm1() const { return pm1_; }

  /// Whether the most recent step produced a convergent trellis stage
  /// (prev0 == prev1).
  [[nodiscard]] bool lastStageConvergent() const { return lastConvergent_; }

 private:
  const TrellisKernel& kernel_;
  std::int32_t pm0_ = 0;
  std::int32_t pm1_ = 0;
  // Stage 0 = newest. Fixed length L.
  std::vector<int> prev0_;
  std::vector<int> prev1_;
  bool lastConvergent_ = false;
};

}  // namespace mimostat::viterbi
