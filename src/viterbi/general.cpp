#include "viterbi/general.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <limits>

#include "comm/snr.hpp"
#include "util/fixed_point.hpp"

namespace mimostat::viterbi {

GeneralTrellis::GeneralTrellis(const GeneralParams& params)
    : params_(params),
      memory_(static_cast<int>(params.taps.size()) - 1),
      quantizer_(params.quantLevels, params.quantRange),
      sigma_(0.0) {
  assert(memory_ >= 1 && memory_ <= 16);
  double signalPower = 0.0;
  for (const double t : params_.taps) signalPower += t * t;
  sigma_ = comm::noiseSigma(params_.snrDb, signalPower);

  bm_.resize(static_cast<std::size_t>(params_.quantLevels) * 2 *
             static_cast<std::size_t>(numStates()));
  for (int q = 0; q < params_.quantLevels; ++q) {
    for (int b = 0; b < 2; ++b) {
      for (int state = 0; state < numStates(); ++state) {
        const double distance =
            std::fabs(quantizer_.value(q) - level(b, state));
        bm_[static_cast<std::size_t>(q) * 2 *
                static_cast<std::size_t>(numStates()) +
            static_cast<std::size_t>(b) * static_cast<std::size_t>(numStates()) +
            static_cast<std::size_t>(state)] =
            util::quantizeMagnitude(distance, params_.bmScale, params_.bmCap);
      }
    }
  }
}

double GeneralTrellis::level(int b, int state) const {
  double acc = params_.taps[0] * comm::bpsk(b);
  for (int i = 1; i <= memory_; ++i) {
    const int bit = (state >> (i - 1)) & 1;
    acc += params_.taps[static_cast<std::size_t>(i)] * comm::bpsk(bit);
  }
  return acc;
}

double GeneralTrellis::cellProb(int b, int state, int cell) const {
  return quantizer_.cellProbabilities(level(b, state), sigma_)
      [static_cast<std::size_t>(cell)];
}

int GeneralTrellis::sample(int b, int state, util::Xoshiro256& rng) const {
  return quantizer_.index(level(b, state) + sigma_ * rng.nextGaussian());
}

GeneralDecoder::GeneralDecoder(const GeneralTrellis& trellis)
    : trellis_(trellis) {
  reset();
}

void GeneralDecoder::reset() {
  const int n = trellis_.numStates();
  pm_.assign(static_cast<std::size_t>(n), trellis_.params().pmCap);
  pm_[0] = 0;  // all-zero history at start
  ptr_.assign(static_cast<std::size_t>(trellis_.params().tracebackLength),
              std::vector<int>(static_cast<std::size_t>(n), 0));
}

int GeneralDecoder::step(int q) {
  const int n = trellis_.numStates();
  const int cap = trellis_.params().pmCap;

  std::vector<std::int32_t> next(static_cast<std::size_t>(n), 0);
  std::vector<int> chosen(static_cast<std::size_t>(n), 0);
  std::int32_t best = std::numeric_limits<std::int32_t>::max();
  for (int ns = 0; ns < n; ++ns) {
    const int b = ns & 1;
    std::int32_t bestMetric = std::numeric_limits<std::int32_t>::max();
    int bestOldest = 0;
    for (int oldest = 0; oldest < 2; ++oldest) {
      const int pred = trellis_.predecessor(ns, oldest);
      const std::int32_t candidate =
          pm_[static_cast<std::size_t>(pred)] + trellis_.branchMetric(q, b, pred);
      if (candidate < bestMetric) {  // tie prefers oldest=0 (pred = ns>>1)
        bestMetric = candidate;
        bestOldest = oldest;
      }
    }
    next[static_cast<std::size_t>(ns)] = bestMetric;
    chosen[static_cast<std::size_t>(ns)] = bestOldest;
    best = std::min(best, bestMetric);
  }
  for (int ns = 0; ns < n; ++ns) {
    next[static_cast<std::size_t>(ns)] = util::clampI32(
        next[static_cast<std::size_t>(ns)] - best, 0, cap);
  }
  pm_ = std::move(next);

  // Writeback: newest pointer stage at the front.
  ptr_.pop_back();
  ptr_.insert(ptr_.begin(), std::move(chosen));

  // Traceback: argmin state (ties to the smallest index), L-1 hops.
  int state = 0;
  for (int s = 1; s < n; ++s) {
    if (pm_[static_cast<std::size_t>(s)] < pm_[static_cast<std::size_t>(state)]) {
      state = s;
    }
  }
  const int hops = trellis_.params().tracebackLength - 1;
  for (int i = 0; i < hops; ++i) {
    const int oldest = ptr_[static_cast<std::size_t>(i)]
                           [static_cast<std::size_t>(state)];
    state = trellis_.predecessor(state, oldest);
  }
  return state & 1;  // most recent bit of the reached history
}

std::vector<int> GeneralDecoder::decodeBlock(
    const std::vector<int>& samples) const {
  const int n = trellis_.numStates();
  // Unsaturated metrics so the block decode is exactly ML.
  std::vector<std::int64_t> pm(static_cast<std::size_t>(n),
                               std::numeric_limits<std::int64_t>::max() / 4);
  pm[0] = 0;
  std::vector<std::vector<int>> pointers;
  pointers.reserve(samples.size());

  for (const int q : samples) {
    std::vector<std::int64_t> next(static_cast<std::size_t>(n), 0);
    std::vector<int> chosen(static_cast<std::size_t>(n), 0);
    for (int ns = 0; ns < n; ++ns) {
      const int b = ns & 1;
      std::int64_t bestMetric = std::numeric_limits<std::int64_t>::max();
      int bestOldest = 0;
      for (int oldest = 0; oldest < 2; ++oldest) {
        const int pred = trellis_.predecessor(ns, oldest);
        const std::int64_t candidate =
            pm[static_cast<std::size_t>(pred)] +
            trellis_.branchMetric(q, b, pred);
        if (candidate < bestMetric) {
          bestMetric = candidate;
          bestOldest = oldest;
        }
      }
      next[static_cast<std::size_t>(ns)] = bestMetric;
      chosen[static_cast<std::size_t>(ns)] = bestOldest;
    }
    pm = std::move(next);
    pointers.push_back(std::move(chosen));
  }

  // Trace the single best path from the best end state.
  int state = 0;
  for (int s = 1; s < n; ++s) {
    if (pm[static_cast<std::size_t>(s)] < pm[static_cast<std::size_t>(state)]) {
      state = s;
    }
  }
  std::vector<int> bits(samples.size(), 0);
  for (std::size_t t = samples.size(); t-- > 0;) {
    bits[t] = state & 1;
    const int oldest = pointers[t][static_cast<std::size_t>(state)];
    state = trellis_.predecessor(state, oldest);
  }
  return bits;
}

std::int64_t GeneralDecoder::sequenceMetric(
    const std::vector<int>& bits, const std::vector<int>& samples) const {
  assert(bits.size() == samples.size());
  std::int64_t total = 0;
  int state = 0;  // zero pre-history
  for (std::size_t t = 0; t < bits.size(); ++t) {
    total += trellis_.branchMetric(samples[t], bits[t], state);
    state = trellis_.nextState(bits[t], state);
  }
  return total;
}

GeneralSimulationResult simulateGeneral(const GeneralParams& params,
                                        std::uint64_t steps,
                                        std::uint64_t seed) {
  const GeneralTrellis trellis(params);
  GeneralDecoder decoder(trellis);
  util::Xoshiro256 rng(seed);

  const int latency = params.tracebackLength - 1;
  std::deque<int> history(static_cast<std::size_t>(latency) + 1, 0);

  GeneralSimulationResult result;
  int channelState = 0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    const int bit = rng.nextBit() ? 1 : 0;
    const int q = trellis.sample(bit, channelState, rng);
    channelState = trellis.nextState(bit, channelState);
    const int decoded = decoder.step(q);
    history.push_front(bit);
    const int actual = history[static_cast<std::size_t>(latency)];
    history.pop_back();
    ++result.steps;
    if (decoded != actual) ++result.errors;
  }
  return result;
}

}  // namespace mimostat::viterbi
