// Full DTMC model M of the Viterbi decoder (paper §IV-A-1).
//
// State variables (Eq. 2-5):
//   pm0, pm1              normalized saturating path metrics
//   x_0 .. x_{L-1}        actual data bits of the last L time steps
//   prev0_0 .. prev0_{L-1},
//   prev1_0 .. prev1_{L-1} trellis predecessor pointers per stage
//   flag                  decoded bit in error?
//   errs (optional)       saturating error counter for the P3 property
//
// Transition (one RTL clock): draw x0' ~ Bernoulli(1/2) and the quantized
// sample q with the Gaussian cell probability given (x0', x0); run ACS;
// shift the trellis; traceback; compare against x_{L-1}.
#pragma once

#include "dtmc/model.hpp"
#include "viterbi/code.hpp"

namespace mimostat::viterbi {

class FullViterbiModel : public dtmc::Model {
 public:
  explicit FullViterbiModel(const ViterbiParams& params);

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override;
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override;
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override;
  /// Atom "error" = (flag == 1).
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override;
  /// Default reward = flag (the paper's reward model for P2).
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view name) const override;

  [[nodiscard]] const ViterbiParams& params() const { return kernel_.params(); }
  [[nodiscard]] const TrellisKernel& kernel() const { return kernel_; }

  // Variable indices (exposed for the abstraction function and tests).
  [[nodiscard]] std::size_t idxPm0() const { return 0; }
  [[nodiscard]] std::size_t idxPm1() const { return 1; }
  [[nodiscard]] std::size_t idxX(int stage) const {
    return 2 + static_cast<std::size_t>(stage);
  }
  [[nodiscard]] std::size_t idxPrev0(int stage) const {
    return 2 + static_cast<std::size_t>(traceLength()) +
           static_cast<std::size_t>(stage);
  }
  [[nodiscard]] std::size_t idxPrev1(int stage) const {
    return 2 + 2 * static_cast<std::size_t>(traceLength()) +
           static_cast<std::size_t>(stage);
  }
  [[nodiscard]] std::size_t idxFlag() const {
    return 2 + 3 * static_cast<std::size_t>(traceLength());
  }
  [[nodiscard]] std::size_t idxErrs() const { return idxFlag() + 1; }

 private:
  [[nodiscard]] int traceLength() const {
    return kernel_.params().tracebackLength;
  }

  TrellisKernel kernel_;
};

}  // namespace mimostat::viterbi
