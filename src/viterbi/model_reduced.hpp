// Reduced DTMC model M_R of the Viterbi decoder (paper §IV-A-3).
//
// The error properties P1-P3 only need to know whether the decoded bit is
// wrong, not its value. Per trellis stage i we therefore replace
// (prev0_i, prev1_i, x_i) with two *relative* bits (the paper's c_i, w_i):
//
//   a_i = prev pointer taken from the CORRECT state hypothesis, wrong?
//         ( = prev_{x_i, i} XOR x_{i+1} )
//   b_i = prev pointer taken from the WRONG state hypothesis, wrong?
//         ( = prev_{!x_i, i} XOR x_{i+1} )
//
// Traceback then runs in relative coordinates: e_0 = (traceback start !=
// actual current bit), e_{i+1} = e_i ? b_i : a_i, and flag = e_{L-1}. The
// stored past data bits x_1..x_{L-1} disappear from the state vector —
// exactly the reduction the paper proves sound via the Strong Lumping
// Theorem. Gamma_p (the probabilistic kernel) only reads (pm0, pm1, x_0),
// all of which are retained, so the quotient preserves probabilities.
#pragma once

#include "dtmc/model.hpp"
#include "viterbi/code.hpp"

namespace mimostat::viterbi {

class ReducedViterbiModel : public dtmc::Model {
 public:
  explicit ReducedViterbiModel(const ViterbiParams& params);

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override;
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override;
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override;
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override;
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view name) const override;

  [[nodiscard]] const ViterbiParams& params() const { return kernel_.params(); }
  [[nodiscard]] const TrellisKernel& kernel() const { return kernel_; }

  // Variable indices. Stages run 0..L-2 (stage L-1's pointers are never
  // consulted by a traceback of L-1 hops, so they are dropped as well).
  [[nodiscard]] std::size_t idxPm0() const { return 0; }
  [[nodiscard]] std::size_t idxPm1() const { return 1; }
  [[nodiscard]] std::size_t idxX0() const { return 2; }
  [[nodiscard]] std::size_t idxA(int stage) const {
    return 3 + static_cast<std::size_t>(stage);
  }
  [[nodiscard]] std::size_t idxB(int stage) const {
    return 3 + static_cast<std::size_t>(numStages()) +
           static_cast<std::size_t>(stage);
  }
  [[nodiscard]] std::size_t idxFlag() const {
    return 3 + 2 * static_cast<std::size_t>(numStages());
  }
  [[nodiscard]] std::size_t idxErrs() const { return idxFlag() + 1; }

  /// Number of relative stages kept (L-1).
  [[nodiscard]] int numStages() const {
    return kernel_.params().tracebackLength - 1;
  }

 private:
  TrellisKernel kernel_;
};

}  // namespace mimostat::viterbi
