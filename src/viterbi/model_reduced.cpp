#include "viterbi/model_reduced.hpp"

#include <algorithm>
#include <cassert>

namespace mimostat::viterbi {

ReducedViterbiModel::ReducedViterbiModel(const ViterbiParams& params)
    : kernel_(params) {}

std::vector<dtmc::VarSpec> ReducedViterbiModel::variables() const {
  const ViterbiParams& p = kernel_.params();
  const int stages = numStages();
  std::vector<dtmc::VarSpec> vars;
  vars.push_back({"pm0", 0, p.pmCap});
  vars.push_back({"pm1", 0, p.pmCap});
  vars.push_back({"x0", 0, 1});
  for (int i = 0; i < stages; ++i) {
    vars.push_back({"a" + std::to_string(i), 0, 1});
  }
  for (int i = 0; i < stages; ++i) {
    vars.push_back({"b" + std::to_string(i), 0, 1});
  }
  vars.push_back({"flag", 0, 1});
  if (p.withErrorCounter) {
    vars.push_back({"errs", 0, p.errorThreshold + 1});
  }
  return vars;
}

std::vector<dtmc::State> ReducedViterbiModel::initialStates() const {
  const ViterbiParams& p = kernel_.params();
  dtmc::State s(variables().size(), 0);
  s[idxPm1()] = p.pmCap;
  return {s};
}

void ReducedViterbiModel::transitions(const dtmc::State& s,
                                      std::vector<dtmc::Transition>& out) const {
  const ViterbiParams& p = kernel_.params();
  const int stages = numStages();
  const std::int32_t pm0 = s[idxPm0()];
  const std::int32_t pm1 = s[idxPm1()];
  const int xPrev = s[idxX0()];

  for (int xNew = 0; xNew < 2; ++xNew) {
    for (int q = 0; q < p.quantLevels; ++q) {
      const double prob = 0.5 * kernel_.cellProb(xNew, xPrev, q);
      if (prob <= 0.0) continue;

      const AcsResult acs = kernel_.acs(pm0, pm1, q);
      dtmc::State next(s);
      next[idxPm0()] = acs.pm0;
      next[idxPm1()] = acs.pm1;
      next[idxX0()] = xNew;

      // New stage-0 relative bits: the pointer taken from the true current
      // state (xNew) is correct iff it equals the true previous bit (xPrev).
      const int fromCorrect = (xNew == 0) ? acs.prev0 : acs.prev1;
      const int fromWrong = (xNew == 0) ? acs.prev1 : acs.prev0;
      for (int i = stages - 1; i >= 1; --i) {
        next[idxA(i)] = s[idxA(i - 1)];
        next[idxB(i)] = s[idxB(i - 1)];
      }
      next[idxA(0)] = (fromCorrect != xPrev) ? 1 : 0;
      next[idxB(0)] = (fromWrong != xPrev) ? 1 : 0;

      // Traceback in relative coordinates.
      int e = (acs.tracebackStart != xNew) ? 1 : 0;
      for (int i = 0; i < stages; ++i) {
        e = e ? next[idxB(i)] : next[idxA(i)];
      }
      next[idxFlag()] = e;
      if (p.withErrorCounter) {
        next[idxErrs()] =
            std::min<std::int32_t>(s[idxErrs()] + e, p.errorThreshold + 1);
      }
      out.push_back({prob, std::move(next)});
    }
  }
}

bool ReducedViterbiModel::atom(const dtmc::State& s,
                               std::string_view name) const {
  if (name == "error") return s[idxFlag()] == 1;
  return false;
}

double ReducedViterbiModel::stateReward(const dtmc::State& s,
                                        std::string_view name) const {
  if (name.empty() || name == "default" || name == "flag") {
    return static_cast<double>(s[idxFlag()]);
  }
  return 0.0;
}

}  // namespace mimostat::viterbi
