// The abstraction function F_abs mapping full-model states to reduced-model
// states (paper Eq. 6/10), and the equivalence check between the two flag
// functions (paper Eq. 5 vs Eq. 9).
//
// The paper discharges the Boolean equivalence with Synopsys Formality; we
// substitute an exhaustive equivalence checker — sound and complete here
// because the combined input space of the two functions is small
// (2 * 2^L * 4^(L-1) assignments for traceback length L).
#pragma once

#include <cstdint>

#include "dtmc/state.hpp"
#include "viterbi/model_full.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat::viterbi {

/// Map a full-model state to the corresponding reduced-model state
/// (the equivalence-class representative). Both models must be built from
/// the same ViterbiParams.
[[nodiscard]] dtmc::State abstractState(const FullViterbiModel& full,
                                        const ReducedViterbiModel& reduced,
                                        const dtmc::State& fullState);

struct EquivalenceReport {
  bool equivalent = true;
  std::uint64_t assignmentsChecked = 0;
  /// First counterexample when not equivalent (full-model flag inputs).
  std::uint64_t counterexample = 0;
};

/// Exhaustively verify that the full model's flag function (traceback over
/// prev pointers compared against x_{L-1}, Eq. 5) equals the reduced
/// model's flag function (relative-coordinate traceback, Eq. 9) under
/// F_abs, for every assignment of traceback start, data bits and prev
/// pointers. This is the paper's "Part A" proof obligation.
[[nodiscard]] EquivalenceReport verifyFlagEquivalence(int tracebackLength);

}  // namespace mimostat::viterbi
