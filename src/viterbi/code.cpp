#include "viterbi/code.hpp"

#include <cassert>
#include <cmath>

#include "util/fixed_point.hpp"

namespace mimostat::viterbi {

TrellisKernel::TrellisKernel(const ViterbiParams& params)
    : params_(params),
      isi_({1.0, 1.0}),
      channel_(isi_, comm::UniformQuantizer(params.quantLevels, params.quantRange),
               params.snrDb) {
  assert(params_.tracebackLength >= 2);
  assert(params_.pmCap >= 1);
  bm_.resize(static_cast<std::size_t>(params_.quantLevels));
  const comm::UniformQuantizer& quant = channel_.quantizer();
  for (int q = 0; q < params_.quantLevels; ++q) {
    for (int u = 0; u < 2; ++u) {
      for (int v = 0; v < 2; ++v) {
        const double expected = isi_.level2(/*current=*/v, /*previous=*/u);
        bm_[static_cast<std::size_t>(q)][u][v] = util::quantizeMagnitude(
            std::fabs(quant.value(q) - expected), params_.bmScale,
            params_.bmCap);
      }
    }
  }
}

AcsResult TrellisKernel::acs(std::int32_t pm0, std::int32_t pm1, int q) const {
  AcsResult r;
  const std::int32_t cand00 = pm0 + branchMetric(q, 0, 0);
  const std::int32_t cand10 = pm1 + branchMetric(q, 1, 0);
  const std::int32_t cand01 = pm0 + branchMetric(q, 0, 1);
  const std::int32_t cand11 = pm1 + branchMetric(q, 1, 1);

  std::int32_t new0 = 0;
  if (cand00 <= cand10) {
    new0 = cand00;
    r.prev0 = 0;
  } else {
    new0 = cand10;
    r.prev0 = 1;
  }
  std::int32_t new1 = 0;
  if (cand01 <= cand11) {
    new1 = cand01;
    r.prev1 = 0;
  } else {
    new1 = cand11;
    r.prev1 = 1;
  }

  // Min-normalisation (standard RTL path-metric rescaling) + saturation.
  const std::int32_t mn = std::min(new0, new1);
  r.pm0 = util::clampI32(new0 - mn, 0, params_.pmCap);
  r.pm1 = util::clampI32(new1 - mn, 0, params_.pmCap);
  r.tracebackStart = (r.pm0 <= r.pm1) ? 0 : 1;
  return r;
}

int traceback(int start, const std::vector<int>& prev0Stages,
              const std::vector<int>& prev1Stages, int hops) {
  assert(prev0Stages.size() == prev1Stages.size());
  assert(hops >= 0 && static_cast<std::size_t>(hops) <= prev0Stages.size());
  int state = start;
  for (int i = 0; i < hops; ++i) {
    state = (state == 0) ? prev0Stages[static_cast<std::size_t>(i)]
                         : prev1Stages[static_cast<std::size_t>(i)];
  }
  return state;
}

}  // namespace mimostat::viterbi
