// General-memory Viterbi decoding over FIR ISI channels.
//
// The paper's case study fixes the channel memory at m=1 (two trellis
// states) but notes the methodology is not limited to it. This module
// generalises the RTL decoder to any FIR channel s[n] = sum_i taps[i]*a[n-i]
// with memory m = taps.size()-1 and a 2^m-state trellis, sharing the
// quantized-branch-metric / saturating-ACS conventions of TrellisKernel
// (for m=1 the two decoders are step-for-step identical — tested).
//
// State convention: trellis state bit j holds the data bit from j+1 steps
// ago (bit 0 = most recent). Consuming bit b in state h moves to
// ((h<<1)|b) & (2^m - 1).
#pragma once

#include <cstdint>
#include <vector>

#include "comm/channel.hpp"
#include "comm/quantizer.hpp"
#include "util/rng.hpp"

namespace mimostat::viterbi {

struct GeneralParams {
  std::vector<double> taps{1.0, 1.0};  ///< FIR taps; memory = size()-1
  double snrDb = 5.0;
  int quantLevels = 8;
  double quantRange = 4.0;
  int tracebackLength = 12;  ///< streaming decode latency is L-1
  int pmCap = 31;            ///< path-metric saturation
  int bmCap = 15;            ///< branch-metric saturation
  double bmScale = 2.0;
};

class GeneralTrellis {
 public:
  explicit GeneralTrellis(const GeneralParams& params);

  [[nodiscard]] const GeneralParams& params() const { return params_; }
  [[nodiscard]] int memory() const { return memory_; }
  [[nodiscard]] int numStates() const { return 1 << memory_; }
  [[nodiscard]] const comm::UniformQuantizer& quantizer() const {
    return quantizer_;
  }
  [[nodiscard]] double sigma() const { return sigma_; }

  /// Noiseless channel output when bit `b` is sent with history `state`.
  [[nodiscard]] double level(int b, int state) const;

  /// Trellis successor state.
  [[nodiscard]] int nextState(int b, int state) const {
    return ((state << 1) | b) & (numStates() - 1);
  }

  /// The two predecessors of `state` are predecessor(state, 0/1).
  [[nodiscard]] int predecessor(int state, int oldestBit) const {
    return (state >> 1) | (oldestBit << (memory_ - 1));
  }

  /// Quantized branch metric of (bit b, history state) given sample cell q.
  [[nodiscard]] std::int32_t branchMetric(int q, int b, int state) const {
    return bm_[static_cast<std::size_t>(q) * static_cast<std::size_t>(2) *
                   static_cast<std::size_t>(numStates()) +
               static_cast<std::size_t>(b) *
                   static_cast<std::size_t>(numStates()) +
               static_cast<std::size_t>(state)];
  }

  /// P(q = cell | bit b, history state) — exact Gaussian cell probability.
  [[nodiscard]] double cellProb(int b, int state, int cell) const;

  /// Sample one quantized observation through the analog path.
  [[nodiscard]] int sample(int b, int state, util::Xoshiro256& rng) const;

 private:
  GeneralParams params_;
  int memory_;
  comm::UniformQuantizer quantizer_;
  double sigma_;
  std::vector<std::int32_t> bm_;  // [q][b][state]
};

/// Streaming RTL-style decoder over a GeneralTrellis (saturating ACS with
/// min-normalisation, finite traceback of length L).
class GeneralDecoder {
 public:
  explicit GeneralDecoder(const GeneralTrellis& trellis);

  /// Process one quantized sample; returns the decoded bit with latency
  /// L-1 (bits before time 0 are 0; warm all-zero start).
  int step(int q);
  void reset();

  [[nodiscard]] std::int32_t pathMetric(int state) const {
    return pm_[static_cast<std::size_t>(state)];
  }

  /// Full-block Viterbi: consume all samples, then trace back the single
  /// best path from the best end state. With unsaturated metrics this is
  /// exactly maximum-likelihood sequence estimation (Forney), which the
  /// tests verify against brute-force enumeration.
  [[nodiscard]] std::vector<int> decodeBlock(const std::vector<int>& samples) const;

  /// Total quantized path metric of a candidate bit sequence (zero
  /// pre-history) — the brute-force comparison uses this too.
  [[nodiscard]] std::int64_t sequenceMetric(const std::vector<int>& bits,
                                            const std::vector<int>& samples) const;

 private:
  const GeneralTrellis& trellis_;
  std::vector<std::int32_t> pm_;
  // Ring of pointer stages, newest first. ptr_[stage][state] = chosen
  // oldest-history bit selecting the predecessor.
  std::vector<std::vector<int>> ptr_;
};

/// Monte-Carlo BER of the streaming general decoder.
struct GeneralSimulationResult {
  std::uint64_t steps = 0;
  std::uint64_t errors = 0;

  [[nodiscard]] double ber() const {
    return steps == 0 ? 0.0
                      : static_cast<double>(errors) /
                            static_cast<double>(steps);
  }
};

[[nodiscard]] GeneralSimulationResult simulateGeneral(
    const GeneralParams& params, std::uint64_t steps, std::uint64_t seed);

}  // namespace mimostat::viterbi
