// Monte-Carlo baseline for the Viterbi case study (the paper's "simulate
// many cycles" comparator): drive the bit-accurate decoder with random data
// through the analog AWGN + quantizer path and estimate the BER and the
// traceback non-convergence rate.
#pragma once

#include <cstdint>

#include "stats/estimator.hpp"
#include "viterbi/code.hpp"

namespace mimostat::viterbi {

struct SimulationResult {
  stats::BernoulliEstimator bitErrors;      ///< per-step decoded-bit errors
  stats::BernoulliEstimator nonConvergent;  ///< per-step count>L events
  double seconds = 0.0;
};

/// Simulate `steps` RTL clocks with the given seed. The decoder starts in
/// the same warm all-zero state as the DTMC models, so for large `steps`
/// bitErrors.estimate() converges to the model-checked P2 and
/// nonConvergent.estimate() to C1.
[[nodiscard]] SimulationResult simulate(const ViterbiParams& params,
                                        std::uint64_t steps,
                                        std::uint64_t seed);

}  // namespace mimostat::viterbi
