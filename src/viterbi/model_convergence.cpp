#include "viterbi/model_convergence.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>

namespace mimostat::viterbi {

ConvergenceViterbiModel::ConvergenceViterbiModel(const ViterbiParams& params,
                                                 int maxCount)
    : kernel_(params), maxCount_(maxCount) {
  assert(maxCount_ > params.tracebackLength);
}

std::vector<dtmc::VarSpec> ConvergenceViterbiModel::variables() const {
  const ViterbiParams& p = kernel_.params();
  return {
      {"pm0", 0, p.pmCap},
      {"pm1", 0, p.pmCap},
      {"x0", 0, 1},
      {"count", 0, maxCount_},
  };
}

std::vector<dtmc::State> ConvergenceViterbiModel::initialStates() const {
  const ViterbiParams& p = kernel_.params();
  dtmc::State s(variables().size(), 0);
  s[idxPm1()] = p.pmCap;
  return {s};
}

void ConvergenceViterbiModel::transitions(
    const dtmc::State& s, std::vector<dtmc::Transition>& out) const {
  const ViterbiParams& p = kernel_.params();
  const std::int32_t pm0 = s[idxPm0()];
  const std::int32_t pm1 = s[idxPm1()];
  const int xPrev = s[idxX0()];
  const std::int32_t count = s[idxCount()];

  for (int xNew = 0; xNew < 2; ++xNew) {
    for (int q = 0; q < p.quantLevels; ++q) {
      const double prob = 0.5 * kernel_.cellProb(xNew, xPrev, q);
      if (prob <= 0.0) continue;
      const AcsResult acs = kernel_.acs(pm0, pm1, q);
      dtmc::State next(s);
      next[idxPm0()] = acs.pm0;
      next[idxPm1()] = acs.pm1;
      next[idxX0()] = xNew;
      const bool convergent = acs.prev0 == acs.prev1;
      next[idxCount()] =
          convergent ? 0 : std::min<std::int32_t>(count + 1, maxCount_);
      out.push_back({prob, std::move(next)});
    }
  }
}

bool ConvergenceViterbiModel::atom(const dtmc::State& s,
                                   std::string_view name) const {
  if (name == "nonconv") {
    return s[idxCount()] > kernel_.params().tracebackLength;
  }
  return false;
}

double ConvergenceViterbiModel::stateReward(const dtmc::State& s,
                                            std::string_view name) const {
  if (name.empty() || name == "default") {
    return s[idxCount()] > kernel_.params().tracebackLength ? 1.0 : 0.0;
  }
  if (name.size() > 2 && name.substr(0, 2) == "nc") {
    int k = 0;
    const auto* begin = name.data() + 2;
    const auto* end = name.data() + name.size();
    if (std::from_chars(begin, end, k).ec == std::errc{} && k < maxCount_) {
      return s[idxCount()] > k ? 1.0 : 0.0;
    }
  }
  return 0.0;
}

}  // namespace mimostat::viterbi
