#include "viterbi/fabs.hpp"

#include <cassert>
#include <vector>

namespace mimostat::viterbi {

dtmc::State abstractState(const FullViterbiModel& full,
                          const ReducedViterbiModel& reduced,
                          const dtmc::State& fullState) {
  const int L = full.params().tracebackLength;
  assert(reduced.params().tracebackLength == L);
  assert(full.params().withErrorCounter == reduced.params().withErrorCounter);

  dtmc::State r(reduced.variables().size(), 0);
  r[reduced.idxPm0()] = fullState[full.idxPm0()];
  r[reduced.idxPm1()] = fullState[full.idxPm1()];
  r[reduced.idxX0()] = fullState[full.idxX(0)];
  for (int i = 0; i < L - 1; ++i) {
    const int xi = fullState[full.idxX(i)];
    const int xNext = fullState[full.idxX(i + 1)];
    const int fromCorrect =
        (xi == 0) ? fullState[full.idxPrev0(i)] : fullState[full.idxPrev1(i)];
    const int fromWrong =
        (xi == 0) ? fullState[full.idxPrev1(i)] : fullState[full.idxPrev0(i)];
    r[reduced.idxA(i)] = (fromCorrect != xNext) ? 1 : 0;
    r[reduced.idxB(i)] = (fromWrong != xNext) ? 1 : 0;
  }
  r[reduced.idxFlag()] = fullState[full.idxFlag()];
  if (full.params().withErrorCounter) {
    r[reduced.idxErrs()] = fullState[full.idxErrs()];
  }
  return r;
}

EquivalenceReport verifyFlagEquivalence(int tracebackLength) {
  const int L = tracebackLength;
  assert(L >= 2);
  const int stages = L - 1;  // traceback consults stages 0..L-2

  EquivalenceReport report;

  // Enumerate: traceback start s0 (2), data bits x_0..x_{L-1} (2^L),
  // prev0/prev1 per consulted stage (4^(L-1)).
  const std::uint64_t numX = 1ULL << L;
  const std::uint64_t numPrev = 1ULL << (2 * stages);

  std::vector<int> x(static_cast<std::size_t>(L));
  std::vector<int> prev0(static_cast<std::size_t>(stages));
  std::vector<int> prev1(static_cast<std::size_t>(stages));

  for (int s0 = 0; s0 < 2; ++s0) {
    for (std::uint64_t xBits = 0; xBits < numX; ++xBits) {
      for (int i = 0; i < L; ++i) x[i] = static_cast<int>((xBits >> i) & 1);
      for (std::uint64_t pBits = 0; pBits < numPrev; ++pBits) {
        for (int i = 0; i < stages; ++i) {
          prev0[i] = static_cast<int>((pBits >> (2 * i)) & 1);
          prev1[i] = static_cast<int>((pBits >> (2 * i + 1)) & 1);
        }

        // Eq. 5: concrete traceback, compare against x_{L-1}.
        int state = s0;
        for (int i = 0; i < stages; ++i) {
          state = (state == 0) ? prev0[i] : prev1[i];
        }
        const int flagFull = (state != x[L - 1]) ? 1 : 0;

        // Eq. 9: relative traceback over F_abs(prev, x).
        int e = (s0 != x[0]) ? 1 : 0;
        for (int i = 0; i < stages; ++i) {
          const int fromCorrect = (x[i] == 0) ? prev0[i] : prev1[i];
          const int fromWrong = (x[i] == 0) ? prev1[i] : prev0[i];
          const int a = (fromCorrect != x[i + 1]) ? 1 : 0;
          const int b = (fromWrong != x[i + 1]) ? 1 : 0;
          e = e ? b : a;
        }
        const int flagReduced = e;

        ++report.assignmentsChecked;
        if (flagFull != flagReduced) {
          report.equivalent = false;
          report.counterexample =
              (static_cast<std::uint64_t>(s0) << 62) | (xBits << 32) | pBits;
          return report;
        }
      }
    }
  }
  return report;
}

}  // namespace mimostat::viterbi
