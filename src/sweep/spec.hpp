// SweepSpec: the declarative binding from a parameter point to work.
//
// A spec names a ParamSpace, a model factory (Params -> dtmc::Model), a
// property generator (Params -> pCTL strings), and the engine RequestOptions
// shared by every point. Together with sweep::Runner it replaces the
// hand-rolled nested loops of the bench drivers: the whole of Table III is
//
//   sweep::SweepSpec spec("table3");
//   spec.space.cross(sweep::Axis::ints("T", 100, 1000, 100));
//   spec.share(model);                       // one model for every point
//   spec.properties = [](const sweep::Params& p) {
//     return std::vector<std::string>{
//         "R=? [ I=" + std::to_string(p.getInt("T")) + " ]"};
//   };
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dtmc/model.hpp"
#include "engine/request.hpp"
#include "sweep/param_space.hpp"

namespace mimostat::sweep {

/// Produces the model a point is checked against. The returned pointer is
/// kept alive by the runner for the duration of the sweep. Returning the
/// SAME shared_ptr for several points marks them as sharing one model, which
/// lets the runner coalesce their properties into a single engine request
/// (one build, one batched transient sweep). Distinct-but-structurally-equal
/// models still share one build through the engine's signature-keyed cache.
using ModelFactory =
    std::function<std::shared_ptr<const dtmc::Model>(const Params&)>;

/// Produces the pCTL property strings checked at a point. Returning an
/// empty list skips the point entirely: it contributes no result rows and
/// its model factory is never invoked (the generator runs first).
using PropertyGenerator =
    std::function<std::vector<std::string>(const Params&)>;

/// Produces the engine options for one point from the point and the spec's
/// shared base options — e.g. scale `smc.paths` with the horizon, or pick
/// the solver by expected state count. When set, points never coalesce
/// across each other (sibling points may disagree on backend/solver/seed
/// configuration), so each point issues its own engine request.
using OptionsHook = std::function<engine::RequestOptions(
    const Params&, const engine::RequestOptions&)>;

struct SweepSpec {
  SweepSpec() = default;
  explicit SweepSpec(std::string specName) : name(std::move(specName)) {}

  /// Label used in exports and logs.
  std::string name;
  ParamSpace space;
  ModelFactory factory;
  PropertyGenerator properties;
  /// Engine options applied to every point (backend, state budget, build
  /// and check options, sampling seeds...).
  engine::RequestOptions options;
  /// Optional per-point override of `options` (see OptionsHook). Runs after
  /// the property generator, so skipped points never invoke it.
  OptionsHook optionsFor;

  /// Bind every point to one shared model instance (the common case for
  /// horizon/reward-family sweeps; enables cross-point coalescing).
  SweepSpec& share(std::shared_ptr<const dtmc::Model> model) {
    factory = [model = std::move(model)](const Params&) { return model; };
    return *this;
  }

  /// Bind a fixed property list to every point.
  SweepSpec& withProperties(std::vector<std::string> fixed) {
    properties = [fixed = std::move(fixed)](const Params&) { return fixed; };
    return *this;
  }

  /// Set the per-point options hook (disables cross-point coalescing).
  SweepSpec& withOptionsHook(OptionsHook hook) {
    optionsFor = std::move(hook);
    return *this;
  }
};

}  // namespace mimostat::sweep
