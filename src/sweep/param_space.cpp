#include "sweep/param_space.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace mimostat::sweep {

std::string formatRoundTripDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string formatParamValue(const ParamValue& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(*i));
    return buffer;
  }
  if (const auto* d = std::get_if<double>(&value)) {
    return formatRoundTripDouble(*d);
  }
  return std::get<std::string>(value);
}

Params::Params(std::shared_ptr<const std::vector<std::string>> names,
               std::vector<ParamValue> values)
    : names_(std::move(names)), values_(std::move(values)) {
  if (names_ == nullptr || names_->size() != values_.size()) {
    throw std::invalid_argument("Params: names/values size mismatch");
  }
}

Params::Params(std::vector<std::string> names, std::vector<ParamValue> values)
    : Params(std::make_shared<const std::vector<std::string>>(
                 std::move(names)),
             std::move(values)) {}

const std::vector<std::string>& Params::names() const {
  static const std::vector<std::string> kEmpty;
  return names_ != nullptr ? *names_ : kEmpty;
}

bool Params::has(const std::string& name) const {
  for (const auto& n : names()) {
    if (n == name) return true;
  }
  return false;
}

const ParamValue& Params::at(const std::string& name) const {
  const std::vector<std::string>& names = this->names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) return values_[i];
  }
  throw std::out_of_range("Params: unknown parameter '" + name + "'");
}

std::int64_t Params::getInt(const std::string& name) const {
  return std::get<std::int64_t>(at(name));
}

double Params::getDouble(const std::string& name) const {
  const ParamValue& value = at(name);
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    return static_cast<double>(*i);
  }
  return std::get<double>(value);
}

const std::string& Params::getString(const std::string& name) const {
  return std::get<std::string>(at(name));
}

std::string Params::format() const {
  std::string out;
  const std::vector<std::string>& names = this->names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
    out += '=';
    out += formatParamValue(values_[i]);
  }
  return out;
}

Axis::Axis(std::string name, std::vector<ParamValue> values)
    : name_(std::move(name)), values_(std::move(values)) {
  if (name_.empty()) throw std::invalid_argument("Axis: empty name");
  if (values_.empty()) {
    throw std::invalid_argument("Axis '" + name_ + "': no values");
  }
}

Axis Axis::values(std::string name, std::vector<ParamValue> values) {
  return Axis(std::move(name), std::move(values));
}

Axis Axis::ints(std::string name, std::int64_t lo, std::int64_t hi,
                std::int64_t step) {
  if (step <= 0) {
    throw std::invalid_argument("Axis '" + name + "': step must be > 0");
  }
  std::vector<ParamValue> values;
  for (std::int64_t v = lo; v <= hi; v += step) values.emplace_back(v);
  return Axis(std::move(name), std::move(values));
}

Axis Axis::doubles(std::string name, std::vector<double> values) {
  std::vector<ParamValue> converted;
  converted.reserve(values.size());
  for (const double v : values) converted.emplace_back(v);
  return Axis(std::move(name), std::move(converted));
}

Axis Axis::strings(std::string name, std::vector<std::string> values) {
  std::vector<ParamValue> converted;
  converted.reserve(values.size());
  for (auto& v : values) converted.emplace_back(std::move(v));
  return Axis(std::move(name), std::move(converted));
}

Axis Axis::logspace(std::string name, double lo, double hi,
                    std::size_t count) {
  if (!(lo > 0.0) || !(hi > 0.0)) {
    throw std::invalid_argument("Axis '" + name +
                                "': logspace endpoints must be > 0");
  }
  if (count == 0) {
    throw std::invalid_argument("Axis '" + name + "': no values");
  }
  std::vector<ParamValue> values;
  values.reserve(count);
  if (count == 1) {
    values.emplace_back(lo);
  } else {
    const double logLo = std::log(lo);
    const double logHi = std::log(hi);
    for (std::size_t i = 0; i < count; ++i) {
      const double t =
          static_cast<double>(i) / static_cast<double>(count - 1);
      values.emplace_back(std::exp(logLo + t * (logHi - logLo)));
    }
  }
  return Axis(std::move(name), std::move(values));
}

ParamSpace& ParamSpace::cross(Axis axis) {
  return zip({std::move(axis)});
}

ParamSpace& ParamSpace::zip(std::vector<Axis> axes) {
  if (axes.empty()) {
    throw std::invalid_argument("ParamSpace::zip: no axes");
  }
  for (const auto& axis : axes) {
    if (axis.size() != axes.front().size()) {
      throw std::invalid_argument(
          "ParamSpace::zip: axes '" + axes.front().name() + "' and '" +
          axis.name() + "' have different lengths");
    }
  }
  std::unordered_set<std::string> seen;
  for (const auto& block : blocks_) {
    for (const auto& axis : block.axes) seen.insert(axis.name());
  }
  for (const auto& axis : axes) {
    if (!seen.insert(axis.name()).second) {
      throw std::invalid_argument("ParamSpace: duplicate axis '" +
                                  axis.name() + "'");
    }
  }
  blocks_.push_back(Block{std::move(axes)});
  return *this;
}

ParamSpace& ParamSpace::filter(ParamFilter predicate) {
  if (!predicate) {
    throw std::invalid_argument("ParamSpace::filter: empty predicate");
  }
  filters_.push_back(std::move(predicate));
  return *this;
}

std::vector<std::string> ParamSpace::axisNames() const {
  std::vector<std::string> names;
  for (const auto& block : blocks_) {
    for (const auto& axis : block.axes) names.push_back(axis.name());
  }
  return names;
}

std::size_t ParamSpace::gridSize() const {
  if (blocks_.empty()) return 0;
  std::size_t total = 1;
  for (const auto& block : blocks_) total *= block.size();
  return total;
}

std::vector<Params> ParamSpace::points() const {
  std::vector<Params> out;
  if (blocks_.empty()) return out;
  // One shared name list for every point of the enumeration.
  const auto names =
      std::make_shared<const std::vector<std::string>>(axisNames());

  // Odometer over the blocks, last block fastest (row-major nested loops).
  std::vector<std::size_t> index(blocks_.size(), 0);
  for (;;) {
    std::vector<ParamValue> values;
    values.reserve(names->size());
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      for (const auto& axis : blocks_[b].axes) {
        values.push_back(axis.value(index[b]));
      }
    }
    Params point(names, std::move(values));
    bool keep = true;
    for (const auto& f : filters_) {
      if (!f(point)) {
        keep = false;
        break;
      }
    }
    if (keep) out.push_back(std::move(point));

    std::size_t b = blocks_.size();
    while (b > 0) {
      --b;
      if (++index[b] < blocks_[b].size()) break;
      index[b] = 0;
      if (b == 0) return out;
    }
  }
}

}  // namespace mimostat::sweep
