#include "sweep/result_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace mimostat::sweep {

namespace {

/// Alias for the subsystem-wide round-trip formatter: value columns render
/// through the exact same code path as double param columns.
std::string formatDouble(double value) { return formatRoundTripDouble(value); }

/// CSV field: quoted (with doubled quotes) only when it contains a
/// delimiter, so numeric columns stay bare.
std::string csvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n\r") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string jsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// JSON number; non-finite doubles have no JSON spelling and become null.
std::string jsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  return formatDouble(value);
}

std::string jsonParamValue(const ParamValue& value) {
  if (const auto* s = std::get_if<std::string>(&value)) {
    return "\"" + jsonEscape(*s) + "\"";
  }
  if (const auto* d = std::get_if<double>(&value)) return jsonNumber(*d);
  return formatParamValue(value);
}

/// One opt-in diagnostic CSV column. The table below is sorted by name and
/// must stay sorted: header order is NAME order, not append order, so
/// adding a counter can never reshuffle existing columns under a consumer
/// (a test asserts the ordering).
struct DiagnosticColumn {
  const char* name;
  std::string (*value)(const ResultRow& row);
};

constexpr DiagnosticColumn kDiagnosticColumns[] = {
    {"build_seconds",
     [](const ResultRow& r) { return formatDouble(r.buildSeconds); }},
    {"cache_hit",
     [](const ResultRow& r) {
       return std::string(r.cacheHit ? "true" : "false");
     }},
    {"check_seconds",
     [](const ResultRow& r) { return formatDouble(r.checkSeconds); }},
    {"reduce_states_after",
     [](const ResultRow& r) {
       return std::to_string(r.reduction.statesAfter);
     }},
    {"reduce_states_before",
     [](const ResultRow& r) {
       return std::to_string(r.reduction.statesBefore);
     }},
    {"reduced",
     [](const ResultRow& r) {
       return std::string(r.reduction.applied ? "true" : "false");
     }},
    {"simd", [](const ResultRow& r) { return csvEscape(r.plan.simdTarget); }},
    {"solver",
     [](const ResultRow& r) {
       return r.solver ? csvEscape(r.solver->solver) : std::string();
     }},
    {"solver_converged",
     [](const ResultRow& r) {
       return r.solver ? std::string(r.solver->converged ? "true" : "false")
                       : std::string();
     }},
    {"solver_iterations",
     [](const ResultRow& r) {
       return r.solver ? std::to_string(r.solver->iterations) : std::string();
     }},
    {"solver_residual",
     [](const ResultRow& r) {
       return r.solver ? formatDouble(r.solver->residual) : std::string();
     }},
    {"spmm_panels",
     [](const ResultRow& r) { return std::to_string(r.plan.spmmPanels); }},
    {"t_build",
     [](const ResultRow& r) { return formatDouble(r.timing.buildSeconds); }},
    {"t_check",
     [](const ResultRow& r) { return formatDouble(r.timing.checkSeconds); }},
    {"t_plan",
     [](const ResultRow& r) { return formatDouble(r.timing.planSeconds); }},
    {"t_queue",
     [](const ResultRow& r) { return formatDouble(r.timing.queueSeconds); }},
    {"t_reduce",
     [](const ResultRow& r) {
       return formatDouble(r.reduction.reduceSeconds);
     }},
};

}  // namespace

std::string PivotTable::format(const std::string& title) const {
  std::vector<std::string> rowLabels;
  rowLabels.reserve(rowKeys.size());
  for (const auto& key : rowKeys) rowLabels.push_back(formatParamValue(key));
  std::vector<std::string> colLabels;
  colLabels.reserve(colKeys.size());
  for (const auto& key : colKeys) colLabels.push_back(formatParamValue(key));
  return core::formatValueGrid(title, rowAxis + " \\ " + colAxis, rowLabels,
                               colLabels, values);
}

ResultTable::ResultTable(std::string sweepName,
                         std::vector<std::string> paramNames,
                         std::vector<ResultRow> rows)
    : name_(std::move(sweepName)),
      paramNames_(std::move(paramNames)),
      rows_(std::move(rows)) {}

std::size_t ResultTable::errorCount() const {
  std::size_t count = 0;
  for (const auto& row : rows_) {
    if (!row.ok()) ++count;
  }
  return count;
}

PivotTable ResultTable::pivot(const std::string& rowAxis,
                              const std::string& colAxis,
                              const std::string& property) const {
  const auto axisIndex = [&](const std::string& axis) {
    const auto it = std::find(paramNames_.begin(), paramNames_.end(), axis);
    if (it == paramNames_.end()) {
      throw std::invalid_argument("ResultTable::pivot: unknown axis '" +
                                  axis + "'");
    }
    return static_cast<std::size_t>(it - paramNames_.begin());
  };
  const std::size_t rowIdx = axisIndex(rowAxis);
  const std::size_t colIdx = axisIndex(colAxis);

  PivotTable table;
  table.rowAxis = rowAxis;
  table.colAxis = colAxis;
  const auto keyIndex = [](std::vector<ParamValue>& keys,
                           const ParamValue& key) {
    const auto it = std::find(keys.begin(), keys.end(), key);
    if (it != keys.end()) return static_cast<std::size_t>(it - keys.begin());
    keys.push_back(key);
    return keys.size() - 1;
  };

  std::vector<std::pair<std::size_t, std::size_t>> cells;
  std::vector<double> cellValues;
  std::unordered_set<std::uint64_t> occupied;
  for (const auto& row : rows_) {
    if (!property.empty() && row.property != property) continue;
    const std::size_t r = keyIndex(table.rowKeys, row.params[rowIdx]);
    const std::size_t c = keyIndex(table.colKeys, row.params[colIdx]);
    const std::uint64_t cellId =
        (static_cast<std::uint64_t>(r) << 32) | static_cast<std::uint32_t>(c);
    if (!occupied.insert(cellId).second) {
      throw std::invalid_argument(
          "ResultTable::pivot: several rows map to (" + rowAxis + "=" +
          formatParamValue(row.params[rowIdx]) + ", " + colAxis + "=" +
          formatParamValue(row.params[colIdx]) +
          "); disambiguate with the property filter");
    }
    cells.emplace_back(r, c);
    cellValues.push_back(row.value);
  }

  table.values.assign(
      table.rowKeys.size(),
      std::vector<double>(table.colKeys.size(),
                          std::numeric_limits<double>::quiet_NaN()));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.values[cells[i].first][cells[i].second] = cellValues[i];
  }
  return table;
}

std::vector<core::GuaranteeReport> ResultTable::guaranteeReports() const {
  std::vector<core::GuaranteeReport> reports;
  reports.reserve(rows_.size());
  for (const auto& row : rows_) {
    if (!row.ok()) continue;
    core::GuaranteeReport report;
    std::string prefix;
    for (std::size_t i = 0; i < paramNames_.size(); ++i) {
      prefix += paramNames_[i] + "=" + formatParamValue(row.params[i]) + " ";
    }
    report.property = prefix + row.property;
    report.value = row.value;
    report.satisfied = row.satisfied;
    report.states = row.states;
    report.transitions = row.transitions;
    report.buildSeconds = row.buildSeconds;
    report.checkSeconds = row.checkSeconds;
    reports.push_back(std::move(report));
  }
  return reports;
}

void ResultTable::writeCsv(std::ostream& os,
                           const ExportOptions& options) const {
  os << "point";
  for (const auto& name : paramNames_) os << ',' << csvEscape(name);
  os << ",property,value,satisfied,backend,states,transitions,samples,"
        "batched,tasks_planned,tasks_deduped,traversals_saved,"
        "ci_low,ci_high,error";
  if (options.diagnostics) {
    for (const DiagnosticColumn& column : kDiagnosticColumns) {
      os << ',' << column.name;
    }
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << row.point;
    for (const auto& value : row.params) {
      os << ',' << csvEscape(formatParamValue(value));
    }
    os << ',' << csvEscape(row.property);
    os << ',' << formatDouble(row.value);
    os << ',' << (row.satisfied ? "true" : "false");
    os << ',' << engine::backendName(row.backend);
    os << ',' << row.states << ',' << row.transitions << ',' << row.samples;
    os << ',' << (row.batched ? "true" : "false");
    os << ',' << row.plan.tasksPlanned << ',' << row.plan.tasksDeduped << ','
       << row.plan.traversalsSaved;
    if (row.interval95) {
      os << ',' << formatDouble(row.interval95->low) << ','
         << formatDouble(row.interval95->high);
    } else {
      os << ",,";
    }
    os << ',' << csvEscape(row.error);
    if (options.diagnostics) {
      for (const DiagnosticColumn& column : kDiagnosticColumns) {
        os << ',' << column.value(row);
      }
    }
    os << '\n';
  }
}

void ResultTable::writeJson(std::ostream& os,
                            const ExportOptions& options) const {
  os << "{\"sweep\":\"" << jsonEscape(name_) << "\",\"rows\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& row = rows_[i];
    if (i > 0) os << ',';
    os << "{\"point\":" << row.point << ",\"params\":{";
    for (std::size_t p = 0; p < paramNames_.size(); ++p) {
      if (p > 0) os << ',';
      os << '"' << jsonEscape(paramNames_[p])
         << "\":" << jsonParamValue(row.params[p]);
    }
    os << "},\"property\":\"" << jsonEscape(row.property) << '"';
    os << ",\"value\":" << jsonNumber(row.value);
    os << ",\"satisfied\":" << (row.satisfied ? "true" : "false");
    os << ",\"backend\":\"" << engine::backendName(row.backend) << '"';
    os << ",\"states\":" << row.states;
    os << ",\"transitions\":" << row.transitions;
    os << ",\"samples\":" << row.samples;
    os << ",\"batched\":" << (row.batched ? "true" : "false");
    os << ",\"plan\":{\"tasksPlanned\":" << row.plan.tasksPlanned
       << ",\"tasksDeduped\":" << row.plan.tasksDeduped
       << ",\"traversalsSaved\":" << row.plan.traversalsSaved << '}';
    os << ",\"interval95\":";
    if (row.interval95) {
      os << '[' << jsonNumber(row.interval95->low) << ','
         << jsonNumber(row.interval95->high) << ']';
    } else {
      os << "null";
    }
    if (options.diagnostics) {
      os << ",\"cacheHit\":" << (row.cacheHit ? "true" : "false")
         << ",\"buildSeconds\":" << jsonNumber(row.buildSeconds)
         << ",\"checkSeconds\":" << jsonNumber(row.checkSeconds);
      os << ",\"solver\":";
      if (row.solver) {
        os << "{\"name\":\"" << jsonEscape(row.solver->solver)
           << "\",\"iterations\":" << row.solver->iterations
           << ",\"residual\":" << jsonNumber(row.solver->residual)
           << ",\"converged\":" << (row.solver->converged ? "true" : "false")
           << '}';
      } else {
        os << "null";
      }
      os << ",\"timing\":{\"queueSeconds\":"
         << jsonNumber(row.timing.queueSeconds)
         << ",\"buildSeconds\":" << jsonNumber(row.timing.buildSeconds)
         << ",\"planSeconds\":" << jsonNumber(row.timing.planSeconds)
         << ",\"checkSeconds\":" << jsonNumber(row.timing.checkSeconds)
         << ",\"reduceSeconds\":" << jsonNumber(row.timing.reduceSeconds)
         << '}';
      os << ",\"reduction\":{\"applied\":"
         << (row.reduction.applied ? "true" : "false")
         << ",\"cacheHit\":" << (row.reduction.cacheHit ? "true" : "false")
         << ",\"statesBefore\":" << row.reduction.statesBefore
         << ",\"statesAfter\":" << row.reduction.statesAfter << '}';
      os << ",\"simd\":\"" << jsonEscape(row.plan.simdTarget) << '"'
         << ",\"spmmPanels\":" << row.plan.spmmPanels;
    }
    os << ",\"error\":\"" << jsonEscape(row.error) << "\"}";
  }
  os << "]}";
}

std::string ResultTable::toCsv(const ExportOptions& options) const {
  std::ostringstream os;
  writeCsv(os, options);
  return os.str();
}

std::string ResultTable::toJson(const ExportOptions& options) const {
  std::ostringstream os;
  writeJson(os, options);
  return os.str();
}

}  // namespace mimostat::sweep
