// Executes a SweepSpec through one shared AnalysisEngine.
//
// The runner is where the declarative spec recovers everything the
// hand-rolled bench loops lost:
//   - points sharing one model object (SweepSpec::share, or a factory that
//     memoizes) coalesce into a single engine request, so their horizon
//     properties ride one batched transient sweep;
//   - distinct-but-structurally-equal models still share one DTMC build
//     through the engine's signature-keyed model cache;
//   - independent requests run concurrently on the engine's pool, while
//     rows come back in point enumeration order regardless of thread count
//     (deterministic bytes for a fixed spec and seed);
//   - failures stay local: a throwing model factory, an unparsable
//     property, or a request-level failure marks only its own rows.
#pragma once

#include "engine/engine.hpp"
#include "sweep/result_table.hpp"
#include "sweep/spec.hpp"

namespace mimostat::sweep {

struct RunOptions {
  /// Merge points whose factory returned the same model object into one
  /// engine request (one build + one batched sweep for all their horizon
  /// properties). Turn off to issue one request per point — e.g. when
  /// sampling, where coalescing changes the per-property seed derivation
  /// (results stay deterministic either way, but the two layouts draw
  /// different streams).
  bool coalesce = true;
};

class Runner {
 public:
  explicit Runner(engine::AnalysisEngine& engine, RunOptions options = {})
      : engine_(engine), options_(options) {}

  /// Enumerate the spec's points, run them, and collect the tidy table.
  /// Throws std::invalid_argument when the spec has no factory or no
  /// property generator; every other failure is captured per row.
  [[nodiscard]] ResultTable run(const SweepSpec& spec) const;

 private:
  engine::AnalysisEngine& engine_;
  RunOptions options_;
};

}  // namespace mimostat::sweep
