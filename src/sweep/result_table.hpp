// Tidy long-format sweep results.
//
// One row per (point, property): the point's parameter values as leading
// columns, then the property and its AnalysisResult fields. Long format
// exports directly to CSV/JSON for plotting pipelines; pivot() reshapes a
// one-number-per-point sweep into the paper's row-by-column tables, and
// guaranteeReports() feeds core::formatReportTable.
//
// Export determinism: toCsv()/toJson() default to the value columns only —
// every byte is reproducible for a fixed spec and seed at any runner thread
// count. Run-dependent diagnostics (cache hits, build/check seconds) are
// opt-in via ExportOptions::diagnostics.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/report.hpp"
#include "engine/request.hpp"
#include "engine/result.hpp"
#include "la/solver.hpp"
#include "pctl/plan.hpp"
#include "stats/intervals.hpp"
#include "sweep/param_space.hpp"

namespace mimostat::sweep {

/// One (point, property) outcome.
struct ResultRow {
  /// Index of the point in sweep enumeration order.
  std::size_t point = 0;
  /// Parameter values, parallel to ResultTable::paramNames().
  std::vector<ParamValue> params;
  std::string property;
  double value = 0.0;
  bool satisfied = true;
  engine::Backend backend{};
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  /// Sample paths drawn (sampling backend; 0 when exact).
  std::uint64_t samples = 0;
  /// Present for fixed-sample-size sampled estimates.
  std::optional<stats::Interval> interval95;
  /// Answered from an evaluation-plan task shared with at least one
  /// sibling (multi-horizon transient sweep or multi-column masked bounded
  /// traversal).
  bool batched = false;
  /// The serving request's evaluation-plan counters (tasksPlanned,
  /// tasksDeduped, traversalsSaved) — identical across rows of one
  /// coalesced request, deterministic for a fixed property set. Exact
  /// backend only (zeros when sampled or failed).
  pctl::PlanStats plan;
  /// Iterative-solver report when the exact backend ran one for this row
  /// (unbounded operators, R=?[F psi], R=?[S]); absent otherwise. The
  /// solver's name travels inside (SolveStats::solver).
  std::optional<la::SolveStats> solver;
  /// The point's DTMC came from the engine's model cache.
  bool cacheHit = false;
  double buildSeconds = 0.0;
  double checkSeconds = 0.0;
  /// The serving request's phase breakdown (t_queue/t_build/t_plan/t_check
  /// and the opt-in t_reduce diagnostic columns) — identical across rows of
  /// one coalesced request.
  engine::PhaseTiming timing;
  /// The serving request's state-space reduction outcome (reduced,
  /// reduce_states_before/after, t_reduce diagnostic columns) — identical
  /// across rows of one coalesced request.
  engine::ReductionStats reduction;
  /// Non-empty when this row failed (factory error, parse error, request
  /// failure...). Sibling rows are unaffected. Failed rows carry
  /// value = NaN (exported as "nan"/null, a gap — never a passing zero)
  /// and satisfied = false.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

struct ExportOptions {
  /// Include diagnostic columns: cache_hit, the build/check wall-clock
  /// columns, the iterative-solver report (solver, solver_iterations,
  /// solver_residual, solver_converged), the reduction outcome and the
  /// SIMD/panel counters (simd, spmm_panels). Diagnostic columns are
  /// emitted sorted by NAME, so the header stays stable as counters are
  /// added. Off by default so exports are byte-deterministic (cache-hit
  /// attribution races between concurrent requests that share a build;
  /// timings always vary — solver/simd columns are themselves
  /// deterministic, but they ride the same opt-in).
  bool diagnostics = false;
};

/// A pivoted value grid: rows/cols keyed by two axes' values.
struct PivotTable {
  std::string rowAxis;
  std::string colAxis;
  std::vector<ParamValue> rowKeys;
  std::vector<ParamValue> colKeys;
  /// values[r][c]; NaN for cells no row mapped to.
  std::vector<std::vector<double>> values;

  /// Render in the paper's table style (core::formatValue cells).
  [[nodiscard]] std::string format(const std::string& title) const;
};

class ResultTable {
 public:
  ResultTable() = default;
  ResultTable(std::string sweepName, std::vector<std::string> paramNames,
              std::vector<ResultRow> rows);

  [[nodiscard]] const std::string& sweepName() const { return name_; }
  [[nodiscard]] const std::vector<std::string>& paramNames() const {
    return paramNames_;
  }
  [[nodiscard]] const std::vector<ResultRow>& rows() const { return rows_; }
  [[nodiscard]] std::size_t size() const { return rows_.size(); }

  /// Rows whose error is non-empty.
  [[nodiscard]] std::size_t errorCount() const;
  [[nodiscard]] bool ok() const { return errorCount() == 0; }

  /// The `value` column of rows selected by `property` (empty = all rows),
  /// keyed by rowAxis x colAxis. Throws std::invalid_argument on unknown
  /// axes or when two selected rows land in one cell.
  [[nodiscard]] PivotTable pivot(const std::string& rowAxis,
                                 const std::string& colAxis,
                                 const std::string& property = "") const;

  /// Rows as core::GuaranteeReport entries (for core::formatReportTable);
  /// failed rows are skipped. The report property is prefixed with the
  /// point's parameters so table lines stay distinguishable.
  [[nodiscard]] std::vector<core::GuaranteeReport> guaranteeReports() const;

  // --- exports (long format) ---
  void writeCsv(std::ostream& os, const ExportOptions& options = {}) const;
  void writeJson(std::ostream& os, const ExportOptions& options = {}) const;
  [[nodiscard]] std::string toCsv(const ExportOptions& options = {}) const;
  [[nodiscard]] std::string toJson(const ExportOptions& options = {}) const;

 private:
  std::string name_;
  std::vector<std::string> paramNames_;
  std::vector<ResultRow> rows_;
};

}  // namespace mimostat::sweep
