// Declarative parameter spaces for scenario sweeps.
//
// The paper's results are parameter studies: Tables I-V and Figure 2 all
// sweep a handful of named quantities (horizon T, traceback depth L, SNR,
// quantizer wordlengths) over grids. A ParamSpace names those axes once and
// enumerates the points; the sweep runner turns each point into an engine
// request.
//
//   sweep::ParamSpace space;
//   space.cross(sweep::Axis::ints("T", 100, 1000, 100))
//        .cross(sweep::Axis::logspace("snr", 1.0, 100.0, 5))
//        .filter([](const sweep::Params& p) {
//          return p.getInt("T") > 100 || p.getDouble("snr") < 50.0;
//        });
//
// Composition rules: cross() adds a block varying independently (cartesian
// product); zip() adds a block of equal-length axes advancing together
// (paired values, not a product). Enumeration order is deterministic:
// blocks nest in declaration order with the last-declared block varying
// fastest, like the equivalent hand-written nested loops.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace mimostat::sweep {

/// One coordinate of a sweep point. Integers and doubles are kept distinct
/// so exports round-trip (an int axis never prints as 3.0).
using ParamValue = std::variant<std::int64_t, double, std::string>;

/// %.17g — the shared round-trip double rendering every sweep export uses
/// (param columns and value columns must never diverge).
[[nodiscard]] std::string formatRoundTripDouble(double value);

/// Render for CSV/JSON/pivot headers: decimal ints, round-trip (%.17g)
/// doubles, strings verbatim.
[[nodiscard]] std::string formatParamValue(const ParamValue& value);

/// One sweep point: an ordered assignment of values to the space's axes.
/// The axis-name list is shared between every point of an enumeration, so
/// copying a Params copies values only.
class Params {
 public:
  Params() = default;
  Params(std::shared_ptr<const std::vector<std::string>> names,
         std::vector<ParamValue> values);
  /// Convenience for hand-built points (tests, ad-hoc tables).
  Params(std::vector<std::string> names, std::vector<ParamValue> values);

  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const std::vector<std::string>& names() const;
  [[nodiscard]] const std::vector<ParamValue>& values() const { return values_; }

  [[nodiscard]] bool has(const std::string& name) const;
  /// Typed accessors; throw std::out_of_range on unknown names and
  /// std::bad_variant_access on type mismatches. getDouble widens an
  /// integer axis value.
  [[nodiscard]] std::int64_t getInt(const std::string& name) const;
  [[nodiscard]] double getDouble(const std::string& name) const;
  [[nodiscard]] const std::string& getString(const std::string& name) const;

  /// "name=value, ..." for logs and error messages.
  [[nodiscard]] std::string format() const;

 private:
  [[nodiscard]] const ParamValue& at(const std::string& name) const;

  std::shared_ptr<const std::vector<std::string>> names_;
  std::vector<ParamValue> values_;
};

/// A named axis: an ordered list of values for one parameter.
class Axis {
 public:
  /// Explicit value list (any mix is NOT allowed — one alternative per axis
  /// keeps exports typed; use the factory matching the payload).
  static Axis values(std::string name, std::vector<ParamValue> values);
  /// Integers lo, lo+step, ... while <= hi (step > 0 required).
  static Axis ints(std::string name, std::int64_t lo, std::int64_t hi,
                   std::int64_t step = 1);
  static Axis doubles(std::string name, std::vector<double> values);
  static Axis strings(std::string name, std::vector<std::string> values);
  /// `count` log-spaced doubles from lo to hi inclusive (lo, hi > 0).
  static Axis logspace(std::string name, double lo, double hi,
                       std::size_t count);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }
  [[nodiscard]] const ParamValue& value(std::size_t i) const {
    return values_[i];
  }

 private:
  Axis(std::string name, std::vector<ParamValue> values);

  std::string name_;
  std::vector<ParamValue> values_;
};

/// Predicate over a point; false drops the point from the enumeration.
using ParamFilter = std::function<bool(const Params&)>;

class ParamSpace {
 public:
  ParamSpace() = default;

  /// Add one independently varying axis (cartesian product with the
  /// existing blocks).
  ParamSpace& cross(Axis axis);
  /// Add a block of axes advancing together: point i of the block takes
  /// value i of every axis. All axes must have equal length.
  ParamSpace& zip(std::vector<Axis> axes);
  /// Add a filter; points failing any filter are dropped. Filters see fully
  /// assembled points (all axes).
  ParamSpace& filter(ParamFilter predicate);

  /// Axis names in declaration order (zip blocks contribute each member).
  [[nodiscard]] std::vector<std::string> axisNames() const;
  /// Enumerate every point after filtering, in deterministic nested-loop
  /// order (last block fastest).
  [[nodiscard]] std::vector<Params> points() const;
  /// Point count before filtering.
  [[nodiscard]] std::size_t gridSize() const;

 private:
  /// A block is one unit of the outer cartesian product: a single axis, or
  /// several zipped axes advancing together.
  struct Block {
    std::vector<Axis> axes;
    [[nodiscard]] std::size_t size() const {
      return axes.empty() ? 0 : axes.front().size();
    }
  };

  std::vector<Block> blocks_;
  std::vector<ParamFilter> filters_;
};

}  // namespace mimostat::sweep
