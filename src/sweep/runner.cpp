#include "sweep/runner.hpp"

#include <limits>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace mimostat::sweep {

namespace {

/// Per-point execution plan assembled before anything runs.
struct PointPlan {
  std::shared_ptr<const dtmc::Model> model;
  std::vector<std::string> properties;
  /// This point's engine options (the spec's, unless an OptionsHook
  /// overrode them).
  engine::RequestOptions options;
  std::string error;
  /// Which request serves this point, and where its properties start in
  /// that request's property list.
  std::size_t group = 0;
  std::size_t offset = 0;
};

}  // namespace

ResultTable Runner::run(const SweepSpec& spec) const {
  if (!spec.factory) {
    throw std::invalid_argument("SweepSpec '" + spec.name +
                                "': no model factory");
  }
  if (!spec.properties) {
    throw std::invalid_argument("SweepSpec '" + spec.name +
                                "': no property generator");
  }

  const std::vector<Params> points = spec.space.points();
  std::vector<PointPlan> plans(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointPlan& plan = plans[p];
    try {
      // Properties first: an empty list skips the point entirely, so its
      // model is never even constructed.
      plan.properties = spec.properties(points[p]);
      if (plan.properties.empty()) continue;
      plan.model = spec.factory(points[p]);
      if (plan.model == nullptr) {
        plan.error = "model factory returned null";
        continue;  // the hook must not run (or mask the error) for a dead point
      }
      plan.options = spec.optionsFor
                         ? spec.optionsFor(points[p], spec.options)
                         : spec.options;
    } catch (const std::exception& e) {
      plan.error = e.what();
    }
  }

  // Group points into engine requests: every point whose factory returned
  // the same model object joins one request (in point order), so sibling
  // horizons batch into one transient sweep. An options hook opts out:
  // sibling points may carry different backend/solver/seed configuration,
  // so each point issues its own request.
  const bool coalesce = options_.coalesce && !spec.optionsFor;
  std::vector<engine::AnalysisRequest> requests;
  std::unordered_map<const dtmc::Model*, std::size_t> groupOf;
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointPlan& plan = plans[p];
    // A generator may return an empty list to skip a point: it contributes
    // no rows — and must not cost a model build either.
    if (!plan.error.empty() || plan.properties.empty()) continue;
    std::size_t group = requests.size();
    if (coalesce) {
      const auto [it, inserted] = groupOf.emplace(plan.model.get(), group);
      group = it->second;
      if (inserted) requests.emplace_back();
    } else {
      requests.emplace_back();
    }
    engine::AnalysisRequest& request = requests[group];
    if (request.model == nullptr) {
      request.model = plan.model.get();
      request.options = plan.options;
    }
    plan.group = group;
    plan.offset = request.properties.size();
    request.properties.insert(request.properties.end(),
                              plan.properties.begin(), plan.properties.end());
  }

  // Concurrency boundary: analyzeAll is the only line that fans out across
  // threads, and it returns responses in request order regardless of
  // scheduling. The Runner itself therefore owns no locked state — the plan
  // assembly above and the scatter below are single-threaded, and row order
  // (hence CSV/JSON byte order) depends only on point order.
  const std::vector<engine::AnalysisResponse> responses =
      engine_.analyzeAll(requests);

  // Scatter back into point-major, property-major rows.
  std::vector<ResultRow> rows;
  for (std::size_t p = 0; p < points.size(); ++p) {
    const PointPlan& plan = plans[p];
    const auto baseRow = [&] {
      ResultRow row;
      row.point = p;
      row.params = points[p].values();
      return row;
    };
    if (!plan.error.empty()) {
      // Factory/generator failure: the whole point failed, so it reports as
      // a single property-less error row.
      ResultRow row = baseRow();
      row.value = std::numeric_limits<double>::quiet_NaN();
      row.satisfied = false;
      row.error = plan.error;
      rows.push_back(std::move(row));
      continue;
    }
    // Skipped point (generator returned no properties): no request was
    // issued, so plan.group must not be dereferenced.
    if (plan.properties.empty()) continue;
    const engine::AnalysisResponse& response = responses[plan.group];
    for (std::size_t j = 0; j < plan.properties.size(); ++j) {
      ResultRow row = baseRow();
      row.property = plan.properties[j];
      row.backend = response.backend;
      row.states = response.states;
      row.transitions = response.transitions;
      row.cacheHit = response.cacheHit;
      row.buildSeconds = response.buildSeconds;
      row.timing = response.timing;
      row.reduction = response.reduction;
      row.plan = response.plan;
      if (!response.error.empty()) {
        row.value = std::numeric_limits<double>::quiet_NaN();
        row.satisfied = false;
        row.error = response.error;
      } else {
        const engine::AnalysisResult& result =
            response.results[plan.offset + j];
        row.value = result.value;
        row.satisfied = result.satisfied;
        row.samples = result.samples;
        row.interval95 = result.interval95;
        row.batched = result.batched;
        row.solver = result.solver;
        row.checkSeconds = result.checkSeconds;
        row.error = result.error;
        if (!row.ok()) {
          // Failed rows must not export as passing zeros: value reads as a
          // gap (NaN -> "nan"/null) and satisfied as false.
          row.value = std::numeric_limits<double>::quiet_NaN();
          row.satisfied = false;
        }
      }
      rows.push_back(std::move(row));
    }
  }

  return ResultTable(spec.name, spec.space.axisNames(), std::move(rows));
}

}  // namespace mimostat::sweep
