// State-elimination checker core, in the style of Storm's
// SparseDtmcEliminationModelChecker: solve the unbounded reachability /
// expected-reward linear system by Gaussian state elimination instead of an
// iterative solver. Non-boundary states are eliminated in a deterministic
// priority order (ascending state index): eliminating s removes its
// self-loop (scaling the row by 1/(1 - P(s,s))), then redistributes s's
// outgoing mass onto every not-yet-eliminated predecessor and accumulates
// its one-step value contribution there. Exact back-substitution in reverse
// order then yields every state's value — no epsilon, no iteration count.
//
// Graph precomputation (Prob0/Prob1) belongs to mc::, which owns the model
// semantics; this layer only sees the boundary classification. Fill-in can
// be quadratic on adversarial graphs — callers gate by state count
// (reduce::Options::eliminationMaxStates) or run it on the coarse quotient.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/bit_vector.hpp"

namespace mimostat::reduce {

struct EliminationResult {
  /// Original-state-indexed values: boundary states keep their fixed value,
  /// eliminated states carry the exact solution.
  std::vector<double> stateValues;
  /// States eliminated (the undetermined/active set size).
  std::uint32_t eliminated = 0;
  /// Matrix entries materialized beyond the active rows' original nnz.
  std::uint64_t fillIn = 0;
};

/// P(phi U psi) with precomputed Prob0/Prob1 sets: prob1 states are fixed
/// at 1, prob0 at 0, and every remaining state is eliminated. Deterministic
/// and exact (up to the scaling divisions).
[[nodiscard]] EliminationResult eliminateUntilProb(
    const dtmc::ExplicitDtmc& dtmc, const la::BitVector& prob0,
    const la::BitVector& prob1);

/// Expected reward accumulated before psi (R=? [ F psi ]): psi states are
/// fixed at 0, states outside `reachesPsi` (P(F psi) < 1) at +infinity, and
/// the remaining states — which reach psi almost surely and therefore never
/// step into an infinite state — are eliminated with the reward vector as
/// the per-state source term.
[[nodiscard]] EliminationResult eliminateReachReward(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const la::BitVector& psi, const la::BitVector& reachesPsi);

}  // namespace mimostat::reduce
