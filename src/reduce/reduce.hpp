// reduce:: — plan-aware state-space reduction between build and check.
//
// The engine's reduction stage quotients an explicit DTMC by probabilistic
// bisimulation (lump::bisim's signature refinement) with an initial
// partition derived from exactly the atom masks and reward vectors the
// request's pctl::EvalPlan needs. Labels the plan never touches do not seed
// the partition, so they never block merging — the paper's structured comm/
// chains collapse by orders of magnitude under a single-property plan that
// a full-label partition would keep nearly discrete.
//
// The quotient's state table stores block representatives (lump:: keeps the
// VarLayout), so every keyed mask and reward re-evaluates to the same value
// on the representative as on any block member — mc::Checker runs the plan
// on the quotient unchanged. Quotient-indexed vectors must not escape this
// boundary except through the lift/project API below (machine-checked by
// the `reduction-boundary` lint rule).
//
// Tolerance contract: quotienting is exact under the Strong Lumping Theorem
// but changes floating-point accumulation order (block mass sums, merged
// rows), so reduced answers agree with the unreduced reference to solver /
// rounding tolerance, not bit-for-bit. The reduction itself is
// deterministic: a fixed model + plan yields a byte-identical block map at
// any thread count. tests/reduce_test.cpp and bench/reduce.cpp assert both.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/bit_vector.hpp"

namespace mimostat::reduce {

/// Three-state reduction knob: kAuto defers to the engine's heuristics.
enum class Toggle : std::uint8_t { kAuto, kOn, kOff };

struct Options {
  /// Plan-aware bisimulation quotient of the whole request. kAuto fires
  /// when the built model has at least `minQuotientStates` states (small
  /// models gain nothing over the refinement cost); kOn always tries,
  /// kOff never. An attempted quotient that does not shrink the model is
  /// discarded (the check phase runs unreduced) but cached, so repeated
  /// requests skip the refinement.
  Toggle quotient = Toggle::kAuto;
  /// State-elimination checker for unbounded reachability / expected-reward
  /// singles (exact Gaussian elimination instead of Prob0/1 + iterative
  /// solver). kOn forces it at the mc::Checker level. kAuto is resolved by
  /// the engine: it fires only when the quotient stage actually applied and
  /// the quotient is at most `eliminationMaxStates` states — elimination
  /// fill-in is bounded on the coarse quotient, and those answers already
  /// carry the reduction tolerance contract. A standalone mc::Checker
  /// treats kAuto as off.
  Toggle elimination = Toggle::kAuto;
  /// kAuto quotient threshold (states). The default keeps small models —
  /// including every in-repo bit-identity bench — on the unreduced path.
  std::uint64_t minQuotientStates = 100'000;
  /// kAuto elimination cap on the quotient's state count.
  std::uint64_t eliminationMaxStates = 50'000;
  /// Transition probabilities are bucketed to this resolution during
  /// signature refinement (lump::LumpOptions::probResolution).
  double probResolution = 1e-12;
  /// Reward values are bucketed to this resolution when seeding the initial
  /// partition — states merged across a bucket boundary may differ by up to
  /// one resolution step in any keyed reward.
  double rewardResolution = 1e-12;
};

/// Engine policy: should the quotient stage run for an n-state model?
[[nodiscard]] bool quotientSelected(const Options& options, std::uint64_t numStates);

/// mc::Checker policy: elimination runs only when explicitly on — kAuto
/// belongs to the engine (see Options::elimination).
[[nodiscard]] bool eliminationOn(const Options& options);

/// Engine policy for resolving elimination kAuto (see Options::elimination).
[[nodiscard]] bool eliminationAutoFires(const Options& options,
                                        bool quotientApplied,
                                        std::uint64_t quotientStates);

/// Lift/project metadata tying a quotient to its base model. This is the
/// only sanctioned crossing between quotient-block and original-state
/// indexing.
struct ReductionInfo {
  /// blockOf[s] = quotient block of original state s.
  std::vector<std::uint32_t> blockOf;
  /// representative[b] = original state whose row/values represent block b.
  std::vector<std::uint32_t> representative;
  std::uint32_t statesBefore = 0;
  std::uint32_t statesAfter = 0;
  std::uint64_t transitionsBefore = 0;
  std::uint64_t transitionsAfter = 0;
  std::uint32_t refinementRounds = 0;
  /// Wall-clock of the refinement + quotient construction.
  double seconds = 0.0;

  /// Resident bytes of the block map + representatives (cache accounting).
  [[nodiscard]] std::uint64_t approxBytes() const {
    return (blockOf.size() + representative.size()) * sizeof(std::uint32_t);
  }
};

/// A quotient DTMC plus the metadata to map results back.
struct ReducedModel {
  dtmc::ExplicitDtmc quotient;
  ReductionInfo info;
};

/// Plan-aware quotient: the initial partition separates states exactly by
/// the given evaluated masks (one bit per state each) and bucketed reward
/// vectors — the plan's needs, nothing more. Deterministic: block ids are
/// assigned in ascending state order.
[[nodiscard]] ReducedModel buildQuotient(
    const dtmc::ExplicitDtmc& dtmc,
    const std::vector<const la::BitVector*>& masks,
    const std::vector<const std::vector<double>*>& rewards,
    const Options& options = {});

/// Quotient per-block values -> original per-state values (block-map
/// indirection: every member of a block reads its block's value).
[[nodiscard]] std::vector<double> liftStateValues(
    const ReductionInfo& info, const std::vector<double>& blockValues);

/// Original per-state mask -> quotient per-block mask, reading each block's
/// representative. Only meaningful for masks that are block-constant (every
/// mask that seeded the partition is).
[[nodiscard]] la::BitVector projectMask(const ReductionInfo& info,
                                        const la::BitVector& originalMask);

/// Original per-state vector -> quotient per-block vector via the block
/// representatives (block-constant vectors only, e.g. keyed rewards).
[[nodiscard]] std::vector<double> projectVector(
    const ReductionInfo& info, const std::vector<double>& originalValues);

/// Strip the per-state tables from an identity quotient's info, keeping the
/// counters. Used for cache marker entries ("this plan cannot shrink this
/// model"): the counters still answer the apply/skip decision while the
/// entry costs no per-state bytes. Lifting/projecting through a shrunk info
/// is invalid — an identity quotient is never applied, so nothing needs
/// mapping.
void shrinkToMarker(ReductionInfo& info);

}  // namespace mimostat::reduce
