#include "reduce/eliminate.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace mimostat::reduce {

namespace {

/// Sparse row over active-local columns, kept sorted by column index so
/// every merge walks in one deterministic order.
struct FlexRow {
  std::vector<std::pair<std::uint32_t, double>> entries;
  /// Source term: one-step value mass into the fixed boundary (until) or
  /// the state reward (expected reward), accumulating eliminated
  /// neighbours' contributions.
  double value = 0.0;
};

/// Shared elimination core: solve x_i = value_i + sum_j P(i,j) x_j over the
/// active states, boundary contributions already folded into value_i.
/// Writes each active state's solution through `store`.
template <typename Store>
EliminationResult eliminateActive(std::vector<FlexRow>& rows,
                                  const Store& store) {
  const std::uint32_t m = static_cast<std::uint32_t>(rows.size());
  EliminationResult result;
  result.eliminated = m;

  // Predecessor lists per active-local column; entries may go stale when a
  // merge cancels a coefficient, so consumers re-check the row. Sorted +
  // deduplicated at use time for a deterministic update order.
  std::vector<std::vector<std::uint32_t>> preds(m);
  for (std::uint32_t i = 0; i < m; ++i) {
    for (const auto& [j, p] : rows[i].entries) {
      (void)p;
      preds[j].push_back(i);
    }
  }

  std::vector<std::pair<std::uint32_t, double>> merged;
  for (std::uint32_t s = 0; s < m; ++s) {
    FlexRow& row = rows[s];
    // Self-loop removal: x_s = (value_s + sum_{j!=s} p_j x_j) / (1 - p_ss).
    double selfProb = 0.0;
    for (const auto& [j, p] : row.entries) {
      if (j == s) selfProb = p;
    }
    const double stay = 1.0 - selfProb;
    if (!(stay > 0.0)) {
      // An active state with P(s,s) = 1 contradicts the caller's boundary
      // classification (it could never reach the target almost surely /
      // with positive probability).
      throw std::runtime_error(
          "reduce::eliminate: active state with an absorbing self-loop");
    }
    if (selfProb != 0.0) {
      const double scale = 1.0 / stay;
      row.value *= scale;
      std::size_t keep = 0;
      for (const auto& [j, p] : row.entries) {
        if (j != s) row.entries[keep++] = {j, p * scale};
      }
      row.entries.resize(keep);
    }

    // Redistribute onto every not-yet-eliminated predecessor. row.entries
    // now references only columns > s (earlier columns were substituted
    // away when they were eliminated), so no new predecessor of s can
    // appear after this loop.
    std::vector<std::uint32_t>& ps = preds[s];
    std::sort(ps.begin(), ps.end());
    ps.erase(std::unique(ps.begin(), ps.end()), ps.end());
    for (const std::uint32_t p : ps) {
      if (p <= s) continue;  // already eliminated (or the self entry)
      FlexRow& target = rows[p];
      const auto it = std::find_if(
          target.entries.begin(), target.entries.end(),
          [&](const auto& e) { return e.first == s; });
      if (it == target.entries.end()) continue;  // stale predecessor entry
      const double w = it->second;
      target.entries.erase(it);
      target.value += w * row.value;
      // Sorted merge of w * row into target (both sorted by column).
      merged.clear();
      merged.reserve(target.entries.size() + row.entries.size());
      std::size_t a = 0;
      std::size_t b = 0;
      while (a < target.entries.size() || b < row.entries.size()) {
        if (b == row.entries.size() ||
            (a < target.entries.size() &&
             target.entries[a].first < row.entries[b].first)) {
          merged.push_back(target.entries[a++]);
        } else if (a == target.entries.size() ||
                   row.entries[b].first < target.entries[a].first) {
          const std::uint32_t col = row.entries[b].first;
          merged.emplace_back(col, w * row.entries[b].second);
          ++result.fillIn;
          preds[col].push_back(p);
          ++b;
        } else {
          merged.emplace_back(target.entries[a].first,
                              target.entries[a].second +
                                  w * row.entries[b].second);
          ++a;
          ++b;
        }
      }
      target.entries.swap(merged);
    }
  }
  // Back-substitution: row s references only columns eliminated after s,
  // so a reverse sweep resolves every value exactly.
  std::vector<double> solution(m, 0.0);
  for (std::uint32_t s = m; s-- > 0;) {
    double x = rows[s].value;
    for (const auto& [j, p] : rows[s].entries) {
      x += p * solution[j];
    }
    solution[s] = x;
    store(s, x);
  }
  return result;
}

}  // namespace

EliminationResult eliminateUntilProb(const dtmc::ExplicitDtmc& dtmc,
                                     const la::BitVector& prob0,
                                     const la::BitVector& prob1) {
  const std::uint32_t n = dtmc.numStates();
  assert(prob0.size() == n && prob1.size() == n);

  std::vector<double> values(n, 0.0);
  prob1.forEachSetBit([&](std::size_t s) { values[s] = 1.0; });

  constexpr std::uint32_t kBoundary = ~std::uint32_t{0};
  std::vector<std::uint32_t> localOf(n, kBoundary);
  std::vector<std::uint32_t> active;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!prob0.get(s) && !prob1.get(s)) {
      localOf[s] = static_cast<std::uint32_t>(active.size());
      active.push_back(s);
    }
  }
  if (active.empty()) {
    EliminationResult result;
    result.stateValues = std::move(values);
    return result;
  }

  std::vector<FlexRow> rows(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    const std::uint32_t s = active[i];
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      const std::uint32_t t = dtmc.col()[k];
      if (localOf[t] != kBoundary) {
        rows[i].entries.emplace_back(localOf[t], dtmc.val()[k]);
      } else if (prob1.get(t)) {
        rows[i].value += dtmc.val()[k];
      }
      // prob0 targets contribute 0 — dropped.
    }
    // Active-local column order follows ascending state order, so CSR rows
    // arrive already sorted.
  }

  EliminationResult result =
      eliminateActive(rows, [&](std::uint32_t i, double x) {
        values[active[i]] = x;
      });
  result.stateValues = std::move(values);
  return result;
}

EliminationResult eliminateReachReward(const dtmc::ExplicitDtmc& dtmc,
                                       const std::vector<double>& reward,
                                       const la::BitVector& psi,
                                       const la::BitVector& reachesPsi) {
  const std::uint32_t n = dtmc.numStates();
  assert(reward.size() == n && psi.size() == n && reachesPsi.size() == n);

  std::vector<double> values(n, 0.0);
  constexpr std::uint32_t kBoundary = ~std::uint32_t{0};
  std::vector<std::uint32_t> localOf(n, kBoundary);
  std::vector<std::uint32_t> active;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (psi.get(s)) {
      values[s] = 0.0;  // accumulate nothing once reached
    } else if (!reachesPsi.get(s)) {
      values[s] = std::numeric_limits<double>::infinity();
    } else {
      localOf[s] = static_cast<std::uint32_t>(active.size());
      active.push_back(s);
    }
  }
  if (active.empty()) {
    EliminationResult result;
    result.stateValues = std::move(values);
    return result;
  }

  std::vector<FlexRow> rows(active.size());
  for (std::size_t i = 0; i < active.size(); ++i) {
    const std::uint32_t s = active[i];
    rows[i].value = reward[s];
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      const std::uint32_t t = dtmc.col()[k];
      if (localOf[t] != kBoundary) {
        rows[i].entries.emplace_back(localOf[t], dtmc.val()[k]);
      }
      // psi targets contribute 0. A non-reaching target is impossible from
      // an almost-surely-reaching state (it would drag the probability
      // below 1), so no infinity can leak into an active row.
    }
  }

  EliminationResult result =
      eliminateActive(rows, [&](std::uint32_t i, double x) {
        values[active[i]] = x;
      });
  result.stateValues = std::move(values);
  return result;
}

}  // namespace mimostat::reduce
