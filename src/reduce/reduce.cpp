#include "reduce/reduce.hpp"

#include <cassert>
#include <utility>

#include "lump/bisim.hpp"
#include "obs/trace.hpp"

namespace mimostat::reduce {

bool quotientSelected(const Options& options, std::uint64_t numStates) {
  switch (options.quotient) {
    case Toggle::kOn:
      return true;
    case Toggle::kOff:
      return false;
    case Toggle::kAuto:
      return numStates >= options.minQuotientStates;
  }
  return false;
}

bool eliminationOn(const Options& options) {
  return options.elimination == Toggle::kOn;
}

bool eliminationAutoFires(const Options& options, bool quotientApplied,
                          std::uint64_t quotientStates) {
  if (options.elimination != Toggle::kAuto) return false;
  return quotientApplied && quotientStates <= options.eliminationMaxStates;
}

ReducedModel buildQuotient(const dtmc::ExplicitDtmc& dtmc,
                           const std::vector<const la::BitVector*>& masks,
                           const std::vector<const std::vector<double>*>& rewards,
                           const Options& options) {
  obs::Span span("reduce.quotient");
  const lump::InitialKeys keys = lump::keysFromMasksAndRewards(
      dtmc.numStates(), masks, rewards, options.rewardResolution);
  lump::LumpOptions lumpOptions;
  lumpOptions.probResolution = options.probResolution;
  lump::LumpResult lumped = lump::lump(dtmc, keys, lumpOptions);

  ReducedModel reduced;
  reduced.info.blockOf = std::move(lumped.partition.blockOf);
  reduced.info.representative = std::move(lumped.representative);
  reduced.info.statesBefore = dtmc.numStates();
  reduced.info.statesAfter = lumped.partition.numBlocks;
  reduced.info.transitionsBefore = dtmc.numTransitions();
  reduced.info.transitionsAfter = lumped.quotient.numTransitions();
  reduced.info.refinementRounds = lumped.refinementRounds;
  reduced.quotient = std::move(lumped.quotient);
  reduced.info.seconds = span.stopSeconds();
  return reduced;
}

std::vector<double> liftStateValues(const ReductionInfo& info,
                                    const std::vector<double>& blockValues) {
  assert(blockValues.size() == info.representative.size());
  std::vector<double> lifted(info.blockOf.size());
  for (std::size_t s = 0; s < info.blockOf.size(); ++s) {
    lifted[s] = blockValues[info.blockOf[s]];
  }
  return lifted;
}

la::BitVector projectMask(const ReductionInfo& info,
                          const la::BitVector& originalMask) {
  assert(originalMask.size() == info.blockOf.size());
  la::BitVector projected(info.representative.size());
  for (std::size_t b = 0; b < info.representative.size(); ++b) {
    if (originalMask.get(info.representative[b])) projected.set(b);
  }
  return projected;
}

std::vector<double> projectVector(const ReductionInfo& info,
                                  const std::vector<double>& originalValues) {
  assert(originalValues.size() == info.blockOf.size());
  std::vector<double> projected(info.representative.size());
  for (std::size_t b = 0; b < info.representative.size(); ++b) {
    projected[b] = originalValues[info.representative[b]];
  }
  return projected;
}

void shrinkToMarker(ReductionInfo& info) {
  info.blockOf.clear();
  info.blockOf.shrink_to_fit();
  info.representative.clear();
  info.representative.shrink_to_fit();
}

}  // namespace mimostat::reduce
