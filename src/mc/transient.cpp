#include "mc/transient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "la/spmv.hpp"

namespace mimostat::mc {

namespace {
double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
}  // namespace

TransientSweep::TransientSweep(const dtmc::ExplicitDtmc& dtmc, la::Exec exec)
    : dtmc_(dtmc),
      exec_(std::move(exec)),
      x_(dtmc.initialDistribution()),
      scratch_(x_.size()) {}

TransientSweep::TransientSweep(const dtmc::ExplicitDtmc& dtmc,
                               std::vector<std::vector<double>> starts,
                               la::Exec exec)
    : dtmc_(dtmc), exec_(std::move(exec)), vectors_(starts.size()) {
  if (starts.empty()) {
    throw std::invalid_argument("TransientSweep: no start distributions");
  }
  const std::size_t n = dtmc.numStates();
  x_.resize(n * vectors_);
  for (std::size_t j = 0; j < vectors_; ++j) {
    if (starts[j].size() != n) {
      throw std::invalid_argument(
          "TransientSweep: start distribution size mismatch");
    }
    for (std::size_t s = 0; s < n; ++s) x_[s * vectors_ + j] = starts[j][s];
  }
  scratch_.resize(x_.size());
}

const std::vector<double>& TransientSweep::distribution() const {
  if (vectors_ != 1) {
    throw std::logic_error(
        "TransientSweep::distribution(): multi-vector sweep; use "
        "distributionAt(i)");
  }
  return x_;
}

std::vector<double> TransientSweep::distributionAt(std::size_t i) const {
  if (i >= vectors_) {
    throw std::out_of_range("TransientSweep::distributionAt: vector index " +
                            std::to_string(i) + " of " +
                            std::to_string(vectors_));
  }
  const std::size_t n = dtmc_.numStates();
  std::vector<double> out(n);
  for (std::size_t s = 0; s < n; ++s) out[s] = x_[s * vectors_ + i];
  return out;
}

void TransientSweep::advance() {
  if (vectors_ == 1) {
    la::spmvLeft(dtmc_.matrix(), x_, scratch_, exec_);
  } else {
    la::spmmLeft(dtmc_.matrix(), x_, vectors_, scratch_, exec_);
  }
  x_.swap(scratch_);
  ++step_;
}

void TransientSweep::advanceTo(std::uint64_t step) {
  if (step < step_) {
    throw std::invalid_argument("TransientSweep: cannot rewind from step " +
                                std::to_string(step_) + " to " +
                                std::to_string(step));
  }
  while (step_ < step) advance();
}

double TransientSweep::expectedReward(const std::vector<double>& reward) const {
  if (vectors_ != 1) {
    throw std::logic_error(
        "TransientSweep::expectedReward(): multi-vector sweep; use "
        "expectedRewardAt(i, reward)");
  }
  return dot(x_, reward);
}

double TransientSweep::expectedRewardAt(std::size_t i,
                                        const std::vector<double>& reward) const {
  if (i >= vectors_) {
    throw std::out_of_range("TransientSweep::expectedRewardAt: vector index " +
                            std::to_string(i) + " of " +
                            std::to_string(vectors_));
  }
  assert(reward.size() * vectors_ == x_.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < reward.size(); ++s) {
    acc += x_[s * vectors_ + i] * reward[s];
  }
  return acc;
}

std::vector<double> instantaneousRewardAtHorizons(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const std::vector<std::uint64_t>& horizons, const la::Exec& exec) {
  std::vector<std::size_t> order(horizons.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return horizons[a] < horizons[b];
  });

  std::vector<double> values(horizons.size());
  TransientSweep sweep(dtmc, exec);
  for (const std::size_t idx : order) {
    sweep.advanceTo(horizons[idx]);
    values[idx] = sweep.expectedReward(reward);
  }
  return values;
}

std::vector<double> transientDistribution(const dtmc::ExplicitDtmc& dtmc,
                                          std::uint64_t steps,
                                          const la::Exec& exec) {
  TransientSweep sweep(dtmc, exec);
  sweep.advanceTo(steps);
  return sweep.distribution();
}

double instantaneousReward(const dtmc::ExplicitDtmc& dtmc,
                           const std::vector<double>& reward,
                           std::uint64_t steps, const la::Exec& exec) {
  return dot(transientDistribution(dtmc, steps, exec), reward);
}

double cumulativeReward(const dtmc::ExplicitDtmc& dtmc,
                        const std::vector<double>& reward,
                        std::uint64_t steps, const la::Exec& exec) {
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  double total = 0.0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    total += dot(pi, reward);
    dtmc.multiplyLeft(pi, next, exec);
    pi.swap(next);
  }
  return total;
}

std::vector<double> instantaneousRewardSeries(const dtmc::ExplicitDtmc& dtmc,
                                              const std::vector<double>& reward,
                                              std::uint64_t steps,
                                              const la::Exec& exec) {
  std::vector<double> series;
  series.reserve(steps + 1);
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  series.push_back(dot(pi, reward));
  for (std::uint64_t t = 0; t < steps; ++t) {
    dtmc.multiplyLeft(pi, next, exec);
    pi.swap(next);
    series.push_back(dot(pi, reward));
  }
  return series;
}

SteadyDetection detectRewardSteadyState(const dtmc::ExplicitDtmc& dtmc,
                                        const std::vector<double>& reward,
                                        double tolerance, std::uint64_t window,
                                        std::uint64_t maxSteps,
                                        const la::Exec& exec) {
  assert(window >= 1);
  SteadyDetection result;
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  double windowMin = dot(pi, reward);
  double windowMax = windowMin;
  std::uint64_t stable = 0;
  for (std::uint64_t t = 1; t <= maxSteps; ++t) {
    dtmc.multiplyLeft(pi, next, exec);
    pi.swap(next);
    const double value = dot(pi, reward);
    if (std::fabs(value - windowMin) <= tolerance &&
        std::fabs(value - windowMax) <= tolerance) {
      ++stable;
      windowMin = std::min(windowMin, value);
      windowMax = std::max(windowMax, value);
      if (stable >= window) {
        result.converged = true;
        result.step = t;
        result.value = value;
        return result;
      }
    } else {
      stable = 0;
      windowMin = value;
      windowMax = value;
    }
    result.step = t;
    result.value = value;
  }
  return result;
}

}  // namespace mimostat::mc
