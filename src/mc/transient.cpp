#include "mc/transient.hpp"

#include <cassert>
#include <cmath>

namespace mimostat::mc {

namespace {
double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
}  // namespace

std::vector<double> transientDistribution(const dtmc::ExplicitDtmc& dtmc,
                                          std::uint64_t steps) {
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  for (std::uint64_t t = 0; t < steps; ++t) {
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
  }
  return pi;
}

double instantaneousReward(const dtmc::ExplicitDtmc& dtmc,
                           const std::vector<double>& reward,
                           std::uint64_t steps) {
  return dot(transientDistribution(dtmc, steps), reward);
}

double cumulativeReward(const dtmc::ExplicitDtmc& dtmc,
                        const std::vector<double>& reward,
                        std::uint64_t steps) {
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  double total = 0.0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    total += dot(pi, reward);
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
  }
  return total;
}

std::vector<double> instantaneousRewardSeries(const dtmc::ExplicitDtmc& dtmc,
                                              const std::vector<double>& reward,
                                              std::uint64_t steps) {
  std::vector<double> series;
  series.reserve(steps + 1);
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  series.push_back(dot(pi, reward));
  for (std::uint64_t t = 0; t < steps; ++t) {
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
    series.push_back(dot(pi, reward));
  }
  return series;
}

SteadyDetection detectRewardSteadyState(const dtmc::ExplicitDtmc& dtmc,
                                        const std::vector<double>& reward,
                                        double tolerance, std::uint64_t window,
                                        std::uint64_t maxSteps) {
  assert(window >= 1);
  SteadyDetection result;
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  double windowMin = dot(pi, reward);
  double windowMax = windowMin;
  std::uint64_t stable = 0;
  for (std::uint64_t t = 1; t <= maxSteps; ++t) {
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
    const double value = dot(pi, reward);
    if (std::fabs(value - windowMin) <= tolerance &&
        std::fabs(value - windowMax) <= tolerance) {
      ++stable;
      windowMin = std::min(windowMin, value);
      windowMax = std::max(windowMax, value);
      if (stable >= window) {
        result.converged = true;
        result.step = t;
        result.value = value;
        return result;
      }
    } else {
      stable = 0;
      windowMin = value;
      windowMax = value;
    }
    result.step = t;
    result.value = value;
  }
  return result;
}

}  // namespace mimostat::mc
