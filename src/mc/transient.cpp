#include "mc/transient.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mimostat::mc {

namespace {
double dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}
}  // namespace

TransientSweep::TransientSweep(const dtmc::ExplicitDtmc& dtmc)
    : dtmc_(dtmc), pi_(dtmc.initialDistribution()), scratch_(pi_.size()) {}

void TransientSweep::advance() {
  dtmc_.multiplyLeft(pi_, scratch_);
  pi_.swap(scratch_);
  ++step_;
}

void TransientSweep::advanceTo(std::uint64_t step) {
  if (step < step_) {
    throw std::invalid_argument("TransientSweep: cannot rewind from step " +
                                std::to_string(step_) + " to " +
                                std::to_string(step));
  }
  while (step_ < step) advance();
}

double TransientSweep::expectedReward(const std::vector<double>& reward) const {
  return dot(pi_, reward);
}

std::vector<double> instantaneousRewardAtHorizons(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const std::vector<std::uint64_t>& horizons) {
  std::vector<std::size_t> order(horizons.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return horizons[a] < horizons[b];
  });

  std::vector<double> values(horizons.size());
  TransientSweep sweep(dtmc);
  for (const std::size_t idx : order) {
    sweep.advanceTo(horizons[idx]);
    values[idx] = sweep.expectedReward(reward);
  }
  return values;
}

std::vector<double> transientDistribution(const dtmc::ExplicitDtmc& dtmc,
                                          std::uint64_t steps) {
  TransientSweep sweep(dtmc);
  sweep.advanceTo(steps);
  return sweep.distribution();
}

double instantaneousReward(const dtmc::ExplicitDtmc& dtmc,
                           const std::vector<double>& reward,
                           std::uint64_t steps) {
  return dot(transientDistribution(dtmc, steps), reward);
}

double cumulativeReward(const dtmc::ExplicitDtmc& dtmc,
                        const std::vector<double>& reward,
                        std::uint64_t steps) {
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  double total = 0.0;
  for (std::uint64_t t = 0; t < steps; ++t) {
    total += dot(pi, reward);
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
  }
  return total;
}

std::vector<double> instantaneousRewardSeries(const dtmc::ExplicitDtmc& dtmc,
                                              const std::vector<double>& reward,
                                              std::uint64_t steps) {
  std::vector<double> series;
  series.reserve(steps + 1);
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  series.push_back(dot(pi, reward));
  for (std::uint64_t t = 0; t < steps; ++t) {
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
    series.push_back(dot(pi, reward));
  }
  return series;
}

SteadyDetection detectRewardSteadyState(const dtmc::ExplicitDtmc& dtmc,
                                        const std::vector<double>& reward,
                                        double tolerance, std::uint64_t window,
                                        std::uint64_t maxSteps) {
  assert(window >= 1);
  SteadyDetection result;
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  double windowMin = dot(pi, reward);
  double windowMax = windowMin;
  std::uint64_t stable = 0;
  for (std::uint64_t t = 1; t <= maxSteps; ++t) {
    dtmc.multiplyLeft(pi, next);
    pi.swap(next);
    const double value = dot(pi, reward);
    if (std::fabs(value - windowMin) <= tolerance &&
        std::fabs(value - windowMax) <= tolerance) {
      ++stable;
      windowMin = std::min(windowMin, value);
      windowMax = std::max(windowMax, value);
      if (stable >= window) {
        result.converged = true;
        result.step = t;
        result.value = value;
        return result;
      }
    } else {
      stable = 0;
      windowMin = value;
      windowMax = value;
    }
    result.step = t;
    result.value = value;
  }
  return result;
}

}  // namespace mimostat::mc
