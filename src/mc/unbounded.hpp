// Unbounded reachability: P(phi U psi) via the classic PRISM pipeline —
// Prob0 / Prob1 graph precomputation (on the matrix's cached stable
// transpose) followed by a la::LinearSolver on the remaining states.
//
// The default Gauss-Seidel solver is bit-identical to the legacy in-place
// value iteration; Jacobi converges to the same fixed point with different
// iterates and fans each sweep out over a thread pool deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/bit_vector.hpp"
#include "la/exec.hpp"
#include "la/solver.hpp"

namespace mimostat::mc {

struct ReachOptions {
  double epsilon = 1e-12;       ///< value-iteration convergence threshold
  std::uint64_t maxIterations = 1'000'000;
  /// Which la::LinearSolver runs the value iteration.
  la::SolverKind solver = la::SolverKind::kGaussSeidel;
  la::Exec exec;
};

struct ReachResult {
  std::vector<double> stateValues;
  std::uint64_t iterations = 0;
  bool converged = true;
  /// Max-norm update delta of the last iteration.
  double residual = 0.0;
  /// Name of the la:: solver that ran the value iteration; empty when
  /// Prob0/Prob1 classified every state and no solver was needed.
  std::string solver;
};

/// States with P(phi U psi) = 0: complement of backward reachability of psi
/// through phi states. phi/psi are packed state sets of numStates bits.
[[nodiscard]] la::BitVector prob0States(const dtmc::ExplicitDtmc& dtmc,
                                        const la::BitVector& phi,
                                        const la::BitVector& psi);

/// States with P(phi U psi) = 1 (standard double-fixpoint algorithm).
[[nodiscard]] la::BitVector prob1States(const dtmc::ExplicitDtmc& dtmc,
                                        const la::BitVector& phi,
                                        const la::BitVector& psi);

/// Full unbounded until probabilities.
[[nodiscard]] ReachResult untilProb(const dtmc::ExplicitDtmc& dtmc,
                                    const la::BitVector& phi,
                                    const la::BitVector& psi,
                                    const ReachOptions& options = {});

/// P(F psi) = P(true U psi).
[[nodiscard]] ReachResult reachProb(const dtmc::ExplicitDtmc& dtmc,
                                    const la::BitVector& psi,
                                    const ReachOptions& options = {});

/// Expected reward accumulated before reaching psi (R=? [ F psi ]).
/// States from which psi is reached with probability < 1 get +infinity
/// (PRISM semantics); psi states accumulate nothing.
[[nodiscard]] ReachResult expectedReachReward(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const la::BitVector& psi, const ReachOptions& options = {});

// Elimination-backed variants: same Prob0/Prob1 precomputation, but the
// undetermined states are solved exactly by reduce:: state elimination
// instead of an iterative solver. ReachResult::iterations reports the
// number of eliminated states, residual is 0 and the solver name is
// "elimination" (empty when precomputation classified every state, matching
// the iterative paths' "no solver ran" convention). Selected through
// mc::CheckOptions::reduction / engine auto-selection.

/// P(phi U psi) by state elimination.
[[nodiscard]] ReachResult untilProbByElimination(const dtmc::ExplicitDtmc& dtmc,
                                                 const la::BitVector& phi,
                                                 const la::BitVector& psi);

/// P(F psi) by state elimination.
[[nodiscard]] ReachResult reachProbByElimination(const dtmc::ExplicitDtmc& dtmc,
                                                 const la::BitVector& psi);

/// R=? [ F psi ] by state elimination.
[[nodiscard]] ReachResult expectedReachRewardByElimination(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const la::BitVector& psi);

}  // namespace mimostat::mc
