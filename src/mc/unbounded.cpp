#include "mc/unbounded.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "reduce/eliminate.hpp"

namespace mimostat::mc {

namespace {

/// Backward closure: all states reaching a seed state through edges whose
/// source satisfies `allowed` (seeds count regardless). Walks the matrix's
/// cached stable transpose — row j lists j's predecessors in ascending
/// order, so the BFS queue order matches the legacy hand-built transpose.
la::BitVector backwardClosure(const dtmc::ExplicitDtmc& dtmc,
                              la::BitVector seeds,
                              const la::BitVector& allowed) {
  const la::CsrMatrix& back = dtmc.matrix().transposed();
  std::vector<std::uint32_t> queue;
  // forEachSetBit is ascending, matching the legacy byte-vector seed scan.
  seeds.forEachSetBit(
      [&](std::size_t s) { queue.push_back(static_cast<std::uint32_t>(s)); });
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t v = queue[head];
    for (std::uint64_t k = back.rowPtr()[v]; k < back.rowPtr()[v + 1]; ++k) {
      const std::uint32_t u = back.col()[k];
      if (!seeds.get(u) && allowed.get(u)) {
        seeds.set(u);
        queue.push_back(u);
      }
    }
  }
  return seeds;
}

}  // namespace

la::BitVector prob0States(const dtmc::ExplicitDtmc& dtmc,
                          const la::BitVector& phi, const la::BitVector& psi) {
  // canReach[s] = s can reach psi via phi-states; prob0 is the complement.
  return ~backwardClosure(dtmc, psi, phi);
}

namespace {

/// prob1States against an already-computed prob0 set — callers that need
/// both sets (untilProb) pay the prob0 backward walk once, not twice.
la::BitVector prob1FromProb0(const dtmc::ExplicitDtmc& dtmc,
                             const la::BitVector& phi, const la::BitVector& psi,
                             la::BitVector prob0) {
  // Complement fixpoint (Baier & Katoen Alg. 46): states with P < 1 are the
  // backward closure of prob0 through "phi and not psi" states (psi states
  // never leave psi-satisfaction; non-phi non-psi states are already prob0).
  la::BitVector phiNotPsi(phi);
  phiNotPsi -= psi;
  return ~backwardClosure(dtmc, std::move(prob0), phiNotPsi);
}

}  // namespace

la::BitVector prob1States(const dtmc::ExplicitDtmc& dtmc,
                          const la::BitVector& phi, const la::BitVector& psi) {
  return prob1FromProb0(dtmc, phi, psi, prob0States(dtmc, phi, psi));
}

ReachResult untilProb(const dtmc::ExplicitDtmc& dtmc, const la::BitVector& phi,
                      const la::BitVector& psi, const ReachOptions& options) {
  const std::uint32_t n = dtmc.numStates();
  assert(phi.size() == n && psi.size() == n);

  const la::BitVector prob0 = prob0States(dtmc, phi, psi);
  const la::BitVector prob1 = prob1FromProb0(dtmc, phi, psi, prob0);

  ReachResult result;
  result.stateValues.assign(n, 0.0);
  prob1.forEachSetBit([&](std::size_t s) { result.stateValues[s] = 1.0; });

  // x = P x on the undetermined states (prob0/prob1 rows fixed).
  std::vector<std::uint32_t> undetermined;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!prob0.get(s) && !prob1.get(s)) undetermined.push_back(s);
  }
  if (undetermined.empty()) return result;

  const la::SolverOptions so{options.epsilon, options.maxIterations};
  la::SolveStats stats =
      makeLinearSolver(options.solver)
          ->solve(dtmc.matrix(), undetermined, nullptr, result.stateValues,
                  so, options.exec);
  result.iterations = stats.iterations;
  result.converged = stats.converged;
  result.residual = stats.residual;
  result.solver = std::move(stats.solver);
  return result;
}

ReachResult reachProb(const dtmc::ExplicitDtmc& dtmc, const la::BitVector& psi,
                      const ReachOptions& options) {
  const la::BitVector phi(dtmc.numStates(), true);
  return untilProb(dtmc, phi, psi, options);
}

ReachResult expectedReachReward(const dtmc::ExplicitDtmc& dtmc,
                                const std::vector<double>& reward,
                                const la::BitVector& psi,
                                const ReachOptions& options) {
  const std::uint32_t n = dtmc.numStates();
  assert(reward.size() == n && psi.size() == n);

  const la::BitVector phi(n, true);
  const la::BitVector prob1 = prob1States(dtmc, phi, psi);

  ReachResult result;
  result.stateValues.assign(n, 0.0);
  std::vector<std::uint32_t> active;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (psi.get(s)) {
      result.stateValues[s] = 0.0;  // accumulate nothing once reached
    } else if (!prob1.get(s)) {
      result.stateValues[s] = std::numeric_limits<double>::infinity();
    } else {
      active.push_back(s);
    }
  }
  if (active.empty()) return result;

  // x(s) = r(s) + sum_t P(s,t) x(t), target states fixed at 0. Infinite
  // neighbours propagate naturally through the sum.
  const la::SolverOptions so{options.epsilon, options.maxIterations};
  la::SolveStats stats =
      makeLinearSolver(options.solver)
          ->solve(dtmc.matrix(), active, reward.data(), result.stateValues,
                  so, options.exec);
  result.iterations = stats.iterations;
  result.converged = stats.converged;
  result.residual = stats.residual;
  result.solver = std::move(stats.solver);
  return result;
}

ReachResult untilProbByElimination(const dtmc::ExplicitDtmc& dtmc,
                                   const la::BitVector& phi,
                                   const la::BitVector& psi) {
  assert(phi.size() == dtmc.numStates() && psi.size() == dtmc.numStates());
  const la::BitVector prob0 = prob0States(dtmc, phi, psi);
  const la::BitVector prob1 = prob1FromProb0(dtmc, phi, psi, prob0);

  reduce::EliminationResult elim =
      reduce::eliminateUntilProb(dtmc, prob0, prob1);
  ReachResult result;
  result.stateValues = std::move(elim.stateValues);
  result.iterations = elim.eliminated;
  result.residual = 0.0;
  result.converged = true;
  // Empty solver name when precomputation answered everything, matching the
  // iterative paths' convention.
  if (elim.eliminated > 0) result.solver = "elimination";
  return result;
}

ReachResult reachProbByElimination(const dtmc::ExplicitDtmc& dtmc,
                                   const la::BitVector& psi) {
  const la::BitVector phi(dtmc.numStates(), true);
  return untilProbByElimination(dtmc, phi, psi);
}

ReachResult expectedReachRewardByElimination(const dtmc::ExplicitDtmc& dtmc,
                                             const std::vector<double>& reward,
                                             const la::BitVector& psi) {
  const std::uint32_t n = dtmc.numStates();
  assert(reward.size() == n && psi.size() == n);
  const la::BitVector phi(n, true);
  const la::BitVector reachesPsi = prob1States(dtmc, phi, psi);

  reduce::EliminationResult elim =
      reduce::eliminateReachReward(dtmc, reward, psi, reachesPsi);
  ReachResult result;
  result.stateValues = std::move(elim.stateValues);
  result.iterations = elim.eliminated;
  result.residual = 0.0;
  result.converged = true;
  if (elim.eliminated > 0) result.solver = "elimination";
  return result;
}

}  // namespace mimostat::mc
