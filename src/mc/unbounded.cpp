#include "mc/unbounded.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "dtmc/graph.hpp"

namespace mimostat::mc {

std::vector<std::uint8_t> prob0States(const dtmc::ExplicitDtmc& dtmc,
                                      const std::vector<std::uint8_t>& phi,
                                      const std::vector<std::uint8_t>& psi) {
  const std::uint32_t n = dtmc.numStates();
  // Backward closure of psi through phi-states, computed on the fly:
  // canReach[s] = s can reach psi via phi-states.
  std::vector<std::uint8_t> canReach(psi);
  // Build transpose walk: repeat relaxation until fixpoint (worklist on the
  // reverse graph via repeated forward sweeps is O(n*m) worst case; use the
  // dedicated backward reachability with a phi-restricted graph instead).
  //
  // We restrict to phi by masking sources: an edge u->v counts only when
  // phi[u] (u may be traversed) — psi states themselves count regardless.
  std::vector<std::uint32_t> queue;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (canReach[s]) queue.push_back(s);
  }
  // Transposed adjacency built once.
  std::vector<std::uint64_t> inPtr(n + 1, 0);
  for (std::uint64_t k = 0; k < dtmc.numTransitions(); ++k) {
    ++inPtr[dtmc.col()[k] + 1];
  }
  for (std::uint32_t i = 0; i < n; ++i) inPtr[i + 1] += inPtr[i];
  std::vector<std::uint32_t> inCol(dtmc.numTransitions());
  {
    std::vector<std::uint64_t> cursor(inPtr.begin(), inPtr.end() - 1);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
        inCol[cursor[dtmc.col()[k]]++] = s;
      }
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t v = queue[head];
    for (std::uint64_t k = inPtr[v]; k < inPtr[v + 1]; ++k) {
      const std::uint32_t u = inCol[k];
      if (!canReach[u] && phi[u]) {
        canReach[u] = 1;
        queue.push_back(u);
      }
    }
  }
  std::vector<std::uint8_t> prob0(n);
  for (std::uint32_t s = 0; s < n; ++s) prob0[s] = canReach[s] ? 0 : 1;
  return prob0;
}

std::vector<std::uint8_t> prob1States(const dtmc::ExplicitDtmc& dtmc,
                                      const std::vector<std::uint8_t>& phi,
                                      const std::vector<std::uint8_t>& psi) {
  // Standard algorithm: start from candidate set C = all states; repeatedly
  // remove states that can escape to (prob0 OR removed) before reaching psi.
  // Equivalent fixpoint formulation (Baier & Katoen Alg. 46):
  //   prob1 = nu Z. psi OR (phi AND all... ) computed via complement:
  // We compute the complement: states with P < 1 = backward closure of prob0
  // through "phi and not psi" edges, iterated to fixpoint... The simple and
  // correct version: iterate
  //   bad_0 = prob0
  //   bad_{i+1} = bad_i U { s in phi\psi : exists edge s->t with t in bad_i }
  //     restricted so that s is added only if it can reach bad while avoiding
  //     psi — which is exactly backward reachability of bad through phi\psi.
  const std::uint32_t n = dtmc.numStates();
  const std::vector<std::uint8_t> prob0 = prob0States(dtmc, phi, psi);

  // Backward reachability of prob0 through states in phi and not psi
  // (psi states never leave psi-satisfaction; non-phi non-psi states are
  // already prob0).
  std::vector<std::uint64_t> inPtr(n + 1, 0);
  for (std::uint64_t k = 0; k < dtmc.numTransitions(); ++k) {
    ++inPtr[dtmc.col()[k] + 1];
  }
  for (std::uint32_t i = 0; i < n; ++i) inPtr[i + 1] += inPtr[i];
  std::vector<std::uint32_t> inCol(dtmc.numTransitions());
  {
    std::vector<std::uint64_t> cursor(inPtr.begin(), inPtr.end() - 1);
    for (std::uint32_t s = 0; s < n; ++s) {
      for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
        inCol[cursor[dtmc.col()[k]]++] = s;
      }
    }
  }
  std::vector<std::uint8_t> lessThanOne(prob0);
  std::vector<std::uint32_t> queue;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (lessThanOne[s]) queue.push_back(s);
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t v = queue[head];
    for (std::uint64_t k = inPtr[v]; k < inPtr[v + 1]; ++k) {
      const std::uint32_t u = inCol[k];
      if (!lessThanOne[u] && phi[u] && !psi[u]) {
        lessThanOne[u] = 1;
        queue.push_back(u);
      }
    }
  }
  std::vector<std::uint8_t> prob1(n);
  for (std::uint32_t s = 0; s < n; ++s) prob1[s] = lessThanOne[s] ? 0 : 1;
  return prob1;
}

ReachResult untilProb(const dtmc::ExplicitDtmc& dtmc,
                      const std::vector<std::uint8_t>& phi,
                      const std::vector<std::uint8_t>& psi,
                      const ReachOptions& options) {
  const std::uint32_t n = dtmc.numStates();
  assert(phi.size() == n && psi.size() == n);

  const std::vector<std::uint8_t> prob0 = prob0States(dtmc, phi, psi);
  const std::vector<std::uint8_t> prob1 = prob1States(dtmc, phi, psi);

  ReachResult result;
  result.stateValues.assign(n, 0.0);
  for (std::uint32_t s = 0; s < n; ++s) {
    if (prob1[s]) result.stateValues[s] = 1.0;
  }

  // Gauss–Seidel value iteration on the undetermined states.
  std::vector<std::uint32_t> undetermined;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (!prob0[s] && !prob1[s]) undetermined.push_back(s);
  }
  if (undetermined.empty()) return result;

  std::vector<double>& x = result.stateValues;
  for (std::uint64_t iter = 0; iter < options.maxIterations; ++iter) {
    ++result.iterations;
    double maxDelta = 0.0;
    for (const std::uint32_t s : undetermined) {
      double acc = 0.0;
      for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
        acc += dtmc.val()[k] * x[dtmc.col()[k]];
      }
      maxDelta = std::max(maxDelta, std::fabs(acc - x[s]));
      x[s] = acc;
    }
    if (maxDelta < options.epsilon) return result;
  }
  result.converged = false;
  return result;
}

ReachResult reachProb(const dtmc::ExplicitDtmc& dtmc,
                      const std::vector<std::uint8_t>& psi,
                      const ReachOptions& options) {
  const std::vector<std::uint8_t> phi(dtmc.numStates(), 1);
  return untilProb(dtmc, phi, psi, options);
}

ReachResult expectedReachReward(const dtmc::ExplicitDtmc& dtmc,
                                const std::vector<double>& reward,
                                const std::vector<std::uint8_t>& psi,
                                const ReachOptions& options) {
  const std::uint32_t n = dtmc.numStates();
  assert(reward.size() == n && psi.size() == n);

  const std::vector<std::uint8_t> phi(n, 1);
  const std::vector<std::uint8_t> prob1 = prob1States(dtmc, phi, psi);

  ReachResult result;
  result.stateValues.assign(n, 0.0);
  std::vector<std::uint32_t> active;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (psi[s]) {
      result.stateValues[s] = 0.0;  // accumulate nothing once reached
    } else if (!prob1[s]) {
      result.stateValues[s] = std::numeric_limits<double>::infinity();
    } else {
      active.push_back(s);
    }
  }
  if (active.empty()) return result;

  // Gauss–Seidel: x(s) = r(s) + sum_t P(s,t) x(t), target states fixed at 0.
  // Infinite neighbours propagate naturally through the sum.
  std::vector<double>& x = result.stateValues;
  for (std::uint64_t iter = 0; iter < options.maxIterations; ++iter) {
    ++result.iterations;
    double maxDelta = 0.0;
    for (const std::uint32_t s : active) {
      double acc = reward[s];
      for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
        acc += dtmc.val()[k] * x[dtmc.col()[k]];
      }
      maxDelta = std::max(maxDelta, std::fabs(acc - x[s]));
      x[s] = acc;
    }
    if (maxDelta < options.epsilon) return result;
  }
  result.converged = false;
  return result;
}

}  // namespace mimostat::mc
