// Transient analysis: forward propagation of the state distribution.
//
// R=? [ I=T ] (the paper's P2/C1 average-case metrics) is the expected
// instantaneous reward after exactly T transitions: pi_T . r where
// pi_T = pi_0 P^T.
//
// Every propagation step runs through la::spmvLeft / la::spmmLeft, so a
// caller-supplied la::Exec fans the multiply over a thread pool with
// bit-identical results at any pool size.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/exec.hpp"

namespace mimostat::mc {

/// Resumable forward iteration of one or more state distributions:
/// pi_{t+1} = pi_t P. One sweep serves every horizon-bounded query against
/// the same model — the engine's batcher advances a single sweep to the
/// largest requested horizon and samples rewards along the way, instead of
/// re-propagating from pi_0 once per property. Advancing t steps performs
/// exactly the same multiply sequence as a fresh t-step propagation, so
/// sampled values match per-call results bit for bit.
///
/// The multi-vector form carries k distributions through ONE matrix
/// traversal per step (la::spmm): each vector's floating-point sequence is
/// identical to its own single-vector sweep, so batching k sweeps changes
/// wall-clock only, never values.
class TransientSweep {
 public:
  explicit TransientSweep(const dtmc::ExplicitDtmc& dtmc, la::Exec exec = {});
  /// Advance the k given start distributions together. Each must have
  /// numStates entries.
  TransientSweep(const dtmc::ExplicitDtmc& dtmc,
                 std::vector<std::vector<double>> starts, la::Exec exec = {});

  /// Steps taken so far (the t of the current distributions).
  [[nodiscard]] std::uint64_t step() const { return step_; }
  /// Number of distributions advancing together.
  [[nodiscard]] std::size_t vectorCount() const { return vectors_; }
  /// The current distribution pi_t (single-vector sweeps only).
  [[nodiscard]] const std::vector<double>& distribution() const;
  /// Copy of distribution i (any sweep width).
  [[nodiscard]] std::vector<double> distributionAt(std::size_t i) const;

  /// Advance one transition (all vectors, one matrix traversal).
  void advance();
  /// Advance to an absolute step (forward only; throws std::invalid_argument
  /// on an earlier step).
  void advanceTo(std::uint64_t step);

  /// Expected reward under the current distribution: pi_t . r
  /// (single-vector sweeps).
  [[nodiscard]] double expectedReward(const std::vector<double>& reward) const;
  /// Expected reward under distribution i.
  [[nodiscard]] double expectedRewardAt(std::size_t i,
                                        const std::vector<double>& reward) const;

 private:
  const dtmc::ExplicitDtmc& dtmc_;
  la::Exec exec_;
  /// Row-major numStates x vectors_ (vector j of state s at x_[s*k + j]);
  /// for vectors_ == 1 this is a plain distribution.
  std::vector<double> x_;
  std::vector<double> scratch_;
  std::size_t vectors_ = 1;
  std::uint64_t step_ = 0;
};

/// R=?[I=T] for each horizon in one sweep to max(horizons). Horizons may be
/// unsorted and may repeat; results are returned in input order and are bit
/// identical to per-horizon instantaneousReward calls.
[[nodiscard]] std::vector<double> instantaneousRewardAtHorizons(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const std::vector<std::uint64_t>& horizons, const la::Exec& exec = {});

/// Distribution after exactly `steps` transitions from the initial
/// distribution.
[[nodiscard]] std::vector<double> transientDistribution(
    const dtmc::ExplicitDtmc& dtmc, std::uint64_t steps,
    const la::Exec& exec = {});

/// Expected instantaneous reward after exactly `steps` transitions
/// (R=? [ I=steps ]).
[[nodiscard]] double instantaneousReward(const dtmc::ExplicitDtmc& dtmc,
                                         const std::vector<double>& reward,
                                         std::uint64_t steps,
                                         const la::Exec& exec = {});

/// Expected cumulative reward over the first `steps` transitions
/// (R=? [ C<=steps ]): sum_{t=0}^{steps-1} pi_t . r.
[[nodiscard]] double cumulativeReward(const dtmc::ExplicitDtmc& dtmc,
                                      const std::vector<double>& reward,
                                      std::uint64_t steps,
                                      const la::Exec& exec = {});

/// Instantaneous reward at every t in [0, steps] — one pass, used for
/// steady-state detection sweeps (the paper's Tables III/IV).
[[nodiscard]] std::vector<double> instantaneousRewardSeries(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    std::uint64_t steps, const la::Exec& exec = {});

struct SteadyDetection {
  bool converged = false;
  std::uint64_t step = 0;   ///< first step where the criterion held
  double value = 0.0;       ///< reward value at that step
};

/// Iterate the instantaneous reward forward until successive values over a
/// window of `window` steps stay within `tolerance`, or `maxSteps` is hit.
/// This operationalises the paper's "explore until the DTMC reaches steady
/// state" recipe.
[[nodiscard]] SteadyDetection detectRewardSteadyState(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    double tolerance, std::uint64_t window, std::uint64_t maxSteps,
    const la::Exec& exec = {});

}  // namespace mimostat::mc
