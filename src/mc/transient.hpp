// Transient analysis: forward propagation of the state distribution.
//
// R=? [ I=T ] (the paper's P2/C1 average-case metrics) is the expected
// instantaneous reward after exactly T transitions: pi_T . r where
// pi_T = pi_0 P^T.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"

namespace mimostat::mc {

/// Resumable forward iteration of the state distribution: pi_0 = initial,
/// pi_{t+1} = pi_t P. One sweep serves every horizon-bounded query against
/// the same model — the engine's batcher advances a single sweep to the
/// largest requested horizon and samples rewards along the way, instead of
/// re-propagating from pi_0 once per property. Advancing t steps performs
/// exactly the same multiply sequence as a fresh t-step propagation, so
/// sampled values match per-call results bit for bit.
class TransientSweep {
 public:
  explicit TransientSweep(const dtmc::ExplicitDtmc& dtmc);

  /// Steps taken so far (the t of the current distribution).
  [[nodiscard]] std::uint64_t step() const { return step_; }
  /// The current distribution pi_t.
  [[nodiscard]] const std::vector<double>& distribution() const { return pi_; }

  /// Advance one transition.
  void advance();
  /// Advance to an absolute step (forward only; throws std::invalid_argument
  /// on an earlier step).
  void advanceTo(std::uint64_t step);

  /// Expected reward under the current distribution: pi_t . r.
  [[nodiscard]] double expectedReward(const std::vector<double>& reward) const;

 private:
  const dtmc::ExplicitDtmc& dtmc_;
  std::vector<double> pi_;
  std::vector<double> scratch_;
  std::uint64_t step_ = 0;
};

/// R=?[I=T] for each horizon in one sweep to max(horizons). Horizons may be
/// unsorted and may repeat; results are returned in input order and are bit
/// identical to per-horizon instantaneousReward calls.
[[nodiscard]] std::vector<double> instantaneousRewardAtHorizons(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    const std::vector<std::uint64_t>& horizons);

/// Distribution after exactly `steps` transitions from the initial
/// distribution.
[[nodiscard]] std::vector<double> transientDistribution(
    const dtmc::ExplicitDtmc& dtmc, std::uint64_t steps);

/// Expected instantaneous reward after exactly `steps` transitions
/// (R=? [ I=steps ]).
[[nodiscard]] double instantaneousReward(const dtmc::ExplicitDtmc& dtmc,
                                         const std::vector<double>& reward,
                                         std::uint64_t steps);

/// Expected cumulative reward over the first `steps` transitions
/// (R=? [ C<=steps ]): sum_{t=0}^{steps-1} pi_t . r.
[[nodiscard]] double cumulativeReward(const dtmc::ExplicitDtmc& dtmc,
                                      const std::vector<double>& reward,
                                      std::uint64_t steps);

/// Instantaneous reward at every t in [0, steps] — one pass, used for
/// steady-state detection sweeps (the paper's Tables III/IV).
[[nodiscard]] std::vector<double> instantaneousRewardSeries(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    std::uint64_t steps);

struct SteadyDetection {
  bool converged = false;
  std::uint64_t step = 0;   ///< first step where the criterion held
  double value = 0.0;       ///< reward value at that step
};

/// Iterate the instantaneous reward forward until successive values over a
/// window of `window` steps stay within `tolerance`, or `maxSteps` is hit.
/// This operationalises the paper's "explore until the DTMC reaches steady
/// state" recipe.
[[nodiscard]] SteadyDetection detectRewardSteadyState(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    double tolerance, std::uint64_t window, std::uint64_t maxSteps);

}  // namespace mimostat::mc
