// Transient analysis: forward propagation of the state distribution.
//
// R=? [ I=T ] (the paper's P2/C1 average-case metrics) is the expected
// instantaneous reward after exactly T transitions: pi_T . r where
// pi_T = pi_0 P^T.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"

namespace mimostat::mc {

/// Distribution after exactly `steps` transitions from the initial
/// distribution.
[[nodiscard]] std::vector<double> transientDistribution(
    const dtmc::ExplicitDtmc& dtmc, std::uint64_t steps);

/// Expected instantaneous reward after exactly `steps` transitions
/// (R=? [ I=steps ]).
[[nodiscard]] double instantaneousReward(const dtmc::ExplicitDtmc& dtmc,
                                         const std::vector<double>& reward,
                                         std::uint64_t steps);

/// Expected cumulative reward over the first `steps` transitions
/// (R=? [ C<=steps ]): sum_{t=0}^{steps-1} pi_t . r.
[[nodiscard]] double cumulativeReward(const dtmc::ExplicitDtmc& dtmc,
                                      const std::vector<double>& reward,
                                      std::uint64_t steps);

/// Instantaneous reward at every t in [0, steps] — one pass, used for
/// steady-state detection sweeps (the paper's Tables III/IV).
[[nodiscard]] std::vector<double> instantaneousRewardSeries(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    std::uint64_t steps);

struct SteadyDetection {
  bool converged = false;
  std::uint64_t step = 0;   ///< first step where the criterion held
  double value = 0.0;       ///< reward value at that step
};

/// Iterate the instantaneous reward forward until successive values over a
/// window of `window` steps stay within `tolerance`, or `maxSteps` is hit.
/// This operationalises the paper's "explore until the DTMC reaches steady
/// state" recipe.
[[nodiscard]] SteadyDetection detectRewardSteadyState(
    const dtmc::ExplicitDtmc& dtmc, const std::vector<double>& reward,
    double tolerance, std::uint64_t window, std::uint64_t maxSteps);

}  // namespace mimostat::mc
