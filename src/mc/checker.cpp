#include "mc/checker.hpp"

#include <cmath>
#include <stdexcept>

#include "mc/bounded.hpp"
#include "mc/steady.hpp"
#include "mc/transient.hpp"
#include "mc/unbounded.hpp"
#include "util/timer.hpp"

namespace mimostat::mc {

Checker::Checker(const dtmc::ExplicitDtmc& dtmc, const dtmc::Model& model,
                 CheckOptions options, pctl::PropertyCache* parseCache)
    : dtmc_(dtmc),
      model_(model),
      options_(options),
      parseCache_(parseCache != nullptr ? parseCache
                                        : &pctl::PropertyCache::global()) {}

std::vector<std::uint8_t> Checker::evalStateFormula(
    const pctl::StateFormula& f) const {
  using Kind = pctl::StateFormula::Kind;
  const std::uint32_t n = dtmc_.numStates();
  std::vector<std::uint8_t> truth(n, 0);

  switch (f.kind) {
    case Kind::kTrue:
      std::fill(truth.begin(), truth.end(), 1);
      return truth;
    case Kind::kFalse:
      return truth;
    case Kind::kAtom: {
      // Resolve against a variable first (bare identifier sugar: var != 0),
      // then against the model's named atoms.
      const auto varIdx = dtmc_.varLayout().tryIndexOf(f.name);
      if (varIdx != dtmc::VarLayout::npos) {
        for (std::uint32_t s = 0; s < n; ++s) {
          truth[s] = dtmc_.varValue(s, varIdx) != 0 ? 1 : 0;
        }
        return truth;
      }
      return dtmc_.evalAtom(model_, f.name);
    }
    case Kind::kVarCmp: {
      const auto varIdx = dtmc_.varLayout().tryIndexOf(f.name);
      if (varIdx == dtmc::VarLayout::npos) {
        throw std::runtime_error("pCTL: unknown state variable '" + f.name +
                                 "'");
      }
      for (std::uint32_t s = 0; s < n; ++s) {
        truth[s] =
            pctl::evalCmp(f.op, dtmc_.varValue(s, varIdx), f.value) ? 1 : 0;
      }
      return truth;
    }
    case Kind::kNot: {
      truth = evalStateFormula(*f.lhs);
      for (auto& b : truth) b = b ? 0 : 1;
      return truth;
    }
    case Kind::kAnd: {
      truth = evalStateFormula(*f.lhs);
      const auto rhs = evalStateFormula(*f.rhs);
      for (std::uint32_t s = 0; s < n; ++s) truth[s] = truth[s] && rhs[s];
      return truth;
    }
    case Kind::kOr: {
      truth = evalStateFormula(*f.lhs);
      const auto rhs = evalStateFormula(*f.rhs);
      for (std::uint32_t s = 0; s < n; ++s) truth[s] = truth[s] || rhs[s];
      return truth;
    }
  }
  throw std::logic_error("unreachable state-formula kind");
}

CheckResult Checker::check(const pctl::Property& property) const {
  util::Stopwatch timer;
  CheckResult result;

  const auto reachOptions = [&] {
    ReachOptions ro;
    ro.epsilon = options_.epsilon;
    ro.maxIterations = options_.maxIterations;
    ro.solver = options_.linearSolver;
    ro.exec = options_.exec;
    return ro;
  };
  const auto recordReach = [&](const ReachResult& reach) {
    // Prob0/Prob1 may classify every state, in which case no linear solver
    // ran — the report stays absent rather than claiming a 0-iteration
    // convergence.
    if (reach.solver.empty()) return;
    result.solver = la::SolveStats{reach.iterations, reach.residual,
                                   reach.converged, reach.solver};
  };

  if (property.kind == pctl::Property::Kind::kProb) {
    const pctl::PathFormula& path = property.prob.path;
    std::vector<double> values;
    switch (path.kind) {
      case pctl::PathFormula::Kind::kNext:
        values = nextProb(dtmc_, evalStateFormula(*path.lhs));
        break;
      case pctl::PathFormula::Kind::kFinally: {
        const auto psi = evalStateFormula(*path.lhs);
        if (path.bound) {
          values = boundedFinally(dtmc_, psi, *path.bound);
        } else {
          ReachResult reach = reachProb(dtmc_, psi, reachOptions());
          recordReach(reach);
          values = std::move(reach.stateValues);
        }
        break;
      }
      case pctl::PathFormula::Kind::kGlobally: {
        const auto phi = evalStateFormula(*path.lhs);
        if (path.bound) {
          values = boundedGlobally(dtmc_, phi, *path.bound);
        } else {
          // G phi = !F !phi
          std::vector<std::uint8_t> notPhi(phi.size());
          for (std::size_t s = 0; s < phi.size(); ++s) notPhi[s] = !phi[s];
          ReachResult reach = reachProb(dtmc_, notPhi, reachOptions());
          recordReach(reach);
          values = std::move(reach.stateValues);
          for (double& v : values) v = 1.0 - v;
        }
        break;
      }
      case pctl::PathFormula::Kind::kUntil: {
        const auto phi = evalStateFormula(*path.lhs);
        const auto psi = evalStateFormula(*path.rhs);
        if (path.bound) {
          values = boundedUntil(dtmc_, phi, psi, *path.bound);
        } else {
          ReachResult reach = untilProb(dtmc_, phi, psi, reachOptions());
          recordReach(reach);
          values = std::move(reach.stateValues);
        }
        break;
      }
    }
    result.value = fromInitial(dtmc_, values);
    result.stateValues = std::move(values);
    if (!property.prob.isQuery) {
      result.satisfied = pctl::evalCmp(property.prob.boundOp, result.value,
                                       property.prob.boundValue);
    }
  } else {
    const pctl::RewardQuery& rq = property.reward;
    const std::vector<double> reward = dtmc_.evalReward(model_, rq.rewardName);
    switch (rq.kind) {
      case pctl::RewardQuery::Kind::kInstantaneous:
        result.value = instantaneousReward(dtmc_, reward, rq.bound,
                                           options_.exec);
        break;
      case pctl::RewardQuery::Kind::kCumulative:
        result.value = cumulativeReward(dtmc_, reward, rq.bound,
                                        options_.exec);
        break;
      case pctl::RewardQuery::Kind::kSteadyState: {
        SteadyOptions so;
        so.cesaroAveraging = options_.cesaroSteadyState;
        so.exec = options_.exec;
        const SteadyResult ss = steadyStateDistribution(dtmc_, so);
        result.value = steadyStateReward(ss, reward);
        result.solver =
            la::SolveStats{ss.iterations, ss.residual, ss.converged,
                           ss.solver};
        break;
      }
      case pctl::RewardQuery::Kind::kReachability: {
        const auto psi = evalStateFormula(*rq.target);
        ReachResult reach =
            expectedReachReward(dtmc_, reward, psi, reachOptions());
        recordReach(reach);
        result.value = fromInitial(dtmc_, reach.stateValues);
        result.stateValues = std::move(reach.stateValues);
        break;
      }
    }
    if (!rq.isQuery) {
      result.satisfied =
          pctl::evalCmp(rq.boundOp, result.value, rq.boundValue);
    }
  }

  result.checkSeconds = timer.elapsedSeconds();
  return result;
}

pctl::Property Checker::parsedProperty(std::string_view propertyText) const {
  return parseCache_->get(propertyText);
}

CheckResult Checker::check(std::string_view propertyText) const {
  return check(parsedProperty(propertyText));
}

}  // namespace mimostat::mc
