#include "mc/checker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "la/spmv.hpp"
#include "mc/bounded.hpp"
#include "mc/steady.hpp"
#include "mc/transient.hpp"
#include "mc/unbounded.hpp"
#include "obs/trace.hpp"

namespace mimostat::mc {

Checker::Checker(const dtmc::ExplicitDtmc& dtmc, const dtmc::Model& model,
                 CheckOptions options, pctl::PropertyCache* parseCache)
    : dtmc_(dtmc),
      model_(model),
      options_(options),
      parseCache_(parseCache != nullptr ? parseCache
                                        : &pctl::PropertyCache::global()) {}

la::BitVector Checker::evalStateFormula(const pctl::StateFormula& f) const {
  using Kind = pctl::StateFormula::Kind;
  const std::uint32_t n = dtmc_.numStates();
  la::BitVector truth(n);

  switch (f.kind) {
    case Kind::kTrue:
      truth.setAll();
      return truth;
    case Kind::kFalse:
      return truth;
    case Kind::kAtom: {
      // Resolve against a variable first (bare identifier sugar: var != 0),
      // then against the model's named atoms.
      const auto varIdx = dtmc_.varLayout().tryIndexOf(f.name);
      if (varIdx != dtmc::VarLayout::npos) {
        for (std::uint32_t s = 0; s < n; ++s) {
          if (dtmc_.varValue(s, varIdx) != 0) truth.set(s);
        }
        return truth;
      }
      return dtmc_.evalAtom(model_, f.name);
    }
    case Kind::kVarCmp: {
      const auto varIdx = dtmc_.varLayout().tryIndexOf(f.name);
      if (varIdx == dtmc::VarLayout::npos) {
        throw std::runtime_error("pCTL: unknown state variable '" + f.name +
                                 "'");
      }
      for (std::uint32_t s = 0; s < n; ++s) {
        if (pctl::evalCmp(f.op, dtmc_.varValue(s, varIdx), f.value)) {
          truth.set(s);
        }
      }
      return truth;
    }
    case Kind::kNot:
      return ~evalStateFormula(*f.lhs);
    case Kind::kAnd: {
      truth = evalStateFormula(*f.lhs);
      truth &= evalStateFormula(*f.rhs);
      return truth;
    }
    case Kind::kOr: {
      truth = evalStateFormula(*f.lhs);
      truth |= evalStateFormula(*f.rhs);
      return truth;
    }
  }
  throw std::logic_error("unreachable state-formula kind");
}

CheckResult Checker::checkSingle(
    const pctl::Property& property, const pctl::EvalPlan::Single& single,
    const std::vector<la::BitVector>& maskValues) const {
  // Explicit parent: singles run on pool threads via the caller's runner.
  // Solver spans ("la.solve.*") opened inside reachProb & co. nest under
  // this one through the tracer's same-thread tracking.
  obs::Span span("mc.single", options_.traceParent);
  CheckResult result;

  const auto reachOptions = [&] {
    ReachOptions ro;
    ro.epsilon = options_.epsilon;
    ro.maxIterations = options_.maxIterations;
    ro.solver = options_.linearSolver;
    ro.exec = options_.exec;
    return ro;
  };
  // Elimination-selected unbounded paths answer exactly, no epsilon; the
  // toggle is resolved by the engine (kAuto never reaches here as on).
  const bool elim = reduce::eliminationOn(options_.reduction);
  const auto recordReach = [&](const ReachResult& reach) {
    // Prob0/Prob1 may classify every state, in which case no linear solver
    // ran — the report stays absent rather than claiming a 0-iteration
    // convergence.
    if (reach.solver.empty()) return;
    result.solver = la::SolveStats{reach.iterations, reach.residual,
                                   reach.converged, reach.solver};
  };

  // State sets come from the plan's shared mask table — evaluated once per
  // checkAll, shared with the bounded group's columns and with any sibling
  // single over the same set.
  const auto maskAt = [&](std::size_t m) -> const la::BitVector& {
    return maskValues[m];
  };

  if (property.kind == pctl::Property::Kind::kProb) {
    const pctl::PathFormula& path = property.prob.path;
    std::vector<double> values;
    switch (path.kind) {
      case pctl::PathFormula::Kind::kNext:
        values = nextProb(dtmc_, maskAt(single.psiMask), options_.exec);
        break;
      case pctl::PathFormula::Kind::kFinally: {
        const la::BitVector& psi = maskAt(single.psiMask);
        if (path.bound) {
          values = boundedFinally(dtmc_, psi, *path.bound, options_.exec);
        } else {
          ReachResult reach = elim ? reachProbByElimination(dtmc_, psi)
                                   : reachProb(dtmc_, psi, reachOptions());
          recordReach(reach);
          values = std::move(reach.stateValues);
        }
        break;
      }
      case pctl::PathFormula::Kind::kGlobally: {
        // The plan interned the *negated* operand: G phi = 1 - F !phi,
        // bounded and unbounded alike.
        const la::BitVector& notPhi = maskAt(single.psiMask);
        if (path.bound) {
          values = boundedFinally(dtmc_, notPhi, *path.bound, options_.exec);
        } else {
          ReachResult reach = elim ? reachProbByElimination(dtmc_, notPhi)
                                   : reachProb(dtmc_, notPhi, reachOptions());
          recordReach(reach);
          values = std::move(reach.stateValues);
        }
        for (double& v : values) v = 1.0 - v;
        break;
      }
      case pctl::PathFormula::Kind::kUntil: {
        const la::BitVector phiTrue(dtmc_.numStates(), true);
        const la::BitVector& phi = single.phiMask == pctl::EvalPlan::kNoMask
                                       ? phiTrue
                                       : maskAt(single.phiMask);
        const la::BitVector& psi = maskAt(single.psiMask);
        if (path.bound) {
          values = boundedUntil(dtmc_, phi, psi, *path.bound, options_.exec);
        } else {
          ReachResult reach =
              elim ? untilProbByElimination(dtmc_, phi, psi)
                   : untilProb(dtmc_, phi, psi, reachOptions());
          recordReach(reach);
          values = std::move(reach.stateValues);
        }
        break;
      }
    }
    result.value = fromInitial(dtmc_, values);
    result.stateValues = std::move(values);
    if (!property.prob.isQuery) {
      result.satisfied = pctl::evalCmp(property.prob.boundOp, result.value,
                                       property.prob.boundValue);
    }
  } else {
    const pctl::RewardQuery& rq = property.reward;
    const std::vector<double> reward = dtmc_.evalReward(model_, rq.rewardName);
    switch (rq.kind) {
      case pctl::RewardQuery::Kind::kInstantaneous:
        result.value = instantaneousReward(dtmc_, reward, rq.bound,
                                           options_.exec);
        break;
      case pctl::RewardQuery::Kind::kCumulative:
        result.value = cumulativeReward(dtmc_, reward, rq.bound,
                                        options_.exec);
        break;
      case pctl::RewardQuery::Kind::kSteadyState: {
        SteadyOptions so;
        so.cesaroAveraging = options_.cesaroSteadyState;
        so.exec = options_.exec;
        const SteadyResult ss = steadyStateDistribution(dtmc_, so);
        result.value = steadyStateReward(ss, reward);
        result.solver =
            la::SolveStats{ss.iterations, ss.residual, ss.converged,
                           ss.solver};
        break;
      }
      case pctl::RewardQuery::Kind::kReachability: {
        ReachResult reach =
            elim ? expectedReachRewardByElimination(dtmc_, reward,
                                                    maskAt(single.psiMask))
                 : expectedReachReward(dtmc_, reward, maskAt(single.psiMask),
                                       reachOptions());
        recordReach(reach);
        result.value = fromInitial(dtmc_, reach.stateValues);
        result.stateValues = std::move(reach.stateValues);
        break;
      }
    }
    if (!rq.isQuery) {
      result.satisfied =
          pctl::evalCmp(rq.boundOp, result.value, rq.boundValue);
    }
  }

  result.checkSeconds = span.stopSeconds();
  return result;
}

void Checker::runBoundedGroup(
    const pctl::EvalPlan& plan, const std::vector<pctl::Property>& properties,
    const std::vector<la::BitVector>& maskValues,
    const std::vector<std::string>& maskErrors,
    std::vector<CheckResult>& results, pctl::PlanStats* planStats) const {
  obs::Span groupSpan("mc.boundedTraversal", options_.traceParent);
  // Refuse transpose-only models before any per-column work: checkAll's
  // group task captures this as a per-property error on every bounded
  // readout, so sibling transient/steady properties still answer.
  requireForwardOrientation(dtmc_, "mc::Checker (bounded group)");
  const std::uint32_t n = dtmc_.numStates();
  constexpr std::size_t kNoPos = static_cast<std::size_t>(-1);

  // Columns whose masks failed to evaluate never join the traversal;
  // their readouts inherit the error.
  std::vector<std::string> columnError(plan.columns.size());
  std::vector<std::size_t> live;  // plan column ids currently traversing
  std::vector<std::size_t> pos(plan.columns.size(), kNoPos);
  std::uint64_t maxSteps = 0;
  for (std::size_t c = 0; c < plan.columns.size(); ++c) {
    const pctl::EvalPlan::Column& column = plan.columns[c];
    for (const std::size_t m : {column.psiMask, column.phiMask}) {
      if (m != pctl::EvalPlan::kNoMask && !maskErrors[m].empty() &&
          columnError[c].empty()) {
        columnError[c] = maskErrors[m];
      }
    }
    if (!columnError[c].empty()) continue;
    pos[c] = live.size();
    live.push_back(c);
    maxSteps = std::max(maxSteps, column.steps);
  }

  // Lay out the traversal state: each live column of the row-major
  // n x width X buffer starts at the psi indicator; the column's packed
  // mask freezes psi states at 1.0 and !phi states at 0.0 (their initial
  // values), which reproduces the per-formula bounded-until update bit
  // for bit. An unmasked column (the X operator) carries an all-zero
  // BitVector — the kernel's "no freeze" convention.
  std::size_t width = live.size();
  std::vector<double> X(static_cast<std::size_t>(n) * width, 0.0);
  std::vector<la::BitVector> colMasks(width);
  for (std::size_t j = 0; j < width; ++j) {
    const pctl::EvalPlan::Column& column = plan.columns[live[j]];
    const la::BitVector& psi = maskValues[column.psiMask];
    psi.forEachSetBit([&](std::size_t s) { X[s * width + j] = 1.0; });
    if (column.masked) {
      la::BitVector m = psi;
      if (column.phiMask != pctl::EvalPlan::kNoMask) {
        m |= ~maskValues[column.phiMask];
      }
      colMasks[j] = std::move(m);
    } else {
      colMasks[j] = la::BitVector(n, false);
    }
  }

  const auto record = [&](const pctl::EvalPlan::BoundedReadout& readout) {
    const std::size_t j = pos[readout.column];
    std::vector<double> values(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      values[s] = X[s * width + j];
    }
    if (readout.complement) {
      for (double& v : values) v = 1.0 - v;
    }
    CheckResult& out = results[readout.property];
    out.value = fromInitial(dtmc_, values);
    out.stateValues = std::move(values);
    const pctl::ProbQuery& pq = properties[readout.property].prob;
    if (!pq.isQuery) {
      out.satisfied = pctl::evalCmp(pq.boundOp, out.value, pq.boundValue);
    }
  };

  // Surface column errors first so the traversal only serves live readouts
  // (an error column never extends maxSteps above).
  for (const pctl::EvalPlan::BoundedReadout& readout : plan.bounded) {
    if (!columnError[readout.column].empty()) {
      results[readout.property].error = columnError[readout.column];
    }
  }

  // One masked traversal for the live columns; readouts sample their
  // column when the traversal passes their bound. A column past its last
  // readout is compacted out instead of advancing to the group maximum —
  // repacking never changes a surviving column's values (each column's
  // accumulation sequence depends only on its own entries), so the total
  // matrix work is sum of per-column bounds while the traversal count
  // stays ~1 per step.
  std::vector<double> scratch;
  la::SpmmStats stepStats;
  std::uint64_t spmmPanels = 0;
  for (std::uint64_t t = 0;; ++t) {
    for (const pctl::EvalPlan::BoundedReadout& readout : plan.bounded) {
      if (readout.bound == t && columnError[readout.column].empty()) {
        record(readout);
      }
    }
    if (t >= maxSteps) break;
    bool anyDone = false;
    for (const std::size_t c : live) {
      anyDone = anyDone || plan.columns[c].steps <= t;
    }
    if (anyDone) {
      std::vector<std::size_t> keep;
      for (const std::size_t c : live) {
        if (plan.columns[c].steps > t) keep.push_back(c);
      }
      const std::size_t newWidth = keep.size();
      scratch.resize(static_cast<std::size_t>(n) * newWidth);
      std::vector<la::BitVector> keptMasks(newWidth);
      for (std::uint32_t s = 0; s < n; ++s) {
        for (std::size_t j = 0; j < newWidth; ++j) {
          scratch[s * newWidth + j] = X[s * width + pos[keep[j]]];
        }
      }
      // Surviving columns keep their whole packed mask — repacking moves
      // BitVectors, never touches bits.
      for (std::size_t j = 0; j < newWidth; ++j) {
        keptMasks[j] = std::move(colMasks[pos[keep[j]]]);
      }
      for (const std::size_t c : live) pos[c] = kNoPos;
      for (std::size_t j = 0; j < newWidth; ++j) pos[keep[j]] = j;
      live = std::move(keep);
      width = newWidth;
      X.swap(scratch);
      colMasks = std::move(keptMasks);
    }
    if (obs::Tracer::global().detailEnabled()) {
      // Opt-in per-step span (Tracer::setDetailEnabled): one event per
      // traversal step is too hot for default tracing but invaluable when
      // profiling the masked SpMM itself.
      obs::Span step("mc.boundedTraversal.step");
      la::spmmMasked(dtmc_.matrix(), X, width, colMasks, scratch,
                     options_.exec, &stepStats);
    } else {
      la::spmmMasked(dtmc_.matrix(), X, width, colMasks, scratch,
                     options_.exec, &stepStats);
    }
    spmmPanels += stepStats.panels;
    X.swap(scratch);
  }
  if (planStats != nullptr) {
    // Compaction narrows the tile between steps, so the per-step panel
    // counts genuinely vary — the sum is the group's total CSR traversals.
    planStats->spmmPanels = spmmPanels;
  }

  const double seconds = groupSpan.stopSeconds();
  const bool shared = plan.bounded.size() > 1;
  for (const pctl::EvalPlan::BoundedReadout& readout : plan.bounded) {
    // Errored readouts never joined the traversal: no shared-task
    // attribution for them.
    if (!columnError[readout.column].empty()) continue;
    results[readout.property].checkSeconds = seconds;
    results[readout.property].batched = shared;
  }
}

void Checker::runTransientGroup(const pctl::EvalPlan& plan,
                                const std::vector<pctl::Property>& properties,
                                std::vector<CheckResult>& results) const {
  obs::Span groupSpan("mc.transientSweep", options_.traceParent);
  // One forward sweep serves every I=/C<= property: reward vectors are
  // evaluated once per distinct reward structure, instantaneous values
  // are sampled when the sweep passes their horizon, and cumulative
  // accumulators add the per-step contribution in the same t-ascending
  // order as a dedicated per-call sweep — so values are bit-identical.
  // A reward structure that fails to evaluate errors only the entries
  // that reference it (same isolation as the bounded group's masks).
  std::vector<std::vector<double>> rewards(plan.rewardNames.size());
  std::vector<std::string> rewardErrors(plan.rewardNames.size());
  for (std::size_t r = 0; r < plan.rewardNames.size(); ++r) {
    try {
      rewards[r] = dtmc_.evalReward(model_, plan.rewardNames[r]);
    } catch (const std::exception& e) {
      rewardErrors[r] = e.what();
    }
  }
  const auto live = [&](const pctl::EvalPlan::TransientEntry& entry) {
    return rewardErrors[entry.reward].empty();
  };
  std::uint64_t lastStep = 0;
  std::size_t liveCount = 0;
  for (const pctl::EvalPlan::TransientEntry& entry : plan.transients) {
    if (!live(entry)) {
      results[entry.property].error = rewardErrors[entry.reward];
      continue;
    }
    ++liveCount;
    if (!entry.cumulative) {
      lastStep = std::max(lastStep, entry.bound);
    } else if (entry.bound > 0) {
      lastStep = std::max(lastStep, entry.bound - 1);
    }
  }
  if (liveCount == 0) return;

  std::vector<double> cumulative(plan.transients.size(), 0.0);
  TransientSweep sweep(dtmc_, options_.exec);
  // pi_t . r is computed at most once per distinct reward structure per
  // step, shared by every property that needs it at that step.
  std::vector<double> stepDot(rewards.size(), 0.0);
  std::vector<char> stepDotValid(rewards.size(), 0);
  const auto dotFor = [&](std::size_t r) {
    if (!stepDotValid[r]) {
      stepDot[r] = sweep.expectedReward(rewards[r]);
      stepDotValid[r] = 1;
    }
    return stepDot[r];
  };
  for (std::uint64_t t = 0;; ++t) {
    std::fill(stepDotValid.begin(), stepDotValid.end(), 0);
    for (std::size_t g = 0; g < plan.transients.size(); ++g) {
      const pctl::EvalPlan::TransientEntry& entry = plan.transients[g];
      if (!live(entry)) continue;
      if (!entry.cumulative) {
        if (entry.bound == t) {
          results[entry.property].value = dotFor(entry.reward);
        }
      } else if (t < entry.bound) {
        cumulative[g] += dotFor(entry.reward);
      }
    }
    if (t == lastStep) break;
    sweep.advance();
  }

  const double seconds = groupSpan.stopSeconds();
  const bool shared = liveCount > 1;
  for (std::size_t g = 0; g < plan.transients.size(); ++g) {
    const pctl::EvalPlan::TransientEntry& entry = plan.transients[g];
    if (!live(entry)) continue;
    CheckResult& out = results[entry.property];
    if (entry.cumulative) out.value = cumulative[g];
    const pctl::RewardQuery& rq = properties[entry.property].reward;
    if (!rq.isQuery) {
      out.satisfied = pctl::evalCmp(rq.boundOp, out.value, rq.boundValue);
    }
    out.batched = shared;
    out.checkSeconds = seconds;
  }
}

std::vector<CheckResult> Checker::checkAll(
    const std::vector<pctl::Property>& properties,
    const pctl::PlanOptions& planOptions, pctl::PlanStats* planStats,
    const la::TaskRunner& runner) const {
  // Plan phase: compile the property set and evaluate the shared mask
  // table. Runs on the calling thread, before any group task is scheduled.
  obs::Span planSpan("pctl.plan", options_.traceParent);
  const pctl::EvalPlan plan = pctl::buildPlan(properties, planOptions);
  std::vector<CheckResult> results(properties.size());

  // Shared atom masks, each evaluated once; failures (unknown atoms or
  // variables) are captured per mask and surface on exactly the
  // properties whose columns or singles reference the broken mask.
  std::vector<la::BitVector> maskValues(plan.masks.size());
  std::vector<std::string> maskErrors(plan.masks.size());
  for (std::size_t m = 0; m < plan.masks.size(); ++m) {
    try {
      maskValues[m] = evalStateFormula(*plan.masks[m]);
    } catch (const std::exception& e) {
      maskErrors[m] = e.what();
    }
  }
  const double planSeconds = planSpan.stopSeconds();

  if (planStats != nullptr) {
    pctl::PlanStats stats = plan.stats;
    // Mask-table footprint: packed words actually held vs the byte-per-
    // state representation these masks replaced (~8x).
    for (const la::BitVector& mask : maskValues) {
      stats.maskBytesPacked += mask.approxBytes();
      stats.maskBytesByte += mask.size();
    }
    stats.planSeconds = planSeconds;
    // The dispatch target is a request-level resolution (Exec::simd
    // override, else the process-wide active target) — record it even when
    // no bounded group runs, so diagnostics always say what la:: used.
    stats.simdTarget =
        la::simdTargetName(la::resolveSimdTarget(options_.exec.simd));
    *planStats = stats;
  }

  std::vector<std::function<void()>> tasks;
  tasks.reserve(plan.singles.size() + 2);
  for (const pctl::EvalPlan::Single& single : plan.singles) {
    const std::size_t i = single.property;
    // A single whose interned state set failed to evaluate inherits the
    // mask's error without scheduling a task — same isolation as the
    // bounded group's columns.
    std::string maskError;
    for (const std::size_t m : {single.psiMask, single.phiMask}) {
      if (m != pctl::EvalPlan::kNoMask && !maskErrors[m].empty() &&
          maskError.empty()) {
        maskError = maskErrors[m];
      }
    }
    if (!maskError.empty()) {
      results[i].error = std::move(maskError);
      continue;
    }
    tasks.push_back([this, &properties, &results, &maskValues, single, i] {
      try {
        results[i] = checkSingle(properties[i], single, maskValues);
      } catch (const std::exception& e) {
        results[i].error = e.what();
      }
    });
  }
  if (!plan.bounded.empty()) {
    tasks.push_back([this, &plan, &properties, &maskValues, &maskErrors,
                     &results, planStats] {
      try {
        // planStats' spmmPanels is written only here (the group's own
        // task); checkAll reads it back after the runner joins.
        runBoundedGroup(plan, properties, maskValues, maskErrors, results,
                        planStats);
      } catch (const std::exception& e) {
        for (const pctl::EvalPlan::BoundedReadout& r : plan.bounded) {
          if (results[r.property].error.empty()) {
            results[r.property].error = e.what();
          }
        }
      }
    });
  }
  if (!plan.transients.empty()) {
    tasks.push_back([this, &plan, &properties, &results] {
      try {
        runTransientGroup(plan, properties, results);
      } catch (const std::exception& e) {
        for (const pctl::EvalPlan::TransientEntry& entry : plan.transients) {
          if (results[entry.property].error.empty()) {
            results[entry.property].error = e.what();
          }
        }
      }
    });
  }

  if (runner != nullptr && tasks.size() > 1) {
    runner(std::move(tasks));
  } else {
    for (const auto& task : tasks) task();
  }

  // Structurally identical singles ran once: copy the representative's
  // result (deterministic, so the copy equals a recompute bit for bit) and
  // mark both ends of the share as batched.
  for (const auto& [duplicate, representative] : plan.singleDuplicates) {
    results[duplicate] = results[representative];
    if (results[representative].ok()) {
      results[representative].batched = true;
      results[duplicate].batched = true;
    }
  }
  return results;
}

CheckResult Checker::check(const pctl::Property& property) const {
  std::vector<CheckResult> results = checkAll({property});
  CheckResult& result = results.front();
  if (!result.error.empty()) throw std::runtime_error(result.error);
  return result;
}

pctl::Property Checker::parsedProperty(std::string_view propertyText) const {
  return parseCache_->get(propertyText);
}

CheckResult Checker::check(std::string_view propertyText) const {
  return check(parsedProperty(propertyText));
}

}  // namespace mimostat::mc
