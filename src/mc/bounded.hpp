// Bounded path operators (the paper's P1 and P3 properties).
//
//   P(phi U<=k psi) — standard backward value iteration:
//     x_0 = [psi];  x_{j+1}(s) = psi(s) ? 1 : (phi(s) ? sum P(s,.) x_j : 0)
//   P(F<=k psi) = P(true U<=k psi)
//   P(G<=k phi) = 1 - P(F<=k !phi)
//
// Since the evaluation-plan refactor these are single-column wrappers over
// la::spmmMasked: psi states are frozen at 1.0 and !phi states at 0.0 —
// exactly their initial values — so every step is one masked traversal with
// the same per-row accumulation order as the pre-refactor private loop
// (bit-identical; tests keep the legacy loop inline as the reference). The
// batched path — k bounded formulas as k columns of ONE traversal per step
// — lives in mc::Checker::checkAll via pctl::buildPlan.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/bit_vector.hpp"
#include "la/exec.hpp"

namespace mimostat::mc {

/// Bounded propagation reads the original row orientation; throw a clear
/// std::invalid_argument (naming BuildOptions::orientation and the rebuild
/// options) when this model was built transpose-only. Shared by every
/// bounded operator here and by the checker's batched bounded group.
void requireForwardOrientation(const dtmc::ExplicitDtmc& dtmc,
                               const char* who);

/// Per-state probability of (phi U<=bound psi). phi/psi are packed state
/// sets of numStates bits.
[[nodiscard]] std::vector<double> boundedUntil(const dtmc::ExplicitDtmc& dtmc,
                                               const la::BitVector& phi,
                                               const la::BitVector& psi,
                                               std::uint64_t bound,
                                               const la::Exec& exec = {});

/// Per-state probability of F<=bound psi.
[[nodiscard]] std::vector<double> boundedFinally(
    const dtmc::ExplicitDtmc& dtmc, const la::BitVector& psi,
    std::uint64_t bound, const la::Exec& exec = {});

/// Per-state probability of G<=bound phi.
[[nodiscard]] std::vector<double> boundedGlobally(
    const dtmc::ExplicitDtmc& dtmc, const la::BitVector& phi,
    std::uint64_t bound, const la::Exec& exec = {});

/// Per-state probability of X psi.
[[nodiscard]] std::vector<double> nextProb(const dtmc::ExplicitDtmc& dtmc,
                                           const la::BitVector& psi,
                                           const la::Exec& exec = {});

/// Weigh per-state values by the initial distribution.
[[nodiscard]] double fromInitial(const dtmc::ExplicitDtmc& dtmc,
                                 const std::vector<double>& stateValues);

}  // namespace mimostat::mc
