// Steady-state analysis.
//
// The paper argues its DTMCs are finite, irreducible and aperiodic and hence
// possess a unique stationary distribution; P2 evaluated past the mixing
// point is the BER. We provide a power-method solver (with Cesàro averaging
// as a fallback for periodic chains) and structural checks.
#pragma once

#include <cstdint>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"

namespace mimostat::mc {

struct SteadyOptions {
  double epsilon = 1e-13;          ///< L1 convergence threshold
  std::uint64_t maxIterations = 200'000;
  bool cesaroAveraging = false;    ///< average iterates (periodic chains)
};

struct SteadyResult {
  std::vector<double> distribution;
  std::uint64_t iterations = 0;
  bool converged = false;
};

/// Structural summary used to justify steady-state existence.
struct ChainStructure {
  bool irreducible = false;
  std::uint32_t period = 0;  ///< 1 = aperiodic (only valid when irreducible)
  std::uint32_t numSccs = 0;
  std::uint32_t numBottomSccs = 0;
};

[[nodiscard]] ChainStructure analyzeStructure(const dtmc::ExplicitDtmc& dtmc);

/// Stationary distribution by power iteration from the initial distribution.
[[nodiscard]] SteadyResult steadyStateDistribution(
    const dtmc::ExplicitDtmc& dtmc, const SteadyOptions& options = {});

/// Long-run average reward: pi . r (R=? [ S ] for a state reward).
[[nodiscard]] double steadyStateReward(const dtmc::ExplicitDtmc& dtmc,
                                       const std::vector<double>& reward,
                                       const SteadyOptions& options = {});

}  // namespace mimostat::mc
