// Steady-state analysis.
//
// The paper argues its DTMCs are finite, irreducible and aperiodic and hence
// possess a unique stationary distribution; P2 evaluated past the mixing
// point is the BER. The solve itself lives in la::PowerIteration (with
// Cesaro averaging as a fallback for periodic chains); this layer binds it
// to the DTMC's initial distribution and adds structural checks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dtmc/explicit_dtmc.hpp"
#include "la/exec.hpp"
#include "la/solver.hpp"

namespace mimostat::mc {

struct SteadyOptions {
  double epsilon = 1e-13;          ///< L1 convergence threshold
  std::uint64_t maxIterations = 200'000;
  bool cesaroAveraging = false;    ///< average iterates (periodic chains)
  la::Exec exec;                   ///< parallel multiply (bit-stable)
};

struct SteadyResult {
  std::vector<double> distribution;
  std::uint64_t iterations = 0;
  bool converged = false;
  /// L1 delta of the last iterate (the power solver's residual).
  double residual = 0.0;
  /// Solver that produced the distribution ("power" / "power+cesaro").
  std::string solver;
};

/// Structural summary used to justify steady-state existence.
struct ChainStructure {
  bool irreducible = false;
  std::uint32_t period = 0;  ///< 1 = aperiodic (only valid when irreducible)
  std::uint32_t numSccs = 0;
  std::uint32_t numBottomSccs = 0;
};

[[nodiscard]] ChainStructure analyzeStructure(const dtmc::ExplicitDtmc& dtmc);

/// Stationary distribution by la::PowerIteration from the initial
/// distribution.
[[nodiscard]] SteadyResult steadyStateDistribution(
    const dtmc::ExplicitDtmc& dtmc, const SteadyOptions& options = {});

/// Long-run average reward: pi . r (R=? [ S ] for a state reward).
[[nodiscard]] double steadyStateReward(const dtmc::ExplicitDtmc& dtmc,
                                       const std::vector<double>& reward,
                                       const SteadyOptions& options = {});

/// pi . r against an already-solved distribution — for callers that also
/// need the SteadyResult's solver report.
[[nodiscard]] double steadyStateReward(const SteadyResult& steady,
                                       const std::vector<double>& reward);

}  // namespace mimostat::mc
