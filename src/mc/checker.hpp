// Full pCTL checker: evaluates a parsed property against an explicit DTMC.
//
// State formulas resolve identifiers first against the model's variables
// (comparisons like errs>1 become per-state predicates over the stored
// variable assignment) and then against the model's named atoms. Reward
// queries resolve through the model's reward structures; the empty name is
// the default structure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <optional>

#include "dtmc/explicit_dtmc.hpp"
#include "dtmc/model.hpp"
#include "la/exec.hpp"
#include "la/solver.hpp"
#include "pctl/ast.hpp"
#include "pctl/parser.hpp"
#include "pctl/property_cache.hpp"

namespace mimostat::mc {

struct CheckOptions {
  /// Cap for unbounded operators' value iteration.
  double epsilon = 1e-12;
  std::uint64_t maxIterations = 1'000'000;
  /// Use Cesàro averaging for R=?[S] on periodic chains.
  bool cesaroSteadyState = false;
  /// Which la::LinearSolver runs unbounded-until value iteration. The
  /// Gauss-Seidel default is bit-identical to the legacy loop; Jacobi
  /// converges to the same fixed point on parallelizable sweeps.
  la::SolverKind linearSolver = la::SolverKind::kGaussSeidel;
  /// Parallel execution for la:: kernels (transient multiplies, power
  /// iteration, Jacobi sweeps). Results are bit-identical with or without a
  /// runner; the AnalysisEngine injects its pool here by default.
  la::Exec exec;
};

struct CheckResult {
  /// Numeric answer of the query, weighted by the initial distribution
  /// (for bounded properties this is the paper's reported value).
  double value = 0.0;
  /// For bounded properties (P>=0.9 [...], R<=0.1 [...]): whether the bound
  /// holds in the initial distribution.
  bool satisfied = true;
  /// Per-state values when the operator produces them (empty for rewards).
  std::vector<double> stateValues;
  /// Seconds spent checking (excludes model construction).
  double checkSeconds = 0.0;
  /// Iterative-solver report when the property ran one (unbounded
  /// operators, R=?[F psi], R=?[S]); absent for transient/bounded
  /// properties (direct propagations) and when Prob0/Prob1 classified
  /// every state. The solver stamps its own name in SolveStats::solver.
  std::optional<la::SolveStats> solver;
};

class Checker {
 public:
  /// The model reference supplies atoms/rewards; both must outlive the
  /// checker. Parses are memoized in `parseCache` — by default the
  /// process-wide pctl::PropertyCache::global(), shared with the
  /// AnalysisEngine, so a property parsed anywhere is parsed once.
  Checker(const dtmc::ExplicitDtmc& dtmc, const dtmc::Model& model,
          CheckOptions options = {},
          pctl::PropertyCache* parseCache = nullptr);

  /// Evaluate a parsed property.
  [[nodiscard]] CheckResult check(const pctl::Property& property) const;

  /// Parse and evaluate. Parses are memoized (thread-safe), so repeated
  /// checks of the same property text skip the parser.
  [[nodiscard]] CheckResult check(std::string_view propertyText) const;

  /// Memoized parse of a property text (shared with check(string_view)).
  [[nodiscard]] pctl::Property parsedProperty(std::string_view propertyText) const;

  /// Per-state truth vector of a state formula (exposed for tests and for
  /// the reduction verifier).
  [[nodiscard]] std::vector<std::uint8_t> evalStateFormula(
      const pctl::StateFormula& f) const;

 private:
  const dtmc::ExplicitDtmc& dtmc_;
  const dtmc::Model& model_;
  CheckOptions options_;
  pctl::PropertyCache* parseCache_;
};

}  // namespace mimostat::mc
