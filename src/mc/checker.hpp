// Full pCTL checker: evaluates parsed properties against an explicit DTMC.
//
// State formulas resolve identifiers first against the model's variables
// (comparisons like errs>1 become per-state predicates over the stored
// variable assignment) and then against the model's named atoms. Reward
// queries resolve through the model's reward structures; the empty name is
// the default structure.
//
// Evaluation is plan-driven: a property set is compiled by pctl::buildPlan
// into a deduplicated task DAG and executed in groups —
//
//   - every bounded path formula (U<=k / F<=k / G<=k / X) becomes a column
//     of ONE shared masked SpMM traversal (la::spmmMasked): k bounded
//     formulas cost one matrix traversal per step instead of k, and each
//     column's floating-point sequence is identical to its own per-formula
//     loop, so batching changes wall-clock only, never values;
//   - R=?[I=T] / R=?[C<=T] share one forward transient sweep to the
//     maximum horizon (mc::TransientSweep), reward vectors deduplicated;
//   - everything else (unbounded operators, steady state, reachability
//     rewards) runs as independent single tasks, optionally fanned out
//     over a caller-supplied task runner.
//
// check() runs a one-property plan, so the single-property path and the
// batched path are the same code — bit-identical by construction.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include <optional>

#include "dtmc/explicit_dtmc.hpp"
#include "dtmc/model.hpp"
#include "la/bit_vector.hpp"
#include "la/exec.hpp"
#include "la/solver.hpp"
#include "pctl/ast.hpp"
#include "pctl/parser.hpp"
#include "pctl/plan.hpp"
#include "pctl/property_cache.hpp"
#include "reduce/reduce.hpp"

namespace mimostat::mc {

struct CheckOptions {
  /// Cap for unbounded operators' value iteration.
  double epsilon = 1e-12;
  std::uint64_t maxIterations = 1'000'000;
  /// Use Cesàro averaging for R=?[S] on periodic chains.
  bool cesaroSteadyState = false;
  /// Which la::LinearSolver runs unbounded-until value iteration. The
  /// Gauss-Seidel default is bit-identical to the legacy loop; Jacobi and
  /// the red-black GaussSeidelRB converge to the same fixed point on
  /// parallelizable sweeps.
  la::SolverKind linearSolver = la::SolverKind::kGaussSeidel;
  /// Parallel execution for la:: kernels (transient multiplies, masked
  /// bounded traversals, power iteration, Jacobi/red-black sweeps).
  /// Results are bit-identical with or without a runner; the
  /// AnalysisEngine injects its pool here by default.
  la::Exec exec;
  /// State-space reduction knobs. The checker consults only the
  /// elimination toggle: when reduce::eliminationOn(reduction) holds,
  /// unbounded reachability / reachability-reward singles are answered by
  /// exact state elimination (solver name "elimination") instead of an
  /// iterative solver. kAuto is resolved by the AnalysisEngine (which knows
  /// whether a quotient applied); a standalone Checker treats it as off.
  reduce::Options reduction;
  /// obs:: span id the checker's phase spans ("pctl.plan", "mc.single",
  /// "mc.boundedTraversal", "mc.transientSweep") parent to. Needed because
  /// group tasks may run on pool threads, where the tracer's same-thread
  /// nesting cannot see the caller's span. 0 = root / thread-local parent.
  /// Diagnostics only; checking results never depend on it.
  std::uint64_t traceParent = 0;
};

struct CheckResult {
  /// Numeric answer of the query, weighted by the initial distribution
  /// (for bounded properties this is the paper's reported value).
  double value = 0.0;
  /// For bounded properties (P>=0.9 [...], R<=0.1 [...]): whether the bound
  /// holds in the initial distribution.
  bool satisfied = true;
  /// Per-state values when the operator produces them (empty for rewards).
  std::vector<double> stateValues;
  /// Seconds spent checking (excludes model construction). Group members
  /// carry the shared group's total.
  double checkSeconds = 0.0;
  /// This property was answered from a task shared with at least one other
  /// property of the same checkAll call (a multi-column bounded traversal
  /// or a multi-horizon transient sweep).
  bool batched = false;
  /// Iterative-solver report when the property ran one (unbounded
  /// operators, R=?[F psi], R=?[S]); absent for transient/bounded
  /// properties (direct propagations) and when Prob0/Prob1 classified
  /// every state. The solver stamps its own name in SolveStats::solver.
  std::optional<la::SolveStats> solver;
  /// Non-empty when this property failed (unknown atom/variable, ...).
  /// Filled by checkAll — sibling properties still produce values;
  /// check() rethrows it instead.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

class Checker {
 public:
  /// The model reference supplies atoms/rewards; both must outlive the
  /// checker. Parses are memoized in `parseCache` — by default the
  /// process-wide pctl::PropertyCache::global(), shared with the
  /// AnalysisEngine, so a property parsed anywhere is parsed once.
  Checker(const dtmc::ExplicitDtmc& dtmc, const dtmc::Model& model,
          CheckOptions options = {},
          pctl::PropertyCache* parseCache = nullptr);

  /// Evaluate a parsed property (a one-property plan). Throws on semantic
  /// failures (unknown atoms/variables).
  [[nodiscard]] CheckResult check(const pctl::Property& property) const;

  /// Parse and evaluate. Parses are memoized (thread-safe), so repeated
  /// checks of the same property text skip the parser.
  [[nodiscard]] CheckResult check(std::string_view propertyText) const;

  /// Evaluate a property set through one shared evaluation plan: bounded
  /// path formulas advance as columns of one masked traversal, transient
  /// horizons share one sweep, everything else runs as independent tasks
  /// (fanned out over `runner` when provided — same contract as la::Exec's
  /// runner). Failures are captured per property in CheckResult::error;
  /// sibling results are unaffected. `planStats` (optional) receives the
  /// plan's dedup/batching counters.
  [[nodiscard]] std::vector<CheckResult> checkAll(
      const std::vector<pctl::Property>& properties,
      const pctl::PlanOptions& planOptions = {},
      pctl::PlanStats* planStats = nullptr,
      const la::TaskRunner& runner = {}) const;

  /// Memoized parse of a property text (shared with check(string_view)).
  [[nodiscard]] pctl::Property parsedProperty(std::string_view propertyText) const;

  /// Per-state truth set of a state formula (exposed for tests and for
  /// the reduction verifier). Boolean connectives are word-parallel
  /// BitVector ops.
  [[nodiscard]] la::BitVector evalStateFormula(
      const pctl::StateFormula& f) const;

 private:
  /// One property evaluated outside any group (unbounded operators,
  /// rewards, and bounded formulas when the plan's batching is off). The
  /// property's state sets are read from the plan's interned mask table
  /// (single.phiMask/psiMask), not re-evaluated privately.
  [[nodiscard]] CheckResult checkSingle(
      const pctl::Property& property, const pctl::EvalPlan::Single& single,
      const std::vector<la::BitVector>& maskValues) const;

  /// All bounded readouts of the plan: one masked SpMM traversal, columns
  /// sampled at their bounds. `planStats` (nullable) accumulates the
  /// traversal's per-step panel counts (PlanStats::spmmPanels) — written
  /// only from the group's own task, after the traversal finishes.
  void runBoundedGroup(const pctl::EvalPlan& plan,
                       const std::vector<pctl::Property>& properties,
                       const std::vector<la::BitVector>& maskValues,
                       const std::vector<std::string>& maskErrors,
                       std::vector<CheckResult>& results,
                       pctl::PlanStats* planStats) const;

  /// All transient entries of the plan: one forward sweep to the maximum
  /// horizon, reward dot products deduplicated per step.
  void runTransientGroup(const pctl::EvalPlan& plan,
                         const std::vector<pctl::Property>& properties,
                         std::vector<CheckResult>& results) const;

  const dtmc::ExplicitDtmc& dtmc_;
  const dtmc::Model& model_;
  CheckOptions options_;
  pctl::PropertyCache* parseCache_;
};

}  // namespace mimostat::mc
