#include "mc/bounded.hpp"

#include <cassert>

namespace mimostat::mc {

std::vector<double> boundedUntil(const dtmc::ExplicitDtmc& dtmc,
                                 const std::vector<std::uint8_t>& phi,
                                 const std::vector<std::uint8_t>& psi,
                                 std::uint64_t bound) {
  const std::uint32_t n = dtmc.numStates();
  assert(phi.size() == n && psi.size() == n);

  std::vector<double> x(n);
  for (std::uint32_t s = 0; s < n; ++s) x[s] = psi[s] ? 1.0 : 0.0;

  std::vector<double> next(n);
  for (std::uint64_t j = 0; j < bound; ++j) {
    for (std::uint32_t s = 0; s < n; ++s) {
      if (psi[s]) {
        next[s] = 1.0;
      } else if (!phi[s]) {
        next[s] = 0.0;
      } else {
        double acc = 0.0;
        for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
          acc += dtmc.val()[k] * x[dtmc.col()[k]];
        }
        next[s] = acc;
      }
    }
    x.swap(next);
  }
  return x;
}

std::vector<double> boundedFinally(const dtmc::ExplicitDtmc& dtmc,
                                   const std::vector<std::uint8_t>& psi,
                                   std::uint64_t bound) {
  const std::vector<std::uint8_t> phi(dtmc.numStates(), 1);
  return boundedUntil(dtmc, phi, psi, bound);
}

std::vector<double> boundedGlobally(const dtmc::ExplicitDtmc& dtmc,
                                    const std::vector<std::uint8_t>& phi,
                                    std::uint64_t bound) {
  std::vector<std::uint8_t> notPhi(dtmc.numStates());
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) notPhi[s] = phi[s] ? 0 : 1;
  std::vector<double> reach = boundedFinally(dtmc, notPhi, bound);
  for (double& v : reach) v = 1.0 - v;
  return reach;
}

std::vector<double> nextProb(const dtmc::ExplicitDtmc& dtmc,
                             const std::vector<std::uint8_t>& psi) {
  const std::uint32_t n = dtmc.numStates();
  assert(psi.size() == n);
  std::vector<double> x(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    double acc = 0.0;
    for (std::uint64_t k = dtmc.rowPtr()[s]; k < dtmc.rowPtr()[s + 1]; ++k) {
      if (psi[dtmc.col()[k]]) acc += dtmc.val()[k];
    }
    x[s] = acc;
  }
  return x;
}

double fromInitial(const dtmc::ExplicitDtmc& dtmc,
                   const std::vector<double>& stateValues) {
  const auto& init = dtmc.initialDistribution();
  assert(stateValues.size() == init.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < init.size(); ++s) {
    if (init[s] > 0.0) acc += init[s] * stateValues[s];
  }
  return acc;
}

}  // namespace mimostat::mc
