#include "mc/bounded.hpp"

#include <cassert>
#include <stdexcept>

#include "la/spmv.hpp"

namespace mimostat::mc {

void requireForwardOrientation(const dtmc::ExplicitDtmc& dtmc,
                               const char* who) {
  if (!dtmc.matrix().hasOriginal()) {
    throw std::invalid_argument(
        std::string(who) +
        ": bounded path formulas advance through the original row "
        "orientation, which this model dropped "
        "(dtmc::BuildOptions::orientation = KeepOrientation::kTransposeOnly "
        "keeps only the transpose); rebuild with kBoth or kOriginalOnly, or "
        "restrict transpose-only models to transient/steady-state queries");
  }
}

std::vector<double> boundedUntil(const dtmc::ExplicitDtmc& dtmc,
                                 const std::vector<std::uint8_t>& phi,
                                 const std::vector<std::uint8_t>& psi,
                                 std::uint64_t bound, const la::Exec& exec) {
  requireForwardOrientation(dtmc, "mc::boundedUntil");
  const std::uint32_t n = dtmc.numStates();
  assert(phi.size() == n && psi.size() == n);

  // psi states are frozen at 1.0 and !phi states at 0.0 — their initial
  // values — so the masked product reproduces the classic update
  //   x_{j+1}(s) = psi(s) ? 1 : (phi(s) ? sum P(s,.) x_j : 0)
  // with the identical per-row accumulation order, bit for bit.
  std::vector<double> x(n);
  std::vector<std::uint8_t> frozen(n);
  for (std::uint32_t s = 0; s < n; ++s) {
    x[s] = psi[s] ? 1.0 : 0.0;
    frozen[s] = (psi[s] || !phi[s]) ? 1 : 0;
  }
  std::vector<double> next(n);
  for (std::uint64_t j = 0; j < bound; ++j) {
    la::spmmMasked(dtmc.matrix(), x, 1, frozen, next, exec);
    x.swap(next);
  }
  return x;
}

std::vector<double> boundedFinally(const dtmc::ExplicitDtmc& dtmc,
                                   const std::vector<std::uint8_t>& psi,
                                   std::uint64_t bound, const la::Exec& exec) {
  const std::vector<std::uint8_t> phi(dtmc.numStates(), 1);
  return boundedUntil(dtmc, phi, psi, bound, exec);
}

std::vector<double> boundedGlobally(const dtmc::ExplicitDtmc& dtmc,
                                    const std::vector<std::uint8_t>& phi,
                                    std::uint64_t bound, const la::Exec& exec) {
  std::vector<std::uint8_t> notPhi(dtmc.numStates());
  for (std::uint32_t s = 0; s < dtmc.numStates(); ++s) notPhi[s] = phi[s] ? 0 : 1;
  std::vector<double> reach = boundedFinally(dtmc, notPhi, bound, exec);
  for (double& v : reach) v = 1.0 - v;
  return reach;
}

std::vector<double> nextProb(const dtmc::ExplicitDtmc& dtmc,
                             const std::vector<std::uint8_t>& psi,
                             const la::Exec& exec) {
  requireForwardOrientation(dtmc, "mc::nextProb");
  const std::uint32_t n = dtmc.numStates();
  assert(psi.size() == n);
  // One unmasked propagation of the psi indicator. The legacy loop summed
  // val[k] over psi columns only; val * 1.0 is exact and the interleaved
  // val * 0.0 terms are bitwise-neutral (+0.0 into a non-negative
  // accumulator), so the gather is bit-identical to the skip loop.
  std::vector<double> x(n);
  for (std::uint32_t s = 0; s < n; ++s) x[s] = psi[s] ? 1.0 : 0.0;
  std::vector<double> y;
  la::spmv(dtmc.matrix(), x, y, exec);
  return y;
}

double fromInitial(const dtmc::ExplicitDtmc& dtmc,
                   const std::vector<double>& stateValues) {
  const auto& init = dtmc.initialDistribution();
  assert(stateValues.size() == init.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < init.size(); ++s) {
    if (init[s] > 0.0) acc += init[s] * stateValues[s];
  }
  return acc;
}

}  // namespace mimostat::mc
