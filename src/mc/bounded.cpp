#include "mc/bounded.hpp"

#include <cassert>
#include <stdexcept>

#include "la/spmv.hpp"

namespace mimostat::mc {

void requireForwardOrientation(const dtmc::ExplicitDtmc& dtmc,
                               const char* who) {
  if (!dtmc.matrix().hasOriginal()) {
    throw std::invalid_argument(
        std::string(who) +
        ": bounded path formulas advance through the original row "
        "orientation, which this model dropped "
        "(dtmc::BuildOptions::orientation = KeepOrientation::kTransposeOnly "
        "keeps only the transpose); rebuild with kBoth or kOriginalOnly, or "
        "restrict transpose-only models to transient/steady-state queries");
  }
}

std::vector<double> boundedUntil(const dtmc::ExplicitDtmc& dtmc,
                                 const la::BitVector& phi,
                                 const la::BitVector& psi, std::uint64_t bound,
                                 const la::Exec& exec) {
  requireForwardOrientation(dtmc, "mc::boundedUntil");
  const std::uint32_t n = dtmc.numStates();
  assert(phi.size() == n && psi.size() == n);

  // psi states are frozen at 1.0 and !phi states at 0.0 — their initial
  // values — so the masked product reproduces the classic update
  //   x_{j+1}(s) = psi(s) ? 1 : (phi(s) ? sum P(s,.) x_j : 0)
  // with the identical per-row accumulation order, bit for bit. The frozen
  // set is two word-parallel ops: !phi | psi.
  std::vector<double> x(n, 0.0);
  psi.forEachSetBit([&](std::size_t s) { x[s] = 1.0; });
  std::vector<la::BitVector> frozen(1);
  frozen[0] = ~phi;
  frozen[0] |= psi;
  std::vector<double> next(n);
  for (std::uint64_t j = 0; j < bound; ++j) {
    la::spmmMasked(dtmc.matrix(), x, 1, frozen, next, exec);
    x.swap(next);
  }
  return x;
}

std::vector<double> boundedFinally(const dtmc::ExplicitDtmc& dtmc,
                                   const la::BitVector& psi,
                                   std::uint64_t bound, const la::Exec& exec) {
  const la::BitVector phi(dtmc.numStates(), true);
  return boundedUntil(dtmc, phi, psi, bound, exec);
}

std::vector<double> boundedGlobally(const dtmc::ExplicitDtmc& dtmc,
                                    const la::BitVector& phi,
                                    std::uint64_t bound, const la::Exec& exec) {
  std::vector<double> reach = boundedFinally(dtmc, ~phi, bound, exec);
  for (double& v : reach) v = 1.0 - v;
  return reach;
}

std::vector<double> nextProb(const dtmc::ExplicitDtmc& dtmc,
                             const la::BitVector& psi, const la::Exec& exec) {
  requireForwardOrientation(dtmc, "mc::nextProb");
  const std::uint32_t n = dtmc.numStates();
  assert(psi.size() == n);
  // One unmasked propagation of the psi indicator. The legacy loop summed
  // val[k] over psi columns only; val * 1.0 is exact and the interleaved
  // val * 0.0 terms are bitwise-neutral (+0.0 into a non-negative
  // accumulator), so the gather is bit-identical to the skip loop.
  std::vector<double> x(n, 0.0);
  psi.forEachSetBit([&](std::size_t s) { x[s] = 1.0; });
  std::vector<double> y;
  la::spmv(dtmc.matrix(), x, y, exec);
  return y;
}

double fromInitial(const dtmc::ExplicitDtmc& dtmc,
                   const std::vector<double>& stateValues) {
  const auto& init = dtmc.initialDistribution();
  assert(stateValues.size() == init.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < init.size(); ++s) {
    if (init[s] > 0.0) acc += init[s] * stateValues[s];
  }
  return acc;
}

}  // namespace mimostat::mc
