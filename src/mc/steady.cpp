#include "mc/steady.hpp"

#include <cassert>
#include <cmath>

#include "dtmc/graph.hpp"

namespace mimostat::mc {

ChainStructure analyzeStructure(const dtmc::ExplicitDtmc& dtmc) {
  ChainStructure cs;
  const dtmc::SccDecomposition scc = dtmc::computeSccs(dtmc);
  cs.numSccs = scc.numComponents;
  cs.numBottomSccs = static_cast<std::uint32_t>(scc.bottomComponents.size());
  cs.irreducible = scc.numComponents == 1;
  if (cs.irreducible) cs.period = dtmc::chainPeriod(dtmc);
  return cs;
}

SteadyResult steadyStateDistribution(const dtmc::ExplicitDtmc& dtmc,
                                     const SteadyOptions& options) {
  SteadyResult result;
  std::vector<double> pi = dtmc.initialDistribution();
  std::vector<double> next(pi.size());
  std::vector<double> average;
  if (options.cesaroAveraging) average.assign(pi.size(), 0.0);

  for (std::uint64_t iter = 1; iter <= options.maxIterations; ++iter) {
    dtmc.multiplyLeft(pi, next);
    double delta = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) {
      delta += std::fabs(next[s] - pi[s]);
    }
    pi.swap(next);
    result.iterations = iter;
    if (options.cesaroAveraging) {
      for (std::size_t s = 0; s < pi.size(); ++s) average[s] += pi[s];
    }
    if (!options.cesaroAveraging && delta < options.epsilon) {
      result.converged = true;
      break;
    }
  }

  if (options.cesaroAveraging) {
    const double scale = 1.0 / static_cast<double>(result.iterations);
    for (double& v : average) v *= scale;
    result.distribution = std::move(average);
    result.converged = true;  // Cesàro limit always exists for finite chains
  } else {
    result.distribution = std::move(pi);
  }
  return result;
}

double steadyStateReward(const dtmc::ExplicitDtmc& dtmc,
                         const std::vector<double>& reward,
                         const SteadyOptions& options) {
  const SteadyResult ss = steadyStateDistribution(dtmc, options);
  assert(reward.size() == ss.distribution.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < reward.size(); ++s) {
    acc += ss.distribution[s] * reward[s];
  }
  return acc;
}

}  // namespace mimostat::mc
