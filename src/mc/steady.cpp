#include "mc/steady.hpp"

#include <cassert>
#include <utility>

#include "dtmc/graph.hpp"

namespace mimostat::mc {

ChainStructure analyzeStructure(const dtmc::ExplicitDtmc& dtmc) {
  ChainStructure cs;
  const dtmc::SccDecomposition scc = dtmc::computeSccs(dtmc);
  cs.numSccs = scc.numComponents;
  cs.numBottomSccs = static_cast<std::uint32_t>(scc.bottomComponents.size());
  cs.irreducible = scc.numComponents == 1;
  if (cs.irreducible) cs.period = dtmc::chainPeriod(dtmc);
  return cs;
}

SteadyResult steadyStateDistribution(const dtmc::ExplicitDtmc& dtmc,
                                     const SteadyOptions& options) {
  la::PowerOptions po;
  po.epsilon = options.epsilon;
  po.maxIterations = options.maxIterations;
  po.cesaroAveraging = options.cesaroAveraging;
  la::PowerResult pr = la::PowerIteration{}.run(
      dtmc.matrix(), dtmc.initialDistribution(), po, options.exec);
  SteadyResult result;
  result.distribution = std::move(pr.distribution);
  result.iterations = pr.stats.iterations;
  result.converged = pr.stats.converged;
  result.residual = pr.stats.residual;
  result.solver = std::move(pr.stats.solver);
  return result;
}

double steadyStateReward(const dtmc::ExplicitDtmc& dtmc,
                         const std::vector<double>& reward,
                         const SteadyOptions& options) {
  return steadyStateReward(steadyStateDistribution(dtmc, options), reward);
}

double steadyStateReward(const SteadyResult& steady,
                         const std::vector<double>& reward) {
  assert(reward.size() == steady.distribution.size());
  double acc = 0.0;
  for (std::size_t s = 0; s < reward.size(); ++s) {
    acc += steady.distribution[s] * reward[s];
  }
  return acc;
}

}  // namespace mimostat::mc
