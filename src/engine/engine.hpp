// AnalysisEngine — batched, cached, multi-backend guarantee checking.
//
// The paper's workflow is "build a DTMC once, then check many pCTL
// properties against it" (Tables I-V each sweep properties and horizons over
// one design). The engine makes that workflow first-class:
//
//   1. Model cache: built ExplicitDtmcs are keyed by a structural model
//      signature (dtmc::modelSignature), so repeated requests against the
//      same design skip the BFS build. Cached DTMCs store transition
//      structure only; atoms/rewards always re-resolve through the
//      requesting model.
//   2. Evaluation planning: the request's property set is compiled by
//      pctl::buildPlan into a deduplicated task DAG (mc::Checker::checkAll
//      executes it). All bounded path formulas (U<=k / F<=k / G<=k / X)
//      advance as columns of ONE masked SpMM traversal per step, all
//      R=?[I=T] / R=?[C<=T] properties share ONE forward transient sweep
//      to the maximum horizon, and structurally equal subformulas are
//      evaluated once. Batched values are bit-identical to per-call
//      checking; AnalysisResponse::plan reports tasksPlanned /
//      tasksDeduped / traversalsSaved.
//   3. Concurrency: independent requests (analyzeAll/submit) and the
//      property groups within a request run on a shared thread pool;
//      results keep deterministic request/property order.
//   4. Backend selection: exact mc::Checker, or smc:: sampling — chosen per
//      request, automatically falling back to sampling when the reachable
//      state count exceeds the request's state budget (the
//      rate-reliability-complexity trade-off made explicit). The sampling
//      backend estimates bounded P-formulas, R=?[I=T] and R=?[C<=T], and
//      decides bounded-probability properties (P>=theta [...]) with Wald's
//      SPRT at the request's alpha/beta error levels. Every property draws
//      from its own seed (derived from the request seed and the property
//      index) in counter-derived path chunks, so sampled results are
//      bit-identical for a fixed seed at any pool size.
//
// core::PerformanceAnalyzer is a thin compatibility shim over this engine.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dtmc/builder.hpp"
#include "dtmc/explicit_dtmc.hpp"
#include "dtmc/model.hpp"
#include "engine/request.hpp"
#include "la/exec.hpp"
#include "engine/result.hpp"
#include "engine/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "pctl/ast.hpp"
#include "pctl/property_cache.hpp"
#include "reduce/reduce.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mimostat::engine {

struct EngineOptions {
  /// Worker threads; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Model-cache capacity (completed builds; evicted least-recently-used).
  std::size_t maxCachedModels = 8;
  /// Model-cache byte budget over the resident DTMCs (states + transitions
  /// accounting, see BuiltModel::approxBytes). LRU entries are evicted while
  /// the total exceeds this, so one huge model cannot pin the cache.
  /// 0 = unlimited.
  std::uint64_t maxCacheBytes = 1ull << 30;
  /// Shared property-parse cache; nullptr uses the process-wide
  /// pctl::PropertyCache::global() (shared with every mc::Checker).
  pctl::PropertyCache* propertyCache = nullptr;
  /// Fan la:: kernels (transient multiplies, power iteration, Jacobi
  /// sweeps) out over the engine pool on the exact backend. Results are
  /// bit-identical at any pool size, so this is purely a throughput knob.
  /// A runner the request brings in RequestOptions::check.exec wins over
  /// the engine's.
  bool parallelLinearAlgebra = true;
  /// Default nnz threshold below which la:: calls stay sequential; applied
  /// when the engine injects its own pool, i.e. to requests that bring
  /// neither a runner nor a threshold in RequestOptions::check.exec (a
  /// request with its own runner owns its whole exec and is never touched).
  std::uint64_t laParallelThresholdNnz = la::Exec::kDefaultParallelThresholdNnz;
  /// Default SIMD dispatch target for la:: kernels; applied to requests
  /// that don't pin one in RequestOptions::check.exec.simd. nullopt = the
  /// process-wide la::activeSimdTarget() (MIMOSTAT_SIMD env override, else
  /// the widest supported target). Outputs are bit-identical across
  /// targets, so this is a performance/debugging knob only.
  std::optional<la::SimdTarget> simd;
  /// Metrics sink for engine counters, pool histograms and the
  /// request-latency histogram behind EngineStats percentiles; nullptr uses
  /// the process-wide obs::MetricsRegistry::global() (injectable like
  /// `propertyCache`, so tests get an isolated registry). Note that engines
  /// sharing a registry share its histograms.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Counters exposed for tests, sweeps and ops dashboards.
struct EngineStats {
  /// DTMC builds actually performed (cache misses).
  std::uint64_t builds = 0;
  /// ensureBuilt calls served from cache (joining an in-flight build
  /// counts).
  std::uint64_t cacheHits = 0;
  /// Entries currently resident (including in-flight builds).
  std::size_t cachedModels = 0;
  /// Approximate bytes held by completed cached builds.
  std::uint64_t cacheBytes = 0;
  /// Plan-aware bisimulation quotients actually refined (quotient-cache
  /// misses, identity quotients included).
  std::uint64_t quotientBuilds = 0;
  /// Reduction stages served from the quotient cache (joining an in-flight
  /// refinement counts).
  std::uint64_t quotientHits = 0;
  /// Requests answered (analyze/analyzeAll/submit, failed ones included).
  std::uint64_t requests = 0;
  /// Request-latency percentiles (queue wait included) from the engine's
  /// "engine.request_ns" histogram — the serve:: readiness numbers.
  /// Diagnostics only; 0 until the first request completes.
  double p50RequestSeconds = 0.0;
  double p90RequestSeconds = 0.0;
  double p99RequestSeconds = 0.0;
};

/// A built model as held by the engine's cache.
struct BuiltModel {
  dtmc::ExplicitDtmc dtmc;
  std::uint32_t reachabilityIterations = 0;
  double buildSeconds = 0.0;
  /// The structural signature this entry is cached under.
  std::uint64_t signature = 0;
  /// Approximate resident size of `dtmc` (CSR arrays + decoded state table
  /// + initial distribution) used for the cache's byte accounting.
  std::uint64_t approxBytes = 0;
  /// Set on quotient entries only: the block map and reduction counters of
  /// the plan-aware bisimulation quotient this entry holds. An entry whose
  /// info reports statesAfter == statesBefore is an identity-quotient
  /// marker — `dtmc` is empty and the engine never applies it (it exists so
  /// repeat requests skip the refinement, at no byte cost).
  std::shared_ptr<const reduce::ReductionInfo> reduction;
};

/// Approximate resident bytes of an explicit DTMC (the BuiltModel/cache
/// accounting unit).
[[nodiscard]] std::uint64_t approxDtmcBytes(const dtmc::ExplicitDtmc& dtmc);

class AnalysisEngine {
 public:
  explicit AnalysisEngine(EngineOptions options = {});
  ~AnalysisEngine();

  AnalysisEngine(const AnalysisEngine&) = delete;
  AnalysisEngine& operator=(const AnalysisEngine&) = delete;

  /// Answer one request (blocking). Property groups run on the pool.
  [[nodiscard]] AnalysisResponse analyze(const AnalysisRequest& request);

  /// Answer independent requests concurrently; responses come back in
  /// request order regardless of scheduling.
  [[nodiscard]] std::vector<AnalysisResponse> analyzeAll(
      const std::vector<AnalysisRequest>& requests);

  /// Asynchronous analyze. The request's model must stay alive until the
  /// future resolves.
  [[nodiscard]] std::future<AnalysisResponse> submit(AnalysisRequest request);

  /// Build (or fetch from cache) the explicit DTMC for a model. Concurrent
  /// calls for the same signature share one build. `key` overrides the
  /// structural probe as the cache key. When `cacheHit` is non-null it is
  /// set to whether the entry was served from cache (joining an in-flight
  /// build counts as a hit).
  [[nodiscard]] std::shared_ptr<const BuiltModel> ensureBuilt(
      const dtmc::Model& model, const dtmc::BuildOptions& buildOptions = {},
      std::optional<std::uint64_t> key = std::nullopt,
      bool* cacheHit = nullptr);

  /// Memoized property parse shared by every request (delegates to the
  /// engine's pctl::PropertyCache — by default the process-wide one).
  [[nodiscard]] pctl::Property parsedProperty(const std::string& text);
  [[nodiscard]] pctl::PropertyCache& propertyCache() { return *propertyCache_; }

  // --- instrumentation (tests, ops) ---
  [[nodiscard]] EngineStats stats() const;
  /// DTMC builds actually performed (cache misses).
  [[nodiscard]] std::uint64_t buildCount() const;
  /// ensureBuilt calls served from cache.
  [[nodiscard]] std::uint64_t cacheHitCount() const;
  [[nodiscard]] std::size_t cachedModelCount() const;
  void clearModelCache();

  [[nodiscard]] std::size_t threadCount() const { return pool_.threadCount(); }

 private:
  struct CacheSlot {
    std::shared_future<std::shared_ptr<const BuiltModel>> future;
    std::uint64_t lastUsed = 0;
    /// Approximate bytes of the completed build; 0 while in flight.
    std::uint64_t bytes = 0;
  };

  /// Evict ready LRU entries down to the entry-count and byte budgets.
  void evictLocked() MIMOSTAT_REQUIRES(cacheMutex_);

  /// Fetch or refine the plan-aware bisimulation quotient of `full` under
  /// `quotientKey` (structural cache key + label/reward digest). Quotients
  /// share the model cache's slots, byte accounting and LRU eviction;
  /// concurrent calls for the same key join one refinement. The returned
  /// entry always carries BuiltModel::reduction (possibly an identity
  /// marker).
  [[nodiscard]] std::shared_ptr<const BuiltModel> quotientFor(
      const BuiltModel& full, std::uint64_t quotientKey,
      const std::vector<const la::BitVector*>& masks,
      const std::vector<const std::vector<double>*>& rewards,
      const reduce::Options& reduction, bool* cacheHit);

  /// analyze() with a measured queue wait (analyzeAll/submit tasks pass the
  /// enqueue timestamp so the wait lands in timing.queueSeconds and the
  /// latency histogram). Opens the per-request "engine.analyze" span.
  AnalysisResponse analyzeQueued(const AnalysisRequest& request,
                                 double queueSeconds);
  AnalysisResponse analyzeExact(const AnalysisRequest& request,
                                std::uint64_t key, std::uint64_t traceParent);
  AnalysisResponse analyzeSampling(const AnalysisRequest& request,
                                   std::uint64_t key,
                                   std::uint64_t traceParent);

  /// Set in the constructor, immutable afterwards.
  /// lint:allow(guarded-by: constructor-initialized, read-only after)
  EngineOptions options_;
  /// lint:allow(guarded-by: constructor-initialized, read-only after)
  pctl::PropertyCache* propertyCache_;
  /// Internally synchronized. lint:allow(guarded-by: owns its own mutex)
  ThreadPool pool_;
  /// Resolved once in the constructor; handles are internally synchronized
  /// sharded atomics. lint:allow(guarded-by: constructor-initialized, read-only after)
  obs::MetricsRegistry* metrics_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Histogram requestLatencyNs_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Counter requestCount_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Counter buildCounter_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Counter cacheHitCounter_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Counter quotientBuildCounter_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Counter quotientHitCounter_;

  mutable util::Mutex cacheMutex_;
  std::unordered_map<std::uint64_t, CacheSlot> modelCache_
      MIMOSTAT_GUARDED_BY(cacheMutex_);
  std::uint64_t useCounter_ MIMOSTAT_GUARDED_BY(cacheMutex_) = 0;
  std::uint64_t buildCount_ MIMOSTAT_GUARDED_BY(cacheMutex_) = 0;
  std::uint64_t cacheHits_ MIMOSTAT_GUARDED_BY(cacheMutex_) = 0;
  std::uint64_t cacheBytes_ MIMOSTAT_GUARDED_BY(cacheMutex_) = 0;
  std::uint64_t quotientBuilds_ MIMOSTAT_GUARDED_BY(cacheMutex_) = 0;
  std::uint64_t quotientHits_ MIMOSTAT_GUARDED_BY(cacheMutex_) = 0;
};

/// Lazily constructed process-wide engine (used by the
/// core::PerformanceAnalyzer compatibility shim).
[[nodiscard]] AnalysisEngine& defaultEngine();

}  // namespace mimostat::engine
