// Batch-oriented thread pool for the analysis engine.
//
// Two entry points: run() executes a batch of tasks and blocks until all
// complete — crucially, the *calling* thread also drains tasks from its own
// batch, so a pooled task may itself call run() for sub-tasks (request-level
// parallelism nesting property-group parallelism) without any risk of
// pool-exhaustion deadlock. post() enqueues a single fire-and-forget task.
//
// Determinism contract: the pool never reorders results because callers
// write into pre-assigned slots; scheduling order is irrelevant.
//
// Locking discipline (machine-checked under -Wthread-safety): queue_ and
// stop_ are guarded by mutex_, and every function that touches a Batch's
// mutable cursors (next/done/error) requires mutex_ — Batch objects are only
// ever manipulated through the owning pool's lock, which is why the fields
// themselves need no per-batch mutex.
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "la/exec.hpp"
#include "obs/metrics.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mimostat::engine {

class ThreadPool {
 public:
  /// threads == 0 picks the MIMOSTAT_THREADS environment variable when set
  /// (how CI's TSan job forces an 8-thread pool on any host), otherwise
  /// std::thread::hardware_concurrency().
  ///
  /// When `metrics` is non-null the pool reports a queue-depth gauge
  /// ("engine.pool.queue_depth") and task wait/run histograms
  /// ("engine.pool.task_wait_ns" / "engine.pool.task_run_ns") into it; the
  /// AnalysisEngine passes its registry, bare pools stay unmetered.
  explicit ThreadPool(std::size_t threads = 0,
                      obs::MetricsRegistry* metrics = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Run every task, blocking until all are done. The caller participates in
  /// executing its own batch. The first exception thrown by a task is
  /// rethrown here after the batch completes.
  void run(std::vector<std::function<void()>> tasks) MIMOSTAT_EXCLUDES(mutex_);

  /// Enqueue one task without waiting for it. The destructor drains every
  /// queued task before joining, so posted work always runs.
  void post(std::function<void()> task) MIMOSTAT_EXCLUDES(mutex_);

 private:
  struct Batch {
    /// Immutable after construction (set before the batch is published).
    std::vector<std::function<void()>> tasks;
    /// Enqueue timestamp (obs::monotonicNanos) for the wait histogram; 0
    /// when the pool is unmetered. Immutable after construction.
    std::uint64_t enqueuedNs = 0;
    // next/done/error are guarded by the owning pool's mutex_ — enforced by
    // MIMOSTAT_REQUIRES(mutex_) on every member function that touches them
    // (the analysis cannot alias a member-of-member guard expression).
    std::size_t next = 0;
    std::size_t done = 0;
    std::exception_ptr error;
    util::CondVar finished;
  };

  void workerLoop() MIMOSTAT_EXCLUDES(mutex_);
  /// Pop-and-run one task from `batch` (or any queued batch when null).
  /// Returns false when there was nothing to run. The mutex is released
  /// around the task body and re-acquired before returning.
  bool runOneTask(Batch* batch) MIMOSTAT_REQUIRES(mutex_);

  /// Started in the constructor, joined in the destructor; never touched in
  /// between. lint:allow(guarded-by: immutable while workers can observe it)
  std::vector<std::thread> workers_;
  mutable util::Mutex mutex_;
  std::deque<std::shared_ptr<Batch>> queue_ MIMOSTAT_GUARDED_BY(mutex_);
  util::CondVar wake_;
  bool stop_ MIMOSTAT_GUARDED_BY(mutex_) = false;
  /// Constructor-initialized; nullptr = unmetered.
  /// lint:allow(guarded-by: constructor-initialized, read-only after)
  obs::MetricsRegistry* metrics_ = nullptr;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Gauge queueDepth_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Histogram taskWaitNs_;
  /// lint:allow(guarded-by: internally synchronized handle)
  obs::Histogram taskRunNs_;
};

/// The canonical ThreadPool -> la::TaskRunner adapter (used by the engine's
/// injected exec, tests and benches alike, so all of them inherit run()'s
/// batch/exception semantics from one place). The pool must outlive the
/// returned runner.
[[nodiscard]] inline la::TaskRunner laRunnerFor(ThreadPool& pool) {
  return [&pool](std::vector<std::function<void()>> tasks) {
    pool.run(std::move(tasks));
  };
}

}  // namespace mimostat::engine
