// Batch-oriented thread pool for the analysis engine.
//
// Two entry points: run() executes a batch of tasks and blocks until all
// complete — crucially, the *calling* thread also drains tasks from its own
// batch, so a pooled task may itself call run() for sub-tasks (request-level
// parallelism nesting property-group parallelism) without any risk of
// pool-exhaustion deadlock. post() enqueues a single fire-and-forget task.
//
// Determinism contract: the pool never reorders results because callers
// write into pre-assigned slots; scheduling order is irrelevant.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "la/exec.hpp"

namespace mimostat::engine {

class ThreadPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t threadCount() const { return workers_.size(); }

  /// Run every task, blocking until all are done. The caller participates in
  /// executing its own batch. The first exception thrown by a task is
  /// rethrown here after the batch completes.
  void run(std::vector<std::function<void()>> tasks);

  /// Enqueue one task without waiting for it.
  void post(std::function<void()> task);

 private:
  struct Batch {
    std::vector<std::function<void()>> tasks;
    std::size_t next = 0;  // guarded by the pool mutex
    std::size_t done = 0;
    std::exception_ptr error;
    std::condition_variable finished;
  };

  void workerLoop();
  /// Pop-and-run one task from `batch` (or any queued batch when null).
  /// Returns false when there was nothing to run.
  bool runOneTask(std::unique_lock<std::mutex>& lock, Batch* batch);

  std::vector<std::thread> workers_;
  std::deque<std::shared_ptr<Batch>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;
  bool stop_ = false;
};

/// The canonical ThreadPool -> la::TaskRunner adapter (used by the engine's
/// injected exec, tests and benches alike, so all of them inherit run()'s
/// batch/exception semantics from one place). The pool must outlive the
/// returned runner.
[[nodiscard]] inline la::TaskRunner laRunnerFor(ThreadPool& pool) {
  return [&pool](std::vector<std::function<void()>> tasks) {
    pool.run(std::move(tasks));
  };
}

}  // namespace mimostat::engine
