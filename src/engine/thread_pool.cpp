#include "engine/thread_pool.hpp"

#include <algorithm>

namespace mimostat::engine {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::runOneTask(std::unique_lock<std::mutex>& lock, Batch* batch) {
  std::shared_ptr<Batch> owner;
  if (batch == nullptr) {
    // Drop exhausted batches, then pick the oldest one with pending tasks.
    while (!queue_.empty() && queue_.front()->next >= queue_.front()->tasks.size()) {
      queue_.pop_front();
    }
    if (queue_.empty()) return false;
    owner = queue_.front();
    batch = owner.get();
  }
  if (batch->next >= batch->tasks.size()) return false;

  const std::size_t idx = batch->next++;
  lock.unlock();
  try {
    batch->tasks[idx]();
  } catch (...) {
    lock.lock();
    if (!batch->error) batch->error = std::current_exception();
    lock.unlock();
  }
  lock.lock();
  if (++batch->done == batch->tasks.size()) batch->finished.notify_all();
  return true;
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (runOneTask(lock, nullptr)) continue;
    if (stop_) return;
    wake_.wait(lock);
  }
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(batch);
  wake_.notify_all();

  // Help drain our own batch, then wait for in-flight stragglers.
  while (runOneTask(lock, batch.get())) {
  }
  batch->finished.wait(lock,
                       [&] { return batch->done == batch->tasks.size(); });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::post(std::function<void()> task) {
  auto batch = std::make_shared<Batch>();
  batch->tasks.push_back(std::move(task));
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(batch));
  }
  wake_.notify_one();
}

}  // namespace mimostat::engine
