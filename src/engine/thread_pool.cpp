#include "engine/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "obs/clock.hpp"

namespace mimostat::engine {

namespace {

/// MIMOSTAT_THREADS as a pool-size override for threads == 0 constructions
/// (unset, empty, non-numeric or 0 values are ignored). CI's TSan job uses
/// it to force an 8-thread pool on every default-constructed engine.
std::size_t envThreadOverride() {
  // Read once, during pool construction, before any worker exists.
  const char* env = std::getenv("MIMOSTAT_THREADS");  // NOLINT(concurrency-mt-unsafe)
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::size_t>(value);
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads, obs::MetricsRegistry* metrics)
    : metrics_(metrics) {
  if (metrics_ != nullptr) {
    queueDepth_ = metrics_->gauge("engine.pool.queue_depth");
    taskWaitNs_ = metrics_->histogram("engine.pool.task_wait_ns");
    taskRunNs_ = metrics_->histogram("engine.pool.task_run_ns");
  }
  if (threads == 0) threads = envThreadOverride();
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const util::MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::runOneTask(Batch* batch) {
  std::shared_ptr<Batch> owner;
  if (batch == nullptr) {
    // Drop exhausted batches, then pick the oldest one with pending tasks.
    while (!queue_.empty() &&
           queue_.front()->next >= queue_.front()->tasks.size()) {
      queue_.pop_front();
    }
    if (queue_.empty()) return false;
    owner = queue_.front();
    batch = owner.get();
  }
  if (batch->next >= batch->tasks.size()) return false;

  const std::size_t idx = batch->next++;
  mutex_.unlock();
  // Wait = enqueue -> pickup, run = the task body; both land in sharded
  // relaxed-atomic histograms, so the metered path costs two clock reads
  // outside the pool lock. Unmetered pools (metrics_ == nullptr) skip it.
  std::uint64_t startNs = 0;
  if (metrics_ != nullptr) {
    startNs = obs::monotonicNanos();
    taskWaitNs_.record(startNs - batch->enqueuedNs);
    queueDepth_.sub(1);
  }
  try {
    batch->tasks[idx]();
  } catch (...) {
    mutex_.lock();
    if (!batch->error) batch->error = std::current_exception();
    mutex_.unlock();
  }
  if (metrics_ != nullptr) {
    taskRunNs_.record(obs::monotonicNanos() - startNs);
  }
  mutex_.lock();
  if (++batch->done == batch->tasks.size()) batch->finished.notify_all();
  return true;
}

void ThreadPool::workerLoop() {
  const util::MutexLock lock(mutex_);
  while (true) {
    if (runOneTask(nullptr)) continue;
    if (stop_) return;
    wake_.wait(mutex_);
  }
}

void ThreadPool::run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  auto batch = std::make_shared<Batch>();
  batch->tasks = std::move(tasks);
  if (metrics_ != nullptr) {
    batch->enqueuedNs = obs::monotonicNanos();
    queueDepth_.add(static_cast<std::int64_t>(batch->tasks.size()));
  }

  const util::MutexLock lock(mutex_);
  queue_.push_back(batch);
  wake_.notify_all();

  // Help drain our own batch, then wait for in-flight stragglers.
  while (runOneTask(batch.get())) {
  }
  batch->finished.wait(mutex_,
                       [&] { return batch->done == batch->tasks.size(); });
  if (batch->error) std::rethrow_exception(batch->error);
}

void ThreadPool::post(std::function<void()> task) {
  auto batch = std::make_shared<Batch>();
  batch->tasks.push_back(std::move(task));
  if (metrics_ != nullptr) {
    batch->enqueuedNs = obs::monotonicNanos();
    queueDepth_.add(1);
  }
  {
    const util::MutexLock lock(mutex_);
    queue_.push_back(std::move(batch));
  }
  wake_.notify_one();
}

}  // namespace mimostat::engine
