// Analysis requests: the engine's input vocabulary.
//
// A request names a model, a list of pCTL property strings, and options
// controlling backend selection, caching and batching. The paper's workflow
// — build one DTMC, sweep many properties over it (Tables I-V) — is exactly
// one request.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "dtmc/model.hpp"
#include "mc/checker.hpp"
#include "reduce/reduce.hpp"
#include "smc/smc.hpp"

namespace mimostat::engine {

/// Which checking backend serves a request.
enum class Backend {
  /// Exact when the reachable state space fits the state budget, sampling
  /// otherwise (the paper's exact-vs-statistical complexity trade-off).
  kAuto,
  /// Exact probabilistic model checking (mc::Checker on the built DTMC).
  kExact,
  /// Statistical model checking (smc:: path sampling; bounded properties
  /// only, results carry confidence intervals).
  kSampling,
};

[[nodiscard]] const char* backendName(Backend backend);

struct RequestOptions {
  Backend backend = Backend::kAuto;
  /// kAuto falls back to sampling when the reachable state count exceeds
  /// this budget.
  std::uint64_t stateBudget = 2'000'000;
  /// Group R=?[I=T] / R=?[C<=T] properties into one transient sweep to the
  /// maximum horizon instead of one sweep per property.
  bool batchHorizons = true;
  /// Group bounded path formulas (U<=k / F<=k / G<=k / X) into one masked
  /// SpMM traversal per request instead of one backward iteration per
  /// formula. Values are bit-identical either way; off = per-formula.
  bool batchBounded = true;
  /// When a request needs forward (right-product) access — bounded
  /// traversals, unbounded value iteration, reachability rewards — but the
  /// model at hand is transpose-only (a kTransposeOnly build option or a
  /// cached entry from one), rebuild it with both orientations and upgrade
  /// the cache entry in place instead of refusing via
  /// mc::requireForwardOrientation. Off = keep the refusal (the error
  /// surfaces per property, siblings still answer).
  bool rebuildOrientation = true;
  /// Precomputed model signature (e.g. from a previous response). When set,
  /// the engine skips the structural probe and uses this as the cache key;
  /// the caller asserts it identifies the model's transition structure.
  std::optional<std::uint64_t> modelKey;
  /// State-space reduction (exact backend): plan-aware bisimulation
  /// quotienting before checking plus the exact state-elimination checker
  /// for unbounded singles. The defaults auto-reduce large models only
  /// (reduce::Options::minQuotientStates) and resolve the elimination
  /// toggle from whether a quotient applied. This field is authoritative:
  /// the engine copies it into check.reduction (with kAuto resolved), so a
  /// value set in `check` directly is overwritten.
  reduce::Options reduction;
  dtmc::BuildOptions build;
  mc::CheckOptions check;
  /// Sampling backend: path counts and the request's base seed. Each
  /// property of a request samples from its own seed derived from
  /// (smc.seed, property index), so sibling estimates are independent;
  /// results are bit-identical for a fixed seed at any thread count.
  smc::SmcOptions smc;
  /// Sampling backend: SPRT error levels for bounded-probability properties
  /// (P>=theta [...]). The per-property seed overrides sprt.seed.
  smc::SprtOptions sprt;
};

struct AnalysisRequest {
  /// Must stay alive until the response is produced. Not owned.
  const dtmc::Model* model = nullptr;
  std::vector<std::string> properties;
  RequestOptions options;
};

}  // namespace mimostat::engine
