// Analysis results: one uniform answer shape across backends.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "stats/intervals.hpp"

namespace mimostat::engine {

enum class Backend;  // request.hpp

/// Outcome of one property from an AnalysisRequest.
struct AnalysisResult {
  std::string property;
  /// Numeric answer weighted by the initial distribution (exact backend) or
  /// the point estimate (sampling backend).
  double value = 0.0;
  /// For bounded properties (P>=p [...], R<=r [...]): whether the bound
  /// holds. Always true for =? queries.
  bool satisfied = true;
  /// 95% confidence interval; only present when sampled.
  std::optional<stats::Interval> interval95;
  /// Sample paths drawn; 0 for the exact backend.
  std::uint64_t samples = 0;
  /// This property was answered from a shared batched horizon sweep.
  bool batched = false;
  /// Seconds spent checking this property (for batched properties: the
  /// shared sweep's total, attributed to every member of the group).
  double checkSeconds = 0.0;
  /// Non-empty when this property failed (parse error, unsupported by the
  /// selected backend, ...). The other properties of the request still
  /// produce values.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Outcome of a whole request, in request property order.
struct AnalysisResponse {
  std::vector<AnalysisResult> results;
  Backend backend{};
  /// The structural model signature used as the cache key (reusable as
  /// RequestOptions::modelKey).
  std::uint64_t modelKey = 0;
  /// The built DTMC was served from the engine's model cache.
  bool cacheHit = false;
  /// Model statistics (exact backend; zero when sampled).
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint32_t reachabilityIterations = 0;
  double buildSeconds = 0.0;
  /// Wall-clock for the whole request.
  double totalSeconds = 0.0;
  /// Request-level failure (null model, state-space overflow, ...). Set by
  /// analyzeAll/submit instead of losing sibling responses to a rethrow;
  /// when non-empty, `results` is empty.
  std::string error;

  [[nodiscard]] bool ok() const {
    if (!error.empty()) return false;
    for (const auto& r : results) {
      if (!r.ok()) return false;
    }
    return true;
  }
};

}  // namespace mimostat::engine
