// Analysis results: one uniform answer shape across backends.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "la/solver.hpp"
#include "pctl/plan.hpp"
#include "stats/intervals.hpp"

namespace mimostat::engine {

enum class Backend;  // request.hpp

/// Where a request's wall-clock went, phase by phase. Filled by the engine
/// from obs::Span measurements on every request (tracing on or off).
/// Diagnostics only: values and orderings the engine exports never depend
/// on these numbers.
struct PhaseTiming {
  /// Seconds between enqueue (analyzeAll/submit) and the moment a worker
  /// picked the request up; 0 for synchronous analyze().
  double queueSeconds = 0.0;
  /// Model acquisition: cache lookup + build (or the wait joining an
  /// in-flight build) + any orientation rebuild.
  double buildSeconds = 0.0;
  /// State-space reduction stage: plan compilation probe, mask/reward
  /// evaluation, quotient-cache lookup and (on a miss) the bisimulation
  /// refinement. 0 when the stage did not run.
  double reduceSeconds = 0.0;
  /// Property parsing + evaluation-plan compilation (exact backend).
  double planSeconds = 0.0;
  /// Plan execution (exact) or sampling (smc) across all properties.
  double checkSeconds = 0.0;
  /// Whole request as seen by the engine (excludes queueSeconds).
  double totalSeconds = 0.0;
};

/// How the sampling backend decided a bounded-probability property
/// (P>=theta [...]) with Wald's SPRT.
struct SprtVerdict {
  /// The test reached a decision within maxPaths. When false, `satisfied`
  /// fell back to comparing the point estimate against the bound and
  /// carries no error guarantee.
  bool decided = false;
  /// Paths drawn before stopping.
  std::uint64_t pathsUsed = 0;
  /// Requested error levels: P(report holds | claim off by >= indifference
  /// in the false direction) <= alpha, and symmetrically beta.
  double alpha = 0.0;
  double beta = 0.0;
  /// Effective indifference half-width (shrunk near theta = 0 or 1).
  double indifference = 0.0;
};

/// How the engine's state-space reduction stage treated a request (exact
/// backend). Values the engine exports are bit-identical (exact paths) or
/// within the solver tolerance (iterative paths) whether or not the stage
/// applied — this struct is bookkeeping, not semantics.
struct ReductionStats {
  /// The checker ran on the bisimulation quotient instead of the full
  /// model. False when the stage was off, skipped by the auto heuristic, or
  /// the quotient did not shrink the model (identity quotients are recorded
  /// in the cache but never applied).
  bool applied = false;
  /// The quotient (or the identity-quotient marker) came from the engine's
  /// model cache rather than a fresh refinement.
  bool cacheHit = false;
  std::uint64_t statesBefore = 0;
  std::uint64_t statesAfter = 0;
  std::uint64_t transitionsBefore = 0;
  std::uint64_t transitionsAfter = 0;
  /// Signature-refinement rounds of the (possibly cached) quotient build.
  std::uint32_t refinementRounds = 0;
  /// Wall-clock of the reduction stage for this request (cache hits pay
  /// only the mask/reward evaluation + lookup). Mirrors
  /// PhaseTiming::reduceSeconds.
  double reduceSeconds = 0.0;
};

/// Outcome of one property from an AnalysisRequest.
struct AnalysisResult {
  std::string property;
  /// Numeric answer weighted by the initial distribution (exact backend) or
  /// the point estimate (sampling backend).
  double value = 0.0;
  /// For bounded properties (P>=p [...], R<=r [...]): whether the bound
  /// holds. Always true for =? queries. On the sampling backend,
  /// bounded-probability properties are decided by SPRT (see `sprt`), so
  /// this carries the requested alpha/beta error guarantee rather than
  /// being a point-estimate comparison.
  bool satisfied = true;
  /// Present when `satisfied` came from an SPRT run (sampling backend,
  /// bounded-probability property).
  std::optional<SprtVerdict> sprt;
  /// 95% confidence interval; only present for fixed-sample-size estimates
  /// (sampling backend). Absent for SPRT-decided properties: their sample
  /// size is chosen adaptively, which voids fixed-sample interval coverage
  /// — the error guarantee is the verdict's alpha/beta instead.
  std::optional<stats::Interval> interval95;
  /// Sample paths drawn; 0 for the exact backend.
  std::uint64_t samples = 0;
  /// This property was answered from an evaluation-plan task shared with
  /// at least one sibling: a multi-horizon transient sweep or a
  /// multi-column masked bounded traversal.
  bool batched = false;
  /// Iterative-solver report when the exact backend ran one for this
  /// property (unbounded operators, R=?[F psi], R=?[S]); absent for
  /// transient/bounded properties and the sampling backend. Carries the
  /// solver's own name (SolveStats::solver: "gauss-seidel", "jacobi",
  /// "power", "power+cesaro"). Deterministic for a fixed model and
  /// property at any thread count.
  std::optional<la::SolveStats> solver;
  /// Seconds spent checking this property (for batched properties: the
  /// shared sweep's total, attributed to every member of the group).
  double checkSeconds = 0.0;
  /// Non-empty when this property failed (parse error, unsupported by the
  /// selected backend, ...). The other properties of the request still
  /// produce values.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Outcome of a whole request, in request property order.
struct AnalysisResponse {
  std::vector<AnalysisResult> results;
  Backend backend{};
  /// The structural model signature used as the cache key (reusable as
  /// RequestOptions::modelKey).
  std::uint64_t modelKey = 0;
  /// The built DTMC was served from the engine's model cache.
  bool cacheHit = false;
  /// The cached model was transpose-only but the request needed forward
  /// (right-product) access, so the engine rebuilt it with both
  /// orientations and upgraded the cache entry in place
  /// (RequestOptions::rebuildOrientation). buildSeconds includes the
  /// rebuild.
  bool orientationRebuilt = false;
  /// Model statistics (exact backend; zero when sampled).
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint32_t reachabilityIterations = 0;
  double buildSeconds = 0.0;
  /// Evaluation-plan counters for the exact backend (zeros when sampled):
  /// how many tasks the request's property set compiled into, how many
  /// were deduplicated away, and how many per-step matrix traversals the
  /// shared bounded/transient groups saved versus per-formula evaluation.
  /// Deterministic for a fixed property set.
  pctl::PlanStats plan;
  /// State-space reduction stage outcome (exact backend; defaults when the
  /// stage was off or skipped). `states`/`transitions` above always report
  /// the full model — the quotient's counts live here.
  ReductionStats reduction;
  /// Wall-clock for the whole request.
  double totalSeconds = 0.0;
  /// Per-phase wall-clock breakdown (queue/build/plan/check). Sums may be
  /// less than totalSeconds; the remainder is engine overhead.
  PhaseTiming timing;
  /// Request-level failure (null model, state-space overflow, ...). Set by
  /// analyzeAll/submit instead of losing sibling responses to a rethrow;
  /// when non-empty, `results` is empty.
  std::string error;

  [[nodiscard]] bool ok() const {
    if (!error.empty()) return false;
    for (const auto& r : results) {
      if (!r.ok()) return false;
    }
    return true;
  }
};

}  // namespace mimostat::engine
