#include "engine/engine.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <utility>

#include <cstring>

#include "dtmc/signature.hpp"
#include "mc/checker.hpp"
#include "pctl/hash.hpp"
#include "mc/transient.hpp"
#include "obs/clock.hpp"
#include "obs/trace.hpp"
#include "pctl/parser.hpp"
#include "smc/smc.hpp"
#include "stats/gaussian.hpp"
#include "util/hash.hpp"

namespace mimostat::engine {

namespace {

/// One parsed property slot of a request.
struct ParsedSlot {
  std::optional<pctl::Property> property;
  std::string parseError;
};

void applyRewardBound(const pctl::RewardQuery& rq, AnalysisResult& result) {
  if (!rq.isQuery) {
    result.satisfied = pctl::evalCmp(rq.boundOp, result.value, rq.boundValue);
  }
}

stats::Interval meanInterval95(const stats::RunningStats& stats) {
  const double z = stats::normalInvCdf(0.975);
  const double half = z * stats.standardError();
  return {stats.mean() - half, stats.mean() + half};
}

/// Cache keys fold build options that change the built matrix (probFloor
/// drops and renormalizes transitions; orientation drops CSR arrays a
/// checker may require) into the structural signature, so requests with
/// different build options never share an entry — a kBoth request must
/// never be served a cached transpose-only matrix. The reverse is safe:
/// analyzeExact may upgrade a transpose-only entry to kBoth in place
/// (rebuildOrientation), leaving a superset of the key's promised arrays
/// under the same key.
/// Quotient-cache entries live in the same map as full builds; the salt
/// keeps a quotient key from ever colliding with its structural key even
/// for an empty digest.
constexpr std::uint64_t kQuotientKeySalt = 0x9D0712E6C2B5A34Full;

std::uint64_t cacheKeyFor(std::uint64_t signatureHash,
                          const dtmc::BuildOptions& buildOptions) {
  std::uint64_t key = signatureHash;
  if (buildOptions.probFloor != 0.0) {
    std::uint64_t floorBits = 0;
    std::memcpy(&floorBits, &buildOptions.probFloor, sizeof(floorBits));
    key = util::hashCombine(key, util::mix64(floorBits));
  }
  if (buildOptions.orientation != la::KeepOrientation::kBoth) {
    key = util::hashCombine(
        key, util::mix64(static_cast<std::uint64_t>(buildOptions.orientation) +
                         0x5EEDu));
  }
  return key;
}

}  // namespace

const char* backendName(Backend backend) {
  switch (backend) {
    case Backend::kAuto:
      return "auto";
    case Backend::kExact:
      return "exact";
    case Backend::kSampling:
      return "sampling";
  }
  return "?";
}

std::uint64_t approxDtmcBytes(const dtmc::ExplicitDtmc& dtmc) {
  const std::uint64_t states = dtmc.numStates();
  const std::uint64_t vars = dtmc.varLayout().numVars();
  // CSR arrays (including the stable transpose and block tables, via the
  // matrix's own accounting); initial distribution; one heap-allocated
  // int32 vector per decoded state.
  return dtmc.matrix().approxBytes() + states * sizeof(double) +
         states * (sizeof(dtmc::State) + vars * sizeof(std::int32_t));
}

AnalysisEngine::AnalysisEngine(EngineOptions options)
    : options_(options),
      propertyCache_(options.propertyCache != nullptr
                         ? options.propertyCache
                         : &pctl::PropertyCache::global()),
      pool_(options.threads, options.metrics != nullptr
                                 ? options.metrics
                                 : &obs::MetricsRegistry::global()),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::MetricsRegistry::global()),
      requestLatencyNs_(metrics_->histogram("engine.request_ns")),
      requestCount_(metrics_->counter("engine.requests")),
      buildCounter_(metrics_->counter("engine.builds")),
      cacheHitCounter_(metrics_->counter("engine.cache_hits")),
      quotientBuildCounter_(metrics_->counter("engine.quotient_builds")),
      quotientHitCounter_(metrics_->counter("engine.quotient_hits")) {}

AnalysisEngine::~AnalysisEngine() = default;

pctl::Property AnalysisEngine::parsedProperty(const std::string& text) {
  return propertyCache_->get(text);
}

std::uint64_t AnalysisEngine::buildCount() const { return stats().builds; }

std::uint64_t AnalysisEngine::cacheHitCount() const {
  return stats().cacheHits;
}

std::size_t AnalysisEngine::cachedModelCount() const {
  return stats().cachedModels;
}

EngineStats AnalysisEngine::stats() const {
  // The one sanctioned read path for the cacheMutex_-guarded counters: a
  // snapshot under the lock, so a stats() racing an eviction or a build
  // completion can never observe a half-updated (cachedModels, cacheBytes)
  // pair. buildCount()/cacheHitCount()/cachedModelCount() all route here.
  EngineStats stats;
  {
    const util::MutexLock lock(cacheMutex_);
    stats.builds = buildCount_;
    stats.cacheHits = cacheHits_;
    stats.cachedModels = modelCache_.size();
    stats.cacheBytes = cacheBytes_;
    stats.quotientBuilds = quotientBuilds_;
    stats.quotientHits = quotientHits_;
  }
  // Latency percentiles come from the registry's shard-merged request
  // histogram (nanoseconds); engines sharing one registry share it.
  const obs::HistogramSnapshot latency =
      metrics_->histogramSnapshot("engine.request_ns");
  stats.requests = latency.count;
  stats.p50RequestSeconds = latency.p50() * 1e-9;
  stats.p90RequestSeconds = latency.p90() * 1e-9;
  stats.p99RequestSeconds = latency.p99() * 1e-9;
  return stats;
}

void AnalysisEngine::clearModelCache() {
  const util::MutexLock lock(cacheMutex_);
  modelCache_.clear();
  cacheBytes_ = 0;
}

void AnalysisEngine::evictLocked() {
  const auto overBudget = [&] {
    if (modelCache_.size() > options_.maxCachedModels) return true;
    // The byte budget never evicts the last entry: a single model larger
    // than the budget stays resident (it will be LRU next time) instead of
    // thrashing — rebuild-per-request would be strictly worse.
    return options_.maxCacheBytes > 0 &&
           cacheBytes_ > options_.maxCacheBytes && modelCache_.size() > 1;
  };
  while (overBudget()) {
    auto victim = modelCache_.end();
    for (auto it = modelCache_.begin(); it != modelCache_.end(); ++it) {
      const bool ready = it->second.future.wait_for(std::chrono::seconds(0)) ==
                         std::future_status::ready;
      if (!ready) continue;  // never evict an in-flight build
      if (victim == modelCache_.end() ||
          it->second.lastUsed < victim->second.lastUsed) {
        victim = it;
      }
    }
    if (victim == modelCache_.end()) return;
    cacheBytes_ -= victim->second.bytes;
    modelCache_.erase(victim);
  }
}

std::shared_ptr<const BuiltModel> AnalysisEngine::ensureBuilt(
    const dtmc::Model& model, const dtmc::BuildOptions& buildOptions,
    std::optional<std::uint64_t> key, bool* cacheHit) {
  if (cacheHit != nullptr) *cacheHit = false;
  if (!key) {
    dtmc::SignatureOptions sigOptions;
    sigOptions.maxStates = buildOptions.maxStates;
    key = cacheKeyFor(dtmc::modelSignature(model, sigOptions).hash,
                      buildOptions);
  }

  std::promise<std::shared_ptr<const BuiltModel>> promise;
  std::shared_future<std::shared_ptr<const BuiltModel>> joined;
  {
    const util::MutexLock lock(cacheMutex_);
    const auto it = modelCache_.find(*key);
    if (it != modelCache_.end()) {
      ++cacheHits_;
      cacheHitCounter_.inc();
      it->second.lastUsed = ++useCounter_;
      joined = it->second.future;
    } else {
      ++buildCount_;
      buildCounter_.inc();
      CacheSlot slot;
      slot.future = promise.get_future().share();
      slot.lastUsed = ++useCounter_;
      modelCache_.emplace(*key, std::move(slot));
    }
  }
  if (joined.valid()) {
    if (cacheHit != nullptr) *cacheHit = true;
    return joined.get();  // waits for an in-flight build; rethrows failures
  }

  try {
    dtmc::BuildResult build = dtmc::buildExplicit(model, buildOptions);
    auto built = std::make_shared<BuiltModel>();
    built->dtmc = std::move(build.dtmc);
    built->reachabilityIterations = build.reachabilityIterations;
    built->buildSeconds = build.buildSeconds;
    built->signature = *key;
    built->approxBytes = approxDtmcBytes(built->dtmc);
    promise.set_value(built);
    const util::MutexLock lock(cacheMutex_);
    // The slot may already be gone if a concurrent eviction pass raced past
    // this build's completion; account its bytes only while resident.
    const auto slot = modelCache_.find(*key);
    if (slot != modelCache_.end() && slot->second.bytes == 0) {
      slot->second.bytes = built->approxBytes;
      cacheBytes_ += built->approxBytes;
    }
    evictLocked();
    return built;
  } catch (...) {
    // Drop the failed slot so a later request can retry, then propagate to
    // this caller and to any waiter blocked on the shared future. The slot
    // normally carries bytes == 0 (in-flight), but a racing completed build
    // of the same key may have recorded its size here — keep cacheBytes_
    // consistent either way.
    {
      const util::MutexLock lock(cacheMutex_);
      const auto it = modelCache_.find(*key);
      if (it != modelCache_.end()) {
        cacheBytes_ -= it->second.bytes;
        modelCache_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

std::shared_ptr<const BuiltModel> AnalysisEngine::quotientFor(
    const BuiltModel& full, std::uint64_t quotientKey,
    const std::vector<const la::BitVector*>& masks,
    const std::vector<const std::vector<double>*>& rewards,
    const reduce::Options& reduction, bool* cacheHit) {
  *cacheHit = false;

  std::promise<std::shared_ptr<const BuiltModel>> promise;
  std::shared_future<std::shared_ptr<const BuiltModel>> joined;
  {
    const util::MutexLock lock(cacheMutex_);
    const auto it = modelCache_.find(quotientKey);
    if (it != modelCache_.end()) {
      ++quotientHits_;
      quotientHitCounter_.inc();
      it->second.lastUsed = ++useCounter_;
      joined = it->second.future;
    } else {
      ++quotientBuilds_;
      quotientBuildCounter_.inc();
      CacheSlot slot;
      slot.future = promise.get_future().share();
      slot.lastUsed = ++useCounter_;
      modelCache_.emplace(quotientKey, std::move(slot));
    }
  }
  if (joined.valid()) {
    *cacheHit = true;
    return joined.get();  // waits for an in-flight refinement
  }

  try {
    reduce::ReducedModel reduced =
        reduce::buildQuotient(full.dtmc, masks, rewards, reduction);
    auto built = std::make_shared<BuiltModel>();
    built->signature = quotientKey;
    built->reachabilityIterations = full.reachabilityIterations;
    auto info = std::make_shared<reduce::ReductionInfo>(std::move(reduced.info));
    if (info->statesAfter < info->statesBefore) {
      built->dtmc = std::move(reduced.quotient);
      built->approxBytes = approxDtmcBytes(built->dtmc) + info->approxBytes();
    } else {
      // Identity-quotient marker: drop the block map and the (duplicate)
      // quotient matrix. The entry only memoizes "this plan cannot shrink
      // this model", so repeat requests skip the refinement at no byte
      // cost.
      reduce::shrinkToMarker(*info);
      built->approxBytes = sizeof(BuiltModel);
    }
    built->reduction = std::move(info);
    promise.set_value(built);
    {
      const util::MutexLock lock(cacheMutex_);
      const auto slot = modelCache_.find(quotientKey);
      if (slot != modelCache_.end() && slot->second.bytes == 0) {
        slot->second.bytes = built->approxBytes;
        cacheBytes_ += built->approxBytes;
      }
      evictLocked();
    }
    return built;
  } catch (...) {
    {
      const util::MutexLock lock(cacheMutex_);
      const auto it = modelCache_.find(quotientKey);
      if (it != modelCache_.end()) {
        cacheBytes_ -= it->second.bytes;
        modelCache_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

AnalysisResponse AnalysisEngine::analyze(const AnalysisRequest& request) {
  return analyzeQueued(request, 0.0);
}

AnalysisResponse AnalysisEngine::analyzeQueued(const AnalysisRequest& request,
                                               double queueSeconds) {
  // Root of the request's span tree; every phase span below parents here
  // (directly or via CheckOptions::traceParent for cross-thread tasks).
  obs::Span span("engine.analyze");
  if (request.model == nullptr) {
    throw std::invalid_argument("AnalysisRequest: model is null");
  }
  const RequestOptions& options = request.options;

  // Resolve the cache key and the backend.
  std::uint64_t key = 0;
  Backend backend = options.backend;
  if (options.modelKey) {
    key = *options.modelKey;
    if (backend == Backend::kAuto) {
      // A caller-supplied key implies a model the caller expects to be
      // buildable (typically a key echoed from a previous exact response).
      backend = Backend::kExact;
    }
  } else {
    // The sampling backend needs the key only as a response label, so its
    // probe is capped at the (small) state budget rather than the build
    // limit — explicitly sampled models are typically huge.
    dtmc::SignatureOptions sigOptions;
    sigOptions.maxStates = backend == Backend::kExact
                               ? options.build.maxStates
                               : options.stateBudget + 1;
    const dtmc::ModelSignature sig =
        dtmc::modelSignature(*request.model, sigOptions);
    key = cacheKeyFor(sig.hash, options.build);
    if (backend == Backend::kAuto) {
      bool cached = false;
      {
        const util::MutexLock lock(cacheMutex_);
        cached = modelCache_.find(key) != modelCache_.end();
      }
      backend = (cached || (sig.exact && sig.states <= options.stateBudget))
                    ? Backend::kExact
                    : Backend::kSampling;
    }
  }

  AnalysisResponse response =
      backend == Backend::kExact
          ? analyzeExact(request, key, span.id())
          : analyzeSampling(request, key, span.id());
  response.timing.queueSeconds = queueSeconds;
  response.totalSeconds = span.stopSeconds();
  response.timing.totalSeconds = response.totalSeconds;
  requestCount_.inc();
  requestLatencyNs_.recordSeconds(queueSeconds + response.totalSeconds);
  return response;
}

AnalysisResponse AnalysisEngine::analyzeExact(const AnalysisRequest& request,
                                              std::uint64_t key,
                                              std::uint64_t traceParent) {
  AnalysisResponse response;
  response.backend = Backend::kExact;
  response.modelKey = key;
  response.results.resize(request.properties.size());

  // Parse every property up front (memoized); parse failures become
  // per-property errors, not request failures.
  obs::Span parseSpan("pctl.parse", traceParent);
  std::vector<ParsedSlot> parsed(request.properties.size());
  for (std::size_t i = 0; i < request.properties.size(); ++i) {
    response.results[i].property = request.properties[i];
    try {
      parsed[i].property = parsedProperty(request.properties[i]);
    } catch (const std::exception& e) {
      parsed[i].parseError = e.what();
      response.results[i].error = e.what();
    }
  }
  const double parseSeconds = parseSpan.stopSeconds();

  // The build phase covers cache lookup, the build itself (or the wait
  // joining an in-flight one — "dtmc.build" nests here on a miss) and any
  // orientation rebuild below.
  obs::Span buildSpan("engine.build", traceParent);
  bool cacheHit = false;
  std::shared_ptr<const BuiltModel> built =
      ensureBuilt(*request.model, request.options.build, key, &cacheHit);
  response.cacheHit = cacheHit;

  // Rebuild-on-demand: a transpose-only model (built or cached under a
  // kTransposeOnly key) cannot serve forward traversals — bounded groups,
  // unbounded value iteration, reachability rewards. Instead of refusing
  // per property (mc::requireForwardOrientation), rebuild with both
  // orientations and upgrade the cache entry under the SAME key: serving a
  // superset of the key's promised arrays is safe, only the reverse is
  // forbidden. Refusal remains when the request disables the rebuild.
  if (request.options.rebuildOrientation &&
      !built->dtmc.matrix().hasOriginal()) {
    bool needsForward = false;
    for (const ParsedSlot& slot : parsed) {
      if (!slot.property) continue;
      needsForward =
          needsForward ||
          slot.property->kind == pctl::Property::Kind::kProb ||
          slot.property->reward.kind == pctl::RewardQuery::Kind::kReachability;
    }
    if (needsForward) {
      dtmc::BuildOptions upgraded = request.options.build;
      upgraded.orientation = la::KeepOrientation::kBoth;
      dtmc::BuildResult rebuild = dtmc::buildExplicit(*request.model, upgraded);
      auto replacement = std::make_shared<BuiltModel>();
      replacement->dtmc = std::move(rebuild.dtmc);
      replacement->reachabilityIterations = rebuild.reachabilityIterations;
      replacement->buildSeconds = rebuild.buildSeconds;
      replacement->signature = key;
      replacement->approxBytes = approxDtmcBytes(replacement->dtmc);
      std::promise<std::shared_ptr<const BuiltModel>> promise;
      promise.set_value(replacement);
      {
        const util::MutexLock lock(cacheMutex_);
        const auto it = modelCache_.find(key);
        if (it != modelCache_.end()) cacheBytes_ -= it->second.bytes;
        CacheSlot slot;
        slot.future = promise.get_future().share();
        slot.lastUsed = ++useCounter_;
        slot.bytes = replacement->approxBytes;
        cacheBytes_ += replacement->approxBytes;
        modelCache_[key] = std::move(slot);
        ++buildCount_;
        evictLocked();
      }
      response.orientationRebuilt = true;
      response.buildSeconds = built->buildSeconds + replacement->buildSeconds;
      built = std::move(replacement);
    }
  }

  response.timing.buildSeconds = buildSpan.stopSeconds();

  response.states = built->dtmc.numStates();
  response.transitions = built->dtmc.numTransitions();
  response.reachabilityIterations = built->reachabilityIterations;
  if (!response.orientationRebuilt) {
    response.buildSeconds = built->buildSeconds;
  }

  // Properties the plan (and the reduction stage's probe) will cover; the
  // engine maps indices around parse failures.
  std::vector<pctl::Property> planned;
  std::vector<std::size_t> slotOf;
  planned.reserve(parsed.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    if (!parsed[i].property) continue;
    planned.push_back(*parsed[i].property);
    slotOf.push_back(i);
  }
  pctl::PlanOptions planOptions;
  planOptions.batchBounded = request.options.batchBounded;
  planOptions.batchTransients = request.options.batchHorizons;

  // ---- State-space reduction stage -------------------------------------
  // On models past the auto threshold (or when forced on), replace the
  // checking substrate with the plan-aware bisimulation quotient: the
  // initial partition is seeded by exactly the atom masks and reward
  // vectors this request's plan needs, so labels the plan never reads
  // cannot block merging. The unmodified checker then runs on the quotient
  // — every mask/reward that seeded the partition is block-constant, so
  // re-evaluation through the quotient's representative states equals
  // projection and the initial-distribution-weighted answers are exact
  // (strong lumping). Quotients are cached in the model cache keyed by
  // (structural key, label/reward digest).
  const reduce::Options& reduction = request.options.reduction;
  if (!planned.empty() &&
      reduce::quotientSelected(reduction, built->dtmc.numStates())) {
    obs::Span reduceSpan("engine.reduce", traceParent);
    ReductionStats reductionStats;
    try {
      // The plan compiled here is purely syntactic and deterministic — the
      // checker recompiles the identical plan below; only its mask table
      // and reward names matter to the partition.
      const pctl::EvalPlan probePlan = pctl::buildPlan(planned, planOptions);
      mc::CheckOptions probeOptions;
      probeOptions.traceParent = reduceSpan.id();
      const mc::Checker probe(built->dtmc, *request.model, probeOptions,
                              propertyCache_);
      std::vector<la::BitVector> maskBits;
      maskBits.reserve(probePlan.masks.size());
      for (const auto& mask : probePlan.masks) {
        maskBits.push_back(probe.evalStateFormula(*mask));
      }
      // Reward structures any reward property resolves. plan.rewardNames
      // covers only the transient group, so gather from the properties and
      // deduplicate in sorted order (the digest is order-independent, but
      // the partition keys must be fed deterministically).
      std::vector<std::string> rewardNames;
      for (const pctl::Property& property : planned) {
        if (property.kind == pctl::Property::Kind::kReward) {
          rewardNames.push_back(property.reward.rewardName);
        }
      }
      std::sort(rewardNames.begin(), rewardNames.end());
      rewardNames.erase(std::unique(rewardNames.begin(), rewardNames.end()),
                        rewardNames.end());
      std::vector<std::vector<double>> rewardVectors;
      rewardVectors.reserve(rewardNames.size());
      for (const std::string& name : rewardNames) {
        rewardVectors.push_back(built->dtmc.evalReward(*request.model, name));
      }

      dtmc::LabelRewardDigest digest;
      for (std::size_t m = 0; m < probePlan.masks.size(); ++m) {
        digest.addMask(pctl::structuralHash(*probePlan.masks[m]), maskBits[m]);
      }
      for (std::size_t r = 0; r < rewardNames.size(); ++r) {
        digest.addReward(rewardNames[r], rewardVectors[r]);
      }
      const std::uint64_t quotientKey = util::hashCombine(
          key ^ kQuotientKeySalt, util::mix64(digest.hash()));

      std::vector<const la::BitVector*> maskPtrs;
      maskPtrs.reserve(maskBits.size());
      for (const la::BitVector& bits : maskBits) maskPtrs.push_back(&bits);
      std::vector<const std::vector<double>*> rewardPtrs;
      rewardPtrs.reserve(rewardVectors.size());
      for (const std::vector<double>& v : rewardVectors) {
        rewardPtrs.push_back(&v);
      }

      bool quotientCacheHit = false;
      std::shared_ptr<const BuiltModel> reducedBuilt = quotientFor(
          *built, quotientKey, maskPtrs, rewardPtrs, reduction,
          &quotientCacheHit);
      const reduce::ReductionInfo& info = *reducedBuilt->reduction;
      reductionStats.cacheHit = quotientCacheHit;
      reductionStats.statesBefore = info.statesBefore;
      reductionStats.statesAfter = info.statesAfter;
      reductionStats.transitionsBefore = info.transitionsBefore;
      reductionStats.transitionsAfter = info.transitionsAfter;
      reductionStats.refinementRounds = info.refinementRounds;
      if (info.statesAfter < info.statesBefore) {
        reductionStats.applied = true;
        built = std::move(reducedBuilt);
      }
      // Identity quotients (marker entries) are recorded but never applied.
    } catch (...) {
      // Reduction is an optimization, never a gatekeeper: semantic errors
      // (unknown atoms/rewards) fall through to the checker, which reports
      // them per property against the full model.
      reductionStats = ReductionStats{};
    }
    reductionStats.reduceSeconds = reduceSpan.stopSeconds();
    response.timing.reduceSeconds = reductionStats.reduceSeconds;
    response.reduction = reductionStats;
  }

  // Parallel linear algebra: unless the request brings its own runner, la::
  // kernels (transient multiplies, power iteration, Jacobi sweeps) fan out
  // over the engine pool. Nested pool_.run is deadlock-free (the property
  // task drains its own sub-batch) and every kernel is bit-identical at any
  // pool size, so this only changes wall-clock.
  // Check phase: plan compilation ("pctl.plan", stamped into PlanStats by
  // the checker) plus plan execution. Group tasks run on pool threads, so
  // their spans parent through CheckOptions::traceParent rather than the
  // thread-local nesting.
  obs::Span checkSpan("engine.check", traceParent);
  mc::CheckOptions checkOptions = request.options.check;
  checkOptions.traceParent = checkSpan.id();
  // RequestOptions::reduction is authoritative; the engine resolves the
  // elimination kAuto here (fire only when a quotient applied and stayed
  // within the elimination size cap), so the checker never sees kAuto as
  // anything but off.
  checkOptions.reduction = reduction;
  if (checkOptions.reduction.elimination == reduce::Toggle::kAuto) {
    checkOptions.reduction.elimination =
        reduce::eliminationAutoFires(reduction, response.reduction.applied,
                                     built->dtmc.numStates())
            ? reduce::Toggle::kOn
            : reduce::Toggle::kOff;
  }
  if (checkOptions.exec.runner == nullptr && options_.parallelLinearAlgebra) {
    checkOptions.exec.runner = laRunnerFor(pool_);
    // A threshold the request set explicitly (even to the la:: default)
    // always wins; the engine default only fills the unset case.
    if (!checkOptions.exec.parallelThresholdNnz) {
      checkOptions.exec.parallelThresholdNnz = options_.laParallelThresholdNnz;
    }
  }
  // SIMD target is orthogonal to the runner: the engine default fills the
  // unset case whether or not the request brought its own runner (a
  // request-pinned Exec::simd always wins).
  if (!checkOptions.exec.simd && options_.simd) {
    checkOptions.exec.simd = options_.simd;
  }
  const mc::Checker checker(built->dtmc, *request.model, checkOptions,
                            propertyCache_);

  // Plan across every parsed property of the request: bounded path
  // formulas advance as columns of one masked SpMM traversal, transient
  // horizons share one forward sweep, singles fan out over the pool — the
  // checker compiles and executes the plan (mc::Checker::checkAll), the
  // engine only maps indices around parse failures and surfaces the plan
  // counters on the response.
  const std::vector<mc::CheckResult> checks = checker.checkAll(
      planned, planOptions, &response.plan,
      [this](std::vector<std::function<void()>> tasks) {
        pool_.run(std::move(tasks));
      });

  for (std::size_t j = 0; j < checks.size(); ++j) {
    AnalysisResult& result = response.results[slotOf[j]];
    const mc::CheckResult& check = checks[j];
    if (!check.ok()) {
      result.error = check.error;
      continue;
    }
    result.value = check.value;
    result.satisfied = check.satisfied;
    result.batched = check.batched;
    result.checkSeconds = check.checkSeconds;
    result.solver = check.solver;
  }

  response.timing.checkSeconds = checkSpan.stopSeconds();
  response.timing.planSeconds = parseSeconds + response.plan.planSeconds;
  return response;
}

AnalysisResponse AnalysisEngine::analyzeSampling(const AnalysisRequest& request,
                                                 std::uint64_t key,
                                                 std::uint64_t traceParent) {
  AnalysisResponse response;
  response.backend = Backend::kSampling;
  response.modelKey = key;
  response.results.resize(request.properties.size());

  // Path chunks of one property fan out over the pool; nested run() is safe
  // (the property task drains its own chunk batch).
  const smc::TaskRunner runner =
      [this](std::vector<std::function<void()>> chunks) {
        pool_.run(std::move(chunks));
      };

  obs::Span checkSpan("engine.check", traceParent);
  const std::uint64_t checkSpanId = checkSpan.id();
  std::vector<std::function<void()>> tasks;
  tasks.reserve(request.properties.size());
  for (std::size_t i = 0; i < request.properties.size(); ++i) {
    response.results[i].property = request.properties[i];
    tasks.push_back([&, i, checkSpanId] {
      AnalysisResult& result = response.results[i];
      // Pool-thread task: parent the sampling span explicitly (the
      // thread-local nesting only links same-thread spans). smc::'s own
      // "smc.sample" span nests under this one on the task's thread.
      obs::Span propSpan("engine.property", checkSpanId);
      try {
        const pctl::Property property =
            parsedProperty(request.properties[i]);
        // Every property samples its own derived stream: identical
        // properties in one request stay statistically independent, and a
        // fixed request seed reproduces every estimate bit for bit.
        smc::SmcOptions smcOptions = request.options.smc;
        smcOptions.seed = smc::deriveSeed(request.options.smc.seed, i);
        if (property.kind == pctl::Property::Kind::kProb) {
          const pctl::ProbQuery& pq = property.prob;
          const bool inequalityBound =
              !pq.isQuery && (pq.boundOp == pctl::CmpOp::kGe ||
                              pq.boundOp == pctl::CmpOp::kGt ||
                              pq.boundOp == pctl::CmpOp::kLe ||
                              pq.boundOp == pctl::CmpOp::kLt);
          if (inequalityBound && pq.boundValue > 0.0 && pq.boundValue < 1.0) {
            // Bounded-probability property: decide via SPRT so `satisfied`
            // carries the requested alpha/beta error guarantee.
            smc::SprtOptions sprtOptions = request.options.sprt;
            sprtOptions.seed = smcOptions.seed;
            const smc::SprtOutcome outcome = smc::testPathProbability(
                *request.model, pq.path, pq.boundOp, pq.boundValue,
                sprtOptions);
            // No interval95 here: the SPRT stops adaptively, and a Wilson
            // interval on an optionally-stopped sample does not have its
            // nominal coverage. The guarantee lives in alpha/beta instead.
            result.value = outcome.observed.estimate();
            result.samples = outcome.pathsUsed;
            SprtVerdict verdict;
            verdict.decided =
                outcome.decision != stats::SprtDecision::kContinue;
            verdict.pathsUsed = outcome.pathsUsed;
            verdict.alpha = sprtOptions.alpha;
            verdict.beta = sprtOptions.beta;
            verdict.indifference = outcome.indifference;
            // Undecided within maxPaths: fall back to the point estimate
            // (decided=false flags the missing guarantee).
            result.satisfied =
                verdict.decided
                    ? outcome.holds
                    : pctl::evalCmp(pq.boundOp, result.value, pq.boundValue);
            result.sprt = verdict;
          } else {
            const smc::SmcEstimate estimate = smc::estimatePathProbability(
                *request.model, pq.path, smcOptions, runner);
            result.value = estimate.estimate();
            result.interval95 = estimate.satisfied.wilson(0.95);
            result.samples = estimate.satisfied.trials();
            if (!pq.isQuery) {
              // Degenerate or equality bounds: point-estimate comparison
              // (no SPRT hypotheses exist outside (0, 1)).
              result.satisfied =
                  pctl::evalCmp(pq.boundOp, result.value, pq.boundValue);
            }
          }
        } else if (property.reward.kind ==
                   pctl::RewardQuery::Kind::kInstantaneous) {
          const stats::RunningStats stats = smc::estimateInstantaneousReward(
              *request.model, property.reward.bound,
              property.reward.rewardName, smcOptions, runner);
          result.value = stats.mean();
          result.interval95 = meanInterval95(stats);
          result.samples = stats.count();
          applyRewardBound(property.reward, result);
        } else if (property.reward.kind ==
                   pctl::RewardQuery::Kind::kCumulative) {
          const stats::RunningStats stats = smc::estimateCumulativeReward(
              *request.model, property.reward.bound,
              property.reward.rewardName, smcOptions, runner);
          result.value = stats.mean();
          result.interval95 = meanInterval95(stats);
          result.samples = stats.count();
          applyRewardBound(property.reward, result);
        } else {
          result.error =
              "property requires the exact backend (bounded P-formulas, "
              "R=?[I=T] and R=?[C<=T] are estimable by sampling)";
        }
      } catch (const std::exception& e) {
        result.error = e.what();
      }
      result.checkSeconds = propSpan.stopSeconds();
    });
  }

  pool_.run(std::move(tasks));
  response.timing.checkSeconds = checkSpan.stopSeconds();
  return response;
}

std::vector<AnalysisResponse> AnalysisEngine::analyzeAll(
    const std::vector<AnalysisRequest>& requests) {
  std::vector<AnalysisResponse> responses(requests.size());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(requests.size());
  const std::uint64_t enqueuedNs = obs::monotonicNanos();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    tasks.push_back([&, i, enqueuedNs] {
      // A failing request must not take its siblings' responses down with
      // it: capture the failure per-response instead of rethrowing.
      const double queueSeconds =
          static_cast<double>(obs::monotonicNanos() - enqueuedNs) * 1e-9;
      try {
        responses[i] = analyzeQueued(requests[i], queueSeconds);
      } catch (const std::exception& e) {
        responses[i] = AnalysisResponse{};
        responses[i].backend = requests[i].options.backend;
        responses[i].error = e.what();
      }
    });
  }
  pool_.run(std::move(tasks));
  return responses;
}

std::future<AnalysisResponse> AnalysisEngine::submit(AnalysisRequest request) {
  const std::uint64_t enqueuedNs = obs::monotonicNanos();
  auto task = std::make_shared<std::packaged_task<AnalysisResponse()>>(
      [this, request = std::move(request), enqueuedNs] {
        const double queueSeconds =
            static_cast<double>(obs::monotonicNanos() - enqueuedNs) * 1e-9;
        return analyzeQueued(request, queueSeconds);
      });
  std::future<AnalysisResponse> future = task->get_future();
  pool_.post([task] { (*task)(); });
  return future;
}

AnalysisEngine& defaultEngine() {
  static AnalysisEngine engine;
  return engine;
}

}  // namespace mimostat::engine
