// Statistical model checking (SMC) — the sampling-based alternative the
// paper positions itself against (cf. its ref. [13], Clarke/Donzé/Legay).
//
// Instead of exhaustively exploring the DTMC, SMC samples finite paths
// directly from the dtmc::Model transition function and estimates bounded
// pCTL properties (P-formulas, instantaneous and cumulative rewards), or
// sequentially tests P(phi) >= theta with Wald's SPRT. This gives the
// library both poles of the paper's comparison: exact probabilistic model
// checking (mc::Checker) and statistical guarantees by simulation (this
// module), sharing one model definition.
//
// Determinism: all estimators draw paths in fixed-size chunks, each chunk
// from its own counter-derived RNG stream (deriveSeed of the caller seed and
// the chunk index). Chunks may run on any threads in any order — per-chunk
// accumulators are merged in chunk-index order, so for a fixed seed the
// result is bit-identical whether sampling runs serially or on a pool of
// any size.
//
// Only *time-bounded* path formulas are estimable by finite sampling;
// passing an unbounded formula throws.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "dtmc/model.hpp"
#include "pctl/ast.hpp"
#include "stats/estimator.hpp"
#include "stats/sprt.hpp"
#include "util/rng.hpp"

namespace mimostat::smc {

/// Evaluate a state formula on a concrete state of a model (variables are
/// resolved through the layout, quoted/bare atoms through Model::atom).
[[nodiscard]] bool evalStateFormula(const dtmc::Model& model,
                                    const dtmc::VarLayout& layout,
                                    const dtmc::State& state,
                                    const pctl::StateFormula& formula);

/// Derive an independent substream seed from a base seed and a stream index
/// (splitmix64 over the mixed pair). Used for per-property and per-chunk RNG
/// streams so sibling estimates are uncorrelated and thread-count
/// independent.
[[nodiscard]] std::uint64_t deriveSeed(std::uint64_t seed,
                                       std::uint64_t stream);

/// Executes a batch of independent tasks, blocking until all complete (the
/// engine passes its thread pool; empty means run serially in order).
using TaskRunner = std::function<void(std::vector<std::function<void()>>)>;

/// Samples random paths from a model. Each path starts from a uniformly
/// chosen initial state. States without outgoing transitions are treated as
/// absorbing (self-loop), matching the convention of explicit-state tools.
class PathSampler {
 public:
  PathSampler(const dtmc::Model& model, std::uint64_t seed);

  /// Restart at a random initial state; returns it.
  const dtmc::State& reset();
  /// Advance one transition; returns the new state.
  const dtmc::State& step();
  [[nodiscard]] const dtmc::State& state() const { return state_; }
  [[nodiscard]] const dtmc::VarLayout& layout() const { return layout_; }

 private:
  const dtmc::Model& model_;
  dtmc::VarLayout layout_;
  util::Xoshiro256 rng_;
  dtmc::State state_;
  std::vector<dtmc::Transition> scratch_;
};

struct SmcOptions {
  std::uint64_t paths = 10'000;
  std::uint64_t seed = 1;
  /// Paths per RNG chunk (the determinism granularity); results are
  /// invariant under the task runner's thread count, not under chunkPaths.
  std::uint64_t chunkPaths = 1'024;
};

struct SmcEstimate {
  stats::BernoulliEstimator satisfied;  ///< per-path satisfaction counter
  double seconds = 0.0;

  [[nodiscard]] double estimate() const { return satisfied.estimate(); }
};

/// Estimate P(path formula) for a bounded path formula by sampling.
/// Throws std::invalid_argument for unbounded formulas.
[[nodiscard]] SmcEstimate estimatePathProbability(
    const dtmc::Model& model, const pctl::PathFormula& path,
    const SmcOptions& options, const TaskRunner& runner = {});

/// Parse-and-estimate convenience for "P=? [ ... ]" property strings.
[[nodiscard]] SmcEstimate estimateProperty(const dtmc::Model& model,
                                           std::string_view propertyText,
                                           const SmcOptions& options,
                                           const TaskRunner& runner = {});

/// Estimate R=? [ I=T ] by sampling (mean instantaneous reward at T).
[[nodiscard]] stats::RunningStats estimateInstantaneousReward(
    const dtmc::Model& model, std::uint64_t horizon,
    std::string_view rewardName, const SmcOptions& options,
    const TaskRunner& runner = {});

/// Estimate R=? [ C<=T ] by sampling: mean over paths of the per-path
/// accumulated state reward sum_{t=0}^{T-1} r(s_t) — the pathwise analogue
/// of the exact checker's sum_{t=0}^{T-1} pi_t . r, so both backends answer
/// the same quantity.
[[nodiscard]] stats::RunningStats estimateCumulativeReward(
    const dtmc::Model& model, std::uint64_t horizon,
    std::string_view rewardName, const SmcOptions& options,
    const TaskRunner& runner = {});

struct SprtOptions {
  double indifference = 0.01;  ///< half-width of the indifference region
  double alpha = 0.01;         ///< false-accept probability for H1
  double beta = 0.01;          ///< false-accept probability for H0
  std::uint64_t maxPaths = 10'000'000;
  std::uint64_t seed = 1;
  /// Paths per RNG chunk; the observation order (and hence the decision) is
  /// a function of the seed alone.
  std::uint64_t chunkPaths = 1'024;
};

struct SprtOutcome {
  stats::SprtDecision decision = stats::SprtDecision::kContinue;
  std::uint64_t pathsUsed = 0;
  /// The tested satisfaction claim holds (only meaningful when a decision
  /// was reached): for P>=theta, kAcceptH1 means "holds".
  bool holds = false;
  /// Per-path satisfaction counts observed before stopping (a point
  /// estimate for free alongside the decision).
  stats::BernoulliEstimator observed;
  /// The effective indifference half-width used (shrunk near 0/1 bounds).
  double indifference = 0.0;
};

/// Sequentially test "P(path) `op` theta" (op an inequality, 0 < theta < 1)
/// for a bounded path formula with Wald's SPRT at the requested alpha/beta
/// error levels. Sampling is sequential by construction; determinism comes
/// from the counter-derived chunk streams.
[[nodiscard]] SprtOutcome testPathProbability(const dtmc::Model& model,
                                              const pctl::PathFormula& path,
                                              pctl::CmpOp op, double theta,
                                              const SprtOptions& options);

/// Parse-and-test convenience for bounded-probability P-property strings
/// (e.g. "P>=0.9 [ F<=50 flag ]").
[[nodiscard]] SprtOutcome testProperty(const dtmc::Model& model,
                                       std::string_view propertyText,
                                       const SprtOptions& options);

}  // namespace mimostat::smc
