// Statistical model checking (SMC) — the sampling-based alternative the
// paper positions itself against (cf. its ref. [13], Clarke/Donzé/Legay).
//
// Instead of exhaustively exploring the DTMC, SMC samples finite paths
// directly from the dtmc::Model transition function and estimates bounded
// pCTL properties, or sequentially tests P(phi) >= theta with Wald's SPRT.
// This gives the library both poles of the paper's comparison: exact
// probabilistic model checking (mc::Checker) and statistical guarantees by
// simulation (this module), sharing one model definition.
//
// Only *bounded* path formulas are estimable by finite sampling; passing an
// unbounded formula throws.
#pragma once

#include <cstdint>
#include <string_view>

#include "dtmc/model.hpp"
#include "pctl/ast.hpp"
#include "stats/estimator.hpp"
#include "stats/sprt.hpp"
#include "util/rng.hpp"

namespace mimostat::smc {

/// Evaluate a state formula on a concrete state of a model (variables are
/// resolved through the layout, quoted/bare atoms through Model::atom).
[[nodiscard]] bool evalStateFormula(const dtmc::Model& model,
                                    const dtmc::VarLayout& layout,
                                    const dtmc::State& state,
                                    const pctl::StateFormula& formula);

/// Samples random paths from a model. Each path starts from a uniformly
/// chosen initial state.
class PathSampler {
 public:
  PathSampler(const dtmc::Model& model, std::uint64_t seed);

  /// Restart at a random initial state; returns it.
  const dtmc::State& reset();
  /// Advance one transition; returns the new state.
  const dtmc::State& step();
  [[nodiscard]] const dtmc::State& state() const { return state_; }
  [[nodiscard]] const dtmc::VarLayout& layout() const { return layout_; }

 private:
  const dtmc::Model& model_;
  dtmc::VarLayout layout_;
  util::Xoshiro256 rng_;
  dtmc::State state_;
  std::vector<dtmc::Transition> scratch_;
};

struct SmcOptions {
  std::uint64_t paths = 10'000;
  std::uint64_t seed = 1;
};

struct SmcEstimate {
  stats::BernoulliEstimator satisfied;  ///< per-path satisfaction counter
  double seconds = 0.0;

  [[nodiscard]] double estimate() const { return satisfied.estimate(); }
};

/// Estimate P(path formula) for a bounded path formula by sampling.
/// Throws std::invalid_argument for unbounded formulas.
[[nodiscard]] SmcEstimate estimatePathProbability(const dtmc::Model& model,
                                                  const pctl::PathFormula& path,
                                                  const SmcOptions& options);

/// Parse-and-estimate convenience for "P=? [ ... ]" property strings.
[[nodiscard]] SmcEstimate estimateProperty(const dtmc::Model& model,
                                           std::string_view propertyText,
                                           const SmcOptions& options);

/// Estimate R=? [ I=T ] by sampling (mean instantaneous reward at T).
[[nodiscard]] stats::RunningStats estimateInstantaneousReward(
    const dtmc::Model& model, std::uint64_t horizon,
    std::string_view rewardName, const SmcOptions& options);

struct SprtOptions {
  double indifference = 0.01;  ///< half-width of the indifference region
  double alpha = 0.01;         ///< false-accept probability for H1
  double beta = 0.01;          ///< false-accept probability for H0
  std::uint64_t maxPaths = 10'000'000;
  std::uint64_t seed = 1;
};

struct SprtOutcome {
  stats::SprtDecision decision = stats::SprtDecision::kContinue;
  std::uint64_t pathsUsed = 0;
  /// The tested satisfaction claim holds (only meaningful when a decision
  /// was reached): for P>=theta, kAcceptH1 means "holds".
  bool holds = false;
};

/// Sequentially test "P(path) >= theta [ / <= theta ]" given as a bounded
/// P-property with a probability bound (e.g. "P>=0.9 [ F<=50 flag ]").
[[nodiscard]] SprtOutcome testProperty(const dtmc::Model& model,
                                       std::string_view propertyText,
                                       const SprtOptions& options);

}  // namespace mimostat::smc
