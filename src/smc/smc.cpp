#include "smc/smc.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "pctl/parser.hpp"
#include "util/timer.hpp"

namespace mimostat::smc {

bool evalStateFormula(const dtmc::Model& model, const dtmc::VarLayout& layout,
                      const dtmc::State& state,
                      const pctl::StateFormula& formula) {
  using Kind = pctl::StateFormula::Kind;
  switch (formula.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      const auto varIdx = layout.tryIndexOf(formula.name);
      if (varIdx != dtmc::VarLayout::npos) return state[varIdx] != 0;
      return model.atom(state, formula.name);
    }
    case Kind::kVarCmp: {
      const auto varIdx = layout.tryIndexOf(formula.name);
      if (varIdx == dtmc::VarLayout::npos) {
        throw std::runtime_error("SMC: unknown state variable '" +
                                 formula.name + "'");
      }
      return pctl::evalCmp(formula.op, state[varIdx], formula.value);
    }
    case Kind::kNot:
      return !evalStateFormula(model, layout, state, *formula.lhs);
    case Kind::kAnd:
      return evalStateFormula(model, layout, state, *formula.lhs) &&
             evalStateFormula(model, layout, state, *formula.rhs);
    case Kind::kOr:
      return evalStateFormula(model, layout, state, *formula.lhs) ||
             evalStateFormula(model, layout, state, *formula.rhs);
  }
  throw std::logic_error("unreachable state-formula kind");
}

PathSampler::PathSampler(const dtmc::Model& model, std::uint64_t seed)
    : model_(model), layout_(model.layout()), rng_(seed) {
  reset();
}

const dtmc::State& PathSampler::reset() {
  const std::vector<dtmc::State> initial = model_.initialStates();
  assert(!initial.empty());
  state_ = initial[rng_.nextBounded(initial.size())];
  return state_;
}

const dtmc::State& PathSampler::step() {
  scratch_.clear();
  model_.transitions(state_, scratch_);
  const double mass = dtmc::normalizeTransitions(scratch_, 0.0);
  double u = rng_.nextDouble() * mass;
  for (const auto& t : scratch_) {
    u -= t.prob;
    if (u <= 0.0) {
      state_ = t.target;
      return state_;
    }
  }
  state_ = scratch_.back().target;  // numeric tail
  return state_;
}

namespace {

/// Evaluate one sampled path against a bounded path formula.
bool samplePathSatisfies(PathSampler& sampler, const dtmc::Model& model,
                         const pctl::PathFormula& path) {
  using Kind = pctl::PathFormula::Kind;
  const dtmc::VarLayout& layout = sampler.layout();
  sampler.reset();

  switch (path.kind) {
    case Kind::kNext:
      sampler.step();
      return evalStateFormula(model, layout, sampler.state(), *path.lhs);
    case Kind::kFinally: {
      const std::uint64_t bound = *path.bound;
      if (evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
        return true;
      }
      for (std::uint64_t t = 0; t < bound; ++t) {
        sampler.step();
        if (evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
          return true;
        }
      }
      return false;
    }
    case Kind::kGlobally: {
      const std::uint64_t bound = *path.bound;
      if (!evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
        return false;
      }
      for (std::uint64_t t = 0; t < bound; ++t) {
        sampler.step();
        if (!evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
          return false;
        }
      }
      return true;
    }
    case Kind::kUntil: {
      const std::uint64_t bound = *path.bound;
      for (std::uint64_t t = 0; t <= bound; ++t) {
        if (evalStateFormula(model, layout, sampler.state(), *path.rhs)) {
          return true;
        }
        if (!evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
          return false;
        }
        if (t < bound) sampler.step();
      }
      return false;
    }
  }
  throw std::logic_error("unreachable path-formula kind");
}

void requireBounded(const pctl::PathFormula& path) {
  if (path.kind != pctl::PathFormula::Kind::kNext && !path.bound) {
    throw std::invalid_argument(
        "SMC can only estimate bounded path formulas");
  }
}

}  // namespace

SmcEstimate estimatePathProbability(const dtmc::Model& model,
                                    const pctl::PathFormula& path,
                                    const SmcOptions& options) {
  requireBounded(path);
  util::Stopwatch timer;
  PathSampler sampler(model, options.seed);
  SmcEstimate result;
  for (std::uint64_t i = 0; i < options.paths; ++i) {
    result.satisfied.add(samplePathSatisfies(sampler, model, path));
  }
  result.seconds = timer.elapsedSeconds();
  return result;
}

SmcEstimate estimateProperty(const dtmc::Model& model,
                             std::string_view propertyText,
                             const SmcOptions& options) {
  const pctl::Property property = pctl::parseProperty(propertyText);
  if (property.kind != pctl::Property::Kind::kProb) {
    throw std::invalid_argument("estimateProperty takes a P-property");
  }
  return estimatePathProbability(model, property.prob.path, options);
}

stats::RunningStats estimateInstantaneousReward(const dtmc::Model& model,
                                                std::uint64_t horizon,
                                                std::string_view rewardName,
                                                const SmcOptions& options) {
  PathSampler sampler(model, options.seed);
  stats::RunningStats stats;
  for (std::uint64_t i = 0; i < options.paths; ++i) {
    sampler.reset();
    for (std::uint64_t t = 0; t < horizon; ++t) sampler.step();
    stats.add(model.stateReward(sampler.state(), rewardName));
  }
  return stats;
}

SprtOutcome testProperty(const dtmc::Model& model,
                         std::string_view propertyText,
                         const SprtOptions& options) {
  const pctl::Property property = pctl::parseProperty(propertyText);
  if (property.kind != pctl::Property::Kind::kProb ||
      property.prob.isQuery) {
    throw std::invalid_argument(
        "testProperty needs a bounded-probability P-property (e.g. "
        "P>=0.9 [...])");
  }
  const double theta = property.prob.boundValue;
  const pctl::CmpOp op = property.prob.boundOp;
  if (op != pctl::CmpOp::kGe && op != pctl::CmpOp::kGt &&
      op != pctl::CmpOp::kLe && op != pctl::CmpOp::kLt) {
    throw std::invalid_argument("testProperty needs an inequality bound");
  }
  requireBounded(property.prob.path);

  if (theta <= 0.0 || theta >= 1.0) {
    throw std::invalid_argument("testProperty needs 0 < theta < 1");
  }
  // Shrink the indifference region when theta sits near a boundary so the
  // SPRT hypotheses stay inside (0, 1).
  const double delta =
      std::min({options.indifference, theta / 2.0, (1.0 - theta) / 2.0});
  stats::Sprt sprt(theta, delta, options.alpha, options.beta);
  PathSampler sampler(model, options.seed);
  SprtOutcome outcome;
  while (outcome.pathsUsed < options.maxPaths) {
    const bool sat =
        samplePathSatisfies(sampler, model, property.prob.path);
    ++outcome.pathsUsed;
    outcome.decision = sprt.add(sat);
    if (outcome.decision != stats::SprtDecision::kContinue) break;
  }
  const bool lowerBound = op == pctl::CmpOp::kGe || op == pctl::CmpOp::kGt;
  if (outcome.decision == stats::SprtDecision::kAcceptH1) {
    outcome.holds = lowerBound;  // P >= theta+delta accepted
  } else if (outcome.decision == stats::SprtDecision::kAcceptH0) {
    outcome.holds = !lowerBound;  // P <= theta-delta accepted
  }
  return outcome;
}

}  // namespace mimostat::smc
