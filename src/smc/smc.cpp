#include "smc/smc.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"
#include "pctl/parser.hpp"
#include "util/hash.hpp"

namespace mimostat::smc {

bool evalStateFormula(const dtmc::Model& model, const dtmc::VarLayout& layout,
                      const dtmc::State& state,
                      const pctl::StateFormula& formula) {
  using Kind = pctl::StateFormula::Kind;
  switch (formula.kind) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kAtom: {
      const auto varIdx = layout.tryIndexOf(formula.name);
      if (varIdx != dtmc::VarLayout::npos) return state[varIdx] != 0;
      return model.atom(state, formula.name);
    }
    case Kind::kVarCmp: {
      const auto varIdx = layout.tryIndexOf(formula.name);
      if (varIdx == dtmc::VarLayout::npos) {
        throw std::runtime_error("SMC: unknown state variable '" +
                                 formula.name + "'");
      }
      return pctl::evalCmp(formula.op, state[varIdx], formula.value);
    }
    case Kind::kNot:
      return !evalStateFormula(model, layout, state, *formula.lhs);
    case Kind::kAnd:
      return evalStateFormula(model, layout, state, *formula.lhs) &&
             evalStateFormula(model, layout, state, *formula.rhs);
    case Kind::kOr:
      return evalStateFormula(model, layout, state, *formula.lhs) ||
             evalStateFormula(model, layout, state, *formula.rhs);
  }
  throw std::logic_error("unreachable state-formula kind");
}

std::uint64_t deriveSeed(std::uint64_t seed, std::uint64_t stream) {
  std::uint64_t state = seed ^ util::mix64(stream + 0x9E3779B97F4A7C15ULL);
  return util::splitmix64(state);
}

PathSampler::PathSampler(const dtmc::Model& model, std::uint64_t seed)
    : model_(model), layout_(model.layout()), rng_(seed) {
  reset();
}

const dtmc::State& PathSampler::reset() {
  const std::vector<dtmc::State> initial = model_.initialStates();
  assert(!initial.empty());
  state_ = initial[rng_.nextBounded(initial.size())];
  return state_;
}

const dtmc::State& PathSampler::step() {
  scratch_.clear();
  model_.transitions(state_, scratch_);
  if (scratch_.empty()) return state_;  // transition-less state: absorbing
  const double mass = dtmc::normalizeTransitions(scratch_, 0.0);
  double u = rng_.nextDouble() * mass;
  for (const auto& t : scratch_) {
    u -= t.prob;
    if (u <= 0.0) {
      state_ = t.target;
      return state_;
    }
  }
  state_ = scratch_.back().target;  // numeric tail
  return state_;
}

namespace {

/// Evaluate one sampled path against a bounded path formula.
bool samplePathSatisfies(PathSampler& sampler, const dtmc::Model& model,
                         const pctl::PathFormula& path) {
  using Kind = pctl::PathFormula::Kind;
  const dtmc::VarLayout& layout = sampler.layout();
  sampler.reset();

  switch (path.kind) {
    case Kind::kNext:
      sampler.step();
      return evalStateFormula(model, layout, sampler.state(), *path.lhs);
    case Kind::kFinally: {
      const std::uint64_t bound = *path.bound;
      if (evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
        return true;
      }
      for (std::uint64_t t = 0; t < bound; ++t) {
        sampler.step();
        if (evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
          return true;
        }
      }
      return false;
    }
    case Kind::kGlobally: {
      const std::uint64_t bound = *path.bound;
      if (!evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
        return false;
      }
      for (std::uint64_t t = 0; t < bound; ++t) {
        sampler.step();
        if (!evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
          return false;
        }
      }
      return true;
    }
    case Kind::kUntil: {
      const std::uint64_t bound = *path.bound;
      for (std::uint64_t t = 0; t <= bound; ++t) {
        if (evalStateFormula(model, layout, sampler.state(), *path.rhs)) {
          return true;
        }
        if (!evalStateFormula(model, layout, sampler.state(), *path.lhs)) {
          return false;
        }
        if (t < bound) sampler.step();
      }
      return false;
    }
  }
  throw std::logic_error("unreachable path-formula kind");
}

void requireBounded(const pctl::PathFormula& path) {
  if (!pctl::isTimeBounded(path)) {
    throw std::invalid_argument(
        "SMC can only estimate bounded path formulas");
  }
}

/// Draw `options.paths` paths in chunks, each chunk from its own
/// counter-derived RNG stream, merging per-chunk accumulators in chunk-index
/// order. `perPath(sampler, acc)` evaluates one path. The accumulator needs
/// a default constructor and merge(); results are bit-identical for a fixed
/// seed regardless of how `runner` schedules the chunks.
template <typename Accumulator, typename PerPath>
Accumulator sampleChunked(const dtmc::Model& model, const SmcOptions& options,
                          const TaskRunner& runner, const PerPath& perPath) {
  const std::uint64_t chunkSize = std::max<std::uint64_t>(1, options.chunkPaths);
  const std::uint64_t numChunks = (options.paths + chunkSize - 1) / chunkSize;
  std::vector<Accumulator> partial(numChunks);

  std::vector<std::function<void()>> tasks;
  tasks.reserve(numChunks);
  for (std::uint64_t c = 0; c < numChunks; ++c) {
    const std::uint64_t count =
        std::min(chunkSize, options.paths - c * chunkSize);
    tasks.push_back([&model, &options, &partial, &perPath, c, count] {
      PathSampler sampler(model, deriveSeed(options.seed, c));
      // Accumulate locally and publish once: adjacent partial[] slots share
      // cache lines, and per-path writes from different workers would
      // ping-pong them.
      Accumulator acc;
      for (std::uint64_t i = 0; i < count; ++i) {
        perPath(sampler, acc);
      }
      partial[c] = acc;
    });
  }
  if (runner) {
    runner(std::move(tasks));
  } else {
    for (auto& task : tasks) task();
  }

  Accumulator merged;
  for (const Accumulator& p : partial) merged.merge(p);
  return merged;
}

}  // namespace

SmcEstimate estimatePathProbability(const dtmc::Model& model,
                                    const pctl::PathFormula& path,
                                    const SmcOptions& options,
                                    const TaskRunner& runner) {
  requireBounded(path);
  // Auto-parents to the caller's span on this thread (the engine's
  // per-property "engine.property" when invoked through the engine).
  obs::Span span("smc.sample");
  SmcEstimate result;
  result.satisfied = sampleChunked<stats::BernoulliEstimator>(
      model, options, runner,
      [&model, &path](PathSampler& sampler, stats::BernoulliEstimator& acc) {
        acc.add(samplePathSatisfies(sampler, model, path));
      });
  result.seconds = span.stopSeconds();
  return result;
}

SmcEstimate estimateProperty(const dtmc::Model& model,
                             std::string_view propertyText,
                             const SmcOptions& options,
                             const TaskRunner& runner) {
  const pctl::Property property = pctl::parseProperty(propertyText);
  if (property.kind != pctl::Property::Kind::kProb) {
    throw std::invalid_argument("estimateProperty takes a P-property");
  }
  return estimatePathProbability(model, property.prob.path, options, runner);
}

stats::RunningStats estimateInstantaneousReward(const dtmc::Model& model,
                                                std::uint64_t horizon,
                                                std::string_view rewardName,
                                                const SmcOptions& options,
                                                const TaskRunner& runner) {
  return sampleChunked<stats::RunningStats>(
      model, options, runner,
      [&model, horizon, rewardName](PathSampler& sampler,
                                    stats::RunningStats& acc) {
        sampler.reset();
        for (std::uint64_t t = 0; t < horizon; ++t) sampler.step();
        acc.add(model.stateReward(sampler.state(), rewardName));
      });
}

stats::RunningStats estimateCumulativeReward(const dtmc::Model& model,
                                             std::uint64_t horizon,
                                             std::string_view rewardName,
                                             const SmcOptions& options,
                                             const TaskRunner& runner) {
  return sampleChunked<stats::RunningStats>(
      model, options, runner,
      [&model, horizon, rewardName](PathSampler& sampler,
                                    stats::RunningStats& acc) {
        sampler.reset();
        double total = 0.0;
        // Rewards are collected in states s_0 .. s_{T-1}, mirroring the
        // exact checker's sum_{t=0}^{T-1} pi_t . r.
        for (std::uint64_t t = 0; t < horizon; ++t) {
          total += model.stateReward(sampler.state(), rewardName);
          sampler.step();
        }
        acc.add(total);
      });
}

SprtOutcome testPathProbability(const dtmc::Model& model,
                                const pctl::PathFormula& path, pctl::CmpOp op,
                                double theta, const SprtOptions& options) {
  if (op != pctl::CmpOp::kGe && op != pctl::CmpOp::kGt &&
      op != pctl::CmpOp::kLe && op != pctl::CmpOp::kLt) {
    throw std::invalid_argument("SPRT needs an inequality bound");
  }
  requireBounded(path);
  if (theta <= 0.0 || theta >= 1.0) {
    throw std::invalid_argument("SPRT needs 0 < theta < 1");
  }

  // Shrink the indifference region when theta sits near a boundary so the
  // SPRT hypotheses stay inside (0, 1).
  const double delta =
      std::min({options.indifference, theta / 2.0, (1.0 - theta) / 2.0});
  stats::Sprt sprt(theta, delta, options.alpha, options.beta);
  SprtOutcome outcome;
  outcome.indifference = delta;

  const std::uint64_t chunkSize = std::max<std::uint64_t>(1, options.chunkPaths);
  for (std::uint64_t c = 0; outcome.pathsUsed < options.maxPaths; ++c) {
    // One counter-derived stream per chunk: the observation sequence (and
    // hence the decision) is a pure function of the seed.
    PathSampler sampler(model, deriveSeed(options.seed, c));
    for (std::uint64_t i = 0;
         i < chunkSize && outcome.pathsUsed < options.maxPaths; ++i) {
      const bool sat = samplePathSatisfies(sampler, model, path);
      ++outcome.pathsUsed;
      outcome.observed.add(sat);
      outcome.decision = sprt.add(sat);
      if (outcome.decision != stats::SprtDecision::kContinue) break;
    }
    if (outcome.decision != stats::SprtDecision::kContinue) break;
  }

  const bool lowerBound = op == pctl::CmpOp::kGe || op == pctl::CmpOp::kGt;
  if (outcome.decision == stats::SprtDecision::kAcceptH1) {
    outcome.holds = lowerBound;  // P >= theta+delta accepted
  } else if (outcome.decision == stats::SprtDecision::kAcceptH0) {
    outcome.holds = !lowerBound;  // P <= theta-delta accepted
  }
  return outcome;
}

SprtOutcome testProperty(const dtmc::Model& model,
                         std::string_view propertyText,
                         const SprtOptions& options) {
  const pctl::Property property = pctl::parseProperty(propertyText);
  if (property.kind != pctl::Property::Kind::kProb ||
      property.prob.isQuery) {
    throw std::invalid_argument(
        "testProperty needs a bounded-probability P-property (e.g. "
        "P>=0.9 [...])");
  }
  return testPathProbability(model, property.prob.path,
                             property.prob.boundOp, property.prob.boundValue,
                             options);
}

}  // namespace mimostat::smc
