#include "comm/rayleigh.hpp"

#include <cmath>

namespace mimostat::comm {

RayleighFading::RayleighFading(const UniformQuantizer& quantizer)
    : quantizer_(quantizer),
      probs_(quantizer_.cellProbabilities(0.0, perDimensionSigma())) {}

double RayleighFading::perDimensionSigma() { return std::sqrt(0.5); }

double RayleighFading::sampleAnalog(util::Xoshiro256& rng) const {
  return perDimensionSigma() * rng.nextGaussian();
}

int RayleighFading::sampleCell(util::Xoshiro256& rng) const {
  return quantizer_.index(sampleAnalog(rng));
}

}  // namespace mimostat::comm
