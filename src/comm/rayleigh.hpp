// Flat Rayleigh fading (paper §IV): channel coefficient h ~ CN(0,1), i.e.
// real and imaginary parts are independent N(0, 1/2). For the DTMC models
// each real part is quantized; this class provides the exact cell
// probabilities of the fading distribution and a sampler for the
// Monte-Carlo baseline.
#pragma once

#include <vector>

#include "comm/quantizer.hpp"
#include "util/rng.hpp"

namespace mimostat::comm {

class RayleighFading {
 public:
  /// @param quantizer quantizer applied to each real-valued part of h
  explicit RayleighFading(const UniformQuantizer& quantizer);

  [[nodiscard]] const UniformQuantizer& quantizer() const { return quantizer_; }

  /// Per-real-dimension standard deviation (sqrt(1/2)).
  [[nodiscard]] static double perDimensionSigma();

  /// P(quantized h-part = cell) for all cells.
  [[nodiscard]] const std::vector<double>& cellProbabilities() const {
    return probs_;
  }

  /// Sample one analog h-part ~ N(0, 1/2).
  [[nodiscard]] double sampleAnalog(util::Xoshiro256& rng) const;

  /// Sample one quantized h-part cell index.
  [[nodiscard]] int sampleCell(util::Xoshiro256& rng) const;

 private:
  UniformQuantizer quantizer_;
  std::vector<double> probs_;
};

}  // namespace mimostat::comm
