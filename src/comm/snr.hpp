// SNR conventions (documented in DESIGN.md §5).
//
//   sigma^2 = signalPower / 10^(snrDb/10)
//
// For the 1+D ISI channel with BPSK (+-1) inputs the transmitted level is
// a[n]+a[n-1] in {-2,0,+2} with E[s^2] = 2. For the MIMO system the received
// signal power per complex dimension is normalised to 1 (E|h|^2 = 1 Rayleigh,
// |s|=1 BPSK) and noise is split evenly across real/imaginary parts.
#pragma once

namespace mimostat::comm {

/// Linear power ratio for an SNR in dB.
[[nodiscard]] double snrDbToLinear(double snrDb);

/// Noise standard deviation so that signalPower / sigma^2 equals the SNR.
[[nodiscard]] double noiseSigma(double snrDb, double signalPower);

/// Per-real-dimension noise sigma for a complex-baseband system with unit
/// received signal power: sigma_dim = sqrt(N0/2), N0 = 10^(-snrDb/10).
[[nodiscard]] double noiseSigmaPerDimension(double snrDb);

}  // namespace mimostat::comm
