// Uniform scalar quantizer with exact Gaussian cell probabilities.
//
// This is the bridge between the analog world and the DTMC: the probability
// that a received sample with mean `signal` under AWGN falls into cell k
// labels the DTMC transition (paper §III "DTMC modeling").
#pragma once

#include <cstdint>
#include <vector>

namespace mimostat::comm {

/// Uniform quantizer over [-range, range] with `levels` cells. The outer
/// cells extend to +-infinity so cell probabilities always sum to exactly 1.
/// Reconstruction values are cell midpoints (outer cells use the midpoint of
/// their finite edge and the range bound).
class UniformQuantizer {
 public:
  UniformQuantizer(int levels, double range);

  [[nodiscard]] int levels() const { return levels_; }
  [[nodiscard]] double range() const { return range_; }

  /// Cell index of a real sample (0 .. levels-1).
  [[nodiscard]] int index(double x) const;

  /// Reconstruction value of a cell.
  [[nodiscard]] double value(int cell) const;

  /// Lower threshold of a cell (-inf for cell 0).
  [[nodiscard]] double lowerThreshold(int cell) const;
  /// Upper threshold of a cell (+inf for the last cell).
  [[nodiscard]] double upperThreshold(int cell) const;

  /// P(index(signal + N(0, sigma^2)) = k) for all k; sums to 1 exactly
  /// (up to floating-point addition) by construction.
  [[nodiscard]] std::vector<double> cellProbabilities(double signal,
                                                      double sigma) const;

 private:
  int levels_;
  double range_;
  double step_;
};

}  // namespace mimostat::comm
