#include "comm/snr.hpp"

#include <cassert>
#include <cmath>

namespace mimostat::comm {

double snrDbToLinear(double snrDb) { return std::pow(10.0, snrDb / 10.0); }

double noiseSigma(double snrDb, double signalPower) {
  assert(signalPower > 0.0);
  return std::sqrt(signalPower / snrDbToLinear(snrDb));
}

double noiseSigmaPerDimension(double snrDb) {
  const double n0 = 1.0 / snrDbToLinear(snrDb);
  return std::sqrt(n0 / 2.0);
}

}  // namespace mimostat::comm
