#include "comm/channel.hpp"

#include <cassert>

#include "comm/snr.hpp"

namespace mimostat::comm {

IsiChannel::IsiChannel(std::vector<double> taps) : taps_(std::move(taps)) {
  assert(!taps_.empty());
}

double IsiChannel::level(const std::vector<int>& bits) const {
  assert(bits.size() == taps_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < taps_.size(); ++i) {
    acc += taps_[i] * bpsk(bits[i]);
  }
  return acc;
}

double IsiChannel::level2(int current, int previous) const {
  assert(taps_.size() == 2);
  return taps_[0] * bpsk(current) + taps_[1] * bpsk(previous);
}

double IsiChannel::signalPower() const {
  // Independent +-1 symbols: E[s^2] = sum taps^2.
  double acc = 0.0;
  for (const double t : taps_) acc += t * t;
  return acc;
}

DiscreteIsiChannel::DiscreteIsiChannel(const IsiChannel& channel,
                                       const UniformQuantizer& quantizer,
                                       double snrDb)
    : channel_(channel),
      quantizer_(quantizer),
      sigma_(noiseSigma(snrDb, channel.signalPower())) {
  assert(channel_.memory() == 1 && "DiscreteIsiChannel models memory-1 ISI");
  for (int current = 0; current < 2; ++current) {
    for (int previous = 0; previous < 2; ++previous) {
      probs_[pairIndex(current, previous)] = quantizer_.cellProbabilities(
          channel_.level2(current, previous), sigma_);
    }
  }
}

int DiscreteIsiChannel::sample(int current, int previous,
                               util::Xoshiro256& rng) const {
  const double analog =
      channel_.level2(current, previous) + sigma_ * rng.nextGaussian();
  return quantizer_.index(analog);
}

}  // namespace mimostat::comm
