#include "comm/quantizer.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "stats/gaussian.hpp"

namespace mimostat::comm {

UniformQuantizer::UniformQuantizer(int levels, double range)
    : levels_(levels), range_(range), step_(2.0 * range / levels) {
  assert(levels >= 2);
  assert(range > 0.0);
}

int UniformQuantizer::index(double x) const {
  if (x <= -range_) return 0;
  if (x >= range_) return levels_ - 1;
  const int cell = static_cast<int>(std::floor((x + range_) / step_));
  if (cell < 0) return 0;
  if (cell >= levels_) return levels_ - 1;
  return cell;
}

double UniformQuantizer::value(int cell) const {
  assert(cell >= 0 && cell < levels_);
  return -range_ + (static_cast<double>(cell) + 0.5) * step_;
}

double UniformQuantizer::lowerThreshold(int cell) const {
  assert(cell >= 0 && cell < levels_);
  if (cell == 0) return -std::numeric_limits<double>::infinity();
  return -range_ + static_cast<double>(cell) * step_;
}

double UniformQuantizer::upperThreshold(int cell) const {
  assert(cell >= 0 && cell < levels_);
  if (cell == levels_ - 1) return std::numeric_limits<double>::infinity();
  return -range_ + static_cast<double>(cell + 1) * step_;
}

std::vector<double> UniformQuantizer::cellProbabilities(double signal,
                                                        double sigma) const {
  std::vector<double> probs(levels_);
  for (int cell = 0; cell < levels_; ++cell) {
    const double lo = lowerThreshold(cell);
    const double hi = upperThreshold(cell);
    if (std::isinf(lo) && std::isinf(hi)) {
      probs[cell] = 1.0;
    } else if (std::isinf(lo)) {
      probs[cell] = stats::normalCdf(hi, signal, sigma);
    } else if (std::isinf(hi)) {
      probs[cell] = stats::normalTail((lo - signal) / sigma);
    } else {
      probs[cell] = stats::normalIntervalProb(lo, hi, signal, sigma);
    }
  }
  return probs;
}

}  // namespace mimostat::comm
