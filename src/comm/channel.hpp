// BPSK signaling and the 1+D intersymbol-interference channel used by the
// paper's Viterbi case study (transmitter output = current bit + previous
// bit, i.e. memory m = 1), plus a discretised channel that combines the ISI
// levels, AWGN and the quantizer into exact per-level transition
// probabilities.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "comm/quantizer.hpp"
#include "util/rng.hpp"

namespace mimostat::comm {

/// BPSK mapping: bit 0 -> -1, bit 1 -> +1.
[[nodiscard]] constexpr double bpsk(int bit) { return bit ? 1.0 : -1.0; }

/// FIR intersymbol-interference channel s[n] = sum_i taps[i] * a[n-i] where
/// a are BPSK symbols. taps = {1, 1} gives the paper's memory-1 adder.
class IsiChannel {
 public:
  explicit IsiChannel(std::vector<double> taps);

  [[nodiscard]] std::size_t memory() const { return taps_.size() - 1; }
  [[nodiscard]] const std::vector<double>& taps() const { return taps_; }

  /// Noiseless output level for a window of bits, bits[0] = newest.
  [[nodiscard]] double level(const std::vector<int>& bits) const;

  /// Noiseless output level for memory-1 channels (the common case).
  [[nodiscard]] double level2(int current, int previous) const;

  /// E[s^2] under i.i.d. uniform bits (signal power for SNR conversion).
  [[nodiscard]] double signalPower() const;

 private:
  std::vector<double> taps_;
};

/// Discrete channel: for each (current bit, previous bit) pair of a
/// memory-1 ISI channel, the probability of every quantizer output cell.
/// These are exactly the paper's DTMC transition labels.
class DiscreteIsiChannel {
 public:
  DiscreteIsiChannel(const IsiChannel& channel, const UniformQuantizer& quantizer,
                     double snrDb);

  [[nodiscard]] const UniformQuantizer& quantizer() const { return quantizer_; }
  [[nodiscard]] double sigma() const { return sigma_; }

  /// P(q = cell | current bit, previous bit).
  [[nodiscard]] double cellProb(int current, int previous, int cell) const {
    return probs_[pairIndex(current, previous)][cell];
  }

  /// Full distribution for a bit pair.
  [[nodiscard]] const std::vector<double>& distribution(int current,
                                                        int previous) const {
    return probs_[pairIndex(current, previous)];
  }

  /// Sample one quantized output (for the Monte-Carlo baseline); uses the
  /// *analog* path (level + Gaussian noise -> quantize) so the simulator and
  /// the DTMC share only the mathematical definition, not the tables.
  [[nodiscard]] int sample(int current, int previous, util::Xoshiro256& rng) const;

 private:
  static std::size_t pairIndex(int current, int previous) {
    return static_cast<std::size_t>(current) * 2 +
           static_cast<std::size_t>(previous);
  }

  IsiChannel channel_;
  UniformQuantizer quantizer_;
  double sigma_;
  std::array<std::vector<double>, 4> probs_;
};

}  // namespace mimostat::comm
