// Maximum-likelihood MIMO detection (paper §IV-B, after Han/Erdogan/Arslan).
//
// For an Nt=1 BPSK transmission over Nr receive antennas with flat Rayleigh
// fading, the complex system y_j = h_j s + n_j splits into 2*Nr independent
// real "metric blocks" (real and imaginary part per antenna):
//
//   x_hat = argmin_{s in {0,1}} sum_b | y_b - h_b * bpsk(s) |     (Eq. 14/15)
//
// The detector is implemented twice: an analog (double) datapath used by the
// Monte-Carlo baseline and a quantized datapath operating on quantizer cell
// indices — the latter is the function embedded in the DTMC model, so model
// and simulation share the decision logic.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/quantizer.hpp"

namespace mimostat::mimo {

/// Case-study parameters. Defaults are the 1x2 configuration (Table II/V);
/// see mimo1x4Params() / mimo2x2Params() for the other configurations.
struct MimoParams {
  int nr = 2;            ///< receive antennas
  int nt = 1;            ///< transmit antennas (BPSK per antenna)
  double snrDb = 8.0;    ///< SNR per receive antenna
  int hLevels = 3;       ///< quantizer cells per channel-coefficient part
  double hRange = 1.5;   ///< channel quantizer full-scale
  int yLevels = 6;       ///< quantizer cells per received-sample part
  double yRange = 3.0;   ///< sample quantizer full-scale

  /// Metric blocks (paper Eq. 15): one per real dimension of y — 2*Nr.
  [[nodiscard]] int numBlocks() const { return 2 * nr; }
  /// Real-valued channel coefficients: nt per metric block.
  [[nodiscard]] int numChannelParts() const { return 2 * nr * nt; }
  /// ML hypotheses: 2^nt BPSK vectors.
  [[nodiscard]] int numHypotheses() const { return 1 << nt; }
};

/// The paper's 1x2 detector configuration (SNR 8 dB).
[[nodiscard]] MimoParams mimo1x2Params();
/// The paper's 1x4 detector configuration (SNR 12 dB, coarser quantizers).
[[nodiscard]] MimoParams mimo1x4Params();
/// The 2x2 system of paper Eq. 14-15 (two BPSK transmit streams).
[[nodiscard]] MimoParams mimo2x2Params();

class MlDetector {
 public:
  /// Upper bound on Nr supported by the permutation-stable quantized
  /// metric accumulator.
  static constexpr int kMaxBlocks = 16;

  explicit MlDetector(const MimoParams& params);

  [[nodiscard]] const MimoParams& params() const { return params_; }
  [[nodiscard]] const comm::UniformQuantizer& hQuantizer() const {
    return hQuant_;
  }
  [[nodiscard]] const comm::UniformQuantizer& yQuantizer() const {
    return yQuant_;
  }

  /// ML decision from analog per-block observations (paper Eq. 14/15):
  /// returns the index of the most likely transmitted bit vector (bit k =
  /// stream k's bit). `y` has numBlocks() entries; `h` has
  /// numChannelParts() entries, h[b*nt + k] being stream k's coefficient in
  /// metric block b. Ties decide the smallest index.
  [[nodiscard]] int detectAnalog(const std::vector<double>& y,
                                 const std::vector<double>& h) const;

  /// ML decision from quantizer cell indices (reconstruction-value metric).
  /// Accumulation order is canonicalised so the decision is invariant under
  /// metric-block permutation — required by the symmetry reduction.
  [[nodiscard]] int detectQuantized(const std::vector<int>& yCells,
                                    const std::vector<int>& hCells) const;

 private:
  MimoParams params_;
  comm::UniformQuantizer hQuant_;
  comm::UniformQuantizer yQuant_;
};

}  // namespace mimostat::mimo
