// DTMC model of the ML MIMO detector (paper §IV-B).
//
// The detector's RTL is a three-phase pipeline, which is why the paper's
// reachability fixpoint for this model is tiny (RI=3):
//
//   phase 0 (draw):    sample the data bit x and the quantized channel
//                      coefficients h_b (Rayleigh cell probabilities);
//   phase 1 (receive): sample the quantized observations y_b given (h_b, x)
//                      (Gaussian cell probabilities, mean h_b * bpsk(x));
//   phase 2 (detect):  combinational ML decision; flag = (x_hat != x);
//                      registers reset and the pipeline restarts.
//
// `flag` is sticky between compute phases, so R=? [ I=T ] equals the BER
// for every T >= 2 regardless of T mod 3.
//
// The 2*Nr metric blocks (h_b, y_b) are i.i.d. given x and enter the
// decision only through the symmetric metric sum, so the block-permutation
// group is a symmetry (Table II); symmetryBlocks() exposes the block
// structure for lump::SymmetryReducedModel.
#pragma once

#include <array>

#include "dtmc/model.hpp"
#include "lump/symmetry.hpp"
#include "mimo/detector.hpp"

namespace mimostat::mimo {

class MimoDetectorModel : public dtmc::Model {
 public:
  explicit MimoDetectorModel(const MimoParams& params);

  [[nodiscard]] std::vector<dtmc::VarSpec> variables() const override;
  [[nodiscard]] std::vector<dtmc::State> initialStates() const override;
  void transitions(const dtmc::State& s,
                   std::vector<dtmc::Transition>& out) const override;
  /// Atom "error" = (flag == 1).
  [[nodiscard]] bool atom(const dtmc::State& s,
                          std::string_view name) const override;
  /// Default reward = flag.
  [[nodiscard]] double stateReward(const dtmc::State& s,
                                   std::string_view name) const override;

  [[nodiscard]] const MimoParams& params() const { return detector_.params(); }
  [[nodiscard]] const MlDetector& detector() const { return detector_; }

  /// Variable blocks (h_b, y_b) for symmetry reduction.
  [[nodiscard]] lump::BlockStructure symmetryBlocks() const;

  [[nodiscard]] std::size_t idxPhase() const { return 0; }
  [[nodiscard]] std::size_t idxX() const { return 1; }
  [[nodiscard]] std::size_t idxH(int block) const {
    return 2 + static_cast<std::size_t>(block);
  }
  [[nodiscard]] std::size_t idxY(int block) const {
    return 2 + static_cast<std::size_t>(params().numBlocks()) +
           static_cast<std::size_t>(block);
  }
  [[nodiscard]] std::size_t idxFlag() const {
    return 2 + 2 * static_cast<std::size_t>(params().numBlocks());
  }

 private:
  void enumerateProduct(const dtmc::State& base, int blockIdx,
                        bool assignChannel, double probSoFar,
                        dtmc::State& current,
                        std::vector<dtmc::Transition>& out) const;

  MlDetector detector_;
  std::vector<double> hCellProbs_;
  /// yCellProbs_[hCell][x] = distribution over y cells.
  std::vector<std::array<std::vector<double>, 2>> yCellProbs_;
};

}  // namespace mimostat::mimo
