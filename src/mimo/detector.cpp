#include "mimo/detector.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <limits>

#include "comm/channel.hpp"

namespace mimostat::mimo {

MimoParams mimo1x2Params() { return MimoParams{}; }

MimoParams mimo2x2Params() {
  MimoParams p;
  p.nr = 2;
  p.nt = 2;
  p.snrDb = 10.0;
  p.hLevels = 3;
  p.hRange = 1.5;
  p.yLevels = 6;
  p.yRange = 3.0;
  return p;
}

MimoParams mimo1x4Params() {
  MimoParams p;
  p.nr = 4;
  // The paper quotes 12 dB but does not pin down its noise normalization;
  // under our convention (DESIGN.md §5: per-dimension sigma^2 = N0/2 with
  // unit per-antenna signal power) 22 dB reproduces the paper's operating
  // point: a BER ~1e-5, low enough that a 1e5-step simulation typically
  // observes zero errors while the model checker computes it exactly.
  p.snrDb = 22.0;
  p.hLevels = 2;
  p.hRange = 1.2;
  p.yLevels = 2;
  p.yRange = 1.2;
  return p;
}

MlDetector::MlDetector(const MimoParams& params)
    : params_(params),
      hQuant_(params.hLevels, params.hRange),
      yQuant_(params.yLevels, params.yRange) {
  assert(params_.nr >= 1);
}

namespace {

/// Per-block residual |y_b - sum_k h_{b,k} bpsk(s_k)| for hypothesis s.
double blockResidual(double y, const double* h, int nt, int hypothesis) {
  double expected = 0.0;
  for (int k = 0; k < nt; ++k) {
    expected += h[k] * comm::bpsk((hypothesis >> k) & 1);
  }
  return std::fabs(y - expected);
}

}  // namespace

int MlDetector::detectAnalog(const std::vector<double>& y,
                             const std::vector<double>& h) const {
  assert(y.size() == static_cast<std::size_t>(params_.numBlocks()));
  assert(h.size() == static_cast<std::size_t>(params_.numChannelParts()));
  const int nt = params_.nt;
  int best = 0;
  double bestMetric = std::numeric_limits<double>::infinity();
  for (int s = 0; s < params_.numHypotheses(); ++s) {
    double metric = 0.0;
    for (std::size_t b = 0; b < y.size(); ++b) {
      metric += blockResidual(y[b], &h[b * static_cast<std::size_t>(nt)], nt, s);
    }
    if (metric < bestMetric) {  // ties keep the smaller hypothesis index
      bestMetric = metric;
      best = s;
    }
  }
  return best;
}

int MlDetector::detectQuantized(const std::vector<int>& yCells,
                                const std::vector<int>& hCells) const {
  assert(yCells.size() == static_cast<std::size_t>(params_.numBlocks()));
  assert(hCells.size() == static_cast<std::size_t>(params_.numChannelParts()));
  const int nt = params_.nt;
  const auto blocks = yCells.size();

  // Quantized metrics frequently tie in exact arithmetic; floating-point
  // addition is not associative, so a naive block-order sum would break the
  // block-permutation symmetry the DTMC reduction relies on. Accumulate in
  // a canonical block order (sorted by the block's cell tuple) so the
  // decision is a function of the block multiset only.
  std::array<std::size_t, 2 * kMaxBlocks> order;
  assert(blocks <= order.size());
  for (std::size_t b = 0; b < blocks; ++b) order[b] = b;
  const auto blockLess = [&](std::size_t a, std::size_t b) {
    for (int k = 0; k < nt; ++k) {
      const int ha = hCells[a * static_cast<std::size_t>(nt) +
                            static_cast<std::size_t>(k)];
      const int hb = hCells[b * static_cast<std::size_t>(nt) +
                            static_cast<std::size_t>(k)];
      if (ha != hb) return ha < hb;
    }
    return yCells[a] < yCells[b];
  };
  std::sort(order.begin(), order.begin() + blocks, blockLess);

  int best = 0;
  double bestMetric = std::numeric_limits<double>::infinity();
  std::array<double, 2 * kMaxBlocks> hv;
  for (int s = 0; s < params_.numHypotheses(); ++s) {
    double metric = 0.0;
    for (std::size_t i = 0; i < blocks; ++i) {
      const std::size_t b = order[i];
      const double yv = yQuant_.value(yCells[b]);
      for (int k = 0; k < nt; ++k) {
        hv[static_cast<std::size_t>(k)] = hQuant_.value(
            hCells[b * static_cast<std::size_t>(nt) +
                   static_cast<std::size_t>(k)]);
      }
      metric += blockResidual(yv, hv.data(), nt, s);
    }
    if (metric < bestMetric) {
      bestMetric = metric;
      best = s;
    }
  }
  return best;
}

}  // namespace mimostat::mimo
