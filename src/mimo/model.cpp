#include "mimo/model.hpp"

#include <cassert>
#include <cmath>

#include "comm/channel.hpp"
#include "comm/rayleigh.hpp"
#include "comm/snr.hpp"
#include "stats/gaussian.hpp"

namespace mimostat::mimo {

namespace {

/// P(y-cell | h in h-cell, x) by composite-Simpson integration of the
/// Gaussian mixture over the h-cell:
///   (1 / P(h-cell)) * Int_cell phi(h; 0, sigma_h) * P(y-cell | mean h*s) dh.
/// This is the exact conditional law of the system the simulator runs
/// (analog fading quantized at the receiver), not a cell-midpoint
/// approximation — so the DTMC and the Monte-Carlo baseline agree in
/// distribution, not just approximately.
std::vector<double> conditionalYCellProbs(const comm::UniformQuantizer& hQuant,
                                          int hCell,
                                          const comm::UniformQuantizer& yQuant,
                                          double bpskSymbol, double noiseSigma,
                                          double hCellMass) {
  const double hSigma = comm::RayleighFading::perDimensionSigma();
  double lo = hQuant.lowerThreshold(hCell);
  double hi = hQuant.upperThreshold(hCell);
  // Clip the unbounded outer cells where the fading density is negligible.
  const double clip = 9.0 * hSigma;
  if (std::isinf(lo)) lo = -clip;
  if (std::isinf(hi)) hi = clip;

  constexpr int kIntervals = 512;  // even; Simpson error ~ (width/N)^4
  const double width = hi - lo;
  const double step = width / kIntervals;

  std::vector<double> probs(static_cast<std::size_t>(yQuant.levels()), 0.0);
  for (int i = 0; i <= kIntervals; ++i) {
    const double h = lo + step * i;
    const double weight = (i == 0 || i == kIntervals) ? 1.0
                          : (i % 2 == 1)              ? 4.0
                                                      : 2.0;
    const double density = stats::normalPdf(h / hSigma) / hSigma;
    const auto cells = yQuant.cellProbabilities(h * bpskSymbol, noiseSigma);
    for (int yc = 0; yc < yQuant.levels(); ++yc) {
      probs[static_cast<std::size_t>(yc)] +=
          weight * density * cells[static_cast<std::size_t>(yc)];
    }
  }
  const double scale = step / 3.0 / hCellMass;
  double total = 0.0;
  for (double& p : probs) {
    p *= scale;
    total += p;
  }
  // Remove the residual quadrature error so the DTMC rows sum to exactly 1.
  assert(std::fabs(total - 1.0) < 1e-6);
  for (double& p : probs) p /= total;
  return probs;
}

}  // namespace

MimoDetectorModel::MimoDetectorModel(const MimoParams& params)
    : detector_(params) {
  // The DTMC model covers the paper's evaluated configurations (Nt = 1);
  // the detector/simulator additionally support the 2x2 system of Eq. 14.
  assert(params.nt == 1 && "MimoDetectorModel models Nt=1 systems");
  const comm::RayleighFading fading(detector_.hQuantizer());
  hCellProbs_ = fading.cellProbabilities();

  const double sigma = comm::noiseSigmaPerDimension(params.snrDb);
  yCellProbs_.resize(static_cast<std::size_t>(params.hLevels));
  for (int hc = 0; hc < params.hLevels; ++hc) {
    for (int x = 0; x < 2; ++x) {
      yCellProbs_[static_cast<std::size_t>(hc)][static_cast<std::size_t>(x)] =
          conditionalYCellProbs(detector_.hQuantizer(), hc,
                                detector_.yQuantizer(), comm::bpsk(x), sigma,
                                hCellProbs_[static_cast<std::size_t>(hc)]);
    }
  }
}

std::vector<dtmc::VarSpec> MimoDetectorModel::variables() const {
  const MimoParams& p = params();
  std::vector<dtmc::VarSpec> vars;
  vars.push_back({"phase", 0, 2});
  vars.push_back({"x", 0, 1});
  for (int b = 0; b < p.numBlocks(); ++b) {
    vars.push_back({"h" + std::to_string(b), 0, p.hLevels - 1});
  }
  for (int b = 0; b < p.numBlocks(); ++b) {
    vars.push_back({"y" + std::to_string(b), 0, p.yLevels - 1});
  }
  vars.push_back({"flag", 0, 1});
  return vars;
}

std::vector<dtmc::State> MimoDetectorModel::initialStates() const {
  return {dtmc::State(variables().size(), 0)};
}

void MimoDetectorModel::enumerateProduct(const dtmc::State& base, int blockIdx,
                                         bool assignChannel, double probSoFar,
                                         dtmc::State& current,
                                         std::vector<dtmc::Transition>& out) const {
  const MimoParams& p = params();
  if (blockIdx == p.numBlocks()) {
    out.push_back({probSoFar, current});
    return;
  }
  if (assignChannel) {
    for (int hc = 0; hc < p.hLevels; ++hc) {
      const double prob = hCellProbs_[static_cast<std::size_t>(hc)];
      if (prob <= 0.0) continue;
      current[idxH(blockIdx)] = hc;
      enumerateProduct(base, blockIdx + 1, assignChannel, probSoFar * prob,
                       current, out);
    }
    current[idxH(blockIdx)] = base[idxH(blockIdx)];
  } else {
    const int hc = current[idxH(blockIdx)];
    const int x = current[idxX()];
    const auto& dist = yCellProbs_[static_cast<std::size_t>(hc)]
                                  [static_cast<std::size_t>(x)];
    for (int yc = 0; yc < p.yLevels; ++yc) {
      const double prob = dist[static_cast<std::size_t>(yc)];
      if (prob <= 0.0) continue;
      current[idxY(blockIdx)] = yc;
      enumerateProduct(base, blockIdx + 1, assignChannel, probSoFar * prob,
                       current, out);
    }
    current[idxY(blockIdx)] = base[idxY(blockIdx)];
  }
}

void MimoDetectorModel::transitions(const dtmc::State& s,
                                    std::vector<dtmc::Transition>& out) const {
  const MimoParams& p = params();
  const int phase = s[idxPhase()];

  if (phase == 0) {
    // Draw x and all channel cells; observations reset to cell 0 until the
    // receive phase fills them in.
    dtmc::State next(s);
    next[idxPhase()] = 1;
    for (int b = 0; b < p.numBlocks(); ++b) next[idxY(b)] = 0;
    for (int x = 0; x < 2; ++x) {
      next[idxX()] = x;
      dtmc::State current(next);
      enumerateProduct(next, 0, /*assignChannel=*/true, 0.5, current, out);
    }
  } else if (phase == 1) {
    // Draw all observation cells conditioned on (h, x).
    const std::size_t start = out.size();
    dtmc::State next(s);
    next[idxPhase()] = 2;
    dtmc::State current(next);
    enumerateProduct(next, 0, /*assignChannel=*/false, 1.0, current, out);
    // The ML decision is combinational: apply it to every emitted target.
    std::vector<int> yCells(static_cast<std::size_t>(p.numBlocks()));
    std::vector<int> hCells(static_cast<std::size_t>(p.numBlocks()));
    for (std::size_t i = start; i < out.size(); ++i) {
      auto& t = out[i];
      for (int b = 0; b < p.numBlocks(); ++b) {
        yCells[static_cast<std::size_t>(b)] = t.target[idxY(b)];
        hCells[static_cast<std::size_t>(b)] = t.target[idxH(b)];
      }
      const int detected = detector_.detectQuantized(yCells, hCells);
      t.target[idxFlag()] = (detected != t.target[idxX()]) ? 1 : 0;
    }
  } else {
    // Detect phase: registers reset, pipeline restarts; flag is sticky.
    dtmc::State next(s);
    next[idxPhase()] = 0;
    next[idxX()] = 0;
    for (int b = 0; b < p.numBlocks(); ++b) {
      next[idxH(b)] = 0;
      next[idxY(b)] = 0;
    }
    out.push_back({1.0, std::move(next)});
  }
}

bool MimoDetectorModel::atom(const dtmc::State& s, std::string_view name) const {
  if (name == "error") return s[idxFlag()] == 1;
  return false;
}

double MimoDetectorModel::stateReward(const dtmc::State& s,
                                      std::string_view name) const {
  if (name.empty() || name == "default" || name == "flag") {
    return static_cast<double>(s[idxFlag()]);
  }
  return 0.0;
}

lump::BlockStructure MimoDetectorModel::symmetryBlocks() const {
  lump::BlockStructure blocks;
  for (int b = 0; b < params().numBlocks(); ++b) {
    blocks.push_back({idxH(b), idxY(b)});
  }
  return blocks;
}

}  // namespace mimostat::mimo
