#include "mimo/sim.hpp"

#include <bit>

#include "comm/channel.hpp"
#include "comm/rayleigh.hpp"
#include "comm/snr.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace mimostat::mimo {

namespace {

/// Run `trials` independent transmissions of an Nt-stream BPSK vector and
/// count per-bit errors through the supplied detector function, which maps
/// (y parts, h parts) to a hypothesis index.
template <typename DetectFn>
MimoSimulationResult runTrials(const MimoParams& params, std::uint64_t trials,
                               std::uint64_t seed, DetectFn&& detect) {
  obs::Span span("mimo.sim");
  util::Xoshiro256 rng(seed);
  const double hSigma = comm::RayleighFading::perDimensionSigma();
  const double nSigma = comm::noiseSigmaPerDimension(params.snrDb);
  const auto blocks = static_cast<std::size_t>(params.numBlocks());
  const auto nt = static_cast<std::size_t>(params.nt);

  std::vector<double> h(blocks * nt);
  std::vector<double> y(blocks);

  MimoSimulationResult result;
  for (std::uint64_t t = 0; t < trials; ++t) {
    const int x = static_cast<int>(
        rng.nextBounded(static_cast<std::uint64_t>(params.numHypotheses())));
    for (std::size_t b = 0; b < blocks; ++b) {
      double signal = 0.0;
      for (std::size_t k = 0; k < nt; ++k) {
        h[b * nt + k] = hSigma * rng.nextGaussian();
        signal += h[b * nt + k] * comm::bpsk((x >> k) & 1);
      }
      y[b] = signal + nSigma * rng.nextGaussian();
    }
    const int detected = detect(y, h);
    // Count per-bit errors so the estimate is a BER for any Nt.
    const auto wrongBits = static_cast<unsigned>(detected ^ x);
    for (int k = 0; k < params.nt; ++k) {
      result.bitErrors.add(((wrongBits >> k) & 1u) != 0);
    }
  }
  result.seconds = span.stopSeconds();
  return result;
}

}  // namespace

MimoSimulationResult simulateQuantized(const MimoParams& params,
                                       std::uint64_t trials,
                                       std::uint64_t seed) {
  const MlDetector detector(params);
  const auto blocks = static_cast<std::size_t>(params.numBlocks());
  const auto parts = static_cast<std::size_t>(params.numChannelParts());
  std::vector<int> yCells(blocks);
  std::vector<int> hCells(parts);
  return runTrials(params, trials, seed,
                   [&](const std::vector<double>& y, const std::vector<double>& h) {
                     for (std::size_t b = 0; b < blocks; ++b) {
                       yCells[b] = detector.yQuantizer().index(y[b]);
                     }
                     for (std::size_t i = 0; i < parts; ++i) {
                       hCells[i] = detector.hQuantizer().index(h[i]);
                     }
                     return detector.detectQuantized(yCells, hCells);
                   });
}

MimoSimulationResult simulateAnalog(const MimoParams& params,
                                    std::uint64_t trials, std::uint64_t seed) {
  const MlDetector detector(params);
  return runTrials(params, trials, seed,
                   [&](const std::vector<double>& y, const std::vector<double>& h) {
                     return detector.detectAnalog(y, h);
                   });
}

}  // namespace mimostat::mimo
