// Monte-Carlo baseline for the MIMO detector: per trial, draw analog fading
// and noise, quantize, run the same quantized ML decision as the DTMC, and
// count errors. This is the paper's §V comparison — 1e7 trials to resolve
// the 1x4 BER that the model checker computes exactly.
#pragma once

#include <cstdint>

#include "stats/estimator.hpp"
#include "mimo/detector.hpp"

namespace mimostat::mimo {

struct MimoSimulationResult {
  stats::BernoulliEstimator bitErrors;
  double seconds = 0.0;
};

/// Simulate `trials` independent transmissions through the quantized
/// datapath (the system the DTMC models).
[[nodiscard]] MimoSimulationResult simulateQuantized(const MimoParams& params,
                                                     std::uint64_t trials,
                                                     std::uint64_t seed);

/// Simulate the unquantized (analog) detector — the reference floor showing
/// how much the fixed-point quantization costs.
[[nodiscard]] MimoSimulationResult simulateAnalog(const MimoParams& params,
                                                  std::uint64_t trials,
                                                  std::uint64_t seed);

}  // namespace mimostat::mimo
