// Annotated locking primitives for Clang's thread-safety analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability attributes,
// so code locking through them is invisible to -Wthread-safety: a
// MIMOSTAT_GUARDED_BY member would warn on every access, lock held or not.
// util::Mutex is a zero-overhead std::mutex wrapper declared as a capability,
// util::MutexLock the corresponding scoped guard, and util::CondVar a
// condition variable whose wait() declares (via MIMOSTAT_REQUIRES) that the
// caller holds the mutex it sleeps on. Every mutex-owning type in the tree
// (engine::ThreadPool, engine::AnalysisEngine, pctl::PropertyCache) locks
// through these so the analysis can check its GUARDED_BY claims.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace mimostat::util {

/// std::mutex as a Clang thread-safety capability.
class MIMOSTAT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() MIMOSTAT_ACQUIRE() { mutex_.lock(); }
  void unlock() MIMOSTAT_RELEASE() { mutex_.unlock(); }
  [[nodiscard]] bool try_lock() MIMOSTAT_TRY_ACQUIRE(true) {
    return mutex_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mutex_;
};

/// Scoped lock over util::Mutex (the annotated std::lock_guard equivalent).
class MIMOSTAT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) MIMOSTAT_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() MIMOSTAT_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable for util::Mutex. wait() requires (and returns holding)
/// the mutex; the release/re-acquire inside the wait happens in the standard
/// library, outside the analysis, which matches the caller-visible contract.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mutex) MIMOSTAT_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.mutex_, std::adopt_lock);
    cv_.wait(adopted);
    adopted.release();
  }

  template <typename Predicate>
  void wait(Mutex& mutex, Predicate stop) MIMOSTAT_REQUIRES(mutex) {
    std::unique_lock<std::mutex> adopted(mutex.mutex_, std::adopt_lock);
    cv_.wait(adopted, stop);
    adopted.release();
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace mimostat::util
