// Minimal leveled logger for the mimostat library.
//
// The library is deterministic and mostly silent; logging exists for the
// builder / engines to report progress on large models and for benches to
// explain what they are doing. Thread-safe: concurrent pool tasks log
// freely — each message is formatted into a buffer and emitted as one
// stream write under flockfile, so lines never interleave.
#pragma once

#include <cstdio>
#include <string>

namespace mimostat::util {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
};

/// Global log threshold; messages above this level are dropped.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// printf-style logging. Prefer the LOG_* macros below.
void logMessage(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace mimostat::util

#define MS_LOG_ERROR(...) \
  ::mimostat::util::logMessage(::mimostat::util::LogLevel::kError, __VA_ARGS__)
#define MS_LOG_WARN(...) \
  ::mimostat::util::logMessage(::mimostat::util::LogLevel::kWarn, __VA_ARGS__)
#define MS_LOG_INFO(...) \
  ::mimostat::util::logMessage(::mimostat::util::LogLevel::kInfo, __VA_ARGS__)
#define MS_LOG_DEBUG(...) \
  ::mimostat::util::logMessage(::mimostat::util::LogLevel::kDebug, __VA_ARGS__)
