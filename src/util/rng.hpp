// Deterministic, seedable random number generation for the Monte-Carlo
// baselines. xoshiro256** for the raw stream, seeded through splitmix64 so
// that small consecutive seeds give independent-looking streams.
//
// Every simulation entry point in this library takes an explicit seed; there
// is no global RNG state.
#pragma once

#include <array>
#include <cstdint>

namespace mimostat::util {

/// splitmix64 step: the canonical seeding PRNG (Steele et al.).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna). Passes BigCrush; tiny state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double nextDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Fair coin.
  bool nextBit() { return ((*this)() >> 63) != 0; }

  /// Uniform integer in [0, bound) without modulo bias (Lemire).
  std::uint64_t nextBounded(std::uint64_t bound);

  /// Standard normal variate (polar Marsaglia; caches the spare value).
  double nextGaussian();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  bool hasSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace mimostat::util
