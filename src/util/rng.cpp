#include "util/rng.hpp"

#include <cmath>

namespace mimostat::util {

std::uint64_t Xoshiro256::nextBounded(std::uint64_t bound) {
  if (bound <= 1) return 0;
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>((*this)()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>((*this)()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::nextGaussian() {
  if (hasSpare_) {
    hasSpare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * nextDouble() - 1.0;
    v = 2.0 * nextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  hasSpare_ = true;
  return u * factor;
}

}  // namespace mimostat::util
