// Saturating fixed-point helpers modelling RTL datapath arithmetic.
//
// The paper's DTMC models track RTL registers (path metrics, counters) that
// saturate rather than wrap; these helpers centralise that behaviour so the
// bit-accurate decoder and the DTMC models share identical arithmetic.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace mimostat::util {

/// Clamp v into [lo, hi].
[[nodiscard]] constexpr std::int32_t clampI32(std::int64_t v, std::int32_t lo,
                                              std::int32_t hi) {
  if (v < lo) return lo;
  if (v > hi) return hi;
  return static_cast<std::int32_t>(v);
}

/// Saturating add on [0, cap] — the path-metric accumulator idiom.
[[nodiscard]] constexpr std::int32_t satAdd(std::int32_t a, std::int32_t b,
                                            std::int32_t cap) {
  const std::int64_t sum = static_cast<std::int64_t>(a) + b;
  return clampI32(sum, 0, cap);
}

/// Round-to-nearest quantization of a real magnitude onto [0, cap]
/// (used for branch metrics: |sample - expected| -> small integer).
[[nodiscard]] inline std::int32_t quantizeMagnitude(double magnitude,
                                                    double scale,
                                                    std::int32_t cap) {
  const double scaled = magnitude * scale;
  const auto rounded = static_cast<std::int64_t>(std::llround(scaled));
  return clampI32(rounded, 0, cap);
}

/// Unsigned fixed-point value with explicit width, saturating on overflow.
/// Mirrors a Verilog reg [width-1:0] with saturating assignment.
class SatCounter {
 public:
  constexpr SatCounter(std::int32_t value, std::int32_t cap)
      : value_(std::min(value, cap)), cap_(cap) {}

  constexpr void add(std::int32_t delta) { value_ = satAdd(value_, delta, cap_); }
  constexpr void reset() { value_ = 0; }
  [[nodiscard]] constexpr std::int32_t value() const { return value_; }
  [[nodiscard]] constexpr std::int32_t cap() const { return cap_; }
  [[nodiscard]] constexpr bool saturated() const { return value_ == cap_; }

 private:
  std::int32_t value_;
  std::int32_t cap_;
};

}  // namespace mimostat::util
