// Clang thread-safety-analysis attribute macros.
//
// The locking discipline that keeps every parallel path bit-identical to its
// scalar reference (engine pool, la:: kernels, smc:: chunked sampling, sweep
// coalescing) used to live in comments the compiler never read. These macros
// make it machine-checkable: annotate a member with MIMOSTAT_GUARDED_BY(m)
// and Clang's -Wthread-safety analysis rejects any access that does not hold
// m; annotate a helper with MIMOSTAT_REQUIRES(m) and callers must prove they
// hold the lock. See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.
//
// The analysis only runs under Clang with the MIMOSTAT_THREAD_SAFETY CMake
// option (CI's thread-safety job builds with -Werror=thread-safety); on every
// other compiler the macros expand to nothing, so annotated code stays
// portable. Because libstdc++'s std::mutex carries no capability attributes,
// annotated code must lock through util::Mutex / util::MutexLock
// (util/mutex.hpp), the annotated wrappers the analysis understands.
#pragma once

#if defined(__clang__) && defined(MIMOSTAT_THREAD_SAFETY)
#define MIMOSTAT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MIMOSTAT_THREAD_ANNOTATION__(x)
#endif

/// A type that is a lockable capability (util::Mutex).
#define MIMOSTAT_CAPABILITY(x) MIMOSTAT_THREAD_ANNOTATION__(capability(x))

/// A RAII type that acquires a capability at construction and releases it at
/// destruction (util::MutexLock).
#define MIMOSTAT_SCOPED_CAPABILITY MIMOSTAT_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define MIMOSTAT_GUARDED_BY(x) MIMOSTAT_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define MIMOSTAT_PT_GUARDED_BY(x) MIMOSTAT_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function that acquires the capability and holds it on return.
#define MIMOSTAT_ACQUIRE(...) \
  MIMOSTAT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// Function that releases a held capability.
#define MIMOSTAT_RELEASE(...) \
  MIMOSTAT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `result`.
#define MIMOSTAT_TRY_ACQUIRE(result, ...) \
  MIMOSTAT_THREAD_ANNOTATION__(try_acquire_capability(result, __VA_ARGS__))

/// Function whose caller must already hold the capability (held on entry AND
/// still held on return; the body may release and re-acquire in between).
#define MIMOSTAT_REQUIRES(...) \
  MIMOSTAT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function whose caller must NOT hold the capability (deadlock guard for
/// functions that acquire it themselves).
#define MIMOSTAT_EXCLUDES(...) \
  MIMOSTAT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Function returning a reference to the given capability.
#define MIMOSTAT_RETURN_CAPABILITY(x) \
  MIMOSTAT_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: the function's locking is correct for reasons the analysis
/// cannot follow (use sparingly; say why at the use site).
#define MIMOSTAT_NO_THREAD_SAFETY_ANALYSIS \
  MIMOSTAT_THREAD_ANNOTATION__(no_thread_safety_analysis)
