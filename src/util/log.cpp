#include "util/log.hpp"

#include <cstdarg>
#include <cstring>
#include <string>

namespace mimostat::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() { return g_level; }

void setLogLevel(LogLevel level) { g_level = level; }

void logMessage(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;

  // Format the whole line into one buffer first, then emit it with a
  // single fwrite under the stream lock: concurrent pool tasks must never
  // interleave partial lines.
  char stack[512];
  int prefix = std::snprintf(stack, sizeof(stack), "[mimostat %s] ",
                             levelName(level));
  if (prefix < 0) return;

  va_list args;
  va_start(args, fmt);
  va_list measure;
  va_copy(measure, args);
  const int body = std::vsnprintf(nullptr, 0, fmt, measure);
  va_end(measure);
  if (body < 0) {
    va_end(args);
    return;
  }

  const std::size_t total =
      static_cast<std::size_t>(prefix) + static_cast<std::size_t>(body) + 1;
  std::string heap;
  char* line = stack;
  if (total + 1 > sizeof(stack)) {
    heap.resize(total + 1);
    line = heap.data();
    std::memcpy(line, stack, static_cast<std::size_t>(prefix));
  }
  std::vsnprintf(line + prefix, total + 1 - static_cast<std::size_t>(prefix),
                 fmt, args);
  va_end(args);
  line[total - 1] = '\n';

  flockfile(stderr);
  std::fwrite(line, 1, total, stderr);
  funlockfile(stderr);
}

}  // namespace mimostat::util
