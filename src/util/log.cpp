#include "util/log.hpp"

#include <cstdarg>

namespace mimostat::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kDebug:
      return "DEBUG";
  }
  return "?";
}
}  // namespace

LogLevel logLevel() { return g_level; }

void setLogLevel(LogLevel level) { g_level = level; }

void logMessage(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[mimostat %s] ", levelName(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mimostat::util
