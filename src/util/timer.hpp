// Wall-clock stopwatch used by builders/engines to report the
// "model construction + model checking" times the paper's Table I lists.
#pragma once

#include <chrono>

namespace mimostat::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsedMillis() const { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mimostat::util
