// Wall-clock stopwatch (benches, tests, obs::).
//
// Library code in src/ should time phases through obs::Span / the metrics
// registry instead: the `raw-wallclock` determinism lint bans direct
// Stopwatch / std::chrono clock use in src/ outside src/util/ + src/obs/,
// so wall-clock can only reach diagnostics, never exported values.
#pragma once

#include <chrono>

namespace mimostat::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsedMillis() const { return elapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mimostat::util
