// Hashing helpers shared by the explicit-state builder, the BDD unique
// tables and the lumping signatures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mimostat::util {

/// FNV-1a over an arbitrary byte range.
[[nodiscard]] inline std::uint64_t fnv1a(const void* data, std::size_t size,
                                         std::uint64_t seed = 0xCBF29CE484222325ULL) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

/// 64-bit finalizer (murmur3 fmix64) — good avalanche for packed keys.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ULL;
  x ^= x >> 33;
  return x;
}

/// Combine two hashes (boost-style, widened to 64 bits).
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 12) + (a >> 4));
}

/// Hash functor for std::vector<int32_t> (the DTMC state type).
struct VecI32Hash {
  std::size_t operator()(const std::vector<std::int32_t>& v) const {
    return static_cast<std::size_t>(
        fnv1a(v.data(), v.size() * sizeof(std::int32_t)));
  }
};

/// Open-addressing set of packed 64-bit states. Used for counting the
/// reachable state space of models too large to store as full CSR matrices
/// (the paper's "original model" columns). Linear probing, power-of-two
/// capacity, grows at 60% load. Value 0 is reserved as the empty marker, so
/// keys are stored with +1 bias; the one key whose bias wraps to the marker
/// (~0) is tracked out of band so every 64-bit key is storable.
class PackedStateSet {
 public:
  explicit PackedStateSet(std::size_t initialCapacity = 1 << 16);

  /// Inserts the key; returns true when newly inserted.
  bool insert(std::uint64_t key);
  [[nodiscard]] bool contains(std::uint64_t key) const;
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return table_.size(); }

 private:
  void grow();

  std::vector<std::uint64_t> table_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
  bool hasMaxKey_ = false;
};

inline PackedStateSet::PackedStateSet(std::size_t initialCapacity) {
  std::size_t cap = 16;
  while (cap < initialCapacity) cap <<= 1;
  table_.assign(cap, 0);
  mask_ = cap - 1;
}

inline bool PackedStateSet::insert(std::uint64_t key) {
  if (key == ~0ULL) {  // its bias would wrap to the empty marker
    if (hasMaxKey_) return false;
    hasMaxKey_ = true;
    ++size_;
    return true;
  }
  const std::uint64_t stored = key + 1;  // bias away from the empty marker
  std::size_t idx = static_cast<std::size_t>(mix64(stored)) & mask_;
  while (true) {
    const std::uint64_t slot = table_[idx];
    if (slot == stored) return false;
    if (slot == 0) {
      table_[idx] = stored;
      ++size_;
      if (size_ * 5 > table_.size() * 3) grow();
      return true;
    }
    idx = (idx + 1) & mask_;
  }
}

inline bool PackedStateSet::contains(std::uint64_t key) const {
  if (key == ~0ULL) return hasMaxKey_;
  const std::uint64_t stored = key + 1;
  std::size_t idx = static_cast<std::size_t>(mix64(stored)) & mask_;
  while (true) {
    const std::uint64_t slot = table_[idx];
    if (slot == stored) return true;
    if (slot == 0) return false;
    idx = (idx + 1) & mask_;
  }
}

inline void PackedStateSet::grow() {
  std::vector<std::uint64_t> old;
  old.swap(table_);
  table_.assign(old.size() * 2, 0);
  mask_ = table_.size() - 1;
  size_ = hasMaxKey_ ? 1 : 0;  // the out-of-band key survives the rehash
  for (std::uint64_t slot : old) {
    if (slot != 0) insert(slot - 1);
  }
}

}  // namespace mimostat::util
