#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace mimostat::obs {

namespace {

/// Round-robin shard assignment: each new thread gets the next slot.
std::atomic<std::size_t> g_nextShard{0};

std::size_t assignShard() {
  return g_nextShard.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
}

}  // namespace

std::size_t currentMetricShard() {
  thread_local const std::size_t shard = assignShard();
  return shard;
}

std::size_t histogramBucketIndex(std::uint64_t value) {
  if (value < 4) return static_cast<std::size_t>(value);
  const auto octave = static_cast<std::size_t>(std::bit_width(value)) - 1;
  const auto sub = static_cast<std::size_t>((value >> (octave - 2)) & 3u);
  const std::size_t bucket = 4 + (octave - 2) * 4 + sub;
  return std::min(bucket, kHistogramBuckets - 1);
}

std::uint64_t histogramBucketLowerBound(std::size_t bucket) {
  if (bucket < 4) return bucket;
  const std::size_t octave = 2 + (bucket - 4) / 4;
  const std::size_t sub = (bucket - 4) % 4;
  return (4ull + sub) << (octave - 2);
}

std::uint64_t histogramBucketUpperBound(std::size_t bucket) {
  if (bucket + 1 >= kHistogramBuckets) return ~0ull;
  return histogramBucketLowerBound(bucket + 1);
}

void Counter::add(std::uint64_t n) const {
  if (cells_ == nullptr) return;
  cells_->shards[currentMetricShard()].value.fetch_add(
      n, std::memory_order_relaxed);
}

void Gauge::add(std::int64_t delta) const {
  if (cells_ == nullptr) return;
  cells_->shards[currentMetricShard()].value.fetch_add(
      delta, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) const {
  if (cells_ == nullptr) return;
  const std::size_t shard = currentMetricShard();
  cells_->buckets[shard * kHistogramBuckets + histogramBucketIndex(value)]
      .fetch_add(1, std::memory_order_relaxed);
  cells_->sum[shard].value.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = cells_->minValue.load(std::memory_order_relaxed);
  while (value < seen && !cells_->minValue.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = cells_->maxValue.load(std::memory_order_relaxed);
  while (value > seen && !cells_->maxValue.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::recordSeconds(double seconds) const {
  if (seconds < 0.0) seconds = 0.0;
  record(static_cast<std::uint64_t>(std::llround(seconds * 1e9)));
}

double HistogramSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank: the k-th smallest recorded value, 1-based.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    if (seen + buckets[b] >= rank) {
      const auto lo = static_cast<double>(histogramBucketLowerBound(b));
      // Interpolate within the bucket by the rank's position among the
      // bucket's own samples; clamp the top end to the observed max so a
      // p99 never exceeds the largest recorded value.
      double hi = static_cast<double>(histogramBucketUpperBound(b));
      hi = std::min(hi, static_cast<double>(max) + 1.0);
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets[b]);
      return lo + (hi - lo) * frac;
    }
    seen += buckets[b];
  }
  return static_cast<double>(max);
}

std::uint64_t MetricsSnapshot::counterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const auto& [n, v] : histograms) {
    if (n == name) return &v;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter MetricsRegistry::counter(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<detail::CounterCells>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<detail::GaugeCells>())
             .first;
  }
  return Gauge(it->second.get());
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  util::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramCells>())
             .first;
  }
  return Histogram(it->second.get());
}

namespace {

HistogramSnapshot mergeHistogram(const detail::HistogramCells& cells) {
  HistogramSnapshot snap;
  snap.buckets.assign(kHistogramBuckets, 0);
  for (std::size_t shard = 0; shard < kMetricShards; ++shard) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      snap.buckets[b] += cells.buckets[shard * kHistogramBuckets + b].load(
          std::memory_order_relaxed);
    }
    snap.sum += cells.sum[shard].value.load(std::memory_order_relaxed);
  }
  for (const std::uint64_t c : snap.buckets) snap.count += c;
  if (snap.count > 0) {
    snap.min = cells.minValue.load(std::memory_order_relaxed);
    snap.max = cells.maxValue.load(std::memory_order_relaxed);
  }
  return snap;
}

}  // namespace

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  util::MutexLock lock(mutex_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, cells] : counters_) {
    std::uint64_t total = 0;
    for (const auto& shard : cells->shards) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, cells] : gauges_) {
    std::int64_t total = 0;
    for (const auto& shard : cells->shards) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    snap.gauges.emplace_back(name, total);
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, cells] : histograms_) {
    snap.histograms.emplace_back(name, mergeHistogram(*cells));
  }
  return snap;
}

HistogramSnapshot MetricsRegistry::histogramSnapshot(
    std::string_view name) const {
  util::MutexLock lock(mutex_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramSnapshot empty;
    empty.buckets.assign(kHistogramBuckets, 0);
    return empty;
  }
  return mergeHistogram(*it->second);
}

void MetricsRegistry::reset() {
  util::MutexLock lock(mutex_);
  for (auto& [name, cells] : counters_) {
    for (auto& shard : cells->shards) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, cells] : gauges_) {
    for (auto& shard : cells->shards) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, cells] : histograms_) {
    for (auto& bucket : cells->buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    for (auto& shard : cells->sum) {
      shard.value.store(0, std::memory_order_relaxed);
    }
    cells->minValue.store(~0ull, std::memory_order_relaxed);
    cells->maxValue.store(0, std::memory_order_relaxed);
  }
}

}  // namespace mimostat::obs
