// obs::Tracer / obs::Span — per-request phase tracing.
//
// A Span is an RAII scope around one phase of work ("engine.analyze",
// "dtmc.build", "la.solve.gauss-seidel", ...). Spans form a tree: on the
// same thread, nesting is automatic via a thread_local current-span id;
// across threads (pool tasks), the scheduling site passes the parent id
// explicitly. The tracer collects finished spans and obs::TraceWriter
// exports them as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing.
//
// Tracing is disabled by default. A disabled tracer costs one relaxed
// atomic load per span plus the clock reads — spans still measure time
// (stopSeconds() feeds the always-on diagnostic timing structs), they just
// don't allocate or record events. Span names must be string literals (or
// otherwise outlive the tracer); the tracer stores the pointer, not a copy.
//
// Determinism boundary: spans and traces are diagnostics only. Nothing
// here may feed exported values or ordering — the determinism lint's
// `raw-wallclock` rule keeps clock reads confined to src/obs/ + src/util/.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/clock.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mimostat::obs {

/// One finished span. Timestamps are monotonicNanos() values relative to
/// the tracer's epoch (its construction / last clear()).
struct TraceEvent {
  const char* name = "";     ///< static-lifetime phase name
  std::uint64_t id = 0;      ///< unique per tracer epoch, > 0
  std::uint64_t parent = 0;  ///< 0 = root
  std::uint64_t startNs = 0;
  std::uint64_t endNs = 0;
  std::uint32_t tid = 0;  ///< small per-process thread index
};

class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer (what every Span uses by default).
  [[nodiscard]] static Tracer& global();

  /// Master switch. Spans created while disabled record nothing.
  void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opt-in high-volume spans (per-step bounded-traversal spans). Only
  /// consulted when enabled() is also true.
  void setDetailEnabled(bool on) {
    detail_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool detailEnabled() const {
    return enabled() && detail_.load(std::memory_order_relaxed);
  }

  /// Drop all recorded events and restart the epoch / id counter.
  void clear();

  /// Snapshot of finished spans, sorted by (startNs, id) so output is
  /// stable regardless of completion order.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Nanosecond timestamp of the current epoch (clear()/construction).
  [[nodiscard]] std::uint64_t epochNs() const {
    return epochNs_.load(std::memory_order_relaxed);
  }

  /// Next span id (internal; used by Span).
  [[nodiscard]] std::uint64_t nextId() {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  void record(const TraceEvent& event);

 private:
  /// lint:allow(guarded-by: relaxed atomic flag, hot-path enabled check)
  std::atomic<bool> enabled_{false};
  /// lint:allow(guarded-by: relaxed atomic flag)
  std::atomic<bool> detail_{false};
  /// lint:allow(guarded-by: atomic id counter, fetch_add only)
  std::atomic<std::uint64_t> nextId_{1};
  /// lint:allow(guarded-by: atomic timestamp, store on clear / relaxed reads)
  std::atomic<std::uint64_t> epochNs_{0};
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ MIMOSTAT_GUARDED_BY(mutex_);
};

/// The calling thread's innermost live recording span id (0 = none). Used
/// for same-thread auto-parenting; cross-thread tasks pass parents
/// explicitly.
[[nodiscard]] std::uint64_t currentSpanId();

/// RAII phase scope. Always measures wall time (elapsedSeconds() works
/// with tracing off); records a TraceEvent only when the tracer was
/// enabled at construction.
class Span {
 public:
  /// `name` must outlive the tracer (use a string literal). `parent` = 0
  /// auto-parents to the calling thread's current span; a nonzero parent
  /// overrides (use for cross-thread pool tasks).
  explicit Span(const char* name, std::uint64_t parent = 0,
                Tracer& tracer = Tracer::global());
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;
  ~Span() { stop(); }

  /// Finish the span (idempotent). Records the event if tracing was on.
  void stop();
  /// stop() and return the span's total duration in seconds.
  double stopSeconds();
  /// Seconds since construction (span keeps running).
  [[nodiscard]] double elapsedSeconds() const;

  /// This span's id while recording, 0 when tracing was off at
  /// construction. Pass as the explicit parent of cross-thread children.
  [[nodiscard]] std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  const char* name_;
  std::uint64_t id_ = 0;      ///< 0 = not recording
  std::uint64_t parent_ = 0;
  std::uint64_t startNs_;
  std::uint64_t savedCurrent_ = 0;  ///< restored on stop when recording
  bool stopped_ = false;
};

/// Exports a tracer's events as Chrome trace-event JSON ("traceEvents"
/// array of complete events, ts/dur in microseconds).
class TraceWriter {
 public:
  explicit TraceWriter(const Tracer& tracer) : tracer_(&tracer) {}

  void write(std::ostream& out) const;
  /// Returns false (and logs) when the file cannot be opened.
  bool writeFile(const std::string& path) const;

 private:
  const Tracer* tracer_;
};

}  // namespace mimostat::obs
