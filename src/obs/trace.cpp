#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "util/log.hpp"

namespace mimostat::obs {

namespace {

/// Small dense per-process thread index for trace "tid" fields (raw OS
/// thread ids are large and unstable across runs).
std::atomic<std::uint32_t> g_nextThreadIndex{0};

std::uint32_t currentThreadIndex() {
  thread_local const std::uint32_t index =
      g_nextThreadIndex.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// Innermost live recording span on this thread (0 = none).
thread_local std::uint64_t t_currentSpan = 0;

}  // namespace

std::uint64_t currentSpanId() { return t_currentSpan; }

Tracer::Tracer() { epochNs_.store(monotonicNanos(), std::memory_order_relaxed); }

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::clear() {
  util::MutexLock lock(mutex_);
  events_.clear();
  nextId_.store(1, std::memory_order_relaxed);
  epochNs_.store(monotonicNanos(), std::memory_order_relaxed);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    util::MutexLock lock(mutex_);
    out = events_;
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.startNs != b.startNs) return a.startNs < b.startNs;
    return a.id < b.id;
  });
  return out;
}

void Tracer::record(const TraceEvent& event) {
  util::MutexLock lock(mutex_);
  events_.push_back(event);
}

Span::Span(const char* name, std::uint64_t parent, Tracer& tracer)
    : tracer_(&tracer), name_(name), startNs_(monotonicNanos()) {
  if (tracer_->enabled()) {
    id_ = tracer_->nextId();
    parent_ = parent != 0 ? parent : t_currentSpan;
    savedCurrent_ = t_currentSpan;
    t_currentSpan = id_;
  }
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_),
      name_(other.name_),
      id_(other.id_),
      parent_(other.parent_),
      startNs_(other.startNs_),
      savedCurrent_(other.savedCurrent_),
      stopped_(other.stopped_) {
  other.id_ = 0;
  other.stopped_ = true;
}

void Span::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (id_ == 0) return;
  TraceEvent event;
  event.name = name_;
  event.id = id_;
  event.parent = parent_;
  event.startNs = startNs_;
  event.endNs = monotonicNanos();
  event.tid = currentThreadIndex();
  // Restore only if we are still the innermost span on this thread; a span
  // moved across threads must not clobber the destination thread's stack.
  if (t_currentSpan == id_) t_currentSpan = savedCurrent_;
  tracer_->record(event);
}

double Span::stopSeconds() {
  const double seconds = elapsedSeconds();
  stop();
  return seconds;
}

double Span::elapsedSeconds() const {
  return static_cast<double>(monotonicNanos() - startNs_) * 1e-9;
}

void TraceWriter::write(std::ostream& out) const {
  const std::uint64_t epoch = tracer_->epochNs();
  const std::vector<TraceEvent> events = tracer_->events();
  out << "{\"traceEvents\":[";
  bool first = true;
  char buf[64];
  for (const TraceEvent& e : events) {
    if (!first) out << ",";
    first = false;
    // Chrome trace "complete" events: ts/dur in microseconds.
    const double ts = static_cast<double>(e.startNs - epoch) * 1e-3;
    const double dur = static_cast<double>(e.endNs - e.startNs) * 1e-3;
    out << "{\"name\":\"" << e.name
        << "\",\"cat\":\"mimostat\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid;
    std::snprintf(buf, sizeof(buf), "%.3f", ts);
    out << ",\"ts\":" << buf;
    std::snprintf(buf, sizeof(buf), "%.3f", dur);
    out << ",\"dur\":" << buf;
    out << ",\"args\":{\"id\":" << e.id << ",\"parent\":" << e.parent << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
}

bool TraceWriter::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    MS_LOG_WARN("obs: cannot open trace file '%s'", path.c_str());
    return false;
  }
  write(out);
  return out.good();
}

}  // namespace mimostat::obs
