// Monotonic clock access for the observability layer.
//
// Every wall-clock read in src/ flows through here (or util::Stopwatch,
// which obs:: wraps): the `raw-wallclock` lint rule bans direct
// std::chrono::steady_clock / util::Stopwatch use outside src/util/ and
// src/obs/, so timing can only ever reach spans, histograms and the
// diagnostic timing structs — never exported values or ordering.
#pragma once

#include <chrono>
#include <cstdint>

namespace mimostat::obs {

/// Nanoseconds on the process-wide monotonic clock. Only differences are
/// meaningful; the epoch is unspecified (steady_clock's).
[[nodiscard]] inline std::uint64_t monotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mimostat::obs
