// obs::MetricsRegistry — process-wide named counters, gauges and log-scale
// latency histograms.
//
// Design goals, in order:
//
//   1. Hot-path increments never contend. Every metric's storage is split
//      into kShards cache-line-padded slots; a thread writes only its own
//      slot (assigned round-robin on first use), so concurrent add() calls
//      from different pool threads touch different cache lines. Reads merge
//      the shards.
//   2. No floating-point atomics (the `atomic-float` lint rule): histograms
//      record integer nanoseconds into fixed log-scale buckets, counters
//      and gauges are integer adds. All atomics are relaxed — metrics are
//      monotone diagnostics, not synchronization.
//   3. Determinism boundary: metrics are observed through snapshot(), which
//      is explicitly diagnostic — nothing here may feed exported values or
//      ordering. Snapshot iteration is name-sorted (std::map) so dashboards
//      and logs are stable.
//
// The registry is injectable like pctl::PropertyCache: library code takes a
// MetricsRegistry* defaulting to MetricsRegistry::global(), tests inject a
// private instance. Handles (Counter/Gauge/Histogram) are cheap value types
// pointing at registry-owned storage; they stay valid for the registry's
// lifetime (reset() zeroes values but never frees storage).
//
// Histogram buckets: values < 4 get exact buckets; from 4 up, each power of
// two splits into 4 sub-buckets (2 significant bits, HdrHistogram-style),
// bounding the relative quantile error at 25%. percentile() interpolates
// linearly inside the bucket containing the requested rank, so estimates
// always land inside the same bucket as the exact (sorted-vector) quantile.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace mimostat::obs {

/// Shard count for per-thread splitting. Threads are assigned shards
/// round-robin on first metric touch; more threads than shards share (the
/// adds are relaxed atomics, so sharing is correct, just slower).
inline constexpr std::size_t kMetricShards = 16;

/// Histogram bucket count: 4 exact buckets for values 0..3, then 4
/// sub-buckets per power of two (octaves 2..63), tiling [0, 2^64) exactly:
/// 4 + 62 * 4 = 252.
inline constexpr std::size_t kHistogramBuckets = 252;

/// The calling thread's shard index (thread_local, assigned round-robin).
[[nodiscard]] std::size_t currentMetricShard();

/// Bucket index for a recorded value (exposed for the percentile tests).
[[nodiscard]] std::size_t histogramBucketIndex(std::uint64_t value);
/// Inclusive lower bound of a bucket's value range.
[[nodiscard]] std::uint64_t histogramBucketLowerBound(std::size_t bucket);
/// Exclusive upper bound of a bucket's value range (saturates at u64 max).
[[nodiscard]] std::uint64_t histogramBucketUpperBound(std::size_t bucket);

namespace detail {

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> value{0};
};
struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> value{0};
};

struct CounterCells {
  std::array<PaddedU64, kMetricShards> shards;
};

struct GaugeCells {
  std::array<PaddedI64, kMetricShards> shards;
};

struct HistogramCells {
  /// buckets[shard * kHistogramBuckets + bucket].
  std::array<std::atomic<std::uint64_t>, kMetricShards * kHistogramBuckets>
      buckets{};
  std::array<PaddedU64, kMetricShards> sum;
  /// CAS min/max across all shards (rare updates, so contention is fine).
  std::atomic<std::uint64_t> minValue{~0ull};
  std::atomic<std::uint64_t> maxValue{0};
};

}  // namespace detail

/// Monotone event counter handle. Default-constructed handles are inert
/// no-ops, so members can be declared before wiring.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n = 1) const;
  void inc() const { add(1); }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterCells* cells) : cells_(cells) {}
  detail::CounterCells* cells_ = nullptr;
};

/// Up/down integer level (queue depths, resident entries). The current
/// value is the sum of per-shard deltas.
class Gauge {
 public:
  Gauge() = default;
  void add(std::int64_t delta) const;
  void sub(std::int64_t delta) const { add(-delta); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::GaugeCells* cells) : cells_(cells) {}
  detail::GaugeCells* cells_ = nullptr;
};

/// Fixed-bucket log-scale histogram handle. By convention the recorded unit
/// is nanoseconds for every `*_ns` metric.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value) const;
  /// Convenience for wall-clock phases: records round(seconds * 1e9).
  void recordSeconds(double seconds) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramCells* cells) : cells_(cells) {}
  detail::HistogramCells* cells_ = nullptr;
};

/// Shard-merged histogram state with quantile extraction.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when count == 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets entries

  /// Nearest-rank quantile (q in [0, 1]) interpolated linearly inside its
  /// bucket; the result always lies in the same bucket as the exact
  /// sorted-vector quantile would. Returns 0 when empty.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p90() const { return percentile(0.90); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Shard-merged view of every metric, name-sorted (deterministic order).
/// Concurrent writers keep running while a snapshot is taken; per-metric
/// totals are merged with relaxed loads, so a snapshot racing an add may
/// split it across two snapshots but never loses it.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// 0 / nullptr when the name was never registered.
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const;
  [[nodiscard]] std::int64_t gaugeValue(std::string_view name) const;
  [[nodiscard]] const HistogramSnapshot* histogram(
      std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what every component uses by default).
  [[nodiscard]] static MetricsRegistry& global();

  /// Find-or-create handles; repeated calls with one name return handles to
  /// the same storage. Registration takes the registry mutex — resolve once
  /// and cache the handle on hot paths.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  /// Merged view of everything registered so far.
  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Merged view of one histogram (empty snapshot when unregistered).
  [[nodiscard]] HistogramSnapshot histogramSnapshot(
      std::string_view name) const;

  /// Zero every value (tests). Storage — and existing handles — stay valid.
  void reset();

 private:
  mutable util::Mutex mutex_;
  // std::map: snapshot iteration must be name-ordered, never hash-ordered.
  std::map<std::string, std::unique_ptr<detail::CounterCells>, std::less<>>
      counters_ MIMOSTAT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<detail::GaugeCells>, std::less<>>
      gauges_ MIMOSTAT_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<detail::HistogramCells>, std::less<>>
      histograms_ MIMOSTAT_GUARDED_BY(mutex_);
};

}  // namespace mimostat::obs
