// Streaming estimators for Monte-Carlo runs.
#pragma once

#include <cstdint>

#include "stats/intervals.hpp"

namespace mimostat::stats {

/// Welford online mean/variance accumulator.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Standard error of the mean.
  [[nodiscard]] double standardError() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  /// Merge another accumulator (Chan's parallel formula).
  void merge(const RunningStats& other);

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch-means estimator for *correlated* streams (e.g. the per-cycle
/// error process of a decoder, which is a function of a Markov chain).
/// The stream is cut into fixed-size batches; batch means are approximately
/// independent once the batch length exceeds the mixing time, so a normal
/// interval on the batch means has honest coverage where an iid Wilson
/// interval would be too narrow.
class BatchMeansEstimator {
 public:
  explicit BatchMeansEstimator(std::uint64_t batchSize);

  void add(double x);

  [[nodiscard]] std::uint64_t observations() const { return observations_; }
  [[nodiscard]] std::uint64_t completeBatches() const {
    return batches_.count();
  }
  /// Mean over complete batches.
  [[nodiscard]] double mean() const { return batches_.mean(); }
  /// Normal-approximation interval on the batch means. Requires at least
  /// two complete batches.
  [[nodiscard]] Interval interval(double confidence) const;

 private:
  std::uint64_t batchSize_;
  std::uint64_t inBatch_ = 0;
  double batchSum_ = 0.0;
  std::uint64_t observations_ = 0;
  RunningStats batches_;
};

/// Bernoulli (bit-error) counter with interval accessors.
class BernoulliEstimator {
 public:
  void add(bool success) {
    ++trials_;
    if (success) ++successes_;
  }

  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t successes() const { return successes_; }
  [[nodiscard]] double estimate() const {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }

  [[nodiscard]] Interval wilson(double confidence) const {
    return wilsonInterval(successes_, trials_, confidence);
  }
  [[nodiscard]] Interval clopperPearson(double confidence) const {
    return clopperPearsonInterval(successes_, trials_, confidence);
  }
  [[nodiscard]] Interval hoeffding(double confidence) const {
    return hoeffdingInterval(successes_, trials_, confidence);
  }

  /// Merge another counter (exact: order-independent sums).
  void merge(const BernoulliEstimator& other) {
    trials_ += other.trials_;
    successes_ += other.successes_;
  }

 private:
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
};

}  // namespace mimostat::stats
