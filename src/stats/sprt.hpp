// Wald's Sequential Probability Ratio Test for Bernoulli parameters.
//
// This is the statistical-model-checking baseline (cf. Clarke/Donze/Legay,
// cited as [13] in the paper): test H0: p <= theta - delta against
// H1: p >= theta + delta with prescribed error probabilities alpha/beta.
// We use it in benches to contrast "statistical guarantee by sampling" with
// the exact guarantee from probabilistic model checking.
#pragma once

#include <cstdint>

namespace mimostat::stats {

enum class SprtDecision {
  kContinue,   ///< not enough evidence yet
  kAcceptH0,   ///< p <= theta - delta accepted
  kAcceptH1,   ///< p >= theta + delta accepted
};

class Sprt {
 public:
  /// @param theta      threshold being tested
  /// @param delta      indifference half-width (0 < delta < min(theta,1-theta))
  /// @param alpha      max P(accept H1 | H0 true)
  /// @param beta       max P(accept H0 | H1 true)
  Sprt(double theta, double delta, double alpha, double beta);

  /// Feed one Bernoulli observation; returns the current decision.
  SprtDecision add(bool success);

  [[nodiscard]] SprtDecision decision() const { return decision_; }
  [[nodiscard]] std::uint64_t observations() const { return n_; }
  [[nodiscard]] double logLikelihoodRatio() const { return llr_; }

 private:
  double p0_;
  double p1_;
  double logA_;
  double logB_;
  double llr_ = 0.0;
  std::uint64_t n_ = 0;
  SprtDecision decision_ = SprtDecision::kContinue;
};

}  // namespace mimostat::stats
