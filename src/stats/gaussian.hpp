// Gaussian distribution primitives.
//
// The DTMC transition probabilities in the paper are Gaussian cell
// probabilities: P(q = k | signal s) = Phi((t_{k+1}-s)/sigma) - Phi((t_k-s)/sigma).
// Everything downstream (quantizers, channel models) is built on these.
#pragma once

namespace mimostat::stats {

/// Standard normal probability density function.
[[nodiscard]] double normalPdf(double x);

/// Standard normal cumulative distribution function Phi(x).
/// Implemented via erfc for full double-precision accuracy in the tails —
/// required because the paper resolves BERs down to 1e-15.
[[nodiscard]] double normalCdf(double x);

/// Gaussian CDF with mean/sigma.
[[nodiscard]] double normalCdf(double x, double mean, double sigma);

/// Upper tail Q(x) = 1 - Phi(x), accurate for large x.
[[nodiscard]] double normalTail(double x);

/// Inverse standard normal CDF (Acklam's rational approximation, refined by
/// one Halley step; |relative error| < 1e-13 over (0,1)).
[[nodiscard]] double normalInvCdf(double p);

/// Probability mass of the interval [lo, hi] under N(mean, sigma^2).
/// lo may be -inf and hi +inf. Computed tail-aware so that narrow cells far
/// from the mean do not cancel to zero.
[[nodiscard]] double normalIntervalProb(double lo, double hi, double mean,
                                        double sigma);

}  // namespace mimostat::stats
