#include "stats/estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/gaussian.hpp"

namespace mimostat::stats {

BatchMeansEstimator::BatchMeansEstimator(std::uint64_t batchSize)
    : batchSize_(batchSize) {
  assert(batchSize >= 1);
}

void BatchMeansEstimator::add(double x) {
  ++observations_;
  batchSum_ += x;
  if (++inBatch_ == batchSize_) {
    batches_.add(batchSum_ / static_cast<double>(batchSize_));
    inBatch_ = 0;
    batchSum_ = 0.0;
  }
}

Interval BatchMeansEstimator::interval(double confidence) const {
  assert(batches_.count() >= 2);
  const double z = normalInvCdf(0.5 + confidence / 2.0);
  const double half = z * batches_.standardError();
  return {batches_.mean() - half, batches_.mean() + half};
}

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::standardError() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace mimostat::stats
