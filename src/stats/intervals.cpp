#include "stats/intervals.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "stats/gaussian.hpp"

namespace mimostat::stats {

namespace {

double logBeta(double a, double b) {
  return std::lgamma(a) + std::lgamma(b) - std::lgamma(a + b);
}

/// Continued fraction for the incomplete beta (Lentz's method).
double betaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

/// Invert I_x(a,b) = target in x by bisection (monotone in x).
double invertIncompleteBeta(double a, double b, double target) {
  double lo = 0.0;
  double hi = 1.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (regularizedIncompleteBeta(a, b, mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double regularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double front =
      std::exp(a * std::log(x) + b * std::log1p(-x) - logBeta(a, b));
  // front = x^a (1-x)^b / B(a,b) is symmetric under (a,b,x) -> (b,a,1-x).
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * betaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * betaContinuedFraction(b, a, 1.0 - x) / b;
}

Interval waldInterval(std::uint64_t successes, std::uint64_t trials,
                      double confidence) {
  assert(trials > 0);
  const double p = static_cast<double>(successes) / static_cast<double>(trials);
  const double z = normalInvCdf(0.5 + confidence / 2.0);
  const double half =
      z * std::sqrt(std::max(p * (1.0 - p), 0.0) / static_cast<double>(trials));
  return {std::max(0.0, p - half), std::min(1.0, p + half)};
}

Interval wilsonInterval(std::uint64_t successes, std::uint64_t trials,
                        double confidence) {
  assert(trials > 0);
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z = normalInvCdf(0.5 + confidence / 2.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval clopperPearsonInterval(std::uint64_t successes, std::uint64_t trials,
                                double confidence) {
  assert(trials > 0);
  assert(successes <= trials);
  const double alpha = 1.0 - confidence;
  const double n = static_cast<double>(trials);
  const double k = static_cast<double>(successes);
  Interval result;
  if (successes == 0) {
    result.low = 0.0;
  } else {
    // low solves I_{low}(k, n-k+1) = 1 - alpha/2.
    result.low = invertIncompleteBeta(k, n - k + 1.0, alpha / 2.0);
  }
  if (successes == trials) {
    result.high = 1.0;
  } else {
    result.high = invertIncompleteBeta(k + 1.0, n - k, 1.0 - alpha / 2.0);
  }
  return result;
}

Interval hoeffdingInterval(std::uint64_t successes, std::uint64_t trials,
                           double confidence) {
  assert(trials > 0);
  const double p = static_cast<double>(successes) / static_cast<double>(trials);
  const double alpha = 1.0 - confidence;
  const double half =
      std::sqrt(std::log(2.0 / alpha) / (2.0 * static_cast<double>(trials)));
  return {std::max(0.0, p - half), std::min(1.0, p + half)};
}

std::uint64_t hoeffdingSampleSize(double eps, double confidence) {
  assert(eps > 0.0);
  const double alpha = 1.0 - confidence;
  const double n = std::log(2.0 / alpha) / (2.0 * eps * eps);
  return static_cast<std::uint64_t>(std::ceil(n));
}

}  // namespace mimostat::stats
