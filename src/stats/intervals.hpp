// Confidence intervals and concentration bounds for Bernoulli estimates.
//
// These quantify the statistical error of the Monte-Carlo baseline the paper
// compares against: a simulation of N steps observing k errors yields a BER
// estimate whose interval must be reported to see whether simulation can
// resolve low BERs at all (the paper's 1x4 detector: zero errors in 1e5
// steps, i.e. the interval still spans [0, ~3.7e-5] while the model checker
// returns an exact 1.08e-5).
#pragma once

#include <cstdint>

namespace mimostat::stats {

struct Interval {
  double low = 0.0;
  double high = 1.0;

  [[nodiscard]] double width() const { return high - low; }
  [[nodiscard]] bool contains(double p) const { return p >= low && p <= high; }
};

/// Normal-approximation (Wald) interval. Poor coverage near 0/1; included as
/// the textbook baseline.
[[nodiscard]] Interval waldInterval(std::uint64_t successes, std::uint64_t trials,
                                    double confidence);

/// Wilson score interval — good coverage even for small k.
[[nodiscard]] Interval wilsonInterval(std::uint64_t successes,
                                      std::uint64_t trials, double confidence);

/// Clopper–Pearson exact interval (via the regularized incomplete beta).
[[nodiscard]] Interval clopperPearsonInterval(std::uint64_t successes,
                                              std::uint64_t trials,
                                              double confidence);

/// Two-sided Hoeffding bound: |p̂ - p| <= sqrt(ln(2/alpha)/(2N)).
[[nodiscard]] Interval hoeffdingInterval(std::uint64_t successes,
                                         std::uint64_t trials,
                                         double confidence);

/// Number of Monte-Carlo trials needed so a Hoeffding interval at the given
/// confidence has half-width <= eps. This is the paper's core scaling
/// argument for why simulation fails at BER ~ 1e-7.
[[nodiscard]] std::uint64_t hoeffdingSampleSize(double eps, double confidence);

/// Regularized incomplete beta function I_x(a, b) (continued fraction,
/// Numerical-Recipes style). Exposed for tests.
[[nodiscard]] double regularizedIncompleteBeta(double a, double b, double x);

}  // namespace mimostat::stats
