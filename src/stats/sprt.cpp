#include "stats/sprt.hpp"

#include <cassert>
#include <cmath>

namespace mimostat::stats {

Sprt::Sprt(double theta, double delta, double alpha, double beta)
    : p0_(theta - delta), p1_(theta + delta) {
  assert(p0_ > 0.0 && p1_ < 1.0 && p0_ < p1_);
  assert(alpha > 0.0 && alpha < 1.0 && beta > 0.0 && beta < 1.0);
  logA_ = std::log((1.0 - beta) / alpha);
  logB_ = std::log(beta / (1.0 - alpha));
}

SprtDecision Sprt::add(bool success) {
  if (decision_ != SprtDecision::kContinue) return decision_;
  ++n_;
  if (success) {
    llr_ += std::log(p1_ / p0_);
  } else {
    llr_ += std::log((1.0 - p1_) / (1.0 - p0_));
  }
  if (llr_ >= logA_) {
    decision_ = SprtDecision::kAcceptH1;
  } else if (llr_ <= logB_) {
    decision_ = SprtDecision::kAcceptH0;
  }
  return decision_;
}

}  // namespace mimostat::stats
