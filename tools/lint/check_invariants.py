#!/usr/bin/env python3
"""Project-specific determinism & concurrency invariant linter.

Enforces the rules the compiler cannot check — the discipline behind the
repo's bitwise-determinism contract (every parallel path identical to its
scalar reference at any thread count) and its byte-stable exports:

  unordered-iteration  Iterating a std::unordered_{map,set} feeds
                       implementation-defined order into whatever consumes
                       the loop. That is exactly the dtmc::modelSignature /
                       sweep::ResultTable class of bug: exported bytes, row
                       order or hashes silently depend on libstdc++'s hash
                       seed. Iterate a sorted copy, or allow explicitly when
                       the loop is an order-independent reduction.
  raw-rng              std::rand/srand/std::random_device outside util/rng.
                       All randomness must flow through the counter-derived
                       util:: streams, or sampled results stop being
                       bit-reproducible per seed.
  raw-thread           std::thread/std::jthread construction outside
                       engine/thread_pool.cpp. All parallelism rides the
                       engine pool so determinism (pre-assigned result
                       slots) and TSan coverage hold everywhere. (Static
                       members like std::thread::hardware_concurrency are
                       fine.)
  atomic-float         std::atomic<double|float> accumulation reorders
                       floating-point additions by scheduling; the la::
                       bitwise contract requires sequential (per-slot)
                       reductions. There is no legitimate use in this tree.
  byte-truth-mask      std::vector<std::uint8_t> truth-mask declarations in
                       src/ outside la/. State sets and masks are packed
                       la::BitVector everywhere (8x less memory,
                       word-parallel bulk ops); the byte representation
                       survives only at the la:: bridge (fromBytes/toBytes)
                       and as the test/bench oracle. Allow explicitly when a
                       byte vector is genuinely not a truth mask.
  guarded-by           In a class that owns a util::Mutex or std::mutex,
                       every other data member named *_ must either carry a
                       MIMOSTAT_GUARDED_BY / MIMOSTAT_PT_GUARDED_BY
                       annotation or an explicit allow comment — so Clang's
                       -Wthread-safety analysis (and the reader) knows which
                       lock protects what.
  raw-wallclock        Direct std::chrono clock reads / util::Stopwatch in
                       src/ outside src/util/ + src/obs/. Library code times
                       phases through obs::Span and the obs:: metrics
                       registry, so wall-clock stays on the diagnostics side
                       of the determinism boundary and can never feed
                       exported values or ordering. tests/ and bench/ keep
                       raw timing freely.
  simd-intrinsics      Raw vector intrinsics / vendor intrinsic headers
                       (<immintrin.h>, <arm_neon.h>, _mm*/__m*/v*q_f64)
                       outside src/la/. Vector code lives behind the la::
                       SIMD dispatch layer (src/la/simd*.cpp): per-target
                       kernels built with per-TU ISA flags, cpuid-gated at
                       runtime, forceable via la::Exec::simd/MIMOSTAT_SIMD
                       and asserted bitwise against the scalar reference.
                       Intrinsics elsewhere dodge all of that — and a stray
                       FMA would silently change rounding.
  reduction-boundary   Quotient block-map access (`blockOf`, indexing the
                       representative table) in src/ outside src/reduce/ +
                       src/lump/ + src/mc/. The bisimulation quotient's
                       state indexing is private to the reduction layers;
                       results cross back to original-state indexing only
                       through reduce::liftStateValues / projectMask /
                       projectVector. Hand-rolled block-map arithmetic
                       elsewhere is one off-by-one away from handing a
                       caller quotient-indexed values under an
                       original-indexed contract.

Escape hatch: a line (or the line above it) containing
    lint:allow(<rule>) or lint:allow(<rule>: <reason>)
suppresses that rule for that line. Use it to document *why* the pattern is
safe, e.g. `// lint:allow(unordered-iteration: order-independent min scan)`.

Exit status 0 when clean, 1 with a findings report otherwise. Run as a
ctest (`lint_invariants`) and in CI's lint job; unit-tested by
tools/lint/lint_selftest.py.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass

CXX_EXTENSIONS = (".hpp", ".cpp", ".h", ".cc", ".hh")
DEFAULT_SCAN_DIRS = ("src", "tools", "tests", "bench", "examples")

ALLOW_RE = re.compile(r"lint:allow\(([A-Za-z0-9_-]+)(?::[^)]*)?\)")


@dataclass
class Violation:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _strip_comments_and_strings(line: str) -> str:
    """Blank out string/char literals and // comments (keeps column layout).

    Good enough for line-oriented rules: the linter must not fire on code
    that only *mentions* a pattern inside a string or a comment.
    """
    out = []
    i, n = 0, len(line)
    mode = None  # None | '"' | "'"
    while i < n:
        c = line[i]
        if mode is None:
            if c == "/" and i + 1 < n and line[i + 1] == "/":
                break  # rest is a comment
            if c in "\"'":
                mode = c
                out.append(" ")
            else:
                out.append(c)
        else:
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == mode:
                mode = None
            out.append(" ")
        i += 1
    return "".join(out)


def _allowed(lines: list[str], idx: int, rule: str) -> bool:
    """An allow comment on the flagged line or the line above suppresses."""
    for j in (idx, idx - 1):
        if 0 <= j < len(lines):
            for match in ALLOW_RE.finditer(lines[j]):
                if match.group(1) == rule:
                    return True
    return False


def _posix(path: str) -> str:
    return path.replace(os.sep, "/")


# --------------------------------------------------------------------- rules


def check_unordered_iteration(path: str, lines: list[str]) -> list[Violation]:
    """Flag iteration over std::unordered_{map,set} variables.

    Detects (a) range-for directly over an expression mentioning an
    unordered container type, and (b) range-for / .begin() iteration over a
    variable whose declaration in the same file names an unordered type.
    Heuristic by design: one file is the unit of analysis, matching how the
    codebase declares its containers next to their loops.
    """
    unordered_decl = re.compile(
        r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*"
        r"(?:&\s*)?([A-Za-z_]\w*)\s*[;({=]"
    )
    alias_decl = re.compile(
        r"\busing\s+([A-Za-z_]\w*)\s*=\s*[^;]*std\s*::\s*unordered_"
        r"(?:map|set|multimap|multiset)\b"
    )
    code = [_strip_comments_and_strings(l) for l in lines]

    names: set[str] = set()
    aliases: set[str] = set()
    for stripped in code:
        for match in unordered_decl.finditer(stripped):
            names.add(match.group(1))
        for match in alias_decl.finditer(stripped):
            aliases.add(match.group(1))
    if aliases:
        aliased_var = re.compile(
            r"\b(?:" + "|".join(re.escape(a) for a in aliases) + r")\s*"
            r"(?:&\s*)?([A-Za-z_]\w*)\s*[;({=]"
        )
        for stripped in code:
            for match in aliased_var.finditer(stripped):
                names.add(match.group(1))

    out: list[Violation] = []
    range_for = re.compile(r"\bfor\s*\(.*:\s*\*?([A-Za-z_][\w.\->]*)\s*\)")
    direct_for = re.compile(r"\bfor\s*\(.*:\s*[^)]*unordered_(?:map|set)")
    # Only begin(): comparing an iterator against end() (find-pattern) does
    # not traverse the container.
    begin_iter = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")
    for idx, stripped in enumerate(code):
        hit = None
        if direct_for.search(stripped):
            hit = "range-for over an unordered container"
        else:
            match = range_for.search(stripped)
            if match:
                base = match.group(1).split(".")[0].split("->")[0]
                if base in names:
                    hit = f"range-for over unordered container '{base}'"
            if hit is None:
                match = begin_iter.search(stripped)
                if match and match.group(1) in names:
                    hit = f"iterator loop over unordered container '{match.group(1)}'"
        if hit and not _allowed(lines, idx, "unordered-iteration"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "unordered-iteration",
                    hit + " — iteration order is implementation-defined and "
                    "must not feed exported/row/CSV/hash order; iterate a "
                    "sorted copy or add "
                    "lint:allow(unordered-iteration: <why order-independent>)",
                )
            )
    return out


def check_raw_rng(path: str, lines: list[str]) -> list[Violation]:
    if re.search(r"(^|/)util/rng\.(hpp|cpp)$", _posix(path)):
        return []
    pattern = re.compile(
        r"\bstd\s*::\s*(rand|random_device|mt19937(?:_64)?)\b|(?<![\w:])srand\s*\("
    )
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if pattern.search(stripped) and not _allowed(lines, idx, "raw-rng"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "raw-rng",
                    "raw standard-library RNG outside util/rng — all "
                    "randomness must use the counter-derived util:: streams "
                    "(util::Xoshiro256, smc::deriveSeed) or results stop "
                    "being bit-reproducible per seed",
                )
            )
    return out


def check_raw_thread(path: str, lines: list[str]) -> list[Violation]:
    if re.search(r"(^|/)engine/thread_pool\.(hpp|cpp)$", _posix(path)):
        return []
    # std::thread followed by :: is a static-member access
    # (hardware_concurrency), not a thread construction.
    pattern = re.compile(r"\bstd\s*::\s*j?thread\b(?!\s*::)")
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if pattern.search(stripped) and not _allowed(lines, idx, "raw-thread"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "raw-thread",
                    "raw std::thread outside engine/thread_pool.cpp — "
                    "parallel work must ride engine::ThreadPool (pre-assigned "
                    "result slots keep it deterministic and TSan-covered)",
                )
            )
    return out


def check_atomic_float(path: str, lines: list[str]) -> list[Violation]:
    pattern = re.compile(
        r"\bstd\s*::\s*atomic\s*<\s*(?:double|float|long\s+double)\s*>"
    )
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if pattern.search(stripped) and not _allowed(lines, idx, "atomic-float"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "atomic-float",
                    "std::atomic floating-point accumulation orders additions "
                    "by scheduling — the la:: bitwise contract requires "
                    "sequential per-slot reductions (merge per-task partials "
                    "in index order instead)",
                )
            )
    return out


def check_byte_truth_mask(path: str, lines: list[str]) -> list[Violation]:
    """Flag std::vector<std::uint8_t> declarations in src/ outside la/.

    The exact stack's truth masks are packed la::BitVector; a fresh
    byte-per-state vector in checking code silently forks the
    representation (8x the memory, no word-parallel ops) and dodges the
    bit-identity tests that pin the packed kernels to the byte oracle.
    tests/ and bench/ keep byte vectors freely — they ARE the oracle.
    """
    posix = _posix(path)
    if not re.search(r"(^|/)src/", posix) or re.search(r"(^|/)src/la/", posix):
        return []
    pattern = re.compile(r"\bstd\s*::\s*vector\s*<\s*std\s*::\s*uint8_t\s*>")
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if pattern.search(stripped) and not _allowed(lines, idx, "byte-truth-mask"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "byte-truth-mask",
                    "std::vector<std::uint8_t> truth mask outside la/ — state "
                    "sets are packed la::BitVector (la/bit_vector.hpp); "
                    "convert at the boundary with fromBytes/toBytes, or add "
                    "lint:allow(byte-truth-mask: <why this is not a truth "
                    "mask>)",
                )
            )
    return out


def check_raw_wallclock(path: str, lines: list[str]) -> list[Violation]:
    """Flag raw wall-clock use in src/ outside src/util/ + src/obs/.

    obs::Span / the metrics registry are the sanctioned timing paths for
    library code; they keep every clock read behind the diagnostics-only
    boundary. benches and tests time whatever they like — the rule only
    applies to src/ paths.
    """
    posix = _posix(path)
    if not re.search(r"(^|/)src/", posix):
        return []
    if re.search(r"(^|/)src/(util|obs)/", posix):
        return []
    pattern = re.compile(
        r"\bstd\s*::\s*chrono\s*::\s*"
        r"(?:steady_clock|high_resolution_clock|system_clock)\b"
        r"|\butil\s*::\s*Stopwatch\b"
    )
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if pattern.search(stripped) and not _allowed(lines, idx, "raw-wallclock"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "raw-wallclock",
                    "raw wall-clock read outside src/util/ + src/obs/ — time "
                    "phases with obs::Span (or an obs:: histogram) so clock "
                    "reads stay diagnostics-only and cannot leak into "
                    "exported values or ordering",
                )
            )
    return out


_CLASS_RE = re.compile(r"\b(class|struct)\s+(?:MIMOSTAT_\w+(?:\([^)]*\))?\s+)?"
                       r"([A-Za-z_]\w*)[^;{]*\{")
_MUTEX_MEMBER_RE = re.compile(
    r"\b(?:util\s*::\s*Mutex|std\s*::\s*(?:recursive_|shared_|timed_)?mutex)\b"
    r"[^;(){}]*\b([A-Za-z_]\w*_)\s*;"
)
_MEMBER_RE = re.compile(r"\b([A-Za-z_]\w*_)\s*(?:;|=[^=][^;]*;|\{[^;]*\}\s*;)")
_EXEMPT_TYPE_RE = re.compile(
    r"\b(?:util\s*::\s*Mutex|util\s*::\s*CondVar|std\s*::\s*(?:recursive_|"
    r"shared_|timed_)?mutex|std\s*::\s*condition_variable(?:_any)?)\b"
)


def _class_regions(code: list[str]):
    """Yield (name, [(line_idx, depth1_text), ...]) for each class/struct body.

    Tracks braces to attribute lines to the innermost class and only report
    member declarations at class-body depth (not inside member functions).
    Heuristic, but unit-tested against the shapes this codebase uses.
    """
    stack = []  # (name_or_None, depth_at_entry)
    depth = 0
    bodies: dict[int, tuple[str, list]] = {}
    order: list[int] = []
    for idx, text in enumerate(code):
        pos = 0
        while pos < len(text):
            match = _CLASS_RE.search(text, pos)
            brace_at = text.find("{", pos)
            close_at = text.find("}", pos)
            events = [
                e
                for e in (
                    (match.start(), "class", match) if match else None,
                    (brace_at, "open", None) if brace_at != -1 else None,
                    (close_at, "close", None) if close_at != -1 else None,
                )
                if e is not None
            ]
            if not events:
                break
            events.sort(key=lambda e: e[0])
            at, kind, m = events[0]
            if kind == "class":
                depth += 1
                key = len(order)
                bodies[key] = (m.group(2), [])
                order.append(key)
                stack.append((key, depth))
                pos = m.end()
            elif kind == "open":
                depth += 1
                pos = at + 1
            else:
                if stack and stack[-1][1] == depth:
                    stack.pop()
                depth -= 1
                pos = at + 1
        if stack:
            key, class_depth = stack[-1]
            if depth == class_depth:
                bodies[key][1].append((idx, text))
    for key in order:
        yield bodies[key]


def check_guarded_by(path: str, lines: list[str]) -> list[Violation]:
    code = [_strip_comments_and_strings(l) for l in lines]
    out: list[Violation] = []
    for name, body in _class_regions(code):
        mutexes = set()
        for _, text in body:
            for match in _MUTEX_MEMBER_RE.finditer(text):
                mutexes.add(match.group(1))
        if not mutexes:
            continue
        for idx, text in body:
            # `return *member_;` in an inline accessor is not a declaration.
            if re.search(r"\breturn\b", text):
                continue
            match = _MEMBER_RE.search(text)
            if not match:
                continue
            member = match.group(1)
            if member in mutexes:
                continue
            if _EXEMPT_TYPE_RE.search(text):
                continue
            window = " ".join(t for i, t in body if idx - 1 <= i <= idx)
            if "MIMOSTAT_GUARDED_BY" in window or "MIMOSTAT_PT_GUARDED_BY" in window:
                continue
            if re.search(r"\bstatic\b|\bconstexpr\b|\bconst\s", text):
                continue
            if _allowed(lines, idx, "guarded-by"):
                continue
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "guarded-by",
                    f"member '{member}' of mutex-owning class '{name}' has no "
                    "MIMOSTAT_GUARDED_BY annotation — say which lock protects "
                    "it, or add lint:allow(guarded-by: <why lock-free is "
                    "safe>)",
                )
            )
    return out


def check_reduction_boundary(path: str, lines: list[str]) -> list[Violation]:
    """Flag quotient block-map access outside the reduction layers.

    src/reduce/ owns the quotient indexing, src/lump/ produces it, and
    src/mc/ consumes it through the checker; everything else maps between
    quotient and original indexing exclusively via reduce::liftStateValues /
    projectMask / projectVector. A `blockOf` read (or representative-table
    indexing) elsewhere hand-rolls that mapping and can silently return
    quotient-indexed vectors where original indexing is promised.
    tests/ and bench/ verify the mapping itself, so they stay free.
    """
    posix = _posix(path)
    if not re.search(r"(^|/)src/", posix):
        return []
    if re.search(r"(^|/)src/(reduce|lump|mc)/", posix):
        return []
    pattern = re.compile(r"\bblockOf\b|\brepresentative\s*\[")
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if pattern.search(stripped) and not _allowed(
            lines, idx, "reduction-boundary"
        ):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "reduction-boundary",
                    "quotient block-map access outside src/reduce/ + "
                    "src/lump/ + src/mc/ — map results with "
                    "reduce::liftStateValues / projectMask / projectVector, "
                    "or add lint:allow(reduction-boundary: <why this is not "
                    "quotient-index mapping>)",
                )
            )
    return out


def check_simd_intrinsics(path: str, lines: list[str]) -> list[Violation]:
    """Flag raw SIMD intrinsics / vendor intrinsic headers outside src/la/.

    The dispatch layer (src/la/simd*.{hpp,cpp}) is the only sanctioned home
    for vector intrinsics: kernels there are instantiated per target with
    per-TU ISA flags, runtime cpuid gating and bitwise assertions against
    the scalar reference. Intrinsics anywhere else — src/, tests/ and
    bench/ alike — bypass dispatch (so MIMOSTAT_SIMD / Exec::simd forcing
    lies) and the bit-identity tests; tests force paths through
    la::Exec::simd instead of hand-rolling vectors.
    """
    posix = _posix(path)
    if re.search(r"(^|/)src/la/", posix):
        return []
    include_re = re.compile(
        r"#\s*include\s*<(?:[a-z0-9]*mmintrin|x86intrin|x86gprintrin|"
        r"arm_neon|arm_sve|arm_acle)\.h>"
    )
    intrinsic_re = re.compile(
        r"\b_mm\d*_\w+\s*\(|\b__m(?:64|128|256|512)[di]?\b"
        r"|\bfloat(?:16|32|64)x\d+(?:x\d+)?_t\b"
        r"|\bv(?:ld[1-4]|st[1-4]|dup|mov|mul|add|sub|fma|mla|mls|abs|neg|"
        r"max|min|get|set|combine|ext|zip|uzp|trn|rev|cvt|reinterpret)"
        r"[a-z0-9_]*_[fsup](?:8|16|32|64)\b"
    )
    out = []
    for idx, line in enumerate(lines):
        stripped = _strip_comments_and_strings(line)
        if (include_re.search(stripped) or intrinsic_re.search(stripped)) \
                and not _allowed(lines, idx, "simd-intrinsics"):
            out.append(
                Violation(
                    path,
                    idx + 1,
                    "simd-intrinsics",
                    "raw SIMD intrinsics outside src/la/ — vector code "
                    "belongs behind the la:: dispatch layer "
                    "(src/la/simd*.cpp: per-target ISA flags, cpuid gating, "
                    "bitwise tests vs the scalar reference); force a path "
                    "with la::Exec::simd / MIMOSTAT_SIMD instead, or add "
                    "lint:allow(simd-intrinsics: <why dispatch cannot "
                    "serve this>)",
                )
            )
    return out


RULES = {
    "unordered-iteration": check_unordered_iteration,
    "raw-rng": check_raw_rng,
    "raw-thread": check_raw_thread,
    "atomic-float": check_atomic_float,
    "byte-truth-mask": check_byte_truth_mask,
    "guarded-by": check_guarded_by,
    "raw-wallclock": check_raw_wallclock,
    "reduction-boundary": check_reduction_boundary,
    "simd-intrinsics": check_simd_intrinsics,
}


def check_source(text: str, path: str) -> list[Violation]:
    """Run every rule over one translation unit's text (the unit-test API)."""
    lines = text.splitlines()
    violations: list[Violation] = []
    for rule in RULES.values():
        violations.extend(rule(path, lines))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def iter_files(root: str, paths: list[str]) -> list[str]:
    files: list[str] = []
    targets = paths if paths else [os.path.join(root, d) for d in DEFAULT_SCAN_DIRS]
    for target in targets:
        if os.path.isfile(target):
            files.append(target)
            continue
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = [d for d in dirnames if d not in ("build", ".git")]
            for fname in sorted(filenames):
                if fname.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, fname))
    return sorted(set(files))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", help="files/dirs to scan "
                        "(default: src tools tests bench examples under --root)")
    parser.add_argument("--root", default=".", help="repository root")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_name in RULES:
            print(rule_name)
        return 0

    all_violations: list[Violation] = []
    files = iter_files(args.root, args.paths)
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError as err:
            print(f"check_invariants: cannot read {path}: {err}",
                  file=sys.stderr)
            return 2
        rel = os.path.relpath(path, args.root)
        all_violations.extend(check_source(text, rel))

    if all_violations:
        for violation in all_violations:
            print(violation)
        print(
            f"\ncheck_invariants: {len(all_violations)} violation(s) in "
            f"{len(files)} file(s); suppress a deliberate use with "
            "// lint:allow(<rule>: <reason>)"
        )
        return 1
    print(f"check_invariants: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
