#!/usr/bin/env python3
"""Unit tests for the determinism/concurrency linter's rules engine.

Feeds known-bad and known-good C++ snippets to check_invariants.check_source
and asserts exactly which rules fire on which lines. Registered as the
`lint_selftest` ctest so a rule regression (a rule going silent, or a fixed
false positive coming back) fails the suite, not just CI.

Run directly: python3 tools/lint/lint_selftest.py
"""

from __future__ import annotations

import os
import sys
import textwrap
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_invariants  # noqa: E402


def run(source: str, path: str = "src/fake/file.cpp"):
    """check_source on a dedented snippet; returns [(line, rule), ...]."""
    violations = check_invariants.check_source(textwrap.dedent(source), path)
    return [(v.line, v.rule) for v in violations]


def rules(source: str, path: str = "src/fake/file.cpp"):
    return sorted({rule for _, rule in run(source, path)})


class UnorderedIterationTest(unittest.TestCase):
    def test_range_for_over_declared_unordered_map(self):
        src = """\
        #include <unordered_map>
        void f() {
          std::unordered_map<int, double> weights;
          for (const auto& [k, v] : weights) emit(k, v);
        }
        """
        self.assertEqual(run(src), [(4, "unordered-iteration")])

    def test_range_for_over_unordered_set_member(self):
        src = """\
        struct S {
          std::unordered_set<int> seen_;
          void dump() {
            for (const auto x : seen_) print(x);
          }
        };
        """
        self.assertEqual(rules(src), ["unordered-iteration"])

    def test_begin_iterator_loop_flagged(self):
        src = """\
        std::unordered_map<int, int> memo;
        for (auto it = memo.begin(); it != memo.end(); ++it) use(*it);
        """
        self.assertEqual(rules(src), ["unordered-iteration"])

    def test_find_against_end_is_not_iteration(self):
        # The .end() comparison in a find-pattern must NOT fire (the
        # bdd/manager.cpp false positive this rule was tuned against).
        src = """\
        std::unordered_map<int, int> cache;
        if (const auto it = cache.find(key); it != cache.end()) return it->second;
        """
        self.assertEqual(run(src), [])

    def test_alias_declared_container(self):
        src = """\
        using SigMap = std::unordered_map<std::uint32_t, double>;
        void f() {
          SigMap sig;
          for (const auto& [b, p] : sig) acc += p;
        }
        """
        self.assertEqual(rules(src), ["unordered-iteration"])

    def test_allow_comment_suppresses(self):
        src = """\
        std::unordered_set<int> vars;
        // lint:allow(unordered-iteration: copied out and immediately sorted)
        std::vector<int> sorted(vars.begin(), vars.end());
        """
        self.assertEqual(run(src), [])

    def test_ordered_map_is_fine(self):
        src = """\
        std::map<int, int> ordered;
        for (const auto& [k, v] : ordered) emit(k, v);
        """
        self.assertEqual(run(src), [])

    def test_mention_in_comment_or_string_ignored(self):
        src = """\
        // for (auto& x : std::unordered_map<int,int>{}) — docs only
        const char* msg = "for (x : unordered_map)";
        """
        self.assertEqual(run(src), [])


class RawRngTest(unittest.TestCase):
    def test_std_rand_flagged(self):
        self.assertEqual(rules("int x = std::rand();"), ["raw-rng"])

    def test_random_device_flagged(self):
        self.assertEqual(rules("std::random_device rd;"), ["raw-rng"])

    def test_mt19937_flagged(self):
        self.assertEqual(rules("std::mt19937_64 gen(42);"), ["raw-rng"])

    def test_srand_flagged(self):
        self.assertEqual(rules("srand(7);"), ["raw-rng"])

    def test_allowed_inside_util_rng(self):
        # Path scoping: util/rng.{hpp,cpp} is the sanctioned home.
        src = "std::random_device rd;"
        self.assertEqual(run(src, path="src/util/rng.cpp"), [])
        self.assertEqual(run(src, path="src/util/rng.hpp"), [])
        self.assertEqual(rules(src, path="src/util/rng_test.cpp"), ["raw-rng"])

    def test_allow_comment_suppresses(self):
        src = """\
        // lint:allow(raw-rng: seeding doc example only)
        std::mt19937 gen;
        """
        self.assertEqual(run(src), [])


class RawThreadTest(unittest.TestCase):
    def test_std_thread_flagged(self):
        self.assertEqual(rules("std::thread t(work);"), ["raw-thread"])

    def test_jthread_flagged(self):
        self.assertEqual(rules("std::jthread t(work);"), ["raw-thread"])

    def test_vector_of_threads_flagged(self):
        self.assertEqual(rules("std::vector<std::thread> workers;"),
                         ["raw-thread"])

    def test_hardware_concurrency_is_fine(self):
        src = "const unsigned n = std::thread::hardware_concurrency();"
        self.assertEqual(run(src), [])

    def test_allowed_inside_thread_pool(self):
        src = "std::vector<std::thread> workers_;"
        self.assertEqual(run(src, path="src/engine/thread_pool.cpp"), [])
        self.assertEqual(run(src, path="src/engine/thread_pool.hpp"), [])

    def test_allow_comment_suppresses(self):
        src = """\
        // lint:allow(raw-thread: stress test drives clients concurrently)
        std::thread t([&] { eng.analyze(req); });
        """
        self.assertEqual(run(src), [])


class AtomicFloatTest(unittest.TestCase):
    def test_atomic_double_flagged(self):
        self.assertEqual(rules("std::atomic<double> sum{0.0};"),
                         ["atomic-float"])

    def test_atomic_float_flagged(self):
        self.assertEqual(rules("std::atomic<float> acc;"), ["atomic-float"])

    def test_atomic_long_double_flagged(self):
        self.assertEqual(rules("std::atomic<long double> acc;"),
                         ["atomic-float"])

    def test_atomic_integer_is_fine(self):
        src = """\
        std::atomic<std::uint64_t> counter{0};
        std::atomic<bool> flag{false};
        """
        self.assertEqual(run(src), [])


class ByteTruthMaskTest(unittest.TestCase):
    def test_byte_vector_in_src_flagged(self):
        src = "std::vector<std::uint8_t> phi(n, 1);"
        self.assertEqual(rules(src), ["byte-truth-mask"])

    def test_spaced_template_args_flagged(self):
        src = "const std::vector< std::uint8_t > mask = d.evalAtom(m, a);"
        self.assertEqual(rules(src), ["byte-truth-mask"])

    def test_la_is_the_sanctioned_home(self):
        # The packed representation's own byte bridge lives in la/.
        src = "std::vector<std::uint8_t> bytes(numBits_, 0);"
        self.assertEqual(run(src, path="src/la/bit_vector.cpp"), [])
        self.assertEqual(run(src, path="src/la/bit_vector.hpp"), [])

    def test_tests_and_bench_keep_byte_oracles(self):
        # tests/ and bench/ ARE the byte-mask oracle; only src/ is scoped.
        src = "std::vector<std::uint8_t> legacy(n, 1);"
        self.assertEqual(run(src, path="tests/mc_bounded_test.cpp"), [])
        self.assertEqual(run(src, path="bench/la.cpp"), [])

    def test_other_byte_vectors_not_flagged(self):
        # Only std::uint8_t element types; raw buffers of other widths are
        # out of scope.
        src = """\
        std::vector<std::uint32_t> cols;
        std::vector<unsigned char> blob;
        """
        self.assertEqual(run(src), [])

    def test_mention_in_comment_ignored(self):
        src = "// replaced the std::vector<std::uint8_t> masks with BitVector"
        self.assertEqual(run(src), [])

    def test_allow_comment_suppresses(self):
        src = """\
        // lint:allow(byte-truth-mask: wire-format byte payload, not a mask)
        std::vector<std::uint8_t> packet(header.size());
        """
        self.assertEqual(run(src), [])


class GuardedByTest(unittest.TestCase):
    def test_unannotated_member_in_mutex_owning_class(self):
        src = """\
        class Cache {
         public:
          void put(int k);
         private:
          mutable util::Mutex mutex_;
          std::uint64_t hits_ = 0;
        };
        """
        self.assertEqual(run(src), [(6, "guarded-by")])

    def test_guarded_by_annotation_satisfies(self):
        src = """\
        class Cache {
         private:
          mutable util::Mutex mutex_;
          std::uint64_t hits_ MIMOSTAT_GUARDED_BY(mutex_) = 0;
        };
        """
        self.assertEqual(run(src), [])

    def test_annotation_on_previous_line_satisfies(self):
        src = """\
        class Cache {
         private:
          mutable util::Mutex mutex_;
          std::unordered_map<int, int> entries_
              MIMOSTAT_GUARDED_BY(mutex_);
        };
        """
        self.assertEqual(rules(src), [])

    def test_std_mutex_also_counts_as_owning(self):
        src = """\
        class Pool {
          std::mutex m_;
          bool stop_ = false;
        };
        """
        self.assertEqual(run(src), [(3, "guarded-by")])

    def test_condvar_member_exempt(self):
        src = """\
        class Pool {
          util::Mutex mutex_;
          util::CondVar wake_;
          std::condition_variable cv_;
        };
        """
        self.assertEqual(run(src), [])

    def test_const_and_static_members_exempt(self):
        src = """\
        class Cache {
          util::Mutex mutex_;
          const std::size_t maxEntries_;
          static constexpr int kLimit_ = 4;
        };
        """
        self.assertEqual(run(src), [])

    def test_class_without_mutex_not_checked(self):
        src = """\
        class Plain {
          std::uint64_t hits_ = 0;
          double value_ = 0.0;
        };
        """
        self.assertEqual(run(src), [])

    def test_member_function_locals_not_flagged(self):
        # Declarations inside member function bodies are not class members.
        src = """\
        class Cache {
          util::Mutex mutex_;
          int size_ MIMOSTAT_GUARDED_BY(mutex_) = 0;
          void touch() {
            int local_ = 3;
            use(local_);
          }
        };
        """
        self.assertEqual(run(src), [])

    def test_inline_accessor_return_not_flagged(self):
        # The engine.hpp false positive: `return *propertyCache_;`.
        src = """\
        class Engine {
          util::Mutex mutex_;
          int table_ MIMOSTAT_GUARDED_BY(mutex_) = 0;
          Cache& cache() { return *cache_; }
        };
        """
        self.assertEqual(run(src), [])

    def test_allow_comment_suppresses(self):
        src = """\
        class Pool {
          util::Mutex mutex_;
          /// lint:allow(guarded-by: immutable after construction)
          std::vector<int> table_;
        };
        """
        self.assertEqual(run(src), [])


class RawWallclockTest(unittest.TestCase):
    def test_steady_clock_in_src_flagged(self):
        src = "const auto t0 = std::chrono::steady_clock::now();"
        self.assertEqual(rules(src), ["raw-wallclock"])

    def test_system_and_high_resolution_clocks_flagged(self):
        src = """\
        auto a = std::chrono::system_clock::now();
        auto b = std::chrono::high_resolution_clock::now();
        """
        self.assertEqual(run(src),
                         [(1, "raw-wallclock"), (2, "raw-wallclock")])

    def test_stopwatch_in_src_flagged(self):
        self.assertEqual(rules("util::Stopwatch timer;"), ["raw-wallclock"])

    def test_util_and_obs_are_the_sanctioned_homes(self):
        src = "const auto t0 = std::chrono::steady_clock::now();"
        self.assertEqual(run(src, path="src/util/timer.hpp"), [])
        self.assertEqual(run(src, path="src/obs/clock.hpp"), [])
        self.assertEqual(run(src, path="src/obs/trace.cpp"), [])

    def test_tests_and_bench_time_freely(self):
        # Only src/ is scoped; harness timing is not a determinism hazard.
        src = "util::Stopwatch timer;"
        self.assertEqual(run(src, path="tests/engine_test.cpp"), [])
        self.assertEqual(run(src, path="bench/table3_viterbi_steady.cpp"), [])

    def test_chrono_durations_are_fine(self):
        # Duration arithmetic / literals don't read a clock.
        src = """\
        std::chrono::seconds ttl{0};
        cv.wait_for(lock, std::chrono::milliseconds(5));
        """
        self.assertEqual(run(src), [])

    def test_mention_in_comment_ignored(self):
        src = "// replaced std::chrono::steady_clock with obs::Span"
        self.assertEqual(run(src), [])

    def test_allow_comment_suppresses(self):
        src = """\
        // lint:allow(raw-wallclock: TTL eviction needs a real clock)
        auto now = std::chrono::steady_clock::now();
        """
        self.assertEqual(run(src), [])


class ReductionBoundaryTest(unittest.TestCase):
    def test_block_map_read_in_engine_flagged(self):
        src = "values[s] = blockValues[info.blockOf[s]];"
        self.assertEqual(rules(src, path="src/engine/engine.cpp"),
                         ["reduction-boundary"])

    def test_representative_indexing_flagged(self):
        src = "const auto rep = info.representative[b];"
        self.assertEqual(rules(src, path="src/sweep/runner.cpp"),
                         ["reduction-boundary"])

    def test_reduce_lump_mc_own_the_indexing(self):
        src = "lifted[s] = blockValues[info.blockOf[s]];"
        self.assertEqual(run(src, path="src/reduce/reduce.cpp"), [])
        self.assertEqual(run(src, path="src/lump/bisim.cpp"), [])
        self.assertEqual(run(src, path="src/mc/checker.cpp"), [])

    def test_tests_and_bench_verify_the_mapping_freely(self):
        src = "EXPECT_EQ(info.blockOf[0], info.blockOf[1]);"
        self.assertEqual(run(src, path="tests/reduce_test.cpp"), [])
        self.assertEqual(run(src, path="bench/reduce.cpp"), [])

    def test_unrelated_representative_identifier_ignored(self):
        # Plain uses of the word (no table indexing) are not block-map math.
        src = "std::string representative = pickRepresentative();"
        self.assertEqual(run(src, path="src/engine/engine.cpp"), [])

    def test_mention_in_comment_ignored(self):
        src = "// maps via info.blockOf, see reduce::liftStateValues"
        self.assertEqual(run(src, path="src/engine/engine.cpp"), [])

    def test_allow_comment_suppresses(self):
        src = """\
        // lint:allow(reduction-boundary: builds the partition handed to lump::)
        blockOf[s] = it->second;
        """
        self.assertEqual(run(src, path="src/core/reduction.cpp"), [])


class EngineTest(unittest.TestCase):
    def test_allow_comment_is_rule_specific(self):
        # An allow for one rule must not blanket-suppress another.
        src = """\
        // lint:allow(unordered-iteration: wrong rule)
        std::thread t(work);
        """
        self.assertEqual(rules(src), ["raw-thread"])

    def test_violations_sorted_by_line(self):
        src = """\
        std::mt19937 gen;
        std::thread t(work);
        std::atomic<double> acc;
        """
        self.assertEqual(run(src),
                         [(1, "raw-rng"), (2, "raw-thread"),
                          (3, "atomic-float")])

    def test_list_rules_names_every_rule(self):
        expected = {"unordered-iteration", "raw-rng", "raw-thread",
                    "atomic-float", "byte-truth-mask", "guarded-by",
                    "raw-wallclock", "reduction-boundary",
                    "simd-intrinsics"}
        self.assertEqual(set(check_invariants.RULES), expected)

    def test_clean_source_exits_zero_via_main(self):
        self.assertEqual(check_invariants.main(["--list-rules"]), 0)


class SimdIntrinsicsTest(unittest.TestCase):
    def test_immintrin_include_flagged_outside_la(self):
        src = """\
        #include <immintrin.h>
        """
        self.assertEqual(run(src, "src/mc/fast.cpp"),
                         [(1, "simd-intrinsics")])

    def test_arm_neon_include_flagged_in_tests(self):
        # tests/ and bench/ are banned too: they must force paths through
        # la::Exec::simd, not hand-roll vectors outside the dispatch layer.
        src = """\
        #include <arm_neon.h>
        """
        self.assertEqual(run(src, "tests/fast_test.cpp"),
                         [(1, "simd-intrinsics")])

    def test_avx_intrinsic_call_and_vector_type_flagged(self):
        src = """\
        void f(const double* p) {
          __m256d acc = _mm256_setzero_pd();
          acc = _mm256_add_pd(acc, _mm256_loadu_pd(p));
        }
        """
        self.assertEqual(rules(src, "bench/fast.cpp"), ["simd-intrinsics"])

    def test_neon_intrinsic_call_flagged(self):
        src = """\
        float64x2_t v = vld1q_f64(p);
        v = vfmaq_f64(v, v, v);
        """
        self.assertEqual(run(src, "src/engine/hot.cpp"),
                         [(1, "simd-intrinsics"), (2, "simd-intrinsics")])

    def test_src_la_is_exempt(self):
        src = """\
        #include <immintrin.h>
        __m256d acc = _mm256_setzero_pd();
        """
        self.assertEqual(run(src, "src/la/simd_avx2.cpp"), [])

    def test_allow_comment_suppresses(self):
        src = """\
        // lint:allow(simd-intrinsics: ffi shim mirrors the vendor ABI)
        __m128d raw = _mm_setzero_pd();
        """
        self.assertEqual(run(src, "src/util/ffi.cpp"), [])

    def test_mention_in_comment_or_string_is_clean(self):
        src = """\
        // dispatch picks _mm256_mul_pd inside src/la, never here
        const char* doc = "see _mm_add_pd and <immintrin.h>";
        """
        self.assertEqual(run(src, "src/obs/doc.cpp"), [])

    def test_plain_identifiers_do_not_false_positive(self):
        src = """\
        double vadd_total = values_f64 + vset_count;
        int m256 = mm_width(3);
        """
        self.assertEqual(run(src, "src/mc/clean.cpp"), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
