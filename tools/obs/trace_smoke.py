#!/usr/bin/env python3
"""End-to-end smoke test for the obs:: trace export path.

Runs a bench driver with `--trace <file>`, then re-parses the emitted
Chrome trace-event JSON with a real JSON parser and validates the
invariants Perfetto / chrome://tracing rely on:

  * top-level object with a "traceEvents" array and "displayTimeUnit"
  * every event is a complete ("ph": "X") event with name/pid/tid,
    numeric ts/dur, dur >= 0
  * span ids are unique and every non-zero parent id resolves to another
    event in the same trace (the span tree is closed)
  * a child span's [ts, ts+dur] interval nests inside its parent's,
    up to the writer's microsecond rounding
  * the expected root phase ("engine.analyze") is present

Registered as the `obs_smoke` ctest; CI's bench job runs the same flag on
the full-size drivers and uploads the trace as a workflow artifact.

Usage: trace_smoke.py --bench <driver> --out <trace.json> [bench args...]
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys


def fail(message: str) -> int:
    print(f"trace_smoke: FAIL: {message}", file=sys.stderr)
    return 1


def validate(trace: dict) -> int:
    if not isinstance(trace, dict):
        return fail("top level is not a JSON object")
    if "displayTimeUnit" not in trace:
        return fail("missing displayTimeUnit")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return fail("traceEvents is missing or not an array")
    if not events:
        return fail("trace is empty — the tracer never recorded a span")

    by_id: dict[int, dict] = {}
    for i, event in enumerate(events):
        for key in ("name", "ph", "pid", "tid", "ts", "dur", "args"):
            if key not in event:
                return fail(f"event #{i} missing '{key}': {event}")
        if event["ph"] != "X":
            return fail(f"event #{i} is not a complete event: ph={event['ph']}")
        if not isinstance(event["ts"], (int, float)):
            return fail(f"event #{i} ts is not numeric")
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            return fail(f"event #{i} has negative/missing dur: {event}")
        span_id = event["args"].get("id")
        if not isinstance(span_id, int) or span_id <= 0:
            return fail(f"event #{i} has no positive span id: {event}")
        if span_id in by_id:
            return fail(f"duplicate span id {span_id}")
        by_id[span_id] = event

    for event in events:
        parent = event["args"].get("parent", 0)
        if parent == 0:
            continue
        if parent not in by_id:
            return fail(f"span {event['args']['id']} ('{event['name']}') has "
                        f"dangling parent {parent}")
        outer = by_id[parent]
        # The writer rounds ts/dur to microseconds independently, so allow
        # 1us of slack per endpoint.
        if event["ts"] + 1e-3 < outer["ts"] or \
           event["ts"] + event["dur"] > outer["ts"] + outer["dur"] + 2e-3:
            return fail(
                f"span {event['args']['id']} ('{event['name']}') "
                f"[{event['ts']}, {event['ts'] + event['dur']}] does not "
                f"nest inside parent '{outer['name']}' "
                f"[{outer['ts']}, {outer['ts'] + outer['dur']}]")

    names = {event["name"] for event in events}
    if "engine.analyze" not in names:
        return fail(f"no engine.analyze root span; got: {sorted(names)}")

    roots = sum(1 for e in events if e["args"].get("parent", 0) == 0)
    print(f"trace_smoke: OK — {len(events)} spans, {roots} root(s), "
          f"{len(names)} distinct phases: {', '.join(sorted(names))}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--bench", required=True,
                        help="bench driver binary supporting --trace")
    parser.add_argument("--out", required=True, help="trace JSON output path")
    parser.add_argument("extra", nargs="*",
                        help="extra args forwarded to the driver")
    args = parser.parse_args()

    cmd = [args.bench, "--trace", args.out, *args.extra]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        print(proc.stdout, file=sys.stderr)
        return fail(f"driver exited {proc.returncode}: {' '.join(cmd)}")

    try:
        with open(args.out, encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"cannot parse {args.out}: {err}")
    return validate(trace)


if __name__ == "__main__":
    sys.exit(main())
