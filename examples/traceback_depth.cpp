// Choosing the traceback depth L with a formal guarantee instead of the
// "L = 4m..5m" folklore: find the smallest L whose non-convergence
// probability (C1) is below a target, using one convergence model and the
// nc<k> reward family (Figure 2's data, used as a design procedure).
//
// The L study is written as a declarative sweep::SweepSpec — the whole
// design space is the ParamSpace, each point binds one R{"ncL"}=?[I=500]
// property. The runner coalesces all fifteen points into ONE engine
// request sharing a single 500-step transient sweep (one matrix-vector
// pass instead of fifteen), and the result comes back as a tidy table
// ready for CSV/JSON export.
#include <cstdio>
#include <memory>
#include <string>

#include "sweep/runner.hpp"
#include "viterbi/model_convergence.hpp"

int main() {
  using namespace mimostat;

  const double target = 1e-4;  // tolerated non-convergence probability
  std::printf("Design goal: P(non-converging traceback) <= %.0e\n\n", target);

  viterbi::ViterbiParams params;
  params.snrDb = 8.0;
  const int maxL = 16;
  const auto model = std::make_shared<viterbi::ConvergenceViterbiModel>(
      params, maxL + 2);

  sweep::SweepSpec spec("traceback_depth");
  spec.space.cross(sweep::Axis::ints("L", 2, maxL));
  spec.share(model);
  spec.properties = [](const sweep::Params& p) {
    return std::vector<std::string>{
        "R{\"nc" + std::to_string(p.getInt("L")) + "\"}=? [ I=500 ]"};
  };

  engine::AnalysisEngine engine;
  const sweep::Runner runner(engine);
  const sweep::ResultTable table = runner.run(spec);

  std::printf("%-6s %-14s %-10s\n", "L", "C1", "meets goal");
  int chosen = -1;
  for (const auto& row : table.rows()) {
    const auto L = static_cast<int>(std::get<std::int64_t>(row.params[0]));
    const bool ok = row.value <= target;
    std::printf("%-6d %-14.6e %-10s\n", L, row.value, ok ? "yes" : "no");
    if (ok && chosen < 0) chosen = L;
  }
  std::printf("(%zu sweep points answered from %s sweep)\n", table.size(),
              table.rows().front().batched ? "one batched" : "per-call");

  if (chosen >= 0) {
    std::printf("\nSmallest L meeting the goal: %d (heuristic would say "
                "4m..5m = 4..5 for m=1)\n",
                chosen);
    std::printf("Every decoder register the extra stages cost is now "
                "justified by a checked guarantee, not folklore.\n");
  } else {
    std::printf("\nNo L <= %d meets the goal at this SNR.\n", maxL);
  }
  return 0;
}
