// Choosing the traceback depth L with a formal guarantee instead of the
// "L = 4m..5m" folklore: find the smallest L whose non-convergence
// probability (C1) is below a target, using one convergence model and the
// nc<k> reward family (Figure 2's data, used as a design procedure).
#include <cstdio>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "viterbi/model_convergence.hpp"

int main() {
  using namespace mimostat;

  const double target = 1e-4;  // tolerated non-convergence probability
  std::printf("Design goal: P(non-converging traceback) <= %.0e\n\n", target);

  viterbi::ViterbiParams params;
  params.snrDb = 8.0;
  const int maxL = 16;
  const viterbi::ConvergenceViterbiModel model(params, maxL + 2);
  const auto build = dtmc::buildExplicit(model);
  const mc::Checker checker(build.dtmc, model);

  std::printf("%-6s %-14s %-10s\n", "L", "C1", "meets goal");
  int chosen = -1;
  for (int L = 2; L <= maxL; ++L) {
    const std::string prop = "R{\"nc" + std::to_string(L) + "\"}=? [ I=500 ]";
    const double c1 = checker.check(prop).value;
    const bool ok = c1 <= target;
    std::printf("%-6d %-14.6e %-10s\n", L, c1, ok ? "yes" : "no");
    if (ok && chosen < 0) chosen = L;
  }

  if (chosen >= 0) {
    std::printf("\nSmallest L meeting the goal: %d (heuristic would say "
                "4m..5m = 4..5 for m=1)\n",
                chosen);
    std::printf("Every decoder register the extra stages cost is now "
                "justified by a checked guarantee, not folklore.\n");
  } else {
    std::printf("\nNo L <= %d meets the goal at this SNR.\n", maxL);
  }
  return 0;
}
