// Choosing the traceback depth L with a formal guarantee instead of the
// "L = 4m..5m" folklore: find the smallest L whose non-convergence
// probability (C1) is below a target, using one convergence model and the
// nc<k> reward family (Figure 2's data, used as a design procedure).
//
// All fifteen R{"ncL"}=?[I=500] queries go into ONE engine request: they
// share a single 500-step transient sweep (one matrix-vector pass instead
// of fifteen), the paper's Table-style sweep made cheap by design.
#include <cstdio>
#include <string>

#include "engine/engine.hpp"
#include "viterbi/model_convergence.hpp"

int main() {
  using namespace mimostat;

  const double target = 1e-4;  // tolerated non-convergence probability
  std::printf("Design goal: P(non-converging traceback) <= %.0e\n\n", target);

  viterbi::ViterbiParams params;
  params.snrDb = 8.0;
  const int maxL = 16;
  const viterbi::ConvergenceViterbiModel model(params, maxL + 2);

  engine::AnalysisEngine engine;
  engine::AnalysisRequest request;
  request.model = &model;
  for (int L = 2; L <= maxL; ++L) {
    request.properties.push_back("R{\"nc" + std::to_string(L) +
                                 "\"}=? [ I=500 ]");
  }
  const engine::AnalysisResponse response = engine.analyze(request);

  std::printf("%-6s %-14s %-10s\n", "L", "C1", "meets goal");
  int chosen = -1;
  for (int L = 2; L <= maxL; ++L) {
    const auto& result = response.results[static_cast<std::size_t>(L - 2)];
    const bool ok = result.value <= target;
    std::printf("%-6d %-14.6e %-10s\n", L, result.value, ok ? "yes" : "no");
    if (ok && chosen < 0) chosen = L;
  }
  std::printf("(%zu properties answered from %s sweep in %.3fs)\n",
              response.results.size(),
              response.results[0].batched ? "one batched" : "per-call",
              response.totalSeconds);

  if (chosen >= 0) {
    std::printf("\nSmallest L meeting the goal: %d (heuristic would say "
                "4m..5m = 4..5 for m=1)\n",
                chosen);
    std::printf("Every decoder register the extra stages cost is now "
                "justified by a checked guarantee, not folklore.\n");
  } else {
    std::printf("\nNo L <= %d meets the goal at this SNR.\n", maxL);
  }
  return 0;
}
