// MIMO ML detection with symmetry reduction: build the detector DTMC both
// ways, show the orbit-count reduction, verify the symmetry argument, and
// read the BER off the quotient.
#include <cstdio>

#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "lump/symmetry.hpp"
#include "mimo/model.hpp"
#include "mimo/sim.hpp"

int main() {
  using namespace mimostat;

  mimo::MimoParams params = mimo::mimo1x2Params();
  std::printf("1x%d BPSK ML detector at %.0f dB, %d-level h / %d-level y "
              "quantizers\n\n",
              params.nr, params.snrDb, params.hLevels, params.yLevels);

  const mimo::MimoDetectorModel model(params);
  const lump::SymmetryReducedModel reduced(model, model.symmetryBlocks());

  // The full model is buildable at this size — do both for the comparison.
  const auto full = dtmc::buildExplicit(model);
  const auto quotient = dtmc::buildExplicit(reduced);
  std::printf("Full model M:    %8u states\n", full.dtmc.numStates());
  std::printf("Quotient M_R:    %8u states (factor %.1f)\n",
              quotient.dtmc.numStates(),
              static_cast<double>(full.dtmc.numStates()) /
                  quotient.dtmc.numStates());

  // The symmetry is an assumption — verify it before trusting the quotient.
  std::printf("Block-permutation symmetry verified: %s\n",
              reduced.verifySymmetry({"error"}, 500, 9) ? "yes" : "NO");

  engine::AnalysisRequest request;
  request.model = &reduced;
  request.properties = {"R=? [ I=10 ]"};
  const double ber =
      engine::defaultEngine().analyze(request).results[0].value;
  std::printf("\nModel-checked BER: %.6g\n", ber);

  const auto analog = mimo::simulateAnalog(params, 500'000, 3);
  const auto quantized = mimo::simulateQuantized(params, 500'000, 3);
  std::printf("Simulated BER:     %.6g (quantized datapath)\n",
              quantized.bitErrors.estimate());
  std::printf("Analog-datapath BER: %.6g — the gap is the fixed-point "
              "quantization penalty\nthe paper's methodology is designed to "
              "quantify before committing to an RTL widths choice.\n",
              analog.bitErrors.estimate());
  return 0;
}
