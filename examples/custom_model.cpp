// Bring-your-own design: describe an RTL block in the PML guarded-command
// language (no C++ subclassing needed), check its performance metrics, and
// scale out with synchronous composition — the paper's methodology applied
// to a design the library has never seen.
//
// The design here: a serial link retry buffer. Each cycle a word arrives
// and is corrupted with probability pErr; corrupted words are retried up
// to R times before being dropped. We ask for the steady-state drop rate
// (a P2-style metric), the probability of a drop-free window (P1-style),
// and the expected cycles until the first drop (an R=?[F ...] query).
//
// The three designs (single lane, timed variant, 4-lane composition) are
// three AnalysisRequests answered concurrently by one engine.
#include <cmath>
#include <cstdio>

#include "dtmc/compose.hpp"
#include "engine/engine.hpp"
#include "pml/model.hpp"

namespace {

constexpr const char* kRetryBuffer = R"(
dtmc
const double pErr = 0.2;   // per-transfer corruption probability
const int R = 3;           // retry budget

module retry_buffer
  tries : [0..R] init 0;    // retries consumed by the in-flight word
  dropped : [0..1] init 0;  // this cycle's word was dropped

  // Transfer attempt with retries left: success clears the counter,
  // corruption consumes one retry.
  [] tries<R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=tries+1) & (dropped'=0);
  // Last attempt: corruption now drops the word.
  [] tries=R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=0) & (dropped'=1);
endmodule

rewards
  dropped=1 : 1;
endrewards

label "drop" = dropped=1;
)";

// Same design with a unit-per-cycle reward, for "cycles until first drop".
constexpr const char* kTimedRetryBuffer = R"(
dtmc
const double pErr = 0.2;
const int R = 3;
module retry_buffer
  tries : [0..R] init 0;
  dropped : [0..1] init 0;
  [] tries<R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=tries+1) & (dropped'=0);
  [] tries=R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=0) & (dropped'=1);
endmodule
rewards
  true : 1;
endrewards
label "drop" = dropped=1;
)";

}  // namespace

int main() {
  using namespace mimostat;

  const pml::PmlModel model(kRetryBuffer);
  const pml::PmlModel timed(kTimedRetryBuffer);
  const pml::PmlModel lane(kRetryBuffer);
  const dtmc::SynchronousProduct fourLanes({&lane, &lane, &lane, &lane});

  engine::AnalysisEngine engine;
  std::vector<engine::AnalysisRequest> requests(3);
  requests[0].model = &model;
  requests[0].properties = {"R=? [ I=200 ]", "P=? [ G<=100 !\"drop\" ]"};
  requests[1].model = &timed;
  requests[1].properties = {"R=? [ F \"drop\" ]"};
  requests[2].model = &fourLanes;
  requests[2].properties = {"R=? [ I=200 ]"};
  const auto responses = engine.analyzeAll(requests);

  std::printf("Retry-buffer model from PML source: %llu states, RI=%u\n\n",
              static_cast<unsigned long long>(responses[0].states),
              responses[0].reachabilityIterations);

  const double dropRate = responses[0].results[0].value;
  std::printf("Steady-state drop rate (P2-style):        %.6g\n", dropRate);
  std::printf("P(no drop in a 100-cycle window):         %.6g\n",
              responses[0].results[1].value);
  std::printf("Expected cycles until the first drop:     %.4g\n\n",
              responses[1].results[0].value);

  // Scale out: four independent lanes clocked together; the aggregate
  // reward is the expected number of lanes dropping per cycle.
  const double aggregate = responses[2].results[0].value;
  std::printf("4-lane composition: %llu states; expected drops/cycle %.6g "
              "(= 4x single lane: %s)\n",
              static_cast<unsigned long long>(responses[2].states), aggregate,
              std::abs(aggregate - 4.0 * dropRate) < 1e-9 ? "yes" : "NO");
  std::printf("\nThe whole pipeline — parser, builder, reductions, pCTL "
              "checker, engine — ran on a design\ndefined entirely in this "
              "file's string literals.\n");
  return 0;
}
