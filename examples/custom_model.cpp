// Bring-your-own design: describe an RTL block in the PML guarded-command
// language (no C++ subclassing needed), check its performance metrics, and
// scale out with synchronous composition — the paper's methodology applied
// to a design the library has never seen.
//
// The design here: a serial link retry buffer. Each cycle a word arrives
// and is corrupted with probability pErr; corrupted words are retried up
// to R times before being dropped. We ask for the steady-state drop rate
// (a P2-style metric), the probability of a drop-free window (P1-style),
// and the expected cycles until the first drop (an R=?[F ...] query).
#include <cstdio>

#include "core/analyzer.hpp"
#include "dtmc/compose.hpp"
#include "mc/checker.hpp"
#include "pml/model.hpp"

namespace {

constexpr const char* kRetryBuffer = R"(
dtmc
const double pErr = 0.2;   // per-transfer corruption probability
const int R = 3;           // retry budget

module retry_buffer
  tries : [0..R] init 0;    // retries consumed by the in-flight word
  dropped : [0..1] init 0;  // this cycle's word was dropped

  // Transfer attempt with retries left: success clears the counter,
  // corruption consumes one retry.
  [] tries<R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=tries+1) & (dropped'=0);
  // Last attempt: corruption now drops the word.
  [] tries=R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=0) & (dropped'=1);
endmodule

rewards
  dropped=1 : 1;
endrewards

label "drop" = dropped=1;
)";

}  // namespace

int main() {
  using namespace mimostat;

  const pml::PmlModel model(kRetryBuffer);
  const core::PerformanceAnalyzer analyzer(model);

  std::printf("Retry-buffer model from PML source: %u states, RI=%u\n\n",
              analyzer.dtmc().numStates(), analyzer.reachabilityIterations());

  const auto dropRate = analyzer.check("R=? [ I=200 ]");
  const auto window = analyzer.check("P=? [ G<=100 !\"drop\" ]");
  std::printf("Steady-state drop rate (P2-style):        %.6g\n",
              dropRate.value);
  std::printf("P(no drop in a 100-cycle window):         %.6g\n",
              window.value);

  // Expected cycles until the first drop, as a reachability reward with a
  // unit-per-cycle reward structure added on the C++ side via a tiny
  // wrapper model? No need — reuse the default reward trick: count cycles
  // by rewarding every state and stopping at the first drop.
  const pml::PmlModel timed(R"(
dtmc
const double pErr = 0.2;
const int R = 3;
module retry_buffer
  tries : [0..R] init 0;
  dropped : [0..1] init 0;
  [] tries<R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=tries+1) & (dropped'=0);
  [] tries=R -> 1-pErr : (tries'=0) & (dropped'=0)
              + pErr  : (tries'=0) & (dropped'=1);
endmodule
rewards
  true : 1;
endrewards
label "drop" = dropped=1;
)");
  const core::PerformanceAnalyzer timedAnalyzer(timed);
  const auto meanTime = timedAnalyzer.check("R=? [ F \"drop\" ]");
  std::printf("Expected cycles until the first drop:     %.4g\n\n",
              meanTime.value);

  // Scale out: four independent lanes clocked together; the aggregate
  // reward is the expected number of lanes dropping per cycle.
  const pml::PmlModel lane(kRetryBuffer);
  const dtmc::SynchronousProduct fourLanes({&lane, &lane, &lane, &lane});
  const core::PerformanceAnalyzer laneAnalyzer(fourLanes);
  const auto aggregate = laneAnalyzer.check("R=? [ I=200 ]");
  std::printf("4-lane composition: %u states; expected drops/cycle %.6g "
              "(= 4x single lane: %s)\n",
              laneAnalyzer.dtmc().numStates(), aggregate.value,
              std::abs(aggregate.value - 4.0 * dropRate.value) < 1e-9
                  ? "yes"
                  : "NO");
  std::printf("\nThe whole pipeline — parser, builder, reductions, pCTL "
              "checker — ran on a design\ndefined entirely in this file's "
              "string literal.\n");
  return 0;
}
