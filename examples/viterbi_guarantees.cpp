// Sweep the SNR of the Viterbi link and compare model-checked BER (exact)
// with Monte-Carlo estimates (sampling error shown as 95% intervals) — the
// paper's core argument in one plot-ready table.
//
// The six SNR points are six independent designs, so they go to the engine
// as six AnalysisRequests via analyzeAll(): builds and checks run
// concurrently on the engine's thread pool and the responses come back in
// request order.
#include <cstdio>
#include <memory>
#include <vector>

#include "engine/engine.hpp"
#include "viterbi/model_reduced.hpp"
#include "viterbi/sim.hpp"

int main() {
  using namespace mimostat;

  const std::vector<double> snrs{0.0, 2.0, 4.0, 6.0, 8.0, 10.0};

  std::vector<std::unique_ptr<viterbi::ReducedViterbiModel>> models;
  std::vector<engine::AnalysisRequest> requests;
  for (const double snr : snrs) {
    viterbi::ViterbiParams params;
    params.snrDb = snr;
    params.tracebackLength = 5;
    models.push_back(std::make_unique<viterbi::ReducedViterbiModel>(params));
    engine::AnalysisRequest request;
    request.model = models.back().get();
    request.properties = {"R=? [ I=500 ]"};
    requests.push_back(std::move(request));
  }

  engine::AnalysisEngine engine;
  const auto responses = engine.analyzeAll(requests);

  std::printf("# Viterbi BER vs SNR: exact model checking vs simulation\n");
  std::printf("%-8s %-14s %-14s %-26s %-8s\n", "SNR(dB)", "BER(model)",
              "BER(sim)", "sim 95% interval", "inside");

  for (std::size_t i = 0; i < snrs.size(); ++i) {
    const double exact = responses[i].results[0].value;

    viterbi::ViterbiParams params;
    params.snrDb = snrs[i];
    params.tracebackLength = 5;
    const auto sim = viterbi::simulate(params, 300'000,
                                       static_cast<std::uint64_t>(snrs[i]) + 1);
    const auto interval = sim.bitErrors.wilson(0.95);

    std::printf("%-8.1f %-14.6g %-14.6g [%.3e, %.3e]  %-8s\n", snrs[i], exact,
                sim.bitErrors.estimate(), interval.low, interval.high,
                interval.contains(exact) ? "yes" : "NO");
  }

  std::printf("\nNote how the interval width stagnates while the exact value "
              "keeps falling:\nat low BERs simulation needs quadratically "
              "more steps, the model checker does not.\n");
  return 0;
}
