// Sweep the SNR of the Viterbi link and compare model-checked BER (exact)
// with Monte-Carlo estimates (sampling error shown as 95% intervals) — the
// paper's core argument in one plot-ready table.
#include <cstdio>

#include "core/analyzer.hpp"
#include "viterbi/model_reduced.hpp"
#include "viterbi/sim.hpp"

int main() {
  using namespace mimostat;

  std::printf("# Viterbi BER vs SNR: exact model checking vs simulation\n");
  std::printf("%-8s %-14s %-14s %-26s %-8s\n", "SNR(dB)", "BER(model)",
              "BER(sim)", "sim 95% interval", "inside");

  for (const double snr : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    viterbi::ViterbiParams params;
    params.snrDb = snr;
    params.tracebackLength = 5;

    const viterbi::ReducedViterbiModel model(params);
    const core::PerformanceAnalyzer analyzer(model);
    const double exact = analyzer.check("R=? [ I=500 ]").value;

    const auto sim = viterbi::simulate(params, 300'000,
                                       static_cast<std::uint64_t>(snr) + 1);
    const auto interval = sim.bitErrors.wilson(0.95);

    std::printf("%-8.1f %-14.6g %-14.6g [%.3e, %.3e]  %-8s\n", snr, exact,
                sim.bitErrors.estimate(), interval.low, interval.high,
                interval.contains(exact) ? "yes" : "NO");
  }

  std::printf("\nNote how the interval width stagnates while the exact value "
              "keeps falling:\nat low BERs simulation needs quadratically "
              "more steps, the model checker does not.\n");
  return 0;
}
