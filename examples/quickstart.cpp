// Quickstart: statistical guarantees for a Viterbi decoder in ~30 lines.
//
// Builds the (reduced) DTMC model of a Viterbi decoder at 5 dB SNR and
// checks the paper's three error metrics — best case (P1), average case /
// BER (P2) and worst case (P3) — as pCTL properties.
#include <cstdio>

#include "core/analyzer.hpp"
#include "core/metrics.hpp"
#include "viterbi/model_reduced.hpp"

int main() {
  using namespace mimostat;

  // 1. Describe the design under analysis.
  viterbi::ViterbiParams params;
  params.tracebackLength = 6;  // L = 6 > 5m for memory m = 1
  params.snrDb = 5.0;

  // 2. Build the DTMC (the reduced, bisimilar model — same answers,
  //    far fewer states) and wrap it in an analyzer.
  const viterbi::ReducedViterbiModel model(params);
  const core::PerformanceAnalyzer analyzer(model);
  std::printf("Model: %u states, %llu transitions (RI=%u)\n",
              analyzer.dtmc().numStates(),
              static_cast<unsigned long long>(
                  analyzer.dtmc().numTransitions()),
              analyzer.reachabilityIterations());

  // 3. Check the paper's performance metrics over T = 300 clock cycles.
  const auto p1 = analyzer.check("P=? [ G<=300 !flag ]");
  const auto p2 = analyzer.check("R=? [ I=300 ]");
  std::printf("P1 (no error in 300 cycles):   %.3e\n", p1.value);
  std::printf("P2 (BER at steady state):      %.4f\n", p2.value);

  // The worst-case metric needs the error-counter variant of the model.
  auto p3Params = params;
  p3Params.withErrorCounter = true;
  const viterbi::ReducedViterbiModel p3Model(p3Params);
  const core::PerformanceAnalyzer p3Analyzer(p3Model);
  const auto p3 = p3Analyzer.check("P=? [ F<=300 errs>1 ]");
  std::printf("P3 (more than 1 error):        %.6f\n", p3.value);

  // 4. Assertions, PRISM-style: bounded properties return satisfaction.
  const auto guarantee = analyzer.check("R<=0.5 [ I=300 ]");
  std::printf("Guarantee \"BER <= 0.5\":        %s\n",
              guarantee.satisfied ? "HOLDS" : "VIOLATED");
  return 0;
}
