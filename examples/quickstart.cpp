// Quickstart: statistical guarantees for a Viterbi decoder in ~40 lines.
//
// One AnalysisRequest carries the model plus every pCTL property of
// interest; the AnalysisEngine builds the (reduced, bisimilar) DTMC once,
// batches the horizon-bounded queries into a single transient sweep, and
// answers them all in one response. A second request for the same design is
// served from the engine's model cache without rebuilding.
#include <cstdio>

#include "engine/engine.hpp"
#include "viterbi/model_reduced.hpp"

int main() {
  using namespace mimostat;

  // 1. Describe the design under analysis.
  viterbi::ViterbiParams params;
  params.tracebackLength = 6;  // L = 6 > 5m for memory m = 1
  params.snrDb = 5.0;
  const viterbi::ReducedViterbiModel model(params);

  // 2. Ask the engine for the paper's metrics over T = 300 clock cycles —
  //    best case (P1), average case / BER (P2) and a PRISM-style assertion —
  //    as one request.
  engine::AnalysisEngine engine;
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {
      "P=? [ G<=300 !flag ]",  // P1: no error in 300 cycles
      "R=? [ I=300 ]",         // P2: BER at steady state
      "R<=0.5 [ I=300 ]",      // guarantee: BER <= 0.5
  };
  const engine::AnalysisResponse response = engine.analyze(request);

  std::printf("Model: %llu states, %llu transitions (RI=%u, %s backend)\n",
              static_cast<unsigned long long>(response.states),
              static_cast<unsigned long long>(response.transitions),
              response.reachabilityIterations,
              engine::backendName(response.backend));
  std::printf("P1 (no error in 300 cycles):   %.3e\n",
              response.results[0].value);
  std::printf("P2 (BER at steady state):      %.4f\n",
              response.results[1].value);
  std::printf("Guarantee \"BER <= 0.5\":        %s\n",
              response.results[2].satisfied ? "HOLDS" : "VIOLATED");

  // 3. The worst-case metric needs the error-counter variant of the model —
  //    a separate design, so a separate request.
  auto p3Params = params;
  p3Params.withErrorCounter = true;
  const viterbi::ReducedViterbiModel p3Model(p3Params);
  engine::AnalysisRequest p3Request;
  p3Request.model = &p3Model;
  p3Request.properties = {"P=? [ F<=300 errs>1 ]"};
  const auto p3 = engine.analyze(p3Request);
  std::printf("P3 (more than 1 error):        %.6f\n", p3.results[0].value);

  // 4. Re-checking the first design at new horizons skips the DTMC build:
  //    the engine serves it from the model cache.
  engine::AnalysisRequest again;
  again.model = &model;
  again.properties = {"R=? [ I=600 ]", "R=? [ I=1000 ]"};
  again.options.modelKey = response.modelKey;  // skip even the probe
  const auto sweep = engine.analyze(again);
  std::printf("P2 at T=600/1000 (cache hit: %s): %.4f / %.4f\n",
              sweep.cacheHit ? "yes" : "no", sweep.results[0].value,
              sweep.results[1].value);
  return 0;
}
