#include <gtest/gtest.h>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "smc/smc.hpp"
#include "test_models.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

TEST(Smc, StateFormulaEvaluation) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  const auto layout = model.layout();
  const auto f = pctl::parseStateFormula("!\"one\" & s=0");
  EXPECT_TRUE(smc::evalStateFormula(model, layout, {0}, *f));
  EXPECT_FALSE(smc::evalStateFormula(model, layout, {1}, *f));
}

TEST(Smc, SamplerIsDeterministicPerSeed) {
  const auto model = test::randomModel(20, 3, 9);
  smc::PathSampler a(model, 42);
  smc::PathSampler b(model, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.step(), b.step());
  }
}

TEST(Smc, EstimateMatchesExactChecker) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1}).withRewards({0.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);

  smc::SmcOptions options;
  options.paths = 40'000;
  options.seed = 7;
  for (const auto* prop : {"P=? [ F<=5 \"one\" ]", "P=? [ G<=5 !\"one\" ]",
                           "P=? [ !\"one\" U<=8 \"one\" ]",
                           "P=? [ X \"one\" ]"}) {
    const double exact = checker.check(prop).value;
    const auto estimate = smc::estimateProperty(model, prop, options);
    const auto interval = estimate.satisfied.wilson(0.999);
    EXPECT_TRUE(interval.contains(exact))
        << prop << ": exact " << exact << " interval [" << interval.low
        << ", " << interval.high << "]";
  }
}

TEST(Smc, InstantaneousRewardEstimate) {
  auto model = test::twoStateChain(0.25, 0.4);
  model.withRewards({0.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double exact = checker.check("R=? [ I=12 ]").value;

  smc::SmcOptions options;
  options.paths = 40'000;
  options.seed = 3;
  const auto stats = smc::estimateInstantaneousReward(model, 12, "", options);
  EXPECT_NEAR(stats.mean(), exact, 4.0 * stats.standardError() + 1e-6);
}

TEST(Smc, UnboundedFormulaRejected) {
  const auto model = test::twoStateChain(0.3, 0.4);
  smc::SmcOptions options;
  options.paths = 10;
  EXPECT_THROW(smc::estimateProperty(model, "P=? [ F s=1 ]", options),
               std::invalid_argument);
  EXPECT_THROW(smc::estimateProperty(model, "R=? [ I=5 ]", options),
               std::invalid_argument);
}

TEST(Smc, SprtAcceptsTrueClaim) {
  // P(F<=5 one) ~ 0.832 for a=0.3,b=0.4; test a clearly-true claim.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.05;
  options.seed = 5;
  const auto outcome =
      smc::testProperty(model, "P>=0.6 [ F<=5 \"one\" ]", options);
  EXPECT_NE(outcome.decision, stats::SprtDecision::kContinue);
  EXPECT_TRUE(outcome.holds);
  EXPECT_GT(outcome.pathsUsed, 0u);
}

TEST(Smc, SprtRejectsFalseClaim) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.05;
  options.seed = 6;
  const auto outcome =
      smc::testProperty(model, "P>=0.95 [ F<=5 \"one\" ]", options);
  EXPECT_NE(outcome.decision, stats::SprtDecision::kContinue);
  EXPECT_FALSE(outcome.holds);
}

TEST(Smc, SprtUpperBoundClaims) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.05;
  options.seed = 8;
  const auto holds =
      smc::testProperty(model, "P<=0.9 [ F<=5 \"one\" ]", options);
  EXPECT_TRUE(holds.holds);
  const auto fails =
      smc::testProperty(model, "P<=0.5 [ F<=5 \"one\" ]", options);
  EXPECT_FALSE(fails.holds);
}

TEST(Smc, SprtNeedsFewerPathsFartherFromThreshold) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.02;
  options.seed = 11;
  const auto far = smc::testProperty(model, "P>=0.3 [ F<=5 \"one\" ]", options);
  const auto near =
      smc::testProperty(model, "P>=0.8 [ F<=5 \"one\" ]", options);
  // True probability ~0.832: the 0.3 threshold is far (quick accept), the
  // 0.8 threshold is close (more samples).
  EXPECT_LT(far.pathsUsed, near.pathsUsed);
}

TEST(Smc, AgreesWithExactCheckerOnViterbi) {
  // End-to-end on a real case-study model: SMC brackets the exact P1.
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel model(params);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double exact = checker.check("P=? [ G<=20 !flag ]").value;

  smc::SmcOptions options;
  options.paths = 20'000;
  options.seed = 12;
  const auto estimate =
      smc::estimateProperty(model, "P=? [ G<=20 !flag ]", options);
  EXPECT_TRUE(estimate.satisfied.wilson(0.999).contains(exact))
      << "exact " << exact << " est " << estimate.estimate();
}

}  // namespace
}  // namespace mimostat
