#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "smc/smc.hpp"
#include "test_models.hpp"
#include "viterbi/model_convergence.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

/// Runs chunk tasks in reverse order on ad-hoc threads — an adversarial
/// TaskRunner for the determinism contract (merge order must not depend on
/// execution order).
void reverseThreadedRunner(std::vector<std::function<void()>> tasks) {
  // lint:allow(raw-thread: adversarial runner exercises the merge contract)
  std::vector<std::thread> threads;
  threads.reserve(tasks.size());
  for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
    threads.emplace_back(std::move(*it));
  }
  for (auto& t : threads) t.join();
}

TEST(Smc, StateFormulaEvaluation) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  const auto layout = model.layout();
  const auto f = pctl::parseStateFormula("!\"one\" & s=0");
  EXPECT_TRUE(smc::evalStateFormula(model, layout, {0}, *f));
  EXPECT_FALSE(smc::evalStateFormula(model, layout, {1}, *f));
}

TEST(Smc, SamplerIsDeterministicPerSeed) {
  const auto model = test::randomModel(20, 3, 9);
  smc::PathSampler a(model, 42);
  smc::PathSampler b(model, 42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.step(), b.step());
  }
}

TEST(Smc, EstimateMatchesExactChecker) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1}).withRewards({0.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);

  smc::SmcOptions options;
  options.paths = 40'000;
  options.seed = 7;
  for (const auto* prop : {"P=? [ F<=5 \"one\" ]", "P=? [ G<=5 !\"one\" ]",
                           "P=? [ !\"one\" U<=8 \"one\" ]",
                           "P=? [ X \"one\" ]"}) {
    const double exact = checker.check(prop).value;
    const auto estimate = smc::estimateProperty(model, prop, options);
    const auto interval = estimate.satisfied.wilson(0.999);
    EXPECT_TRUE(interval.contains(exact))
        << prop << ": exact " << exact << " interval [" << interval.low
        << ", " << interval.high << "]";
  }
}

TEST(Smc, InstantaneousRewardEstimate) {
  auto model = test::twoStateChain(0.25, 0.4);
  model.withRewards({0.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double exact = checker.check("R=? [ I=12 ]").value;

  smc::SmcOptions options;
  options.paths = 40'000;
  options.seed = 3;
  const auto stats = smc::estimateInstantaneousReward(model, 12, "", options);
  EXPECT_NEAR(stats.mean(), exact, 4.0 * stats.standardError() + 1e-6);
}

TEST(Smc, UnboundedFormulaRejected) {
  const auto model = test::twoStateChain(0.3, 0.4);
  smc::SmcOptions options;
  options.paths = 10;
  EXPECT_THROW(smc::estimateProperty(model, "P=? [ F s=1 ]", options),
               std::invalid_argument);
  EXPECT_THROW(smc::estimateProperty(model, "R=? [ I=5 ]", options),
               std::invalid_argument);
}

TEST(Smc, TransitionlessStateIsAbsorbing) {
  // Regression: a state without outgoing transitions used to read
  // scratch_.back() on an empty vector (UB). It must act as a self-loop.
  test::MatrixModel model({{0.0, 1.0}, {0.0, 0.0}});  // state 1 is a dead end
  smc::PathSampler sampler(model, 3);
  sampler.reset();
  EXPECT_EQ(sampler.state()[0], 0);
  EXPECT_EQ(sampler.step()[0], 1);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(sampler.step()[0], 1);  // absorbed
  }

  smc::SmcOptions options;
  options.paths = 200;
  const auto estimate =
      smc::estimateProperty(model, "P=? [ F<=4 s=1 ]", options);
  EXPECT_EQ(estimate.estimate(), 1.0);
  const auto globally =
      smc::estimateProperty(model, "P=? [ G<=10 s<=1 ]", options);
  EXPECT_EQ(globally.estimate(), 1.0);
}

TEST(Smc, DeriveSeedSeparatesStreams) {
  // Derived seeds must differ across streams and across base seeds, and be
  // a pure function of both.
  EXPECT_EQ(smc::deriveSeed(1, 0), smc::deriveSeed(1, 0));
  EXPECT_NE(smc::deriveSeed(1, 0), smc::deriveSeed(1, 1));
  EXPECT_NE(smc::deriveSeed(1, 0), smc::deriveSeed(2, 0));
  // Streams derived from consecutive seeds should not collide either.
  EXPECT_NE(smc::deriveSeed(1, 1), smc::deriveSeed(2, 0));

  // Samplers on distinct derived streams decorrelate: their state sequences
  // diverge (deterministically, so this cannot flake).
  const auto model = test::randomModel(20, 3, 9);
  smc::PathSampler a(model, smc::deriveSeed(7, 0));
  smc::PathSampler b(model, smc::deriveSeed(7, 1));
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.step() != b.step()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(Smc, CumulativeRewardMatchesExact) {
  auto model = test::twoStateChain(0.25, 0.4);
  model.withRewards({0.0, 1.0});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double exact = checker.check("R=? [ C<=25 ]").value;

  smc::SmcOptions options;
  options.paths = 40'000;
  options.seed = 9;
  const auto stats = smc::estimateCumulativeReward(model, 25, "", options);
  EXPECT_EQ(stats.count(), options.paths);
  EXPECT_NEAR(stats.mean(), exact, 4.0 * stats.standardError() + 1e-6);
}

TEST(Smc, CumulativeRewardZeroHorizonIsZero) {
  auto model = test::twoStateChain(0.25, 0.4);
  model.withRewards({1.0, 1.0});
  smc::SmcOptions options;
  options.paths = 100;
  const auto stats = smc::estimateCumulativeReward(model, 0, "", options);
  EXPECT_EQ(stats.mean(), 0.0);
  const auto one = smc::estimateCumulativeReward(model, 1, "", options);
  EXPECT_EQ(one.mean(), 1.0);  // reward collected in s_0 only
}

TEST(Smc, CumulativeRewardWithinCiOnViterbiModels) {
  // Table III model (reduced Viterbi) and Table IV model (convergence):
  // sampled R=?[C<=T] must bracket the exact transient sum.
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel table3(params);
  const viterbi::ConvergenceViterbiModel table4(params, /*maxCount=*/4);
  const dtmc::Model* models[] = {&table3, &table4};
  for (const dtmc::Model* model : models) {
    const auto d = dtmc::buildExplicit(*model).dtmc;
    const mc::Checker checker(d, *model);
    const double exact = checker.check("R=? [ C<=30 ]").value;
    smc::SmcOptions options;
    options.paths = 20'000;
    options.seed = 21;
    const auto stats = smc::estimateCumulativeReward(*model, 30, "", options);
    EXPECT_NEAR(stats.mean(), exact, 4.0 * stats.standardError() + 1e-9)
        << "exact " << exact << " mean " << stats.mean();
  }
}

TEST(Smc, ChunkedEstimatesAreRunnerInvariant) {
  // The determinism contract: for a fixed seed the result is bit-identical
  // whether chunks run serially, or threaded in reverse order.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1}).withRewards({0.0, 1.0});
  smc::SmcOptions options;
  options.paths = 5'000;
  options.seed = 13;
  options.chunkPaths = 512;  // 10 chunks

  const auto serialP =
      smc::estimateProperty(model, "P=? [ F<=5 \"one\" ]", options);
  const auto threadedP = smc::estimateProperty(
      model, "P=? [ F<=5 \"one\" ]", options, reverseThreadedRunner);
  EXPECT_EQ(serialP.satisfied.trials(), threadedP.satisfied.trials());
  EXPECT_EQ(serialP.satisfied.successes(), threadedP.satisfied.successes());

  const auto serialI = smc::estimateInstantaneousReward(model, 12, "", options);
  const auto threadedI = smc::estimateInstantaneousReward(
      model, 12, "", options, reverseThreadedRunner);
  EXPECT_EQ(serialI.mean(), threadedI.mean());
  EXPECT_EQ(serialI.variance(), threadedI.variance());

  const auto serialC = smc::estimateCumulativeReward(model, 12, "", options);
  const auto threadedC = smc::estimateCumulativeReward(
      model, 12, "", options, reverseThreadedRunner);
  EXPECT_EQ(serialC.mean(), threadedC.mean());
  EXPECT_EQ(serialC.variance(), threadedC.variance());
}

TEST(Smc, SprtIsDeterministicPerSeed) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.02;
  options.seed = 31;
  const auto a = smc::testProperty(model, "P>=0.8 [ F<=5 \"one\" ]", options);
  const auto b = smc::testProperty(model, "P>=0.8 [ F<=5 \"one\" ]", options);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.pathsUsed, b.pathsUsed);
  EXPECT_EQ(a.observed.successes(), b.observed.successes());
  EXPECT_EQ(a.observed.trials(), a.pathsUsed);
  EXPECT_GT(a.indifference, 0.0);
}

TEST(Smc, SprtAcceptsTrueClaim) {
  // P(F<=5 one) ~ 0.832 for a=0.3,b=0.4; test a clearly-true claim.
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.05;
  options.seed = 5;
  const auto outcome =
      smc::testProperty(model, "P>=0.6 [ F<=5 \"one\" ]", options);
  EXPECT_NE(outcome.decision, stats::SprtDecision::kContinue);
  EXPECT_TRUE(outcome.holds);
  EXPECT_GT(outcome.pathsUsed, 0u);
}

TEST(Smc, SprtRejectsFalseClaim) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.05;
  options.seed = 6;
  const auto outcome =
      smc::testProperty(model, "P>=0.95 [ F<=5 \"one\" ]", options);
  EXPECT_NE(outcome.decision, stats::SprtDecision::kContinue);
  EXPECT_FALSE(outcome.holds);
}

TEST(Smc, SprtUpperBoundClaims) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.05;
  options.seed = 8;
  const auto holds =
      smc::testProperty(model, "P<=0.9 [ F<=5 \"one\" ]", options);
  EXPECT_TRUE(holds.holds);
  const auto fails =
      smc::testProperty(model, "P<=0.5 [ F<=5 \"one\" ]", options);
  EXPECT_FALSE(fails.holds);
}

TEST(Smc, SprtNeedsFewerPathsFartherFromThreshold) {
  auto model = test::twoStateChain(0.3, 0.4);
  model.withLabel("one", {0, 1});
  smc::SprtOptions options;
  options.indifference = 0.02;
  options.seed = 11;
  const auto far = smc::testProperty(model, "P>=0.3 [ F<=5 \"one\" ]", options);
  const auto near =
      smc::testProperty(model, "P>=0.8 [ F<=5 \"one\" ]", options);
  // True probability ~0.832: the 0.3 threshold is far (quick accept), the
  // 0.8 threshold is close (more samples).
  EXPECT_LT(far.pathsUsed, near.pathsUsed);
}

TEST(Smc, AgreesWithExactCheckerOnViterbi) {
  // End-to-end on a real case-study model: SMC brackets the exact P1.
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel model(params);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  const double exact = checker.check("P=? [ G<=20 !flag ]").value;

  smc::SmcOptions options;
  options.paths = 20'000;
  options.seed = 12;
  const auto estimate =
      smc::estimateProperty(model, "P=? [ G<=20 !flag ]", options);
  EXPECT_TRUE(estimate.satisfied.wilson(0.999).contains(exact))
      << "exact " << exact << " est " << estimate.estimate();
}

}  // namespace
}  // namespace mimostat
