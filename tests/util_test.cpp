#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/fixed_point.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mimostat {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  util::Xoshiro256 a(42);
  util::Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Xoshiro256 a(1);
  util::Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, NextDoubleInUnitInterval) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.nextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoundedRespectsBound) {
  util::Xoshiro256 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.nextBounded(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
  EXPECT_EQ(rng.nextBounded(1), 0u);
  EXPECT_EQ(rng.nextBounded(0), 0u);
}

TEST(Rng, GaussianMoments) {
  util::Xoshiro256 rng(1234);
  const int n = 200000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.nextGaussian();
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t state = 0;
  const std::uint64_t a = util::splitmix64(state);
  const std::uint64_t b = util::splitmix64(state);
  EXPECT_NE(a, b);
}

TEST(Hash, Fnv1aDependsOnContent) {
  const char a[] = "abc";
  const char b[] = "abd";
  EXPECT_NE(util::fnv1a(a, 3), util::fnv1a(b, 3));
}

TEST(Hash, Mix64IsBijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    outputs.insert(util::mix64(i));
  }
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(PackedStateSet, InsertAndContains) {
  util::PackedStateSet set(16);
  EXPECT_TRUE(set.insert(0));
  EXPECT_FALSE(set.insert(0));
  EXPECT_TRUE(set.contains(0));
  EXPECT_FALSE(set.contains(1));
  EXPECT_EQ(set.size(), 1u);
}

TEST(PackedStateSet, GrowsAndKeepsAllKeys) {
  util::PackedStateSet set(16);
  const std::uint64_t n = 100000;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(set.insert(i * 2654435761ULL));
  }
  EXPECT_EQ(set.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(set.contains(i * 2654435761ULL));
  }
}

TEST(PackedStateSet, HandlesKeyZeroAndMax) {
  util::PackedStateSet set;
  EXPECT_TRUE(set.insert(0));
  EXPECT_TRUE(set.insert(~0ULL - 1));
  EXPECT_TRUE(set.contains(0));
  EXPECT_TRUE(set.contains(~0ULL - 1));

  // ~0 biases onto the empty marker and is tracked out of band; it must
  // behave like any other key (a 64-bit-wide layout packs a real state
  // there).
  EXPECT_FALSE(set.contains(~0ULL));
  EXPECT_TRUE(set.insert(~0ULL));
  EXPECT_FALSE(set.insert(~0ULL));
  EXPECT_TRUE(set.contains(~0ULL));
  EXPECT_EQ(set.size(), 3u);
}

TEST(PackedStateSet, MaxKeySurvivesGrowth) {
  util::PackedStateSet set(16);
  EXPECT_TRUE(set.insert(~0ULL));
  const std::uint64_t n = 10'000;
  for (std::uint64_t i = 0; i < n; ++i) {
    EXPECT_TRUE(set.insert(i * 2654435761ULL));
  }
  EXPECT_TRUE(set.contains(~0ULL));
  EXPECT_EQ(set.size(), n + 1);
}

TEST(FixedPoint, ClampI32) {
  EXPECT_EQ(util::clampI32(5, 0, 10), 5);
  EXPECT_EQ(util::clampI32(-1, 0, 10), 0);
  EXPECT_EQ(util::clampI32(11, 0, 10), 10);
  EXPECT_EQ(util::clampI32(1LL << 40, 0, 10), 10);
}

TEST(FixedPoint, SatAdd) {
  EXPECT_EQ(util::satAdd(3, 4, 10), 7);
  EXPECT_EQ(util::satAdd(8, 4, 10), 10);
  EXPECT_EQ(util::satAdd(0, -5, 10), 0);
}

TEST(FixedPoint, QuantizeMagnitude) {
  EXPECT_EQ(util::quantizeMagnitude(0.25, 1.0, 3), 0);
  EXPECT_EQ(util::quantizeMagnitude(1.4, 1.0, 3), 1);
  EXPECT_EQ(util::quantizeMagnitude(2.6, 1.0, 3), 3);
  EXPECT_EQ(util::quantizeMagnitude(9.0, 1.0, 3), 3);
  EXPECT_EQ(util::quantizeMagnitude(1.0, 2.0, 10), 2);
}

TEST(FixedPoint, SatCounter) {
  util::SatCounter c(0, 3);
  c.add(2);
  EXPECT_EQ(c.value(), 2);
  EXPECT_FALSE(c.saturated());
  c.add(5);
  EXPECT_EQ(c.value(), 3);
  EXPECT_TRUE(c.saturated());
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(Timer, MeasuresElapsedTime) {
  util::Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(watch.elapsedMillis(), 5.0);
  watch.reset();
  EXPECT_LT(watch.elapsedMillis(), 5.0);
}

}  // namespace
}  // namespace mimostat
