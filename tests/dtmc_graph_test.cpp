#include <gtest/gtest.h>

#include "dtmc/builder.hpp"
#include "dtmc/graph.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

dtmc::ExplicitDtmc build(const dtmc::Model& model) {
  return dtmc::buildExplicit(model).dtmc;
}

TEST(Scc, SingleComponentCycle) {
  const auto d = build(test::cycleModel(5));
  const auto scc = dtmc::computeSccs(d);
  EXPECT_EQ(scc.numComponents, 1u);
  EXPECT_EQ(scc.bottomComponents.size(), 1u);
  EXPECT_TRUE(dtmc::isIrreducible(d));
}

TEST(Scc, LineHasOneComponentPerState) {
  const auto d = build(test::lineModel(6));
  const auto scc = dtmc::computeSccs(d);
  EXPECT_EQ(scc.numComponents, 6u);
  EXPECT_EQ(scc.bottomComponents.size(), 1u);  // only the absorbing end
  EXPECT_FALSE(dtmc::isIrreducible(d));
}

TEST(Scc, GamblersRuinHasTwoBottoms) {
  const auto d = build(test::gamblersRuin(5, 0.5, 2));
  const auto scc = dtmc::computeSccs(d);
  EXPECT_EQ(scc.bottomComponents.size(), 2u);
}

TEST(Scc, ReverseTopologicalNumbering) {
  const auto d = build(test::lineModel(4));
  const auto scc = dtmc::computeSccs(d);
  // Every edge must go from a higher component id to a lower one.
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    for (std::uint64_t k = d.rowPtr()[s]; k < d.rowPtr()[s + 1]; ++k) {
      const std::uint32_t t = d.col()[k];
      if (scc.componentOf[s] != scc.componentOf[t]) {
        EXPECT_GT(scc.componentOf[s], scc.componentOf[t]);
      }
    }
  }
}

TEST(Period, CycleHasPeriodN) {
  const auto d = build(test::cycleModel(6));
  EXPECT_EQ(dtmc::chainPeriod(d), 6u);
}

TEST(Period, SelfLoopMakesAperiodic) {
  test::MatrixModel model({{0.5, 0.5, 0.0}, {0.0, 0.0, 1.0}, {1.0, 0.0, 0.0}});
  const auto d = build(model);
  ASSERT_TRUE(dtmc::isIrreducible(d));
  EXPECT_EQ(dtmc::chainPeriod(d), 1u);
}

TEST(Period, TwoCycleEvenPeriod) {
  const auto d = build(test::cycleModel(2));
  EXPECT_EQ(dtmc::chainPeriod(d), 2u);
}

TEST(Reachability, BackwardClosure) {
  const auto d = build(test::lineModel(5));
  la::BitVector target(5);
  target.set(4);
  const auto reach = dtmc::backwardReachable(d, target);
  for (std::uint32_t s = 0; s < 5; ++s) {
    EXPECT_TRUE(reach.get(s)) << "state " << s;
  }
}

TEST(Reachability, ForwardClosure) {
  const auto d = build(test::gamblersRuin(4, 0.5, 2));
  // From the absorbing state 0 (BFS index lookup needed): find its index.
  la::BitVector from(d.numStates());
  std::uint32_t zeroIdx = ~0u;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.state(s)[0] == 0) zeroIdx = s;
  }
  ASSERT_NE(zeroIdx, ~0u);
  from.set(zeroIdx);
  const auto reach = dtmc::forwardReachable(d, from);
  EXPECT_EQ(reach.count(), 1u);  // absorbing: only itself
}

}  // namespace
}  // namespace mimostat
