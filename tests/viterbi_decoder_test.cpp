#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "viterbi/code.hpp"
#include "viterbi/decoder.hpp"
#include "viterbi/sim.hpp"

namespace mimostat {
namespace {

viterbi::ViterbiParams defaultParams() { return viterbi::ViterbiParams{}; }

TEST(TrellisKernel, BranchMetricsPreferMatchingLevel) {
  const viterbi::TrellisKernel kernel(defaultParams());
  // Quantizer cell 3 has value 2.25; the (1,1) transition expects +2, so its
  // branch metric must be the smallest of the four.
  const int q = 3;
  const int matching = kernel.branchMetric(q, 1, 1);
  EXPECT_LE(matching, kernel.branchMetric(q, 0, 0));
  EXPECT_LE(matching, kernel.branchMetric(q, 0, 1));
  EXPECT_LE(matching, kernel.branchMetric(q, 1, 0));
}

TEST(TrellisKernel, BranchMetricsWithinCap) {
  const auto params = defaultParams();
  const viterbi::TrellisKernel kernel(params);
  for (int q = 0; q < params.quantLevels; ++q) {
    for (int u = 0; u < 2; ++u) {
      for (int v = 0; v < 2; ++v) {
        const auto bm = kernel.branchMetric(q, u, v);
        EXPECT_GE(bm, 0);
        EXPECT_LE(bm, params.bmCap);
      }
    }
  }
}

TEST(TrellisKernel, AcsNormalizesToZeroMin) {
  const auto params = defaultParams();
  const viterbi::TrellisKernel kernel(params);
  for (int q = 0; q < params.quantLevels; ++q) {
    for (int pm0 = 0; pm0 <= params.pmCap; ++pm0) {
      for (int pm1 = 0; pm1 <= params.pmCap; ++pm1) {
        const auto acs = kernel.acs(pm0, pm1, q);
        EXPECT_EQ(std::min(acs.pm0, acs.pm1), 0);
        EXPECT_LE(std::max(acs.pm0, acs.pm1), params.pmCap);
        EXPECT_EQ(acs.tracebackStart, acs.pm0 <= acs.pm1 ? 0 : 1);
      }
    }
  }
}

TEST(TrellisKernel, CellProbsFormDistributions) {
  const auto params = defaultParams();
  const viterbi::TrellisKernel kernel(params);
  for (int cur = 0; cur < 2; ++cur) {
    for (int prev = 0; prev < 2; ++prev) {
      double total = 0.0;
      for (int q = 0; q < params.quantLevels; ++q) {
        total += kernel.cellProb(cur, prev, q);
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(Traceback, FollowsPointers) {
  // Stage pointers: from state s at depth i, go to prev{s}[i].
  const std::vector<int> prev0{1, 0, 1};
  const std::vector<int> prev1{0, 1, 1};
  EXPECT_EQ(viterbi::traceback(0, prev0, prev1, 0), 0);
  EXPECT_EQ(viterbi::traceback(0, prev0, prev1, 1), 1);  // prev0[0]=1
  EXPECT_EQ(viterbi::traceback(0, prev0, prev1, 2), 1);  // prev1[1]=1
  EXPECT_EQ(viterbi::traceback(0, prev0, prev1, 3), 1);  // prev1[2]=1
  EXPECT_EQ(viterbi::traceback(1, prev0, prev1, 1), 0);  // prev1[0]=0
}

TEST(Decoder, RecoversDataAtHighSnr) {
  // At 30 dB the channel is effectively noiseless: the decoder must track
  // the transmitted bits exactly (after the warm-up transient).
  auto params = defaultParams();
  params.snrDb = 30.0;
  const auto result = viterbi::simulate(params, 20000, 42);
  EXPECT_LT(result.bitErrors.estimate(), 1e-3);
}

TEST(Decoder, DegradesAtLowSnr) {
  auto params = defaultParams();
  params.snrDb = -5.0;
  const auto result = viterbi::simulate(params, 20000, 42);
  EXPECT_GT(result.bitErrors.estimate(), 0.1);
}

TEST(Decoder, BerMonotoneInSnr) {
  double previous = 1.0;
  for (const double snr : {0.0, 5.0, 10.0, 15.0}) {
    auto params = defaultParams();
    params.snrDb = snr;
    const auto result = viterbi::simulate(params, 50000, 7);
    EXPECT_LE(result.bitErrors.estimate(), previous + 0.02) << snr;
    previous = result.bitErrors.estimate();
  }
}

TEST(Decoder, ResetRestoresInitialState) {
  const viterbi::TrellisKernel kernel(defaultParams());
  viterbi::Decoder decoder(kernel);
  util::Xoshiro256 rng(3);
  std::vector<int> first;
  for (int i = 0; i < 50; ++i) {
    first.push_back(decoder.step(static_cast<int>(rng.nextBounded(4))));
  }
  decoder.reset();
  util::Xoshiro256 rng2(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(decoder.step(static_cast<int>(rng2.nextBounded(4))), first[i]);
  }
}

TEST(Decoder, InitialPathMetricsBiasedToStateZero) {
  const viterbi::TrellisKernel kernel(defaultParams());
  const viterbi::Decoder decoder(kernel);
  EXPECT_EQ(decoder.pm0(), 0);
  EXPECT_EQ(decoder.pm1(), kernel.params().pmCap);
}

TEST(Simulation, DeterministicPerSeed) {
  const auto params = defaultParams();
  const auto a = viterbi::simulate(params, 5000, 99);
  const auto b = viterbi::simulate(params, 5000, 99);
  EXPECT_EQ(a.bitErrors.successes(), b.bitErrors.successes());
  EXPECT_EQ(a.nonConvergent.successes(), b.nonConvergent.successes());
}

TEST(Simulation, LongerTracebackConvergesMore) {
  auto shortParams = defaultParams();
  shortParams.tracebackLength = 2;
  auto longParams = defaultParams();
  longParams.tracebackLength = 10;
  const auto shortRun = viterbi::simulate(shortParams, 100000, 5);
  const auto longRun = viterbi::simulate(longParams, 100000, 5);
  // Figure 2's trend: non-convergence decreases with traceback length.
  EXPECT_GT(shortRun.nonConvergent.estimate(),
            longRun.nonConvergent.estimate());
}

}  // namespace
}  // namespace mimostat
