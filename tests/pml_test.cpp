#include <gtest/gtest.h>

#include <cmath>
#include <fstream>

#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "pml/eval.hpp"
#include "pml/model.hpp"
#include "pml/parser.hpp"

namespace mimostat {
namespace {

constexpr const char* kTwoStateSource = R"(
// the canonical two-state chain with P(0->1)=a, P(1->0)=b
dtmc
const double a = 0.3;
const double b = 0.4;

module chain
  s : [0..1] init 0;

  [] s=0 -> a : (s'=1) + 1-a : (s'=0);
  [] s=1 -> b : (s'=0) + 1-b : (s'=1);
endmodule

rewards
  s=1 : 1;
endrewards

label "one" = s=1;
)";

double twoStateP1(double a, double b, std::uint64_t t) {
  return a / (a + b) * (1.0 - std::pow(1.0 - a - b, static_cast<double>(t)));
}

TEST(PmlExpr, Arithmetic) {
  const pml::Environment env{{"x", 5.0}, {"y", 2.0}};
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("x + y * 3"), env), 11.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("(x + y) * 3"), env), 21.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("-x + 1"), env), -4.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("x / y"), env), 2.5);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("min(x, y)"), env), 2.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("max(x, y)"), env), 5.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("mod(x, y)"), env), 1.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("floor(x / y)"), env), 2.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("ceil(x / y)"), env), 3.0);
}

TEST(PmlExpr, BooleansAndComparisons) {
  const pml::Environment env{{"x", 5.0}};
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("x >= 5 & x < 6"), env), 1.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("x = 4 | x = 5"), env), 1.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("!(x != 5)"), env), 1.0);
  EXPECT_EQ(pml::evaluate(*pml::parseExpression("true & false"), env), 0.0);
}

TEST(PmlExpr, Errors) {
  const pml::Environment env;
  EXPECT_THROW(pml::evaluate(*pml::parseExpression("nope"), env),
               pml::EvalError);
  EXPECT_THROW(pml::evaluate(*pml::parseExpression("1 / 0"), env),
               pml::EvalError);
  EXPECT_THROW(pml::evaluate(*pml::parseExpression("mod(1.5, 2)"), env),
               pml::EvalError);
  EXPECT_THROW(pml::parseExpression("1 +"), pml::PmlParseError);
}

TEST(PmlModel, ParsesStructure) {
  const pml::PmlModel model(kTwoStateSource);
  EXPECT_EQ(model.decl().module.name, "chain");
  EXPECT_EQ(model.decl().constants.size(), 2u);
  EXPECT_EQ(model.decl().module.commands.size(), 2u);
  EXPECT_NEAR(model.constants().at("a"), 0.3, 1e-15);
  const auto vars = model.variables();
  ASSERT_EQ(vars.size(), 1u);
  EXPECT_EQ(vars[0].name, "s");
  EXPECT_EQ(vars[0].hi, 1);
}

TEST(PmlModel, MatchesClosedForm) {
  const pml::PmlModel model(kTwoStateSource);
  const auto d = dtmc::buildExplicit(model).dtmc;
  EXPECT_EQ(d.numStates(), 2u);
  EXPECT_LT(d.maxRowDeviation(), 1e-12);
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("R=? [ I=10 ]").value, twoStateP1(0.3, 0.4, 10),
              1e-12);
  EXPECT_NEAR(checker.check("P=? [ F<=1 \"one\" ]").value, 0.3, 1e-15);
  EXPECT_NEAR(checker.check("P=? [ F<=1 s=1 ]").value, 0.3, 1e-15);
}

TEST(PmlModel, AbsorbingWhenNoCommandEnabled) {
  const pml::PmlModel model(R"(
dtmc
module m
  s : [0..2] init 0;
  [] s<2 -> 0.5 : (s'=s+1) + 0.5 : (s'=min(s+2, 2));
endmodule
)");
  const auto d = dtmc::buildExplicit(model).dtmc;
  // State s=2 has no enabled command -> self loop.
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("P=? [ F s=2 ]").value, 1.0, 1e-9);
}

TEST(PmlModel, ConstantsReferenceEarlierConstants) {
  const pml::PmlModel model(R"(
dtmc
const int N = 4;
const double p = 1 / (N + 1);
module m
  s : [0..N] init 0;
  [] s<N -> p : (s'=s+1) + 1-p : (s'=s);
  [] s=N -> (s'=N);
endmodule
)");
  EXPECT_NEAR(model.constants().at("p"), 0.2, 1e-15);
  const auto d = dtmc::buildExplicit(model).dtmc;
  EXPECT_EQ(d.numStates(), 5u);
}

TEST(PmlModel, GamblersRuinExpectedDuration) {
  // Unit reward per step before absorption: for a fair game from i on
  // [0,n], the expected duration is i*(n-i) — checked through the full
  // text -> model -> R=?[F ...] pipeline.
  const pml::PmlModel model(R"(
dtmc
const int N = 8;
module ruin
  s : [0..N] init 3;
  [] s>0 & s<N -> 0.5 : (s'=s-1) + 0.5 : (s'=s+1);
endmodule
rewards
  s>0 & s<N : 1;
endrewards
label "absorbed" = s=0 | s=N;
)");
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("R=? [ F \"absorbed\" ]").value, 3.0 * 5.0, 1e-7);
}

TEST(PmlModel, NamedRewards) {
  const pml::PmlModel model(R"(
dtmc
module m
  s : [0..1] init 0;
  [] true -> 0.5 : (s'=0) + 0.5 : (s'=1);
endmodule
rewards "ones"
  s=1 : 2;
endrewards
)");
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("R{\"ones\"}=? [ I=5 ]").value, 1.0, 1e-12);
  EXPECT_NEAR(checker.check("R=? [ I=5 ]").value, 0.0, 1e-12);  // no default
}

TEST(PmlModel, RejectsMalformedPrograms) {
  EXPECT_THROW(pml::PmlModel("mdp\nmodule m endmodule"), pml::PmlParseError);
  EXPECT_THROW(pml::PmlModel("dtmc"), pml::PmlParseError);  // no module
  EXPECT_THROW(pml::PmlModel(R"(
dtmc
module a  s : [0..1] init 0; endmodule
module b  t : [0..1] init 0; endmodule
)"),
               pml::PmlParseError);  // multiple modules
  EXPECT_THROW(pml::PmlModel(R"(
dtmc
module m  s : [0..1] init 5; endmodule
)"),
               pml::EvalError);  // init out of range
  EXPECT_THROW(pml::PmlModel(R"(
dtmc
module m  s : [3..1] init 3; endmodule
)"),
               pml::EvalError);  // empty range
}

TEST(PmlModel, OutOfRangeAssignmentThrowsAtExploration) {
  const pml::PmlModel model(R"(
dtmc
module m
  s : [0..1] init 0;
  [] true -> (s'=s+1);
endmodule
)");
  EXPECT_THROW(dtmc::buildExplicit(model), pml::EvalError);
}

TEST(PmlModel, CommentsAndWhitespace) {
  const pml::PmlModel model(R"(
dtmc
// leading comment
module m // trailing comment
  s : [0..1] init 0;   // var comment
  [] true -> 1 : (s'=1-s);
endmodule
)");
  const auto d = dtmc::buildExplicit(model).dtmc;
  EXPECT_EQ(d.numStates(), 2u);
}

TEST(PmlModel, LoadsFromFile) {
  const std::string path = ::testing::TempDir() + "pml_test_model.pml";
  {
    std::ofstream file(path);
    file << "dtmc\nmodule m\n  s : [0..1] init 0;\n"
            "  [] true -> 0.5 : (s'=0) + 0.5 : (s'=1);\nendmodule\n"
            "label \"one\" = s=1;\n";
  }
  const pml::PmlModel model = pml::PmlModel::fromFile(path);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);
  EXPECT_NEAR(checker.check("P=? [ X \"one\" ]").value, 0.5, 1e-15);
  EXPECT_THROW(pml::PmlModel::fromFile("/nonexistent/nope.pml"),
               std::runtime_error);
}

TEST(PmlModel, ProbabilityMassValidatedByBuilder) {
  // Guards overlap, masses sum to 1.5: builder must flag the deviation.
  const pml::PmlModel model(R"(
dtmc
module m
  s : [0..1] init 0;
  [] true -> 1 : (s'=1-s);
  [] s=0 -> 0.5 : (s'=0);
endmodule
)");
  const auto result = dtmc::buildExplicit(model);
  EXPECT_GT(result.dtmc.maxRowDeviation(), 0.4);
}

}  // namespace
}  // namespace mimostat
