// la:: subsystem tests: SpMV/SpMM against dense references and the legacy
// ExplicitDtmc loops (bitwise), solver convergence on known chains,
// bit-identical determinism at 1/2/8 pool threads, and empty-row /
// absorbing-state edge cases.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "dtmc/builder.hpp"
#include "engine/engine.hpp"
#include "engine/thread_pool.hpp"
#include "la/csr_matrix.hpp"
#include "la/exec.hpp"
#include "la/simd.hpp"
#include "la/solver.hpp"
#include "la/spmv.hpp"
#include "obs/metrics.hpp"
#include "mc/checker.hpp"
#include "mc/steady.hpp"
#include "mc/transient.hpp"
#include "mc/unbounded.hpp"
#include "test_models.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

la::Exec poolExec(engine::ThreadPool& pool,
                  std::uint64_t thresholdNnz = 1) {
  la::Exec exec;
  exec.runner = engine::laRunnerFor(pool);
  exec.parallelThresholdNnz = thresholdNnz;
  return exec;
}

bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

struct DenseCsr {
  std::vector<std::vector<double>> dense;
  la::CsrMatrix csr;
};

/// Random matrix with `fanout` draws per row; rows whose index is in
/// `emptyRows` get no entries at all. Not normalized (kernels don't care).
DenseCsr randomMatrix(std::uint32_t n, std::uint32_t fanout,
                      std::uint64_t seed,
                      const std::vector<std::uint32_t>& emptyRows = {}) {
  util::Xoshiro256 rng(seed);
  DenseCsr out;
  out.dense.assign(n, std::vector<double>(n, 0.0));
  for (std::uint32_t i = 0; i < n; ++i) {
    bool skip = false;
    for (const auto e : emptyRows) skip = skip || e == i;
    if (skip) continue;
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const auto j = static_cast<std::uint32_t>(rng.nextBounded(n));
      out.dense[i][j] += rng.nextDouble() + 0.05;
    }
  }
  std::vector<std::uint64_t> rowPtr{0};
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      if (out.dense[i][j] != 0.0) {
        col.push_back(j);
        val.push_back(out.dense[i][j]);
      }
    }
    rowPtr.push_back(col.size());
  }
  out.csr = la::CsrMatrix::fromCsr(std::move(rowPtr), std::move(col),
                                   std::move(val), n);
  return out;
}

std::vector<double> randomVector(std::uint32_t n, std::uint64_t seed,
                                 double zeroFraction = 0.0) {
  util::Xoshiro256 rng(seed);
  std::vector<double> x(n);
  for (auto& v : x) {
    v = rng.nextDouble() < zeroFraction ? 0.0 : rng.nextDouble() - 0.25;
  }
  return x;
}

/// The pre-refactor ExplicitDtmc::multiplyLeft scatter loop, verbatim.
std::vector<double> legacyScatterLeft(const la::CsrMatrix& m,
                                      const std::vector<double>& x) {
  std::vector<double> y(m.numCols(), 0.0);
  for (std::uint32_t s = 0; s < m.numRows(); ++s) {
    const double xs = x[s];
    if (xs == 0.0) continue;
    for (std::uint64_t k = m.rowPtr()[s]; k < m.rowPtr()[s + 1]; ++k) {
      y[m.col()[k]] += xs * m.val()[k];
    }
  }
  return y;
}

/// The pre-refactor ExplicitDtmc::multiplyRight gather loop, verbatim.
std::vector<double> legacyGatherRight(const la::CsrMatrix& m,
                                      const std::vector<double>& x) {
  std::vector<double> y(m.numRows(), 0.0);
  for (std::uint32_t s = 0; s < m.numRows(); ++s) {
    double acc = 0.0;
    for (std::uint64_t k = m.rowPtr()[s]; k < m.rowPtr()[s + 1]; ++k) {
      acc += m.val()[k] * x[m.col()[k]];
    }
    y[s] = acc;
  }
  return y;
}

// ------------------------------------------------------------- CsrMatrix

TEST(CsrMatrix, BlocksPartitionRowsInOrder) {
  // 3000 rows x 8 nnz = 24000 nnz > kBlockNnz -> several blocks.
  const DenseCsr m = randomMatrix(3000, 8, 11);
  const la::CsrMatrix& csr = m.csr;
  ASSERT_GE(csr.blockCount(), 2u);
  EXPECT_EQ(csr.blockBegin(0), 0u);
  for (std::size_t b = 0; b + 1 < csr.blockCount(); ++b) {
    EXPECT_EQ(csr.blockEnd(b), csr.blockBegin(b + 1));
    EXPECT_LT(csr.blockBegin(b), csr.blockEnd(b));
  }
  EXPECT_EQ(csr.blockEnd(csr.blockCount() - 1), csr.numRows());
}

TEST(CsrMatrix, TransposeRoundTripsEntries) {
  const DenseCsr m = randomMatrix(40, 4, 17);
  const la::CsrMatrix& t = m.csr.transposed();
  EXPECT_EQ(t.numRows(), m.csr.numCols());
  EXPECT_EQ(t.numCols(), m.csr.numRows());
  EXPECT_EQ(t.numNonZeros(), m.csr.numNonZeros());
  // Every dense entry appears exactly once in the transpose, and transpose
  // rows list sources in ascending order (the stable-sort contract).
  for (std::uint32_t c = 0; c < t.numRows(); ++c) {
    std::int64_t lastSource = -1;
    for (std::uint64_t k = t.rowPtr()[c]; k < t.rowPtr()[c + 1]; ++k) {
      const std::uint32_t r = t.col()[k];
      EXPECT_GT(static_cast<std::int64_t>(r), lastSource);
      lastSource = r;
      EXPECT_EQ(t.val()[k], m.dense[r][c]);
    }
  }
  EXPECT_FALSE(t.hasTranspose());  // not recursive
}

TEST(CsrMatrix, ApproxBytesCountsTranspose) {
  const DenseCsr m = randomMatrix(100, 4, 3);
  const std::uint64_t withT = m.csr.approxBytes();
  la::CsrMatrix noT = la::CsrMatrix::fromCsr(
      m.csr.rowPtr(), m.csr.col(), m.csr.val(), m.csr.numCols(),
      /*withTranspose=*/false);
  EXPECT_GT(withT, noT.approxBytes());
  EXPECT_GT(noT.approxBytes(), 0u);
}

TEST(CsrMatrix, EmptyMatrix) {
  const la::CsrMatrix empty;
  EXPECT_EQ(empty.numRows(), 0u);
  EXPECT_EQ(empty.numNonZeros(), 0u);
  EXPECT_EQ(empty.blockCount(), 1u);
}

// ------------------------------------------------------------------ SpMV

TEST(Spmv, MatchesDenseReference) {
  const std::uint32_t n = 60;
  const DenseCsr m = randomMatrix(n, 5, 23);
  const std::vector<double> x = randomVector(n, 5);
  std::vector<double> y;
  la::spmv(m.csr, x, y);
  for (std::uint32_t r = 0; r < n; ++r) {
    double expect = 0.0;
    for (std::uint32_t c = 0; c < n; ++c) expect += m.dense[r][c] * x[c];
    EXPECT_NEAR(y[r], expect, 1e-12) << r;
  }
}

TEST(Spmv, RightMatchesLegacyLoopBitwise) {
  const DenseCsr m = randomMatrix(500, 6, 29);
  const std::vector<double> x = randomVector(500, 7, 0.3);
  std::vector<double> y;
  la::spmv(m.csr, x, y);
  EXPECT_TRUE(bitEqual(y, legacyGatherRight(m.csr, x)));
}

TEST(SpmvLeft, MatchesLegacyScatterBitwise) {
  // Zeros in x exercise the skip-zero contract; the scatter loop skipped
  // whole source rows, the transpose gather must skip the same terms.
  const DenseCsr m = randomMatrix(500, 6, 31);
  const std::vector<double> x = randomVector(500, 9, 0.4);
  std::vector<double> y;
  la::spmvLeft(m.csr, x, y);
  EXPECT_TRUE(bitEqual(y, legacyScatterLeft(m.csr, x)));
}

TEST(SpmvLeft, MatchesDenseReference) {
  const std::uint32_t n = 60;
  const DenseCsr m = randomMatrix(n, 5, 37);
  const std::vector<double> x = randomVector(n, 11);
  std::vector<double> y;
  la::spmvLeft(m.csr, x, y);
  for (std::uint32_t c = 0; c < n; ++c) {
    double expect = 0.0;
    for (std::uint32_t r = 0; r < n; ++r) expect += x[r] * m.dense[r][c];
    EXPECT_NEAR(y[c], expect, 1e-12) << c;
  }
}

TEST(Spmv, EmptyRowsProduceZeros) {
  const DenseCsr m = randomMatrix(50, 4, 41, /*emptyRows=*/{0, 17, 49});
  const std::vector<double> x = randomVector(50, 13);
  std::vector<double> y;
  la::spmv(m.csr, x, y);
  EXPECT_EQ(y[0], 0.0);
  EXPECT_EQ(y[17], 0.0);
  EXPECT_EQ(y[49], 0.0);
  // Left products through empty rows contribute nothing; states nobody
  // points at (empty transpose rows) come out zero.
  std::vector<double> yl;
  la::spmvLeft(m.csr, x, yl);
  EXPECT_TRUE(bitEqual(yl, legacyScatterLeft(m.csr, x)));
}

TEST(SpmvLeft, SparseFastPathMatchesGatherBitwise) {
  // A near-point-mass x takes the source-major scatter fast path; it must
  // agree bitwise with the dense gather (forced here by a dense x sharing
  // the same support values) and with the legacy reference.
  const std::uint32_t n = 800;
  const DenseCsr m = randomMatrix(n, 5, 131);
  std::vector<double> pointMass(n, 0.0);
  pointMass[3] = 0.7;
  pointMass[n - 2] = 0.3;
  std::vector<double> y;
  la::spmvLeft(m.csr, pointMass, y);
  EXPECT_TRUE(bitEqual(y, legacyScatterLeft(m.csr, pointMass)));
  for (std::uint32_t c = 0; c < n; ++c) {
    const double expect =
        0.7 * m.dense[3][c] + 0.3 * m.dense[n - 2][c];
    EXPECT_NEAR(y[c], expect, 1e-12) << c;
  }
}

// ------------------------------------------------------------------ SpMM

TEST(Spmm, MatchesPerVectorSpmvBitwise) {
  const std::uint32_t n = 300;
  const std::size_t k = 5;
  const DenseCsr m = randomMatrix(n, 6, 43);
  std::vector<double> X(static_cast<std::size_t>(n) * k);
  for (std::size_t j = 0; j < k; ++j) {
    const std::vector<double> x = randomVector(n, 100 + j, 0.2);
    for (std::uint32_t s = 0; s < n; ++s) X[s * k + j] = x[s];
  }
  std::vector<double> Y;
  la::spmm(m.csr, X, k, Y);
  std::vector<double> Yl;
  la::spmmLeft(m.csr, X, k, Yl);
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> x(n);
    for (std::uint32_t s = 0; s < n; ++s) x[s] = X[s * k + j];
    std::vector<double> y;
    la::spmv(m.csr, x, y);
    std::vector<double> yl;
    la::spmvLeft(m.csr, x, yl);
    for (std::uint32_t s = 0; s < n; ++s) {
      EXPECT_EQ(Y[s * k + j], y[s]) << "spmm vector " << j << " state " << s;
      EXPECT_EQ(Yl[s * k + j], yl[s])
          << "spmmLeft vector " << j << " state " << s;
    }
  }
}

// ----------------------------------------------------------- masked SpMM

/// Pack a legacy row-major n x k byte mask into the kernel's shape: k
/// per-column BitVectors, one bit per row. The byte mask stays the test
/// oracle; this bridge is the only conversion.
std::vector<la::BitVector> columnMasks(const std::vector<std::uint8_t>& mask,
                                       std::uint32_t n, std::size_t k) {
  std::vector<la::BitVector> cols(k, la::BitVector(n));
  for (std::uint32_t s = 0; s < n; ++s) {
    for (std::size_t j = 0; j < k; ++j) {
      if (mask[s * k + j] != 0) cols[j].set(s);
    }
  }
  return cols;
}

/// Reference masked update: per column j, frozen entries keep X, the rest
/// take the plain per-column SpMV value.
std::vector<double> maskedReference(const la::CsrMatrix& m,
                                    const std::vector<double>& X,
                                    std::size_t k,
                                    const std::vector<std::uint8_t>& mask) {
  const std::uint32_t n = m.numRows();
  std::vector<double> Y(X.size());
  for (std::size_t j = 0; j < k; ++j) {
    std::vector<double> x(n);
    for (std::uint32_t s = 0; s < n; ++s) x[s] = X[s * k + j];
    std::vector<double> y;
    la::spmv(m, x, y);
    for (std::uint32_t s = 0; s < n; ++s) {
      Y[s * k + j] = mask[s * k + j] ? X[s * k + j] : y[s];
    }
  }
  return Y;
}

TEST(SpmmMasked, FrozenEntriesKeepXAndLiveEntriesMatchSpmvBitwise) {
  const std::uint32_t n = 300;
  const std::size_t k = 5;
  const DenseCsr m = randomMatrix(n, 6, 211);
  std::vector<double> X(static_cast<std::size_t>(n) * k);
  std::vector<std::uint8_t> mask(X.size());
  util::Xoshiro256 rng(97);
  for (std::size_t i = 0; i < X.size(); ++i) {
    X[i] = rng.nextDouble();
    mask[i] = rng.nextDouble() < 0.3 ? 1 : 0;
  }
  std::vector<double> Y;
  la::spmmMasked(m.csr, X, k, columnMasks(mask, n, k), Y);
  EXPECT_TRUE(bitEqual(Y, maskedReference(m.csr, X, k, mask)));

  // The all-zero mask degenerates to plain spmm.
  std::fill(mask.begin(), mask.end(), 0);
  std::vector<double> plain;
  la::spmm(m.csr, X, k, plain);
  la::spmmMasked(m.csr, X, k, columnMasks(mask, n, k), Y);
  EXPECT_TRUE(bitEqual(Y, plain));

  // spmmLeftMasked freezes over the transpose product the same way.
  std::fill(mask.begin(), mask.end(), 0);
  for (std::size_t i = 0; i < mask.size(); i += 7) mask[i] = 1;
  std::vector<double> leftPlain;
  la::spmmLeft(m.csr, X, k, leftPlain);
  std::vector<double> leftMasked;
  la::spmmLeftMasked(m.csr, X, k, columnMasks(mask, n, k), leftMasked);
  for (std::size_t i = 0; i < leftMasked.size(); ++i) {
    const double expect = mask[i] ? X[i] : leftPlain[i];
    EXPECT_EQ(leftMasked[i], expect) << i;
  }
}

TEST(SpmmMasked, BitIdenticalAcrossPoolSizes) {
  const std::uint32_t n = 5000;
  const std::size_t k = 4;
  const DenseCsr m = randomMatrix(n, 8, 223);
  ASSERT_GE(m.csr.blockCount(), 2u);
  std::vector<double> X(static_cast<std::size_t>(n) * k);
  std::vector<std::uint8_t> mask(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) {
    X[i] = static_cast<double>((i * 2654435761u) % 1000) / 997.0;
    mask[i] = (i * 40503u) % 5 == 0 ? 1 : 0;
  }
  const std::vector<la::BitVector> packed = columnMasks(mask, n, k);
  std::vector<double> seq;
  la::spmmMasked(m.csr, X, k, packed, seq);
  // The packed path must also equal the byte-mask reference exactly.
  EXPECT_TRUE(bitEqual(seq, maskedReference(m.csr, X, k, mask)));
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    std::vector<double> Y;
    la::spmmMasked(m.csr, X, k, packed, Y, poolExec(pool));
    EXPECT_TRUE(bitEqual(Y, seq)) << threads << " threads";
  }
}

// ------------------------------------------------------ KeepOrientation

TEST(CsrMatrix, TransposeOnlyDropsOriginalWithClearErrors) {
  const DenseCsr m = randomMatrix(200, 5, 229);
  la::CsrMatrix tOnly = la::CsrMatrix::fromCsr(
      m.csr.rowPtr(), m.csr.col(), m.csr.val(), m.csr.numCols(),
      la::KeepOrientation::kTransposeOnly);
  EXPECT_FALSE(tOnly.hasOriginal());
  EXPECT_TRUE(tOnly.hasTranspose());
  // Counts survive the drop (rowPtr stays resident).
  EXPECT_EQ(tOnly.numRows(), m.csr.numRows());
  EXPECT_EQ(tOnly.numNonZeros(), m.csr.numNonZeros());
  // Dropped-orientation access fails loudly, never silently.
  EXPECT_THROW(tOnly.col(), std::logic_error);
  EXPECT_THROW(tOnly.val(), std::logic_error);
  const std::vector<double> x = randomVector(200, 31);
  std::vector<double> y;
  EXPECT_THROW(la::spmv(tOnly, x, y), std::logic_error);
  std::vector<double> X(x), Y;
  const std::vector<la::BitVector> mask(1, la::BitVector(200));
  EXPECT_THROW(la::spmmMasked(tOnly, X, 1, mask, Y), std::logic_error);

  // Left products still work and stay bitwise-equal to the both-orientation
  // matrix (the sparse scatter fast path needs the original, so the
  // transpose-only matrix must fall back to the bitwise-identical gather).
  std::vector<double> yBoth;
  la::spmvLeft(m.csr, x, yBoth);
  la::spmvLeft(tOnly, x, y);
  EXPECT_TRUE(bitEqual(y, yBoth));
  std::vector<double> pointMass(200, 0.0);
  pointMass[7] = 1.0;
  la::spmvLeft(m.csr, pointMass, yBoth);
  la::spmvLeft(tOnly, pointMass, y);
  EXPECT_TRUE(bitEqual(y, yBoth));
}

TEST(CsrMatrix, OriginalOnlyRefusesTransposedAccess) {
  const DenseCsr m = randomMatrix(100, 4, 233);
  la::CsrMatrix oOnly = la::CsrMatrix::fromCsr(
      m.csr.rowPtr(), m.csr.col(), m.csr.val(), m.csr.numCols(),
      la::KeepOrientation::kOriginalOnly);
  EXPECT_TRUE(oOnly.hasOriginal());
  EXPECT_FALSE(oOnly.hasTranspose());
  EXPECT_THROW(oOnly.transposed(), std::logic_error);
  const std::vector<double> x = randomVector(100, 37);
  std::vector<double> y;
  EXPECT_THROW(la::spmvLeft(oOnly, x, y), std::logic_error);
  la::spmv(oOnly, x, y);  // right products unaffected
  std::vector<double> yBoth;
  la::spmv(m.csr, x, yBoth);
  EXPECT_TRUE(bitEqual(y, yBoth));
}

TEST(CsrMatrix, ApproxBytesReflectsDroppedOrientations) {
  const DenseCsr m = randomMatrix(300, 6, 239);
  const auto bytes = [&](la::KeepOrientation keep) {
    return la::CsrMatrix::fromCsr(m.csr.rowPtr(), m.csr.col(), m.csr.val(),
                                  m.csr.numCols(), keep)
        .approxBytes();
  };
  const std::uint64_t both = bytes(la::KeepOrientation::kBoth);
  const std::uint64_t originalOnly = bytes(la::KeepOrientation::kOriginalOnly);
  const std::uint64_t transposeOnly =
      bytes(la::KeepOrientation::kTransposeOnly);
  EXPECT_EQ(both, m.csr.approxBytes());
  EXPECT_LT(originalOnly, both);
  EXPECT_LT(transposeOnly, both);
  // The transpose-only build keeps the original rowPtr alongside the full
  // transpose, so it sits between the single- and double-residency sizes.
  EXPECT_GT(transposeOnly, originalOnly);
}

// ---------------------------------------------------------- determinism

TEST(Spmv, BitIdenticalAcrossPoolSizes) {
  const DenseCsr m = randomMatrix(5000, 8, 47);  // ~40k nnz -> >1 block
  ASSERT_GE(m.csr.blockCount(), 2u);
  const std::vector<double> x = randomVector(5000, 15, 0.2);
  std::vector<double> seq;
  la::spmv(m.csr, x, seq);
  std::vector<double> seqLeft;
  la::spmvLeft(m.csr, x, seqLeft);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    const la::Exec exec = poolExec(pool);
    std::vector<double> y;
    la::spmv(m.csr, x, y, exec);
    EXPECT_TRUE(bitEqual(y, seq)) << threads << " threads (right)";
    std::vector<double> yl;
    la::spmvLeft(m.csr, x, yl, exec);
    EXPECT_TRUE(bitEqual(yl, seqLeft)) << threads << " threads (left)";
  }
}

TEST(Spmm, BitIdenticalAcrossPoolSizes) {
  const std::uint32_t n = 5000;
  const std::size_t k = 3;
  const DenseCsr m = randomMatrix(n, 8, 53);
  std::vector<double> X(static_cast<std::size_t>(n) * k);
  for (std::size_t i = 0; i < X.size(); ++i) {
    X[i] = static_cast<double>((i * 2654435761u) % 1000) / 997.0;
  }
  std::vector<double> seq;
  la::spmmLeft(m.csr, X, k, seq);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    std::vector<double> Y;
    la::spmmLeft(m.csr, X, k, Y, poolExec(pool));
    EXPECT_TRUE(bitEqual(Y, seq)) << threads << " threads";
  }
}

TEST(Exec, ThresholdKeepsSmallMatricesSequential) {
  const DenseCsr m = randomMatrix(50, 4, 59);
  bool ran = false;
  la::Exec exec;
  exec.runner = [&ran](std::vector<std::function<void()>> tasks) {
    ran = true;
    for (auto& t : tasks) t();
  };
  exec.parallelThresholdNnz = 1u << 20;  // far above this matrix
  const std::vector<double> x = randomVector(50, 17);
  std::vector<double> y;
  la::spmv(m.csr, x, y, exec);
  EXPECT_FALSE(ran);
  exec.parallelThresholdNnz = 1;
  la::spmv(m.csr, x, y, exec);
  // A single block also stays sequential; only multi-block matrices fan out.
  EXPECT_EQ(ran, m.csr.blockCount() > 1);
}

// --------------------------------------------------------------- solvers

/// Birth-death chain CSR (absorbing ends): up-probability p from the
/// interior, states 0 and n-1 self-loop. Sparse by construction, so solver
/// tests can use chains far beyond what a dense MatrixModel affords.
la::CsrMatrix birthDeathCsr(std::uint32_t n, double p) {
  std::vector<std::uint64_t> rowPtr{0};
  std::vector<std::uint32_t> col;
  std::vector<double> val;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (s == 0 || s == n - 1) {
      col.push_back(s);
      val.push_back(1.0);
    } else {
      col.push_back(s - 1);
      val.push_back(1.0 - p);
      col.push_back(s + 1);
      val.push_back(p);
    }
    rowPtr.push_back(col.size());
  }
  return la::CsrMatrix::fromCsr(std::move(rowPtr), std::move(col),
                                std::move(val), n);
}

TEST(GaussSeidel, MatchesLegacyValueIterationBitwise) {
  // The legacy mc::unbounded loop, inlined: Gauss-Seidel over undetermined
  // states of P(F top) on a gambler's-ruin chain (interior states hit the
  // top with probability strictly between 0 and 1, so the solver really
  // iterates).
  auto model = test::gamblersRuin(60, 0.45, 30);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector psi(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 60) psi.set(s);
  }

  const la::BitVector allStates(d.numStates(), true);
  const auto prob0 = mc::prob0States(d, allStates, psi);
  const auto prob1 = mc::prob1States(d, allStates, psi);
  std::vector<double> legacy(d.numStates(), 0.0);
  std::vector<std::uint32_t> undetermined;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (prob1.get(s)) legacy[s] = 1.0;
    if (!prob0.get(s) && !prob1.get(s)) undetermined.push_back(s);
  }
  for (std::uint64_t iter = 0; iter < 1'000'000; ++iter) {
    double maxDelta = 0.0;
    for (const std::uint32_t s : undetermined) {
      double acc = 0.0;
      for (std::uint64_t k = d.rowPtr()[s]; k < d.rowPtr()[s + 1]; ++k) {
        acc += d.val()[k] * legacy[d.col()[k]];
      }
      maxDelta = std::max(maxDelta, std::fabs(acc - legacy[s]));
      legacy[s] = acc;
    }
    if (maxDelta < 1e-12) break;
  }

  const mc::ReachResult reach = mc::reachProb(d, psi);
  EXPECT_TRUE(reach.converged);
  EXPECT_GT(reach.iterations, 0u);
  EXPECT_LT(reach.residual, 1e-12);
  EXPECT_TRUE(bitEqual(reach.stateValues, legacy));
}

TEST(Jacobi, ConvergesToSameFixedPointAsGaussSeidel) {
  auto model = test::gamblersRuin(80, 0.45, 40);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector psi(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 80) psi.set(s);
  }
  mc::ReachOptions jacobi;
  jacobi.solver = la::SolverKind::kJacobi;
  const mc::ReachResult viaJacobi = mc::reachProb(d, psi, jacobi);
  const mc::ReachResult viaGs = mc::reachProb(d, psi);
  ASSERT_TRUE(viaJacobi.converged);
  ASSERT_TRUE(viaGs.converged);
  // Jacobi reads only the previous iterate, so it typically needs at least
  // as many sweeps as Gauss-Seidel to pass the same threshold.
  EXPECT_GE(viaJacobi.iterations, viaGs.iterations);
  ASSERT_EQ(viaJacobi.stateValues.size(), viaGs.stateValues.size());
  for (std::size_t s = 0; s < viaGs.stateValues.size(); ++s) {
    EXPECT_NEAR(viaJacobi.stateValues[s], viaGs.stateValues[s], 1e-9) << s;
  }
}

TEST(Jacobi, BitIdenticalAcrossPoolSizes) {
  // 30k active rows -> several 8192-row Jacobi chunks; a bounded iteration
  // budget keeps the test fast (determinism, not convergence, is asserted).
  const std::uint32_t n = 30'000;
  const la::CsrMatrix P = birthDeathCsr(n, 0.45);
  std::vector<std::uint32_t> active;
  for (std::uint32_t s = 1; s + 1 < n; ++s) active.push_back(s);
  la::SolverOptions options;
  options.epsilon = 1e-12;
  options.maxIterations = 300;
  const la::Jacobi jacobi;

  std::vector<double> seq(n, 0.0);
  seq[n - 1] = 1.0;
  const la::SolveStats seqStats = jacobi.solve(P, active, nullptr, seq, options);
  EXPECT_EQ(seqStats.iterations, 300u);  // diffusion is slow: budget-bound

  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    std::vector<double> x(n, 0.0);
    x[n - 1] = 1.0;
    const la::SolveStats stats =
        jacobi.solve(P, active, nullptr, x, options, poolExec(pool));
    EXPECT_EQ(stats.iterations, seqStats.iterations) << threads;
    EXPECT_EQ(stats.residual, seqStats.residual) << threads;
    EXPECT_TRUE(bitEqual(x, seq)) << threads;
  }
}

TEST(GaussSeidelRB, ConvergesToSameFixedPointAsGaussSeidel) {
  auto model = test::gamblersRuin(80, 0.45, 40);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector psi(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 80) psi.set(s);
  }
  mc::ReachOptions rb;
  rb.solver = la::SolverKind::kGaussSeidelRB;
  const mc::ReachResult viaRb = mc::reachProb(d, psi, rb);
  const mc::ReachResult viaGs = mc::reachProb(d, psi);
  const mc::ReachResult viaJacobi = [&] {
    mc::ReachOptions jo;
    jo.solver = la::SolverKind::kJacobi;
    return mc::reachProb(d, psi, jo);
  }();
  ASSERT_TRUE(viaRb.converged);
  EXPECT_EQ(viaRb.solver, "gauss-seidel-rb");
  // Red-black couples the two colors within a sweep, so it should not need
  // more iterations than pure Jacobi to pass the same threshold.
  EXPECT_LE(viaRb.iterations, viaJacobi.iterations);
  ASSERT_EQ(viaRb.stateValues.size(), viaGs.stateValues.size());
  for (std::size_t s = 0; s < viaGs.stateValues.size(); ++s) {
    EXPECT_NEAR(viaRb.stateValues[s], viaGs.stateValues[s], 1e-9) << s;
  }
}

TEST(GaussSeidelRB, BitIdenticalAcrossPoolSizes) {
  // 30k active rows -> several chunks of both colors; a bounded iteration
  // budget keeps the test fast (determinism, not convergence, is asserted).
  const std::uint32_t n = 30'000;
  const la::CsrMatrix P = birthDeathCsr(n, 0.45);
  std::vector<std::uint32_t> active;
  for (std::uint32_t s = 1; s + 1 < n; ++s) active.push_back(s);
  la::SolverOptions options;
  options.epsilon = 1e-12;
  options.maxIterations = 300;
  const la::GaussSeidelRB solver;

  std::vector<double> seq(n, 0.0);
  seq[n - 1] = 1.0;
  const la::SolveStats seqStats =
      solver.solve(P, active, nullptr, seq, options);
  EXPECT_EQ(seqStats.iterations, 300u);  // diffusion is slow: budget-bound

  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    std::vector<double> x(n, 0.0);
    x[n - 1] = 1.0;
    const la::SolveStats stats =
        solver.solve(P, active, nullptr, x, options, poolExec(pool));
    EXPECT_EQ(stats.iterations, seqStats.iterations) << threads;
    EXPECT_EQ(stats.residual, seqStats.residual) << threads;
    EXPECT_TRUE(bitEqual(x, seq)) << threads;
  }
}

TEST(GaussSeidelRB, SelectableThroughCheckOptions) {
  const auto model = test::gamblersRuin(40, 0.45, 20);
  const auto d = dtmc::buildExplicit(model).dtmc;
  mc::CheckOptions options;
  options.linearSolver = la::SolverKind::kGaussSeidelRB;
  const mc::Checker checker(d, model, options);
  const mc::CheckResult rb = checker.check("P=? [ F s=40 ]");
  ASSERT_TRUE(rb.solver.has_value());
  EXPECT_EQ(rb.solver->solver, "gauss-seidel-rb");
  const mc::Checker gsChecker(d, model);
  const mc::CheckResult gs = gsChecker.check("P=? [ F s=40 ]");
  EXPECT_NEAR(rb.value, gs.value, 1e-9);
}

TEST(GaussSeidel, KnownChainGamblersRuin) {
  // p = 1/2 gambler's ruin on 0..10 from 4: P(hit 10 before 0) = 4/10.
  auto model = test::gamblersRuin(10, 0.5, 4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  la::BitVector psi(d.numStates());
  const auto varIdx = d.varLayout().indexOf("s");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 10) psi.set(s);
  }
  for (const la::SolverKind kind :
       {la::SolverKind::kGaussSeidel, la::SolverKind::kJacobi,
        la::SolverKind::kGaussSeidelRB}) {
    mc::ReachOptions options;
    options.solver = kind;
    const mc::ReachResult reach = mc::reachProb(d, psi, options);
    ASSERT_TRUE(reach.converged) << la::solverKindName(kind);
    double fromInit = 0.0;
    for (std::uint32_t s = 0; s < d.numStates(); ++s) {
      fromInit += d.initialDistribution()[s] * reach.stateValues[s];
    }
    EXPECT_NEAR(fromInit, 0.4, 1e-9) << la::solverKindName(kind);
  }
}

TEST(Power, MatchesLegacySteadyLoopBitwise) {
  const auto model = test::randomModel(120, 4, 73);
  const auto d = dtmc::buildExplicit(model).dtmc;

  // The pre-refactor mc::steady loop, inlined.
  std::vector<double> pi = d.initialDistribution();
  std::vector<double> next(pi.size());
  std::uint64_t iterations = 0;
  for (std::uint64_t iter = 1; iter <= 200'000; ++iter) {
    const std::vector<double> legacy = legacyScatterLeft(d.matrix(), pi);
    next = legacy;
    double delta = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) {
      delta += std::fabs(next[s] - pi[s]);
    }
    pi.swap(next);
    iterations = iter;
    if (delta < 1e-13) break;
  }

  const mc::SteadyResult ss = mc::steadyStateDistribution(d);
  EXPECT_TRUE(ss.converged);
  EXPECT_EQ(ss.iterations, iterations);
  EXPECT_LT(ss.residual, 1e-13);
  EXPECT_TRUE(bitEqual(ss.distribution, pi));
}

TEST(Power, ParallelBitIdentical) {
  const auto model = test::randomModel(2500, 10, 79);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::SteadyResult seq = mc::steadyStateDistribution(d);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::ThreadPool pool(threads);
    mc::SteadyOptions options;
    options.exec = poolExec(pool);
    const mc::SteadyResult parallel = mc::steadyStateDistribution(d, options);
    EXPECT_EQ(parallel.iterations, seq.iterations) << threads;
    EXPECT_EQ(parallel.residual, seq.residual) << threads;
    EXPECT_TRUE(bitEqual(parallel.distribution, seq.distribution)) << threads;
  }
}

TEST(Power, CesaroReportsConvergedOnPeriodicChain) {
  const auto model = test::cycleModel(4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  mc::SteadyOptions options;
  options.cesaroAveraging = true;
  options.maxIterations = 4000;
  const mc::SteadyResult ss = mc::steadyStateDistribution(d, options);
  EXPECT_TRUE(ss.converged);
  EXPECT_EQ(ss.iterations, 4000u);
  for (const double p : ss.distribution) EXPECT_NEAR(p, 0.25, 1e-3);
}

// ------------------------------------------------- TransientSweep (SpMM)

TEST(TransientSweep, MultiVectorMatchesSoloSweepsBitwise) {
  const auto model = test::randomModel(90, 3, 83);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::uint32_t n = d.numStates();
  // Three start distributions: the initial one and two unit vectors.
  std::vector<std::vector<double>> starts{d.initialDistribution()};
  std::vector<double> unit(n, 0.0);
  unit[n / 2] = 1.0;
  starts.push_back(unit);
  std::fill(unit.begin(), unit.end(), 0.0);
  unit[n - 1] = 1.0;
  starts.push_back(unit);

  mc::TransientSweep batched(d, starts);
  batched.advanceTo(9);
  const auto reward = d.evalReward(model, "");
  for (std::size_t j = 0; j < starts.size(); ++j) {
    mc::TransientSweep solo(d, {starts[j]});
    solo.advanceTo(9);
    EXPECT_TRUE(bitEqual(batched.distributionAt(j), solo.distributionAt(0)))
        << j;
    EXPECT_EQ(batched.expectedRewardAt(j, reward),
              solo.expectedRewardAt(0, reward))
        << j;
  }
  // The single-vector constructor is the k = 1 batch from the initial
  // distribution.
  mc::TransientSweep plain(d);
  plain.advanceTo(9);
  EXPECT_TRUE(bitEqual(plain.distribution(), batched.distributionAt(0)));
  EXPECT_EQ(plain.expectedReward(reward), batched.expectedRewardAt(0, reward));

  // Single-vector accessors refuse multi-vector sweeps instead of silently
  // returning interleaved data.
  EXPECT_THROW(batched.distribution(), std::logic_error);
  EXPECT_THROW(batched.expectedReward(reward), std::logic_error);
}

TEST(TransientSweep, ParallelExecMatchesSequentialBitwise) {
  const auto model = test::randomModel(2500, 10, 89);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto reward = d.evalReward(model, "");
  const double seq = mc::instantaneousReward(d, reward, 25);
  for (const std::size_t threads : {2u, 8u}) {
    engine::ThreadPool pool(threads);
    const double parallel =
        mc::instantaneousReward(d, reward, 25, poolExec(pool));
    EXPECT_EQ(parallel, seq) << threads;
  }
}

// -------------------------------------------------- checker diagnostics

TEST(Checker, SurfacesSolverDiagnostics) {
  const auto model = test::gamblersRuin(10, 0.5, 4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const mc::Checker checker(d, model);

  const mc::CheckResult reach = checker.check("P=? [ F s=10 ]");
  EXPECT_NEAR(reach.value, 0.4, 1e-9);
  ASSERT_TRUE(reach.solver.has_value());
  EXPECT_EQ(reach.solver->solver, "gauss-seidel");
  EXPECT_TRUE(reach.solver->converged);
  EXPECT_GT(reach.solver->iterations, 0u);

  const mc::CheckResult steady = checker.check("R=? [ S ]");
  ASSERT_TRUE(steady.solver.has_value());
  EXPECT_EQ(steady.solver->solver, "power");

  const mc::CheckResult transient = checker.check("R=? [ I=5 ]");
  EXPECT_FALSE(transient.solver.has_value());

  // When Prob0/Prob1 classify every state the linear solver never runs, so
  // no solver report is claimed.
  const auto trivial = test::twoStateChain(0.3, 0.4);
  const auto dTrivial = dtmc::buildExplicit(trivial).dtmc;
  const mc::Checker trivialChecker(dTrivial, trivial);
  const mc::CheckResult noSolve = trivialChecker.check("P=? [ F s=1 ]");
  EXPECT_NEAR(noSolve.value, 1.0, 1e-12);
  EXPECT_FALSE(noSolve.solver.has_value());
}

TEST(Checker, JacobiOptionMatchesGaussSeidelValues) {
  const auto model = test::gamblersRuin(40, 0.45, 20);
  const auto d = dtmc::buildExplicit(model).dtmc;
  mc::CheckOptions jacobi;
  jacobi.linearSolver = la::SolverKind::kJacobi;
  const mc::Checker gsChecker(d, model);
  const mc::Checker jChecker(d, model, jacobi);
  const mc::CheckResult gs = gsChecker.check("P=? [ F s=40 ]");
  const mc::CheckResult j = jChecker.check("P=? [ F s=40 ]");
  EXPECT_EQ(gs.solver->solver, "gauss-seidel");
  EXPECT_EQ(j.solver->solver, "jacobi");
  EXPECT_NEAR(j.value, gs.value, 1e-9);
}

TEST(Engine, SolverDiagnosticsReachResults) {
  engine::EngineOptions options;
  options.threads = 2;
  engine::AnalysisEngine engine(options);
  const auto model = test::gamblersRuin(10, 0.5, 4);
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F s=10 ]", "R=? [ I=7 ]"};
  const engine::AnalysisResponse response = engine.analyze(request);
  ASSERT_TRUE(response.ok()) << response.error;
  ASSERT_TRUE(response.results[0].solver.has_value());
  EXPECT_EQ(response.results[0].solver->solver, "gauss-seidel");
  EXPECT_TRUE(response.results[0].solver->converged);
  EXPECT_GT(response.results[0].solver->iterations, 0u);
  EXPECT_NEAR(response.results[0].value, 0.4, 1e-9);
  EXPECT_FALSE(response.results[1].solver.has_value());
}

TEST(Engine, ExactResultsBitIdenticalAcrossPoolSizes) {
  // The full exact pipeline (build, batched sweep, unbounded solve) with
  // parallel linear algebra forced on: bytes must match at 1/2/8 threads.
  const auto model = test::randomModel(600, 6, 107);
  const std::vector<std::string> properties{
      "R=? [ I=40 ]", "R=? [ C<=25 ]", "P=? [ F target ]", "R=? [ S ]"};
  std::vector<std::vector<double>> values;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    engine::EngineOptions options;
    options.threads = threads;
    options.laParallelThresholdNnz = 1;  // force the parallel path
    engine::AnalysisEngine engine(options);
    engine::AnalysisRequest request;
    request.model = &model;
    request.properties = properties;
    const engine::AnalysisResponse response = engine.analyze(request);
    ASSERT_TRUE(response.ok()) << response.error;
    std::vector<double> row;
    for (const auto& result : response.results) row.push_back(result.value);
    values.push_back(std::move(row));
  }
  EXPECT_TRUE(bitEqual(values[1], values[0]));
  EXPECT_TRUE(bitEqual(values[2], values[0]));
}

// ------------------------------------------------------------------ SIMD

std::vector<la::SimdTarget> supportedTargets() {
  std::vector<la::SimdTarget> targets;
  for (const la::SimdTarget t :
       {la::SimdTarget::kScalar, la::SimdTarget::kSse2, la::SimdTarget::kAvx2,
        la::SimdTarget::kNeon}) {
    if (la::simdTargetSupported(t)) targets.push_back(t);
  }
  return targets;
}

TEST(Simd, TargetNamesRoundTripAndScalarAlwaysWorks) {
  for (const la::SimdTarget t : supportedTargets()) {
    const char* name = la::simdTargetName(t);
    const std::optional<la::SimdTarget> parsed = la::parseSimdTarget(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, t);
    EXPECT_GE(la::simdLanes(t), 1u);
  }
  EXPECT_FALSE(la::parseSimdTarget("bogus").has_value());
  EXPECT_FALSE(la::parseSimdTarget("").has_value());
  // The scalar reference is compiled into every build; the probed best
  // target must itself pass the support probe.
  EXPECT_TRUE(la::simdTargetSupported(la::SimdTarget::kScalar));
  EXPECT_EQ(la::simdLanes(la::SimdTarget::kScalar), 1u);
  EXPECT_TRUE(la::simdTargetSupported(la::bestSimdTarget()));
}

TEST(Simd, ResolveEnvValueBranches) {
  std::string warning;
  // Absent / empty picks the probed best target, silently.
  EXPECT_EQ(la::resolveSimdEnvValue(nullptr, &warning), la::bestSimdTarget());
  EXPECT_TRUE(warning.empty()) << warning;
  EXPECT_EQ(la::resolveSimdEnvValue("", &warning), la::bestSimdTarget());
  EXPECT_TRUE(warning.empty()) << warning;
  // A supported explicit name wins.
  for (const la::SimdTarget t : supportedTargets()) {
    warning.clear();
    EXPECT_EQ(la::resolveSimdEnvValue(la::simdTargetName(t), &warning), t);
    EXPECT_TRUE(warning.empty()) << warning;
  }
  // Unknown values degrade to scalar with a warning — never to a wider
  // target (a typo must not silently change which kernels run).
  warning.clear();
  EXPECT_EQ(la::resolveSimdEnvValue("bogus", &warning),
            la::SimdTarget::kScalar);
  EXPECT_FALSE(warning.empty());
  // So do names this binary cannot run (compiled out or unsupported CPU).
  for (const la::SimdTarget t :
       {la::SimdTarget::kSse2, la::SimdTarget::kAvx2,
        la::SimdTarget::kNeon}) {
    if (la::simdTargetSupported(t)) continue;
    warning.clear();
    EXPECT_EQ(la::resolveSimdEnvValue(la::simdTargetName(t), &warning),
              la::SimdTarget::kScalar);
    EXPECT_FALSE(warning.empty()) << la::simdTargetName(t);
  }
}

TEST(Simd, EnvVariableRoutesThroughResolution) {
  // activeSimdTarget() latches its first read, so the integration check
  // goes through simdTargetFromEnv() directly.
  ASSERT_EQ(setenv("MIMOSTAT_SIMD", "scalar", 1), 0);
  EXPECT_EQ(la::simdTargetFromEnv(), la::SimdTarget::kScalar);
  ASSERT_EQ(setenv("MIMOSTAT_SIMD", "definitely-not-a-target", 1), 0);
  EXPECT_EQ(la::simdTargetFromEnv(), la::SimdTarget::kScalar);
  ASSERT_EQ(unsetenv("MIMOSTAT_SIMD"), 0);
  EXPECT_EQ(la::simdTargetFromEnv(), la::bestSimdTarget());
}

TEST(Simd, ResolvePrecedence) {
  EXPECT_EQ(la::resolveSimdTarget(std::nullopt), la::activeSimdTarget());
  for (const la::SimdTarget t : supportedTargets()) {
    EXPECT_EQ(la::resolveSimdTarget(t), t);
  }
  // A forced-but-unsupported target degrades to scalar, never wider.
  for (const la::SimdTarget t :
       {la::SimdTarget::kSse2, la::SimdTarget::kAvx2,
        la::SimdTarget::kNeon}) {
    if (la::simdTargetSupported(t)) continue;
    EXPECT_EQ(la::resolveSimdTarget(t), la::SimdTarget::kScalar);
  }
}

TEST(Simd, PanelWidthKeepsLaneMultiplesAndL2Residency) {
  // Narrow tiles stay whole (no point splitting below one panel)...
  EXPECT_EQ(la::spmmPanelWidth(100, 3, 4), 3u);
  EXPECT_EQ(la::spmmPanelWidth(100, 1, 4), 1u);
  EXPECT_EQ(la::spmmPanelWidth(100, 0, 4), 1u);
  // ...wide tiles clamp to the 16-column cap, rounded to a lane multiple.
  EXPECT_EQ(la::spmmPanelWidth(100, 40, 4), 16u);
  EXPECT_EQ(la::spmmPanelWidth(100, 40, 1), 16u);
  EXPECT_EQ(la::spmmPanelWidth(100, 14, 4), 12u);
  // A tall RHS narrows the panel so one panel's X slice fits the fixed
  // 256 KiB budget: 8192 rows * 8 bytes = 64 KiB per column -> 4 columns.
  EXPECT_EQ(la::spmmPanelWidth(8192, 40, 4), 4u);
  EXPECT_EQ(la::spmmPanelWidth(8192, 40, 2), 4u);
  // When even one whole vector of columns blows the budget, narrowing
  // would only re-stream the CSR arrays without a hit-rate win: go wide.
  EXPECT_EQ(la::spmmPanelWidth(1u << 20, 40, 4), 16u);
  EXPECT_EQ(la::spmmPanelWidth(0, 40, 4), 16u);
}

/// One SpMM workload: matrix, row-major RHS tile, byte mask + its packed
/// per-column form. Deterministic in (n, k, seed).
struct SpmmCase {
  DenseCsr m;
  std::size_t k = 0;
  std::vector<double> X;
  std::vector<std::uint8_t> mask;
  std::vector<la::BitVector> packed;
};

SpmmCase makeSpmmCase(std::uint32_t n, std::size_t k, std::uint64_t seed) {
  SpmmCase c{randomMatrix(n, 4, seed), k, {}, {}, {}};
  c.X.resize(static_cast<std::size_t>(n) * k);
  c.mask.resize(c.X.size());
  util::Xoshiro256 rng(seed ^ 0x9e3779b97f4a7c15ull);
  for (std::size_t i = 0; i < c.X.size(); ++i) {
    c.X[i] = rng.nextDouble();
    c.mask[i] = rng.nextDouble() < 0.25 ? 1 : 0;
  }
  c.packed = columnMasks(c.mask, n, k);
  return c;
}

/// All six dispatched kernels run under one Exec. The spmv pair uses
/// column 0 of X (or zeros when k == 0 — the empty tile still exercises
/// resize-and-return).
struct KernelOutputs {
  std::vector<double> v, vl, m, ml, mm, mlm;
};

KernelOutputs runAllKernels(const SpmmCase& c, const la::Exec& exec) {
  const std::uint32_t n = c.m.csr.numRows();
  std::vector<double> x(n, 0.0);
  if (c.k > 0) {
    for (std::uint32_t s = 0; s < n; ++s) x[s] = c.X[s * c.k];
  }
  KernelOutputs o;
  la::spmv(c.m.csr, x, o.v, exec);
  la::spmvLeft(c.m.csr, x, o.vl, exec);
  la::spmm(c.m.csr, c.X, c.k, o.m, exec);
  la::spmmLeft(c.m.csr, c.X, c.k, o.ml, exec);
  la::spmmMasked(c.m.csr, c.X, c.k, c.packed, o.mm, exec);
  la::spmmLeftMasked(c.m.csr, c.X, c.k, c.packed, o.mlm, exec);
  return o;
}

void expectAllBitEqual(const KernelOutputs& got, const KernelOutputs& want,
                       const std::string& label) {
  EXPECT_TRUE(bitEqual(got.v, want.v)) << label << " spmv";
  EXPECT_TRUE(bitEqual(got.vl, want.vl)) << label << " spmvLeft";
  EXPECT_TRUE(bitEqual(got.m, want.m)) << label << " spmm";
  EXPECT_TRUE(bitEqual(got.ml, want.ml)) << label << " spmmLeft";
  EXPECT_TRUE(bitEqual(got.mm, want.mm)) << label << " spmmMasked";
  EXPECT_TRUE(bitEqual(got.mlm, want.mlm)) << label << " spmmLeftMasked";
}

TEST(Simd, TailSizesBitwiseMatchScalarAndDenseOracle) {
  // n and k sweep 1 / lane-1 / lane / lane+1 per supported target (k == 0
  // is covered by SpmmStats below; n == 0 by EmptyTile). Remainder columns
  // take the scalar-tail path inside the panel kernel, so lane-straddling
  // sizes are exactly where a bad tail would show.
  la::Exec scalarExec;
  scalarExec.simd = la::SimdTarget::kScalar;
  for (const la::SimdTarget target : supportedTargets()) {
    const std::size_t lanes = la::simdLanes(target);
    std::vector<std::size_t> sizes{1, 2, 3};
    if (lanes > 1) {
      sizes = {1, lanes - 1, lanes, lanes + 1, 2 * lanes + 1};
    }
    la::Exec exec;
    exec.simd = target;
    for (const std::size_t k : sizes) {
      for (const std::size_t n : sizes) {
        const SpmmCase c = makeSpmmCase(static_cast<std::uint32_t>(n), k,
                                        1000 * n + k);
        const std::string label = std::string(la::simdTargetName(target)) +
                                  " n=" + std::to_string(n) +
                                  " k=" + std::to_string(k);
        expectAllBitEqual(runAllKernels(c, exec),
                          runAllKernels(c, scalarExec), label);
        // The vectorized spmm also has to be *right*, not merely
        // self-consistent: check against the dense oracle.
        std::vector<double> Y;
        la::spmm(c.m.csr, c.X, k, Y, exec);
        for (std::size_t r = 0; r < n; ++r) {
          for (std::size_t j = 0; j < k; ++j) {
            double expect = 0.0;
            for (std::size_t col = 0; col < n; ++col) {
              expect += c.m.dense[r][col] * c.X[col * k + j];
            }
            EXPECT_NEAR(Y[r * k + j], expect, 1e-12) << label;
          }
        }
      }
    }
  }
}

TEST(Simd, EmptyTileAndEmptyMatrixAreValid) {
  const SpmmCase c = makeSpmmCase(50, 3, 7);
  std::vector<double> Y(5, 1.0);
  la::SpmmStats stats;
  la::spmm(c.m.csr, {}, 0, Y, la::Exec{}, &stats);
  EXPECT_TRUE(Y.empty());
  EXPECT_EQ(stats.panels, 0u);
  EXPECT_EQ(stats.columnTasks, 0u);
  // A 0 x 0 matrix with a non-zero column count is the other degenerate
  // axis: the product is an empty tile whatever k says.
  const la::CsrMatrix empty = la::CsrMatrix::fromCsr({0}, {}, {}, 0);
  std::vector<double> Ze(3, 1.0);
  la::spmm(empty, {}, 4, Ze, la::Exec{}, &stats);
  EXPECT_TRUE(Ze.empty());
}

TEST(Simd, ForcedDispatchBitIdenticalAcrossTargetsAndThreads) {
  // Large enough for several row blocks and column panels; odd k so every
  // target sees remainder columns. The scalar sequential output is the
  // one reference every (target, thread-count) combination must hit.
  SpmmCase c = makeSpmmCase(6000, 11, 811);
  c.m.dense.clear();  // unused here; keep the fixture light
  ASSERT_GE(c.m.csr.blockCount(), 2u);
  la::Exec scalarExec;
  scalarExec.simd = la::SimdTarget::kScalar;
  const KernelOutputs ref = runAllKernels(c, scalarExec);
  for (const la::SimdTarget target : supportedTargets()) {
    la::Exec exec;
    exec.simd = target;
    expectAllBitEqual(runAllKernels(c, exec), ref,
                      std::string(la::simdTargetName(target)) + " seq");
    for (const std::size_t threads : {1u, 2u, 8u}) {
      engine::ThreadPool pool(threads);
      la::Exec pexec = poolExec(pool);
      pexec.simd = target;
      expectAllBitEqual(runAllKernels(c, pexec), ref,
                        std::string(la::simdTargetName(target)) + " x" +
                            std::to_string(threads));
    }
  }
}

TEST(Simd, OddPanelWidthsExerciseUnalignedColumnOffsets) {
  // Odd row stride (k = 13) and odd forced panel widths put every vector
  // load/store at unaligned byte offsets and start panels mid-vector;
  // loadu/storeu kernels must not care, bitwise.
  const SpmmCase c = makeSpmmCase(257, 13, 977);
  la::Exec scalarExec;
  scalarExec.simd = la::SimdTarget::kScalar;
  std::vector<double> ref;
  la::spmmMasked(c.m.csr, c.X, c.k, c.packed, ref, scalarExec);
  for (const la::SimdTarget target : supportedTargets()) {
    for (const std::size_t panelColumns : {1u, 3u, 5u, 7u, 16u}) {
      la::Exec exec;
      exec.simd = target;
      exec.spmmPanelColumns = panelColumns;
      std::vector<double> Y;
      la::SpmmStats stats;
      la::spmmMasked(c.m.csr, c.X, c.k, c.packed, Y, exec, &stats);
      EXPECT_TRUE(bitEqual(Y, ref))
          << la::simdTargetName(target) << " panel=" << panelColumns;
      EXPECT_EQ(stats.panels, (c.k + panelColumns - 1) / panelColumns);
    }
  }
}

TEST(Simd, SpmmStatsReportPanelsTasksAndTarget) {
  // 1000-row RHS: 8 KiB per column, far inside the 256 KiB budget, so
  // panels stay 16 wide -> ceil(40 / 16) = 3 per product.
  const SpmmCase c = makeSpmmCase(1000, 40, 313);
  la::SpmmStats stats;
  std::vector<double> Y;
  la::spmm(c.m.csr, c.X, c.k, Y, la::Exec{}, &stats);
  EXPECT_EQ(stats.panels, 3u);
  EXPECT_EQ(stats.columnTasks, 0u);  // sequential: no task fan-out
  EXPECT_EQ(stats.target, la::resolveSimdTarget(std::nullopt));

  // Parallel: the task grid is row blocks x column panels.
  engine::ThreadPool pool(2);
  la::Exec exec = poolExec(pool);
  exec.simd = la::SimdTarget::kScalar;
  la::spmm(c.m.csr, c.X, c.k, Y, exec, &stats);
  EXPECT_EQ(stats.panels, 3u);
  EXPECT_EQ(stats.columnTasks, c.m.csr.blockCount() * 3u);
  EXPECT_EQ(stats.target, la::SimdTarget::kScalar);

  // The k == 1 fast path counts as one panel.
  const SpmmCase single = makeSpmmCase(200, 1, 5);
  la::spmmMasked(single.m.csr, single.X, 1, single.packed, Y, la::Exec{},
                 &stats);
  EXPECT_EQ(stats.panels, 1u);
}

TEST(Simd, DispatchAndPanelCountersTick) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::global();
  const obs::MetricsSnapshot before = registry.snapshot();
  const SpmmCase c = makeSpmmCase(200, 20, 99);
  std::vector<double> Y;
  la::spmm(c.m.csr, c.X, c.k, Y);
  const obs::MetricsSnapshot after = registry.snapshot();
  EXPECT_GT(after.counterValue("la.simd.dispatch"),
            before.counterValue("la.simd.dispatch"));
  // k = 20 over 16-wide panels is 2 panels for this product.
  EXPECT_GE(after.counterValue("la.spmm.panels"),
            before.counterValue("la.spmm.panels") + 2);
  const std::string byTarget =
      std::string("la.simd.dispatch.") +
      la::simdTargetName(la::resolveSimdTarget(std::nullopt));
  EXPECT_GT(after.counterValue(byTarget), 0u);
}

TEST(Engine, PlanStatsCarrySimdTargetAndPanels) {
  // EngineOptions::simd flows into the checker's Exec; the bounded group
  // reports its panel traversals and the resolved target name.
  const auto model = test::randomModel(300, 5, 41);
  engine::EngineOptions options;
  options.simd = la::SimdTarget::kScalar;
  engine::AnalysisEngine engine(options);
  engine::AnalysisRequest request;
  request.model = &model;
  request.properties = {"P=? [ F<=20 target ]"};
  const engine::AnalysisResponse response = engine.analyze(request);
  ASSERT_TRUE(response.ok()) << response.error;
  EXPECT_EQ(response.plan.simdTarget, "scalar");
  EXPECT_GE(response.plan.spmmPanels, 1u);
}

}  // namespace
}  // namespace mimostat
