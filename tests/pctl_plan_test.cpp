// pctl:: evaluation-plan tests: structural hashing/equality, normalization
// (double negation, trivially-true phi), subformula and column dedup, plan
// stats arithmetic, and the batching opt-outs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pctl/hash.hpp"
#include "pctl/parser.hpp"
#include "pctl/plan.hpp"

namespace mimostat {
namespace {

pctl::Property parse(const std::string& text) {
  return pctl::parseProperty(text);
}

std::vector<pctl::Property> parseAll(const std::vector<std::string>& texts) {
  std::vector<pctl::Property> properties;
  for (const auto& t : texts) properties.push_back(parse(t));
  return properties;
}

TEST(PctlHash, StructurallyEqualFormulasShareAHash) {
  // Distinct parses of the same text are distinct AST objects.
  const auto a = parse("P=? [ F<=5 \"target\" ]");
  const auto b = parse("P=? [ F<=5 \"target\" ]");
  EXPECT_TRUE(pctl::structuralEqual(a, b));
  EXPECT_EQ(pctl::structuralHash(a), pctl::structuralHash(b));
}

TEST(PctlHash, DistinguishesStructure) {
  const auto base = parse("P=? [ \"a\" U<=3 \"b\" ]");
  for (const char* other : {
           "P=? [ \"b\" U<=3 \"a\" ]",   // operand order
           "P=? [ \"a\" U<=4 \"b\" ]",   // bound
           "P=? [ \"a\" U \"b\" ]",      // bounded vs unbounded
           "P=? [ F<=3 \"b\" ]",         // operator
           "P>=0.5 [ \"a\" U<=3 \"b\" ]",  // query vs bound
       }) {
    EXPECT_FALSE(pctl::structuralEqual(base, parse(other))) << other;
    EXPECT_NE(pctl::structuralHash(base), pctl::structuralHash(parse(other)))
        << other;
  }
}

TEST(PctlHash, VarCmpIdentity) {
  const auto a = parse("P=? [ F<=2 errs>1 ]");
  const auto b = parse("P=? [ F<=2 errs>1 ]");
  const auto c = parse("P=? [ F<=2 errs>2 ]");
  EXPECT_TRUE(pctl::structuralEqual(a, b));
  EXPECT_FALSE(pctl::structuralEqual(a, c));
}

TEST(PctlHash, NegatedFoldsDoubleNegation) {
  const auto atom = pctl::StateFormula::makeAtom("flag");
  const auto once = pctl::negated(atom);
  EXPECT_EQ(once->kind, pctl::StateFormula::Kind::kNot);
  // !!flag collapses back to the original node (shared, not copied).
  EXPECT_EQ(pctl::negated(once).get(), atom.get());
  EXPECT_EQ(pctl::negated(pctl::StateFormula::makeTrue())->kind,
            pctl::StateFormula::Kind::kFalse);
  EXPECT_EQ(pctl::negated(pctl::StateFormula::makeFalse())->kind,
            pctl::StateFormula::Kind::kTrue);
}

TEST(PctlHash, TriviallyTrue) {
  EXPECT_TRUE(pctl::isTriviallyTrue(*pctl::StateFormula::makeTrue()));
  EXPECT_TRUE(pctl::isTriviallyTrue(
      *pctl::StateFormula::makeNot(pctl::StateFormula::makeFalse())));
  EXPECT_FALSE(pctl::isTriviallyTrue(*pctl::StateFormula::makeAtom("a")));
}

TEST(EvalPlan, SharedBodyAtTwoThresholdsSharesOneColumn) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F<=5 \"target\" ]",
      "P=? [ F<=9 \"target\" ]",
  }));
  ASSERT_EQ(plan.masks.size(), 1u);
  ASSERT_EQ(plan.columns.size(), 1u);
  EXPECT_EQ(plan.columns[0].steps, 9u);
  ASSERT_EQ(plan.bounded.size(), 2u);
  EXPECT_EQ(plan.bounded[0].column, plan.bounded[1].column);
  EXPECT_EQ(plan.boundedSteps(), 9u);
  // Per-formula: 5 + 9 traversal steps; shared: 9.
  EXPECT_EQ(plan.stats.traversalsSaved, 5u);
  EXPECT_GE(plan.stats.tasksDeduped, 2u);  // shared mask + shared column
}

TEST(EvalPlan, GloballySharesTheComplementColumn) {
  // G<=7 !flag normalizes to 1 - F<=7 flag: same mask, same column as the
  // plain finally, read complemented.
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F<=9 \"flag\" ]",
      "P=? [ G<=7 !\"flag\" ]",
  }));
  ASSERT_EQ(plan.masks.size(), 1u);
  ASSERT_EQ(plan.columns.size(), 1u);
  ASSERT_EQ(plan.bounded.size(), 2u);
  EXPECT_FALSE(plan.bounded[0].complement);
  EXPECT_TRUE(plan.bounded[1].complement);
  EXPECT_EQ(plan.bounded[0].column, plan.bounded[1].column);
  EXPECT_EQ(plan.stats.traversalsSaved, 7u);
}

TEST(EvalPlan, TrueUntilIsFinally) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ true U<=6 \"b\" ]",
      "P=? [ F<=6 \"b\" ]",
  }));
  EXPECT_EQ(plan.columns.size(), 1u);
  EXPECT_EQ(plan.masks.size(), 1u);
}

TEST(EvalPlan, UntilKeepsItsPhiMask) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ \"a\" U<=6 \"b\" ]",
      "P=? [ F<=6 \"b\" ]",
  }));
  // Different phi constraint -> different columns, but the shared psi mask
  // is evaluated once.
  EXPECT_EQ(plan.columns.size(), 2u);
  EXPECT_EQ(plan.masks.size(), 2u);
  EXPECT_EQ(plan.stats.tasksDeduped, 1u);
}

TEST(EvalPlan, NextIsAnUnmaskedSingleStepColumn) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ X \"b\" ]",
      "P=? [ F<=4 \"b\" ]",
  }));
  // Same psi, but X propagates unmasked — the columns must not merge.
  ASSERT_EQ(plan.columns.size(), 2u);
  EXPECT_EQ(plan.masks.size(), 1u);
  ASSERT_EQ(plan.bounded.size(), 2u);
  EXPECT_EQ(plan.bounded[0].bound, 1u);
  const auto& nextColumn = plan.columns[plan.bounded[0].column];
  EXPECT_FALSE(nextColumn.masked);
}

TEST(EvalPlan, MixedRequestPartition) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F<=10 \"target\" ]",   // bounded group
      "R=? [ I=40 ]",               // transient group
      "R=? [ C<=25 ]",              // transient group
      "P=? [ F \"target\" ]",       // single (unbounded)
      "R=? [ S ]",                  // single (steady state)
  }));
  EXPECT_EQ(plan.bounded.size(), 1u);
  EXPECT_EQ(plan.transients.size(), 2u);
  EXPECT_EQ(plan.singles.size(), 2u);
  // One shared (default) reward structure for both transient entries.
  EXPECT_EQ(plan.rewardNames.size(), 1u);
  EXPECT_EQ(plan.transientSteps(), 40u);
  // I=40 needs 40 steps, C<=25 samples through step 24: shared sweep of 40.
  EXPECT_EQ(plan.stats.traversalsSaved, 24u);
}

TEST(EvalPlan, BatchingOptOutsRouteToSingles) {
  pctl::PlanOptions off;
  off.batchBounded = false;
  off.batchTransients = false;
  const auto plan = pctl::buildPlan(parseAll({
                                        "P=? [ F<=10 \"target\" ]",
                                        "R=? [ I=40 ]",
                                    }),
                                    off);
  EXPECT_TRUE(plan.bounded.empty());
  EXPECT_TRUE(plan.transients.empty());
  EXPECT_EQ(plan.singles.size(), 2u);
  EXPECT_EQ(plan.stats.traversalsSaved, 0u);
}

TEST(EvalPlan, StructurallyIdenticalSinglesRunOnce) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F \"target\" ]",
      "R=? [ S ]",
      "P=? [ F \"target\" ]",  // repeat of the first single
      "P=? [ F \"other\" ]",
  }));
  ASSERT_EQ(plan.singles.size(), 3u);
  ASSERT_EQ(plan.singleDuplicates.size(), 1u);
  EXPECT_EQ(plan.singleDuplicates[0].first, 2u);
  EXPECT_EQ(plan.singleDuplicates[0].second, 0u);
  EXPECT_EQ(plan.stats.tasksDeduped, 1u);
  // 2 masks ("target", "other") + 3 singles; the duplicate check runs
  // before interning, so the repeat counts one dedup, not a mask hit too.
  EXPECT_EQ(plan.stats.tasksPlanned, 5u);
}

TEST(EvalPlan, TasksPlannedCountsDistinctWork) {
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F<=5 \"target\" ]",
      "P=? [ F<=9 \"target\" ]",
      "R=? [ I=40 ]",
      "P=? [ F \"other\" ]",
  }));
  // 2 masks ("target", "other") + 1 column + 1 reward vector + bounded
  // group + transient group + 1 single.
  EXPECT_EQ(plan.stats.tasksPlanned, 7u);
}

TEST(EvalPlan, SinglesShareMasksWithBoundedColumns) {
  // A bounded and an unbounded query over the same target set evaluate
  // that set once: the single's psiMask hits the bounded column's mask.
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F<=5 \"target\" ]",
      "P=? [ F \"target\" ]",
      "R=? [ F \"target\" ]",
  }));
  ASSERT_EQ(plan.masks.size(), 1u);
  ASSERT_EQ(plan.singles.size(), 2u);
  EXPECT_EQ(plan.singles[0].psiMask, 0u);
  EXPECT_EQ(plan.singles[0].phiMask, pctl::EvalPlan::kNoMask);
  EXPECT_EQ(plan.singles[1].psiMask, 0u);
  EXPECT_EQ(plan.stats.tasksDeduped, 2u);  // two single-task mask hits
}

TEST(EvalPlan, UnboundedSinglesInternLikeTheirBoundedTwins) {
  // G phi answers as 1 - reach(!phi), so the single interns the negated
  // operand and shares it with the plain F; a non-trivial until phi gets
  // its own mask slot.
  const auto plan = pctl::buildPlan(parseAll({
      "P=? [ F \"flag\" ]",
      "P=? [ G !\"flag\" ]",
      "P=? [ \"a\" U \"flag\" ]",
  }));
  ASSERT_EQ(plan.masks.size(), 2u);  // "flag" and "a"
  ASSERT_EQ(plan.singles.size(), 3u);
  EXPECT_EQ(plan.singles[1].psiMask, plan.singles[0].psiMask);
  EXPECT_EQ(plan.singles[2].psiMask, plan.singles[0].psiMask);
  EXPECT_NE(plan.singles[2].phiMask, pctl::EvalPlan::kNoMask);
  EXPECT_EQ(plan.stats.tasksDeduped, 2u);  // G and U psi-mask hits
}

}  // namespace
}  // namespace mimostat
