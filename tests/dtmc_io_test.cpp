#include <gtest/gtest.h>

#include <sstream>

#include "dtmc/builder.hpp"
#include "dtmc/io.hpp"
#include "mc/checker.hpp"
#include "test_models.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

TEST(IoImport, TraRoundTrip) {
  auto model = test::randomModel(25, 3, 42);
  const auto original = dtmc::buildExplicit(model).dtmc;

  std::stringstream tra;
  dtmc::writeTra(original, tra);
  std::stringstream sta;
  dtmc::writeSta(original, sta);

  const auto imported = dtmc::readTra(tra, &sta, 0);
  ASSERT_EQ(imported.numStates(), original.numStates());
  ASSERT_EQ(imported.numTransitions(), original.numTransitions());
  for (std::uint32_t s = 0; s < original.numStates(); ++s) {
    ASSERT_EQ(imported.rowPtr()[s + 1], original.rowPtr()[s + 1]);
    ASSERT_EQ(imported.state(s), original.state(s));
  }
  for (std::uint64_t k = 0; k < original.numTransitions(); ++k) {
    ASSERT_EQ(imported.col()[k], original.col()[k]);
    ASSERT_NEAR(imported.val()[k], original.val()[k], 1e-9);
  }
}

TEST(IoImport, TraWithoutStaUsesIndexVariable) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto original = dtmc::buildExplicit(model).dtmc;
  std::stringstream tra;
  dtmc::writeTra(original, tra);
  const auto imported = dtmc::readTra(tra, nullptr, 1);
  EXPECT_EQ(imported.varLayout().vars()[0].name, "s");
  EXPECT_NEAR(imported.initialDistribution()[1], 1.0, 1e-15);
}

TEST(IoImport, MalformedInputsThrow) {
  {
    std::stringstream tra("garbage");
    EXPECT_THROW(dtmc::readTra(tra, nullptr), std::runtime_error);
  }
  {
    std::stringstream tra("2 1\n0 5 1.0\n");  // dst out of range
    EXPECT_THROW(dtmc::readTra(tra, nullptr), std::runtime_error);
  }
  {
    std::stringstream tra("2 2\n0 1 1.0\n");  // truncated
    EXPECT_THROW(dtmc::readTra(tra, nullptr), std::runtime_error);
  }
  {
    std::stringstream tra("2 1\n0 1 1.0\n");
    EXPECT_THROW(dtmc::readTra(tra, nullptr, 7), std::runtime_error);
  }
}

TEST(IoImport, LabRoundTrip) {
  auto model = test::randomModel(20, 3, 7);
  const auto d = dtmc::buildExplicit(model).dtmc;
  std::stringstream lab;
  dtmc::writeLab(d, model, {"target"}, lab);
  const auto labels = dtmc::readLab(lab, d.numStates());
  ASSERT_EQ(labels.size(), 1u);
  EXPECT_EQ(labels[0].first, "target");
  EXPECT_EQ(labels[0].second, d.evalAtom(model, "target"));
}

TEST(IoImport, SrewRoundTrip) {
  auto model = test::randomModel(20, 3, 8);
  const auto d = dtmc::buildExplicit(model).dtmc;
  std::stringstream srew;
  dtmc::writeSrew(d, model, "", srew);
  const auto rewards = dtmc::readSrew(srew, d.numStates());
  EXPECT_EQ(rewards, d.evalReward(model, ""));
}

TEST(IoImport, ImportedModelIsCheckable) {
  // Export a Viterbi model with its labels and rewards; re-import; the
  // checker must produce identical values on the imported model.
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel model(params);
  const auto d = dtmc::buildExplicit(model).dtmc;

  std::stringstream tra;
  std::stringstream lab;
  std::stringstream srew;
  dtmc::writeTra(d, tra);
  dtmc::writeLab(d, model, {"error"}, lab);
  dtmc::writeSrew(d, model, "", srew);

  dtmc::ImportedExplicit imported;
  imported.dtmc = dtmc::readTra(tra, nullptr, 0);
  imported.labels = dtmc::readLab(lab, d.numStates());
  imported.rewards.emplace_back("", dtmc::readSrew(srew, d.numStates()));
  const dtmc::ImportedModel importedModel(std::move(imported));

  const auto rebuilt = dtmc::buildExplicit(importedModel).dtmc;
  const mc::Checker originalChecker(d, model);
  const mc::Checker importedChecker(rebuilt, importedModel);
  for (const auto* prop :
       {"R=? [ I=40 ]", "P=? [ G<=25 !\"error\" ]", "P=? [ F<=10 \"error\" ]"}) {
    EXPECT_NEAR(originalChecker.check(prop).value,
                importedChecker.check(prop).value, 1e-10)
        << prop;
  }
}

TEST(IoImport, ImportedModelAbsorbingOnMissingRows) {
  // A .tra with no outgoing transitions for state 1: imported model makes
  // it absorbing instead of producing a substochastic row.
  std::stringstream tra("2 1\n0 1 1.0\n");
  dtmc::ImportedExplicit imported;
  imported.dtmc = dtmc::readTra(tra, nullptr, 0);
  const dtmc::ImportedModel model(std::move(imported));
  const auto rebuilt = dtmc::buildExplicit(model).dtmc;
  EXPECT_LT(rebuilt.maxRowDeviation(), 1e-15);
}

}  // namespace
}  // namespace mimostat
