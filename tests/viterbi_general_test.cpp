#include <gtest/gtest.h>

#include <limits>

#include "util/rng.hpp"
#include "viterbi/code.hpp"
#include "viterbi/decoder.hpp"
#include "viterbi/general.hpp"

namespace mimostat {
namespace {

viterbi::GeneralParams memoryTwoParams() {
  viterbi::GeneralParams p;
  p.taps = {1.0, 0.6, 0.3};
  p.snrDb = 12.0;
  return p;
}

TEST(GeneralTrellis, StateTransitions) {
  viterbi::GeneralParams params = memoryTwoParams();
  const viterbi::GeneralTrellis trellis(params);
  EXPECT_EQ(trellis.memory(), 2);
  EXPECT_EQ(trellis.numStates(), 4);
  // State bits: bit0 = previous bit, bit1 = bit before that.
  EXPECT_EQ(trellis.nextState(1, 0b00), 0b01);
  EXPECT_EQ(trellis.nextState(0, 0b01), 0b10);
  EXPECT_EQ(trellis.nextState(1, 0b11), 0b11);
  // Predecessors invert nextState.
  for (int state = 0; state < 4; ++state) {
    for (int oldest = 0; oldest < 2; ++oldest) {
      const int pred = trellis.predecessor(state, oldest);
      EXPECT_EQ(trellis.nextState(state & 1, pred), state);
    }
  }
}

TEST(GeneralTrellis, LevelsMatchConvolution) {
  const viterbi::GeneralTrellis trellis(memoryTwoParams());
  // bit=1, history (prev=0, prevprev=1): 1*1 + 0.6*(-1) + 0.3*(+1).
  EXPECT_NEAR(trellis.level(1, 0b10), 1.0 - 0.6 + 0.3, 1e-12);
  EXPECT_NEAR(trellis.level(0, 0b11), -1.0 + 0.6 + 0.3, 1e-12);
}

TEST(GeneralTrellis, CellProbsFormDistributions) {
  const viterbi::GeneralTrellis trellis(memoryTwoParams());
  for (int b = 0; b < 2; ++b) {
    for (int state = 0; state < trellis.numStates(); ++state) {
      double total = 0.0;
      for (int cell = 0; cell < trellis.params().quantLevels; ++cell) {
        total += trellis.cellProb(b, state, cell);
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(GeneralDecoder, MatchesMemoryOneDecoderStepForStep) {
  // With taps {1,1} and the paper's parameters the general decoder must be
  // identical to the specialised two-state decoder on any input stream.
  viterbi::ViterbiParams m1;
  viterbi::GeneralParams general;
  general.taps = {1.0, 1.0};
  general.snrDb = m1.snrDb;
  general.quantLevels = m1.quantLevels;
  general.quantRange = m1.quantRange;
  general.tracebackLength = m1.tracebackLength;
  general.pmCap = m1.pmCap;
  general.bmCap = m1.bmCap;
  general.bmScale = m1.bmScale;

  const viterbi::TrellisKernel kernel(m1);
  viterbi::Decoder specialised(kernel);
  const viterbi::GeneralTrellis trellis(general);
  viterbi::GeneralDecoder generalDecoder(trellis);

  util::Xoshiro256 rng(77);
  for (int t = 0; t < 2000; ++t) {
    const int q = static_cast<int>(rng.nextBounded(
        static_cast<std::uint64_t>(m1.quantLevels)));
    EXPECT_EQ(generalDecoder.step(q), specialised.step(q)) << "t=" << t;
  }
}

TEST(GeneralDecoder, BlockDecodeIsMaximumLikelihood) {
  // Forney's theorem, checked by brute force: the block decode achieves
  // the minimum sequence metric over all 2^n bit sequences.
  const viterbi::GeneralTrellis trellis(memoryTwoParams());
  const viterbi::GeneralDecoder decoder(trellis);
  util::Xoshiro256 rng(5);
  const int n = 12;

  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> samples(n);
    for (int t = 0; t < n; ++t) {
      samples[t] = static_cast<int>(rng.nextBounded(
          static_cast<std::uint64_t>(trellis.params().quantLevels)));
    }
    const std::vector<int> decoded = decoder.decodeBlock(samples);
    const std::int64_t decodedMetric = decoder.sequenceMetric(decoded, samples);

    std::int64_t bruteForce = std::numeric_limits<std::int64_t>::max();
    for (std::uint32_t bits = 0; bits < (1u << n); ++bits) {
      std::vector<int> candidate(n);
      for (int t = 0; t < n; ++t) candidate[t] = (bits >> t) & 1;
      bruteForce = std::min(bruteForce,
                            decoder.sequenceMetric(candidate, samples));
    }
    EXPECT_EQ(decodedMetric, bruteForce) << "trial " << trial;
  }
}

TEST(GeneralDecoder, NoiselessBlockRecovery) {
  // Quantize the noiseless channel output of a random sequence; the block
  // decode must reproduce it exactly (the metric of the true sequence is
  // minimal and, at this quantizer resolution, unique).
  const viterbi::GeneralTrellis trellis(memoryTwoParams());
  const viterbi::GeneralDecoder decoder(trellis);
  util::Xoshiro256 rng(9);
  const int n = 16;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<int> bits(n);
    std::vector<int> samples(n);
    int state = 0;
    for (int t = 0; t < n; ++t) {
      bits[t] = rng.nextBit() ? 1 : 0;
      samples[t] = trellis.quantizer().index(trellis.level(bits[t], state));
      state = trellis.nextState(bits[t], state);
    }
    EXPECT_EQ(decoder.decodeBlock(samples), bits) << "trial " << trial;
  }
}

TEST(GeneralDecoder, StreamingRecoversAtHighSnr) {
  viterbi::GeneralParams params = memoryTwoParams();
  params.snrDb = 30.0;
  const auto result = viterbi::simulateGeneral(params, 20000, 3);
  EXPECT_LT(result.ber(), 1e-3);
}

TEST(GeneralDecoder, MemoryThreeTrellis) {
  viterbi::GeneralParams params;
  params.taps = {1.0, 0.7, 0.4, 0.2};
  params.snrDb = 30.0;
  params.tracebackLength = 20;
  const viterbi::GeneralTrellis trellis(params);
  EXPECT_EQ(trellis.numStates(), 8);
  const auto result = viterbi::simulateGeneral(params, 20000, 11);
  EXPECT_LT(result.ber(), 5e-3);
}

TEST(GeneralDecoder, BerDegradesWithIsiSeverity) {
  // Heavier ISI at the same SNR is harder to equalise.
  viterbi::GeneralParams mild;
  mild.taps = {1.0, 0.2};
  mild.snrDb = 8.0;
  viterbi::GeneralParams severe;
  severe.taps = {1.0, 0.9};
  severe.snrDb = 8.0;
  const auto mildRun = viterbi::simulateGeneral(mild, 100000, 4);
  const auto severeRun = viterbi::simulateGeneral(severe, 100000, 4);
  EXPECT_LT(mildRun.ber(), severeRun.ber());
}

TEST(GeneralDecoder, ResetReproducesStream) {
  const viterbi::GeneralTrellis trellis(memoryTwoParams());
  viterbi::GeneralDecoder decoder(trellis);
  util::Xoshiro256 rng(13);
  std::vector<int> qs(500);
  for (auto& q : qs) {
    q = static_cast<int>(rng.nextBounded(
        static_cast<std::uint64_t>(trellis.params().quantLevels)));
  }
  std::vector<int> first;
  for (const int q : qs) first.push_back(decoder.step(q));
  decoder.reset();
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ(decoder.step(qs[i]), first[i]);
  }
}

}  // namespace
}  // namespace mimostat
