#include <gtest/gtest.h>

#include <cmath>

#include "dtmc/builder.hpp"
#include "mc/bounded.hpp"
#include "mc/unbounded.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

TEST(Unbounded, FairGamblersRuinClosedForm) {
  // P(hit n before 0 | start i) = i/n for a fair game.
  const std::uint32_t n = 8;
  for (const std::uint32_t start : {1u, 3u, 5u, 7u}) {
    const auto model = test::gamblersRuin(n, 0.5, start);
    const auto d = dtmc::buildExplicit(model).dtmc;
    const auto varIdx = d.varLayout().indexOf("s");
    la::BitVector win(d.numStates());
    for (std::uint32_t s = 0; s < d.numStates(); ++s) {
      if (d.varValue(s, varIdx) == static_cast<std::int32_t>(n)) win.set(s);
    }
    const auto result = mc::reachProb(d, win);
    EXPECT_TRUE(result.converged);
    EXPECT_NEAR(mc::fromInitial(d, result.stateValues),
                static_cast<double>(start) / n, 1e-9);
  }
}

TEST(Unbounded, BiasedGamblersRuinClosedForm) {
  // P(hit n before 0 | start i) = (1-r^i)/(1-r^n), r = q/p.
  const std::uint32_t n = 6;
  const double p = 0.6;
  const double r = (1.0 - p) / p;
  const std::uint32_t start = 2;
  const auto model = test::gamblersRuin(n, p, start);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector win(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == static_cast<std::int32_t>(n)) win.set(s);
  }
  const auto result = mc::reachProb(d, win);
  const double expected =
      (1.0 - std::pow(r, start)) / (1.0 - std::pow(r, n));
  EXPECT_NEAR(mc::fromInitial(d, result.stateValues), expected, 1e-9);
}

TEST(Unbounded, Prob0Identification) {
  // 0 -> 1 -> 2(target), 3 isolated absorbing: states reaching target = 0,1,2.
  test::MatrixModel model(
      {{0, 0.5, 0, 0.5}, {0, 0, 1, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector psi(d.numStates());
  const la::BitVector phi(d.numStates(), true);
  std::uint32_t idx3 = ~0u;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 2) psi.set(s);
    if (d.varValue(s, varIdx) == 3) idx3 = s;
  }
  const auto prob0 = mc::prob0States(d, phi, psi);
  ASSERT_NE(idx3, ~0u);
  EXPECT_TRUE(prob0.get(idx3));
  EXPECT_EQ(prob0.count(), 1u);
}

TEST(Unbounded, Prob1Identification) {
  // From state 1 the target is reached with probability 1; from state 0 with
  // probability 0.5.
  test::MatrixModel model(
      {{0, 0.5, 0, 0.5}, {0, 0, 1, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector psi(d.numStates());
  const la::BitVector phi(d.numStates(), true);
  std::uint32_t idx1 = ~0u;
  std::uint32_t idx0 = ~0u;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (d.varValue(s, varIdx) == 2) psi.set(s);
    if (d.varValue(s, varIdx) == 1) idx1 = s;
    if (d.varValue(s, varIdx) == 0) idx0 = s;
  }
  const auto prob1 = mc::prob1States(d, phi, psi);
  EXPECT_TRUE(prob1.get(idx1));
  EXPECT_FALSE(prob1.get(idx0));
  const auto result = mc::reachProb(d, psi);
  EXPECT_NEAR(result.stateValues[idx0], 0.5, 1e-10);
}

TEST(Unbounded, GraphPrecomputationMakesValueIterationExact) {
  // When prob0/prob1 cover everything, no iterations are needed.
  const auto model = test::lineModel(5);
  const auto d = dtmc::buildExplicit(model).dtmc;
  la::BitVector psi(5);
  psi.set(4);
  const auto result = mc::reachProb(d, psi);
  EXPECT_EQ(result.iterations, 0u);
  EXPECT_NEAR(result.stateValues[0], 1.0, 1e-15);
}

TEST(Unbounded, UntilRespectsPhi) {
  const auto model = test::gamblersRuin(4, 0.5, 2);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto varIdx = d.varLayout().indexOf("s");
  la::BitVector psi(d.numStates());
  la::BitVector phi(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    const auto v = d.varValue(s, varIdx);
    if (v == 4) psi.set(s);
    if (v >= 2) phi.set(s);  // may not dip below the midpoint
  }
  const auto bounded = mc::untilProb(d, phi, psi);
  // Must win 2 in a row immediately: probability 1/4... then from 3 it can
  // oscillate 3->2->3: compute expected value by hand:
  // f(2) = 0.5 f(3); f(3) = 0.5 + 0.5 f(2)  =>  f(2) = 1/3? No:
  // f(2) = 0.5*f(3) + 0.5*0 (drops to 1, not phi)
  // f(3) = 0.5*1 + 0.5*f(2)
  // => f(2) = 0.5*(0.5 + 0.5 f(2)) = 0.25 + 0.25 f(2) => f(2) = 1/3.
  EXPECT_NEAR(mc::fromInitial(d, bounded.stateValues), 1.0 / 3.0, 1e-9);
}

TEST(Unbounded, BoundedConvergesToUnbounded) {
  const auto model = test::randomModel(20, 3, 55);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto psi = d.evalAtom(model, "target");
  const auto unbounded = mc::reachProb(d, psi);
  const auto bounded = mc::boundedFinally(d, psi, 2000);
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    EXPECT_NEAR(bounded[s], unbounded.stateValues[s], 1e-6);
  }
}

}  // namespace
}  // namespace mimostat
