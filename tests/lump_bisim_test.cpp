#include <gtest/gtest.h>

#include "dtmc/builder.hpp"
#include "lump/bisim.hpp"
#include "lump/verify.hpp"
#include "mc/transient.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

TEST(Lump, SymmetricStatesMerge) {
  // States 1 and 2 are exact copies; both lead to 3.
  test::MatrixModel model({{0, 0.5, 0.5, 0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const lump::InitialKeys keys(d.numStates(), 0);  // no distinctions
  const auto result = lump::lump(d, keys);
  EXPECT_LT(result.partition.numBlocks, d.numStates());
  EXPECT_EQ(result.quotient.numStates(), result.partition.numBlocks);
  EXPECT_LT(result.quotient.maxRowDeviation(), 1e-12);
  const auto report = lump::verifyLumpable(d, result.partition);
  EXPECT_TRUE(report.lumpable) << report.worstMismatch;
}

TEST(Lump, InitialKeysPreventMerging) {
  test::MatrixModel model({{0, 0.5, 0.5, 0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  // Without keys the twins (and the absorbing tail, which is bisimilar to
  // its deterministic predecessors) collapse.
  const auto coarse = lump::lump(d, lump::InitialKeys(d.numStates(), 0));
  // Distinguishing one twin splits its block; the result must be strictly
  // finer and still lumpable.
  lump::InitialKeys keys(d.numStates(), 0);
  keys[1] = 99;
  const auto fine = lump::lump(d, keys);
  EXPECT_GT(fine.partition.numBlocks, coarse.partition.numBlocks);
  EXPECT_TRUE(lump::verifyLumpable(d, fine.partition).lumpable);
  // The distinguished state sits alone.
  std::uint32_t sameAsOne = 0;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (fine.partition.blockOf[s] == fine.partition.blockOf[1]) ++sameAsOne;
  }
  EXPECT_EQ(sameAsOne, 1u);
}

TEST(Lump, QuotientPreservesTransientRewards) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const auto model = test::randomModel(60, 3, seed);
    const auto d = dtmc::buildExplicit(model).dtmc;
    const auto reward = d.evalReward(model, "");
    const auto keys = lump::keysFromRewardAndLabels(reward, {});
    const auto result = lump::lump(d, keys);
    ASSERT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
    // Quotient reward vector = representative rewards.
    std::vector<double> quotientReward(result.quotient.numStates());
    for (std::uint32_t b = 0; b < result.quotient.numStates(); ++b) {
      quotientReward[b] = reward[result.representative[b]];
    }
    for (const std::uint64_t t : {1ULL, 5ULL, 17ULL}) {
      EXPECT_NEAR(mc::instantaneousReward(d, reward, t),
                  mc::instantaneousReward(result.quotient, quotientReward, t),
                  1e-10)
          << "seed " << seed << " t " << t;
    }
  }
}

TEST(Lump, TrivialKeysGiveTrivialQuotient) {
  // With no distinguishing keys every stochastic chain lumps to a single
  // block (the coarsest bisimulation ignores all structure).
  test::MatrixModel model({{0.1, 0.9, 0}, {0, 0.2, 0.8}, {0.5, 0, 0.5}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto trivial = lump::lump(d, lump::InitialKeys(d.numStates(), 0));
  EXPECT_EQ(trivial.partition.numBlocks, 1u);
}

TEST(Lump, DistinctKeysPreventAnyMergingInAsymmetricChain) {
  // Distinct self-loop probabilities: once any state is distinguished, the
  // refinement separates all of them.
  test::MatrixModel model({{0.1, 0.9, 0}, {0, 0.2, 0.8}, {0.5, 0, 0.5}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  lump::InitialKeys keys(d.numStates(), 0);
  keys[0] = 1;  // mark only state 0; dynamics must split 1 from 2
  const auto result = lump::lump(d, keys);
  EXPECT_EQ(result.partition.numBlocks, 3u);
  EXPECT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
}

TEST(Lump, SymmetricBanksCollapseToCounts) {
  // k iid two-state components with a symmetric reward lump to k+1 states
  // (the count of components in state 1).
  const test::SymmetricBanksModel model(4, 0.3, 0.2);
  const auto d = dtmc::buildExplicit(model).dtmc;
  EXPECT_EQ(d.numStates(), 16u);
  const auto reward = d.evalReward(model, "");
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  const auto result = lump::lump(d, keys);
  EXPECT_EQ(result.partition.numBlocks, 5u);
  EXPECT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
}

TEST(Lump, PartitionFromMapAndWitness) {
  // Deliberately wrong partition: merging states with different dynamics
  // must be reported as non-lumpable with a witness pair.
  test::MatrixModel model({{0.1, 0.9, 0}, {0, 0.2, 0.8}, {0.5, 0, 0.5}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto partition = lump::partitionFromMap({0, 0, 1});
  const auto report = lump::verifyLumpable(d, partition);
  EXPECT_FALSE(report.lumpable);
  EXPECT_GT(report.worstMismatch, 0.1);
  EXPECT_NE(report.witnessA, report.witnessB);
}

TEST(Lump, CompareProperties) {
  const test::SymmetricBanksModel model(3, 0.25, 0.35);
  const auto full = dtmc::buildExplicit(model);
  // Lump and wrap the quotient with the same model for atom evaluation
  // (representative states preserve the variable layout).
  const auto reward = full.dtmc.evalReward(model, "");
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  const auto lumped = lump::lump(full.dtmc, keys);
  const auto comparisons = lump::compareProperties(
      full.dtmc, model, lumped.quotient, model, {"R=? [ I=7 ]", "R=? [ C<=9 ]"});
  for (const auto& cmp : comparisons) {
    EXPECT_LT(cmp.absDiff, 1e-10) << cmp.property;
  }
}

}  // namespace
}  // namespace mimostat
