#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dtmc/builder.hpp"
#include "la/bit_vector.hpp"
#include "lump/bisim.hpp"
#include "lump/verify.hpp"
#include "mc/transient.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

TEST(Lump, SymmetricStatesMerge) {
  // States 1 and 2 are exact copies; both lead to 3.
  test::MatrixModel model({{0, 0.5, 0.5, 0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const lump::InitialKeys keys(d.numStates(), 0);  // no distinctions
  const auto result = lump::lump(d, keys);
  EXPECT_LT(result.partition.numBlocks, d.numStates());
  EXPECT_EQ(result.quotient.numStates(), result.partition.numBlocks);
  EXPECT_LT(result.quotient.maxRowDeviation(), 1e-12);
  const auto report = lump::verifyLumpable(d, result.partition);
  EXPECT_TRUE(report.lumpable) << report.worstMismatch;
}

TEST(Lump, InitialKeysPreventMerging) {
  test::MatrixModel model({{0, 0.5, 0.5, 0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0},
                           {0, 0, 0, 1.0}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  // Without keys the twins (and the absorbing tail, which is bisimilar to
  // its deterministic predecessors) collapse.
  const auto coarse = lump::lump(d, lump::InitialKeys(d.numStates(), 0));
  // Distinguishing one twin splits its block; the result must be strictly
  // finer and still lumpable.
  lump::InitialKeys keys(d.numStates(), 0);
  keys[1] = 99;
  const auto fine = lump::lump(d, keys);
  EXPECT_GT(fine.partition.numBlocks, coarse.partition.numBlocks);
  EXPECT_TRUE(lump::verifyLumpable(d, fine.partition).lumpable);
  // The distinguished state sits alone.
  std::uint32_t sameAsOne = 0;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (fine.partition.blockOf[s] == fine.partition.blockOf[1]) ++sameAsOne;
  }
  EXPECT_EQ(sameAsOne, 1u);
}

TEST(Lump, QuotientPreservesTransientRewards) {
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    const auto model = test::randomModel(60, 3, seed);
    const auto d = dtmc::buildExplicit(model).dtmc;
    const auto reward = d.evalReward(model, "");
    const auto keys = lump::keysFromRewardAndLabels(reward, {});
    const auto result = lump::lump(d, keys);
    ASSERT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
    // Quotient reward vector = representative rewards.
    std::vector<double> quotientReward(result.quotient.numStates());
    for (std::uint32_t b = 0; b < result.quotient.numStates(); ++b) {
      quotientReward[b] = reward[result.representative[b]];
    }
    for (const std::uint64_t t : {1ULL, 5ULL, 17ULL}) {
      EXPECT_NEAR(mc::instantaneousReward(d, reward, t),
                  mc::instantaneousReward(result.quotient, quotientReward, t),
                  1e-10)
          << "seed " << seed << " t " << t;
    }
  }
}

TEST(Lump, TrivialKeysGiveTrivialQuotient) {
  // With no distinguishing keys every stochastic chain lumps to a single
  // block (the coarsest bisimulation ignores all structure).
  test::MatrixModel model({{0.1, 0.9, 0}, {0, 0.2, 0.8}, {0.5, 0, 0.5}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto trivial = lump::lump(d, lump::InitialKeys(d.numStates(), 0));
  EXPECT_EQ(trivial.partition.numBlocks, 1u);
}

TEST(Lump, DistinctKeysPreventAnyMergingInAsymmetricChain) {
  // Distinct self-loop probabilities: once any state is distinguished, the
  // refinement separates all of them.
  test::MatrixModel model({{0.1, 0.9, 0}, {0, 0.2, 0.8}, {0.5, 0, 0.5}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  lump::InitialKeys keys(d.numStates(), 0);
  keys[0] = 1;  // mark only state 0; dynamics must split 1 from 2
  const auto result = lump::lump(d, keys);
  EXPECT_EQ(result.partition.numBlocks, 3u);
  EXPECT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
}

TEST(Lump, SymmetricBanksCollapseToCounts) {
  // k iid two-state components with a symmetric reward lump to k+1 states
  // (the count of components in state 1).
  const test::SymmetricBanksModel model(4, 0.3, 0.2);
  const auto d = dtmc::buildExplicit(model).dtmc;
  EXPECT_EQ(d.numStates(), 16u);
  const auto reward = d.evalReward(model, "");
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  const auto result = lump::lump(d, keys);
  EXPECT_EQ(result.partition.numBlocks, 5u);
  EXPECT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
}

TEST(Lump, PartitionFromMapAndWitness) {
  // Deliberately wrong partition: merging states with different dynamics
  // must be reported as non-lumpable with a witness pair.
  test::MatrixModel model({{0.1, 0.9, 0}, {0, 0.2, 0.8}, {0.5, 0, 0.5}});
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto partition = lump::partitionFromMap({0, 0, 1});
  const auto report = lump::verifyLumpable(d, partition);
  EXPECT_FALSE(report.lumpable);
  EXPECT_GT(report.worstMismatch, 0.1);
  EXPECT_NE(report.witnessA, report.witnessB);
}

TEST(Lump, CompareProperties) {
  const test::SymmetricBanksModel model(3, 0.25, 0.35);
  const auto full = dtmc::buildExplicit(model);
  // Lump and wrap the quotient with the same model for atom evaluation
  // (representative states preserve the variable layout).
  const auto reward = full.dtmc.evalReward(model, "");
  const auto keys = lump::keysFromRewardAndLabels(reward, {});
  const auto lumped = lump::lump(full.dtmc, keys);
  const auto comparisons = lump::compareProperties(
      full.dtmc, model, lumped.quotient, model, {"R=? [ I=7 ]", "R=? [ C<=9 ]"});
  for (const auto& cmp : comparisons) {
    EXPECT_LT(cmp.absDiff, 1e-10) << cmp.property;
  }
}

// --- edge cases for the reduce:: stage's substrate --------------------

/// Hand-built ExplicitDtmc (fromRaw), so the state table may contain
/// unreachable states — buildExplicit never emits those.
dtmc::ExplicitDtmc rawChain(const std::vector<std::vector<double>>& rows,
                            std::vector<double> initial) {
  dtmc::ExplicitDtmc::Raw raw;
  raw.layout = dtmc::VarLayout(
      {{"s", 0, static_cast<std::int32_t>(rows.size() - 1)}});
  raw.rowPtr.push_back(0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    for (std::size_t j = 0; j < rows[i].size(); ++j) {
      if (rows[i][j] != 0.0) {
        raw.col.push_back(static_cast<std::uint32_t>(j));
        raw.val.push_back(rows[i][j]);
      }
    }
    raw.rowPtr.push_back(raw.col.size());
    raw.states.push_back({static_cast<std::int32_t>(i)});
  }
  raw.initial = std::move(initial);
  return dtmc::ExplicitDtmc::fromRaw(std::move(raw));
}

TEST(LumpEdge, UnreachableStatesMergeWithBisimilarReachableOnes) {
  // 0 -> 1 -> 2 (absorbing); 3 is unreachable but behaves exactly like 1.
  const auto d = rawChain({{0, 1.0, 0, 0},
                           {0, 0, 1.0, 0},
                           {0, 0, 1.0, 0},
                           {0, 0, 1.0, 0}},
                          {1.0, 0, 0, 0});
  lump::InitialKeys keys(4, 0);
  keys[2] = 7;  // distinguish the absorbing target
  const auto result = lump::lump(d, keys);
  EXPECT_EQ(result.partition.numBlocks, 3u);
  EXPECT_EQ(result.partition.blockOf[1], result.partition.blockOf[3]);
  EXPECT_NE(result.partition.blockOf[0], result.partition.blockOf[1]);
  EXPECT_TRUE(lump::verifyLumpable(d, result.partition).lumpable);
  // The unreachable member adds no initial mass to its block.
  double totalInitial = 0.0;
  for (const double p : result.quotient.initialDistribution()) {
    totalInitial += p;
  }
  EXPECT_DOUBLE_EQ(totalInitial, 1.0);
  EXPECT_LT(result.quotient.maxRowDeviation(), 1e-12);
}

TEST(LumpEdge, AbsorbingSelfLoopsMergeByKeyAndStayAbsorbing) {
  // Two absorbing states sharing a key collapse into one absorbing block.
  const auto d = rawChain({{0, 0.5, 0.5}, {0, 1.0, 0}, {0, 0, 1.0}},
                          {1.0, 0, 0});
  const auto result = lump::lump(d, lump::InitialKeys(3, 0));
  // With no distinctions the whole stochastic chain collapses.
  EXPECT_EQ(result.partition.numBlocks, 1u);
  ASSERT_EQ(result.quotient.numStates(), 1u);
  // The single block must be exactly absorbing (self-loop mass 1), not
  // approximately: aggregation sums the representative row, no rounding.
  ASSERT_EQ(result.quotient.numTransitions(), 1u);
  EXPECT_DOUBLE_EQ(result.quotient.val()[0], 1.0);
  EXPECT_DOUBLE_EQ(result.quotient.initialDistribution()[0], 1.0);

  // Keyed apart, the two absorbing states stay separate self-loops.
  lump::InitialKeys keys(3, 0);
  keys[1] = 1;
  keys[2] = 2;
  const auto keyed = lump::lump(d, keys);
  EXPECT_EQ(keyed.partition.numBlocks, 3u);
  EXPECT_TRUE(lump::verifyLumpable(d, keyed.partition).lumpable);
}

TEST(LumpEdge, ProbResolutionBucketsNearTies) {
  // States 1 and 2 differ in transition probability by 1e-14 — far below
  // the default 1e-12 bucketing, so they merge; a tighter resolution
  // splits them.
  const double eps = 1e-14;
  const auto d = rawChain({{0, 0.5, 0.5, 0, 0},
                           {0, 0, 0, 0.3, 0.7},
                           {0, 0, 0, 0.3 + eps, 0.7 - eps},
                           {0, 0, 0, 1.0, 0},
                           {0, 0, 0, 0, 1.0}},
                          {1.0, 0, 0, 0, 0});
  lump::InitialKeys keys(5, 0);
  keys[3] = 1;
  keys[4] = 2;

  const auto merged = lump::lump(d, keys);  // default probResolution 1e-12
  EXPECT_EQ(merged.partition.numBlocks, 4u);
  EXPECT_EQ(merged.partition.blockOf[1], merged.partition.blockOf[2]);

  lump::LumpOptions tight;
  tight.probResolution = 1e-16;
  const auto split = lump::lump(d, keys, tight);
  EXPECT_EQ(split.partition.numBlocks, 5u);
  EXPECT_NE(split.partition.blockOf[1], split.partition.blockOf[2]);
}

TEST(LumpEdge, KeysFromMasksAndRewardsMatchesManualPartition) {
  const auto model = test::randomModel(40, 3, 77);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto reward = d.evalReward(model, "");
  la::BitVector mask(d.numStates());
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    if (s % 3 == 0) mask.set(s);
  }
  const auto keys = lump::keysFromMasksAndRewards(
      d.numStates(), {&mask}, {&reward});
  // States sharing a key must agree on the mask bit and the reward.
  for (std::uint32_t a = 0; a < d.numStates(); ++a) {
    for (std::uint32_t b = a + 1; b < d.numStates(); ++b) {
      if (keys[a] == keys[b]) {
        EXPECT_EQ(mask.get(a), mask.get(b));
        EXPECT_EQ(reward[a], reward[b]);
      }
    }
  }
  // No needs at all -> one shared key (nothing blocks merging).
  const auto empty = lump::keysFromMasksAndRewards(d.numStates(), {}, {});
  for (const std::uint64_t k : empty) EXPECT_EQ(k, empty[0]);
}

TEST(LumpEdge, QuotientByteIdenticalAcrossConcurrentThreads) {
  // The refinement is sequential, but the engine's reduce stage may run it
  // from any pool thread with siblings refining concurrently. Block maps
  // and quotient arrays must come out byte-identical regardless.
  const auto model = test::randomModel(60, 3, 5);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto reward = d.evalReward(model, "");
  const auto keys = lump::keysFromMasksAndRewards(d.numStates(), {}, {&reward});
  const auto reference = lump::lump(d, keys);

  for (const int threads : {1, 2, 8}) {
    std::vector<lump::LumpResult> results(threads);
    {
      // lint:allow(raw-thread: determinism test drives lump from client threads)
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        pool.emplace_back(
            [&, t] { results[t] = lump::lump(d, keys); });
      }
      for (auto& th : pool) th.join();
    }
    for (const auto& result : results) {
      EXPECT_EQ(result.partition.blockOf, reference.partition.blockOf)
          << threads << " threads";
      EXPECT_EQ(result.representative, reference.representative);
      EXPECT_EQ(result.quotient.col(), reference.quotient.col());
      EXPECT_EQ(result.quotient.val(), reference.quotient.val());
    }
  }
}

}  // namespace
}  // namespace mimostat
