#include <gtest/gtest.h>

#include "bdd/mtbdd.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

using bdd::MtbddManager;
using bdd::MtOp;
using bdd::MtRef;

TEST(Mtbdd, ConstantsAreHashConsed) {
  MtbddManager mgr(4);
  EXPECT_EQ(mgr.constant(0.5), mgr.constant(0.5));
  EXPECT_NE(mgr.constant(0.5), mgr.constant(0.25));
  EXPECT_EQ(mgr.terminalValue(mgr.constant(1.25)), 1.25);
}

TEST(Mtbdd, VarNodeCollapsesEqualChildren) {
  MtbddManager mgr(4);
  const MtRef c = mgr.constant(2.0);
  EXPECT_EQ(mgr.varNode(1, c, c), c);
}

TEST(Mtbdd, ApplyArithmetic) {
  MtbddManager mgr(2);
  // f = var0 ? 3 : 1;  g = var1 ? 10 : 20.
  const MtRef f = mgr.varNode(0, mgr.constant(1.0), mgr.constant(3.0));
  const MtRef g = mgr.varNode(1, mgr.constant(20.0), mgr.constant(10.0));
  const MtRef sum = mgr.apply(MtOp::kAdd, f, g);
  EXPECT_EQ(mgr.evaluate(sum, 0b00), 21.0);
  EXPECT_EQ(mgr.evaluate(sum, 0b01), 23.0);
  EXPECT_EQ(mgr.evaluate(sum, 0b10), 11.0);
  EXPECT_EQ(mgr.evaluate(sum, 0b11), 13.0);
  const MtRef prod = mgr.apply(MtOp::kMul, f, g);
  EXPECT_EQ(mgr.evaluate(prod, 0b11), 30.0);
  const MtRef mn = mgr.apply(MtOp::kMin, f, g);
  EXPECT_EQ(mgr.evaluate(mn, 0b00), 1.0);
  const MtRef mx = mgr.apply(MtOp::kMax, f, g);
  EXPECT_EQ(mgr.evaluate(mx, 0b00), 20.0);
  const MtRef diff = mgr.apply(MtOp::kSub, g, f);
  EXPECT_EQ(mgr.evaluate(diff, 0b00), 19.0);
}

TEST(Mtbdd, EvaluateAgainstDirectFormula) {
  util::Xoshiro256 rng(3);
  MtbddManager mgr(5);
  // f(a) = sum over set bits of weights — built as nested var nodes added up.
  const double weights[5] = {1.0, 2.0, 4.0, 8.0, 16.0};
  MtRef f = mgr.constant(0.0);
  for (std::uint32_t v = 0; v < 5; ++v) {
    const MtRef term =
        mgr.varNode(v, mgr.constant(0.0), mgr.constant(weights[v]));
    f = mgr.apply(MtOp::kAdd, f, term);
  }
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint64_t a = rng.nextBounded(32);
    double expected = 0.0;
    for (std::uint32_t v = 0; v < 5; ++v) {
      if ((a >> v) & 1) expected += weights[v];
    }
    EXPECT_EQ(mgr.evaluate(f, a), expected);
  }
}

TEST(Mtbdd, GreaterThanThreshold) {
  MtbddManager mgr(1);
  const MtRef f = mgr.varNode(0, mgr.constant(0.2), mgr.constant(0.8));
  const MtRef gt = mgr.greaterThan(f, 0.5);
  EXPECT_EQ(mgr.evaluate(gt, 0), 0.0);
  EXPECT_EQ(mgr.evaluate(gt, 1), 1.0);
}

TEST(Mtbdd, SumOverIsTotalMass) {
  MtbddManager mgr(3);
  // A probability-like function over 3 bits.
  const MtRef f0 = mgr.varNode(0, mgr.constant(0.4), mgr.constant(0.6));
  const MtRef f1 = mgr.varNode(1, mgr.constant(0.5), mgr.constant(0.5));
  const MtRef f2 = mgr.varNode(2, mgr.constant(0.9), mgr.constant(0.1));
  const MtRef product =
      mgr.apply(MtOp::kMul, f0, mgr.apply(MtOp::kMul, f1, f2));
  const MtRef total = mgr.sumOver(product, {0, 1, 2});
  ASSERT_TRUE(mgr.isTerminal(total));
  EXPECT_NEAR(mgr.terminalValue(total), 1.0, 1e-12);
  // Partial sum leaves a function over the remaining variable.
  const MtRef partial = mgr.sumOver(product, {0, 1});
  EXPECT_NEAR(mgr.evaluate(partial, 0b000), 0.9, 1e-12);
  EXPECT_NEAR(mgr.evaluate(partial, 0b100), 0.1, 1e-12);
}

TEST(Mtbdd, MaxValue) {
  MtbddManager mgr(2);
  const MtRef f = mgr.varNode(
      0, mgr.varNode(1, mgr.constant(-1.0), mgr.constant(5.0)),
      mgr.constant(2.0));
  EXPECT_EQ(mgr.maxValue(f), 5.0);
}

}  // namespace
}  // namespace mimostat
