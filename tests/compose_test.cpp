#include <gtest/gtest.h>

#include <cmath>

#include "dtmc/builder.hpp"
#include "dtmc/compose.hpp"
#include "lump/symmetry.hpp"
#include "mc/checker.hpp"
#include "mc/transient.hpp"
#include "test_models.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

double twoStateP1(double a, double b, std::uint64_t t) {
  return a / (a + b) * (1.0 - std::pow(1.0 - a - b, static_cast<double>(t)));
}

TEST(Compose, VariableNamespacing) {
  const auto a = test::twoStateChain(0.3, 0.4);
  const auto b = test::twoStateChain(0.1, 0.2);
  const dtmc::SynchronousProduct product({&a, &b});
  const auto vars = product.variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0].name, "m0_s");
  EXPECT_EQ(vars[1].name, "m1_s");
}

TEST(Compose, ProductStateSpace) {
  const auto a = test::twoStateChain(0.3, 0.4);
  const auto b = test::twoStateChain(0.1, 0.2);
  const dtmc::SynchronousProduct product({&a, &b});
  const auto d = dtmc::buildExplicit(product).dtmc;
  EXPECT_EQ(d.numStates(), 4u);
  EXPECT_LT(d.maxRowDeviation(), 1e-12);
}

TEST(Compose, IndependenceOfMarginals) {
  // Components evolve independently: the product transient factorises.
  const double a1 = 0.3;
  const double b1 = 0.4;
  const double a2 = 0.15;
  const double b2 = 0.25;
  const auto compA = test::twoStateChain(a1, b1);
  const auto compB = test::twoStateChain(a2, b2);
  const dtmc::SynchronousProduct product({&compA, &compB});
  const auto d = dtmc::buildExplicit(product).dtmc;
  const mc::Checker checker(d, product);
  for (const std::uint64_t t : {1ULL, 4ULL, 16ULL}) {
    const std::string both =
        "P=? [ F<=0 m0_s=1 & m1_s=1 ]";  // placeholder, checked below
    (void)both;
    // P(both components in state 1 at time t) = product of marginals.
    const auto pi = mc::transientDistribution(d, t);
    double joint = 0.0;
    const auto i0 = d.varLayout().indexOf("m0_s");
    const auto i1 = d.varLayout().indexOf("m1_s");
    for (std::uint32_t s = 0; s < d.numStates(); ++s) {
      if (d.varValue(s, i0) == 1 && d.varValue(s, i1) == 1) joint += pi[s];
    }
    EXPECT_NEAR(joint, twoStateP1(a1, b1, t) * twoStateP1(a2, b2, t), 1e-12)
        << "t=" << t;
  }
}

TEST(Compose, RewardsAdd) {
  auto a = test::twoStateChain(0.3, 0.4);
  a.withRewards({0.0, 1.0});
  auto b = test::twoStateChain(0.3, 0.4);
  b.withRewards({0.0, 1.0});
  const dtmc::SynchronousProduct product({&a, &b});
  const auto d = dtmc::buildExplicit(product).dtmc;
  const mc::Checker checker(d, product);
  // Expected total = sum of identical marginal expectations.
  EXPECT_NEAR(checker.check("R=? [ I=9 ]").value,
              2.0 * twoStateP1(0.3, 0.4, 9), 1e-12);
}

TEST(Compose, QualifiedAndUnqualifiedAtoms) {
  auto a = test::twoStateChain(0.5, 0.5);
  a.withLabel("one", {0, 1});
  auto b = test::twoStateChain(0.5, 0.5);
  b.withLabel("one", {0, 1});
  const dtmc::SynchronousProduct product({&a, &b});
  // State (1, 0): unqualified "one" is true (OR), m0_one true, m1_one false.
  const dtmc::State s{1, 0};
  EXPECT_TRUE(product.atom(s, "one"));
  EXPECT_TRUE(product.atom(s, "m0_one"));
  EXPECT_FALSE(product.atom(s, "m1_one"));
}

TEST(Compose, IdenticalComponentsAreSymmetric) {
  // Two identical decoders in parallel: the component-permutation symmetry
  // halves (roughly) the state space — the compositional reduction story.
  viterbi::ViterbiParams params;
  params.tracebackLength = 3;
  const viterbi::ReducedViterbiModel lane0(params);
  const viterbi::ReducedViterbiModel lane1(params);
  const dtmc::SynchronousProduct product({&lane0, &lane1});

  const std::size_t width = lane0.variables().size();
  lump::BlockStructure blocks(2);
  for (std::size_t v = 0; v < width; ++v) {
    blocks[0].push_back(v);
    blocks[1].push_back(width + v);
  }
  const lump::SymmetryReducedModel reduced(product, blocks);
  const auto full = dtmc::buildExplicit(product);
  const auto quotient = dtmc::buildExplicit(reduced);
  EXPECT_LT(quotient.dtmc.numStates(), full.dtmc.numStates());

  const mc::Checker fullChecker(full.dtmc, product);
  const mc::Checker quotChecker(quotient.dtmc, reduced);
  // Aggregate (symmetric) reward: expected number of erroneous lanes.
  EXPECT_NEAR(fullChecker.check("R=? [ I=30 ]").value,
              quotChecker.check("R=? [ I=30 ]").value, 1e-10);
}

TEST(Compose, ThreeComponents) {
  const auto a = test::twoStateChain(0.2, 0.3);
  const dtmc::SynchronousProduct product({&a, &a, &a});
  const auto d = dtmc::buildExplicit(product).dtmc;
  EXPECT_EQ(d.numStates(), 8u);
  EXPECT_LT(d.maxRowDeviation(), 1e-12);
}

}  // namespace
}  // namespace mimostat
