#include <gtest/gtest.h>

#include <cmath>

#include "dtmc/builder.hpp"
#include "mc/steady.hpp"
#include "test_models.hpp"

namespace mimostat {
namespace {

TEST(Steady, TwoStateStationary) {
  const double a = 0.3;
  const double b = 0.2;
  const auto model = test::twoStateChain(a, b);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto ss = mc::steadyStateDistribution(d);
  EXPECT_TRUE(ss.converged);
  EXPECT_NEAR(ss.distribution[0], b / (a + b), 1e-10);
  EXPECT_NEAR(ss.distribution[1], a / (a + b), 1e-10);
}

TEST(Steady, BirthDeathGeometric) {
  // Birth-death chain on 0..4 with up-prob p, down-prob q has stationary
  // pi_i ~ (p/q)^i.
  const double p = 0.3;
  const double q = 0.5;
  std::vector<std::vector<double>> matrix(5, std::vector<double>(5, 0.0));
  for (int i = 0; i < 5; ++i) {
    if (i < 4) matrix[i][i + 1] = p;
    if (i > 0) matrix[i][i - 1] = q;
    matrix[i][i] = 1.0 - (i < 4 ? p : 0.0) - (i > 0 ? q : 0.0);
  }
  test::MatrixModel model(std::move(matrix));
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto ss = mc::steadyStateDistribution(d);
  ASSERT_TRUE(ss.converged);
  const double r = p / q;
  double z = 0.0;
  for (int i = 0; i < 5; ++i) z += std::pow(r, i);
  const auto varIdx = d.varLayout().indexOf("s");
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    const auto i = d.varValue(s, varIdx);
    EXPECT_NEAR(ss.distribution[s], std::pow(r, i) / z, 1e-9);
  }
}

TEST(Steady, CesaroHandlesPeriodicChain) {
  const auto model = test::cycleModel(4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  mc::SteadyOptions options;
  options.cesaroAveraging = true;
  options.maxIterations = 4000;
  const auto ss = mc::steadyStateDistribution(d, options);
  for (const double pi : ss.distribution) {
    EXPECT_NEAR(pi, 0.25, 1e-3);
  }
}

TEST(Steady, RewardMatchesDistributionDot) {
  const auto model = test::twoStateChain(0.4, 0.1);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const std::vector<double> reward{0.0, 1.0};
  EXPECT_NEAR(mc::steadyStateReward(d, reward), 0.4 / 0.5, 1e-9);
}

TEST(Steady, StructureOfIrreducibleAperiodicChain) {
  const auto model = test::twoStateChain(0.3, 0.4);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto cs = mc::analyzeStructure(d);
  EXPECT_TRUE(cs.irreducible);
  EXPECT_EQ(cs.period, 1u);
  EXPECT_EQ(cs.numSccs, 1u);
  EXPECT_EQ(cs.numBottomSccs, 1u);
}

TEST(Steady, StructureOfPeriodicChain) {
  const auto model = test::cycleModel(3);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto cs = mc::analyzeStructure(d);
  EXPECT_TRUE(cs.irreducible);
  EXPECT_EQ(cs.period, 3u);
}

TEST(Steady, StructureOfAbsorbingChain) {
  const auto model = test::gamblersRuin(4, 0.5, 2);
  const auto d = dtmc::buildExplicit(model).dtmc;
  const auto cs = mc::analyzeStructure(d);
  EXPECT_FALSE(cs.irreducible);
  EXPECT_EQ(cs.numBottomSccs, 2u);
}

}  // namespace
}  // namespace mimostat
