#include <gtest/gtest.h>

#include <cmath>

#include "comm/channel.hpp"
#include "comm/quantizer.hpp"
#include "comm/rayleigh.hpp"
#include "comm/snr.hpp"
#include "stats/estimator.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

TEST(Quantizer, IndexAndValue) {
  const comm::UniformQuantizer q(4, 3.0);  // cells of width 1.5
  EXPECT_EQ(q.index(-10.0), 0);
  EXPECT_EQ(q.index(-2.0), 0);
  EXPECT_EQ(q.index(-1.0), 1);
  EXPECT_EQ(q.index(0.5), 2);
  EXPECT_EQ(q.index(2.0), 3);
  EXPECT_EQ(q.index(10.0), 3);
  EXPECT_NEAR(q.value(0), -2.25, 1e-12);
  EXPECT_NEAR(q.value(1), -0.75, 1e-12);
  EXPECT_NEAR(q.value(2), 0.75, 1e-12);
  EXPECT_NEAR(q.value(3), 2.25, 1e-12);
}

TEST(Quantizer, ThresholdsConsistentWithIndex) {
  const comm::UniformQuantizer q(6, 3.0);
  for (int cell = 0; cell < 6; ++cell) {
    const double lo = q.lowerThreshold(cell);
    const double hi = q.upperThreshold(cell);
    if (!std::isinf(lo)) EXPECT_EQ(q.index(lo + 1e-9), cell);
    if (!std::isinf(hi)) EXPECT_EQ(q.index(hi - 1e-9), cell);
  }
  EXPECT_TRUE(std::isinf(q.lowerThreshold(0)));
  EXPECT_TRUE(std::isinf(q.upperThreshold(5)));
}

TEST(Quantizer, CellProbabilitiesSumToOne) {
  const comm::UniformQuantizer q(5, 2.5);
  for (const double signal : {-2.0, 0.0, 1.3, 7.0}) {
    for (const double sigma : {0.1, 0.8, 3.0}) {
      const auto probs = q.cellProbabilities(signal, sigma);
      double total = 0.0;
      for (const double p : probs) {
        EXPECT_GE(p, 0.0);
        total += p;
      }
      EXPECT_NEAR(total, 1.0, 1e-12) << signal << " " << sigma;
    }
  }
}

TEST(Quantizer, CellProbabilitiesMatchSampling) {
  const comm::UniformQuantizer q(4, 3.0);
  const double signal = 0.7;
  const double sigma = 1.1;
  const auto probs = q.cellProbabilities(signal, sigma);
  util::Xoshiro256 rng(99);
  std::vector<int> counts(4, 0);
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(
        q.index(signal + sigma * rng.nextGaussian()))];
  }
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_NEAR(static_cast<double>(counts[cell]) / n, probs[cell], 5e-3);
  }
}

TEST(Snr, Conversions) {
  EXPECT_NEAR(comm::snrDbToLinear(0.0), 1.0, 1e-12);
  EXPECT_NEAR(comm::snrDbToLinear(10.0), 10.0, 1e-12);
  EXPECT_NEAR(comm::snrDbToLinear(3.0), 1.995262, 1e-5);
  EXPECT_NEAR(comm::noiseSigma(0.0, 2.0), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(comm::noiseSigma(10.0, 1.0), std::sqrt(0.1), 1e-12);
  EXPECT_NEAR(comm::noiseSigmaPerDimension(10.0), std::sqrt(0.05), 1e-12);
}

TEST(IsiChannel, PaperLevels) {
  const comm::IsiChannel channel({1.0, 1.0});
  EXPECT_EQ(channel.memory(), 1u);
  EXPECT_EQ(channel.level2(0, 0), -2.0);
  EXPECT_EQ(channel.level2(1, 0), 0.0);
  EXPECT_EQ(channel.level2(0, 1), 0.0);
  EXPECT_EQ(channel.level2(1, 1), 2.0);
  EXPECT_EQ(channel.signalPower(), 2.0);
  EXPECT_EQ(channel.level({1, 0}), 0.0);
}

TEST(IsiChannel, GeneralTaps) {
  const comm::IsiChannel channel({1.0, 0.5, 0.25});
  EXPECT_EQ(channel.memory(), 2u);
  EXPECT_NEAR(channel.level({1, 1, 0}), 1.0 + 0.5 - 0.25, 1e-12);
  EXPECT_NEAR(channel.signalPower(), 1.0 + 0.25 + 0.0625, 1e-12);
}

TEST(DiscreteIsiChannel, DistributionsSumToOne) {
  const comm::IsiChannel isi({1.0, 1.0});
  const comm::UniformQuantizer q(4, 3.0);
  const comm::DiscreteIsiChannel channel(isi, q, 5.0);
  for (int cur = 0; cur < 2; ++cur) {
    for (int prev = 0; prev < 2; ++prev) {
      double total = 0.0;
      for (int cell = 0; cell < 4; ++cell) {
        total += channel.cellProb(cur, prev, cell);
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(DiscreteIsiChannel, SamplesMatchDistribution) {
  const comm::IsiChannel isi({1.0, 1.0});
  const comm::UniformQuantizer q(4, 3.0);
  const comm::DiscreteIsiChannel channel(isi, q, 5.0);
  util::Xoshiro256 rng(7);
  std::vector<int> counts(4, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(channel.sample(1, 0, rng))];
  }
  for (int cell = 0; cell < 4; ++cell) {
    EXPECT_NEAR(static_cast<double>(counts[cell]) / n,
                channel.cellProb(1, 0, cell), 5e-3);
  }
}

TEST(DiscreteIsiChannel, HigherSnrConcentratesMass) {
  const comm::IsiChannel isi({1.0, 1.0});
  const comm::UniformQuantizer q(4, 3.0);
  const comm::DiscreteIsiChannel low(isi, q, 0.0);
  const comm::DiscreteIsiChannel high(isi, q, 20.0);
  // Signal +2 (bits 1,1) should land in the top cell almost surely at high
  // SNR, and much less so at low SNR.
  EXPECT_GT(high.cellProb(1, 1, 3), 0.99);
  EXPECT_LT(low.cellProb(1, 1, 3), 0.9);
}

TEST(Rayleigh, CellProbabilitiesSumToOneAndSymmetric) {
  const comm::UniformQuantizer q(5, 2.0);
  const comm::RayleighFading fading(q);
  const auto& probs = fading.cellProbabilities();
  double total = 0.0;
  for (const double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(probs[0], probs[4], 1e-12);  // zero-mean symmetry
  EXPECT_NEAR(probs[1], probs[3], 1e-12);
}

TEST(Rayleigh, SampleMomentsMatchHalfUnitVariance) {
  const comm::UniformQuantizer q(3, 1.5);
  const comm::RayleighFading fading(q);
  util::Xoshiro256 rng(17);
  stats::RunningStats rs;
  for (int i = 0; i < 200000; ++i) rs.add(fading.sampleAnalog(rng));
  EXPECT_NEAR(rs.mean(), 0.0, 0.01);
  EXPECT_NEAR(rs.variance(), 0.5, 0.01);
}

TEST(Bpsk, Mapping) {
  EXPECT_EQ(comm::bpsk(0), -1.0);
  EXPECT_EQ(comm::bpsk(1), 1.0);
}

}  // namespace
}  // namespace mimostat
