// la::BitVector — the packed truth-mask representation. Block-boundary
// sizes (0/1/63/64/65), bulk-op identities against a byte-vector reference,
// ascending forEachSetBit order, the tail invariant behind operator== and
// full(), and the 8x approxBytes accounting the plan/cache layers report.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "la/bit_vector.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

// Pseudo-random byte mask with roughly `density` of bits set.
std::vector<std::uint8_t> randomBytes(std::size_t n, std::uint64_t seed,
                                      std::uint32_t density = 2) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint8_t> bytes(n);
  for (std::size_t i = 0; i < n; ++i) {
    bytes[i] = rng.nextBounded(density + 1) == 0 ? 1 : 0;
  }
  return bytes;
}

// The block-boundary sizes every structural test sweeps: empty, a single
// bit, one word minus one, exactly one word, one word plus one.
const std::size_t kSizes[] = {0, 1, 63, 64, 65, 130, 1000};

TEST(BitVector, ConstructionAndSize) {
  for (const std::size_t n : kSizes) {
    const la::BitVector zeros(n);
    EXPECT_EQ(zeros.size(), n);
    EXPECT_EQ(zeros.count(), 0u);
    EXPECT_TRUE(zeros.empty());
    EXPECT_EQ(zeros.full(), n == 0);
    EXPECT_EQ(zeros.numWords(), (n + 63) / 64);

    const la::BitVector ones(n, true);
    EXPECT_EQ(ones.count(), n);
    EXPECT_TRUE(ones.full());
    EXPECT_EQ(ones.empty(), n == 0);
  }
}

TEST(BitVector, SetGetAtWordBoundaries) {
  la::BitVector v(130);
  for (const std::size_t i : {std::size_t{0}, std::size_t{63},
                              std::size_t{64}, std::size_t{127},
                              std::size_t{129}}) {
    EXPECT_FALSE(v.get(i));
    v.set(i);
    EXPECT_TRUE(v.get(i)) << "bit " << i;
  }
  EXPECT_EQ(v.count(), 5u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.count(), 4u);
}

TEST(BitVector, BulkOpsMatchByteReference) {
  for (const std::size_t n : kSizes) {
    const auto aBytes = randomBytes(n, 11 + n);
    const auto bBytes = randomBytes(n, 77 + n);
    const auto a = la::BitVector::fromBytes(aBytes);
    const auto b = la::BitVector::fromBytes(bBytes);

    std::vector<std::uint8_t> andRef(n);
    std::vector<std::uint8_t> orRef(n);
    std::vector<std::uint8_t> diffRef(n);
    std::vector<std::uint8_t> notRef(n);
    for (std::size_t i = 0; i < n; ++i) {
      andRef[i] = aBytes[i] & bBytes[i];
      orRef[i] = aBytes[i] | bBytes[i];
      diffRef[i] = aBytes[i] & static_cast<std::uint8_t>(1 - bBytes[i]);
      notRef[i] = 1 - aBytes[i];
    }

    la::BitVector andV = a;
    andV &= b;
    la::BitVector orV = a;
    orV |= b;
    la::BitVector diffV = a;
    diffV -= b;
    EXPECT_EQ(andV, la::BitVector::fromBytes(andRef)) << "n=" << n;
    EXPECT_EQ(orV, la::BitVector::fromBytes(orRef)) << "n=" << n;
    EXPECT_EQ(diffV, la::BitVector::fromBytes(diffRef)) << "n=" << n;
    EXPECT_EQ(~a, la::BitVector::fromBytes(notRef)) << "n=" << n;
    EXPECT_EQ(andV.toBytes(), andRef) << "n=" << n;
  }
}

TEST(BitVector, ComplementKeepsTailZero) {
  // ~ sets every word bit; the invariant demands bits past size() stay
  // zero, or count()/full()/operator== would lie on non-multiple-of-64
  // sizes.
  for (const std::size_t n : kSizes) {
    const la::BitVector zeros(n);
    const la::BitVector flipped = ~zeros;
    EXPECT_EQ(flipped.count(), n) << "n=" << n;
    EXPECT_TRUE(flipped.full()) << "n=" << n;
    EXPECT_EQ(flipped, la::BitVector(n, true)) << "n=" << n;
    if (flipped.numWords() > 0 && n % 64 != 0) {
      EXPECT_EQ(flipped.words().back() >> (n % 64), 0u) << "n=" << n;
    }
  }
}

TEST(BitVector, SetAllClearAll) {
  la::BitVector v(65);
  v.setAll();
  EXPECT_TRUE(v.full());
  EXPECT_EQ(v.count(), 65u);
  ASSERT_EQ(v.numWords(), 2u);
  EXPECT_EQ(v.words()[1], 1u);  // tail invariant after setAll
  v.clearAll();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.words()[0], 0u);
}

TEST(BitVector, EqualityIsSizeAndBits) {
  la::BitVector a(64);
  la::BitVector b(65);
  EXPECT_FALSE(a == b);  // same (empty) prefix, different size
  la::BitVector c(64);
  EXPECT_TRUE(a == c);
  c.set(63);
  EXPECT_FALSE(a == c);
}

TEST(BitVector, ForEachSetBitAscending) {
  for (const std::size_t n : kSizes) {
    const auto bytes = randomBytes(n, 123 + n);
    const auto v = la::BitVector::fromBytes(bytes);

    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      if (bytes[i] != 0) expected.push_back(i);
    }
    std::vector<std::size_t> visited;
    v.forEachSetBit([&](std::size_t i) { visited.push_back(i); });
    EXPECT_EQ(visited, expected) << "n=" << n;
  }
}

TEST(BitVector, FromBytesToBytesRoundTrip) {
  for (const std::size_t n : kSizes) {
    const auto bytes = randomBytes(n, 5 + n);
    EXPECT_EQ(la::BitVector::fromBytes(bytes).toBytes(), bytes) << "n=" << n;
  }
  // Any non-zero byte counts as set.
  const std::vector<std::uint8_t> loud = {0, 2, 255, 0, 1};
  const auto v = la::BitVector::fromBytes(loud);
  EXPECT_EQ(v.toBytes(), (std::vector<std::uint8_t>{0, 1, 1, 0, 1}));
}

TEST(BitVector, ApproxBytesIsEightfoldSmaller) {
  // The whole point: one bit per state instead of one byte. At n = 4096
  // that is exactly 512 packed bytes vs 4096.
  const std::size_t n = 4096;
  const la::BitVector v(n);
  EXPECT_EQ(v.approxBytes(), n / 8);
  EXPECT_EQ(v.approxBytes() * 8, n);
  // Non-multiples round up to the next word.
  EXPECT_EQ(la::BitVector(65).approxBytes(), 16u);
  EXPECT_EQ(la::BitVector(0).approxBytes(), 0u);
}

TEST(BitVector, WordLayoutContract) {
  // Kernels read membership straight off words(): bit i lives in word
  // i >> 6 at position i & 63.
  la::BitVector v(200);
  v.set(70);
  v.set(199);
  EXPECT_EQ((v.words()[70 >> 6] >> (70 & 63)) & 1u, 1u);
  EXPECT_EQ((v.words()[199 >> 6] >> (199 & 63)) & 1u, 1u);
  EXPECT_EQ((v.words()[0] >> 1) & 1u, 0u);
}

}  // namespace
}  // namespace mimostat
