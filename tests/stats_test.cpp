#include <gtest/gtest.h>

#include <cmath>

#include "stats/estimator.hpp"
#include "stats/gaussian.hpp"
#include "stats/intervals.hpp"
#include "stats/sprt.hpp"
#include "util/rng.hpp"

namespace mimostat {
namespace {

TEST(Gaussian, CdfKnownValues) {
  EXPECT_NEAR(stats::normalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(stats::normalCdf(1.959963985), 0.975, 1e-9);
  EXPECT_NEAR(stats::normalCdf(-1.959963985), 0.025, 1e-9);
  EXPECT_NEAR(stats::normalCdf(1.0), 0.8413447460685429, 1e-12);
}

TEST(Gaussian, TailAccurateFarOut) {
  // Q(8) ~ 6.22e-16: must not be rounded to zero (the paper's BER regime).
  EXPECT_GT(stats::normalTail(8.0), 1e-16);
  EXPECT_LT(stats::normalTail(8.0), 1e-15);
  EXPECT_NEAR(stats::normalTail(0.0), 0.5, 1e-15);
}

TEST(Gaussian, CdfTailComplement) {
  for (const double x : {-3.0, -1.0, 0.0, 0.5, 2.5}) {
    EXPECT_NEAR(stats::normalCdf(x) + stats::normalTail(x), 1.0, 1e-14);
  }
}

TEST(Gaussian, PdfIntegratesToCdfDelta) {
  // Trapezoidal integral of the pdf over [-1, 1] vs CDF difference.
  const int n = 20000;
  double integral = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x0 = -1.0 + 2.0 * i / n;
    const double x1 = -1.0 + 2.0 * (i + 1) / n;
    integral += 0.5 * (stats::normalPdf(x0) + stats::normalPdf(x1)) * (x1 - x0);
  }
  EXPECT_NEAR(integral, stats::normalCdf(1.0) - stats::normalCdf(-1.0), 1e-8);
}

TEST(Gaussian, InverseRoundTrip) {
  for (const double p : {1e-10, 1e-4, 0.025, 0.5, 0.8, 0.975, 1.0 - 1e-6}) {
    EXPECT_NEAR(stats::normalCdf(stats::normalInvCdf(p)), p,
                1e-12 + 1e-9 * p);
  }
}

TEST(Gaussian, IntervalProbMatchesCdfDifference) {
  EXPECT_NEAR(stats::normalIntervalProb(-1.0, 1.0, 0.0, 1.0),
              stats::normalCdf(1.0) - stats::normalCdf(-1.0), 1e-14);
  EXPECT_NEAR(stats::normalIntervalProb(3.0, 4.0, 0.0, 1.0),
              stats::normalCdf(4.0) - stats::normalCdf(3.0), 1e-16);
  // Shift/scale invariance.
  EXPECT_NEAR(stats::normalIntervalProb(1.0, 3.0, 2.0, 0.5),
              stats::normalIntervalProb(-2.0, 2.0, 0.0, 1.0), 1e-14);
}

TEST(IncompleteBeta, KnownValues) {
  // I_x(1,1) = x.
  EXPECT_NEAR(stats::regularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-12);
  // I_x(2,1) = x^2.
  EXPECT_NEAR(stats::regularizedIncompleteBeta(2, 1, 0.6), 0.36, 1e-12);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(stats::regularizedIncompleteBeta(3.5, 2.25, 0.4),
              1.0 - stats::regularizedIncompleteBeta(2.25, 3.5, 0.6), 1e-12);
  EXPECT_EQ(stats::regularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_EQ(stats::regularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(Intervals, WilsonContainsEstimate) {
  const auto ival = stats::wilsonInterval(30, 100, 0.95);
  EXPECT_LT(ival.low, 0.3);
  EXPECT_GT(ival.high, 0.3);
  EXPECT_TRUE(ival.contains(0.3));
}

TEST(Intervals, ZeroSuccessesStillInformative) {
  // The paper's point: 0 errors in 1e5 steps only bounds the BER above.
  const auto ival = stats::clopperPearsonInterval(0, 100000, 0.95);
  EXPECT_EQ(ival.low, 0.0);
  // Exact rule-of-three-ish bound: 1 - (alpha/2)^(1/n) ~ 3.7e-5.
  EXPECT_NEAR(ival.high, 3.7e-5, 0.4e-5);
  // A true BER of 1.08e-5 (Table V, 1x4) is inside: simulation can't rule
  // it out, while the model checker computes it exactly.
  EXPECT_TRUE(ival.contains(1.08e-5));
}

TEST(Intervals, ClopperPearsonCoversWilson) {
  // CP is conservative: it should (weakly) contain the Wilson interval.
  const auto cp = stats::clopperPearsonInterval(7, 50, 0.95);
  const auto wilson = stats::wilsonInterval(7, 50, 0.95);
  EXPECT_LE(cp.low, wilson.low + 1e-9);
  EXPECT_GE(cp.high, wilson.high - 1e-9);
}

TEST(Intervals, HoeffdingWidthScalesInverseSqrt) {
  // Use p = 0.5 so neither interval clips at the [0,1] boundary.
  const auto narrow = stats::hoeffdingInterval(5000, 10000, 0.95);
  const auto wide = stats::hoeffdingInterval(50, 100, 0.95);
  EXPECT_NEAR(wide.width() / narrow.width(), 10.0, 0.5);
}

TEST(Intervals, HoeffdingSampleSize) {
  const auto n = stats::hoeffdingSampleSize(0.01, 0.95);
  // ln(40)/(2e-4) ~ 18445.
  EXPECT_NEAR(static_cast<double>(n), 18445.0, 2.0);
  // Resolving BER 1e-7 to +-1e-8 needs > 1e16 samples — the infeasibility
  // argument for simulation in the paper's introduction.
  EXPECT_GT(stats::hoeffdingSampleSize(1e-8, 0.99), 1'000'000'000'000'000ULL);
}

TEST(Intervals, WaldDegenerateAtZero) {
  const auto ival = stats::waldInterval(0, 1000, 0.95);
  EXPECT_EQ(ival.low, 0.0);
  EXPECT_EQ(ival.high, 0.0);  // the known Wald pathology
}

TEST(RunningStats, MeanAndVariance) {
  stats::RunningStats rs;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_NEAR(rs.mean(), 5.0, 1e-12);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  util::Xoshiro256 rng(5);
  stats::RunningStats whole;
  stats::RunningStats partA;
  stats::RunningStats partB;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.nextGaussian() * 3.0 + 1.0;
    whole.add(x);
    (i < 400 ? partA : partB).add(x);
  }
  partA.merge(partB);
  EXPECT_EQ(partA.count(), whole.count());
  EXPECT_NEAR(partA.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(partA.variance(), whole.variance(), 1e-8);
}

TEST(BatchMeans, MeanMatchesStreamMean) {
  stats::BatchMeansEstimator batches(100);
  util::Xoshiro256 rng(21);
  double total = 0.0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.nextDouble();
    total += x;
    batches.add(x);
  }
  EXPECT_EQ(batches.observations(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(batches.completeBatches(), 100u);
  EXPECT_NEAR(batches.mean(), total / n, 1e-12);
}

TEST(BatchMeans, IgnoresIncompleteTailBatch) {
  stats::BatchMeansEstimator batches(10);
  for (int i = 0; i < 25; ++i) batches.add(1.0);
  EXPECT_EQ(batches.completeBatches(), 2u);
  EXPECT_EQ(batches.observations(), 25u);
}

TEST(BatchMeans, IntervalCoversIidMean) {
  stats::BatchMeansEstimator batches(200);
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 40000; ++i) batches.add(rng.nextDouble() < 0.3);
  const auto interval = batches.interval(0.99);
  EXPECT_TRUE(interval.contains(0.3))
      << "[" << interval.low << ", " << interval.high << "]";
}

TEST(BatchMeans, WiderThanIidIntervalOnCorrelatedStream) {
  // A slowly-flipping (highly autocorrelated) 0/1 stream: the batch-means
  // interval must be substantially wider than the (invalid) iid Wilson
  // interval on the same data.
  util::Xoshiro256 rng(41);
  stats::BatchMeansEstimator batches(500);
  stats::BernoulliEstimator iid;
  int state = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.nextDouble() < 0.01) state = 1 - state;  // sticky process
    batches.add(state);
    iid.add(state != 0);
  }
  const auto honest = batches.interval(0.95);
  const auto naive = iid.wilson(0.95);
  EXPECT_GT(honest.width(), 3.0 * naive.width());
}

TEST(Bernoulli, EstimateAndIntervals) {
  stats::BernoulliEstimator est;
  for (int i = 0; i < 100; ++i) est.add(i < 25);
  EXPECT_EQ(est.trials(), 100u);
  EXPECT_EQ(est.successes(), 25u);
  EXPECT_NEAR(est.estimate(), 0.25, 1e-15);
  EXPECT_TRUE(est.wilson(0.95).contains(0.25));
  EXPECT_TRUE(est.hoeffding(0.95).contains(0.25));
}

TEST(Sprt, AcceptsH1OnHighRate) {
  stats::Sprt test(0.1, 0.02, 0.01, 0.01);
  util::Xoshiro256 rng(11);
  stats::SprtDecision decision = stats::SprtDecision::kContinue;
  for (int i = 0; i < 100000 && decision == stats::SprtDecision::kContinue;
       ++i) {
    decision = test.add(rng.nextDouble() < 0.2);
  }
  EXPECT_EQ(decision, stats::SprtDecision::kAcceptH1);
}

TEST(Sprt, AcceptsH0OnLowRate) {
  stats::Sprt test(0.1, 0.02, 0.01, 0.01);
  util::Xoshiro256 rng(13);
  stats::SprtDecision decision = stats::SprtDecision::kContinue;
  for (int i = 0; i < 100000 && decision == stats::SprtDecision::kContinue;
       ++i) {
    decision = test.add(rng.nextDouble() < 0.03);
  }
  EXPECT_EQ(decision, stats::SprtDecision::kAcceptH0);
}

TEST(Sprt, DecisionSticks) {
  stats::Sprt test(0.5, 0.1, 0.05, 0.05);
  for (int i = 0; i < 1000; ++i) test.add(true);
  EXPECT_EQ(test.decision(), stats::SprtDecision::kAcceptH1);
  const auto n = test.observations();
  test.add(false);
  EXPECT_EQ(test.observations(), n);  // no more observations consumed
}

}  // namespace
}  // namespace mimostat
