// The central soundness tests of the reproduction: the reduced Viterbi
// model M_R is a probabilistic bisimulation of the full model M for the
// error properties (paper §IV-A-3/4).
#include <gtest/gtest.h>

#include "core/reduction.hpp"
#include "dtmc/builder.hpp"
#include "mc/checker.hpp"
#include "viterbi/fabs.hpp"
#include "viterbi/model_full.hpp"
#include "viterbi/model_reduced.hpp"

namespace mimostat {
namespace {

viterbi::ViterbiParams smallParams(int traceLength, bool withErrs = false) {
  viterbi::ViterbiParams p;
  p.tracebackLength = traceLength;
  p.quantLevels = 4;
  p.pmCap = 4;
  p.withErrorCounter = withErrs;
  return p;
}

TEST(ViterbiModels, RowsAreStochastic) {
  const viterbi::FullViterbiModel full(smallParams(3));
  const viterbi::ReducedViterbiModel reduced(smallParams(3));
  EXPECT_LT(dtmc::buildExplicit(full).dtmc.maxRowDeviation(), 1e-12);
  EXPECT_LT(dtmc::buildExplicit(reduced).dtmc.maxRowDeviation(), 1e-12);
}

TEST(ViterbiModels, ReductionShrinksStateSpace) {
  for (const int L : {3, 4, 5}) {
    const viterbi::FullViterbiModel full(smallParams(L));
    const viterbi::ReducedViterbiModel reduced(smallParams(L));
    const auto fullStates = dtmc::buildExplicit(full).dtmc.numStates();
    const auto reducedStates = dtmc::buildExplicit(reduced).dtmc.numStates();
    EXPECT_LT(reducedStates, fullStates) << "L=" << L;
  }
}

TEST(ViterbiModels, ErrorPropertiesPreserved) {
  // P1/P2 equal on M and M_R — the paper's bisimulation claim, checked
  // end-to-end for small traceback lengths.
  for (const int L : {2, 3, 4}) {
    const viterbi::FullViterbiModel full(smallParams(L));
    const viterbi::ReducedViterbiModel reduced(smallParams(L));
    const auto verdict = core::verifyReduction(
        full, reduced,
        {"P=? [ G<=25 !flag ]", "R=? [ I=25 ]", "R=? [ C<=25 ]",
         "P=? [ F<=10 flag ]"},
        nullptr, 1e-10);
    EXPECT_TRUE(verdict.propertiesPreserved)
        << "L=" << L << " worst diff " << verdict.worstPropertyDiff;
  }
}

TEST(ViterbiModels, WorstCasePropertyPreservedWithErrorCounter) {
  const viterbi::FullViterbiModel full(smallParams(3, true));
  const viterbi::ReducedViterbiModel reduced(smallParams(3, true));
  const auto verdict = core::verifyReduction(
      full, reduced, {"P=? [ F<=20 errs>1 ]", "P=? [ F<=20 errs>0 ]"},
      nullptr, 1e-10);
  EXPECT_TRUE(verdict.propertiesPreserved) << verdict.worstPropertyDiff;
}

TEST(ViterbiModels, AbstractionInducesLumpablePartition) {
  // The strong-lumping argument itself: the partition of M induced by
  // F_abs must be lumpable (Eq. 12), verified numerically.
  const auto params = smallParams(3);
  const viterbi::FullViterbiModel full(params);
  const viterbi::ReducedViterbiModel reduced(params);
  const auto verdict = core::verifyReduction(
      full, reduced, {"R=? [ I=10 ]"},
      [&](const dtmc::State& s) {
        return viterbi::abstractState(full, reduced, s);
      },
      1e-10);
  EXPECT_TRUE(verdict.partitionLumpable) << verdict.worstLumpMismatch;
  EXPECT_TRUE(verdict.sound());
  EXPECT_GT(verdict.reductionFactor(), 1.0);
}

TEST(ViterbiModels, AbstractionMapsInitialStates) {
  const auto params = smallParams(4);
  const viterbi::FullViterbiModel full(params);
  const viterbi::ReducedViterbiModel reduced(params);
  const auto fullInit = full.initialStates();
  const auto reducedInit = reduced.initialStates();
  ASSERT_EQ(fullInit.size(), 1u);
  ASSERT_EQ(reducedInit.size(), 1u);
  EXPECT_EQ(viterbi::abstractState(full, reduced, fullInit[0]),
            reducedInit[0]);
}

TEST(FlagEquivalence, HoldsForAllTracebackLengths) {
  // The paper's "Part A" (Eq. 5 == Eq. 9), discharged exhaustively — our
  // substitute for the Synopsys Formality equivalence check.
  for (const int L : {2, 3, 4, 5, 6, 7}) {
    const auto report = viterbi::verifyFlagEquivalence(L);
    EXPECT_TRUE(report.equivalent) << "L=" << L;
    const auto expected = 2ULL * (1ULL << L) * (1ULL << (2 * (L - 1)));
    EXPECT_EQ(report.assignmentsChecked, expected);
  }
}

TEST(ViterbiModels, PaperScaleReducedModelBuilds) {
  // The L=6 configuration used for Table I (reduced model only).
  const viterbi::ReducedViterbiModel reduced(viterbi::ViterbiParams{});
  const auto result = dtmc::buildExplicit(reduced);
  EXPECT_GT(result.dtmc.numStates(), 1000u);
  EXPECT_LT(result.dtmc.maxRowDeviation(), 1e-12);
  // BER at SNR 5 dB with this coarse quantizer is substantial (the paper's
  // "poor performance" conclusion) — sanity-band the P2 value.
  const mc::Checker checker(result.dtmc, reduced);
  const double p2 = checker.check("R=? [ I=300 ]").value;
  EXPECT_GT(p2, 0.01);
  EXPECT_LT(p2, 0.5);
}

TEST(ViterbiModels, BestCaseDecaysWithHorizon) {
  const viterbi::ReducedViterbiModel reduced(smallParams(3));
  const auto d = dtmc::buildExplicit(reduced).dtmc;
  const mc::Checker checker(d, reduced);
  const double p1Short = checker.check("P=? [ G<=10 !flag ]").value;
  const double p1Long = checker.check("P=? [ G<=100 !flag ]").value;
  EXPECT_LT(p1Long, p1Short);
  EXPECT_GE(p1Long, 0.0);
}

TEST(ViterbiModels, ErrorCounterSaturates) {
  const viterbi::ReducedViterbiModel reduced(smallParams(3, true));
  const auto d = dtmc::buildExplicit(reduced).dtmc;
  const auto errsIdx = d.varLayout().indexOf("errs");
  const auto cap = reduced.params().errorThreshold + 1;
  for (std::uint32_t s = 0; s < d.numStates(); ++s) {
    EXPECT_LE(d.varValue(s, errsIdx), cap);
  }
}

TEST(ViterbiModels, CountReachableAgreesWithBuilder) {
  const viterbi::FullViterbiModel full(smallParams(4));
  const auto built = dtmc::buildExplicit(full);
  const auto counted = dtmc::countReachable(full);
  EXPECT_EQ(counted.numStates, built.dtmc.numStates());
  EXPECT_EQ(counted.reachabilityIterations, built.reachabilityIterations);
}

}  // namespace
}  // namespace mimostat
